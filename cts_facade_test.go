package cts_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"cts"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

// TestFacadeThreeReplicaGroup assembles a three-way actively replicated time
// server purely through the public cts facade (transport in, facade-built
// stacks) and checks that the default application answers consistent,
// monotone CurrentTime reads.
func TestFacadeThreeReplicaGroup(t *testing.T) {
	k := sim.NewKernel(7)
	net := simnet.NewNetwork(k, nil)
	ring := []transport.NodeID{0, 1, 2, 3}

	sink := cts.NewMemorySink(0)
	rec, err := cts.NewRecorder(0, sink)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}

	offsets := map[transport.NodeID]time.Duration{1: 0, 2: 5 * time.Second, 3: 15 * time.Second}
	svcs := make([]*cts.Service, 0, 3)
	for _, id := range ring[1:] {
		svc, err := cts.New(
			cts.WithRuntime(k),
			cts.WithTransport(net.Endpoint(id)),
			cts.WithRingMembers(ring),
			cts.WithClock(hwclock.NewSim(k.Now, hwclock.WithOffset(offsets[id]))),
			cts.WithStyle(cts.Active),
			cts.WithObservability(rec),
		)
		if err != nil {
			t.Fatalf("cts.New(P%d): %v", id, err)
		}
		if svc.Observability() == nil {
			t.Fatal("Observability() returned nil with an explicit recorder")
		}
		if err := svc.Start(); err != nil {
			t.Fatalf("Start(P%d): %v", id, err)
		}
		svcs = append(svcs, svc)
	}

	// The client rides on its own stack outside the facade.
	cstack, err := gcs.New(gcs.Config{
		Runtime:   k,
		Transport: net.Endpoint(0),
		Members:   ring,
		Bootstrap: true,
	})
	if err != nil {
		t.Fatalf("client gcs.New: %v", err)
	}
	client, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     k,
		Stack:       cstack,
		ClientGroup: 900,
		ServerGroup: cts.DefaultGroup,
	})
	if err != nil {
		t.Fatalf("rpc.NewClient: %v", err)
	}
	cstack.Start()
	k.RunFor(3 * time.Millisecond)

	const want = 6
	var reads []time.Duration
	var invoke func()
	invoke = func() {
		client.Invoke("CurrentTime", nil, func(r rpc.Reply) {
			if r.Err != nil {
				t.Errorf("invoke %d: %v", len(reads)+1, r.Err)
				return
			}
			reads = append(reads, time.Duration(binary.BigEndian.Uint64(r.Body)))
			if len(reads) < want {
				invoke()
			}
		})
	}
	invoke()
	for k.Now() < 5*time.Second && len(reads) < want {
		k.RunFor(time.Millisecond)
	}
	if len(reads) != want {
		t.Fatalf("completed %d/%d invocations", len(reads), want)
	}
	for i := 1; i < len(reads); i++ {
		if reads[i] < reads[i-1] {
			t.Errorf("group clock regressed: read %d = %v < read %d = %v",
				i+1, reads[i], i, reads[i-1])
		}
	}

	// The shared recorder saw the round trace and gathered every layer.
	if sink.Len() == 0 {
		t.Error("trace sink received no events")
	}
	var buf bytes.Buffer
	svcs[0].DumpMetrics(&buf)
	for _, name := range []string{"core.rounds_initiated", "totem.delivered", "gcs.multicasts", "repl.executed"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("DumpMetrics output missing %s", name)
		}
	}

	for _, svc := range svcs {
		svc.Stop()
	}
}

// TestFacadeDefaultsAndValidation pins the facade's error paths and the
// always-usable sink-less recorder.
func TestFacadeDefaultsAndValidation(t *testing.T) {
	if _, err := cts.New(); err == nil {
		t.Error("New() without runtime succeeded, want error")
	}
	if _, err := cts.New(cts.WithRuntime(sim.NewKernel(1))); err == nil {
		t.Error("New() without stack or transport succeeded, want error")
	}

	k := sim.NewKernel(2)
	net := simnet.NewNetwork(k, nil)
	svc, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(1)),
		cts.WithRingMembers([]transport.NodeID{1}),
	)
	if err != nil {
		t.Fatalf("minimal New: %v", err)
	}
	rec := svc.Observability()
	if rec == nil {
		t.Fatal("Observability() is nil without WithObservability")
	}
	if rec.Tracing() {
		t.Error("sink-less recorder reports Tracing() == true")
	}

	// Invalid layer knobs must surface as constructor errors.
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(2)),
		cts.WithRingMembers([]transport.NodeID{2}),
		cts.WithCompensation(cts.Compensation(99)),
	); err == nil {
		t.Error("invalid compensation mode accepted, want error")
	}
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(3)),
		cts.WithRingMembers([]transport.NodeID{3}),
		cts.WithStyle(cts.Style(42)),
	); err == nil {
		t.Error("invalid replication style accepted, want error")
	}
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(4)),
		cts.WithRingMembers([]transport.NodeID{4}),
		cts.WithCheckpointEvery(-1),
	); err == nil {
		t.Error("negative checkpoint interval accepted, want error")
	}
}

// TestFacadeOrdererOptions pins the WithOrderer surface: kind selection,
// cross-orderer tuning rejection, and the WithStack conflict.
func TestFacadeOrdererOptions(t *testing.T) {
	k := sim.NewKernel(3)
	net := simnet.NewNetwork(k, nil)

	// A facade-built stack on the leader sequencer works end to end.
	svc, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(1)),
		cts.WithMembers([]transport.NodeID{1}),
		cts.WithOrderer(cts.OrdererOptions{Kind: cts.OrdererSeq}),
	)
	if err != nil {
		t.Fatalf("New with seq orderer: %v", err)
	}
	svc.Stop()

	// Unknown kinds and tuning for a non-selected orderer are construction
	// errors, not silent fallbacks.
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(2)),
		cts.WithMembers([]transport.NodeID{2}),
		cts.WithOrderer(cts.OrdererOptions{Kind: "ring"}),
	); err == nil || !strings.Contains(err.Error(), "unknown orderer") {
		t.Errorf("unknown orderer kind: err = %v, want unknown-orderer error", err)
	}
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithTransport(net.Endpoint(3)),
		cts.WithMembers([]transport.NodeID{3}),
		cts.WithOrderer(cts.OrdererOptions{
			Kind: cts.OrdererTotem,
			Seq:  cts.SeqTuning{LeaderTimeout: time.Second},
		}),
	); err == nil || !strings.Contains(err.Error(), "Seq tuning") {
		t.Errorf("cross-orderer tuning: err = %v, want Seq-tuning error", err)
	}

	// WithOrderer cannot retune a caller-owned stack.
	stack, err := gcs.New(gcs.Config{
		Runtime:   k,
		Transport: net.Endpoint(4),
		Members:   []transport.NodeID{4},
		Bootstrap: true,
	})
	if err != nil {
		t.Fatalf("gcs.New: %v", err)
	}
	if _, err := cts.New(
		cts.WithRuntime(k),
		cts.WithStack(stack),
		cts.WithOrderer(cts.OrdererOptions{Kind: cts.OrdererSeq}),
	); err == nil || !strings.Contains(err.Error(), "WithStack") {
		t.Errorf("WithOrderer+WithStack: err = %v, want conflict error", err)
	}

	// ParseOrdererKind mirrors the flag surface of ctsnode/ctsclient.
	if kind, err := cts.ParseOrdererKind("seq"); err != nil || kind != cts.OrdererSeq {
		t.Errorf(`ParseOrdererKind("seq") = %v, %v`, kind, err)
	}
	if kind, err := cts.ParseOrdererKind(""); err != nil || kind != cts.OrdererTotem {
		t.Errorf(`ParseOrdererKind("") = %v, %v; want totem default`, kind, err)
	}
	if _, err := cts.ParseOrdererKind("lockstep"); err == nil {
		t.Error(`ParseOrdererKind("lockstep") succeeded, want error`)
	}
}
