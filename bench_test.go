// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the extension experiments and ablations indexed in
// DESIGN.md. The experiments run in virtual time on the simulated testbed;
// each benchmark reports the figure's headline quantity as a custom metric,
// so `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	BenchmarkFigure5EndToEndLatency    — E1: latency with/without the service
//	BenchmarkCCSMessageCounts          — E2: duplicate suppression on the wire
//	BenchmarkFigure6aReadIntervals     — E3: group vs physical read intervals
//	BenchmarkFigure6bWinnerOffset      — E4: the synchronizer's offset trend
//	BenchmarkFigure6cGroupClockDrift   — E5: group clock runs slow
//	BenchmarkFigure1RawClockInconsistency — E6: the motivating inconsistency
//	BenchmarkRollbackOnFailover        — E7: roll-back (baseline) vs monotone (CTS)
//	BenchmarkRecoverySpecialRound      — E8: new-clock integration
//	BenchmarkDriftCompensation         — E9: §3.3 strategies
//	BenchmarkTokenPassingTime          — E10: ring calibration vs the paper's 51µs
//	BenchmarkGroupSizeScaling          — E11: CCS round latency vs group size
//	BenchmarkAblationSafeVsAgreedCCS   — design-choice ablation (DESIGN.md)
//
// Absolute wall-clock ns/op measures simulator speed, not testbed latency;
// the custom metrics carry the reproduced quantities.
package cts_test

import (
	"testing"
	"time"

	"cts/internal/core"
	"cts/internal/experiment"
	"cts/internal/wire"
)

// benchSeed keeps benchmark runs deterministic and comparable.
const benchSeed = 2003

func BenchmarkFigure5EndToEndLatency(b *testing.B) {
	var overhead, with, without time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFigure5(benchSeed+int64(i), 1000)
		if err != nil {
			b.Fatal(err)
		}
		overhead = r.Overhead()
		with = r.With.Mean()
		without = r.Without.Mean()
	}
	b.ReportMetric(float64(overhead.Microseconds()), "overhead_µs")
	b.ReportMetric(float64(with.Microseconds()), "with_cts_µs")
	b.ReportMetric(float64(without.Microseconds()), "without_µs")
}

func BenchmarkCCSMessageCounts(b *testing.B) {
	var total, max uint64
	var rounds int
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunMessageCounts(benchSeed+int64(i), 1000)
		if err != nil {
			b.Fatal(err)
		}
		total = r.TotalSent
		rounds = r.Rounds
		max = 0
		for _, n := range r.PerNode {
			if n > max {
				max = n
			}
		}
	}
	b.ReportMetric(float64(total)/float64(rounds), "ccs_msgs/round")
	b.ReportMetric(float64(max)/float64(rounds)*100, "winner_share_%")
}

func BenchmarkFigure6aReadIntervals(b *testing.B) {
	var meanGroup, meanPhys time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFigure6(benchSeed+int64(i), 1000, 20)
		if err != nil {
			b.Fatal(err)
		}
		var sg, sp time.Duration
		for j := 0; j < r.Rounds; j++ {
			sg += r.IntervalGroup[j]
			sp += r.IntervalPhys[1][j]
		}
		meanGroup = sg / time.Duration(r.Rounds)
		meanPhys = sp / time.Duration(r.Rounds)
	}
	b.ReportMetric(float64(meanGroup.Microseconds()), "group_interval_µs")
	b.ReportMetric(float64(meanPhys.Microseconds()), "phys_interval_µs")
}

func BenchmarkFigure6bWinnerOffset(b *testing.B) {
	var first, last time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFigure6(benchSeed+int64(i), 1000, 20)
		if err != nil {
			b.Fatal(err)
		}
		first = r.WinnerOffset[0]
		last = r.WinnerOffset[len(r.WinnerOffset)-1]
	}
	b.ReportMetric(float64(first.Microseconds()), "offset_round1_µs")
	b.ReportMetric(float64(last.Microseconds()), "offset_round20_µs")
}

func BenchmarkFigure6cGroupClockDrift(b *testing.B) {
	var lag time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFigure6(benchSeed+int64(i), 1000, 20)
		if err != nil {
			b.Fatal(err)
		}
		lastIdx := r.Rounds - 1
		lag = r.NormPhys[1][lastIdx] - r.NormGroup[lastIdx]
	}
	b.ReportMetric(float64(lag.Microseconds()), "lag_after_20_rounds_µs")
}

func BenchmarkFigure1RawClockInconsistency(b *testing.B) {
	var raw, cts time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFigure1(benchSeed+int64(i), 300)
		if err != nil {
			b.Fatal(err)
		}
		raw = r.SpreadRaw.Mean()
		cts = r.SpreadCTS.Max()
	}
	b.ReportMetric(float64(raw.Microseconds()), "raw_spread_µs")
	b.ReportMetric(float64(cts.Microseconds()), "cts_spread_µs")
}

func BenchmarkRollbackOnFailover(b *testing.B) {
	var baseline, cts time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunRollback(benchSeed+int64(i), -5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		baseline = r.BaselineJump()
		cts = r.CTSJump()
	}
	b.ReportMetric(float64(baseline.Milliseconds()), "baseline_jump_ms")
	b.ReportMetric(float64(cts.Milliseconds()), "cts_jump_ms")
}

func BenchmarkRecoverySpecialRound(b *testing.B) {
	var jump time.Duration
	var specials uint64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunRecovery(benchSeed+int64(i), 200*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		jump = r.After - r.Before
		specials = r.SpecialRounds
	}
	b.ReportMetric(float64(jump.Microseconds()), "clock_jump_µs")
	b.ReportMetric(float64(specials), "special_rounds")
}

func BenchmarkDriftCompensation(b *testing.B) {
	var none, mean, ext time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunDrift(benchSeed+int64(i), 1000)
		if err != nil {
			b.Fatal(err)
		}
		none = r.LagPerMode[core.CompNone]
		mean = r.LagPerMode[core.CompMeanDelay]
		ext = r.LagPerMode[core.CompExternal]
	}
	b.ReportMetric(float64(none.Microseconds()), "lag_none_µs")
	b.ReportMetric(float64(mean.Microseconds()), "lag_meandelay_µs")
	b.ReportMetric(float64(ext.Microseconds()), "lag_external_µs")
}

func BenchmarkTokenPassingTime(b *testing.B) {
	var mode, p50 time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunTokenTiming(benchSeed+int64(i), 2000)
		if err != nil {
			b.Fatal(err)
		}
		mode = r.Mode
		p50 = r.Hops.Median()
	}
	b.ReportMetric(float64(mode.Microseconds()), "peak_bin_µs")
	b.ReportMetric(float64(p50.Microseconds()), "p50_µs")
}

func BenchmarkGroupSizeScaling(b *testing.B) {
	sizes := []int{2, 4, 8, 16}
	var r *experiment.ScalingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunScaling(benchSeed+int64(i), sizes, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, size := range sizes {
		b.ReportMetric(float64(r.MeanLat[size].Microseconds()),
			"mean_µs_"+itoa(size)+"rep")
	}
}

func BenchmarkAblationSafeVsAgreedCCS(b *testing.B) {
	var r *experiment.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunCCSAblation(benchSeed+int64(i), 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64((r.SafeMean - r.Baseline).Microseconds()), "safe_overhead_µs")
	b.ReportMetric(float64((r.AgreedMean - r.Baseline).Microseconds()), "agreed_overhead_µs")
}

// Micro-benchmarks for the hot codec paths (real time, not virtual).

func BenchmarkWireMarshalCCS(b *testing.B) {
	msg := wire.Message{
		Header: wire.Header{Type: wire.TypeCCS, SrcGroup: 100, DstGroup: 100,
			Conn: 1, Seq: 42},
		Payload: wire.MarshalCCS(wire.CCSPayload{
			ThreadID: 1, Proposed: 8 * time.Hour, Op: wire.OpGettimeofday}),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
