GO ?= go

.PHONY: check fmt vet lint build test race bench bench-concurrent loadtest campaign-smoke campaign federation-smoke

# check is the CI gate: formatting, vet, the project linter, build, the
# race-enabled tests, the batched-round smoke, the timeserve load smoke, the
# campaign smoke and the federation smoke.
check: fmt vet lint build race bench-concurrent loadtest campaign-smoke federation-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs ctslint, the project's own static analysis (determinism and
# concurrency invariants; see DESIGN.md §8). Exceptions live in lint.allow.
lint:
	$(GO) run ./cmd/ctslint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the default (Totem) orderer, then reruns
# the experiment suite over the leader-sequencer; Totem-specific tests skip
# themselves via totemOnly.
race:
	$(GO) test -race -count=1 ./...
	$(GO) test -race -count=1 ./internal/experiment -orderer=seq

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/ctsbench -exp fig5 -trace fig5.trace.jsonl -json BENCH_fig5.json

# bench-concurrent smokes the batched-round path (DESIGN.md §9): ctsbench
# exits nonzero unless concurrent readers coalesced rounds and their mean
# per-read overhead is at most half the single-reader overhead. Writes
# BENCH_fig5_concurrent.json.
bench-concurrent:
	$(GO) run ./cmd/ctsbench -exp fig5concurrent -jsonConcurrent BENCH_fig5_concurrent.json

# loadtest smokes the external time-serving plane twice. The race-enabled
# run checks the lease invariants (staleness bound, per-replica monotonicity)
# under the race detector with a 100k queries/s floor. The plain run drives
# the batched recvmmsg/sendmmsg path with 8-datagram client bursts and gates
# the hot-path regressions: ≥600k queries/s, ≤0.25 server syscalls per
# query, zero allocations per batched serve cycle. Writes the headline
# BENCH_timeserve.json (plain, batched) and BENCH_timeserve_race.json.
loadtest:
	$(GO) run -race ./cmd/ctsload -inprocess -duration 5s -min-qps 100000 -json BENCH_timeserve_race.json
	$(GO) run ./cmd/ctsload -inprocess -duration 5s -dgrams 8 -min-qps 600000 -max-syscalls-per-query 0.25 -max-allocs-per-op 0 -json BENCH_timeserve.json

# campaign-smoke runs two 100-node campaign cells (churn + drift outliers);
# each self-gates on zero group-clock regressions, zero staleness-bound
# violations and bounded reconvergence. Deterministic: same seed, same JSON.
campaign-smoke:
	$(GO) run ./cmd/ctscampaign -scenarios churn-storm,slow-clocks -nodes 100 -json BENCH_campaign_smoke.json

# campaign sweeps the full builtin scenario catalog and writes plot-ready
# BENCH_campaign.json + BENCH_campaign.csv (see EXPERIMENTS.md).
campaign:
	$(GO) run ./cmd/ctscampaign -json BENCH_campaign.json -csv BENCH_campaign.csv

# federation-smoke runs the multi-group federation sweep (E17): line
# topologies at 2/4/8 groups plus an inter-group sever/heal cell. Every cell
# self-gates — zero regressions, zero cross-group staleness violations, zero
# monotonicity fixes, seam skew under the ceiling, reconvergence in time.
# Writes BENCH_federation.json.
federation-smoke:
	$(GO) run ./cmd/ctsbench -exp federation -jsonFederation BENCH_federation.json
