GO ?= go

.PHONY: check fmt vet lint build test race bench bench-concurrent loadtest

# check is the CI gate: formatting, vet, the project linter, build, the
# race-enabled tests, the batched-round smoke and the timeserve load smoke.
check: fmt vet lint build race bench-concurrent loadtest

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs ctslint, the project's own static analysis (determinism and
# concurrency invariants; see DESIGN.md §8). Exceptions live in lint.allow.
lint:
	$(GO) run ./cmd/ctslint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the default (Totem) orderer, then reruns
# the experiment suite over the leader-sequencer; Totem-specific tests skip
# themselves via totemOnly.
race:
	$(GO) test -race -count=1 ./...
	$(GO) test -race -count=1 ./internal/experiment -orderer=seq

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/ctsbench -exp fig5 -trace fig5.trace.jsonl -json BENCH_fig5.json

# bench-concurrent smokes the batched-round path (DESIGN.md §9): ctsbench
# exits nonzero unless concurrent readers coalesced rounds and their mean
# per-read overhead is at most half the single-reader overhead. Writes
# BENCH_fig5_concurrent.json.
bench-concurrent:
	$(GO) run ./cmd/ctsbench -exp fig5concurrent -jsonConcurrent BENCH_fig5_concurrent.json

# loadtest smokes the external time-serving plane: a race-enabled in-process
# three-replica group must sustain 100k queries/s with zero staleness-bound
# violations and zero group-clock regressions. Writes BENCH_timeserve.json.
loadtest:
	$(GO) run -race ./cmd/ctsload -inprocess -duration 5s -min-qps 100000 -json BENCH_timeserve.json
