package simnet

import "cts/internal/transport"

// Link shaping overrides delivery behavior on sets of directed links,
// independently of the network-wide loss probability and component
// partitions. Campaigns use it for WAN tiers, asymmetric links and partial
// partitions: a rule names a set of sources and a set of destinations and
// applies a LinkShape to every (src,dst) pair it covers. Rules are consulted
// in installation order and the first match wins; the network-wide loss and
// partition checks still apply afterwards. Rules are checked when a datagram
// is sent, except that a fully blocked link (Loss ≥ 1) also drops in-flight
// datagrams at delivery time, like a partition.

// LinkShape describes the behavior of a shaped link.
type LinkShape struct {
	// Latency replaces the network's latency model on the link (nil keeps
	// the default).
	Latency LatencyModel
	// Loss is the per-datagram drop probability on the link, in [0,1].
	// Loss ≥ 1 blocks the link outright.
	Loss float64
}

type linkRule struct {
	id    uint64
	from  map[transport.NodeID]bool // nil = any source
	to    map[transport.NodeID]bool // nil = any destination
	shape LinkShape
}

func (r *linkRule) matches(src, dst transport.NodeID) bool {
	if r.from != nil && !r.from[src] {
		return false
	}
	if r.to != nil && !r.to[dst] {
		return false
	}
	return true
}

func nodeSet(ids []transport.NodeID) map[transport.NodeID]bool {
	if ids == nil {
		return nil
	}
	set := make(map[transport.NodeID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// ShapeLinks installs a directed shaping rule covering every (src,dst) pair
// with src in from and dst in to. A nil slice means "every node". The
// returned function uninstalls the rule.
func (n *Network) ShapeLinks(from, to []transport.NodeID, shape LinkShape) (remove func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ruleSeq++
	r := &linkRule{id: n.ruleSeq, from: nodeSet(from), to: nodeSet(to), shape: shape}
	n.rules = append(n.rules, r)
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		for i, got := range n.rules {
			if got.id == r.id {
				n.rules = append(n.rules[:i], n.rules[i+1:]...)
				return
			}
		}
	}
}

// BlockLinks blocks the directed links from→to (asymmetric partition: traffic
// in the reverse direction is unaffected). The returned function heals them.
func (n *Network) BlockLinks(from, to []transport.NodeID) (heal func()) {
	return n.ShapeLinks(from, to, LinkShape{Loss: 1})
}

// PartialPartition blocks traffic between sets a and b in both directions
// while every other path (including third parties reaching both sides) stays
// connected — unlike Partition, which splits the whole network into
// components. The returned function heals the cut.
func (n *Network) PartialPartition(a, b []transport.NodeID) (heal func()) {
	ab := n.BlockLinks(a, b)
	ba := n.BlockLinks(b, a)
	return func() {
		ab()
		ba()
	}
}

// matchRule returns the first installed rule covering (src,dst), or nil.
// Caller holds n.mu.
func (n *Network) matchRule(src, dst transport.NodeID) *linkRule {
	for _, r := range n.rules {
		if r.matches(src, dst) {
			return r
		}
	}
	return nil
}

// blocked reports whether (src,dst) is currently fully blocked by a rule.
// Caller holds n.mu.
func (n *Network) blocked(src, dst transport.NodeID) bool {
	r := n.matchRule(src, dst)
	return r != nil && r.shape.Loss >= 1
}
