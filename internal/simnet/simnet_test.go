package simnet

import (
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/transport"
)

func newNet(t *testing.T, latency LatencyModel) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(7)
	return k, NewNetwork(k, latency)
}

type capture struct {
	from []transport.NodeID
	data [][]byte
	at   []time.Duration
}

func (c *capture) receiver(k *sim.Kernel) transport.Receiver {
	return func(from transport.NodeID, payload []byte) {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		c.from = append(c.from, from)
		c.data = append(c.data, cp)
		c.at = append(c.at, k.Now())
	}
}

func TestUnicastDeliveryWithFixedLatency(t *testing.T) {
	k, n := newNet(t, Fixed(100*time.Microsecond))
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got.data) != 1 || string(got.data[0]) != "hi" || got.from[0] != 0 {
		t.Fatalf("capture = %+v", got)
	}
	if got.at[0] != 100*time.Microsecond {
		t.Fatalf("delivered at %v, want 100µs", got.at[0])
	}
}

func TestBroadcastExcludesSelf(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	caps := make([]*capture, 4)
	for i := 0; i < 4; i++ {
		caps[i] = &capture{}
		n.Endpoint(transport.NodeID(i)).SetReceiver(caps[i].receiver(k))
	}
	if err := n.Endpoint(0).Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(caps[0].data) != 0 {
		t.Fatal("sender received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if len(caps[i].data) != 1 {
			t.Fatalf("node %d received %d datagrams, want 1", i, len(caps[i].data))
		}
	}
}

func TestSenderBufferReuseIsSafe(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	buf := []byte("AAAA")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "BBBB") // mutate before delivery
	k.Run()
	if string(got.data[0]) != "AAAA" {
		t.Fatalf("delivered %q, want snapshot %q", got.data[0], "AAAA")
	}
}

func TestLossDropsEverythingAtOne(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	n.SetLoss(1)
	for i := 0; i < 20; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if len(got.data) != 0 {
		t.Fatalf("delivered %d datagrams with loss=1", len(got.data))
	}
	_, _, dropped := n.Stats()
	if dropped != 20 {
		t.Fatalf("dropped = %d, want 20", dropped)
	}
}

func TestLossClamped(t *testing.T) {
	_, n := newNet(t, Fixed(0))
	n.SetLoss(-3)
	if n.loss != 0 {
		t.Fatalf("loss = %v, want clamp to 0", n.loss)
	}
	n.SetLoss(9)
	if n.loss != 1 {
		t.Fatalf("loss = %v, want clamp to 1", n.loss)
	}
}

func TestPartitionBlocksAcrossComponents(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	caps := make([]*capture, 4)
	for i := 0; i < 4; i++ {
		caps[i] = &capture{}
		n.Endpoint(transport.NodeID(i)).SetReceiver(caps[i].receiver(k))
	}
	n.Partition([]transport.NodeID{0, 1}, []transport.NodeID{2, 3})
	n.Endpoint(0).Broadcast([]byte("x"))
	k.Run()
	if len(caps[1].data) != 1 {
		t.Fatal("same-component delivery blocked")
	}
	if len(caps[2].data) != 0 || len(caps[3].data) != 0 {
		t.Fatal("cross-component delivery not blocked")
	}
	n.Heal()
	n.Endpoint(0).Send(2, []byte("y"))
	k.Run()
	if len(caps[2].data) != 1 {
		t.Fatal("delivery after Heal failed")
	}
}

func TestPartitionAppliedAtDeliveryTime(t *testing.T) {
	k, n := newNet(t, Fixed(time.Millisecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	a.Send(1, []byte("x")) // in flight
	k.RunUntil(100 * time.Microsecond)
	n.Partition([]transport.NodeID{0}, []transport.NodeID{1})
	k.Run()
	if len(got.data) != 0 {
		t.Fatal("in-flight datagram crossed a partition formed before delivery")
	}
}

func TestDownEndpointDropsTraffic(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	b.SetDown(true)
	a.Send(1, []byte("x"))
	k.Run()
	if len(got.data) != 0 {
		t.Fatal("down endpoint received a datagram")
	}
	if err := b.Send(0, []byte("y")); err == nil {
		t.Fatal("down endpoint Send should error")
	}
	if err := b.Broadcast([]byte("y")); err == nil {
		t.Fatal("down endpoint Broadcast should error")
	}
	b.SetDown(false)
	a.Send(1, []byte("z"))
	k.Run()
	if len(got.data) != 1 {
		t.Fatal("revived endpoint did not receive")
	}
}

func TestCloseBehavesAsDown(t *testing.T) {
	_, n := newNet(t, Fixed(0))
	a := n.Endpoint(0)
	n.Endpoint(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, nil); err == nil {
		t.Fatal("send after Close should error")
	}
}

func TestNoReceiverDatagramDropped(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	a := n.Endpoint(0)
	n.Endpoint(1) // no receiver installed
	a.Send(1, []byte("x"))
	k.Run() // must not panic
}

func TestEndpointIdempotent(t *testing.T) {
	_, n := newNet(t, Fixed(0))
	if n.Endpoint(3) != n.Endpoint(3) {
		t.Fatal("Endpoint should return the same instance per id")
	}
}

func TestStatsCountSentAndDelivered(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	for i := 0; i < 5; i++ {
		a.Send(1, []byte{1})
	}
	k.Run()
	sent, delivered, dropped := n.Stats()
	if sent[0] != 5 || delivered[1] != 5 || dropped != 0 {
		t.Fatalf("sent=%v delivered=%v dropped=%d", sent, delivered, dropped)
	}
}

func TestEthernetModelShape(t *testing.T) {
	k, n := newNet(t, nil) // default Ethernet model
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got capture
	b.SetReceiver(got.receiver(k))
	const trials = 2000
	payload := make([]byte, 100) // token-sized
	var prev time.Duration
	for i := 0; i < trials; i++ {
		sendAt := prev + time.Millisecond
		k.At(sendAt, func() { a.Send(1, payload) })
		prev = sendAt
	}
	k.Run()
	if len(got.at) != trials {
		t.Fatalf("delivered %d, want %d", len(got.at), trials)
	}
	var under48, over48 int
	for i, at := range got.at {
		lat := at - time.Duration(i+1)*time.Millisecond
		if lat < 48*time.Microsecond {
			under48++
		} else {
			over48++
		}
	}
	// Fixed cost is 40µs stack + 8µs serialization: nothing may arrive faster.
	if under48 != 0 {
		t.Fatalf("%d datagrams faster than the 48µs floor", under48)
	}
	if over48 != trials {
		t.Fatalf("over48 = %d, want %d", over48, trials)
	}
}

func TestDeterministicDeliveryTimes(t *testing.T) {
	run := func() []time.Duration {
		k := sim.NewKernel(99)
		n := NewNetwork(k, nil)
		a, b := n.Endpoint(0), n.Endpoint(1)
		var got capture
		b.SetReceiver(got.receiver(k))
		for i := 0; i < 50; i++ {
			k.At(time.Duration(i)*time.Millisecond, func() { a.Send(1, []byte("x")) })
		}
		k.Run()
		return got.at
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFIFOPerLink(t *testing.T) {
	// Even with wildly jittery latencies, back-to-back datagrams on one
	// link must arrive in send order.
	k := sim.NewKernel(17)
	n := NewNetwork(k, nil) // Ethernet model with jitter and spikes
	a, b := n.Endpoint(0), n.Endpoint(1)
	var got []byte
	b.SetReceiver(func(_ transport.NodeID, p []byte) { got = append(got, p[0]) })
	for i := 0; i < 200; i++ {
		a.Send(1, []byte{byte(i)})
	}
	k.Run()
	if len(got) != 200 {
		t.Fatalf("delivered %d/200", len(got))
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("reordered at %d: got %d", i, v)
		}
	}
}
