package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"testing"

	"cts/internal/sim"
	"cts/internal/transport"
)

func TestShapeLinksLatencyOverride(t *testing.T) {
	k, n := newNet(t, Fixed(100*time.Microsecond))
	a, b := n.Endpoint(0), n.Endpoint(1)
	_ = a
	var got capture
	b.SetReceiver(got.receiver(k))

	remove := n.ShapeLinks([]transport.NodeID{0}, []transport.NodeID{1},
		LinkShape{Latency: Fixed(5 * time.Millisecond)})
	if err := n.Endpoint(0).Send(1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got.at) != 1 || got.at[0] != 5*time.Millisecond {
		t.Fatalf("shaped delivery at %v, want 5ms", got.at)
	}

	remove()
	if err := n.Endpoint(0).Send(1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got.at) != 2 || got.at[1]-got.at[0] != 100*time.Microsecond {
		t.Fatalf("post-removal delivery times %v, want +100µs", got.at)
	}
}

func TestBlockLinksIsAsymmetric(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	var atA, atB capture
	n.Endpoint(0).SetReceiver(atA.receiver(k))
	n.Endpoint(1).SetReceiver(atB.receiver(k))

	heal := n.BlockLinks([]transport.NodeID{0}, []transport.NodeID{1})
	if err := n.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.Endpoint(1).Send(0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(atB.data) != 0 {
		t.Fatalf("blocked direction delivered %d datagrams", len(atB.data))
	}
	if len(atA.data) != 1 || string(atA.data[0]) != "y" {
		t.Fatalf("reverse direction capture = %+v", atA)
	}

	heal()
	if err := n.Endpoint(0).Send(1, []byte("x2")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(atB.data) != 1 || string(atB.data[0]) != "x2" {
		t.Fatalf("healed direction capture = %+v", atB)
	}
}

func TestBlockedLinkDropsInFlight(t *testing.T) {
	k, n := newNet(t, Fixed(time.Millisecond))
	var got capture
	n.Endpoint(1).SetReceiver(got.receiver(k))
	if err := n.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Block the link while the datagram is in flight: like a partition, the
	// cut drops it at delivery time.
	k.After(100*time.Microsecond, func() {
		n.BlockLinks([]transport.NodeID{0}, []transport.NodeID{1})
	})
	k.Run()
	if len(got.data) != 0 {
		t.Fatalf("in-flight datagram survived the cut: %+v", got)
	}
}

func TestPartialPartitionKeepsThirdParties(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	caps := make([]*capture, 3)
	for i := range caps {
		caps[i] = &capture{}
		n.Endpoint(transport.NodeID(i)).SetReceiver(caps[i].receiver(k))
	}

	heal := n.PartialPartition([]transport.NodeID{0}, []transport.NodeID{1})
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			msg := []byte{byte(src), byte(dst)}
			if err := n.Endpoint(transport.NodeID(src)).Send(transport.NodeID(dst), msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	k.Run()
	// 0↔1 cut both ways; every path through or to node 2 survives.
	if len(caps[0].data) != 1 || caps[0].from[0] != 2 {
		t.Fatalf("node 0 capture = %+v", caps[0])
	}
	if len(caps[1].data) != 1 || caps[1].from[0] != 2 {
		t.Fatalf("node 1 capture = %+v", caps[1])
	}
	if len(caps[2].data) != 2 {
		t.Fatalf("node 2 capture = %+v", caps[2])
	}

	heal()
	if err := n.Endpoint(0).Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(caps[1].data) != 2 {
		t.Fatalf("healed 0→1 not delivered: %+v", caps[1])
	}
}

func TestRuleOrderFirstMatchWins(t *testing.T) {
	k, n := newNet(t, Fixed(time.Microsecond))
	var got capture
	n.Endpoint(1).SetReceiver(got.receiver(k))
	n.ShapeLinks([]transport.NodeID{0}, []transport.NodeID{1},
		LinkShape{Latency: Fixed(time.Millisecond)})
	n.ShapeLinks(nil, nil, LinkShape{Loss: 1}) // later, broader rule loses
	if err := n.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got.at) != 1 || got.at[0] != time.Millisecond {
		t.Fatalf("capture = %+v, want one delivery at 1ms", got)
	}
}

// deliveryTrace runs a fixed traffic pattern over a shaped network and
// records every delivery as "(time) src->dst len". Same seed must produce the
// identical trace.
func deliveryTrace(seed int64) []string {
	k := sim.NewKernel(seed)
	n := NewNetwork(k, Ethernet())
	var trace []string
	const nodes = 6
	for i := 0; i < nodes; i++ {
		id := transport.NodeID(i)
		dst := id
		n.Endpoint(id).SetReceiver(func(from transport.NodeID, payload []byte) {
			trace = append(trace, fmt.Sprintf("%d %d->%d %d", k.Now(), from, dst, len(payload)))
		})
	}
	// WAN tier between {0,1,2} and {3,4,5}, lossy link 1→4, asymmetric cut 5→0.
	n.ShapeLinks([]transport.NodeID{1}, []transport.NodeID{4}, LinkShape{Loss: 0.5})
	n.ShapeLinks([]transport.NodeID{0, 1, 2}, []transport.NodeID{3, 4, 5},
		LinkShape{Latency: WAN(10 * time.Millisecond)})
	n.ShapeLinks([]transport.NodeID{3, 4, 5}, []transport.NodeID{0, 1, 2},
		LinkShape{Latency: WAN(10 * time.Millisecond)})
	n.BlockLinks([]transport.NodeID{5}, []transport.NodeID{0})
	n.SetLoss(0.05)

	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 40; step++ {
		src := transport.NodeID(rng.Intn(nodes))
		payload := make([]byte, 20+rng.Intn(200))
		at := time.Duration(step) * 250 * time.Microsecond
		k.At(at, func() {
			if rng.Float64() < 0.3 {
				_ = n.Endpoint(src).Broadcast(payload)
			} else {
				dst := transport.NodeID(rng.Intn(nodes))
				if dst != src {
					_ = n.Endpoint(src).Send(dst, payload)
				}
			}
		})
	}
	k.Run()
	return trace
}

func TestShapedDeliveryTraceDeterminism(t *testing.T) {
	a := deliveryTrace(42)
	b := deliveryTrace(42)
	if len(a) == 0 {
		t.Fatal("empty delivery trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if c := deliveryTrace(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces; RNG not threaded")
		}
	}
}
