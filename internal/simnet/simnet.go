// Package simnet is a discrete-event simulated network calibrated to the
// paper's testbed: four PCs on switched 100 Mb/s Ethernet whose measured
// token-passing time peaks near 51 µs. Latency, loss, partitions and node
// crashes are all injectable, and every run is deterministic given the
// kernel's seed.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"cts/internal/sim"
	"cts/internal/transport"
)

// LatencyModel computes the one-way delay of a datagram. Implementations may
// draw from rng (the kernel's deterministic source).
type LatencyModel func(rng *rand.Rand, from, to transport.NodeID, size int) time.Duration

// Ethernet returns the default latency model, calibrated so that a
// token-sized datagram (~100 bytes) takes ≈48–60 µs one way: a fixed
// protocol-stack cost plus a per-byte serialization cost at 100 Mb/s
// (0.08 µs/byte) plus an exponential jitter tail, reproducing the shape of
// the paper's measured token-passing distribution (peak ≈51 µs with rare
// long-latency outliers).
func Ethernet() LatencyModel {
	const (
		stackCost   = 40 * time.Microsecond
		perByte     = 80 * time.Nanosecond // 100 Mb/s = 12.5 B/µs
		jitterMean  = 5 * time.Microsecond
		spikeProb   = 0.002 // rare scheduling spikes (paper: "data points with long latency, albeit with very low probability")
		spikeExtra  = 400 * time.Microsecond
		spikeJitter = 200 * time.Microsecond
	)
	return func(rng *rand.Rand, _, _ transport.NodeID, size int) time.Duration {
		d := stackCost + time.Duration(size)*perByte +
			time.Duration(rng.ExpFloat64()*float64(jitterMean))
		if rng.Float64() < spikeProb {
			d += spikeExtra + time.Duration(rng.Float64()*float64(spikeJitter))
		}
		return d
	}
}

// Fixed returns a latency model with constant delay d, useful in unit tests.
func Fixed(d time.Duration) LatencyModel {
	return func(*rand.Rand, transport.NodeID, transport.NodeID, int) time.Duration { return d }
}

// WAN returns a latency model shaped like an inter-region link: a fixed
// propagation base, the same 100 Mb/s per-byte cost as Ethernet, an
// exponential jitter tail of mean base/10, and occasional congestion spikes
// adding up to 4× base. Campaign WAN profiles use it with bases of tens of
// milliseconds.
func WAN(base time.Duration) LatencyModel {
	const perByte = 80 * time.Nanosecond
	if base <= 0 {
		base = 30 * time.Millisecond
	}
	return func(rng *rand.Rand, _, _ transport.NodeID, size int) time.Duration {
		d := base + time.Duration(size)*perByte +
			time.Duration(rng.ExpFloat64()*float64(base)/10)
		if rng.Float64() < 0.01 {
			d += time.Duration(rng.Float64() * 4 * float64(base))
		}
		return d
	}
}

// Network is the simulated fabric connecting endpoints.
// All methods are intended to be called from kernel event callbacks or
// before the simulation starts.
type Network struct {
	k       *sim.Kernel
	latency LatencyModel

	mu        sync.Mutex
	endpoints map[transport.NodeID]*Endpoint
	loss      float64
	partition map[transport.NodeID]int // node -> partition component; empty = fully connected

	// lastArrival enforces FIFO per (src,dst) link: datagrams sent
	// back-to-back on one path do not reorder, as on a switched LAN.
	lastArrival map[linkKey]time.Duration

	// rules are the installed link-shaping rules, consulted in order
	// (see shaping.go).
	rules   []*linkRule
	ruleSeq uint64

	// Counters for experiment reporting.
	sent      map[transport.NodeID]uint64
	delivered map[transport.NodeID]uint64
	dropped   uint64
}

type linkKey struct{ src, dst transport.NodeID }

// NewNetwork creates a network driven by kernel k. If latency is nil the
// Ethernet model is used.
func NewNetwork(k *sim.Kernel, latency LatencyModel) *Network {
	if latency == nil {
		latency = Ethernet()
	}
	return &Network{
		k:           k,
		latency:     latency,
		endpoints:   make(map[transport.NodeID]*Endpoint),
		partition:   make(map[transport.NodeID]int),
		lastArrival: make(map[linkKey]time.Duration),
		sent:        make(map[transport.NodeID]uint64),
		delivered:   make(map[transport.NodeID]uint64),
	}
}

// ErrClosed is returned by sends on a closed or crashed endpoint.
var ErrClosed = errors.New("simnet: endpoint closed")

// Endpoint attaches (or returns the existing) endpoint for id.
func (n *Network) Endpoint(id transport.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{net: n, id: id}
	n.endpoints[id] = ep
	return ep
}

// SetLoss sets the independent per-datagram loss probability.
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case p < 0:
		n.loss = 0
	case p > 1:
		n.loss = 1
	default:
		n.loss = p
	}
}

// Partition splits the network into components; datagrams flow only within a
// component. Nodes not named in any component form one extra implicit
// component together.
func (n *Network) Partition(components ...[]transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[transport.NodeID]int)
	for i, comp := range components {
		for _, id := range comp {
			n.partition[id] = i + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[transport.NodeID]int)
}

func (n *Network) connected(a, b transport.NodeID) bool {
	if len(n.partition) == 0 {
		return true
	}
	return n.partition[a] == n.partition[b]
}

// Stats reports per-node sent/delivered datagram counts and the total
// dropped count (loss + partition + down endpoints).
func (n *Network) Stats() (sent, delivered map[transport.NodeID]uint64, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := make(map[transport.NodeID]uint64, len(n.sent))
	for k, v := range n.sent {
		s[k] = v
	}
	d := make(map[transport.NodeID]uint64, len(n.delivered))
	for k, v := range n.delivered {
		d[k] = v
	}
	return s, d, n.dropped
}

// send queues delivery of payload from src to dst, applying loss, partition
// and latency. Caller holds no lock.
func (n *Network) send(src, dst transport.NodeID, payload []byte) {
	n.mu.Lock()
	ep, ok := n.endpoints[dst]
	if !ok || ep.down || !n.connected(src, dst) {
		n.dropped++
		n.mu.Unlock()
		return
	}
	model := n.latency
	if r := n.matchRule(src, dst); r != nil {
		if r.shape.Loss >= 1 ||
			(r.shape.Loss > 0 && n.k.RNG().Float64() < r.shape.Loss) {
			n.dropped++
			n.mu.Unlock()
			return
		}
		if r.shape.Latency != nil {
			model = r.shape.Latency
		}
	}
	if n.loss > 0 && n.k.RNG().Float64() < n.loss {
		n.dropped++
		n.mu.Unlock()
		return
	}
	n.sent[src]++
	delay := model(n.k.RNG(), src, dst, len(payload))
	// FIFO per link: a datagram never overtakes an earlier one on the same
	// (src,dst) path.
	key := linkKey{src: src, dst: dst}
	arrival := n.k.Now() + delay
	if last := n.lastArrival[key]; arrival <= last {
		arrival = last + time.Nanosecond
		delay = arrival - n.k.Now()
	}
	n.lastArrival[key] = arrival
	// Copy: the sender may reuse its buffer immediately.
	data := make([]byte, len(payload))
	copy(data, payload)
	n.mu.Unlock()

	n.k.After(delay, func() {
		n.mu.Lock()
		ep, ok := n.endpoints[dst]
		if !ok || ep.down || !n.connected(src, dst) || n.blocked(src, dst) {
			n.dropped++
			n.mu.Unlock()
			return
		}
		recv := ep.recv
		n.delivered[dst]++
		n.mu.Unlock()
		if recv != nil {
			recv(src, data)
		}
	})
}

// Endpoint is one node's attachment to the network; it implements
// transport.Transport.
type Endpoint struct {
	net  *Network
	id   transport.NodeID
	recv transport.Receiver
	down bool
}

var _ transport.Transport = (*Endpoint)(nil)

// LocalID implements transport.Transport.
func (e *Endpoint) LocalID() transport.NodeID { return e.id }

// SetReceiver implements transport.Transport.
func (e *Endpoint) SetReceiver(r transport.Receiver) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.recv = r
}

// Send implements transport.Transport.
func (e *Endpoint) Send(to transport.NodeID, payload []byte) error {
	e.net.mu.Lock()
	down := e.down
	e.net.mu.Unlock()
	if down {
		return fmt.Errorf("%w: %v", ErrClosed, e.id)
	}
	e.net.send(e.id, to, payload)
	return nil
}

// Broadcast implements transport.Transport.
func (e *Endpoint) Broadcast(payload []byte) error {
	e.net.mu.Lock()
	if e.down {
		e.net.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrClosed, e.id)
	}
	ids := make([]transport.NodeID, 0, len(e.net.endpoints))
	for id := range e.net.endpoints {
		if id != e.id {
			ids = append(ids, id)
		}
	}
	e.net.mu.Unlock()
	// Deterministic fan-out order.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.net.send(e.id, id, payload)
	}
	return nil
}

// SetDown crashes (true) or revives (false) the endpoint. A down endpoint
// neither sends nor receives; in-flight datagrams addressed to it are
// dropped at delivery time.
func (e *Endpoint) SetDown(down bool) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.down = down
}

// Close implements transport.Transport; a closed endpoint behaves as down.
func (e *Endpoint) Close() error {
	e.SetDown(true)
	return nil
}
