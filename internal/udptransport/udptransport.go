// Package udptransport implements transport.Transport over real UDP sockets
// using only the net stdlib. It is the deployment transport used by
// cmd/ctsnode and cmd/ctsclient; each datagram is framed with the sender's
// NodeID so receivers learn the logical source without reverse address
// lookups.
package udptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"cts/internal/obs"
	"cts/internal/transport"
)

const (
	frameHeaderLen = 4        // big-endian sender NodeID
	maxDatagram    = 64 << 10 // read buffer size

	// defaultSockBuf is the SO_RCVBUF/SO_SNDBUF size requested at bind.
	// Token-ring traffic is bursty (a token visit flushes a whole window of
	// messages); large kernel buffers absorb the bursts instead of dropping.
	defaultSockBuf = 4 << 20
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("udptransport: closed")

// ErrUnknownPeer is returned when sending to a node with no registered address.
var ErrUnknownPeer = errors.New("udptransport: unknown peer")

// Transport is a UDP-backed transport endpoint.
type Transport struct {
	id   transport.NodeID
	conn *net.UDPConn

	// frames pools send-frame buffers so concurrent senders do not allocate
	// per datagram; the receive path reuses one long-lived buffer, since
	// the read loop is the sole reader.
	frames sync.Pool

	effRecvBuf int // effective SO_RCVBUF as reported by the kernel
	effSendBuf int // effective SO_SNDBUF as reported by the kernel

	// readFrom is the receive primitive of the read loop, split out so tests
	// can inject transient socket errors. Set once in New, before the read
	// goroutine starts.
	readFrom func([]byte) (int, *net.UDPAddr, error)

	readErrors atomic.Uint64 // transient receive failures the loop survived
	sendErrors atomic.Uint64 // failed datagram sends, summed over peers

	mu     sync.Mutex
	peers  map[transport.NodeID]*net.UDPAddr
	recv   transport.Receiver
	closed bool

	done chan struct{}
}

var _ transport.Transport = (*Transport)(nil)

// Option configures a Transport.
type Option func(*options)

// readFromFunc is the receive primitive of the read loop.
type readFromFunc func([]byte) (int, *net.UDPAddr, error)

type options struct {
	recvBuf, sendBuf int
	// wrapReadFrom, when set, wraps the read loop's receive primitive —
	// test-only seam for injecting transient socket errors.
	wrapReadFrom func(readFromFunc) readFromFunc
}

// WithSocketBuffers requests SO_RCVBUF/SO_SNDBUF sizes (the kernel may
// clamp; BufferSizes reports what it granted). Zero keeps the default
// (4 MiB each).
func WithSocketBuffers(recv, send int) Option {
	return func(o *options) {
		if recv > 0 {
			o.recvBuf = recv
		}
		if send > 0 {
			o.sendBuf = send
		}
	}
}

// New binds a UDP socket on bindAddr (e.g. "127.0.0.1:0") for node id and
// starts the receive loop. Peer addresses are registered with SetPeer.
func New(id transport.NodeID, bindAddr string, opts ...Option) (*Transport, error) {
	o := options{recvBuf: defaultSockBuf, sendBuf: defaultSockBuf}
	for _, opt := range opts {
		opt(&o)
	}
	laddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", bindAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %q: %w", bindAddr, err)
	}
	_ = conn.SetReadBuffer(o.recvBuf)
	_ = conn.SetWriteBuffer(o.sendBuf)
	tr := &Transport{
		id:    id,
		conn:  conn,
		peers: make(map[transport.NodeID]*net.UDPAddr),
		done:  make(chan struct{}),
	}
	tr.frames.New = func() any { return make([]byte, 0, 2048) }
	tr.readFrom = conn.ReadFromUDP
	if o.wrapReadFrom != nil {
		tr.readFrom = o.wrapReadFrom(tr.readFrom)
	}
	tr.effRecvBuf, tr.effSendBuf = effectiveBufferSizes(conn)
	go tr.readLoop()
	return tr, nil
}

// BufferSizes reports the effective socket buffer sizes the kernel granted
// at bind (0, 0 where the platform offers no way to read them back). On
// Linux the reported SO_RCVBUF value includes the kernel's bookkeeping
// doubling.
func (t *Transport) BufferSizes() (recv, send int) {
	return t.effRecvBuf, t.effSendBuf
}

// LocalID implements transport.Transport.
func (t *Transport) LocalID() transport.NodeID { return t.id }

// LocalAddr reports the bound socket address (useful when binding port 0).
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// SetPeer registers (or updates) the address of a peer node.
func (t *Transport) SetPeer(id transport.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udptransport: resolve peer %v %q: %w", id, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = ua
	return nil
}

// SetReceiver implements transport.Transport. The receiver is invoked
// serially from the transport's read goroutine; the payload is only valid
// for the duration of the call.
func (t *Transport) SetReceiver(r transport.Receiver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = r
}

// Send implements transport.Transport.
func (t *Transport) Send(to transport.NodeID, payload []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	return t.writeTo(to, addr, payload)
}

// Broadcast implements transport.Transport.
func (t *Transport) Broadcast(payload []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	type dest struct {
		id   transport.NodeID
		addr *net.UDPAddr
	}
	dests := make([]dest, 0, len(t.peers))
	for id, addr := range t.peers {
		if id != t.id {
			dests = append(dests, dest{id, addr})
		}
	}
	t.mu.Unlock()
	sort.Slice(dests, func(i, j int) bool { return dests[i].id < dests[j].id })
	// Attempt every peer even after a failure — a broadcast that stops at the
	// first bad peer would silently skip the rest of the ring — and report
	// every failed destination, not just the first.
	var errs []error
	for _, d := range dests {
		if err := t.writeTo(d.id, d.addr, payload); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (t *Transport) writeTo(to transport.NodeID, addr *net.UDPAddr, payload []byte) error {
	frame := t.frames.Get().([]byte)[:0]
	frame = binary.BigEndian.AppendUint32(frame, uint32(t.id))
	frame = append(frame, payload...)
	_, err := t.conn.WriteToUDP(frame, addr)
	t.frames.Put(frame) //nolint:staticcheck // slice header boxing is fine here
	if err != nil {
		t.sendErrors.Add(1)
		return fmt.Errorf("udptransport: send to node %v (%v): %w", to, addr, err)
	}
	return nil
}

// ObsNode implements obs.Source.
func (t *Transport) ObsNode() uint32 { return uint32(t.id) }

// ObsSamples implements obs.Source, exposing the transport's error counters
// (udp.read_errors, udp.send_errors). Unlike the loop-confined stack
// sources, these counters are atomics, so gathering is safe from any
// goroutine.
func (t *Transport) ObsSamples() []obs.Sample {
	return []obs.Sample{
		{Node: uint32(t.id), Name: "udp.read_errors", Value: t.readErrors.Load()},
		{Node: uint32(t.id), Name: "udp.send_errors", Value: t.sendErrors.Load()},
	}
}

// Close implements transport.Transport. It stops the read loop and waits for
// it to exit.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}

func (t *Transport) readLoop() {
	defer close(t.done)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := t.readFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // Close tore down the socket; end the loop
			}
			// Transient receive failure (ICMP-induced errors, EINTR,
			// momentary resource exhaustion): one bad datagram must not
			// silence the node for good. Count it and keep serving.
			t.readErrors.Add(1)
			continue
		}
		if n < frameHeaderLen {
			continue // runt frame
		}
		from := transport.NodeID(binary.BigEndian.Uint32(buf))
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			recv(from, buf[frameHeaderLen:n])
		}
	}
}
