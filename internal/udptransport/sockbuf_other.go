//go:build !unix

package udptransport

import "net"

// effectiveBufferSizes has no portable implementation off unix; callers see
// zeros and report "unknown".
func effectiveBufferSizes(conn *net.UDPConn) (recv, send int) {
	return 0, 0
}
