//go:build unix

package udptransport

import (
	"net"
	"syscall"
)

// effectiveBufferSizes reads back the socket buffer sizes the kernel
// actually granted (SO_RCVBUF requests are clamped to net.core.rmem_max).
func effectiveBufferSizes(conn *net.UDPConn) (recv, send int) {
	sc, err := conn.SyscallConn()
	if err != nil {
		return 0, 0
	}
	_ = sc.Control(func(fd uintptr) {
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF); err == nil {
			recv = v
		}
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF); err == nil {
			send = v
		}
	})
	return recv, send
}
