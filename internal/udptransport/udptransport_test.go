package udptransport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cts/internal/transport"
)

// newPair builds n transports on loopback with full peer meshes.
func newMesh(t *testing.T, n int) []*Transport {
	t.Helper()
	trs := make([]*Transport, n)
	for i := 0; i < n; i++ {
		tr, err := New(transport.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		trs[i] = tr
	}
	for i, a := range trs {
		for j, b := range trs {
			if i == j {
				continue
			}
			if err := a.SetPeer(transport.NodeID(j), b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trs
}

type collector struct {
	mu   sync.Mutex
	from []transport.NodeID
	data []string
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) receiver(from transport.NodeID, payload []byte) {
	c.mu.Lock()
	c.from = append(c.from, from)
	c.data = append(c.data, string(payload))
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for datagram %d/%d", i+1, n)
		}
	}
}

func TestUnicast(t *testing.T) {
	trs := newMesh(t, 2)
	c := newCollector()
	trs[1].SetReceiver(c.receiver)
	if err := trs[0].Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.from[0] != 0 || c.data[0] != "ping" {
		t.Fatalf("got from=%v data=%q", c.from[0], c.data[0])
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	trs := newMesh(t, 4)
	cols := make([]*collector, 4)
	for i, tr := range trs {
		cols[i] = newCollector()
		tr.SetReceiver(cols[i].receiver)
	}
	if err := trs[2].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		cols[i].wait(t, 1)
		cols[i].mu.Lock()
		if cols[i].from[0] != 2 || cols[i].data[0] != "hello" {
			t.Fatalf("node %d: got from=%v data=%q", i, cols[i].from[0], cols[i].data[0])
		}
		cols[i].mu.Unlock()
	}
	// Sender must not hear itself.
	select {
	case <-cols[2].ch:
		t.Fatal("sender received its own broadcast")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnknownPeer(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(9, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send err = %v, want ErrClosed", err)
	}
	if err := tr.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Broadcast err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestManyDatagramsArriveSerially(t *testing.T) {
	trs := newMesh(t, 2)
	c := newCollector()
	trs[1].SetReceiver(c.receiver)
	const n = 200
	for i := 0; i < n; i++ {
		if err := trs[0].Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// UDP on loopback rarely drops, but tolerate a little loss to avoid
	// flakes: require at least 90% delivery.
	deadline := time.After(5 * time.Second)
	got := 0
	for got < n*9/10 {
		select {
		case <-c.ch:
			got++
		case <-deadline:
			t.Fatalf("only %d/%d datagrams arrived", got, n)
		}
	}
}

func TestBadBindAddr(t *testing.T) {
	if _, err := New(0, "not an address"); err == nil {
		t.Fatal("expected error for bad bind address")
	}
}

func TestBadPeerAddr(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.SetPeer(1, "bogus::::"); err == nil {
		t.Fatal("expected error for bad peer address")
	}
}

func TestLocalIDAndAddr(t *testing.T) {
	tr, err := New(5, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.LocalID() != 5 {
		t.Fatalf("LocalID = %v, want 5", tr.LocalID())
	}
	if tr.LocalAddr() == "" {
		t.Fatal("LocalAddr empty")
	}
}

func TestSocketBufferSizes(t *testing.T) {
	tr, err := New(1, "127.0.0.1:0", WithSocketBuffers(1<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, send := tr.BufferSizes()
	// On unix the kernel reports the granted sizes (possibly clamped or
	// doubled); all we require is that the readback works at all there.
	if recv <= 0 || send <= 0 {
		t.Skipf("platform reports no effective buffer sizes (recv=%d send=%d)", recv, send)
	}
}
