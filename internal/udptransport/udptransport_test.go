package udptransport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cts/internal/transport"
)

// newPair builds n transports on loopback with full peer meshes.
func newMesh(t *testing.T, n int) []*Transport {
	t.Helper()
	trs := make([]*Transport, n)
	for i := 0; i < n; i++ {
		tr, err := New(transport.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		trs[i] = tr
	}
	for i, a := range trs {
		for j, b := range trs {
			if i == j {
				continue
			}
			if err := a.SetPeer(transport.NodeID(j), b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trs
}

type collector struct {
	mu   sync.Mutex
	from []transport.NodeID
	data []string
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) receiver(from transport.NodeID, payload []byte) {
	c.mu.Lock()
	c.from = append(c.from, from)
	c.data = append(c.data, string(payload))
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for datagram %d/%d", i+1, n)
		}
	}
}

func TestUnicast(t *testing.T) {
	trs := newMesh(t, 2)
	c := newCollector()
	trs[1].SetReceiver(c.receiver)
	if err := trs[0].Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.from[0] != 0 || c.data[0] != "ping" {
		t.Fatalf("got from=%v data=%q", c.from[0], c.data[0])
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	trs := newMesh(t, 4)
	cols := make([]*collector, 4)
	for i, tr := range trs {
		cols[i] = newCollector()
		tr.SetReceiver(cols[i].receiver)
	}
	if err := trs[2].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		cols[i].wait(t, 1)
		cols[i].mu.Lock()
		if cols[i].from[0] != 2 || cols[i].data[0] != "hello" {
			t.Fatalf("node %d: got from=%v data=%q", i, cols[i].from[0], cols[i].data[0])
		}
		cols[i].mu.Unlock()
	}
	// Sender must not hear itself.
	select {
	case <-cols[2].ch:
		t.Fatal("sender received its own broadcast")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnknownPeer(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(9, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send err = %v, want ErrClosed", err)
	}
	if err := tr.Broadcast([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Broadcast err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestManyDatagramsArriveSerially(t *testing.T) {
	trs := newMesh(t, 2)
	c := newCollector()
	trs[1].SetReceiver(c.receiver)
	const n = 200
	for i := 0; i < n; i++ {
		if err := trs[0].Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// UDP on loopback rarely drops, but tolerate a little loss to avoid
	// flakes: require at least 90% delivery.
	deadline := time.After(5 * time.Second)
	got := 0
	for got < n*9/10 {
		select {
		case <-c.ch:
			got++
		case <-deadline:
			t.Fatalf("only %d/%d datagrams arrived", got, n)
		}
	}
}

func TestBadBindAddr(t *testing.T) {
	if _, err := New(0, "not an address"); err == nil {
		t.Fatal("expected error for bad bind address")
	}
}

func TestBadPeerAddr(t *testing.T) {
	tr, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.SetPeer(1, "bogus::::"); err == nil {
		t.Fatal("expected error for bad peer address")
	}
}

func TestLocalIDAndAddr(t *testing.T) {
	tr, err := New(5, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.LocalID() != 5 {
		t.Fatalf("LocalID = %v, want 5", tr.LocalID())
	}
	if tr.LocalAddr() == "" {
		t.Fatal("LocalAddr empty")
	}
}

func TestSocketBufferSizes(t *testing.T) {
	tr, err := New(1, "127.0.0.1:0", WithSocketBuffers(1<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv, send := tr.BufferSizes()
	// On unix the kernel reports the granted sizes (possibly clamped or
	// doubled); all we require is that the readback works at all there.
	if recv <= 0 || send <= 0 {
		t.Skipf("platform reports no effective buffer sizes (recv=%d send=%d)", recv, send)
	}
}

// obsCounter reads one of the transport's error counters by name.
func obsCounter(t *testing.T, tr *Transport, name string) uint64 {
	t.Helper()
	for _, s := range tr.ObsSamples() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("counter %q not exposed", name)
	return 0
}

// TestReadLoopSurvivesTransientErrors injects transient receive errors ahead
// of real datagrams: the read loop must count them and keep serving instead
// of exiting on the first failure, and must still shut down cleanly on Close
// (which the Cleanup verifies — a loop that ignored net.ErrClosed would hang
// it).
func TestReadLoopSurvivesTransientErrors(t *testing.T) {
	const transientErrs = 3
	var injected atomic.Uint64
	inject := func(o *options) {
		o.wrapReadFrom = func(real readFromFunc) readFromFunc {
			return func(b []byte) (int, *net.UDPAddr, error) {
				if injected.Add(1) <= transientErrs {
					return 0, nil, errors.New("simulated transient receive failure")
				}
				return real(b)
			}
		}
	}
	tr, err := New(1, "127.0.0.1:0", inject)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	sender, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sender.Close() })
	if err := sender.SetPeer(1, tr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	tr.SetReceiver(c.receiver)

	if err := sender.Send(1, []byte("after the storm")); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	c.mu.Lock()
	if c.from[0] != 0 || c.data[0] != "after the storm" {
		t.Fatalf("got from=%v data=%q", c.from[0], c.data[0])
	}
	c.mu.Unlock()
	if got := obsCounter(t, tr, "udp.read_errors"); got != transientErrs {
		t.Fatalf("udp.read_errors = %d, want %d", got, transientErrs)
	}
}

// TestBroadcastPartialFailure gives the sender one unreachable peer (an IPv6
// destination through its IPv4-bound socket) sorted ahead of a healthy one:
// the broadcast must still reach the healthy peer, report the failed peer by
// node id, and count the failure.
func TestBroadcastPartialFailure(t *testing.T) {
	sender, err := New(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sender.Close() })
	good, err := New(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { good.Close() })

	// Peer 1 (sorted first, so its failure precedes the healthy send) points
	// at an IPv6 address the IPv4-bound socket cannot reach.
	if err := sender.SetPeer(1, "[::1]:9"); err != nil {
		t.Fatal(err)
	}
	if err := sender.SetPeer(2, good.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	good.SetReceiver(c.receiver)

	err = sender.Broadcast([]byte("partial"))
	if err == nil {
		t.Fatal("broadcast to an unreachable peer reported no error")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("node %v", transport.NodeID(1))) {
		t.Fatalf("error does not name the failed peer: %v", err)
	}
	// The failure on peer 1 must not have short-circuited peer 2's send.
	c.wait(t, 1)
	c.mu.Lock()
	if c.from[0] != 0 || c.data[0] != "partial" {
		t.Fatalf("got from=%v data=%q", c.from[0], c.data[0])
	}
	c.mu.Unlock()
	if got := obsCounter(t, sender, "udp.send_errors"); got != 1 {
		t.Fatalf("udp.send_errors = %d, want 1", got)
	}
	if got := obsCounter(t, sender, "udp.read_errors"); got != 0 {
		t.Fatalf("udp.read_errors = %d, want 0", got)
	}
}
