// Package wire defines the fault-tolerant protocol messages exchanged above
// the group-communication layer, following §3.1 of the paper: every message
// carries a common header (msg_type, src_grp_id, dst_grp_id, conn_id,
// msg_seq_num) followed by a type-specific payload. For a CCS message the
// msg_seq_num field carries the CCS round number, and the payload carries the
// sending thread identifier and the local clock value proposed for the group
// clock (§4.1 adds a clock-operation type identifier so that gettimeofday,
// time and ftime variants are distinguished).
//
// Encoding is explicit big-endian binary (encoding/binary); marshal followed
// by unmarshal is the identity on every message type, a property the tests
// verify exhaustively.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// MsgType identifies the kind of a fault-tolerant protocol message.
type MsgType uint8

// Message types. CCS is the control message of the consistent clock
// synchronization algorithm; the remainder implement remote invocation and
// state transfer on the replication infrastructure.
const (
	TypeCCS MsgType = iota + 1
	TypeRequest
	TypeReply
	TypeGetState
	TypeCheckpoint
	// TypeCCSBatch carries proposals for several pending CCS rounds in one
	// totally-ordered message (round coalescing). Added after the original
	// five types, so every earlier message keeps its encoding — old and new
	// nodes agree on all shared message types.
	TypeCCSBatch
	// TypeCCSFed is a federated offset-adoption round (federation.go):
	// ordered inside one group like any CCS message, its decided value nudges
	// the group clock toward neighbor groups under the bounded-influence
	// merge rule. Appended after TypeCCSBatch for the same compatibility
	// reason.
	TypeCCSFed
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeCCS:
		return "CCS"
	case TypeRequest:
		return "REQUEST"
	case TypeReply:
		return "REPLY"
	case TypeGetState:
		return "GET_STATE"
	case TypeCheckpoint:
		return "CHECKPOINT"
	case TypeCCSBatch:
		return "CCS_BATCH"
	case TypeCCSFed:
		return "CCS_FED"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// GroupID identifies a replica group.
type GroupID uint32

// ConnID identifies a connection established between a source group and a
// destination group.
type ConnID uint32

// ClockOp identifies which interposed clock-related system call produced a
// CCS round (§4.1: "for each such system call, we assign a unique type
// identifier").
type ClockOp uint8

// Interposed clock operations.
const (
	OpGettimeofday ClockOp = iota + 1 // µs-resolution wall clock
	OpTime                            // second-resolution wall clock
	OpFtime                           // ms-resolution wall clock
)

// String implements fmt.Stringer.
func (op ClockOp) String() string {
	switch op {
	case OpGettimeofday:
		return "gettimeofday"
	case OpTime:
		return "time"
	case OpFtime:
		return "ftime"
	default:
		return fmt.Sprintf("ClockOp(%d)", uint8(op))
	}
}

// Granularity returns the quantum the operation's result is truncated to.
func (op ClockOp) Granularity() time.Duration {
	switch op {
	case OpTime:
		return time.Second
	case OpFtime:
		return time.Millisecond
	default:
		return time.Microsecond
	}
}

// Header is the common fault-tolerant protocol message header (§3.1). For a
// regular user message, (SrcGroup, DstGroup, Conn) identify a connection and
// Seq a message within it; together they form the message identifier. For a
// CCS message Seq carries the round number and SrcGroup == DstGroup.
type Header struct {
	Type     MsgType
	SrcGroup GroupID
	DstGroup GroupID
	Conn     ConnID
	Seq      uint64
}

// Message is a header plus an opaque, type-specific payload.
type Message struct {
	Header
	Payload []byte
}

const (
	magic         = 0xC7
	version       = 1
	headerLen     = 2 + 1 + 4 + 4 + 4 + 8 + 4 // magic+ver, type, src, dst, conn, seq, paylen
	maxPayloadLen = 1 << 24
)

// Errors returned by Unmarshal.
var (
	ErrShortMessage = errors.New("wire: message too short")
	ErrBadMagic     = errors.New("wire: bad magic byte")
	ErrBadVersion   = errors.New("wire: unsupported version")
	ErrTruncated    = errors.New("wire: truncated payload")
	ErrOversize     = errors.New("wire: payload exceeds maximum size")
)

// Marshal encodes m.
func Marshal(m Message) ([]byte, error) {
	if len(m.Payload) > maxPayloadLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(m.Payload))
	}
	buf := make([]byte, headerLen+len(m.Payload))
	buf[0] = magic
	buf[1] = version
	buf[2] = byte(m.Type)
	binary.BigEndian.PutUint32(buf[3:], uint32(m.SrcGroup))
	binary.BigEndian.PutUint32(buf[7:], uint32(m.DstGroup))
	binary.BigEndian.PutUint32(buf[11:], uint32(m.Conn))
	binary.BigEndian.PutUint64(buf[15:], m.Seq)
	binary.BigEndian.PutUint32(buf[23:], uint32(len(m.Payload)))
	copy(buf[headerLen:], m.Payload)
	return buf, nil
}

// Unmarshal decodes a message produced by Marshal. The returned payload
// aliases b.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < headerLen {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrShortMessage, len(b))
	}
	if b[0] != magic {
		return Message{}, ErrBadMagic
	}
	if b[1] != version {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, b[1])
	}
	m := Message{Header: Header{
		Type:     MsgType(b[2]),
		SrcGroup: GroupID(binary.BigEndian.Uint32(b[3:])),
		DstGroup: GroupID(binary.BigEndian.Uint32(b[7:])),
		Conn:     ConnID(binary.BigEndian.Uint32(b[11:])),
		Seq:      binary.BigEndian.Uint64(b[15:]),
	}}
	plen := binary.BigEndian.Uint32(b[23:])
	if plen > maxPayloadLen {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrOversize, plen)
	}
	if len(b) != headerLen+int(plen) {
		return Message{}, fmt.Errorf("%w: header says %d, have %d",
			ErrTruncated, plen, len(b)-headerLen)
	}
	if plen > 0 {
		m.Payload = b[headerLen : headerLen+plen]
	}
	return m, nil
}

// CCSPayload is the payload of a Consistent Clock Synchronization message
// (§3.1): the sending thread identifier and the local clock value being
// proposed for the group clock, plus the clock-op type (§4.1) and a flag
// marking the special round taken during state transfer (§3.2).
type CCSPayload struct {
	ThreadID uint64
	Proposed time.Duration // local physical clock + offset at the sender
	Op       ClockOp
	Special  bool // special round ordered with a GET_STATE checkpoint
}

const ccsPayloadLen = 8 + 8 + 1 + 1

// MarshalCCS encodes p.
func MarshalCCS(p CCSPayload) []byte {
	buf := make([]byte, ccsPayloadLen)
	binary.BigEndian.PutUint64(buf[0:], p.ThreadID)
	binary.BigEndian.PutUint64(buf[8:], uint64(p.Proposed))
	buf[16] = byte(p.Op)
	if p.Special {
		buf[17] = 1
	}
	return buf
}

// UnmarshalCCS decodes a CCS payload.
func UnmarshalCCS(b []byte) (CCSPayload, error) {
	if len(b) != ccsPayloadLen {
		return CCSPayload{}, fmt.Errorf("%w: CCS payload %d bytes, want %d",
			ErrTruncated, len(b), ccsPayloadLen)
	}
	return CCSPayload{
		ThreadID: binary.BigEndian.Uint64(b[0:]),
		Proposed: time.Duration(binary.BigEndian.Uint64(b[8:])),
		Op:       ClockOp(b[16]),
		Special:  b[17] == 1,
	}, nil
}

// CCSBatchEntry is one pending round carried by a CCS-batch message: the
// proposing thread, its round number, and the local clock value proposed for
// the group clock. The first-ordered batch decides every round it lists,
// entries applied in listed order, which preserves the §3 first-wins rule
// per round (see DESIGN.md §9). Special rounds (§3.2 state transfer) are
// never batched, so the entry carries no Special flag.
type CCSBatchEntry struct {
	ThreadID uint64
	Round    uint64
	Proposed time.Duration
	Op       ClockOp
}

const (
	ccsBatchVersion   = 1
	ccsBatchHeaderLen = 1 + 2 // version, entry count
	ccsBatchEntryLen  = 8 + 8 + 8 + 1
	// MaxCCSBatchEntries bounds one batch message (the uint16 count field
	// is the hard ceiling; real batches are far smaller).
	MaxCCSBatchEntries = math.MaxUint16
)

// ErrEmptyBatch is returned for a CCS batch with no entries; a batch is only
// sent when at least two rounds coalesce, so an empty one is a bug.
var ErrEmptyBatch = errors.New("wire: empty CCS batch")

// MarshalCCSBatch encodes a CCS-batch payload: a version byte, a big-endian
// entry count, and the fixed-width entries in sender order.
func MarshalCCSBatch(entries []CCSBatchEntry) ([]byte, error) {
	if len(entries) == 0 {
		return nil, ErrEmptyBatch
	}
	if len(entries) > MaxCCSBatchEntries {
		return nil, fmt.Errorf("%w: %d batch entries", ErrOversize, len(entries))
	}
	buf := make([]byte, ccsBatchHeaderLen+ccsBatchEntryLen*len(entries))
	buf[0] = ccsBatchVersion
	binary.BigEndian.PutUint16(buf[1:], uint16(len(entries)))
	off := ccsBatchHeaderLen
	for _, e := range entries {
		binary.BigEndian.PutUint64(buf[off:], e.ThreadID)
		binary.BigEndian.PutUint64(buf[off+8:], e.Round)
		binary.BigEndian.PutUint64(buf[off+16:], uint64(e.Proposed))
		buf[off+24] = byte(e.Op)
		off += ccsBatchEntryLen
	}
	return buf, nil
}

// UnmarshalCCSBatch decodes a CCS-batch payload produced by MarshalCCSBatch.
func UnmarshalCCSBatch(b []byte) ([]CCSBatchEntry, error) {
	if len(b) < ccsBatchHeaderLen {
		return nil, fmt.Errorf("%w: CCS batch %d bytes", ErrShortMessage, len(b))
	}
	if b[0] != ccsBatchVersion {
		return nil, fmt.Errorf("%w: CCS batch version %d", ErrBadVersion, b[0])
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if n == 0 {
		return nil, ErrEmptyBatch
	}
	if len(b) != ccsBatchHeaderLen+ccsBatchEntryLen*n {
		return nil, fmt.Errorf("%w: CCS batch says %d entries, have %d bytes",
			ErrTruncated, n, len(b)-ccsBatchHeaderLen)
	}
	entries := make([]CCSBatchEntry, n)
	off := ccsBatchHeaderLen
	for i := range entries {
		entries[i] = CCSBatchEntry{
			ThreadID: binary.BigEndian.Uint64(b[off:]),
			Round:    binary.BigEndian.Uint64(b[off+8:]),
			Proposed: time.Duration(binary.BigEndian.Uint64(b[off+16:])),
			Op:       ClockOp(b[off+24]),
		}
		off += ccsBatchEntryLen
	}
	return entries, nil
}

// RequestPayload is a remote method invocation carried to a server group.
// Timestamp, when non-zero, carries a consistent group clock value the
// request causally depends on (§5 of the paper: "includes the value of the
// consistent group clock as a timestamp in the user messages multicast to
// the different groups"); the receiving group's clock is advanced past it
// before the request executes.
type RequestPayload struct {
	InvocationID uint64
	ClientNode   uint32 // transport identity of the caller, for the reply
	Timestamp    time.Duration
	Method       string
	Body         []byte
}

// MarshalRequest encodes p.
func MarshalRequest(p RequestPayload) ([]byte, error) {
	if len(p.Method) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: method name %d bytes exceeds %d",
			len(p.Method), math.MaxUint16)
	}
	if len(p.Body) > maxPayloadLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrOversize, len(p.Body))
	}
	buf := make([]byte, 8+4+8+2+len(p.Method)+4+len(p.Body))
	binary.BigEndian.PutUint64(buf[0:], p.InvocationID)
	binary.BigEndian.PutUint32(buf[8:], p.ClientNode)
	binary.BigEndian.PutUint64(buf[12:], uint64(p.Timestamp))
	binary.BigEndian.PutUint16(buf[20:], uint16(len(p.Method)))
	off := 22 + copy(buf[22:], p.Method)
	binary.BigEndian.PutUint32(buf[off:], uint32(len(p.Body)))
	copy(buf[off+4:], p.Body)
	return buf, nil
}

// UnmarshalRequest decodes a request payload.
func UnmarshalRequest(b []byte) (RequestPayload, error) {
	if len(b) < 22 {
		return RequestPayload{}, fmt.Errorf("%w: request %d bytes", ErrShortMessage, len(b))
	}
	p := RequestPayload{
		InvocationID: binary.BigEndian.Uint64(b[0:]),
		ClientNode:   binary.BigEndian.Uint32(b[8:]),
		Timestamp:    time.Duration(binary.BigEndian.Uint64(b[12:])),
	}
	mlen := int(binary.BigEndian.Uint16(b[20:]))
	if len(b) < 22+mlen+4 {
		return RequestPayload{}, fmt.Errorf("%w: request method", ErrTruncated)
	}
	p.Method = string(b[22 : 22+mlen])
	off := 22 + mlen
	blen := binary.BigEndian.Uint32(b[off:])
	if blen > maxPayloadLen {
		return RequestPayload{}, fmt.Errorf("%w: body %d bytes", ErrOversize, blen)
	}
	if len(b) != off+4+int(blen) {
		return RequestPayload{}, fmt.Errorf("%w: request body", ErrTruncated)
	}
	if blen > 0 {
		p.Body = b[off+4 : off+4+int(blen)]
	}
	return p, nil
}

// ReplyPayload is the server group's reply to an invocation. ReplicaNode
// identifies which replica produced this (possibly duplicate-suppressed)
// reply, for diagnostics. Timestamp carries the serving group's consistent
// group clock, so callers can propagate causal dependencies to other groups
// (§5 of the paper).
type ReplyPayload struct {
	InvocationID uint64
	ReplicaNode  uint32
	Timestamp    time.Duration
	Body         []byte
}

// MarshalReply encodes p.
func MarshalReply(p ReplyPayload) ([]byte, error) {
	if len(p.Body) > maxPayloadLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrOversize, len(p.Body))
	}
	buf := make([]byte, 8+4+8+4+len(p.Body))
	binary.BigEndian.PutUint64(buf[0:], p.InvocationID)
	binary.BigEndian.PutUint32(buf[8:], p.ReplicaNode)
	binary.BigEndian.PutUint64(buf[12:], uint64(p.Timestamp))
	binary.BigEndian.PutUint32(buf[20:], uint32(len(p.Body)))
	copy(buf[24:], p.Body)
	return buf, nil
}

// UnmarshalReply decodes a reply payload.
func UnmarshalReply(b []byte) (ReplyPayload, error) {
	if len(b) < 24 {
		return ReplyPayload{}, fmt.Errorf("%w: reply %d bytes", ErrShortMessage, len(b))
	}
	p := ReplyPayload{
		InvocationID: binary.BigEndian.Uint64(b[0:]),
		ReplicaNode:  binary.BigEndian.Uint32(b[8:]),
		Timestamp:    time.Duration(binary.BigEndian.Uint64(b[12:])),
	}
	blen := binary.BigEndian.Uint32(b[20:])
	if blen > maxPayloadLen {
		return ReplyPayload{}, fmt.Errorf("%w: body %d bytes", ErrOversize, blen)
	}
	if len(b) != 24+int(blen) {
		return ReplyPayload{}, fmt.Errorf("%w: reply body", ErrTruncated)
	}
	if blen > 0 {
		p.Body = b[24:]
	}
	return p, nil
}

// CheckpointPayload carries the state transferred to a recovering replica
// (§3.2): the application state captured at the GET_STATE synchronization
// point, together with the replication infrastructure's own state — the
// group-clock value decided by the special CCS round taken immediately
// before the checkpoint and the round number it decided.
type CheckpointPayload struct {
	Round      uint64
	GroupClock time.Duration
	AppState   []byte
}

// MarshalCheckpoint encodes p.
func MarshalCheckpoint(p CheckpointPayload) ([]byte, error) {
	if len(p.AppState) > maxPayloadLen {
		return nil, fmt.Errorf("%w: state %d bytes", ErrOversize, len(p.AppState))
	}
	buf := make([]byte, 8+8+4+len(p.AppState))
	binary.BigEndian.PutUint64(buf[0:], p.Round)
	binary.BigEndian.PutUint64(buf[8:], uint64(p.GroupClock))
	binary.BigEndian.PutUint32(buf[16:], uint32(len(p.AppState)))
	copy(buf[20:], p.AppState)
	return buf, nil
}

// UnmarshalCheckpoint decodes a checkpoint payload.
func UnmarshalCheckpoint(b []byte) (CheckpointPayload, error) {
	if len(b) < 20 {
		return CheckpointPayload{}, fmt.Errorf("%w: checkpoint %d bytes", ErrShortMessage, len(b))
	}
	p := CheckpointPayload{
		Round:      binary.BigEndian.Uint64(b[0:]),
		GroupClock: time.Duration(binary.BigEndian.Uint64(b[8:])),
	}
	slen := binary.BigEndian.Uint32(b[16:])
	if slen > maxPayloadLen {
		return CheckpointPayload{}, fmt.Errorf("%w: state %d bytes", ErrOversize, slen)
	}
	if len(b) != 20+int(slen) {
		return CheckpointPayload{}, fmt.Errorf("%w: checkpoint state", ErrTruncated)
	}
	if slen > 0 {
		p.AppState = b[20:]
	}
	return p, nil
}
