package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"ccs", Message{Header: Header{Type: TypeCCS, SrcGroup: 7, DstGroup: 7, Conn: 3, Seq: 42},
			Payload: MarshalCCS(CCSPayload{ThreadID: 1, Proposed: time.Second, Op: OpGettimeofday})}},
		{"empty payload", Message{Header: Header{Type: TypeGetState, SrcGroup: 1, DstGroup: 2, Conn: 9, Seq: 1}}},
		{"request", Message{Header: Header{Type: TypeRequest, SrcGroup: 1, DstGroup: 2, Conn: 5, Seq: 77},
			Payload: []byte("hello")}},
		{"max ids", Message{Header: Header{Type: TypeReply, SrcGroup: ^GroupID(0), DstGroup: ^GroupID(0),
			Conn: ^ConnID(0), Seq: ^uint64(0)}, Payload: []byte{0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := Marshal(tt.msg)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got.Header != tt.msg.Header {
				t.Fatalf("header = %+v, want %+v", got.Header, tt.msg.Header)
			}
			if !bytes.Equal(got.Payload, tt.msg.Payload) {
				t.Fatalf("payload = %x, want %x", got.Payload, tt.msg.Payload)
			}
		})
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typ uint8, src, dst, conn uint32, seq uint64, payload []byte) bool {
		m := Message{Header: Header{Type: MsgType(typ), SrcGroup: GroupID(src),
			DstGroup: GroupID(dst), Conn: ConnID(conn), Seq: seq}, Payload: payload}
		b, err := Marshal(m)
		if err != nil {
			return len(payload) > maxPayloadLen
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return got.Header == m.Header && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, err := Marshal(Message{Header: Header{Type: TypeCCS}, Payload: []byte("xy")})
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"short", valid[:5], ErrShortMessage},
		{"empty", nil, ErrShortMessage},
		{"bad magic", append([]byte{0x00}, valid[1:]...), ErrBadMagic},
		{"bad version", func() []byte {
			b := append([]byte(nil), valid...)
			b[1] = 99
			return b
		}(), ErrBadVersion},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xFF), ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.b); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCCSPayloadRoundTrip(t *testing.T) {
	p := CCSPayload{ThreadID: 0xDEADBEEF, Proposed: 8*time.Hour + 10*time.Minute,
		Op: OpFtime, Special: true}
	got, err := UnmarshalCCS(MarshalCCS(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("got %+v, want %+v", got, p)
	}
}

func TestCCSPayloadNegativeProposed(t *testing.T) {
	// Offsets can make a proposed value negative in contrived tests; the
	// codec must preserve the sign.
	p := CCSPayload{ThreadID: 1, Proposed: -time.Second, Op: OpTime}
	got, err := UnmarshalCCS(MarshalCCS(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Proposed != -time.Second {
		t.Fatalf("Proposed = %v, want -1s", got.Proposed)
	}
}

func TestCCSPayloadRoundTripProperty(t *testing.T) {
	f := func(tid uint64, proposed int64, op uint8, special bool) bool {
		p := CCSPayload{ThreadID: tid, Proposed: time.Duration(proposed),
			Op: ClockOp(op), Special: special}
		got, err := UnmarshalCCS(MarshalCCS(p))
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCCSPayloadWrongLength(t *testing.T) {
	if _, err := UnmarshalCCS(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if _, err := UnmarshalCCS(make([]byte, 40)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestCCSBatchRoundTrip(t *testing.T) {
	entries := []CCSBatchEntry{
		{ThreadID: 2, Round: 7, Proposed: 8 * time.Hour, Op: OpGettimeofday},
		{ThreadID: 3, Round: 1, Proposed: -250 * time.Microsecond, Op: OpTime},
		{ThreadID: ^uint64(0), Round: ^uint64(0), Proposed: 1, Op: OpFtime},
	}
	b, err := MarshalCCSBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCCSBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestCCSBatchRoundTripProperty(t *testing.T) {
	f := func(tids, rounds []uint64, proposed []int64, ops []uint8) bool {
		n := len(tids)
		for _, l := range []int{len(rounds), len(proposed), len(ops)} {
			if l < n {
				n = l
			}
		}
		if n == 0 {
			return true
		}
		entries := make([]CCSBatchEntry, n)
		for i := range entries {
			entries[i] = CCSBatchEntry{ThreadID: tids[i], Round: rounds[i],
				Proposed: time.Duration(proposed[i]), Op: ClockOp(ops[i])}
		}
		b, err := MarshalCCSBatch(entries)
		if err != nil {
			return false
		}
		got, err := UnmarshalCCSBatch(b)
		if err != nil || len(got) != n {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCCSBatchErrors(t *testing.T) {
	valid, err := MarshalCCSBatch([]CCSBatchEntry{{ThreadID: 2, Round: 1, Op: OpGettimeofday}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := MarshalCCSBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("marshal empty: err = %v, want ErrEmptyBatch", err)
	}

	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"short", valid[:2], ErrShortMessage},
		{"nil", nil, ErrShortMessage},
		{"bad version", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] = 9
			return b
		}(), ErrBadVersion},
		{"zero entries", []byte{ccsBatchVersion, 0, 0}, ErrEmptyBatch},
		{"truncated entry", valid[:len(valid)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAB), ErrTruncated},
		{"count overstates", func() []byte {
			b := append([]byte(nil), valid...)
			b[2] = 2 // claims two entries, carries one
			return b
		}(), ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalCCSBatch(tt.b); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCCSBatchInsideMessage(t *testing.T) {
	// A batch rides the standard message framing like any other payload.
	payload, err := MarshalCCSBatch([]CCSBatchEntry{
		{ThreadID: 2, Round: 4, Proposed: time.Minute, Op: OpGettimeofday},
		{ThreadID: 4, Round: 9, Proposed: time.Hour, Op: OpGettimeofday},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Message{Header: Header{Type: TypeCCSBatch, SrcGroup: 7, DstGroup: 7,
		Conn: 1, Seq: 3}, Payload: payload}
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeCCSBatch {
		t.Fatalf("type = %v, want CCS_BATCH", got.Type)
	}
	entries, err := UnmarshalCCSBatch(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Round != 9 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	p := RequestPayload{InvocationID: 99, ClientNode: 4, Method: "CurrentTime",
		Body: []byte{1, 2, 3}}
	b, err := MarshalRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.InvocationID != p.InvocationID || got.ClientNode != p.ClientNode ||
		got.Method != p.Method || !bytes.Equal(got.Body, p.Body) {
		t.Fatalf("got %+v, want %+v", got, p)
	}
}

func TestRequestEmptyMethodAndBody(t *testing.T) {
	b, err := MarshalRequest(RequestPayload{InvocationID: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "" || got.Body != nil {
		t.Fatalf("got %+v, want empty method and nil body", got)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, node uint32, method string, body []byte) bool {
		if len(method) > 1<<16-1 {
			method = method[:1<<16-1]
		}
		p := RequestPayload{InvocationID: id, ClientNode: node, Method: method, Body: body}
		b, err := MarshalRequest(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalRequest(b)
		return err == nil && got.InvocationID == p.InvocationID &&
			got.ClientNode == p.ClientNode && got.Method == p.Method &&
			bytes.Equal(got.Body, p.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestOverlongMethodRejected(t *testing.T) {
	if _, err := MarshalRequest(RequestPayload{Method: strings.Repeat("m", 1<<16)}); err == nil {
		t.Fatal("expected error for overlong method name")
	}
}

func TestRequestTruncated(t *testing.T) {
	b, err := MarshalRequest(RequestPayload{Method: "m", Body: []byte("body")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := UnmarshalRequest(b[:cut]); err == nil {
			t.Fatalf("no error for truncation to %d bytes", cut)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	p := ReplyPayload{InvocationID: 123, ReplicaNode: 2, Body: []byte("pong")}
	b, err := MarshalReply(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.InvocationID != p.InvocationID || got.ReplicaNode != p.ReplicaNode ||
		!bytes.Equal(got.Body, p.Body) {
		t.Fatalf("got %+v, want %+v", got, p)
	}
}

func TestReplyTruncated(t *testing.T) {
	b, err := MarshalReply(ReplyPayload{InvocationID: 1, Body: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalReply(b[:10]); err == nil {
		t.Fatal("expected error for truncated reply")
	}
	if _, err := UnmarshalReply(b[:len(b)-1]); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	p := CheckpointPayload{Round: 17, GroupClock: 8*time.Hour + 25*time.Minute,
		AppState: []byte("state bytes")}
	b, err := MarshalCheckpoint(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != p.Round || got.GroupClock != p.GroupClock ||
		!bytes.Equal(got.AppState, p.AppState) {
		t.Fatalf("got %+v, want %+v", got, p)
	}
}

func TestCheckpointEmptyState(t *testing.T) {
	b, err := MarshalCheckpoint(CheckpointPayload{Round: 1, GroupClock: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppState != nil {
		t.Fatalf("AppState = %v, want nil", got.AppState)
	}
}

func TestCheckpointTruncated(t *testing.T) {
	b, err := MarshalCheckpoint(CheckpointPayload{Round: 1, AppState: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCheckpoint(b[:8]); err == nil {
		t.Fatal("expected error for truncated checkpoint")
	}
	if _, err := UnmarshalCheckpoint(b[:len(b)-2]); err == nil {
		t.Fatal("expected error for truncated state")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, tt := range []struct {
		typ  MsgType
		want string
	}{
		{TypeCCS, "CCS"}, {TypeRequest, "REQUEST"}, {TypeReply, "REPLY"},
		{TypeGetState, "GET_STATE"}, {TypeCheckpoint, "CHECKPOINT"},
		{TypeCCSBatch, "CCS_BATCH"}, {MsgType(200), "MsgType(200)"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestClockOpStringsAndGranularity(t *testing.T) {
	if OpGettimeofday.String() != "gettimeofday" || OpTime.String() != "time" ||
		OpFtime.String() != "ftime" || ClockOp(9).String() != "ClockOp(9)" {
		t.Fatal("ClockOp strings wrong")
	}
	if OpGettimeofday.Granularity() != time.Microsecond ||
		OpTime.Granularity() != time.Second ||
		OpFtime.Granularity() != time.Millisecond {
		t.Fatal("ClockOp granularities wrong")
	}
}
