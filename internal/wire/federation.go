package wire

// Inter-group federation messages. Two codecs live here:
//
//   - CCSFedPayload rides the ordinary totally-ordered CCS machinery inside
//     one group (wire.TypeCCSFed): a federated offset-adoption round whose
//     decided value nudges the whole group's clock toward its neighbors and
//     whose slack term keeps every member's published staleness bound honest
//     about the residual inter-group skew.
//
//   - GroupSummary travels BETWEEN groups as a standalone authenticated UDP
//     frame: the sending group's current (group_clock, bound, epoch) as read
//     from its lease plane. Summaries are not ordered — they are advisory
//     inputs to the receiving group's merge rule, which funnels any influence
//     through a federated CCS round so §3 determinism is preserved.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// CCSFedPayload is the payload of a federated offset-adoption message
// (TypeCCSFed). The header's Seq carries the federation round number, under
// the reserved federation thread identifier. Proposed is the sender's local
// clock plus the bounded inter-group nudge; Slack is the inter-group
// precision term every member folds into its published staleness bound on
// adoption (it covers how far ahead any neighbor group may plausibly be).
type CCSFedPayload struct {
	Proposed time.Duration
	Slack    time.Duration
}

const ccsFedPayloadLen = 8 + 8

// MarshalCCSFed encodes p.
func MarshalCCSFed(p CCSFedPayload) []byte {
	buf := make([]byte, ccsFedPayloadLen)
	binary.BigEndian.PutUint64(buf[0:], uint64(p.Proposed))
	binary.BigEndian.PutUint64(buf[8:], uint64(p.Slack))
	return buf
}

// UnmarshalCCSFed decodes a federated CCS payload.
func UnmarshalCCSFed(b []byte) (CCSFedPayload, error) {
	if len(b) != ccsFedPayloadLen {
		return CCSFedPayload{}, fmt.Errorf("%w: fed CCS payload %d bytes, want %d",
			ErrTruncated, len(b), ccsFedPayloadLen)
	}
	return CCSFedPayload{
		Proposed: time.Duration(binary.BigEndian.Uint64(b[0:])),
		Slack:    time.Duration(binary.BigEndian.Uint64(b[8:])),
	}, nil
}

// GroupSummary is one group's clock summary exchanged with parent/peer
// groups: the current group clock and honest staleness bound as read from
// the sender's lease plane, the lease epoch it was read under, and a
// per-sender sequence number for replay rejection.
type GroupSummary struct {
	Group      GroupID // sending group
	Sender     uint32  // sending member (transport identity within the group)
	Epoch      uint64  // sender's lease epoch at the reading
	Seq        uint64  // per-(group, sender) monotone sequence number
	GroupClock time.Duration
	Bound      time.Duration
}

const (
	fedMagic          = 0xCF
	fedVersion        = 1
	fedMACLen         = 16 // HMAC-SHA256 truncated
	groupSummaryLen   = 2 + 4 + 4 + 8 + 8 + 8 + 8
	groupSummaryFrame = groupSummaryLen + fedMACLen
)

// ErrBadMAC is returned for a summary frame whose authenticator does not
// verify under the configured federation key.
var ErrBadMAC = errors.New("wire: summary authentication failed")

func summaryMAC(key, frame []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(frame)
	return mac.Sum(nil)[:fedMACLen]
}

// MarshalGroupSummary encodes p as a standalone authenticated frame: magic,
// version, the fixed-width fields, and a truncated HMAC-SHA256 over all
// preceding bytes under key.
func MarshalGroupSummary(p GroupSummary, key []byte) []byte {
	buf := make([]byte, groupSummaryFrame)
	buf[0] = fedMagic
	buf[1] = fedVersion
	binary.BigEndian.PutUint32(buf[2:], uint32(p.Group))
	binary.BigEndian.PutUint32(buf[6:], p.Sender)
	binary.BigEndian.PutUint64(buf[10:], p.Epoch)
	binary.BigEndian.PutUint64(buf[18:], p.Seq)
	binary.BigEndian.PutUint64(buf[26:], uint64(p.GroupClock))
	binary.BigEndian.PutUint64(buf[34:], uint64(p.Bound))
	copy(buf[groupSummaryLen:], summaryMAC(key, buf[:groupSummaryLen]))
	return buf
}

// UnmarshalGroupSummary decodes and authenticates a summary frame produced
// by MarshalGroupSummary under the same key.
func UnmarshalGroupSummary(b, key []byte) (GroupSummary, error) {
	if len(b) != groupSummaryFrame {
		return GroupSummary{}, fmt.Errorf("%w: summary %d bytes, want %d",
			ErrShortMessage, len(b), groupSummaryFrame)
	}
	if b[0] != fedMagic {
		return GroupSummary{}, ErrBadMagic
	}
	if b[1] != fedVersion {
		return GroupSummary{}, fmt.Errorf("%w: %d", ErrBadVersion, b[1])
	}
	if !hmac.Equal(b[groupSummaryLen:], summaryMAC(key, b[:groupSummaryLen])) {
		return GroupSummary{}, ErrBadMAC
	}
	return GroupSummary{
		Group:      GroupID(binary.BigEndian.Uint32(b[2:])),
		Sender:     binary.BigEndian.Uint32(b[6:]),
		Epoch:      binary.BigEndian.Uint64(b[10:]),
		Seq:        binary.BigEndian.Uint64(b[18:]),
		GroupClock: time.Duration(binary.BigEndian.Uint64(b[26:])),
		Bound:      time.Duration(binary.BigEndian.Uint64(b[34:])),
	}, nil
}
