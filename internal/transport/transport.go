// Package transport defines the unreliable datagram abstraction that the
// Totem single-ring protocol runs over. Datagrams may be lost, duplicated or
// reordered; reliability, total order and membership are Totem's job, not
// the transport's. Two implementations exist: internal/simnet (discrete-event
// simulated network, used by tests and the experiment harness) and
// internal/udptransport (real UDP sockets, used by cmd/ctsnode).
package transport

import "fmt"

// NodeID identifies a processor (a machine/process pair) on the network.
// The paper's testbed nodes P0..P3 map to NodeIDs 0..3.
type NodeID uint32

// String implements fmt.Stringer using the paper's P<n> naming.
func (id NodeID) String() string { return fmt.Sprintf("P%d", uint32(id)) }

// Receiver consumes an inbound datagram. Implementations invoke it on the
// node's event loop; the payload must not be retained past the call unless
// copied.
type Receiver func(from NodeID, payload []byte)

// Transport sends and receives unreliable datagrams.
type Transport interface {
	// LocalID reports the identity of this endpoint.
	LocalID() NodeID

	// Send transmits payload to the given node, best-effort.
	Send(to NodeID, payload []byte) error

	// Broadcast transmits payload to every other known node, best-effort.
	// The local node does not receive its own broadcasts.
	Broadcast(payload []byte) error

	// SetReceiver installs the inbound datagram handler. It must be called
	// before any datagram can be delivered; datagrams arriving with no
	// receiver installed are dropped.
	SetReceiver(r Receiver)

	// Close releases the endpoint. After Close, sends fail and no further
	// datagrams are delivered.
	Close() error
}
