package transport

import "testing"

func TestNodeIDString(t *testing.T) {
	for _, tc := range []struct {
		id   NodeID
		want string
	}{{0, "P0"}, {3, "P3"}, {42, "P42"}} {
		if got := tc.id.String(); got != tc.want {
			t.Errorf("NodeID(%d).String() = %q, want %q", tc.id, got, tc.want)
		}
	}
}
