package hwclock

import (
	"testing"
	"testing/quick"
	"time"
)

func fixedSource(t time.Duration) Source {
	return func() time.Duration { return t }
}

func TestSimClockIdentityByDefault(t *testing.T) {
	c := NewSim(fixedSource(5 * time.Second))
	if got := c.Read(); got != 5*time.Second {
		t.Fatalf("Read = %v, want 5s", got)
	}
}

func TestSimClockOffset(t *testing.T) {
	c := NewSim(fixedSource(time.Second), WithOffset(150*time.Millisecond))
	if got := c.Read(); got != 1150*time.Millisecond {
		t.Fatalf("Read = %v, want 1.15s", got)
	}
}

func TestSimClockDrift(t *testing.T) {
	// +100 ppm over 10 s of true time gains exactly 1 ms.
	c := NewSim(fixedSource(10*time.Second), WithDriftPPM(100))
	if got := c.Read(); got != 10*time.Second+time.Millisecond {
		t.Fatalf("Read = %v, want 10.001s", got)
	}
}

func TestSimClockNegativeDrift(t *testing.T) {
	c := NewSim(fixedSource(10*time.Second), WithDriftPPM(-100))
	if got := c.Read(); got != 10*time.Second-time.Millisecond {
		t.Fatalf("Read = %v, want 9.999s", got)
	}
}

func TestSimClockGranularity(t *testing.T) {
	c := NewSim(fixedSource(1234567 * time.Nanosecond))
	if got := c.Read(); got != 1234*time.Microsecond {
		t.Fatalf("Read = %v, want truncation to 1234µs", got)
	}
	coarse := NewSim(fixedSource(1234567*time.Nanosecond), WithGranularity(time.Millisecond))
	if got := coarse.Read(); got != time.Millisecond {
		t.Fatalf("Read = %v, want truncation to 1ms", got)
	}
}

func TestSimClockZeroGranularityIgnored(t *testing.T) {
	c := NewSim(fixedSource(999*time.Nanosecond), WithGranularity(0))
	if got := c.Read(); got != 0 {
		t.Fatalf("Read = %v, want 0 (default µs granularity kept)", got)
	}
}

func TestSimClockMonotoneWhenSourceMonotone(t *testing.T) {
	var now time.Duration
	c := NewSim(func() time.Duration { return now },
		WithOffset(3*time.Millisecond), WithDriftPPM(250))
	prev := c.Read()
	for i := 0; i < 1000; i++ {
		now += 17 * time.Microsecond
		v := c.Read()
		if v < prev {
			t.Fatalf("clock regressed: %v -> %v at step %d", prev, v, i)
		}
		prev = v
	}
}

// Property: two clocks over the same source with different offsets preserve
// their offset difference at µs granularity (drift zero).
func TestSimClockOffsetDifferenceProperty(t *testing.T) {
	f := func(srcMicros uint32, offAMicros, offBMicros uint16) bool {
		src := fixedSource(time.Duration(srcMicros) * time.Microsecond)
		offA := time.Duration(offAMicros) * time.Microsecond
		offB := time.Duration(offBMicros) * time.Microsecond
		a := NewSim(src, WithOffset(offA))
		b := NewSim(src, WithOffset(offB))
		return a.Read()-b.Read() == offA-offB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystemClockIsMicrosecondQuantized(t *testing.T) {
	v := SystemClock{}.Read()
	if v%time.Microsecond != 0 {
		t.Fatalf("SystemClock reading %v not µs-quantized", v)
	}
	if v <= 0 {
		t.Fatalf("SystemClock reading %v not positive", v)
	}
}

func TestSystemClockAdvances(t *testing.T) {
	a := SystemClock{}.Read()
	time.Sleep(2 * time.Millisecond)
	b := SystemClock{}.Read()
	if b <= a {
		t.Fatalf("system clock did not advance: %v then %v", a, b)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManual(time.Second)
	if c.Read() != time.Second {
		t.Fatalf("Read = %v, want 1s", c.Read())
	}
	c.Advance(500 * time.Millisecond)
	if c.Read() != 1500*time.Millisecond {
		t.Fatalf("Read = %v, want 1.5s", c.Read())
	}
	c.Set(time.Millisecond) // backwards is allowed
	if c.Read() != time.Millisecond {
		t.Fatalf("Read = %v, want 1ms", c.Read())
	}
}

func TestSimClockAccessors(t *testing.T) {
	c := NewSim(fixedSource(0), WithOffset(time.Millisecond), WithDriftPPM(42))
	if c.Offset() != time.Millisecond || c.DriftPPM() != 42 {
		t.Fatalf("accessors: offset=%v drift=%v", c.Offset(), c.DriftPPM())
	}
	if c.String() == "" {
		t.Fatal("String() empty")
	}
}
