// Package hwclock models the physical hardware clocks that the consistent
// time service renders deterministic. The paper's testbed reads µs-resolution
// gettimeofday() values from per-machine oscillators that disagree in both
// phase (offset) and rate (drift); SimClock reproduces exactly those two
// imperfections on top of any time source, and SystemClock exposes the real
// machine clock for production deployments.
package hwclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a physical hardware clock. Read returns the clock's current value
// as a duration since the clock's own epoch. Physical clocks of different
// replicas generally disagree; making the disagreement invisible to the
// application is the job of the consistent time service, not of this package.
type Clock interface {
	Read() time.Duration
}

// Source yields the underlying "true" time a simulated clock distorts. In
// simulations this is the discrete-event kernel's virtual time.
type Source func() time.Duration

// SimClock derives a physical clock from a Source by applying an initial
// phase offset, a constant rate error (drift), and quantization to the
// clock's read granularity:
//
//	reading(t) = quantize(offset + t + drift·t)
//
// A SimClock is safe for concurrent use if its Source is.
type SimClock struct {
	source      Source
	offset      time.Duration
	driftPPM    float64
	granularity time.Duration
}

// Option configures a SimClock.
type Option func(*SimClock)

// WithOffset sets the clock's initial phase offset from the source.
func WithOffset(d time.Duration) Option {
	return func(c *SimClock) { c.offset = d }
}

// WithDriftPPM sets the clock's rate error in parts per million. A clock
// with drift +50 ppm gains 50 µs per second of true time.
func WithDriftPPM(ppm float64) Option {
	return func(c *SimClock) { c.driftPPM = ppm }
}

// WithGranularity sets the quantum readings are truncated to.
// The default is one microsecond, matching gettimeofday().
func WithGranularity(g time.Duration) Option {
	return func(c *SimClock) {
		if g > 0 {
			c.granularity = g
		}
	}
}

// NewSim returns a simulated physical clock over source.
func NewSim(source Source, opts ...Option) *SimClock {
	c := &SimClock{
		source:      source,
		granularity: time.Microsecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Read implements Clock.
func (c *SimClock) Read() time.Duration {
	t := c.source()
	v := c.offset + t + time.Duration(float64(t)*c.driftPPM/1e6)
	return v - v%c.granularity
}

// DriftPPM reports the clock's configured rate error.
func (c *SimClock) DriftPPM() float64 { return c.driftPPM }

// Granularity reports the quantum readings are truncated to.
func (c *SimClock) Granularity() time.Duration { return c.granularity }

// Offset reports the clock's configured initial phase offset.
func (c *SimClock) Offset() time.Duration { return c.offset }

// String describes the clock's imperfections, for experiment logs.
func (c *SimClock) String() string {
	return fmt.Sprintf("simclock(offset=%v drift=%+gppm gran=%v)",
		c.offset, c.driftPPM, c.granularity)
}

// Granular is implemented by clocks that know their own read granularity.
// Consumers that need a staleness bound (the timeserve lease plane) use it
// to account for quantization error; clocks that do not implement it are
// assumed µs-grained, like gettimeofday().
type Granular interface {
	Granularity() time.Duration
}

// GranularityOf reports clock's read granularity, defaulting to one
// microsecond for clocks that do not expose one.
func GranularityOf(clock Clock) time.Duration {
	if g, ok := clock.(Granular); ok {
		if d := g.Granularity(); d > 0 {
			return d
		}
	}
	return time.Microsecond
}

// SystemClock reads the machine's real clock, expressed as a duration since
// the Unix epoch, truncated to microseconds like gettimeofday().
type SystemClock struct{}

// Read implements Clock.
func (SystemClock) Read() time.Duration {
	ns := time.Now().UnixNano()
	return time.Duration(ns - ns%int64(time.Microsecond))
}

// Granularity reports the µs quantum SystemClock truncates to.
func (SystemClock) Granularity() time.Duration { return time.Microsecond }

// Monotonic returns a Source reading the machine's monotonic clock as time
// elapsed since the call to Monotonic. It is the sanctioned way for
// production code to measure real elapsed time (cache ages, uptimes,
// deadlines) without reading absolute wall time directly: ctslint's notime
// rule bans time.Now outside this package, and consumers that take a Source
// stay injectable for simulation.
func Monotonic() Source {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// ManualClock is a test clock whose value only changes when told to.
// It is safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewManual returns a manual clock starting at start.
func NewManual(start time.Duration) *ManualClock {
	return &ManualClock{now: start}
}

// Read implements Clock.
func (c *ManualClock) Read() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t. Manual clocks may be set backwards; the
// consistent time service must tolerate (and mask) that.
func (c *ManualClock) Set(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

var (
	_ Clock = (*SimClock)(nil)
	_ Clock = SystemClock{}
	_ Clock = (*ManualClock)(nil)
)
