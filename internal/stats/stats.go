// Package stats provides the small statistical toolkit the experiment
// harness needs: duration samples with percentiles, fixed-width histograms
// with probability-density normalization (the paper's Figure 5 plots a PDF
// of end-to-end latency), and online mean/variance accumulation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Durations accumulates a sample of durations. The zero value is ready to
// use. It is not safe for concurrent use.
type Durations struct {
	v      []time.Duration
	sorted bool
}

// Add appends one observation.
func (d *Durations) Add(x time.Duration) {
	d.v = append(d.v, x)
	d.sorted = false
}

// N reports the sample size.
func (d *Durations) N() int { return len(d.v) }

// Values returns a copy of the observations in insertion order.
func (d *Durations) Values() []time.Duration {
	out := make([]time.Duration, len(d.v))
	copy(out, d.v)
	return out
}

func (d *Durations) sort() {
	if !d.sorted {
		sort.Slice(d.v, func(i, j int) bool { return d.v[i] < d.v[j] })
		d.sorted = true
	}
}

// Min returns the smallest observation, or 0 for an empty sample.
func (d *Durations) Min() time.Duration {
	if len(d.v) == 0 {
		return 0
	}
	d.sort()
	return d.v[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (d *Durations) Max() time.Duration {
	if len(d.v) == 0 {
		return 0
	}
	d.sort()
	return d.v[len(d.v)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (d *Durations) Mean() time.Duration {
	if len(d.v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range d.v {
		sum += float64(x)
	}
	return time.Duration(sum / float64(len(d.v)))
}

// Stddev returns the sample standard deviation (n−1 denominator), or 0 for
// samples of size < 2.
func (d *Durations) Stddev() time.Duration {
	n := len(d.v)
	if n < 2 {
		return 0
	}
	mean := float64(d.Mean())
	var ss float64
	for _, x := range d.v {
		dx := float64(x) - mean
		ss += dx * dx
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation. It returns 0 for an empty sample.
func (d *Durations) Percentile(p float64) time.Duration {
	if len(d.v) == 0 {
		return 0
	}
	d.sort()
	if p <= 0 {
		return d.v[0]
	}
	if p >= 100 {
		return d.v[len(d.v)-1]
	}
	rank := p / 100 * float64(len(d.v)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.v[lo]
	}
	frac := rank - float64(lo)
	return d.v[lo] + time.Duration(frac*float64(d.v[hi]-d.v[lo]))
}

// Median is Percentile(50).
func (d *Durations) Median() time.Duration { return d.Percentile(50) }

// Summary formats the sample's headline statistics on one line.
func (d *Durations) Summary() string {
	return fmt.Sprintf("n=%d min=%v p50=%v mean=%v p99=%v max=%v",
		d.N(), d.Min(), d.Median(), d.Mean(), d.Percentile(99), d.Max())
}

// Histogram bins the sample into fixed-width bins starting at origin.
// Observations below origin are clamped into the first bin.
func (d *Durations) Histogram(origin, binWidth time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = time.Microsecond
	}
	h := &Histogram{Origin: origin, BinWidth: binWidth}
	for _, x := range d.v {
		h.Add(x)
	}
	return h
}

// Histogram is a fixed-bin-width histogram of durations.
type Histogram struct {
	Origin   time.Duration
	BinWidth time.Duration
	counts   []int
	total    int
}

// NewHistogram returns an empty histogram with the given origin and width.
func NewHistogram(origin, binWidth time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = time.Microsecond
	}
	return &Histogram{Origin: origin, BinWidth: binWidth}
}

// Add records one observation.
func (h *Histogram) Add(x time.Duration) {
	idx := 0
	if x > h.Origin {
		idx = int((x - h.Origin) / h.BinWidth)
	}
	for idx >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
	h.total++
}

// Total reports the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Bin is one histogram bin with its probability mass and density.
type Bin struct {
	Lo, Hi  time.Duration
	Count   int
	Mass    float64 // fraction of all observations in this bin
	Density float64 // Mass normalized by bin width in seconds
}

// Bins returns the non-empty prefix of bins (all bins up to the last
// non-empty one, including interior empty bins).
func (h *Histogram) Bins() []Bin {
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	out := make([]Bin, 0, last+1)
	for i := 0; i <= last; i++ {
		lo := h.Origin + time.Duration(i)*h.BinWidth
		mass := 0.0
		if h.total > 0 {
			mass = float64(h.counts[i]) / float64(h.total)
		}
		out = append(out, Bin{
			Lo:      lo,
			Hi:      lo + h.BinWidth,
			Count:   h.counts[i],
			Mass:    mass,
			Density: mass / h.BinWidth.Seconds(),
		})
	}
	return out
}

// Mode returns the bin with the highest count. For an empty histogram it
// returns a zero Bin.
func (h *Histogram) Mode() Bin {
	best, bestCount := -1, 0
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return Bin{}
	}
	lo := h.Origin + time.Duration(best)*h.BinWidth
	mass := float64(bestCount) / float64(h.total)
	return Bin{Lo: lo, Hi: lo + h.BinWidth, Count: bestCount,
		Mass: mass, Density: mass / h.BinWidth.Seconds()}
}

// Online accumulates mean and variance without retaining observations
// (Welford's algorithm). The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N reports the number of observations.
func (o *Online) N() int { return o.n }

// Mean reports the running mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Variance reports the sample variance (n−1), or 0 for n < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev reports the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Variance()) }
