package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationsEmpty(t *testing.T) {
	var d Durations
	if d.N() != 0 || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 ||
		d.Stddev() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty sample statistics should all be zero")
	}
}

func TestDurationsBasicStats(t *testing.T) {
	var d Durations
	for _, v := range []time.Duration{4, 1, 3, 2, 5} {
		d.Add(v * time.Millisecond)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d, want 5", d.N())
	}
	if d.Min() != time.Millisecond || d.Max() != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	if d.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v, want 3ms", d.Mean())
	}
	if d.Median() != 3*time.Millisecond {
		t.Fatalf("median = %v, want 3ms", d.Median())
	}
	// stddev of 1..5 ms with n-1 denominator = sqrt(2.5) ms.
	want := time.Duration(math.Sqrt(2.5) * float64(time.Millisecond))
	if diff := d.Stddev() - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("stddev = %v, want ~%v", d.Stddev(), want)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var d Durations
	d.Add(0)
	d.Add(100 * time.Millisecond)
	if got := d.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := d.Percentile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}
	if got := d.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := d.Percentile(25); got != 25*time.Millisecond {
		t.Fatalf("p25 = %v, want 25ms", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var d Durations
		for _, r := range raw {
			d.Add(time.Duration(r) * time.Microsecond)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return d.Percentile(a) <= d.Percentile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	var d Durations
	d.Add(time.Second)
	v := d.Values()
	v[0] = 0
	if d.Max() != time.Second {
		t.Fatal("Values must return a copy")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 100*time.Microsecond)
	h.Add(50 * time.Microsecond)  // bin 0
	h.Add(150 * time.Microsecond) // bin 1
	h.Add(199 * time.Microsecond) // bin 1
	h.Add(350 * time.Microsecond) // bin 3
	bins := h.Bins()
	if len(bins) != 4 {
		t.Fatalf("got %d bins, want 4", len(bins))
	}
	wantCounts := []int{1, 2, 0, 1}
	for i, b := range bins {
		if b.Count != wantCounts[i] {
			t.Fatalf("bin %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d, want 4", h.Total())
	}
}

func TestHistogramMassSumsToOne(t *testing.T) {
	h := NewHistogram(0, 10*time.Microsecond)
	for i := 0; i < 1000; i++ {
		h.Add(time.Duration(i%37) * 3 * time.Microsecond)
	}
	var sum float64
	for _, b := range h.Bins() {
		sum += b.Mass
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total probability mass = %g, want 1", sum)
	}
}

func TestHistogramDensityNormalization(t *testing.T) {
	// All mass in one 100µs bin: density = 1 / 100µs = 10,000 per second.
	h := NewHistogram(0, 100*time.Microsecond)
	h.Add(10 * time.Microsecond)
	bins := h.Bins()
	if len(bins) != 1 {
		t.Fatalf("got %d bins, want 1", len(bins))
	}
	if math.Abs(bins[0].Density-10000) > 1e-6 {
		t.Fatalf("density = %g, want 10000", bins[0].Density)
	}
}

func TestHistogramBelowOriginClamped(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Millisecond)
	h.Add(0) // below origin
	bins := h.Bins()
	if len(bins) != 1 || bins[0].Count != 1 || bins[0].Lo != time.Millisecond {
		t.Fatalf("below-origin observation not clamped to first bin: %+v", bins)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10*time.Microsecond)
	for i := 0; i < 5; i++ {
		h.Add(55 * time.Microsecond) // bin [50,60)
	}
	h.Add(5 * time.Microsecond)
	m := h.Mode()
	if m.Lo != 50*time.Microsecond || m.Count != 5 {
		t.Fatalf("mode = %+v, want bin starting at 50µs with count 5", m)
	}
}

func TestHistogramModeEmpty(t *testing.T) {
	h := NewHistogram(0, time.Microsecond)
	if m := h.Mode(); m.Count != 0 {
		t.Fatalf("empty histogram mode = %+v", m)
	}
}

func TestDurationsHistogramHelper(t *testing.T) {
	var d Durations
	d.Add(5 * time.Microsecond)
	d.Add(15 * time.Microsecond)
	h := d.Histogram(0, 10*time.Microsecond)
	if h.Total() != 2 || len(h.Bins()) != 2 {
		t.Fatalf("histogram: total=%d bins=%d", h.Total(), len(h.Bins()))
	}
}

func TestHistogramDefaultBinWidth(t *testing.T) {
	h := NewHistogram(0, 0)
	h.Add(3 * time.Microsecond)
	if h.BinWidth != time.Microsecond {
		t.Fatalf("default bin width = %v, want 1µs", h.BinWidth)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	var o Online
	var d Durations
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for _, v := range vals {
		o.Add(v)
		d.Add(time.Duration(v * float64(time.Second)))
	}
	if o.N() != len(vals) {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-3.9) > 1e-9 {
		t.Fatalf("mean = %g, want 3.9", o.Mean())
	}
	batchStd := float64(d.Stddev()) / float64(time.Second)
	if math.Abs(o.Stddev()-batchStd) > 1e-6 {
		t.Fatalf("online stddev %g != batch %g", o.Stddev(), batchStd)
	}
}

func TestOnlineSmallSamples(t *testing.T) {
	var o Online
	if o.Variance() != 0 {
		t.Fatal("variance of empty sample should be 0")
	}
	o.Add(7)
	if o.Variance() != 0 || o.Mean() != 7 {
		t.Fatal("single observation: variance 0, mean 7")
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	var d Durations
	d.Add(time.Millisecond)
	if d.Summary() == "" {
		t.Fatal("summary should not be empty")
	}
}
