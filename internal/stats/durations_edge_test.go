package stats

import (
	"testing"
	"time"
)

// TestDurationsSingleElement pins every statistic for a one-observation
// sample: all location statistics collapse to the observation and spread
// statistics are zero.
func TestDurationsSingleElement(t *testing.T) {
	var d Durations
	d.Add(7 * time.Millisecond)
	want := 7 * time.Millisecond
	if d.N() != 1 {
		t.Fatalf("N = %d, want 1", d.N())
	}
	for name, got := range map[string]time.Duration{
		"Min":    d.Min(),
		"Max":    d.Max(),
		"Mean":   d.Mean(),
		"Median": d.Median(),
		"p0":     d.Percentile(0),
		"p37.5":  d.Percentile(37.5),
		"p100":   d.Percentile(100),
	} {
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if d.Stddev() != 0 {
		t.Errorf("Stddev = %v, want 0 for n=1", d.Stddev())
	}
}

// TestPercentileOutOfRange clamps p below 0 and above 100 to the extremes
// rather than panicking or extrapolating.
func TestPercentileOutOfRange(t *testing.T) {
	var d Durations
	for _, v := range []time.Duration{30, 10, 20} {
		d.Add(v * time.Millisecond)
	}
	if got := d.Percentile(-5); got != 10*time.Millisecond {
		t.Errorf("p(-5) = %v, want min", got)
	}
	if got := d.Percentile(250); got != 30*time.Millisecond {
		t.Errorf("p(250) = %v, want max", got)
	}
}

// TestDurationsAddAfterQuery verifies the lazy sort is invalidated by a
// subsequent Add: statistics after the second Add see the new observation.
func TestDurationsAddAfterQuery(t *testing.T) {
	var d Durations
	d.Add(20 * time.Millisecond)
	d.Add(10 * time.Millisecond)
	if got := d.Min(); got != 10*time.Millisecond { // forces the sort
		t.Fatalf("min = %v, want 10ms", got)
	}
	d.Add(5 * time.Millisecond)
	if got := d.Min(); got != 5*time.Millisecond {
		t.Errorf("min after Add = %v, want 5ms", got)
	}
	if got := d.Max(); got != 20*time.Millisecond {
		t.Errorf("max after Add = %v, want 20ms", got)
	}
	if got := d.N(); got != 3 {
		t.Errorf("N = %d, want 3", got)
	}
}

// TestDurationsIdenticalObservations: a constant sample has zero spread and
// every percentile equals the constant.
func TestDurationsIdenticalObservations(t *testing.T) {
	var d Durations
	for i := 0; i < 10; i++ {
		d.Add(3 * time.Millisecond)
	}
	if d.Stddev() != 0 {
		t.Errorf("Stddev = %v, want 0", d.Stddev())
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := d.Percentile(p); got != 3*time.Millisecond {
			t.Errorf("p%v = %v, want 3ms", p, got)
		}
	}
}

// TestDurationsEmptySummary: Summary on the zero value renders without
// panicking and reports n=0.
func TestDurationsEmptySummary(t *testing.T) {
	var d Durations
	if s := d.Summary(); s != "n=0 min=0s p50=0s mean=0s p99=0s max=0s" {
		t.Errorf("empty Summary = %q", s)
	}
	if vals := d.Values(); len(vals) != 0 {
		t.Errorf("empty Values = %v", vals)
	}
}
