package replication

import (
	"time"
)

// A logical thread executes application code that may block on
// non-deterministic operations (clock reads, sleeps) without blocking the
// event loop the replica runs on. Each logical thread is a goroutine in
// strict alternation with the loop: exactly one of them runs at any moment,
// handing control back and forth over unbuffered channels. This gives the
// application a natural blocking API (the paper's get_grp_clock_time blocks
// the calling thread) while keeping execution deterministic — the loop never
// proceeds while a thread is computing, and a thread only resumes when the
// loop decides it does, driven by the total message order.
//
// The paper requires threads to be "created during the initialization of a
// replica, or during runtime, in the same order at different replicas"; the
// Manager assigns thread identifiers in creation order, and creation happens
// inside deterministic execution, so identifiers agree across replicas.

// yield is what a thread hands to the loop when it stops running.
type yield struct {
	done   bool   // the submitted work item finished
	action func() // loop-side action to perform before the thread resumes
}

// thread is one logical thread.
type thread struct {
	id      uint64
	workCh  chan func()
	yieldCh chan yield
}

func newThread(id uint64) *thread {
	t := &thread{
		id:      id,
		workCh:  make(chan func()),
		yieldCh: make(chan yield),
	}
	go t.run()
	return t
}

func (t *thread) run() {
	for f := range t.workCh {
		f()
		t.yieldCh <- yield{done: true}
	}
}

// close retires the thread goroutine. Must only be called while the thread
// is idle (not executing a work item).
func (t *thread) close() { close(t.workCh) }

// Ctx is the execution context handed to application code running on a
// logical thread. Its blocking methods suspend the logical thread while the
// replica's event loop keeps processing messages.
type Ctx struct {
	t *thread
	m *Manager
}

// ThreadID reports the logical thread identifier, identical at every replica
// for the same logical thread (§3.1: the CCS message carries the sending
// thread identifier).
func (c *Ctx) ThreadID() uint64 { return c.t.id }

// Manager returns the replica manager this context executes under.
func (c *Ctx) Manager() *Manager { return c.m }

// Call suspends the logical thread, runs action on the replica's event loop,
// and resumes the thread with the value eventually passed to complete.
// complete may be invoked synchronously by action or later from any loop
// event (e.g. a message delivery); it must be invoked exactly once.
//
// This is the primitive the consistent time service builds its interposed
// clock operations on: the clock read blocks the calling thread until the
// round's first CCS message is delivered (§3.2).
func (c *Ctx) Call(action func(complete func(v any))) any {
	resCh := make(chan any)
	c.t.yieldCh <- yield{action: func() {
		action(func(v any) { c.m.resumeThread(c.t, resCh, v) })
	}}
	return <-resCh
}

// Sleep suspends the logical thread for d of the runtime's time (virtual
// time under simulation). It models the application's processing delay —
// e.g. the paper's inserted busy-wait between consecutive clock operations.
func (c *Ctx) Sleep(d time.Duration) {
	c.Call(func(complete func(any)) {
		c.m.rt.After(d, func() { complete(nil) })
	})
}

// runOnThread hands f to the thread and processes its first yield. Called on
// the loop.
func (m *Manager) runOnThread(t *thread, f func()) {
	t.workCh <- f
	m.dispatchYield(t, <-t.yieldCh)
}

// resumeThread delivers a Call result and processes the thread's next yield.
// Called on the loop.
func (m *Manager) resumeThread(t *thread, resCh chan any, v any) {
	resCh <- v
	m.dispatchYield(t, <-t.yieldCh)
}

func (m *Manager) dispatchYield(t *thread, y yield) {
	switch {
	case y.done:
		m.onThreadDone(t)
	case y.action != nil:
		y.action()
	}
}
