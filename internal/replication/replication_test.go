package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"cts/internal/gcs"
	"cts/internal/obs"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

const (
	serverGroup wire.GroupID = 100
	clientGroup wire.GroupID = 900
)

// counterApp is a deterministic replicated counter.
type counterApp struct {
	count   int64
	invoked int
}

func (a *counterApp) Invoke(ctx *Ctx, method string, body []byte) []byte {
	a.invoked++
	switch method {
	case "add":
		a.count += int64(body[0])
	case "sleep-add":
		ctx.Sleep(100 * time.Microsecond)
		a.count++
	case "get":
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(a.count))
	return out
}

func (a *counterApp) Snapshot() []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(a.count))
	return out
}

func (a *counterApp) Restore(state []byte) {
	if len(state) == 8 {
		a.count = int64(binary.BigEndian.Uint64(state))
	}
}

type repHarness struct {
	t      *testing.T
	k      *sim.Kernel
	net    *simnet.Network
	rec    *obs.Recorder
	stacks map[transport.NodeID]*gcs.Stack
	mgrs   map[transport.NodeID]*Manager
	apps   map[transport.NodeID]*counterApp
}

func newRepHarness(t *testing.T, seed int64) *repHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	rec, err := obs.New(obs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &repHarness{
		t:      t,
		k:      k,
		net:    simnet.NewNetwork(k, nil),
		rec:    rec,
		stacks: make(map[transport.NodeID]*gcs.Stack),
		mgrs:   make(map[transport.NodeID]*Manager),
		apps:   make(map[transport.NodeID]*counterApp),
	}
}

// counter reads one per-node counter from the obs registry, the only stats
// surface. Run it between kernel steps (sources gather on the loop).
func (h *repHarness) counter(id transport.NodeID, name string) uint64 {
	var v uint64
	for _, s := range h.rec.Samples() {
		if s.Node == uint32(id) && s.Name == name {
			v += s.Value
		}
	}
	return v
}

func (h *repHarness) addStack(id transport.NodeID, ring []transport.NodeID, bootstrap bool) *gcs.Stack {
	h.t.Helper()
	s, err := gcs.New(gcs.Config{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   ring,
		Bootstrap: bootstrap,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.stacks[id] = s
	return s
}

func (h *repHarness) addReplica(id transport.NodeID, style Style, recovering bool) *Manager {
	h.t.Helper()
	app := &counterApp{}
	m, err := New(Config{
		Runtime:         h.k,
		Stack:           h.stacks[id],
		Group:           serverGroup,
		Style:           style,
		App:             app,
		Recovering:      recovering,
		CheckpointEvery: 3,
		Obs:             h.rec.ForNode(uint32(id)),
	})
	if err != nil {
		h.t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		h.t.Fatal(err)
	}
	h.mgrs[id] = m
	h.apps[id] = app
	return m
}

func (h *repHarness) newClient(id transport.NodeID, timeout time.Duration) *rpc.Client {
	h.t.Helper()
	c, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     h.k,
		Stack:       h.stacks[id],
		ClientGroup: clientGroup,
		ServerGroup: serverGroup,
		Timeout:     timeout,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

func (h *repHarness) runUntil(max time.Duration, cond func() bool) bool {
	deadline := h.k.Now() + max
	for h.k.Now() < deadline {
		if cond() {
			return true
		}
		h.k.RunFor(200 * time.Microsecond)
	}
	return cond()
}

func u64(b []byte) uint64 {
	if len(b) != 8 {
		return ^uint64(0)
	}
	return binary.BigEndian.Uint64(b)
}

func TestActiveReplicationExecutesEverywhere(t *testing.T) {
	h := newRepHarness(t, 1)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, id := range ring[1:] {
		h.addReplica(id, Active, false)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	var replies []uint64
	const n = 10
	for i := 0; i < n; i++ {
		client.Invoke("add", []byte{1}, func(r rpc.Reply) {
			if r.Err != nil {
				t.Errorf("invoke: %v", r.Err)
				return
			}
			replies = append(replies, u64(r.Body))
		})
	}
	ok := h.runUntil(2*time.Second, func() bool { return len(replies) == n })
	if !ok {
		t.Fatalf("got %d/%d replies", len(replies), n)
	}
	for i, v := range replies {
		if v != uint64(i+1) {
			t.Fatalf("reply %d = %d, want %d", i, v, i+1)
		}
	}
	// Every replica executed every request and the state converged.
	for _, id := range ring[1:] {
		if h.apps[id].count != n {
			t.Fatalf("replica %v count = %d, want %d", id, h.apps[id].count, n)
		}
		if h.apps[id].invoked != n {
			t.Fatalf("replica %v invoked = %d, want %d", id, h.apps[id].invoked, n)
		}
	}
}

func TestActiveReplyDuplicateSuppression(t *testing.T) {
	h := newRepHarness(t, 2)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, id := range ring[1:] {
		h.addReplica(id, Active, false)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	// Sequential invocations, as in the paper's measurement loop: the
	// winner's reply is on the wire well before the laggards' token visits.
	done := 0
	const n = 50
	var invoke func()
	invoke = func() {
		client.Invoke("add", []byte{1}, func(r rpc.Reply) {
			done++
			if done < n {
				invoke()
			}
		})
	}
	invoke()
	if !h.runUntil(10*time.Second, func() bool { return done == n }) {
		t.Fatalf("got %d/%d replies", done, n)
	}
	h.k.RunFor(10 * time.Millisecond) // let stragglers settle

	var sent, suppressed uint64
	for _, id := range ring[1:] {
		sent += h.counter(id, "repl.replies_sent")
		suppressed += h.counter(id, "repl.replies_suppressed")
	}
	// 3 replicas × 50 invocations = 150 reply attempts. Suppression must
	// remove a substantial share of the redundant replies (the paper's
	// duplicate-suppression result: per round, every replica attempts one
	// send yet few duplicates reach the network).
	if sent+suppressed != 3*n {
		t.Fatalf("attempts = %d (sent %d + suppressed %d), want %d",
			sent+suppressed, sent, suppressed, 3*n)
	}
	if suppressed < n/2 {
		t.Fatalf("suppressed only %d of %d redundant replies", suppressed, 2*n)
	}
}

func TestPassiveOnlyPrimaryExecutes(t *testing.T) {
	h := newRepHarness(t, 3)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, id := range ring[1:] {
		h.addReplica(id, Passive, false)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	done := 0
	const n = 7 // crosses the CheckpointEvery=3 boundary twice
	for i := 0; i < n; i++ {
		client.Invoke("add", []byte{2}, func(r rpc.Reply) {
			if r.Err == nil {
				done++
			}
		})
	}
	if !h.runUntil(2*time.Second, func() bool { return done == n }) {
		t.Fatalf("got %d/%d replies", done, n)
	}
	if h.apps[1].invoked != n {
		t.Fatalf("primary invoked %d, want %d", h.apps[1].invoked, n)
	}
	for _, id := range ring[2:] {
		if h.apps[id].invoked != 0 {
			t.Fatalf("backup %v invoked %d requests", id, h.apps[id].invoked)
		}
	}
	// Backups caught up through checkpoints (6 of 7 adds are covered by the
	// two checkpoints at invocations 3 and 6).
	ok := h.runUntil(time.Second, func() bool { return h.apps[2].count >= 12 })
	if !ok {
		t.Fatalf("backup state = %d, want ≥ 12 via checkpoints", h.apps[2].count)
	}
}

func TestPassiveFailoverReplaysLog(t *testing.T) {
	h := newRepHarness(t, 4)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, id := range ring[1:] {
		h.addReplica(id, Passive, false)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	var replies []uint64
	invoke := func() {
		client.Invoke("add", []byte{1}, func(r rpc.Reply) {
			if r.Err == nil {
				replies = append(replies, u64(r.Body))
			}
		})
	}
	for i := 0; i < 5; i++ {
		invoke()
	}
	if !h.runUntil(2*time.Second, func() bool { return len(replies) == 5 }) {
		t.Fatalf("got %d/5 replies before failover", len(replies))
	}

	// Kill the primary (node 1).
	h.stacks[1].Stop()
	h.net.Endpoint(1).SetDown(true)

	for i := 0; i < 5; i++ {
		invoke()
	}
	if !h.runUntil(5*time.Second, func() bool { return len(replies) == 10 }) {
		t.Fatalf("got %d/10 replies after failover", len(replies))
	}
	// The new primary's state reflects every increment exactly once.
	if h.apps[2].count != 10 {
		t.Fatalf("new primary count = %d, want 10", h.apps[2].count)
	}
	// Replies seen by the client are monotonically increasing counter values
	// with no lost updates at the end.
	if replies[len(replies)-1] != 10 {
		t.Fatalf("final reply = %d, want 10", replies[len(replies)-1])
	}
}

func TestActiveRecoveryStateTransfer(t *testing.T) {
	h := newRepHarness(t, 5)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, id := range ring[1:3] { // replicas on 1, 2 only
		h.addReplica(id, Active, false)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	done := 0
	for i := 0; i < 6; i++ {
		client.Invoke("add", []byte{3}, func(r rpc.Reply) { done++ })
	}
	if !h.runUntil(2*time.Second, func() bool { return done == 6 }) {
		t.Fatal("initial invocations incomplete")
	}

	// Node 3 hosts a recovering replica (state transfer via GET_STATE).
	h.addReplica(3, Active, true)
	ok := h.runUntil(5*time.Second, func() bool {
		live := false
		h.k.Post(func() { live = h.mgrs[3].Live() })
		h.k.RunFor(50 * time.Microsecond)
		return live && h.apps[3].count == 18
	})
	if !ok {
		t.Fatalf("recovered replica count = %d (live=%v), want 18",
			h.apps[3].count, h.mgrs[3].Live())
	}

	// It participates in subsequent invocations.
	before := h.apps[3].invoked
	client.Invoke("add", []byte{1}, func(r rpc.Reply) { done++ })
	if !h.runUntil(2*time.Second, func() bool { return h.apps[3].invoked > before }) {
		t.Fatal("recovered replica does not execute new requests")
	}
	if h.apps[3].count != 19 || h.apps[1].count != 19 {
		t.Fatalf("states diverged: recovered=%d existing=%d", h.apps[3].count, h.apps[1].count)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	h := newRepHarness(t, 6)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.addReplica(1, Active, false)
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	var doneAt time.Duration
	start := h.k.Now()
	client.Invoke("sleep-add", nil, func(r rpc.Reply) { doneAt = h.k.Now() })
	if !h.runUntil(time.Second, func() bool { return doneAt != 0 }) {
		t.Fatal("no reply")
	}
	if doneAt-start < 100*time.Microsecond {
		t.Fatalf("invocation finished after %v, want ≥ 100µs (Sleep must advance virtual time)", doneAt-start)
	}
}

func TestCtxCallAsyncCompletion(t *testing.T) {
	k := sim.NewKernel(7)
	net := simnet.NewNetwork(k, nil)
	s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(0),
		Members: []transport.NodeID{0}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	app := &callApp{k: k}
	m, err := New(Config{Runtime: k, Stack: s, Group: serverGroup, App: app})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	client, err := rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: s,
		ClientGroup: clientGroup, ServerGroup: serverGroup})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	k.RunFor(3 * time.Millisecond)

	var got []byte
	client.Invoke("echo-later", []byte("ping"), func(r rpc.Reply) { got = r.Body })
	deadline := k.Now() + time.Second
	for k.Now() < deadline && got == nil {
		k.RunFor(200 * time.Microsecond)
	}
	if string(got) != "ping/delayed" {
		t.Fatalf("got %q, want %q", got, "ping/delayed")
	}
}

// callApp exercises Ctx.Call with an asynchronous completion.
type callApp struct{ k *sim.Kernel }

func (a *callApp) Invoke(ctx *Ctx, method string, body []byte) []byte {
	v := ctx.Call(func(complete func(any)) {
		a.k.After(250*time.Microsecond, func() {
			complete(string(body) + "/delayed")
		})
	})
	return []byte(v.(string))
}
func (a *callApp) Snapshot() []byte     { return nil }
func (a *callApp) Restore(state []byte) {}

func TestSpawnThreadDistinctIDs(t *testing.T) {
	k := sim.NewKernel(8)
	net := simnet.NewNetwork(k, nil)
	s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(0),
		Members: []transport.NodeID{0}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Runtime: k, Stack: s, Group: serverGroup, App: &counterApp{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	var ids []uint64
	for i := 0; i < 3; i++ {
		m.SpawnThread(func(ctx *Ctx) {
			ctx.Sleep(10 * time.Microsecond)
			ids = append(ids, ctx.ThreadID())
		})
	}
	k.RunFor(10 * time.Millisecond)
	if len(ids) != 3 {
		t.Fatalf("ran %d threads, want 3", len(ids))
	}
	want := map[uint64]bool{2: true, 3: true, 4: true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected thread id %d in %v", id, ids)
		}
		delete(want, id)
	}
}

func TestRPCTimeout(t *testing.T) {
	h := newRepHarness(t, 9)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	// No replica joins the server group: invocations time out.
	client := h.newClient(0, 5*time.Millisecond)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	var gotErr error
	client.Invoke("add", []byte{1}, func(r rpc.Reply) { gotErr = r.Err })
	if !h.runUntil(time.Second, func() bool { return gotErr != nil }) {
		t.Fatal("no timeout")
	}
	if !errors.Is(gotErr, rpc.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestClientCloseFailsOutstanding(t *testing.T) {
	h := newRepHarness(t, 10)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	client := h.newClient(0, 0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	var gotErr error
	client.Invoke("add", []byte{1}, func(r rpc.Reply) { gotErr = r.Err })
	client.Close()
	h.k.RunFor(5 * time.Millisecond)
	if !errors.Is(gotErr, rpc.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", gotErr)
	}
	// Invocations after close fail immediately.
	var afterErr error
	client.Invoke("add", []byte{1}, func(r rpc.Reply) { afterErr = r.Err })
	h.k.RunFor(time.Millisecond)
	if !errors.Is(afterErr, rpc.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", afterErr)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, nil)
	s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(0),
		Members: []transport.NodeID{0}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	app := &counterApp{}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no runtime", Config{Stack: s, Group: 1, App: app}},
		{"no stack", Config{Runtime: k, Group: 1, App: app}},
		{"no group", Config{Runtime: k, Stack: s, App: app}},
		{"no app", Config{Runtime: k, Stack: s, Group: 1}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// RPC client validation.
	if _, err := rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: s}); err == nil {
		t.Error("rpc client without groups accepted")
	}
	if _, err := rpc.NewClient(rpc.ClientConfig{Stack: s, ClientGroup: 1, ServerGroup: 2}); err == nil {
		t.Error("rpc client without runtime accepted")
	}
}

func TestStyleStrings(t *testing.T) {
	for _, tc := range []struct {
		s    Style
		want string
	}{{Active, "active"}, {Passive, "passive"}, {SemiActive, "semi-active"},
		{Style(9), "Style(9)"}} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestDeterministicReplicatedExecution(t *testing.T) {
	run := func() []int64 {
		h := newRepHarness(t, 42)
		ring := []transport.NodeID{0, 1, 2, 3}
		for _, id := range ring {
			h.addStack(id, ring, true)
		}
		for _, id := range ring[1:] {
			h.addReplica(id, Active, false)
		}
		client := h.newClient(0, 0)
		for _, s := range h.stacks {
			s.Start()
		}
		h.k.RunFor(3 * time.Millisecond)
		done := 0
		for i := 0; i < 20; i++ {
			client.Invoke("add", []byte{byte(i%5 + 1)}, func(r rpc.Reply) { done++ })
		}
		h.runUntil(5*time.Second, func() bool { return done == 20 })
		return []int64{h.apps[1].count, h.apps[2].count, h.apps[3].count}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic state at replica %d: %v vs %v", i+1, a, b)
		}
	}
	if a[0] != a[1] || a[1] != a[2] {
		t.Fatalf("replica states diverged: %v", a)
	}
}

func TestPackUnpackStates(t *testing.T) {
	app, extra := unpackStates(packStates([]byte("app"), []byte("extra")))
	if string(app) != "app" || string(extra) != "extra" {
		t.Fatalf("round trip: %q %q", app, extra)
	}
	app, extra = unpackStates(packStates(nil, nil))
	if len(app) != 0 || len(extra) != 0 {
		t.Fatalf("empty round trip: %v %v", app, extra)
	}
	if a, e := unpackStates([]byte{1, 2}); a != nil || e != nil {
		t.Fatal("short input should yield nils")
	}
	if a, e := unpackStates([]byte{0, 0, 0, 99, 1}); a != nil || e != nil {
		t.Fatal("oversize length should yield nils")
	}
}

func TestStatusCallback(t *testing.T) {
	k := sim.NewKernel(11)
	net := simnet.NewNetwork(k, nil)
	ring := []transport.NodeID{0, 1}
	stacks := make(map[transport.NodeID]*gcs.Stack)
	for _, id := range ring {
		s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(id),
			Members: ring, Bootstrap: true})
		if err != nil {
			t.Fatal(err)
		}
		stacks[id] = s
	}
	var statuses []Status
	m, err := New(Config{Runtime: k, Stack: stacks[1], Group: serverGroup,
		Style: Passive, App: &counterApp{},
		OnStatus: func(st Status) { statuses = append(statuses, st) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for _, s := range stacks {
		s.Start()
	}
	k.RunFor(5 * time.Millisecond)
	if len(statuses) == 0 {
		t.Fatal("no status callbacks")
	}
	last := statuses[len(statuses)-1]
	if !last.Primary || !last.Live || last.Style != Passive {
		t.Fatalf("final status = %+v", last)
	}
	_ = fmt.Sprintf("%v", last)
}

func TestDuplicateRequestNotReExecuted(t *testing.T) {
	h := newRepHarness(t, 20)
	ring := []transport.NodeID{0, 1, 2}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.addReplica(1, Active, false)
	h.addReplica(2, Active, false)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	// Send one request; then retransmit the identical message (same header
	// seq, same invocation id) directly through the stack, as the rpc
	// client's retry path does.
	payload, err := wire.MarshalRequest(wire.RequestPayload{
		InvocationID: 1, ClientNode: 0, Method: "add", Body: []byte{5}})
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.Message{
		Header: wire.Header{Type: wire.TypeRequest, SrcGroup: clientGroup,
			DstGroup: serverGroup, Conn: 1, Seq: 1},
		Payload: payload,
	}
	var replies int
	h.stacks[0].Join(clientGroup, func(m wire.Message, meta gcs.Meta) {
		if m.Type == wire.TypeReply {
			replies++
		}
	}, nil)
	s := h.stacks[0]
	h.k.Post(func() { s.Multicast(msg) })
	h.runUntil(time.Second, func() bool { return replies >= 1 })
	h.k.Post(func() { s.Multicast(msg) }) // retransmission
	h.runUntil(time.Second, func() bool { return replies >= 2 })
	h.k.RunFor(10 * time.Millisecond)

	// Executed exactly once; the duplicate was answered from the cache.
	for _, id := range ring[1:] {
		if h.apps[id].invoked != 1 {
			t.Fatalf("replica %v executed the request %d times", id, h.apps[id].invoked)
		}
		if h.apps[id].count != 5 {
			t.Fatalf("replica %v state = %d, want 5 (no double mutation)", id, h.apps[id].count)
		}
	}
	if replies < 2 {
		t.Fatalf("duplicate request was not answered (replies=%d)", replies)
	}
}
