// Package replication is the replication infrastructure of the paper (its
// PluggableFT CORBA equivalent): it turns an application state machine into
// an actively, passively or semi-actively replicated server group on top of
// the group-communication layer.
//
// Every replica logs the totally-ordered requests addressed to its group.
// Executors (all replicas under active and semi-active replication; only the
// primary under passive replication) advance through the log, running each
// invocation on a deterministic logical thread and multicasting the reply.
// Duplicate replies are suppressed: each replica's reply is queued
// cancellably and withdrawn when another replica's identical reply is
// observed in the total order — the mechanism behind the paper's CCS
// message counts (§4.3). Passive backups follow checkpoints; when the
// primary fails, the next member replays the logged requests the checkpoint
// did not cover. Recovering replicas obtain state with an ordered GET_STATE
// message: the existing replicas checkpoint at its delivery point — taking
// the special clock-synchronization round immediately before the checkpoint
// (§3.2) via a pluggable hook — and the newcomer restores and replays.
package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/transport"
	"cts/internal/wire"
)

// Style selects the replication style (§2).
type Style int

// Replication styles.
const (
	// Active: all replicas process every request and compete to reply.
	Active Style = iota + 1
	// Passive: only the primary processes requests; backups follow
	// checkpoints and replay the request log on failover.
	Passive
	// SemiActive: all replicas process every request, but non-deterministic
	// decisions (clock readings) are made by the primary and conveyed to the
	// backups (Delta-4).
	SemiActive
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case Active:
		return "active"
	case Passive:
		return "passive"
	case SemiActive:
		return "semi-active"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Application is the replicated state machine. All methods are called on a
// logical thread (Invoke) or the event loop (Snapshot/Restore); they must be
// deterministic given the invocation order — clock reads must go through the
// consistent time service bound to the Ctx.
type Application interface {
	// Invoke processes one request and returns the reply body.
	Invoke(ctx *Ctx, method string, body []byte) []byte
	// Snapshot captures the application state for checkpoints.
	Snapshot() []byte
	// Restore replaces the application state from a checkpoint.
	Restore(state []byte)
}

// Status mirrors the replica's role for observability.
type Status struct {
	Style     Style
	Primary   bool // this replica is the group's current primary
	InPrimary bool // the component holds a quorum
	Live      bool // state is current (not awaiting a state transfer)
	Members   []transport.NodeID
}

// Stats counts manager activity, for experiments.
type Stats struct {
	Executed           uint64
	RepliesSent        uint64
	RepliesSuppressed  uint64
	CheckpointsSent    uint64
	CheckpointsApplied uint64
	Replayed           uint64
	Resyncs            uint64 // state transfers forced by detected delivery gaps
}

// Config configures a Manager.
type Config struct {
	// Runtime is the replica's event loop. Required.
	Runtime sim.Runtime
	// Stack is the group-communication endpoint. Required.
	Stack *gcs.Stack
	// Group is the server group identifier. Required (non-zero).
	Group wire.GroupID
	// Style selects the replication style; default Active.
	Style Style
	// App is the replicated application. Required.
	App Application
	// Recovering marks a replica that must obtain the group state through a
	// GET_STATE transfer before going live (a new or restarted replica).
	Recovering bool
	// CheckpointEvery makes passive primaries checkpoint after every N
	// executed invocations. Default 10. Ignored for other styles (they
	// checkpoint only on GET_STATE).
	CheckpointEvery int
	// OnStatus, if set, receives role changes. Called on the loop.
	OnStatus func(Status)
	// Obs registers this manager's counters. A nil recorder disables
	// instrumentation at no cost. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg and fills defaults, returning the effective
// configuration.
func (c Config) Validate() (Config, error) {
	if c.Runtime == nil {
		return c, errors.New("replication: Config.Runtime is required")
	}
	if c.Stack == nil {
		return c, errors.New("replication: Config.Stack is required")
	}
	if c.App == nil {
		return c, errors.New("replication: Config.App is required")
	}
	if c.Group == 0 {
		return c, errors.New("replication: Config.Group is required")
	}
	switch c.Style {
	case 0:
		c.Style = Active
	case Active, Passive, SemiActive:
	default:
		return c, fmt.Errorf("replication: invalid Config.Style %d", int(c.Style))
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("replication: Config.CheckpointEvery must not be negative (got %d)", c.CheckpointEvery)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	return c, nil
}

// invKey identifies an invocation (or checkpoint) for duplicate suppression.
type invKey struct {
	dst  wire.GroupID
	conn wire.ConnID
	seq  uint64
}

// cachedReply is the reply to a connection's most recent invocation.
type cachedReply struct {
	seq  uint64
	body []byte
}

type logEntry struct {
	msg  wire.Message
	meta gcs.Meta
	// dup marks a retransmitted request (sequence number at or below the
	// connection's delivery high-water mark at append time). Duplicates are
	// never executed; if the cached reply matches, it is re-sent. The mark
	// is assigned in delivery order, so it agrees across replicas.
	dup bool
}

// Manager is one replica of a replicated server group. All internal state is
// confined to the runtime loop.
type Manager struct {
	rt    sim.Runtime
	stack *gcs.Stack
	gid   wire.GroupID
	style Style
	app   Application
	me    transport.NodeID
	cfg   Config

	group *gcs.Group
	view  gcs.GroupView

	live         bool // state current; may execute
	recovering   bool
	sentGetState bool
	getstateSeq  uint32

	// connSeq tracks the highest request sequence number seen per
	// connection; a jump reveals deliveries missed while this replica was
	// cut off in a non-primary component, requiring a state resync.
	connSeq map[invKey]uint64
	// everNonPrimary records that this replica has been in a non-primary
	// component since its state was last known current: only then can a
	// sequence gap mean that a primary component progressed without us
	// (otherwise the gap is a client's message that died with a minority
	// component and will be retransmitted).
	everNonPrimary bool
	// replyCache holds the last reply per connection, to answer
	// retransmitted requests without re-executing them (at-most-once).
	replyCache map[invKey]cachedReply
	// dupCount numbers the retransmission instances per connection, giving
	// each re-sent reply a fresh wire identity (identical at every replica,
	// since duplicates are counted in delivery order).
	dupCount map[invKey]uint64
	// getstatePos records where (in LOCAL delivery order) each GET_STATE
	// message was delivered, so the answering checkpoint can be aligned at
	// replicas whose delivery counters differ from the serving executor's.
	getstatePos map[uint64]uint64

	log      []logEntry
	executed int // index of the next log entry to execute

	invThread    *thread
	nextThreadID uint64
	busy         bool
	currentEntry logEntry
	currentReply []byte

	pendingReplies map[invKey]func() bool
	seenReplies    map[invKey]bool

	// Hooks installed by the consistent time service (see below).
	ccsHandler   func(wire.Message, gcs.Meta)
	captureExtra func(done func(extra []byte, groupClock int64))
	restoreExtra func(extra []byte)
	stampClock   func() time.Duration
	observeStamp func(time.Duration)

	sinceCheckpoint int
	stats           Stats
	obs             *obs.Recorder
}

// New creates a manager. Call Start to join the group and begin.
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		rt:             cfg.Runtime,
		stack:          cfg.Stack,
		gid:            cfg.Group,
		style:          cfg.Style,
		app:            cfg.App,
		me:             cfg.Stack.LocalID(),
		cfg:            cfg,
		live:           !cfg.Recovering,
		recovering:     cfg.Recovering,
		invThread:      newThread(1),
		nextThreadID:   2,
		pendingReplies: make(map[invKey]func() bool),
		seenReplies:    make(map[invKey]bool),
		connSeq:        make(map[invKey]uint64),
		replyCache:     make(map[invKey]cachedReply),
		dupCount:       make(map[invKey]uint64),
		getstatePos:    make(map[uint64]uint64),
		obs:            cfg.Obs,
	}
	cfg.Obs.Register(m)
	return m, nil
}

// Start joins the server group. Safe to call from any goroutine.
func (m *Manager) Start() error {
	g, err := m.stack.Join(m.gid, m.onMsg, m.onView)
	if err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	m.group = g
	m.stack.WatchMessages(m.sniff)
	return nil
}

// Stop leaves the group and retires the invocation thread. The manager must
// be idle (no invocation in progress) — callers stop the stack first, which
// quiesces deliveries.
func (m *Manager) Stop() {
	m.rt.Post(func() {
		if m.group != nil {
			m.group.Leave()
		}
		if !m.busy {
			m.invThread.close()
		}
	})
}

// SetCCSHandler routes delivered CCS messages (wire.TypeCCS,
// wire.TypeCCSBatch and wire.TypeCCSFed) to the consistent time service.
// Loop-only.
func (m *Manager) SetCCSHandler(h func(wire.Message, gcs.Meta)) { m.ccsHandler = h }

// SetCheckpointHooks installs the consistent time service's checkpoint
// participation: capture runs the special clock-synchronization round taken
// immediately before a checkpoint and yields the service's state; restore
// applies it at a recovering replica (§3.2). Loop-only.
func (m *Manager) SetCheckpointHooks(capture func(done func(extra []byte, groupClock int64)),
	restore func(extra []byte)) {
	m.captureExtra = capture
	m.restoreExtra = restore
}

// SetCausalHooks installs the consistent time service's inter-group
// causality participation (§5 of the paper): stamp supplies the group clock
// value placed in outgoing replies, and observe is invoked — in delivery
// order, before the request executes — with the timestamp carried by an
// incoming request, so the group clock advances past every value the
// request causally depends on. Loop-only.
func (m *Manager) SetCausalHooks(stamp func() time.Duration, observe func(time.Duration)) {
	m.stampClock = stamp
	m.observeStamp = observe
}

// Stack returns the group-communication endpoint.
func (m *Manager) Stack() *gcs.Stack { return m.stack }

// Group reports the server group id.
func (m *Manager) Group() wire.GroupID { return m.gid }

// Style reports the replication style.
func (m *Manager) Style() Style { return m.style }

// Runtime returns the replica's event loop.
func (m *Manager) Runtime() sim.Runtime { return m.rt }

// LocalNode reports the replica's transport identity.
func (m *Manager) LocalNode() transport.NodeID { return m.me }

// IsPrimary reports whether this replica is the group's current primary
// (first member of the current view). Loop-only.
func (m *Manager) IsPrimary() bool {
	return len(m.view.Members) > 0 && m.view.Members[0] == m.me
}

// InPrimaryComponent reports whether the component holds a quorum. Loop-only.
func (m *Manager) InPrimaryComponent() bool { return m.view.Primary }

// Live reports whether the replica's state is current. Loop-only.
func (m *Manager) Live() bool { return m.live }

// Recovering reports whether this replica was configured to join through a
// GET_STATE transfer (§3.2). The flag is static: it still reads true after
// the transfer completes and the replica goes live.
func (m *Manager) Recovering() bool { return m.recovering }

// Obs returns the manager's recorder (nil when observability is off).
func (m *Manager) Obs() *obs.Recorder { return m.obs }

// ObsNode implements obs.Source.
func (m *Manager) ObsNode() uint32 { return uint32(m.me) }

// ObsSamples implements obs.Source under the canonical repl.* names.
// Loop-only.
func (m *Manager) ObsSamples() []obs.Sample {
	id := uint32(m.me)
	return []obs.Sample{
		{Node: id, Name: "repl.executed", Value: m.stats.Executed},
		{Node: id, Name: "repl.replies_sent", Value: m.stats.RepliesSent},
		{Node: id, Name: "repl.replies_suppressed", Value: m.stats.RepliesSuppressed},
		{Node: id, Name: "repl.checkpoints_sent", Value: m.stats.CheckpointsSent},
		{Node: id, Name: "repl.checkpoints_applied", Value: m.stats.CheckpointsApplied},
		{Node: id, Name: "repl.replayed", Value: m.stats.Replayed},
		{Node: id, Name: "repl.resyncs", Value: m.stats.Resyncs},
	}
}

// SpawnThread creates a new logical thread and runs fn on it, concurrently
// with (and deterministically interleaved against) the invocation thread.
// Must be called from deterministic execution (inside Invoke) or before
// Start, so that creation order — and hence thread identifiers — agree
// across replicas. Safe to call from a logical thread or the loop.
func (m *Manager) SpawnThread(fn func(*Ctx)) {
	m.rt.Post(func() {
		t := newThread(m.nextThreadID)
		m.nextThreadID++
		ctx := &Ctx{t: t, m: m}
		m.runOnThread(t, func() { fn(ctx) })
	})
}

// isExecutor reports whether this replica executes requests right now.
func (m *Manager) isExecutor() bool {
	if !m.live || !m.view.Primary {
		return false
	}
	switch m.style {
	case Passive:
		return m.IsPrimary()
	default:
		return true
	}
}

func (m *Manager) onView(v gcs.GroupView) {
	wasExecutor := m.isExecutor()
	m.view = v
	if !v.Primary {
		m.everNonPrimary = true
	}
	if m.recovering && !m.sentGetState && containsNode(v.Members, m.me) {
		m.sentGetState = true
		m.sendGetState()
	}
	if m.cfg.OnStatus != nil {
		m.cfg.OnStatus(Status{Style: m.style, Primary: m.IsPrimary(),
			InPrimary: v.Primary, Live: m.live, Members: v.Members})
	}
	// A passive backup that has just become primary replays the log.
	if !wasExecutor && m.isExecutor() {
		m.stats.Replayed += uint64(len(m.log) - m.executed)
		m.tryExecute()
	}
}

func (m *Manager) onMsg(msg wire.Message, meta gcs.Meta) {
	switch msg.Type {
	case wire.TypeCCS, wire.TypeCCSBatch, wire.TypeCCSFed:
		if m.ccsHandler != nil {
			m.ccsHandler(msg, meta)
		}
	case wire.TypeRequest:
		dup := m.noteRequestSeq(msg)
		m.log = append(m.log, logEntry{msg: msg, meta: meta, dup: dup})
		m.tryExecute()
	case wire.TypeGetState:
		m.getstatePos[msg.Seq] = meta.TotalOrder
		if len(m.getstatePos) > 1024 {
			m.getstatePos = map[uint64]uint64{msg.Seq: meta.TotalOrder}
		}
		m.log = append(m.log, logEntry{msg: msg, meta: meta})
		m.tryExecute()
	case wire.TypeCheckpoint:
		m.onCheckpoint(msg, meta)
	}
}

// debugGapHook, when set by tests, observes detected gaps.
var debugGapHook func(me transport.NodeID, conn wire.ConnID, last, got uint64)

// SetDebugGapHook installs a test observer for detected delivery gaps.
func SetDebugGapHook(h func(me transport.NodeID, conn wire.ConnID, last, got uint64)) {
	debugGapHook = h
}

// noteRequestSeq tracks per-connection sequence numbers of delivered
// requests and reports whether msg is a retransmitted duplicate.
//
// A forward jump can mean two things. If this replica has been in a
// non-primary component since its state was last known current, a primary
// component may have progressed without it: its log and state are
// incomplete, so it stops executing and re-acquires the group state via
// GET_STATE, like a recovering replica (§3.2). If it never left the primary
// component, no group member can have delivered the missing message (the
// sender was cut off and will retransmit), so the gap is recorded and
// ignored.
func (m *Manager) noteRequestSeq(msg wire.Message) (dup bool) {
	key := invKey{dst: msg.SrcGroup, conn: msg.Conn, seq: 0}
	last, ok := m.connSeq[key]
	if msg.Seq <= last && ok {
		return true
	}
	m.connSeq[key] = msg.Seq
	if ok && msg.Seq > last+1 && m.live && m.everNonPrimary {
		if debugGapHook != nil {
			debugGapHook(m.me, msg.Conn, last, msg.Seq)
		}
		m.live = false
		m.stats.Resyncs++
		m.sendGetState()
		if m.cfg.OnStatus != nil {
			m.cfg.OnStatus(Status{Style: m.style, Primary: m.IsPrimary(),
				InPrimary: m.view.Primary, Live: false, Members: m.view.Members})
		}
	}
	return false
}

// sendGetState multicasts a state-transfer request with a unique identifier.
func (m *Manager) sendGetState() {
	m.getstateSeq++
	_ = m.stack.Multicast(wire.Message{Header: wire.Header{
		Type: wire.TypeGetState, SrcGroup: m.gid, DstGroup: m.gid,
		Conn: 0, Seq: uint64(m.me)<<32 | uint64(m.getstateSeq),
	}})
}

// sniff observes every message in total order for duplicate suppression.
func (m *Manager) sniff(msg wire.Message, meta gcs.Meta) {
	if msg.Type != wire.TypeReply && msg.Type != wire.TypeCheckpoint {
		return
	}
	key := invKey{dst: msg.DstGroup, conn: msg.Conn, seq: msg.Seq}
	if msg.Type == wire.TypeReply {
		m.markSeen(key)
	}
	if cancel, ok := m.pendingReplies[key]; ok {
		if cancel() {
			// The queued duplicate never reached the wire.
			m.stats.RepliesSuppressed++
			if msg.Type == wire.TypeReply {
				m.stats.RepliesSent--
			} else {
				m.stats.CheckpointsSent--
			}
		}
		delete(m.pendingReplies, key)
	}
}

func (m *Manager) markSeen(key invKey) {
	// Bound the dedup table; clients also deduplicate by invocation id, so
	// occasionally forgetting an old reply only costs a redundant send.
	if len(m.seenReplies) > 8192 {
		m.seenReplies = make(map[invKey]bool)
	}
	m.seenReplies[key] = true
}

func (m *Manager) tryExecute() {
	for !m.busy && m.isExecutor() && m.executed < len(m.log) {
		e := m.log[m.executed]
		m.executed++
		switch e.msg.Type {
		case wire.TypeRequest:
			if e.dup {
				m.answerDuplicate(e)
				continue
			}
			m.execute(e)
		case wire.TypeGetState:
			m.handleGetState(e)
		}
	}
}

// answerDuplicate re-sends the cached reply for a retransmitted request,
// without re-executing it (at-most-once semantics). If the cache has moved
// on, the request is dropped — its client has necessarily already received
// the reply or given up. The re-sent reply carries a fresh wire identity
// (the retransmission ordinal in its sequence number's high bits), so it is
// deduplicated across replicas per retransmission instance rather than
// being suppressed by the original reply's identity.
func (m *Manager) answerDuplicate(e logEntry) {
	key := invKey{dst: e.msg.SrcGroup, conn: e.msg.Conn, seq: 0}
	cached, ok := m.replyCache[key]
	if !ok || cached.seq != e.msg.Seq {
		return
	}
	m.dupCount[key]++
	seq := e.msg.Seq | m.dupCount[key]<<48
	m.sendReplyAs(e, cached.body, seq)
}

func (m *Manager) execute(e logEntry) {
	req, err := wire.UnmarshalRequest(e.msg.Payload)
	if err != nil {
		return // malformed request: consistently skipped by every replica
	}
	if req.Timestamp > 0 && m.observeStamp != nil {
		m.observeStamp(req.Timestamp)
	}
	m.busy = true
	m.currentEntry = e
	m.currentReply = nil
	ctx := &Ctx{t: m.invThread, m: m}
	m.runOnThread(m.invThread, func() {
		m.currentReply = m.app.Invoke(ctx, req.Method, req.Body)
	})
}

// onThreadDone finalizes a finished work item. For the invocation thread
// this completes the current invocation; spawned threads simply retire.
func (m *Manager) onThreadDone(t *thread) {
	if t != m.invThread {
		t.close()
		return
	}
	e := m.currentEntry
	m.busy = false
	m.stats.Executed++
	m.replyCache[invKey{dst: e.msg.SrcGroup, conn: e.msg.Conn, seq: 0}] =
		cachedReply{seq: e.msg.Seq, body: m.currentReply}
	if len(m.replyCache) > 4096 {
		m.replyCache = make(map[invKey]cachedReply)
	}
	m.sendReply(e, m.currentReply)
	m.maybePeriodicCheckpoint(e)
	m.tryExecute()
}

func (m *Manager) sendReply(e logEntry, body []byte) {
	key := invKey{dst: e.msg.SrcGroup, conn: e.msg.Conn, seq: e.msg.Seq}
	if m.seenReplies[key] {
		m.stats.RepliesSuppressed++
		return // another replica's reply already went through
	}
	m.sendReplyAs(e, body, e.msg.Seq)
}

// sendReplyAs multicasts a reply under the given wire sequence number.
func (m *Manager) sendReplyAs(e logEntry, body []byte, seq uint64) {
	req, err := wire.UnmarshalRequest(e.msg.Payload)
	if err != nil {
		return
	}
	key := invKey{dst: e.msg.SrcGroup, conn: e.msg.Conn, seq: seq}
	reply := wire.ReplyPayload{
		InvocationID: req.InvocationID,
		ReplicaNode:  uint32(m.me),
		Body:         body,
	}
	if m.stampClock != nil {
		reply.Timestamp = m.stampClock()
	}
	payload, err := wire.MarshalReply(reply)
	if err != nil {
		return
	}
	cancel, err := m.stack.MulticastCancelable(wire.Message{
		Header: wire.Header{Type: wire.TypeReply, SrcGroup: m.gid,
			DstGroup: e.msg.SrcGroup, Conn: e.msg.Conn, Seq: seq},
		Payload: payload,
	}, false)
	if err != nil {
		return
	}
	m.stats.RepliesSent++
	m.pendingReplies[key] = cancel
}

func (m *Manager) maybePeriodicCheckpoint(e logEntry) {
	if m.style != Passive || !m.IsPrimary() {
		return
	}
	m.sinceCheckpoint++
	if m.sinceCheckpoint < m.cfg.CheckpointEvery {
		return
	}
	m.sinceCheckpoint = 0
	m.checkpoint(e.meta.TotalOrder, 0, e.meta.TotalOrder)
}

// handleGetState checkpoints the group state at the GET_STATE delivery
// point: the application is quiescent here (the invocation thread is idle),
// the snapshot is taken immediately, and the special clock-synchronization
// round runs before the checkpoint message is multicast (§3.2). The
// checkpoint echoes the GET_STATE's unique identifier (header Conn=1) so
// every replica can align the prune point with its own local delivery
// position of that GET_STATE.
func (m *Manager) handleGetState(e logEntry) {
	m.checkpoint(e.msg.Seq, 1, e.meta.TotalOrder)
}

// checkpoint captures and multicasts the group state. id is the suppression
// and alignment identifier (a GET_STATE id for conn=1, the primary's local
// marker for periodic conn=0 checkpoints); marker is the capturing
// replica's local delivery position.
func (m *Manager) checkpoint(id uint64, conn wire.ConnID, marker uint64) {
	appState := m.app.Snapshot()
	send := func(extra []byte, groupClock int64) {
		m.sendCheckpoint(id, conn, marker, appState, extra, groupClock)
	}
	if m.captureExtra != nil {
		m.captureExtra(send)
	} else {
		send(nil, 0)
	}
}

func (m *Manager) sendCheckpoint(id uint64, conn wire.ConnID, marker uint64,
	appState, extra []byte, groupClock int64) {
	key := invKey{dst: m.gid, conn: conn, seq: id}
	if m.seenReplies[key] {
		return // another replica's identical checkpoint already delivered
	}
	payload, err := wire.MarshalCheckpoint(wire.CheckpointPayload{
		Round:      marker,
		GroupClock: time.Duration(groupClock),
		AppState:   packStates(appState, extra),
	})
	if err != nil {
		return
	}
	cancel, err := m.stack.MulticastCancelable(wire.Message{
		Header: wire.Header{Type: wire.TypeCheckpoint, SrcGroup: m.gid,
			DstGroup: m.gid, Conn: conn, Seq: id},
		Payload: payload,
	}, false)
	if err != nil {
		return
	}
	m.stats.CheckpointsSent++
	m.pendingReplies[key] = cancel
}

func (m *Manager) onCheckpoint(msg wire.Message, meta gcs.Meta) {
	ckpt, err := wire.UnmarshalCheckpoint(msg.Payload)
	if err != nil {
		return
	}
	m.markSeen(invKey{dst: m.gid, conn: msg.Conn, seq: msg.Seq})

	// Determine the prune point in LOCAL delivery order. For a
	// GET_STATE-answering checkpoint (conn 1) that is this replica's own
	// delivery position of the GET_STATE; replicas that never delivered it
	// (they joined afterwards) hold only later entries and prune nothing.
	// Periodic checkpoints (conn 0) use the capturing primary's position,
	// valid because followers without gaps share its delivery history.
	var marker uint64
	if msg.Conn == 1 {
		pos, ok := m.getstatePos[msg.Seq]
		if ok {
			marker = pos
			delete(m.getstatePos, msg.Seq)
		}
	} else {
		marker = ckpt.Round
	}

	if !m.live || !m.isExecutorStyleCurrent() {
		// Recovering replicas and passive backups adopt the state.
		appState, extra := unpackStates(ckpt.AppState)
		m.app.Restore(appState)
		if m.restoreExtra != nil {
			m.restoreExtra(extra)
		}
		m.stats.CheckpointsApplied++
	}
	m.pruneLog(marker)
	if !m.live {
		m.live = true
		m.everNonPrimary = false // state is current again as of this checkpoint
		if m.cfg.OnStatus != nil {
			m.cfg.OnStatus(Status{Style: m.style, Primary: m.IsPrimary(),
				InPrimary: m.view.Primary, Live: true, Members: m.view.Members})
		}
	}
	m.tryExecute()
}

// isExecutorStyleCurrent reports whether this replica's own execution keeps
// its state current (so a delivered checkpoint must not overwrite it).
func (m *Manager) isExecutorStyleCurrent() bool {
	switch m.style {
	case Passive:
		return m.IsPrimary()
	default:
		return true
	}
}

// pruneLog drops log entries at or before the checkpoint marker, adjusting
// the executed index.
func (m *Manager) pruneLog(marker uint64) {
	idx := 0
	for idx < len(m.log) && m.log[idx].meta.TotalOrder <= marker {
		idx++
	}
	if idx == 0 {
		return
	}
	m.log = append([]logEntry(nil), m.log[idx:]...)
	m.executed -= idx
	if m.executed < 0 {
		m.executed = 0
	}
}

// packStates concatenates the application snapshot and the time service's
// extra state with a length prefix.
func packStates(appState, extra []byte) []byte {
	out := make([]byte, 4+len(appState)+len(extra))
	binary.BigEndian.PutUint32(out, uint32(len(appState)))
	copy(out[4:], appState)
	copy(out[4+len(appState):], extra)
	return out
}

func unpackStates(b []byte) (appState, extra []byte) {
	if len(b) < 4 {
		return nil, nil
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) > len(b)-4 {
		return nil, nil
	}
	return b[4 : 4+n], b[4+n:]
}

func containsNode(set []transport.NodeID, id transport.NodeID) bool {
	for _, m := range set {
		if m == id {
			return true
		}
	}
	return false
}
