package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

func TestRunLeakCheckClean(t *testing.T) {
	if err := RunLeakCheck(time.Second); err != nil {
		t.Fatalf("RunLeakCheck on a quiet process: %v", err)
	}
}

func TestRunLeakCheckCatchesLeak(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	err := RunLeakCheck(100 * time.Millisecond)
	if err == nil {
		close(block)
		t.Fatal("RunLeakCheck missed a parked goroutine")
	}
	if !strings.Contains(err.Error(), "TestRunLeakCheckCatchesLeak") {
		close(block)
		t.Fatalf("leak report does not name the leaking stack:\n%v", err)
	}

	close(block)
	if err := RunLeakCheck(time.Second); err != nil {
		t.Fatalf("RunLeakCheck after the goroutine drained: %v", err)
	}
}

func TestIsBenignFiltersHarness(t *testing.T) {
	if !isBenign("goroutine 1 [running]:\ntesting.(*M).Run(...)") {
		t.Error("testing harness stack should be benign")
	}
	if isBenign("goroutine 7 [chan receive]:\ncts/internal/totem.(*Totem).run(...)") {
		t.Error("a service goroutine must not be benign")
	}
}
