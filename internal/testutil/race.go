//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count regression tests skip under race: the detector's
// instrumentation changes allocs/op and would gate on noise.
const RaceEnabled = true
