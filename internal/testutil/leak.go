// Package testutil holds shared test harness pieces. Its centerpiece is a
// stdlib-only goroutine-leak check: every service in this repo owns
// goroutines (totem rounds, timeserve responders, core drivers), and a test
// that returns without stopping them hides a shutdown bug the race detector
// cannot see. Packages opt in with
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
//
// which fails the package's test binary if goroutines survive past the end
// of the run.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long Main waits for goroutines to drain before declaring
// them leaked. Shutdown is asynchronous almost everywhere (Close returns
// before the receive loop observes the closed socket), so a grace period is
// part of the contract, not slack.
const leakGrace = 5 * time.Second

// Main runs the package's tests and then fails the binary if goroutines
// leaked. Use it as the body of TestMain.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := RunLeakCheck(leakGrace); err != nil {
			fmt.Fprintf(os.Stderr, "testutil: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// RunLeakCheck polls the live goroutine set until only the harness remains
// or the grace period expires, and returns an error carrying the surviving
// stacks.
func RunLeakCheck(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var extra []string
	for {
		extra = leakedGoroutines()
		if len(extra) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) still running %v after the tests finished:\n\n%s",
		len(extra), grace, strings.Join(extra, "\n\n"))
}

// benignMarks identify goroutines the harness itself owns: the goroutine
// running this check, the testing machinery, and runtime/os helpers that
// live for the whole process. Anything else alive after m.Run is the tests'
// responsibility.
var benignMarks = []string{
	"cts/internal/testutil.leakedGoroutines",
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	"runtime.goexit0",
	"runtime.CPUProfile",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime.",
	"created by os/signal.",
}

// leakedGoroutines returns the stacks of non-harness goroutines, one block
// per goroutine as formatted by runtime.Stack.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var extra []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" || isBenign(block) {
			continue
		}
		extra = append(extra, block)
	}
	return extra
}

func isBenign(stack string) bool {
	for _, mark := range benignMarks {
		if strings.Contains(stack, mark) {
			return true
		}
	}
	return false
}
