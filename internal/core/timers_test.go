package core

import (
	"encoding/binary"
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/transport"
)

// timerApp sets a deterministic group-time timer during an invocation and
// records at which group clock value it fired.
type timerApp struct {
	svc      *TimeService
	firedAt  []time.Duration
	canceled *GroupTimer
}

func (a *timerApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	switch method {
	case "set-timer":
		// Read the clock, then arm a timer a little ahead of it.
		now := a.svc.Gettimeofday(ctx)
		ahead := time.Duration(binary.BigEndian.Uint64(body))
		ctx.Call(func(complete func(any)) {
			a.svc.AtGroupTime(now+ahead, func(g time.Duration) {
				a.firedAt = append(a.firedAt, g)
			})
			complete(nil)
		})
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(now))
		return out
	case "set-cancelled-timer":
		now := a.svc.Gettimeofday(ctx)
		ctx.Call(func(complete func(any)) {
			t := a.svc.AtGroupTime(now+time.Hour, func(time.Duration) {
				a.firedAt = append(a.firedAt, -1)
			})
			if !t.Cancel() {
				panic("cancel of pending timer failed")
			}
			if t.Cancel() {
				panic("second cancel succeeded")
			}
			complete(nil)
		})
		return nil
	case "read":
		v := a.svc.Gettimeofday(ctx)
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(v))
		return out
	}
	return nil
}
func (a *timerApp) Snapshot() []byte { return nil }
func (a *timerApp) Restore([]byte)   {}

func timerSetup(t *testing.T, seed int64) (*coreHarness, *rpc.Client, map[transport.NodeID]*timerApp) {
	t.Helper()
	h := newCoreHarness(t, seed)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	apps := make(map[transport.NodeID]*timerApp)
	for i, id := range ring[1:] {
		app := &timerApp{}
		mgr, err := replication.New(replication.Config{
			Runtime: h.k, Stack: h.stacks[id], Group: serverGroup,
			Style: replication.Active, App: app,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := New(Config{Manager: mgr,
			Clock: h.simClock(time.Duration(i)*time.Second, 0)})
		if err != nil {
			t.Fatal(err)
		}
		app.svc = svc
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		apps[id] = app
		h.svcs[id] = svc
		h.mgrs[id] = mgr // the harness cleanup retires its logical threads
	}
	client := h.newClient(0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)
	return h, client, apps
}

func TestGroupTimerFiresDeterministically(t *testing.T) {
	h, client, apps := timerSetup(t, 1)
	ahead := make([]byte, 8)
	binary.BigEndian.PutUint64(ahead, uint64(500*time.Microsecond))
	done := false
	client.Invoke("set-timer", ahead, func(r rpc.Reply) { done = true })
	h.runUntil(5*time.Second, func() bool { return done })

	// The timer needs the group clock to advance past the deadline, which
	// takes further rounds: drive a few reads.
	readsDone := 0
	var drive func()
	drive = func() {
		client.Invoke("read", nil, func(r rpc.Reply) {
			readsDone++
			if readsDone < 10 {
				drive()
			}
		})
	}
	drive()
	ok := h.runUntil(10*time.Second, func() bool {
		for _, app := range apps {
			if len(app.firedAt) == 0 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("timer did not fire at every replica")
	}
	// All replicas fired at the identical group clock value.
	var want time.Duration
	for id, app := range apps {
		if len(app.firedAt) != 1 {
			t.Fatalf("%v fired %d times", id, len(app.firedAt))
		}
		if want == 0 {
			want = app.firedAt[0]
		}
		if app.firedAt[0] != want {
			t.Fatalf("timer fired at different group times: %v vs %v",
				app.firedAt[0], want)
		}
	}
}

func TestGroupTimerCancel(t *testing.T) {
	h, client, apps := timerSetup(t, 2)
	done := false
	client.Invoke("set-cancelled-timer", nil, func(r rpc.Reply) { done = true })
	h.runUntil(5*time.Second, func() bool { return done })
	readsDone := 0
	var drive func()
	drive = func() {
		client.Invoke("read", nil, func(r rpc.Reply) {
			readsDone++
			if readsDone < 5 {
				drive()
			}
		})
	}
	drive()
	h.runUntil(5*time.Second, func() bool { return readsDone >= 5 })
	for id, app := range apps {
		if len(app.firedAt) != 0 {
			t.Fatalf("%v: cancelled timer fired", id)
		}
	}
	var pending int
	h.k.Post(func() { pending = h.svcs[1].PendingTimers() })
	h.k.RunFor(time.Millisecond)
	if pending != 0 {
		t.Fatalf("cancelled timer still pending: %d", pending)
	}
}

func TestGroupTimerPastDeadlineFiresImmediately(t *testing.T) {
	h, client, apps := timerSetup(t, 3)
	// Deadline 0 is already in the past at arm time (group clock > 0).
	done := false
	ahead := make([]byte, 8) // zero: deadline == current reading
	client.Invoke("set-timer", ahead, func(r rpc.Reply) { done = true })
	ok := h.runUntil(5*time.Second, func() bool {
		if !done {
			return false
		}
		for _, app := range apps {
			if len(app.firedAt) == 0 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("past-deadline timer did not fire promptly")
	}
}
