package core

import (
	"testing"

	"cts/internal/testutil"
)

// TestMain fails the package if any test leaves goroutines running; every
// started service stack must be fully stopped.
func TestMain(m *testing.M) { testutil.Main(m) }
