package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"cts/internal/gcs"
	"cts/internal/order"
	"cts/internal/replication"
	"cts/internal/transport"
)

// This file runs the CCS determinism properties against every real orderer.
// The core depends only on the order.Orderer contract, so the first-wins
// rule, batching, and crash recovery must behave identically (up to the
// decided values, which may differ per protocol) whether Totem or the
// leader-sequencer carries the total order.

var matrixKinds = []order.Kind{order.KindTotem, order.KindSeq}

// addStackOrder is addStack with an explicit orderer selection.
func (h *coreHarness) addStackOrder(id transport.NodeID, ring []transport.NodeID,
	bootstrap bool, kind order.Kind) {
	h.t.Helper()
	s, err := gcs.New(gcs.Config{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   ring,
		Bootstrap: bootstrap,
		Order:     order.Options{Kind: kind},
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.stacks[id] = s
}

// runReaderWorkload builds a three-replica cluster on the given orderer,
// runs the concurrent-reader workload to completion, and returns the
// per-node, per-reader group-clock sequences.
func runReaderWorkload(t *testing.T, kind order.Kind, seed int64,
	readers, reads int) map[transport.NodeID][][]time.Duration {
	t.Helper()
	h := newCoreHarness(t, seed)
	ring := []transport.NodeID{1, 2, 3}
	for _, id := range ring {
		h.addStackOrder(id, ring, true, kind)
	}
	offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
	for i, id := range ring {
		h.addReplica(id, replication.Active, false, h.simClock(offsets[i], 0))
	}
	values, finished := concurrentReaders(h, ring, readers, reads, nil)
	for _, id := range ring {
		h.stacks[id].Start()
	}
	if !h.runUntil(10*time.Second, func() bool {
		for _, id := range ring {
			if *finished[id] != readers {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("%s: readers never finished: %d/%d/%d of %d",
			kind, *finished[1], *finished[2], *finished[3], readers)
	}
	return values
}

// TestOrdererMatrixDeterministicSequences runs the concurrent-reader
// workload twice per orderer with the same seed: replicas must agree with
// each other within a run, and the decided sequences must be bit-identical
// across runs (no hidden nondeterminism in either protocol or in the core's
// batching above it).
func TestOrdererMatrixDeterministicSequences(t *testing.T) {
	const readers, reads = 5, 6
	for _, kind := range matrixKinds {
		t.Run(string(kind), func(t *testing.T) {
			a := runReaderWorkload(t, kind, 424, readers, reads)
			b := runReaderWorkload(t, kind, 424, readers, reads)
			for _, id := range []transport.NodeID{2, 3} {
				assertSameSequences(t, 1, id, a[1], a[id])
			}
			for _, id := range []transport.NodeID{1, 2, 3} {
				for slot := range a[id] {
					if fmt.Sprint(a[id][slot]) != fmt.Sprint(b[id][slot]) {
						t.Fatalf("%s: node %v reader %d differs across identical runs:\n%v\n%v",
							kind, id, slot, a[id][slot], b[id][slot])
					}
				}
			}
		})
	}
}

// TestOrdererMatrixCrashMidBatch fail-stops replica 1 (under the
// leader-sequencer, the leader itself) while batched proposals are in
// flight. Survivors must finish every read, agree on all per-thread
// sequences, and the crashed replica's completed reads must be a prefix of
// the survivors' decided sequences (safe delivery).
func TestOrdererMatrixCrashMidBatch(t *testing.T) {
	for _, kind := range matrixKinds {
		t.Run(string(kind), func(t *testing.T) {
			h := newCoreHarness(t, 991)
			ring := []transport.NodeID{1, 2, 3}
			for _, id := range ring {
				h.addStackOrder(id, ring, true, kind)
			}
			offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
			for i, id := range ring {
				h.addReplica(id, replication.Active, false, h.simClock(offsets[i], 0))
			}
			const readers, reads = 4, 10
			aborted := make(map[transport.NodeID]bool)
			values, finished := concurrentReaders(h, ring, readers, reads, aborted)
			for _, id := range ring {
				h.stacks[id].Start()
			}
			if !h.runUntil(10*time.Second, func() bool {
				for _, id := range ring {
					for _, seq := range values[id] {
						if len(seq) < 3 {
							return false
						}
					}
				}
				return true
			}) {
				t.Fatalf("%s: cluster never reached the crash point", kind)
			}
			h.stacks[1].Stop()
			h.net.Endpoint(1).SetDown(true)

			if !h.runUntil(10*time.Second, func() bool {
				return *finished[2] == readers && *finished[3] == readers
			}) {
				t.Fatalf("%s: survivors never finished after the crash: %d/%d of %d",
					kind, *finished[2], *finished[3], readers)
			}
			for _, id := range []transport.NodeID{2, 3} {
				for slot, seq := range values[id] {
					if len(seq) != reads {
						t.Fatalf("%s: survivor %v reader %d completed %d/%d reads",
							kind, id, slot, len(seq), reads)
					}
				}
			}
			assertSameSequences(t, 2, 3, values[2], values[3])
			assertSameSequences(t, 1, 2, values[1], values[2])

			// Retire the crashed replica's blocked readers for the leak check.
			aborted[1] = true
			h.k.Post(func() {
				svc := h.svcs[1]
				tids := make([]uint64, 0, len(svc.handlers))
				for tid := range svc.handlers {
					tids = append(tids, tid)
				}
				sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
				for _, tid := range tids {
					hd := svc.handlers[tid]
					if w := hd.waiting; w != nil {
						hd.waiting = nil
						w.complete(nil)
					}
				}
			})
			if !h.runUntil(time.Second, func() bool { return *finished[1] == readers }) {
				t.Fatalf("%s: crashed replica's readers never retired: %d/%d",
					kind, *finished[1], readers)
			}
		})
	}
}
