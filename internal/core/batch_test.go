package core

import (
	"sort"
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/transport"
)

// concurrentReaders spawns `readers` logical threads on every replica in the
// harness (in identical order, so thread identifiers agree across replicas)
// and has each perform `reads` consecutive Gettimeofday calls after a settle
// sleep. It returns the per-node, per-reader value sequences plus a per-node
// count of finished readers. Aborted nodes' threads stop at the next read.
func concurrentReaders(h *coreHarness, ids []transport.NodeID, readers, reads int,
	aborted map[transport.NodeID]bool) (map[transport.NodeID][][]time.Duration, map[transport.NodeID]*int) {
	values := make(map[transport.NodeID][][]time.Duration)
	finished := make(map[transport.NodeID]*int)
	for _, id := range ids {
		node := id
		values[node] = make([][]time.Duration, readers)
		finished[node] = new(int)
		for r := 0; r < readers; r++ {
			slot := r
			h.mgrs[node].SpawnThread(func(ctx *replication.Ctx) {
				ctx.Sleep(3 * time.Millisecond) // let the ring settle
				for j := 0; j < reads && !aborted[node]; j++ {
					values[node][slot] = append(values[node][slot],
						h.svcs[node].Gettimeofday(ctx))
				}
				*finished[node]++
			})
		}
	}
	return values, finished
}

// assertSameSequences checks that two replicas decided identical per-thread
// group-clock sequences, comparing the common prefix of each reader slot.
func assertSameSequences(t *testing.T, a, b transport.NodeID, va, vb [][]time.Duration) {
	t.Helper()
	for slot := range va {
		sa, sb := va[slot], vb[slot]
		n := len(sa)
		if len(sb) < n {
			n = len(sb)
		}
		for j := 0; j < n; j++ {
			if sa[j] != sb[j] {
				t.Fatalf("reader %d read %d: node %v got %v, node %v got %v",
					slot, j, a, sa[j], b, sb[j])
			}
		}
	}
}

// TestConcurrentReadsCoalesce runs many concurrent reader threads per replica
// and checks the tentpole property end to end: rounds coalesce into batch
// messages, and every replica still decides identical per-thread group-clock
// sequences (the §3 first-wins rule survives batching).
func TestConcurrentReadsCoalesce(t *testing.T) {
	h := newCoreHarness(t, 42)
	ring := []transport.NodeID{1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
	for i, id := range ring {
		h.addReplica(id, replication.Active, false, h.simClock(offsets[i], 0))
	}
	const readers, reads = 6, 5
	values, finished := concurrentReaders(h, ring, readers, reads, nil)
	for _, s := range h.stacks {
		s.Start()
	}
	if !h.runUntil(10*time.Second, func() bool {
		for _, id := range ring {
			if *finished[id] != readers {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("readers never finished: %d/%d/%d of %d",
			*finished[1], *finished[2], *finished[3], readers)
	}

	assertSameSequences(t, 1, 2, values[1], values[2])
	assertSameSequences(t, 1, 3, values[1], values[3])
	for _, id := range ring {
		for slot, seq := range values[id] {
			if len(seq) != reads {
				t.Fatalf("node %v reader %d completed %d/%d reads", id, slot, len(seq), reads)
			}
			for j := 1; j < len(seq); j++ {
				if seq[j] < seq[j-1] {
					t.Fatalf("node %v reader %d regressed: %v then %v", id, slot, seq[j-1], seq[j])
				}
			}
		}
	}

	var coalesced, batches, entries uint64
	for _, id := range ring {
		coalesced += h.counter(id, "core.rounds_coalesced")
		batches += h.counter(id, "core.batches_sent")
		entries += h.counter(id, "core.batch_entries")
	}
	if coalesced == 0 || batches == 0 {
		t.Fatalf("no coalescing under %d concurrent readers: coalesced=%d batches=%d",
			readers, coalesced, batches)
	}
	if entries < 2*batches {
		t.Fatalf("batches carried too few entries: %d entries in %d batches", entries, batches)
	}
}

// TestConcurrentReadsDisableBatching is the A/B half of the determinism
// claim: with batching off, the same concurrent workload still yields
// identical per-thread sequences and sends no batch messages at all.
func TestConcurrentReadsDisableBatching(t *testing.T) {
	h := newCoreHarness(t, 42)
	ring := []transport.NodeID{1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
	for i, id := range ring {
		h.addReplica(id, replication.Active, false, h.simClock(offsets[i], 0),
			func(c *Config) { c.DisableBatching = true })
	}
	const readers, reads = 6, 5
	values, finished := concurrentReaders(h, ring, readers, reads, nil)
	for _, s := range h.stacks {
		s.Start()
	}
	if !h.runUntil(10*time.Second, func() bool {
		for _, id := range ring {
			if *finished[id] != readers {
				return false
			}
		}
		return true
	}) {
		t.Fatal("readers never finished with batching disabled")
	}
	assertSameSequences(t, 1, 2, values[1], values[2])
	assertSameSequences(t, 1, 3, values[1], values[3])
	for _, id := range ring {
		if b := h.counter(id, "core.batches_sent"); b != 0 {
			t.Fatalf("node %v sent %d batches with batching disabled", id, b)
		}
		if c := h.counter(id, "core.rounds_coalesced"); c != 0 {
			t.Fatalf("node %v coalesced %d rounds with batching disabled", id, c)
		}
	}
}

// TestSequentialReadsBypassBatching checks the uncontended fast path: strictly
// sequential client-driven reads must ride plain CCS messages (whose identical
// headers feed the substrate's duplicate suppression) and never form batches.
func TestSequentialReadsBypassBatching(t *testing.T) {
	h, client := standardSetup(t, 7, replication.Active)
	driveReads(t, h, client, 8)
	for _, id := range []transport.NodeID{1, 2, 3} {
		if b := h.counter(id, "core.batches_sent"); b != 0 {
			t.Fatalf("node %v sent %d batches for sequential reads", id, b)
		}
		if c := h.counter(id, "core.rounds_coalesced"); c != 0 {
			t.Fatalf("node %v coalesced %d rounds for sequential reads", id, c)
		}
	}
}

// TestCrashMidBatchKeepsSurvivorsConsistent fail-stops one replica while its
// own batched proposals are still in flight and other replicas' readers are
// mid-stream. Safe delivery guarantees the crashed replica's completed reads
// are a prefix of what the survivors decided, and the survivors must keep
// producing identical per-thread sequences while still coalescing rounds.
func TestCrashMidBatchKeepsSurvivorsConsistent(t *testing.T) {
	h := newCoreHarness(t, 99)
	ring := []transport.NodeID{1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
	for i, id := range ring {
		h.addReplica(id, replication.Active, false, h.simClock(offsets[i], 0))
	}
	const readers, reads = 4, 10
	aborted := make(map[transport.NodeID]bool)
	values, finished := concurrentReaders(h, ring, readers, reads, aborted)
	for _, s := range h.stacks {
		s.Start()
	}

	// Let every replica complete a few coalesced generations, then fail-stop
	// node 1 mid-stream: its threads are blocked on rounds whose proposals
	// ride an in-flight batch.
	if !h.runUntil(10*time.Second, func() bool {
		for _, id := range ring {
			for _, seq := range values[id] {
				if len(seq) < 3 {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatal("cluster never reached the crash point")
	}
	h.stacks[1].Stop()
	h.net.Endpoint(1).SetDown(true)

	survivors := []transport.NodeID{2, 3}
	if !h.runUntil(10*time.Second, func() bool {
		return *finished[2] == readers && *finished[3] == readers
	}) {
		t.Fatalf("survivors never finished after the crash: %d/%d of %d",
			*finished[2], *finished[3], readers)
	}
	for _, id := range survivors {
		for slot, seq := range values[id] {
			if len(seq) != reads {
				t.Fatalf("survivor %v reader %d completed %d/%d reads", id, slot, len(seq), reads)
			}
		}
	}
	assertSameSequences(t, 2, 3, values[2], values[3])
	// The crashed replica's completed reads are a prefix of the survivors'
	// decided sequences (safe delivery: nothing was delivered only to it).
	assertSameSequences(t, 1, 2, values[1], values[2])

	var coalesced uint64
	for _, id := range survivors {
		coalesced += h.counter(id, "core.rounds_coalesced")
	}
	if coalesced == 0 {
		t.Fatal("survivors never coalesced rounds")
	}

	// Unstick the crashed replica's blocked readers so the package leak check
	// sees their goroutines retire: fail their pending reads on the loop, the
	// way a real process teardown would discard them.
	aborted[1] = true
	h.k.Post(func() {
		svc := h.svcs[1]
		tids := make([]uint64, 0, len(svc.handlers))
		for tid := range svc.handlers {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			hd := svc.handlers[tid]
			if w := hd.waiting; w != nil {
				hd.waiting = nil
				w.complete(nil)
			}
		}
	})
	if !h.runUntil(time.Second, func() bool { return *finished[1] == readers }) {
		t.Fatalf("crashed replica's readers never retired: %d/%d", *finished[1], readers)
	}
}
