package core

import (
	"encoding/binary"
	"testing"
	"time"

	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

const (
	serverGroup wire.GroupID = 100
	clientGroup wire.GroupID = 900
)

// clockApp performs clock reads through the consistent time service. Each
// "read" invocation does one Sleep followed by one Gettimeofday and records
// the value.
type clockApp struct {
	svc      *TimeService
	delay    time.Duration
	readings []time.Duration
}

func (a *clockApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	switch method {
	case "read":
		if a.delay > 0 {
			ctx.Sleep(a.delay)
		}
		v := a.svc.Gettimeofday(ctx)
		a.readings = append(a.readings, v)
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(v))
		return out
	case "read-ops":
		// One read per op type, to check granularities.
		g := a.svc.Clock(ctx)
		vals := []time.Duration{g.Gettimeofday(), g.Ftime(), g.Time()}
		out := make([]byte, 24)
		for i, v := range vals {
			binary.BigEndian.PutUint64(out[i*8:], uint64(v))
			a.readings = append(a.readings, v)
		}
		return out
	}
	return nil
}

func (a *clockApp) Snapshot() []byte {
	out := make([]byte, 8*len(a.readings))
	for i, v := range a.readings {
		binary.BigEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func (a *clockApp) Restore(state []byte) {
	a.readings = nil
	for off := 0; off+8 <= len(state); off += 8 {
		a.readings = append(a.readings, time.Duration(binary.BigEndian.Uint64(state[off:])))
	}
}

type coreHarness struct {
	t       *testing.T
	k       *sim.Kernel
	net     *simnet.Network
	rec     *obs.Recorder
	stacks  map[transport.NodeID]*gcs.Stack
	mgrs    map[transport.NodeID]*replication.Manager
	apps    map[transport.NodeID]*clockApp
	svcs    map[transport.NodeID]*TimeService
	reports map[transport.NodeID][]RoundReport
}

func newCoreHarness(t *testing.T, seed int64) *coreHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	rec, err := obs.New(obs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &coreHarness{
		t:       t,
		k:       k,
		net:     simnet.NewNetwork(k, nil),
		rec:     rec,
		stacks:  make(map[transport.NodeID]*gcs.Stack),
		mgrs:    make(map[transport.NodeID]*replication.Manager),
		apps:    make(map[transport.NodeID]*clockApp),
		svcs:    make(map[transport.NodeID]*TimeService),
		reports: make(map[transport.NodeID][]RoundReport),
	}
	t.Cleanup(func() {
		// Drain in-flight invocations so every manager is idle, then retire
		// the logical-thread goroutines; TestMain's leak check fails the
		// package if any survive.
		h.k.RunFor(5 * time.Millisecond)
		for _, s := range h.stacks {
			s.Stop()
		}
		for _, m := range h.mgrs {
			m.Stop()
		}
		h.k.RunFor(5 * time.Millisecond)
	})
	return h
}

// counter reads one per-node counter from the obs registry, the only stats
// surface. It must run between kernel steps (sources gather on the loop,
// which the kernel runs on this goroutine).
func (h *coreHarness) counter(id transport.NodeID, name string) uint64 {
	var v uint64
	for _, s := range h.rec.Samples() {
		if s.Node == uint32(id) && s.Name == name {
			v += s.Value
		}
	}
	return v
}

func (h *coreHarness) addStack(id transport.NodeID, ring []transport.NodeID, bootstrap bool) {
	h.t.Helper()
	s, err := gcs.New(gcs.Config{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   ring,
		Bootstrap: bootstrap,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.stacks[id] = s
}

// addReplica creates manager + time service + clock app on node id with the
// given physical clock.
func (h *coreHarness) addReplica(id transport.NodeID, style replication.Style,
	recovering bool, clock hwclock.Clock, opts ...func(*Config)) {
	h.t.Helper()
	app := &clockApp{delay: 50 * time.Microsecond}
	m, err := replication.New(replication.Config{
		Runtime:         h.k,
		Stack:           h.stacks[id],
		Group:           serverGroup,
		Style:           style,
		App:             app,
		Recovering:      recovering,
		CheckpointEvery: 4,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	cfg := Config{
		Manager: m,
		Clock:   clock,
		Obs:     h.rec.ForNode(uint32(id)),
		OnRound: func(r RoundReport) {
			h.reports[id] = append(h.reports[id], r)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	app.svc = svc
	if err := m.Start(); err != nil {
		h.t.Fatal(err)
	}
	h.mgrs[id] = m
	h.apps[id] = app
	h.svcs[id] = svc
}

func (h *coreHarness) newClient(id transport.NodeID) *rpc.Client {
	h.t.Helper()
	c, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     h.k,
		Stack:       h.stacks[id],
		ClientGroup: clientGroup,
		ServerGroup: serverGroup,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

func (h *coreHarness) runUntil(max time.Duration, cond func() bool) bool {
	deadline := h.k.Now() + max
	for h.k.Now() < deadline {
		if cond() {
			return true
		}
		h.k.RunFor(200 * time.Microsecond)
	}
	return cond()
}

// simClock builds a physical clock over the kernel with offset/drift.
func (h *coreHarness) simClock(offset time.Duration, driftPPM float64) hwclock.Clock {
	return hwclock.NewSim(h.k.Now, hwclock.WithOffset(offset), hwclock.WithDriftPPM(driftPPM))
}

// standardSetup: client on node 0, three replicas on 1,2,3 with the given
// physical clock offsets (mirroring the paper's Figure 4: clocks disagree).
func standardSetup(t *testing.T, seed int64, style replication.Style) (*coreHarness, *rpc.Client) {
	h := newCoreHarness(t, seed)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	offsets := []time.Duration{0, 5 * time.Second, 15 * time.Second}
	for i, id := range ring[1:] {
		h.addReplica(id, style, false, h.simClock(offsets[i], 0))
	}
	client := h.newClient(0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)
	return h, client
}

// driveReads performs n sequential "read" invocations.
func driveReads(t *testing.T, h *coreHarness, client *rpc.Client, n int) []uint64 {
	t.Helper()
	var replies []uint64
	var invoke func()
	invoke = func() {
		client.Invoke("read", nil, func(r rpc.Reply) {
			if r.Err != nil {
				t.Errorf("invoke: %v", r.Err)
				return
			}
			replies = append(replies, binary.BigEndian.Uint64(r.Body))
			if len(replies) < n {
				invoke()
			}
		})
	}
	invoke()
	if !h.runUntil(time.Duration(n)*50*time.Millisecond+5*time.Second,
		func() bool { return len(replies) >= n }) {
		t.Fatalf("completed %d/%d reads", len(replies), n)
	}
	return replies
}

func TestActiveReplicasReturnIdenticalClockValues(t *testing.T) {
	h, client := standardSetup(t, 1, replication.Active)
	driveReads(t, h, client, 20)

	// Despite physical clocks 0s/5s/15s apart, every replica recorded the
	// identical sequence of group clock values.
	a, b, c := h.apps[1].readings, h.apps[2].readings, h.apps[3].readings
	if len(a) != 20 || len(b) != 20 || len(c) != 20 {
		t.Fatalf("readings: %d/%d/%d, want 20 each", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatalf("reading %d diverges: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}

func TestGroupClockMonotonicallyIncreasing(t *testing.T) {
	h, client := standardSetup(t, 2, replication.Active)
	replies := driveReads(t, h, client, 30)
	for i := 1; i < len(replies); i++ {
		if replies[i] < replies[i-1] {
			t.Fatalf("group clock rolled back at %d: %d -> %d", i, replies[i-1], replies[i])
		}
	}
	for _, id := range []transport.NodeID{1, 2, 3} {
		if n := h.counter(id, "core.monotonicity_fixes"); n != 0 {
			t.Fatalf("replica %v needed %d defensive monotonicity fixes", id, n)
		}
	}
}

func TestOffsetAlgebra(t *testing.T) {
	h, client := standardSetup(t, 3, replication.Active)
	driveReads(t, h, client, 10)
	for _, id := range []transport.NodeID{1, 2, 3} {
		for i, r := range h.reports[id] {
			if r.Offset != r.GroupClock-r.Physical {
				t.Fatalf("replica %v round %d: offset %v != group %v − physical %v",
					id, i, r.Offset, r.GroupClock, r.Physical)
			}
		}
	}
	// Whoever won the first round, the offsets must absorb the physical
	// clock disagreement: replica 3's clock runs 15s ahead of replica 1's,
	// so its offset must sit ≈15s below replica 1's.
	last1 := h.reports[1][len(h.reports[1])-1]
	last3 := h.reports[3][len(h.reports[3])-1]
	gap := last1.Offset - last3.Offset
	if gap < 15*time.Second-time.Millisecond || gap > 15*time.Second+time.Millisecond {
		t.Fatalf("offset gap = %v, want ≈ 15s (offsets %v vs %v)",
			gap, last1.Offset, last3.Offset)
	}
}

func TestCCSDuplicateSuppressionOnWire(t *testing.T) {
	h, client := standardSetup(t, 4, replication.Active)
	const n = 40
	driveReads(t, h, client, n)
	h.k.RunFor(10 * time.Millisecond)

	var sent, suppressed uint64
	for _, id := range []transport.NodeID{1, 2, 3} {
		sent += h.counter(id, "core.ccs_sent")
		suppressed += h.counter(id, "core.ccs_suppressed") + h.counter(id, "core.from_buffer")
	}
	// Every replica attempts one CCS per round (3n attempts); suppression
	// and buffering must eliminate the large majority of duplicates, as in
	// §4.3 (counts 1 / 9,977 / 22 for 10,000 rounds).
	if sent < n {
		t.Fatalf("sent %d CCS messages for %d rounds; at least one per round required", sent, n)
	}
	if sent > n+n/2 {
		t.Fatalf("%d CCS messages reached the wire for %d rounds; suppression ineffective (suppressed=%d)",
			sent, n, suppressed)
	}
}

func TestPassiveOnlyPrimarySendsCCS(t *testing.T) {
	h, client := standardSetup(t, 5, replication.Passive)
	driveReads(t, h, client, 10)
	h.k.RunFor(5 * time.Millisecond)

	sent1, specials1 := h.counter(1, "core.ccs_sent"), h.counter(1, "core.special_rounds")
	// 10 reads plus one special round per periodic checkpoint.
	if want := 10 + specials1; sent1 != want {
		t.Fatalf("primary sent %d CCS messages, want %d (10 reads + %d special rounds)",
			sent1, want, specials1)
	}
	for _, id := range []transport.NodeID{2, 3} {
		if got := h.counter(id, "core.ccs_sent"); got != 0 {
			t.Fatalf("backup %v sent %d CCS messages", id, got)
		}
		// Backups observed the rounds and keep a current offset.
		if h.counter(id, "core.rounds_observed") == 0 {
			t.Fatalf("backup %v observed no rounds", id)
		}
	}
}

func TestPassiveFailoverUsesBufferedCCS(t *testing.T) {
	h, client := standardSetup(t, 6, replication.Passive)
	replies := driveReads(t, h, client, 6)

	// Kill the primary (node 1). Node 2 takes over and replays the log;
	// rounds the old primary already ran must be satisfied from the buffer
	// of delivered CCS messages (§3.3), not re-initiated.
	h.stacks[1].Stop()
	h.net.Endpoint(1).SetDown(true)

	var after []uint64
	done := 0
	var invoke func()
	invoke = func() {
		client.Invoke("read", nil, func(r rpc.Reply) {
			if r.Err != nil {
				return
			}
			done++
			after = append(after, binary.BigEndian.Uint64(r.Body))
			if done < 6 {
				invoke()
			}
		})
	}
	invoke()
	if !h.runUntil(10*time.Second, func() bool { return done >= 6 }) {
		t.Fatalf("only %d/6 reads completed after failover", done)
	}

	if h.counter(2, "core.from_buffer") == 0 {
		t.Fatal("new primary did not consume buffered CCS messages during replay")
	}
	// Monotone across the failover: the first value after failover is not
	// before the last value before it.
	if after[0] < replies[len(replies)-1] {
		t.Fatalf("clock rolled back across failover: %d then %d",
			replies[len(replies)-1], after[0])
	}
	all := append(append([]uint64(nil), replies...), after...)
	for i := 1; i < len(all); i++ {
		if all[i] < all[i-1] {
			t.Fatalf("non-monotone at %d: %d -> %d", i, all[i-1], all[i])
		}
	}
}

func TestSemiActiveAllExecuteOnlyPrimarySends(t *testing.T) {
	h, client := standardSetup(t, 7, replication.SemiActive)
	driveReads(t, h, client, 12)
	h.k.RunFor(5 * time.Millisecond)

	// All replicas executed and recorded identical values.
	a, b, c := h.apps[1].readings, h.apps[2].readings, h.apps[3].readings
	if len(a) != 12 || len(b) != 12 || len(c) != 12 {
		t.Fatalf("readings: %d/%d/%d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatalf("reading %d diverges: %v %v %v", i, a[i], b[i], c[i])
		}
	}
	// Only the primary put CCS messages on the wire.
	if got := h.counter(1, "core.ccs_sent"); got == 0 {
		t.Fatal("primary sent no CCS messages")
	}
	for _, id := range []transport.NodeID{2, 3} {
		if got := h.counter(id, "core.ccs_sent"); got != 0 {
			t.Fatalf("semi-active backup %v sent %d CCS messages", id, got)
		}
	}
}

func TestClockOpGranularities(t *testing.T) {
	h, client := standardSetup(t, 8, replication.Active)
	var body []byte
	client.Invoke("read-ops", nil, func(r rpc.Reply) { body = r.Body })
	if !h.runUntil(5*time.Second, func() bool { return body != nil }) {
		t.Fatal("no reply")
	}
	gtod := time.Duration(binary.BigEndian.Uint64(body[0:]))
	ftime := time.Duration(binary.BigEndian.Uint64(body[8:]))
	sec := time.Duration(binary.BigEndian.Uint64(body[16:]))
	if gtod%time.Microsecond != 0 {
		t.Fatalf("gettimeofday %v not µs-quantized", gtod)
	}
	if ftime%time.Millisecond != 0 {
		t.Fatalf("ftime %v not ms-quantized", ftime)
	}
	if sec%time.Second != 0 {
		t.Fatalf("time %v not s-quantized", sec)
	}
	if !(ftime <= gtod+time.Millisecond && sec <= ftime+time.Second) {
		t.Fatalf("granularity ordering broken: %v %v %v", gtod, ftime, sec)
	}
}

func TestRecoveringReplicaIntegratesNewClock(t *testing.T) {
	h := newCoreHarness(t, 9)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.addReplica(1, replication.Active, false, h.simClock(0, 0))
	h.addReplica(2, replication.Active, false, h.simClock(3*time.Second, 0))
	client := h.newClient(0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)
	before := driveReads(t, h, client, 8)

	// Node 3 joins with a wildly different physical clock (+100s): the
	// special round must initialize it so the group clock stays monotone.
	h.addReplica(3, replication.Active, true, h.simClock(100*time.Second, 0))
	ok := h.runUntil(10*time.Second, func() bool {
		live := false
		h.k.Post(func() { live = h.mgrs[3].Live() })
		h.k.RunFor(50 * time.Microsecond)
		return live
	})
	if !ok {
		t.Fatal("recovering replica never went live")
	}
	if h.counter(1, "core.special_rounds") == 0 &&
		h.counter(2, "core.special_rounds") == 0 {
		t.Fatal("no special round was taken for the state transfer")
	}

	after := driveReads(t, h, client, 8)
	// Monotone across the recovery, and far below the newcomer's raw clock.
	if after[0] < before[len(before)-1] {
		t.Fatalf("clock regressed across recovery: %d -> %d",
			before[len(before)-1], after[0])
	}
	if time.Duration(after[0]) > 50*time.Second {
		t.Fatalf("group clock jumped toward the newcomer's clock: %v",
			time.Duration(after[0]))
	}
	// The newcomer executed the new reads and matches the others.
	aN := h.apps[3].readings
	aE := h.apps[1].readings
	if len(aN) < 8 {
		t.Fatalf("newcomer recorded %d readings", len(aN))
	}
	tail := aE[len(aE)-len(aN):]
	for i := range aN {
		if aN[i] != tail[i] {
			t.Fatalf("newcomer reading %d = %v, existing = %v", i, aN[i], tail[i])
		}
	}
}

func TestDriftWithoutCompensationRunsSlow(t *testing.T) {
	h, client := standardSetup(t, 10, replication.Active)
	realStart := h.k.Now()
	replies := driveReads(t, h, client, 30)
	realSpan := h.k.Now() - realStart
	groupSpan := time.Duration(replies[len(replies)-1] - replies[0])
	// Figure 6(c): the group clock advances more slowly than real time
	// because the winner's proposal is based on a physical reading taken
	// before the round's ordering delay.
	if groupSpan >= realSpan {
		t.Fatalf("group clock advanced %v over %v of real time; should run slow",
			groupSpan, realSpan)
	}
}

func TestMeanDelayCompensationReducesDrift(t *testing.T) {
	run := func(comp Compensation) time.Duration {
		h := newCoreHarness(t, 11)
		ring := []transport.NodeID{0, 1, 2, 3}
		for _, id := range ring {
			h.addStack(id, ring, true)
		}
		for _, id := range ring[1:] {
			h.addReplica(id, replication.Active, false, h.simClock(0, 0),
				func(c *Config) { c.Compensation = comp; c.MeanDelay = 150 * time.Microsecond })
		}
		client := h.newClient(0)
		for _, s := range h.stacks {
			s.Start()
		}
		h.k.RunFor(3 * time.Millisecond)
		replies := driveReads(t, h, client, 30)
		return h.k.Now() - time.Duration(replies[len(replies)-1]) // lag behind real time
	}
	lagNone := run(CompNone)
	lagComp := run(CompMeanDelay)
	if lagComp >= lagNone {
		t.Fatalf("mean-delay compensation did not reduce drift: %v vs %v", lagComp, lagNone)
	}
}

func TestExternalCompensationBoundsDrift(t *testing.T) {
	h := newCoreHarness(t, 12)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	ref := hwclock.NewSim(h.k.Now) // perfect external reference
	for _, id := range ring[1:] {
		h.addReplica(id, replication.Active, false, h.simClock(0, 0),
			func(c *Config) {
				c.Compensation = CompExternal
				c.External = ref
				c.ExternalGain = 0.5
			})
	}
	client := h.newClient(0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)
	replies := driveReads(t, h, client, 40)
	lag := h.k.Now() - time.Duration(replies[len(replies)-1])
	if lag > 2*time.Millisecond {
		t.Fatalf("externally nudged clock lags %v; should stay near real time", lag)
	}
	// Still consistent across replicas.
	a, b := h.apps[1].readings, h.apps[2].readings
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inconsistent under external compensation at %d", i)
		}
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	s := &TimeService{
		handlers:   map[uint64]*ccsHandler{1: {threadID: 1, round: 42}},
		pendingRnd: map[uint64]uint64{7: 9},
		special:    ccsHandler{round: 3},
		lastGroup:  8 * time.Hour,
	}
	st, err := decodeState(s.encodeState())
	if err != nil {
		t.Fatal(err)
	}
	if st.specialRound != 3 || st.groupClock != 8*time.Hour {
		t.Fatalf("state = %+v", st)
	}
	if st.threadRounds[1] != 42 || st.threadRounds[7] != 9 {
		t.Fatalf("thread rounds = %v", st.threadRounds)
	}
	if _, err := decodeState([]byte{1, 2}); err == nil {
		t.Fatal("short state accepted")
	}
	if _, err := decodeState(make([]byte, 21)); err == nil {
		t.Fatal("truncated state accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, nil)
	s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(0),
		Members: []transport.NodeID{0}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := replication.New(replication.Config{Runtime: k, Stack: s,
		Group: 1, App: &clockApp{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		m.Stop() // retire the invocation thread the constructor spawned
		k.RunFor(time.Millisecond)
	}()
	clk := hwclock.NewManual(0)
	if _, err := New(Config{Clock: clk}); err == nil {
		t.Fatal("missing manager accepted")
	}
	if _, err := New(Config{Manager: m}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := New(Config{Manager: m, Clock: clk, Compensation: CompExternal}); err == nil {
		t.Fatal("CompExternal without reference accepted")
	}
	svc, err := New(Config{Manager: m, Clock: clk, Compensation: CompMeanDelay})
	if err != nil {
		t.Fatal(err)
	}
	if svc.cfg.MeanDelay == 0 {
		t.Fatal("MeanDelay default not applied")
	}
}

func TestCompensationStrings(t *testing.T) {
	for _, tc := range []struct {
		c    Compensation
		want string
	}{{CompNone, "none"}, {CompMeanDelay, "mean-delay"}, {CompExternal, "external"},
		{Compensation(9), "Compensation(9)"}} {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestDeterministicClockTraces(t *testing.T) {
	run := func() []time.Duration {
		h, client := standardSetup(t, 77, replication.Active)
		driveReads(t, h, client, 15)
		return h.apps[1].readings
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestStatsRegistryParity asserts the obs registry — now the only stats
// surface — publishes every canonical core.* counter for every replica, and
// that the values are coherent after a burst of reads.
func TestStatsRegistryParity(t *testing.T) {
	h, client := standardSetup(t, 12, replication.Active)
	driveReads(t, h, client, 20)
	h.k.RunFor(10 * time.Millisecond)
	names := []string{
		"core.rounds_initiated",
		"core.rounds_observed",
		"core.ccs_sent",
		"core.ccs_suppressed",
		"core.from_buffer",
		"core.special_rounds",
		"core.monotonicity_fixes",
		"core.timers_fired",
	}
	for _, id := range []transport.NodeID{1, 2, 3} {
		present := make(map[string]bool)
		for _, s := range h.rec.Samples() {
			if s.Node == uint32(id) {
				present[s.Name] = true
			}
		}
		for _, name := range names {
			if !present[name] {
				t.Errorf("replica %v: registry does not publish %s", id, name)
			}
		}
		if h.counter(id, "core.rounds_initiated") == 0 {
			t.Errorf("replica %v: registry shows no initiated rounds after the reads", id)
		}
	}
	var sent uint64
	for _, id := range []transport.NodeID{1, 2, 3} {
		sent += h.counter(id, "core.ccs_sent")
	}
	if sent == 0 {
		t.Error("registry accounts no CCS sends across the whole group")
	}
}
