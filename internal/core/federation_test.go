package core

import (
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/transport"
)

// enableFederation turns the federation half on at the given replicas and
// lets the posted enables run.
func enableFederation(h *coreHarness, cfg FedConfig, ids ...transport.NodeID) {
	h.t.Helper()
	for _, id := range ids {
		if err := h.svcs[id].EnableFederation(cfg); err != nil {
			h.t.Fatal(err)
		}
	}
	h.k.RunFor(time.Millisecond)
}

func TestFedConfigValidate(t *testing.T) {
	if _, err := (FedConfig{}).Validate(); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := (FedConfig{InitialSlack: time.Millisecond}).Validate(); err == nil {
		t.Fatal("zero AgingPPM accepted")
	}
	if _, err := (FedConfig{InitialSlack: -1, AgingPPM: 100}).Validate(); err == nil {
		t.Fatal("negative InitialSlack accepted")
	}
	if _, err := (FedConfig{InitialSlack: time.Millisecond, AgingPPM: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFederatedRoundNudgesWholeGroup: a federated round is a total-order
// adoption like any other CCS round — every replica applies the same nudge,
// re-derives its offset, and the group keeps answering identical values.
func TestFederatedRoundNudgesWholeGroup(t *testing.T) {
	h, client := standardSetup(t, 31, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Minute})
	enableFederation(h, FedConfig{InitialSlack: 5 * time.Millisecond, AgingPPM: 10_000}, serverIDs...)
	before := driveReads(t, h, client, 5)

	const nudge = 2 * time.Millisecond
	offBefore := h.svcs[2].offset
	h.svcs[1].ProposeFederated(nudge, time.Millisecond)
	h.k.RunFor(5 * time.Millisecond)
	offAfter := h.svcs[2].offset

	for _, id := range serverIDs {
		if got := h.counter(id, "core.fed_adoptions"); got != 1 {
			t.Fatalf("replica %v adopted %d federated rounds, want 1", id, got)
		}
	}
	if got := h.counter(1, "core.fed_proposals"); got != 1 {
		t.Fatalf("proposer counted %d proposals, want 1", got)
	}

	after := driveReads(t, h, client, 5)
	// Replicas still agree exactly after the nudge.
	a, b := h.apps[1].readings, h.apps[2].readings
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d diverges after federated round: %v %v", i, a[i], b[i])
		}
	}
	if after[0] < before[len(before)-1] {
		t.Fatalf("group clock regressed across the federated round: %d -> %d",
			before[len(before)-1], after[0])
	}
	// A non-proposing replica's re-derived offset jumped forward by the nudge
	// minus the round's ordering delay (the group clock kept advancing between
	// proposal and delivery, which eats a sliver of the step).
	delta := offAfter - offBefore
	if delta < nudge/2 || delta > nudge+time.Millisecond {
		t.Fatalf("offset moved by %v across the federated round, want about the %v nudge", delta, nudge)
	}
	if h.counter(1, "core.monotonicity_fixes") != 0 {
		t.Fatal("forward nudge must not trip the monotone guard")
	}
}

// TestFedSlackWidensAndAges: before any federated round the published bound
// carries InitialSlack; a delivered round re-anchors it to the carried slack
// term; and between rounds it ages at AgingPPM.
func TestFedSlackWidensAndAges(t *testing.T) {
	h, client := standardSetup(t, 32, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Minute})
	driveReads(t, h, client, 3)
	base, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("no lease before federation")
	}

	const initial = 5 * time.Millisecond
	enableFederation(h, FedConfig{InitialSlack: initial, AgingPPM: 10_000}, serverIDs...)
	driveReads(t, h, client, 1) // republish with the federation slack folded in
	widened, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("no lease after enabling federation")
	}
	if d := widened.Bound - base.Bound; d < initial {
		t.Fatalf("bound widened by %v, want at least InitialSlack %v", d, initial)
	}

	const anchored = time.Millisecond
	h.svcs[1].ProposeFederated(0, anchored)
	h.k.RunFor(5 * time.Millisecond)
	driveReads(t, h, client, 1)
	r1, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("no lease after federated round")
	}
	if r1.Bound >= widened.Bound {
		t.Fatalf("federated round did not re-anchor the slack: bound %v, was %v", r1.Bound, widened.Bound)
	}

	// Idle aging: 100ms at 10_000 ppm grows the bound by ~1ms beyond the
	// drift term alone.
	h.k.RunFor(100 * time.Millisecond)
	r2, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("lease expired during idle")
	}
	if growth := r2.Bound - r1.Bound; growth < time.Millisecond {
		t.Fatalf("bound grew %v over 100ms idle, want at least 1ms of federation aging", growth)
	}
}

// TestFedStateRidesCheckpoint: the state codec carries the federated round
// counter and the projected slack (the §3.2 discipline extended to the
// federation plane).
func TestFedStateRidesCheckpoint(t *testing.T) {
	h, client := standardSetup(t, 33, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Minute})
	enableFederation(h, FedConfig{InitialSlack: 5 * time.Millisecond, AgingPPM: 10_000}, serverIDs...)
	driveReads(t, h, client, 2)
	h.svcs[1].ProposeFederated(time.Millisecond, 2*time.Millisecond)
	h.k.RunFor(5 * time.Millisecond)

	st, err := decodeState(h.svcs[1].encodeState())
	if err != nil {
		t.Fatal(err)
	}
	if st.fedRound != 1 {
		t.Fatalf("checkpoint carries fedRound %d, want 1", st.fedRound)
	}
	if st.fedSlack < 2*time.Millisecond {
		t.Fatalf("checkpoint carries fedSlack %v, want at least the anchored 2ms", st.fedSlack)
	}
}

// TestJoinerInheritsFederationState is the regression test for the
// §3.2-joiner-class bug in the federation plane: without the checkpoint
// carrying fedRound and fedSlack, a recovering replica would (a) treat a
// replayed old federated round as new and re-adopt its stale value — a
// monotone-guard hit a healthy run must not need — and (b) publish bounds
// blind to inter-group skew for up to one exchange interval.
func TestJoinerInheritsFederationState(t *testing.T) {
	h := newCoreHarness(t, 34)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.addReplica(1, replication.Active, false, h.simClock(0, 0))
	h.addReplica(2, replication.Active, false, h.simClock(3*time.Second, 0))
	client := h.newClient(0)
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	fedCfg := FedConfig{InitialSlack: 20 * time.Millisecond, AgingPPM: 10_000}
	for _, id := range []transport.NodeID{1, 2} {
		if err := h.svcs[id].EnableLease(LeaseConfig{Window: time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	enableFederation(h, fedCfg, 1, 2)
	driveReads(t, h, client, 4)
	// Advance the federated plane past round zero with a live slack anchor.
	for i := 0; i < 3; i++ {
		h.svcs[1].ProposeFederated(100*time.Microsecond, 3*time.Millisecond)
		h.k.RunFor(5 * time.Millisecond)
	}

	h.addReplica(3, replication.Active, true, h.simClock(100*time.Second, 0))
	if err := h.svcs[3].EnableFederation(fedCfg); err != nil {
		t.Fatal(err)
	}
	ok := h.runUntil(10*time.Second, func() bool {
		live := false
		h.k.Post(func() { live = h.mgrs[3].Live() })
		h.k.RunFor(50 * time.Microsecond)
		return live
	})
	if !ok {
		t.Fatal("recovering replica never went live")
	}

	var round uint64
	var slack time.Duration
	h.k.Post(func() {
		round = h.svcs[3].fed.handler.round
		slack = h.svcs[3].FederationSlack()
	})
	h.k.RunFor(time.Millisecond)
	if round < 3 {
		t.Fatalf("joiner's federated round counter = %d, want at least 3 from the checkpoint", round)
	}
	// The joiner inherited the donor's anchored slack (~3ms), not the blind
	// 20ms InitialSlack — and not zero.
	if slack < 3*time.Millisecond {
		t.Fatalf("joiner's federation slack = %v, want at least the donor's 3ms", slack)
	}
	if slack > 15*time.Millisecond {
		t.Fatalf("joiner's federation slack = %v; restored anchor should beat InitialSlack", slack)
	}

	// A fresh federated round lands on the joiner as an adoption, not a
	// replayed duplicate, and nobody needed the monotone guard.
	h.svcs[1].ProposeFederated(0, 3*time.Millisecond)
	h.k.RunFor(5 * time.Millisecond)
	if got := h.counter(3, "core.fed_adoptions"); got == 0 {
		t.Fatal("joiner did not adopt the post-recovery federated round")
	}
	for _, id := range []transport.NodeID{1, 2, 3} {
		if got := h.counter(id, "core.monotonicity_fixes"); got != 0 {
			t.Fatalf("replica %v needed %d monotonicity fixes across recovery", id, got)
		}
	}
}
