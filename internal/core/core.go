// Package core implements the paper's contribution: the consistent time
// service and its consistent clock synchronization (CCS) algorithm (§3).
//
// Each clock-related operation starts a round. The calling replica reads its
// physical hardware clock, adds its clock offset to form the local logical
// clock value, and proposes that value for the group clock in a CCS message
// multicast through the reliable totally-ordered group-communication
// substrate. The first CCS message delivered for the round decides the group
// clock: every replica adopts the delivered value and re-derives its offset
// as group_clock − physical_clock (Figures 2 and 3 of the paper). Replicas
// compete to be the round's synchronizer under active replication; under
// passive and semi-active replication only the primary sends, and a new
// primary first consults its buffer of already-delivered CCS messages
// (§3.3). Per-thread handlers, the common input buffer for threads that do
// not yet exist, duplicate detection by round number, the special round
// taken during state transfer (§3.2), and the drift-compensation strategies
// of §3.3 are all implemented.
package core

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/replication"
	"cts/internal/transport"
	"cts/internal/wire"
)

// specialThreadID is the reserved logical-thread identifier used by the
// special clock-synchronization round taken during state transfer.
const specialThreadID = 0

// Compensation selects the drift-compensation strategy of §3.3.
type Compensation int

// Drift-compensation strategies.
const (
	// CompNone applies the plain algorithm; the group clock drifts slow
	// relative to real time (Figure 6(c)).
	CompNone Compensation = iota
	// CompMeanDelay adds a configured mean communication delay to the clock
	// offset each time it is recalculated, cancelling most of the drift.
	CompMeanDelay
	// CompExternal nudges each proposed value a small proportion of the way
	// toward an external reference (NTP/GPS-like: transient skew, no drift).
	CompExternal
)

// String implements fmt.Stringer.
func (c Compensation) String() string {
	switch c {
	case CompNone:
		return "none"
	case CompMeanDelay:
		return "mean-delay"
	case CompExternal:
		return "external"
	default:
		return fmt.Sprintf("Compensation(%d)", int(c))
	}
}

// Config configures a TimeService.
type Config struct {
	// Manager is the replica's replication manager. Required.
	Manager *replication.Manager
	// Clock is the replica's physical hardware clock. Required.
	Clock hwclock.Clock
	// Compensation selects the drift strategy; default CompNone.
	Compensation Compensation
	// MeanDelay is the per-round offset bias for CompMeanDelay.
	// Default 75µs (≈ the testbed's CCS ordering delay).
	MeanDelay time.Duration
	// External is the reference clock for CompExternal.
	External hwclock.Clock
	// ExternalGain is the proportion of the (reference − proposal)
	// difference applied per round for CompExternal. Default 0.1.
	ExternalGain float64
	// DisableBatching forces every proposal onto its own CCS message even
	// when several rounds are pending at once (for determinism A/B tests and
	// experiments). Batching only engages when a proposal starts while an
	// earlier one is still unordered, so uncontended workloads behave
	// identically either way. Default false (batching on).
	DisableBatching bool
	// AgreedCCS delivers CCS messages with agreed instead of safe
	// semantics. The paper's algorithm relies on the safe-delivery property
	// ("if the message ... is delivered to any nonfaulty replica, it will
	// be delivered to all non-faulty replicas", §3), which costs roughly
	// one extra token circulation per round (§4.3, Figure 5); agreed
	// delivery trades that guarantee under partitions for lower latency.
	// Default false (safe, as in the paper).
	AgreedCCS bool
	// OnRound, if set, observes every completed round (for experiments).
	// Called on the loop.
	OnRound func(RoundReport)
	// Obs receives the CCS round-lifecycle trace events and registers this
	// service's counters. Defaults to the manager's recorder; a nil recorder
	// disables instrumentation at no cost. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg and fills defaults, returning the effective
// configuration. Invalid settings are reported as errors instead of silently
// misbehaving.
func (c Config) Validate() (Config, error) {
	if c.Manager == nil {
		return c, errors.New("core: Config.Manager is required")
	}
	if c.Clock == nil {
		return c, errors.New("core: Config.Clock is required")
	}
	switch c.Compensation {
	case CompNone, CompMeanDelay, CompExternal:
	default:
		return c, fmt.Errorf("core: invalid Config.Compensation %d", int(c.Compensation))
	}
	if c.MeanDelay < 0 {
		return c, fmt.Errorf("core: Config.MeanDelay must not be negative (got %v)", c.MeanDelay)
	}
	if c.Compensation == CompMeanDelay && c.MeanDelay == 0 {
		c.MeanDelay = 75 * time.Microsecond
	}
	if c.Compensation == CompExternal {
		if c.External == nil {
			return c, errors.New("core: CompExternal requires Config.External")
		}
		if c.ExternalGain < 0 || c.ExternalGain > 1 {
			return c, fmt.Errorf("core: Config.ExternalGain must be in (0, 1] (got %v)", c.ExternalGain)
		}
		if c.ExternalGain == 0 {
			c.ExternalGain = 0.1
		}
	}
	if c.Obs == nil {
		c.Obs = c.Manager.Obs()
	}
	return c, nil
}

// RoundReport describes one completed CCS round at this replica.
type RoundReport struct {
	ThreadID   uint64
	Round      uint64
	Op         wire.ClockOp
	Special    bool
	GroupClock time.Duration // the round's decided group clock value
	Physical   time.Duration // this replica's physical clock for the round
	Offset     time.Duration // this replica's offset after the round
	Initiated  bool          // this replica ran the round (vs observed it)
	Winner     transport.NodeID
}

// Stats counts time-service activity.
type Stats struct {
	RoundsInitiated   uint64 // clock operations performed locally
	RoundsObserved    uint64 // rounds completed from delivered CCS messages only
	CCSSent           uint64 // CCS messages that reached the wire
	CCSSuppressed     uint64 // CCS sends withdrawn or skipped
	FromBuffer        uint64 // rounds satisfied by an already-delivered CCS message
	RoundsCoalesced   uint64 // rounds that shared a batch or were decided while queued
	BatchesSent       uint64 // CCS-batch messages that reached the wire
	BatchEntries      uint64 // rounds carried by those batch messages
	SpecialRounds     uint64
	MonotonicityFixes uint64 // defensive clamps (0 under fail-stop clocks)
	FedCoalesced      uint64 // benign clamps of rounds overtaken by a federated nudge
	TimersFired       uint64 // deterministic group-time timers fired
}

// pendingRead is a logical thread blocked in get_grp_clock_time. In-flight
// proposals are tracked centrally (batch.go), not per read: a batch message
// covers many reads and is withdrawn only when all of them are decided.
type pendingRead struct {
	round    uint64
	physical time.Duration
	op       wire.ClockOp
	complete func(any)
}

// roundMsg is a delivered CCS proposal retained in an input buffer. batch is
// the sender-local batch id when the proposal arrived inside a CCS-batch
// message (0 for a plain CCS message; batch ids start at 1).
type roundMsg struct {
	proposed time.Duration
	op       wire.ClockOp
	special  bool
	sender   transport.NodeID
	batch    uint64
}

// ccsHandler is the per-thread consistent clock synchronization handler
// object (§3.1): my_thread_id, my_input_buffer, and the round counter used
// for duplicate detection and for matching operations to CCS messages.
type ccsHandler struct {
	threadID uint64
	round    uint64              // rounds consumed by this thread
	buffer   map[uint64]roundMsg // my_input_buffer, keyed by round
	waiting  *pendingRead
}

// TimeService renders clock-related operations deterministic across the
// replica group. All state is confined to the manager's runtime loop.
type TimeService struct {
	mgr   *replication.Manager
	clock hwclock.Clock
	cfg   Config

	offset      time.Duration // my_clock_offset
	lastGroup   time.Duration // latest group clock value, for the monotone guard
	causalFloor time.Duration // §5: group clock must advance past this value
	handlers    map[uint64]*ccsHandler
	common      []commonEntry     // my_common_input_buffer
	pendingRnd  map[uint64]uint64 // thread rounds restored from a checkpoint

	special         ccsHandler // handler for the special (state transfer) rounds
	pendingCaptures []pendingCapture

	// Join-staleness accounting for a recovering replica (recovery.go):
	// the first restored checkpoint seeds the lease lag estimate with the
	// elapsed recovery time, an upper bound on how stale the adopted group
	// value is.
	recoveryStart time.Duration
	joinLagDue    bool

	// Batched proposals with round coalescing (batch.go).
	pendingBatch []wire.CCSBatchEntry
	flushQueued  bool
	batchSeq     uint64
	inflight     map[threadRound]*inflightProposal

	// Deterministic group-time timers (timers.go).
	timers   []*GroupTimer
	timerSeq uint64
	firing   bool

	// Lease plane for external reads between CCS rounds (lease.go).
	lease leaseState

	// Inter-group federation: offset adoption as a special CCS round
	// (federation.go).
	fed fedState

	stats Stats
	obs   *obs.Recorder
}

type commonEntry struct {
	threadID uint64
	round    uint64
	msg      roundMsg
}

// New creates a time service bound to the manager and installs its hooks
// (CCS message routing and checkpoint participation).
func New(cfg Config) (*TimeService, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	s := &TimeService{
		mgr:        cfg.Manager,
		clock:      cfg.Clock,
		cfg:        cfg,
		obs:        cfg.Obs,
		handlers:   make(map[uint64]*ccsHandler),
		pendingRnd: make(map[uint64]uint64),
		inflight:   make(map[threadRound]*inflightProposal),
		special:    ccsHandler{threadID: specialThreadID, buffer: make(map[uint64]roundMsg)},
	}
	if cfg.Manager.Recovering() {
		s.recoveryStart = cfg.Clock.Read()
		s.joinLagDue = true
	}
	cfg.Obs.Register(s)
	cfg.Manager.Runtime().Post(func() {
		cfg.Manager.SetCCSHandler(s.onCCS)
		cfg.Manager.SetCheckpointHooks(s.captureForCheckpoint, s.restoreFromCheckpoint)
		cfg.Manager.SetCausalHooks(s.Timestamp, s.ObserveTimestamp)
	})
	return s, nil
}

// Timestamp reports the group clock value to stamp into outgoing inter-group
// messages (§5 of the paper): any reading this replica has returned is at or
// below it. Loop-only.
func (s *TimeService) Timestamp() time.Duration {
	if s.causalFloor > s.lastGroup {
		return s.causalFloor
	}
	return s.lastGroup
}

// ObserveTimestamp records a group clock value carried by a delivered
// inter-group message. The next group clock reading strictly exceeds it, so
// causal relationships between the group clocks of different groups are
// preserved (§5). Timestamps are observed in delivery order — the same order
// at every replica — so the floor is consistent across the group. Loop-only.
func (s *TimeService) ObserveTimestamp(t time.Duration) {
	if t > s.causalFloor {
		s.causalFloor = t
	}
}

// Gettimeofday performs a consistent clock read at µs granularity. It blocks
// the calling logical thread for one CCS round and returns the group clock.
func (s *TimeService) Gettimeofday(ctx *replication.Ctx) time.Duration {
	return s.read(ctx, wire.OpGettimeofday)
}

// Time performs a consistent clock read at second granularity (time(2)).
func (s *TimeService) Time(ctx *replication.Ctx) time.Duration {
	return s.read(ctx, wire.OpTime)
}

// Ftime performs a consistent clock read at millisecond granularity.
func (s *TimeService) Ftime(ctx *replication.Ctx) time.Duration {
	return s.read(ctx, wire.OpFtime)
}

// Clock returns the interposition facade bound to a logical thread context.
func (s *TimeService) Clock(ctx *replication.Ctx) *Clock {
	return &Clock{svc: s, ctx: ctx}
}

// read converts one clock-related operation into a CCS round (Figure 2).
func (s *TimeService) read(ctx *replication.Ctx, op wire.ClockOp) time.Duration {
	v := ctx.Call(func(complete func(any)) {
		s.beginRead(ctx.ThreadID(), op, complete)
	})
	d, _ := v.(time.Duration)
	return d - d%op.Granularity()
}

// beginRead runs on the loop: lines 3–14 of Figure 2.
func (s *TimeService) beginRead(threadID uint64, op wire.ClockOp, complete func(any)) {
	h := s.handler(threadID)
	physical := s.clock.Read()   // my_physical_clock_val
	local := physical + s.offset // my_local_clock_val
	if s.cfg.Compensation == CompExternal {
		diff := s.cfg.External.Read() - local
		local += time.Duration(float64(diff) * s.cfg.ExternalGain)
	}
	// §5: a proposal never trails a causally observed foreign group clock.
	if floor := s.causalFloor + time.Microsecond; local < floor {
		local = floor
	}
	h.round++ // line 9
	s.stats.RoundsInitiated++
	round := h.round
	s.obs.Trace(obs.ScopeCore, obs.EvReadStart, threadID, round, int64(local), "")

	// Line 10: matching messages were moved from the common input buffer
	// when the handler was created; line 11: check the input buffer.
	if msg, ok := h.buffer[round]; ok {
		delete(h.buffer, round)
		s.stats.FromBuffer++
		s.obs.Trace(obs.ScopeCore, obs.EvFromBuffer, threadID, round, int64(msg.proposed), "")
		s.finishRound(h, round, physical, msg, true, complete)
		return
	}
	h.waiting = &pendingRead{round: round, physical: physical, op: op, complete: complete}
	s.queueProposal(threadID, round, local, op)
}

// competes reports whether this replica sends CCS proposals: all replicas
// under active replication; only the primary under passive and semi-active.
func (s *TimeService) competes() bool {
	if s.mgr.Style() == replication.Active {
		return true
	}
	return s.mgr.IsPrimary()
}

// onCCS handles a delivered CCS or CCS-batch message (Figure 3).
func (s *TimeService) onCCS(msg wire.Message, meta gcs.Meta) {
	if msg.Type == wire.TypeCCSBatch {
		s.onCCSBatch(msg, meta)
		return
	}
	if msg.Type == wire.TypeCCSFed {
		s.onCCSFed(msg, meta)
		return
	}
	p, err := wire.UnmarshalCCS(msg.Payload)
	if err != nil {
		return
	}
	rm := roundMsg{proposed: p.Proposed, op: p.Op, special: p.Special, sender: meta.Sender}
	if p.Special {
		s.deliverToHandler(&s.special, msg.Seq, rm)
		return
	}
	s.deliverProposal(p.ThreadID, msg.Seq, rm)
}

// deliverProposal routes one delivered (thread, round) proposal — a plain
// CCS message or one batch entry — to its handler.
func (s *TimeService) deliverProposal(threadID, round uint64, rm roundMsg) {
	if threadID == RefreshThreadID {
		s.deliverRefresh(round, rm)
		return
	}
	h, ok := s.handlers[threadID]
	if !ok {
		// Lines 3–4 of Figure 3: no matching handler — the thread has not
		// been created yet; queue in the common input buffer (unless a
		// restored checkpoint already covers this round).
		s.releaseProposal(threadID, round)
		if round <= s.pendingRnd[threadID] {
			return
		}
		for _, e := range s.common {
			if e.threadID == threadID && e.round == round {
				return // duplicate
			}
		}
		rm.proposed = s.guardMonotone(rm.proposed)
		s.traceFirstOrdered(threadID, round, rm)
		s.common = append(s.common, commonEntry{threadID: threadID, round: round, msg: rm})
		s.observeGroupValue(threadID, round, rm)
		return
	}
	s.deliverToHandler(h, round, rm)
}

// traceFirstOrdered emits the round-decision event: the first CCS message
// delivered for a round fixes the group clock value. Attr carries the
// winning sender, plus the sender's batch id when the proposal arrived
// inside a CCS-batch message.
func (s *TimeService) traceFirstOrdered(threadID, round uint64, rm roundMsg) {
	if !s.obs.Tracing() {
		return
	}
	attr := fmt.Sprintf("n%d", rm.sender)
	if rm.batch != 0 {
		attr = fmt.Sprintf("n%d b%d", rm.sender, rm.batch)
	}
	s.obs.Trace(obs.ScopeCore, obs.EvFirstOrdered, threadID, round,
		int64(rm.proposed), attr)
}

// deliverToHandler implements recv_CCS_msg (lines 5–11 of Figure 3) plus the
// wake-up path of get_grp_clock_time. The first message delivered for a
// round decides the group clock; the monotone guard runs here, in delivery
// (total) order, exactly once per round.
func (s *TimeService) deliverToHandler(h *ccsHandler, round uint64, rm roundMsg) {
	if w := h.waiting; w != nil && w.round == round {
		h.waiting = nil
		// The round is decided; withdraw our own proposal for it if it has
		// not reached the wire yet (batch.go).
		s.releaseProposal(h.threadID, round)
		rm.proposed = s.guardMonotone(rm.proposed)
		s.traceFirstOrdered(h.threadID, round, rm)
		s.finishRound(h, round, w.physical, rm, true, w.complete)
		return
	}
	if round <= h.round {
		return // duplicate: this round is already decided (line 10)
	}
	if _, dup := h.buffer[round]; dup {
		return // duplicate of a buffered future round
	}
	s.releaseProposal(h.threadID, round)
	rm.proposed = s.guardMonotone(rm.proposed)
	s.traceFirstOrdered(h.threadID, round, rm)
	h.buffer[round] = rm
	// Every replica accepts the first delivered value for a round as the
	// group clock and re-derives its offset, even when no local thread is
	// blocked on the round (the paper's Figure 4 walk-through).
	s.observeGroupValue(h.threadID, round, rm)
	if h.threadID == specialThreadID {
		s.consumeSpecial()
	}
}

// guardMonotone validates a round's decided value against the group clock
// sequence. It is called at delivery time, where rounds appear in total
// order at every replica, so the clamp (which never fires under fail-stop
// clocks: each proposal is physical growth added to the previous group
// value) is applied identically everywhere.
func (s *TimeService) guardMonotone(grp time.Duration) time.Duration {
	if grp < s.lastGroup {
		// A round proposed before the last federated nudge and delivered
		// after it decides a pre-nudge value: at or above the clamp floor
		// (the clock just before that adoption). The group moved forward
		// under it — a coalesce, not a broken clock.
		if s.fed.enabled && s.fed.adoptions > 0 && grp >= s.fed.clampFloor {
			s.stats.FedCoalesced++
		} else {
			s.stats.MonotonicityFixes++
		}
		return s.lastGroup
	}
	s.lastGroup = grp
	s.fireTimers()
	return grp
}

// finishRound implements lines 7–8 and 15–17 of Figure 2 at the replica
// whose thread performed the operation.
func (s *TimeService) finishRound(h *ccsHandler, round uint64,
	physical time.Duration, rm roundMsg, initiated bool, complete func(any)) {
	if round > h.round {
		h.round = round
	}
	if initiated {
		// physical is this replica's clock at proposal send; now is the
		// ordered delivery. The difference bounds how far this adoption's
		// anchor can sit from any other replica's for the same round.
		s.noteOrderingLag(s.clock.Read() - physical)
	}
	grp := s.adoptGroupValue(rm, physical)
	s.obs.Trace(obs.ScopeCore, obs.EvAdopted, h.threadID, round, int64(grp), "")
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(RoundReport{
			ThreadID: h.threadID, Round: round, Op: rm.op, Special: rm.special,
			GroupClock: grp, Physical: physical, Offset: s.offset,
			Initiated: initiated, Winner: rm.sender,
		})
	}
	s.obs.Trace(obs.ScopeCore, obs.EvReadDone, h.threadID, round, int64(grp), "")
	complete(grp)
}

// adoptGroupValue applies the round's decided value (already validated by
// guardMonotone at delivery): the offset becomes group − physical,
// optionally biased by the mean-delay compensation (§3.3).
func (s *TimeService) adoptGroupValue(rm roundMsg, physical time.Duration) time.Duration {
	grp := rm.proposed
	s.offset = grp - physical // line 7
	if s.cfg.Compensation == CompMeanDelay {
		s.offset += s.cfg.MeanDelay
	}
	s.publishLease(grp, physical)
	return grp
}

// observeGroupValue updates this replica's offset from a round it did not
// initiate, reading the physical clock at delivery time (as replica R3 does
// in the paper's Figure 4 example).
func (s *TimeService) observeGroupValue(threadID, round uint64, rm roundMsg) {
	s.stats.RoundsObserved++
	grp := s.adoptGroupValue(rm, s.clock.Read())
	s.obs.Trace(obs.ScopeCore, obs.EvAdopted, threadID, round, int64(grp), "")
}

// handler returns (creating if needed) the CCS handler for a thread,
// draining any matching messages from the common input buffer (line 10 of
// Figure 2).
func (s *TimeService) handler(threadID uint64) *ccsHandler {
	if h, ok := s.handlers[threadID]; ok {
		return h
	}
	h := &ccsHandler{threadID: threadID, buffer: make(map[uint64]roundMsg)}
	if r, ok := s.pendingRnd[threadID]; ok {
		h.round = r
		delete(s.pendingRnd, threadID)
	}
	rest := s.common[:0]
	for _, e := range s.common {
		if e.threadID == threadID {
			if e.round > h.round {
				if _, dup := h.buffer[e.round]; !dup {
					h.buffer[e.round] = e.msg
				}
			}
			continue
		}
		rest = append(rest, e)
	}
	s.common = rest
	s.handlers[threadID] = h
	return h
}

// Offset reports my_clock_offset. Loop-only.
func (s *TimeService) Offset() time.Duration { return s.offset }

// LastGroupClock reports the latest group clock value this replica has
// adopted. Loop-only.
func (s *TimeService) LastGroupClock() time.Duration { return s.lastGroup }

// ObsNode implements obs.Source.
func (s *TimeService) ObsNode() uint32 { return uint32(s.mgr.LocalNode()) }

// ObsSamples implements obs.Source under the canonical core.* names.
// Loop-only.
func (s *TimeService) ObsSamples() []obs.Sample {
	id := uint32(s.mgr.LocalNode())
	return append([]obs.Sample{
		{Node: id, Name: "core.rounds_initiated", Value: s.stats.RoundsInitiated},
		{Node: id, Name: "core.rounds_observed", Value: s.stats.RoundsObserved},
		{Node: id, Name: "core.ccs_sent", Value: s.stats.CCSSent},
		{Node: id, Name: "core.ccs_suppressed", Value: s.stats.CCSSuppressed},
		{Node: id, Name: "core.from_buffer", Value: s.stats.FromBuffer},
		{Node: id, Name: "core.rounds_coalesced", Value: s.stats.RoundsCoalesced},
		{Node: id, Name: "core.batches_sent", Value: s.stats.BatchesSent},
		{Node: id, Name: "core.batch_entries", Value: s.stats.BatchEntries},
		{Node: id, Name: "core.special_rounds", Value: s.stats.SpecialRounds},
		{Node: id, Name: "core.monotonicity_fixes", Value: s.stats.MonotonicityFixes},
		{Node: id, Name: "core.timers_fired", Value: s.stats.TimersFired},
	}, append(s.leaseObsSamples(id), s.fedObsSamples(id)...)...)
}

// Clock is the interposition facade standing in for the clock-related
// system calls of §4.1: each method carries its own operation type
// identifier in the CCS message and truncates to that call's granularity.
type Clock struct {
	svc *TimeService
	ctx *replication.Ctx
}

// Gettimeofday returns the group clock at µs granularity.
func (c *Clock) Gettimeofday() time.Duration { return c.svc.Gettimeofday(c.ctx) }

// Time returns the group clock at second granularity.
func (c *Clock) Time() time.Duration { return c.svc.Time(c.ctx) }

// Ftime returns the group clock at millisecond granularity.
func (c *Clock) Ftime() time.Duration { return c.svc.Ftime(c.ctx) }
