package core

import (
	"sort"
	"time"
)

// Deterministic group-time timers. One of the paper's motivations (§1) is
// that timeout handling — timed remote invocations, two-phase commit,
// transaction session management — is a source of replica non-determinism
// when driven by physical clocks. A timer keyed to the GROUP clock fires at
// the first group clock value at or past its deadline. Group clock values
// are adopted at total-order delivery points, identical in sequence and
// value at every replica, so every replica fires the same timers between the
// same pair of rounds: the timeout decision is deterministic.

// GroupTimer is a pending deterministic timer.
type GroupTimer struct {
	deadline  time.Duration
	seq       uint64 // creation order, ties broken deterministically
	fn        func(groupClock time.Duration)
	fired     bool
	cancelled bool
}

// Cancel prevents the timer from firing. It reports whether the timer was
// still pending. Loop-only.
func (t *GroupTimer) Cancel() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	return true
}

// AtGroupTime schedules fn to run when the group clock reaches deadline.
// fn receives the group clock value that triggered it and runs on the
// replica's event loop, at every replica, between the same two rounds.
// Timers must be created from deterministic execution (an invocation or
// another timer callback) so that the creation order — and hence the firing
// order of timers sharing a deadline — agrees across replicas. Loop-only
// (call through Ctx.Call or from delivery handlers).
func (s *TimeService) AtGroupTime(deadline time.Duration, fn func(time.Duration)) *GroupTimer {
	t := &GroupTimer{deadline: deadline, seq: s.timerSeq, fn: fn}
	s.timerSeq++
	s.timers = append(s.timers, t)
	sort.SliceStable(s.timers, func(i, j int) bool {
		if s.timers[i].deadline != s.timers[j].deadline {
			return s.timers[i].deadline < s.timers[j].deadline
		}
		return s.timers[i].seq < s.timers[j].seq
	})
	// The deadline may already be in the past.
	s.fireTimers()
	return t
}

// fireTimers runs every pending timer whose deadline the group clock has
// reached. Called after each group clock adoption (guardMonotone) — a
// total-order point — and at timer creation.
func (s *TimeService) fireTimers() {
	if s.firing {
		return // a timer callback is creating timers; the outer loop resumes
	}
	s.firing = true
	defer func() { s.firing = false }()
	for len(s.timers) > 0 {
		t := s.timers[0]
		if t.cancelled {
			s.timers = s.timers[1:]
			continue
		}
		if t.deadline > s.lastGroup {
			return
		}
		s.timers = s.timers[1:]
		t.fired = true
		s.stats.TimersFired++
		t.fn(s.lastGroup)
	}
}

// PendingTimers reports the number of timers not yet fired or cancelled.
// Loop-only.
func (s *TimeService) PendingTimers() int {
	n := 0
	for _, t := range s.timers {
		if !t.fired && !t.cancelled {
			n++
		}
	}
	return n
}
