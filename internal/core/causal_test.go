package core

import (
	"encoding/binary"
	"testing"
	"time"

	"cts/internal/gcs"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

// The §5 extension: two replica groups, each with its own consistent group
// clock, share one ring. A client reads group A's clock, then invokes group
// B with the returned timestamp; group B's clock — initially far BEHIND
// group A's — must advance past the timestamp before serving the read, so
// the causal order of readings across groups is preserved.

const (
	groupA wire.GroupID = 101
	groupB wire.GroupID = 102
)

type causalHarness struct {
	k      *sim.Kernel
	net    *simnet.Network
	stacks map[transport.NodeID]*gcs.Stack
	mgrs   map[transport.NodeID]*replication.Manager
	apps   map[transport.NodeID]*clockApp
	svcs   map[transport.NodeID]*TimeService
	a, b   *rpc.Client
}

// newCausalHarness: client on P0; group A replicas on P1,P2 (clocks +100s);
// group B replicas on P3,P4 (clocks +0s — far behind A).
func newCausalHarness(t *testing.T, seed int64) *causalHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	h := &causalHarness{
		k:      k,
		net:    simnet.NewNetwork(k, nil),
		stacks: make(map[transport.NodeID]*gcs.Stack),
		mgrs:   make(map[transport.NodeID]*replication.Manager),
		apps:   make(map[transport.NodeID]*clockApp),
		svcs:   make(map[transport.NodeID]*TimeService),
	}
	t.Cleanup(func() {
		// Drain in-flight invocations, then retire every replica's logical
		// threads; TestMain's leak check fails the package otherwise.
		h.k.RunFor(5 * time.Millisecond)
		for _, s := range h.stacks {
			s.Stop()
		}
		for _, m := range h.mgrs {
			m.Stop()
		}
		h.k.RunFor(5 * time.Millisecond)
	})
	ring := []transport.NodeID{0, 1, 2, 3, 4}
	for _, id := range ring {
		s, err := gcs.New(gcs.Config{Runtime: k, Transport: h.net.Endpoint(id),
			Members: ring, Bootstrap: true})
		if err != nil {
			t.Fatal(err)
		}
		h.stacks[id] = s
	}
	addReplica := func(id transport.NodeID, gid wire.GroupID, clockOffset time.Duration) {
		app := &clockApp{}
		mgr, err := replication.New(replication.Config{
			Runtime: k, Stack: h.stacks[id], Group: gid,
			Style: replication.Active, App: app,
		})
		if err != nil {
			t.Fatal(err)
		}
		clk := hwclockSim(k, clockOffset)
		svc, err := New(Config{Manager: mgr, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		app.svc = svc
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		h.mgrs[id] = mgr
		h.apps[id] = app
		h.svcs[id] = svc
	}
	addReplica(1, groupA, 100*time.Second)
	addReplica(2, groupA, 100*time.Second)
	addReplica(3, groupB, 0)
	addReplica(4, groupB, 0)

	var err error
	h.a, err = rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: h.stacks[0],
		ClientGroup: 901, ServerGroup: groupA})
	if err != nil {
		t.Fatal(err)
	}
	h.b, err = rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: h.stacks[0],
		ClientGroup: 902, ServerGroup: groupB})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	k.RunFor(3 * time.Millisecond)
	return h
}

func (h *causalHarness) read(t *testing.T, c *rpc.Client, ts time.Duration) (time.Duration, time.Duration) {
	t.Helper()
	var val, stamp time.Duration
	got := false
	c.InvokeStamped("read", nil, ts, func(r rpc.Reply) {
		got = true
		if r.Err != nil {
			t.Errorf("invoke: %v", r.Err)
			return
		}
		val = time.Duration(binary.BigEndian.Uint64(r.Body))
		stamp = r.Timestamp
	})
	deadline := h.k.Now() + 10*time.Second
	for h.k.Now() < deadline && !got {
		h.k.RunFor(200 * time.Microsecond)
	}
	if !got {
		t.Fatal("read timed out")
	}
	return val, stamp
}

func TestCausalTimestampLiftsForeignGroupClock(t *testing.T) {
	h := newCausalHarness(t, 1)

	// Group B unstamped: its clock sits near 0 (its replicas' raw clocks).
	bBefore, _ := h.read(t, h.b, 0)
	if bBefore > 10*time.Second {
		t.Fatalf("group B clock = %v, expected near zero before causal contact", bBefore)
	}
	// Group A: its clock sits near +100s.
	aVal, aStamp := h.read(t, h.a, 0)
	if aVal < 90*time.Second {
		t.Fatalf("group A clock = %v, expected ≈100s", aVal)
	}
	if aStamp < aVal {
		t.Fatalf("reply timestamp %v below the reading %v it must cover", aStamp, aVal)
	}

	// Invoke B with A's timestamp: B's reading must causally follow it.
	bAfter, _ := h.read(t, h.b, aStamp)
	if bAfter <= aVal {
		t.Fatalf("causality violated: read %v from group A, then %v from group B",
			aVal, bAfter)
	}
	// Both B replicas recorded the lifted value identically.
	r3 := h.apps[3].readings
	r4 := h.apps[4].readings
	if len(r3) != len(r4) {
		t.Fatalf("group B replicas diverge in length: %d vs %d", len(r3), len(r4))
	}
	for i := range r3 {
		if r3[i] != r4[i] {
			t.Fatalf("group B replicas diverge at %d: %v vs %v", i, r3[i], r4[i])
		}
	}
	// And B's clock stays monotone afterwards.
	bNext, _ := h.read(t, h.b, 0)
	if bNext < bAfter {
		t.Fatalf("group B rolled back after the causal lift: %v -> %v", bAfter, bNext)
	}
}

func TestCausalChainBackAndForth(t *testing.T) {
	h := newCausalHarness(t, 2)
	// Ping-pong: each reading is passed as the timestamp of the next
	// invocation on the other group; the observed values must be strictly
	// increasing across the whole chain.
	var prevVal, prevStamp time.Duration
	clients := []*rpc.Client{h.a, h.b, h.a, h.b, h.b, h.a}
	for i, c := range clients {
		v, stamp := h.read(t, c, prevStamp)
		if i > 0 && v <= prevVal {
			t.Fatalf("causal chain broken at step %d: %v after %v", i, v, prevVal)
		}
		prevVal, prevStamp = v, stamp
	}
}

func TestUnstampedGroupsStayIndependent(t *testing.T) {
	h := newCausalHarness(t, 3)
	// Without timestamps the groups' clocks are unrelated: B stays near 0
	// no matter how often A is read.
	for i := 0; i < 3; i++ {
		h.read(t, h.a, 0)
	}
	bVal, _ := h.read(t, h.b, 0)
	if bVal > 10*time.Second {
		t.Fatalf("group B clock = %v; unstamped traffic must not couple the groups", bVal)
	}
}

// hwclockSim builds a kernel-backed simulated clock (helper avoiding an
// import cycle with the main test file's harness).
func hwclockSim(k *sim.Kernel, offset time.Duration) clockIface {
	return simClockShim{k: k, off: offset}
}

type clockIface = interface{ Read() time.Duration }

type simClockShim struct {
	k   *sim.Kernel
	off time.Duration
}

func (s simClockShim) Read() time.Duration {
	v := s.k.Now() + s.off
	return v - v%time.Microsecond
}
