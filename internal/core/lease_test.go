package core

import (
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/transport"
)

var serverIDs = []transport.NodeID{1, 2, 3}

// enableLeases turns the lease plane on at every replica and lets the
// posted enables run.
func enableLeases(h *coreHarness, cfg LeaseConfig) {
	h.t.Helper()
	for _, id := range serverIDs {
		if err := h.svcs[id].EnableLease(cfg); err != nil {
			h.t.Fatal(err)
		}
	}
	h.k.RunFor(time.Millisecond)
}

// leaseProbe replays the load-generator's lease invariants in virtual time:
// samples are taken sequentially between kernel steps, so every sample
// happened-before the next and the checks are exact.
type leaseProbe struct {
	t     *testing.T
	floor time.Duration                      // max (group − bound) seen
	last  map[transport.NodeID]time.Duration // per-replica served floor
}

func newLeaseProbe(t *testing.T) *leaseProbe {
	return &leaseProbe{t: t, last: make(map[transport.NodeID]time.Duration)}
}

// sample reads one replica's lease and validates it against everything
// sampled so far. Returns the reading.
func (p *leaseProbe) sample(h *coreHarness, id transport.NodeID) (LeaseReading, bool) {
	p.t.Helper()
	r, ok := h.svcs[id].LeaseRead()
	if !ok {
		return r, false
	}
	if r.Bound <= 0 {
		p.t.Fatalf("replica %v: non-positive bound %v", id, r.Bound)
	}
	if r.GroupClock+r.Bound < p.floor {
		p.t.Fatalf("replica %v: stale interval [%v, %v] below floor %v",
			id, r.GroupClock-r.Bound, r.GroupClock+r.Bound, p.floor)
	}
	if last, seen := p.last[id]; seen && r.GroupClock < last {
		p.t.Fatalf("replica %v: group clock regressed %v -> %v", id, last, r.GroupClock)
	}
	p.last[id] = r.GroupClock
	if f := r.GroupClock - r.Bound; f > p.floor {
		p.floor = f
	}
	return r, true
}

func TestLeaseConfigValidate(t *testing.T) {
	if _, err := (LeaseConfig{}).Validate(); err == nil {
		t.Fatal("zero Window accepted")
	}
	if _, err := (LeaseConfig{Window: time.Second, DriftPPM: -1}).Validate(); err == nil {
		t.Fatal("negative DriftPPM accepted")
	}
	cfg, err := (LeaseConfig{Window: time.Second}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DriftPPM != 100 {
		t.Fatalf("default DriftPPM = %v, want 100", cfg.DriftPPM)
	}
}

// TestLeasePublishedByOrdinaryRounds: every CCS adoption republishes the
// lease, so a replica serving application traffic needs no refresh rounds.
func TestLeasePublishedByOrdinaryRounds(t *testing.T) {
	h, client := standardSetup(t, 21, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Second})
	driveReads(t, h, client, 10)

	probe := newLeaseProbe(t)
	for _, id := range serverIDs {
		if _, ok := probe.sample(h, id); !ok {
			t.Fatalf("replica %v holds no lease after 10 CCS rounds", id)
		}
	}
	if h.counter(1, "core.lease_refreshes") != 0 {
		t.Fatal("ordinary rounds should not count as refreshes")
	}
	if h.counter(1, "core.lease_published") == 0 {
		t.Fatal("no lease published at replica 1")
	}
}

// TestLeaseAgesAndExpires: between rounds the lease extrapolates the group
// clock at the physical rate with a bound that widens by the drift
// allowance, and past the window it stops serving.
func TestLeaseAgesAndExpires(t *testing.T) {
	h, client := standardSetup(t, 22, replication.Active)
	enableLeases(h, LeaseConfig{Window: 500 * time.Millisecond})
	driveReads(t, h, client, 5)

	r1, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("no lease after reads")
	}
	h.k.RunFor(100 * time.Millisecond) // idle: no rounds, lease ages
	r2, ok := h.svcs[1].LeaseRead()
	if !ok {
		t.Fatal("lease expired before its window")
	}
	if d := r2.GroupClock - r1.GroupClock; d < 99*time.Millisecond || d > 101*time.Millisecond {
		t.Fatalf("lease extrapolated %v over 100ms idle", d)
	}
	if r2.Bound <= r1.Bound {
		t.Fatalf("bound did not widen as the lease aged: %v then %v", r1.Bound, r2.Bound)
	}

	h.k.RunFor(500 * time.Millisecond) // now past the 500ms window
	if _, ok := h.svcs[1].LeaseRead(); ok {
		t.Fatal("expired lease still serving")
	}

	// A refresh round brings every replica back.
	h.svcs[2].RefreshLease()
	h.k.RunFor(5 * time.Millisecond)
	probe := newLeaseProbe(t)
	for _, id := range serverIDs {
		if _, ok := probe.sample(h, id); !ok {
			t.Fatalf("replica %v has no lease after refresh", id)
		}
	}
}

// TestLeaseRefreshCoalesces: simultaneous refreshes from all replicas ride
// one CCS round (the first delivered proposal decides, the others withdraw)
// and every replica ends up serving a consistent lease.
func TestLeaseRefreshCoalesces(t *testing.T) {
	h, _ := standardSetup(t, 23, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Second})
	for _, id := range serverIDs {
		h.svcs[id].RefreshLease()
	}
	h.k.RunFor(5 * time.Millisecond)

	probe := newLeaseProbe(t)
	for _, id := range serverIDs {
		if _, ok := probe.sample(h, id); !ok {
			t.Fatalf("replica %v holds no lease after coalesced refresh", id)
		}
		if got := h.counter(id, "core.lease_refreshes"); got != 1 {
			t.Fatalf("replica %v counted %d refreshes, want 1", id, got)
		}
	}
	// All three competed, so up to three proposals hit the wire, but they
	// decided a single round: a second refresh advances every handler by
	// exactly one round again rather than replaying buffered values.
	for _, id := range serverIDs {
		h.svcs[id].RefreshLease()
	}
	h.k.RunFor(5 * time.Millisecond)
	for _, id := range serverIDs {
		if _, ok := probe.sample(h, id); !ok {
			t.Fatalf("replica %v lost its lease on the second refresh", id)
		}
	}
}

// TestLeaseInvalidatedOnMembershipChange: a membership change (here: one
// replica fail-stops) bumps the lease epoch at every survivor and stops the
// old leases from serving until the next round under the new view.
func TestLeaseInvalidatedOnMembershipChange(t *testing.T) {
	h, client := standardSetup(t, 24, replication.Active)
	enableLeases(h, LeaseConfig{Window: 30 * time.Second})
	driveReads(t, h, client, 5)

	probe := newLeaseProbe(t)
	before := make(map[transport.NodeID]LeaseReading)
	for _, id := range serverIDs {
		r, ok := probe.sample(h, id)
		if !ok {
			t.Fatalf("replica %v holds no lease before the crash", id)
		}
		before[id] = r
	}

	// Fail-stop replica 3 mid-lease.
	h.stacks[3].Stop()
	h.net.Endpoint(3).SetDown(true)
	survivors := []transport.NodeID{1, 2}
	if !h.runUntil(10*time.Second, func() bool {
		for _, id := range survivors {
			if h.counter(id, "core.lease_invalidations") == 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("membership change never invalidated the leases")
	}
	for _, id := range survivors {
		if _, ok := h.svcs[id].LeaseRead(); ok {
			t.Fatalf("replica %v still serving an invalidated lease", id)
		}
	}

	// The next refresh re-arms serving under a higher epoch, without any
	// group clock regression relative to pre-crash reads.
	h.svcs[1].RefreshLease()
	h.k.RunFor(10 * time.Millisecond)
	for _, id := range survivors {
		r, ok := probe.sample(h, id)
		if !ok {
			t.Fatalf("replica %v has no lease after post-crash refresh", id)
		}
		if r.Epoch <= before[id].Epoch {
			t.Fatalf("replica %v epoch %d not advanced past %d",
				id, r.Epoch, before[id].Epoch)
		}
	}
}
