package core

// This file implements the group-side half of inter-group federation
// (internal/federation holds the exchange plane): federated offset adoption
// as a special CCS round. A federation agent observing that a neighbor group
// is confidently ahead proposes `local + nudge` under the reserved
// federation thread identifier; the first totally-ordered proposal decides,
// every member adopts the nudged value and re-derives its offset, so the
// whole group moves together and §3 determinism is preserved. The round also
// carries a slack term — the inter-group precision bound — that every member
// folds into its published lease margin, mirroring how the lease plane's
// ordering-latency term keeps single-group bounds honest.
//
// Between federated rounds the slack ages at a configured rate: neighbor
// groups keep advancing (by drift, and by up to one bounded nudge per
// exchange interval), so a group that stops hearing adoptions — an
// inter-group partition — publishes bounds that keep growing until the link
// heals and a fresh round re-anchors the slack. Honesty never depends on the
// exchange plane being alive.

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/obs"
	"cts/internal/wire"
)

// FedThreadID is the reserved logical-thread identifier for federated
// offset-adoption rounds. Like lease refresh rounds they use a dedicated
// non-buffering handler: an observed future round advances the counter and
// adopts immediately.
const FedThreadID = ^uint64(0) - 1

// FedConfig configures the federation half of a TimeService.
type FedConfig struct {
	// InitialSlack pads the published staleness bound until the first
	// federated round refines it: before any summary exchange the group
	// knows nothing about its neighbors, so this must cover the worst
	// plausible initial inter-group offset. Required (positive).
	InitialSlack time.Duration
	// AgingPPM is the rate (parts per million of elapsed physical time) at
	// which the federation slack grows between federated rounds. It must
	// cover how fast neighbor groups can pull ahead unseen: their bounded
	// nudge rate (MaxStep per exchange interval) plus mutual drift.
	// Required (positive).
	AgingPPM float64
}

// Validate checks cfg.
func (c FedConfig) Validate() (FedConfig, error) {
	if c.InitialSlack <= 0 {
		return c, errors.New("core: FedConfig.InitialSlack must be positive")
	}
	if c.AgingPPM <= 0 {
		return c, fmt.Errorf("core: FedConfig.AgingPPM must be positive (got %v)", c.AgingPPM)
	}
	return c, nil
}

// fedState is the TimeService's federation state. Loop-only.
type fedState struct {
	enabled  bool
	agingPPM float64
	handler  ccsHandler // dedicated non-buffering handler for federated rounds
	slack    time.Duration
	anchor   time.Duration // physical clock at the last slack re-anchor
	// anchored distinguishes a slack grounded in real information (a
	// delivered federated round, or a donor's checkpoint) from the blind
	// InitialSlack pad. Informed values replace a blind pad outright;
	// between two informed values the wider projection wins.
	anchored bool
	// clampFloor is the group clock just before the last federated nudge was
	// adopted. A non-federated round in flight across that adoption decides a
	// value computed before the nudge — at or above this floor — and its
	// monotone clamp is a benign coalesce, not a clock anomaly. Updated in
	// total order, so every replica attributes clamps identically.
	clampFloor time.Duration
	// restored carries checkpoint-restored slack observed before
	// EnableFederation has run (state transfer racing enablement).
	restored       time.Duration
	restoredAnchor time.Duration
	haveRestored   bool
	adoptions      uint64
	proposals      uint64
}

// EnableFederation turns on federated offset adoption. Safe to call from any
// goroutine; takes effect on the loop. Until the first federated round is
// delivered, published bounds carry InitialSlack (or a restored checkpoint's
// slack, whichever is larger), aging at AgingPPM.
func (s *TimeService) EnableFederation(cfg FedConfig) error {
	cfg, err := cfg.Validate()
	if err != nil {
		return err
	}
	s.mgr.Runtime().Post(func() {
		s.fed.agingPPM = cfg.AgingPPM
		if !s.fed.enabled {
			s.fed.enabled = true
			s.fed.slack = cfg.InitialSlack
			s.fed.anchor = s.clock.Read()
			s.fed.anchored = false
			if s.fed.haveRestored {
				s.applyRestoredFedSlack()
			}
		}
	})
	return nil
}

// applyRestoredFedSlack folds a checkpoint-restored slack into the live
// state. A donor's checkpoint is real information about the group's
// inter-group envelope, so it replaces a blind InitialSlack pad outright;
// against an already-informed anchor the restore is conservative — keep
// whichever projects larger now, never narrowing a bound on the word of
// older information.
func (s *TimeService) applyRestoredFedSlack() {
	s.fed.haveRestored = false
	now := s.clock.Read()
	cur := s.fedSlackAt(now)
	aged := s.fed.restored + s.fedAgingOver(now-s.fed.restoredAnchor)
	if !s.fed.anchored || aged > cur {
		s.fed.slack = s.fed.restored
		s.fed.anchor = s.fed.restoredAnchor
		s.fed.anchored = true
	}
}

// fedAgingOver returns the slack growth over an elapsed physical duration.
func (s *TimeService) fedAgingOver(elapsed time.Duration) time.Duration {
	if elapsed <= 0 {
		return 0
	}
	return time.Duration(float64(elapsed) * s.fed.agingPPM / 1e6)
}

// fedSlackAt reports the federation slack as of the given physical reading:
// the last anchored value plus aging. Zero when federation is off. Loop-only.
func (s *TimeService) fedSlackAt(physical time.Duration) time.Duration {
	if !s.fed.enabled {
		return 0
	}
	return s.fed.slack + s.fedAgingOver(physical-s.fed.anchor)
}

// FederationSlack reports the current federation slack term of the published
// staleness bound. Loop-only.
func (s *TimeService) FederationSlack() time.Duration {
	return s.fedSlackAt(s.clock.Read())
}

// ProposeFederated starts a federated offset-adoption round carrying the
// given forward nudge and slack term, unless one is already in flight.
// Loop-only (federation agents run on the replica's loop). The nudge must
// come from a bounded-influence merge rule — this method clamps nothing
// beyond the monotone guard every CCS value passes at delivery.
func (s *TimeService) ProposeFederated(nudge, slack time.Duration) {
	if !s.fed.enabled || !s.mgr.Live() || s.fed.handler.waiting != nil {
		return
	}
	if nudge < 0 {
		nudge = 0
	}
	if slack < 0 {
		slack = 0
	}
	physical := s.clock.Read()
	local := physical + s.offset + nudge
	if s.cfg.Compensation == CompExternal {
		diff := s.cfg.External.Read() - (physical + s.offset)
		local += time.Duration(float64(diff) * s.cfg.ExternalGain)
	}
	if floor := s.causalFloor + time.Microsecond; local < floor {
		local = floor
	}
	s.fed.handler.round++
	s.fed.proposals++
	round := s.fed.handler.round
	s.fed.handler.waiting = &pendingRead{round: round, physical: physical,
		op: wire.OpGettimeofday, complete: func(any) {}}
	s.sendFedCCS(round, local, slack)
}

// sendFedCCS multicasts one federated CCS proposal. Like refresh rounds the
// header carries the round identity (Conn is the truncated thread id, Seq
// the round), so identical competing rounds from several members collapse in
// the substrate's duplicate suppression. Federated rounds never batch: their
// payload carries the slack term, which must ride the same total-order slot
// as the value it accounts for.
func (s *TimeService) sendFedCCS(round uint64, proposed time.Duration, slack time.Duration) {
	if !s.competes() {
		return
	}
	s.obs.Trace(obs.ScopeCore, obs.EvProposalQueued, FedThreadID, round, int64(proposed), "fed")
	gid := s.mgr.Group()
	payload := wire.MarshalCCSFed(wire.CCSFedPayload{Proposed: proposed, Slack: slack})
	cancel, err := s.mgr.Stack().MulticastCancelable(wire.Message{
		Header: wire.Header{Type: wire.TypeCCSFed, SrcGroup: gid, DstGroup: gid,
			Conn: wire.ConnID(FedThreadID & 0xFFFFFFFF), Seq: round},
		Payload: payload,
	}, !s.cfg.AgreedCCS)
	if err != nil {
		return
	}
	s.stats.CCSSent++
	s.obs.Trace(obs.ScopeCore, obs.EvCCSSent, FedThreadID, round, int64(proposed), "fed")
	s.trackProposal([]threadRound{{FedThreadID, round}}, func() bool {
		if cancel() {
			s.stats.CCSSent--
			s.stats.CCSSuppressed++
			s.obs.Trace(obs.ScopeCore, obs.EvCCSSuppressed, FedThreadID, round, int64(proposed), "fed")
			return true
		}
		return false
	})
}

// onCCSFed handles a delivered federated CCS message.
func (s *TimeService) onCCSFed(msg wire.Message, meta gcs.Meta) {
	p, err := wire.UnmarshalCCSFed(msg.Payload)
	if err != nil {
		return
	}
	rm := roundMsg{proposed: p.Proposed, op: wire.OpGettimeofday, sender: meta.Sender}
	s.deliverFed(msg.Seq, rm, p.Slack)
}

// deliverFed applies a delivered federated round. Like deliverRefresh it
// never buffers: the first delivered proposal for a round decides, a future
// round advances the counter directly, and the slack term is re-anchored —
// in delivery order, before the adoption publishes the lease — so every
// member's published margin reflects the same total-order point.
func (s *TimeService) deliverFed(round uint64, rm roundMsg, slack time.Duration) {
	h := &s.fed.handler
	if w := h.waiting; w != nil && w.round == round {
		h.waiting = nil
		s.releaseProposal(FedThreadID, round)
		s.anchorFedSlack(slack)
		rm.proposed = s.guardMonotoneFed(rm.proposed)
		s.traceFirstOrdered(FedThreadID, round, rm)
		s.finishRound(h, round, w.physical, rm, true, w.complete)
		return
	}
	if round <= h.round {
		return // duplicate: already decided
	}
	h.round = round
	if w := h.waiting; w != nil && w.round < round {
		// Our in-flight round was overtaken; the overtaking adoption
		// supersedes it, so withdraw our proposal for the stale round.
		h.waiting = nil
		s.releaseProposal(FedThreadID, w.round)
		w.complete(nil)
	}
	s.anchorFedSlack(slack)
	rm.proposed = s.guardMonotoneFed(rm.proposed)
	s.traceFirstOrdered(FedThreadID, round, rm)
	s.observeGroupValue(FedThreadID, round, rm)
}

// guardMonotoneFed validates a federated round's decided value. A federated
// proposal is a snapshot — the duty member's group clock plus nudge as of
// its evaluation — so deciding below the current group clock only means the
// group advanced past the nudge while the proposal was in flight. The clamp
// is a coalesce (the nudge's work was already done), never a clock anomaly.
// It also records the pre-adoption clock as the clamp floor for concurrent
// non-federated rounds (see guardMonotone).
func (s *TimeService) guardMonotoneFed(grp time.Duration) time.Duration {
	if grp < s.lastGroup {
		s.stats.FedCoalesced++
		return s.lastGroup
	}
	s.fed.clampFloor = s.lastGroup
	return s.guardMonotone(grp)
}

// anchorFedSlack installs a delivered round's slack term as the new aging
// anchor.
func (s *TimeService) anchorFedSlack(slack time.Duration) {
	if !s.fed.enabled {
		return
	}
	s.fed.adoptions++
	s.fed.slack = slack
	s.fed.anchor = s.clock.Read()
	s.fed.anchored = true
}

// fedObsSamples contributes the federation counters to ObsSamples.
func (s *TimeService) fedObsSamples(id uint32) []obs.Sample {
	if !s.fed.enabled {
		return nil
	}
	return []obs.Sample{
		{Node: id, Name: "core.fed_proposals", Value: s.fed.proposals},
		{Node: id, Name: "core.fed_adoptions", Value: s.fed.adoptions},
		{Node: id, Name: "core.fed_coalesced", Value: s.stats.FedCoalesced},
	}
}
