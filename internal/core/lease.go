package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/wire"
)

// This file implements the lease plane that lets a replica answer external
// time queries between CCS rounds. Every CCS adoption publishes a lease
// snapshot: the decided group clock value paired with the physical clock
// reading that produced this replica's offset. Until the lease expires, any
// goroutine may read `physical_clock + offset` lock-free and hand the result
// to unreplicated clients together with a staleness bound that grows with
// the time elapsed since the adoption. Membership changes (which include
// synchronizer failover: a crashed synchronizer is excluded from the next
// view) invalidate outstanding leases by bumping the lease epoch, so clients
// holding cached leases from the old configuration are told to re-query.

// RefreshThreadID is the reserved logical-thread identifier for lease
// refresh rounds. Refresh rounds use a dedicated handler that never buffers:
// an observed refresh round advances the counter and republishes the lease
// immediately, so replicas that refresh at different cadences neither grow
// an input buffer nor replay stale group values.
const RefreshThreadID = ^uint64(0)

// defaultLeaseSlack pads the staleness bound for the uncompensated mode: the
// decided value is the synchronizer's clock at proposal time, adopted at
// delivery time, so the adoption already trails true group time by roughly
// the CCS ordering delay (§4.3). The compensation modes cancel this bias.
const defaultLeaseSlack = 75 * time.Microsecond

// LeaseConfig configures the lease plane of a TimeService.
type LeaseConfig struct {
	// Window is how long after a CCS adoption the lease may be served.
	// Required (positive).
	Window time.Duration
	// DriftPPM is the assumed worst-case rate error of the local physical
	// clock, used to widen the staleness bound as the lease ages. If the
	// clock reports its own drift (hwclock.SimClock), the larger of the two
	// is used. Default 100 ppm.
	DriftPPM float64
}

// Validate checks cfg and fills defaults.
func (c LeaseConfig) Validate() (LeaseConfig, error) {
	if c.Window <= 0 {
		return c, errors.New("core: LeaseConfig.Window must be positive")
	}
	if c.DriftPPM < 0 {
		return c, fmt.Errorf("core: LeaseConfig.DriftPPM must not be negative (got %v)", c.DriftPPM)
	}
	if c.DriftPPM == 0 {
		c.DriftPPM = 100
	}
	return c, nil
}

// LeaseReading is one leased group-clock read. The true group clock at the
// moment of the read is within [GroupClock-Bound, GroupClock+Bound], and
// GroupClock never regresses across the reads of one replica.
type LeaseReading struct {
	GroupClock time.Duration
	Bound      time.Duration
	Epoch      uint64
}

// leaseSnapshot is the immutable lease published by the loop and read
// lock-free by serving goroutines.
type leaseSnapshot struct {
	epoch      uint64
	groupAt    time.Duration // decided group clock value
	physAt     time.Duration // physical reading the offset was derived from
	validUntil time.Duration // physical-clock expiry of the lease
	driftPPM   float64
	margin     time.Duration // granularity + compensation slack
	// fedPPM ages the federation slack between publishes: neighbor groups
	// keep advancing (bounded nudges plus drift), so a served bound keeps
	// growing at this extra rate until a fresh adoption republishes
	// (federation.go). Zero when federation is off.
	fedPPM float64
	// fedAt is the federation slack folded into margin at publish, kept
	// separately so LeaseReadIntra can strip the inter-group terms.
	fedAt time.Duration
}

// leaseState is the TimeService's lease plane. snap and floor are the only
// fields touched off-loop.
type leaseState struct {
	snap    atomic.Pointer[leaseSnapshot]
	floor   atomic.Int64 // max group clock served, for per-replica monotonicity
	enabled bool         // loop-only
	cfg     LeaseConfig  // loop-only
	epoch   uint64       // loop-only; bumped on membership change
	margin  time.Duration
	drift   float64
	// lagEst estimates the CCS ordering latency (send → totally-ordered
	// delivery), measured whenever this replica initiated a round. The
	// group clocks of two replicas that adopted the same round differ by at
	// most the spread of their adoption times, which this latency bounds,
	// so it is the precision term of the staleness bound (the paper's
	// Cristian-style reading error). Loop-only; rises instantly, decays
	// slowly, so congestion spikes widen bounds for a while after.
	lagEst  time.Duration
	refresh ccsHandler // dedicated non-buffering refresh handler
	// loop-only counters, reported via ObsSamples
	refreshes     uint64
	invalidations uint64
	published     uint64
}

// EnableLease turns on the lease plane. Safe to call from any goroutine;
// takes effect on the loop. The first lease is published at the next CCS
// adoption (call RefreshLease to force one).
func (s *TimeService) EnableLease(cfg LeaseConfig) error {
	cfg, err := cfg.Validate()
	if err != nil {
		return err
	}
	s.mgr.Runtime().Post(func() {
		s.lease.cfg = cfg
		s.lease.drift = cfg.DriftPPM
		if sc, ok := s.clock.(interface{ DriftPPM() float64 }); ok {
			if d := sc.DriftPPM(); d > s.lease.drift || d < -s.lease.drift {
				if d < 0 {
					d = -d
				}
				s.lease.drift = d
			}
		}
		s.lease.margin = hwclock.GranularityOf(s.clock)
		if s.cfg.Compensation == CompNone {
			slack := s.cfg.MeanDelay
			if slack < defaultLeaseSlack {
				slack = defaultLeaseSlack
			}
			s.lease.margin += slack
		}
		if !s.lease.enabled {
			s.lease.enabled = true
			s.mgr.Stack().WatchViews(s.onLeaseView)
		}
	})
	return nil
}

// LeaseEpoch reports the current lease epoch. Safe from any goroutine; the
// loop publishes the epoch inside each snapshot, so off-loop readers see it
// through LeaseRead.
func (s *TimeService) LeaseEpoch() uint64 {
	if snap := s.lease.snap.Load(); snap != nil {
		return snap.epoch
	}
	return 0
}

// onLeaseView invalidates outstanding leases on any membership change of the
// server group, including synchronizer failover (the failed synchronizer
// leaves the view). Runs on the loop, in view-installation order.
func (s *TimeService) onLeaseView(v gcs.GroupView) {
	if v.Group != s.mgr.Group() {
		return
	}
	s.lease.epoch++
	s.lease.invalidations++
	s.lease.snap.Store(nil)
	s.obs.Trace(obs.ScopeCore, obs.EvLeaseInvalidated, RefreshThreadID,
		s.lease.epoch, int64(len(v.Members)), "view")
}

// publishLease publishes a fresh lease snapshot after a CCS adoption.
// Loop-only; called from adoptGroupValue with the round's decided group
// value and the physical reading the new offset was derived from. Only
// monotonically increasing group values are published: a lagging replica
// consuming buffered rounds must not roll the serving plane backwards.
func (s *TimeService) publishLease(grp, physical time.Duration) {
	if !s.lease.enabled {
		return
	}
	if prev := s.lease.snap.Load(); prev != nil &&
		prev.epoch == s.lease.epoch && grp <= prev.groupAt {
		return
	}
	s.lease.published++
	var fedPPM float64
	if s.fed.enabled {
		fedPPM = s.fed.agingPPM
	}
	fedAt := s.fedSlackAt(physical)
	s.lease.snap.Store(&leaseSnapshot{
		epoch:      s.lease.epoch,
		groupAt:    grp,
		physAt:     physical,
		validUntil: physical + s.lease.cfg.Window,
		driftPPM:   s.lease.drift,
		margin:     s.lease.margin + s.lease.lagEst + fedAt,
		fedPPM:     fedPPM,
		fedAt:      fedAt,
	})
}

// noteOrderingLag folds one measured CCS ordering latency into the lease
// precision estimate. Called on the loop by finishRound for every round this
// replica sent a proposal for (winner or withdrawn, the measurement is the
// same: own send to first ordered delivery).
func (s *TimeService) noteOrderingLag(lag time.Duration) {
	if lag < 0 {
		return
	}
	if lag >= s.lease.lagEst {
		s.lease.lagEst = lag
	} else {
		s.lease.lagEst -= (s.lease.lagEst - lag) / 8
	}
}

// LeaseRead answers one external read from the current lease:
// `physical_clock + offset`, where the offset is frozen in the snapshot as
// groupAt − physAt. Safe to call from any goroutine, lock-free. Returns
// ok=false when no valid lease is held (never published, expired, or
// invalidated by a membership change) — the caller must then fall back to a
// replicated read or another replica.
//
// The bound covers quantization, drift since the adoption, and the
// uncompensated modes' adoption bias. Reads of one replica never regress:
// a shared floor is advanced with CAS, and a read clamped up to the floor
// widens its bound by the clamp distance so it still covers true time.
//
//cts:allocfree
func (s *TimeService) LeaseRead() (LeaseReading, bool) {
	snap := s.lease.snap.Load()
	if snap == nil {
		return LeaseReading{}, false
	}
	phys := s.clock.Read()
	if phys > snap.validUntil || phys < snap.physAt {
		return LeaseReading{}, false
	}
	elapsed := phys - snap.physAt
	g := snap.groupAt + elapsed
	bound := snap.margin + time.Duration(float64(elapsed)*(snap.driftPPM+snap.fedPPM)/1e6)
	for {
		prev := s.lease.floor.Load()
		if int64(g) <= prev {
			bound += time.Duration(prev) - g
			g = time.Duration(prev)
			break
		}
		if s.lease.floor.CompareAndSwap(prev, int64(g)) {
			break
		}
	}
	return LeaseReading{GroupClock: g, Bound: bound, Epoch: snap.epoch}, true
}

// LeaseReadIntra answers one read with the inter-group terms stripped: the
// uncertainty of this group's own clock (quantization, drift, ordering lag),
// excluding the federation slack and its aging. This is what a federation
// summary must carry — a summary quoting the full client-facing bound would
// count the neighbor's own inter-group slack against the merge rule, which
// could then never find a neighbor "confidently ahead" and never converge.
// Unlike LeaseRead it does not fold the served floor (summaries are
// estimates between groups, not client-visible reads). Safe from any
// goroutine.
func (s *TimeService) LeaseReadIntra() (LeaseReading, bool) {
	snap := s.lease.snap.Load()
	if snap == nil {
		return LeaseReading{}, false
	}
	phys := s.clock.Read()
	if phys > snap.validUntil || phys < snap.physAt {
		return LeaseReading{}, false
	}
	elapsed := phys - snap.physAt
	bound := snap.margin - snap.fedAt + time.Duration(float64(elapsed)*snap.driftPPM/1e6)
	return LeaseReading{GroupClock: snap.groupAt + elapsed, Bound: bound, Epoch: snap.epoch}, true
}

// RefreshLease starts a lease refresh CCS round unless one is already in
// flight. Safe to call from any goroutine. Refresh rounds ride the ordinary
// CCS machinery (same duplicate detection, same monotone guard) under the
// reserved RefreshThreadID, so concurrent refreshes from several replicas
// coalesce into one round: the first delivered proposal decides, the other
// senders withdraw, and every replica republishes its lease on adoption.
func (s *TimeService) RefreshLease() {
	s.mgr.Runtime().Post(s.refreshLease)
}

// refreshLease is the loop half of RefreshLease.
func (s *TimeService) refreshLease() {
	if !s.lease.enabled || !s.mgr.Live() || s.lease.refresh.waiting != nil {
		return
	}
	physical := s.clock.Read()
	local := physical + s.offset
	if s.cfg.Compensation == CompExternal {
		diff := s.cfg.External.Read() - local
		local += time.Duration(float64(diff) * s.cfg.ExternalGain)
	}
	if floor := s.causalFloor + time.Microsecond; local < floor {
		local = floor
	}
	s.lease.refresh.round++
	s.lease.refreshes++
	round := s.lease.refresh.round
	s.lease.refresh.waiting = &pendingRead{round: round, physical: physical,
		op: wire.OpGettimeofday, complete: func(any) {}}
	s.queueProposal(RefreshThreadID, round, local, wire.OpGettimeofday)
}

// deliverRefresh handles a delivered refresh-round CCS message. Unlike
// deliverToHandler it never buffers: an observed future round advances the
// counter directly and adopts, so refresh traffic cannot grow an input
// buffer at replicas that refresh less often, and a replica can never
// republish a stale buffered refresh value later.
func (s *TimeService) deliverRefresh(round uint64, rm roundMsg) {
	h := &s.lease.refresh
	if w := h.waiting; w != nil && w.round == round {
		h.waiting = nil
		s.releaseProposal(RefreshThreadID, round)
		rm.proposed = s.guardMonotone(rm.proposed)
		s.traceFirstOrdered(RefreshThreadID, round, rm)
		s.finishRound(h, round, w.physical, rm, true, w.complete)
		return
	}
	if round <= h.round {
		return // duplicate: already decided
	}
	h.round = round
	if w := h.waiting; w != nil && w.round < round {
		// Our in-flight round was overtaken; the overtaking adoption
		// supersedes it, so withdraw our proposal for the stale round.
		h.waiting = nil
		s.releaseProposal(RefreshThreadID, w.round)
		w.complete(nil)
	}
	rm.proposed = s.guardMonotone(rm.proposed)
	s.traceFirstOrdered(RefreshThreadID, round, rm)
	s.observeGroupValue(RefreshThreadID, round, rm)
}

// leaseObsSamples contributes the lease plane's counters to ObsSamples.
func (s *TimeService) leaseObsSamples(id uint32) []obs.Sample {
	return []obs.Sample{
		{Node: id, Name: "core.lease_refreshes", Value: s.lease.refreshes},
		{Node: id, Name: "core.lease_invalidations", Value: s.lease.invalidations},
		{Node: id, Name: "core.lease_published", Value: s.lease.published},
	}
}
