package core

// This file implements batched CCS proposals with round coalescing. When a
// clock read starts while an earlier proposal is still unordered, the new
// round's proposal is not multicast on its own: pending proposals accumulate
// for the rest of the current loop instant and are flushed as one versioned
// CCS-batch message (wire.TypeCCSBatch) carrying every still-undecided
// (thread, round, proposal) entry. The first-ordered batch decides all the
// rounds it lists, applied in listed order, so the §3 first-wins rule and the
// per-thread group-clock sequences stay identical across replicas: total
// order plus a sender-fixed entry order yields one deterministic decision
// sequence, and entries for rounds an earlier message already decided fall
// into the ordinary duplicate paths. Reads whose round is decided while their
// entry waits in the pending batch are dropped at flush and complete without
// any multicast.

import (
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/obs"
	"cts/internal/wire"
)

// threadRound identifies one CCS round for in-flight proposal tracking.
type threadRound struct {
	thread uint64
	round  uint64
}

// inflightProposal tracks one multicast (plain CCS or batch) carrying rounds
// that are not all decided yet. Once every covered round has been decided,
// the multicast is withdrawn if it has not reached the wire.
type inflightProposal struct {
	remaining int
	cancel    func() bool
}

// queueProposal routes one round's proposal toward the wire: directly as a
// plain CCS message when nothing else is pending — the uncontended fast
// path, whose identical headers across replicas feed the ordering
// substrate's duplicate suppression — otherwise into the pending batch
// flushed at the end of the current loop instant.
func (s *TimeService) queueProposal(threadID, round uint64, proposed time.Duration, op wire.ClockOp) {
	if !s.competes() {
		return
	}
	if s.cfg.DisableBatching || (len(s.inflight) == 0 && len(s.pendingBatch) == 0) {
		s.sendSingleCCS(threadID, round, proposed, op, false)
		return
	}
	s.obs.Trace(obs.ScopeCore, obs.EvProposalQueued, threadID, round, int64(proposed), "batch")
	s.pendingBatch = append(s.pendingBatch, wire.CCSBatchEntry{
		ThreadID: threadID, Round: round, Proposed: proposed, Op: op,
	})
	if !s.flushQueued {
		s.flushQueued = true
		s.mgr.Runtime().Post(s.flushBatch)
	}
}

// flushBatch multicasts the accumulated pending proposals as one CCS-batch
// message. It runs as a posted loop event, after every event already queued
// at the same instant, so reads that start together coalesce into one batch.
func (s *TimeService) flushBatch() {
	s.flushQueued = false
	entries := s.pendingBatch
	s.pendingBatch = nil
	live := entries[:0]
	for _, e := range entries {
		if s.roundStillPending(e.ThreadID, e.Round) {
			live = append(live, e)
		}
	}
	coalesced := len(entries) - len(live) // decided while queued: no multicast at all
	if len(live) > 1 {
		coalesced += len(live) - 1 // rounds sharing one batch message
	}
	s.stats.RoundsCoalesced += uint64(coalesced)
	switch len(live) {
	case 0:
	case 1:
		e := live[0]
		s.sendSingleCCS(e.ThreadID, e.Round, e.Proposed, e.Op, false)
	default:
		s.sendBatchCCS(live)
	}
}

// roundStillPending reports whether a queued proposal's round is still
// undecided, i.e. its thread is still blocked on it.
func (s *TimeService) roundStillPending(threadID, round uint64) bool {
	var w *pendingRead
	if threadID == RefreshThreadID {
		w = s.lease.refresh.waiting
	} else if h, ok := s.handlers[threadID]; ok {
		w = h.waiting
	}
	return w != nil && w.round == round
}

// sendSingleCCS multicasts one plain CCS proposal (wire.TypeCCS) and tracks
// it in-flight. The header carries the (thread, round) identity, so identical
// competing proposals from different replicas collapse in the substrate's
// duplicate suppression — batching must not replace this path for
// uncontended reads.
func (s *TimeService) sendSingleCCS(threadID, round uint64, proposed time.Duration,
	op wire.ClockOp, special bool) {
	var attr string
	if special {
		attr = "special"
	}
	s.obs.Trace(obs.ScopeCore, obs.EvProposalQueued, threadID, round, int64(proposed), attr)
	gid := s.mgr.Group()
	payload := wire.MarshalCCS(wire.CCSPayload{
		ThreadID: threadID,
		Proposed: proposed,
		Op:       op,
		Special:  special,
	})
	cancel, err := s.mgr.Stack().MulticastCancelable(wire.Message{
		Header: wire.Header{Type: wire.TypeCCS, SrcGroup: gid, DstGroup: gid,
			Conn: wire.ConnID(threadID & 0xFFFFFFFF), Seq: round},
		Payload: payload,
	}, !s.cfg.AgreedCCS)
	if err != nil {
		return
	}
	s.stats.CCSSent++
	// The proposal is now in the totally-ordered send path; it reaches the
	// wire at the next token visit unless withdrawn.
	s.obs.Trace(obs.ScopeCore, obs.EvCCSSent, threadID, round, int64(proposed), attr)
	s.trackProposal([]threadRound{{threadID, round}}, func() bool {
		if cancel() {
			s.stats.CCSSent--
			s.stats.CCSSuppressed++
			s.obs.Trace(obs.ScopeCore, obs.EvCCSSuppressed, threadID, round, int64(proposed), attr)
			return true
		}
		return false
	})
}

// sendBatchCCS multicasts one CCS-batch message carrying the given entries.
// The header identifies the sender rather than a round — each node's batches
// are distinct messages in the ordering substrate — and Seq carries the
// sender-local batch id that links the member rounds' trace events.
func (s *TimeService) sendBatchCCS(entries []wire.CCSBatchEntry) {
	payload, err := wire.MarshalCCSBatch(entries)
	if err != nil {
		return
	}
	s.batchSeq++
	id := s.batchSeq
	gid := s.mgr.Group()
	cancel, err := s.mgr.Stack().MulticastCancelable(wire.Message{
		Header: wire.Header{Type: wire.TypeCCSBatch, SrcGroup: gid, DstGroup: gid,
			Conn: wire.ConnID(uint32(s.mgr.LocalNode())), Seq: id},
		Payload: payload,
	}, !s.cfg.AgreedCCS)
	if err != nil {
		return
	}
	s.stats.CCSSent++
	s.stats.BatchesSent++
	s.stats.BatchEntries += uint64(len(entries))
	if s.obs.Tracing() {
		attr := fmt.Sprintf("b%d", id)
		for _, e := range entries {
			s.obs.Trace(obs.ScopeCore, obs.EvCCSSent, e.ThreadID, e.Round, int64(e.Proposed), attr)
		}
	}
	s.obs.Trace(obs.ScopeCore, obs.EvBatchSent, specialThreadID, id, int64(len(entries)), "")
	keys := make([]threadRound, len(entries))
	for i, e := range entries {
		keys[i] = threadRound{e.ThreadID, e.Round}
	}
	s.trackProposal(keys, func() bool {
		if cancel() {
			s.stats.CCSSent--
			s.stats.CCSSuppressed++
			s.obs.Trace(obs.ScopeCore, obs.EvCCSSuppressed, specialThreadID, id,
				int64(len(entries)), "batch")
			return true
		}
		return false
	})
}

// trackProposal records an in-flight multicast covering the given rounds.
func (s *TimeService) trackProposal(keys []threadRound, cancel func() bool) {
	ip := &inflightProposal{remaining: len(keys), cancel: cancel}
	for _, k := range keys {
		s.inflight[k] = ip
	}
}

// releaseProposal marks one round decided for in-flight tracking. When every
// round a multicast covers has been decided, the multicast is withdrawn if
// it has not yet reached the wire (the cancel wrapper adjusts the stats).
func (s *TimeService) releaseProposal(threadID, round uint64) {
	k := threadRound{threadID, round}
	ip, ok := s.inflight[k]
	if !ok {
		return
	}
	delete(s.inflight, k)
	ip.remaining--
	if ip.remaining > 0 {
		return
	}
	if ip.cancel != nil {
		ip.cancel()
	}
}

// onCCSBatch applies a delivered CCS-batch message: each entry is one round's
// proposal, applied in listed order (see the file comment for why this
// preserves determinism).
func (s *TimeService) onCCSBatch(msg wire.Message, meta gcs.Meta) {
	entries, err := wire.UnmarshalCCSBatch(msg.Payload)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.ThreadID == specialThreadID {
			continue // special rounds (§3.2) are never batched
		}
		s.deliverProposal(e.ThreadID, e.Round, roundMsg{
			proposed: e.Proposed, op: e.Op, sender: meta.Sender, batch: msg.Seq,
		})
	}
}
