package core

import (
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/testutil"
)

// TestLeaseReadAllocFree gates LeaseRead at its measured allocation count —
// zero — as the dynamic counterpart of the static allocfree annotation on
// it. Every timeserve query performs exactly one LeaseRead; an allocation
// here multiplies by the serving rate.
func TestLeaseReadAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocs/op is perturbed by race-detector instrumentation")
	}
	h, client := standardSetup(t, 31, replication.Active)
	enableLeases(h, LeaseConfig{Window: time.Hour})
	driveReads(t, h, client, 5)

	svc := h.svcs[1]
	if _, ok := svc.LeaseRead(); !ok {
		t.Fatal("no lease held after CCS rounds")
	}
	var ok bool
	allocs := testing.AllocsPerRun(1000, func() {
		_, ok = svc.LeaseRead()
	})
	if !ok {
		t.Fatal("lease lapsed mid-measurement")
	}
	if allocs != 0 {
		t.Fatalf("LeaseRead allocates %.1f allocs/op, want 0", allocs)
	}
}
