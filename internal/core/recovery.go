package core

import (
	"encoding/binary"
	"sort"
	"time"

	"cts/internal/obs"
	"cts/internal/wire"
)

// This file implements "Integration of New Clocks" (§3.2): adding a replica
// (equivalently, a clock) must not disturb the group clock's monotonicity.
// When the GET_STATE synchronization point is reached, the existing replicas
// take a special round of consistent clock synchronization immediately
// before the checkpoint. The special round's CCS message is ordered and
// delivered to all replicas including the recovering one, which does not
// compete: it adopts the delivered group clock value and derives its offset
// from its own physical clock at delivery time. The checkpoint additionally
// carries the time service's round counters so that the recovering replica
// replays subsequent clock operations against the buffered CCS stream.

// pendingCapture queues checkpoint captures when a special round is already
// in flight (two state transfers racing).
type pendingCapture struct {
	done func(extra []byte, groupClock int64)
}

// captureForCheckpoint is installed as the manager's checkpoint-capture
// hook: it runs the special CCS round and then hands the manager the time
// service's serialized state.
func (s *TimeService) captureForCheckpoint(done func(extra []byte, groupClock int64)) {
	if s.special.waiting != nil {
		s.pendingCaptures = append(s.pendingCaptures, pendingCapture{done: done})
		return
	}
	s.stats.SpecialRounds++
	round := s.special.round + 1
	physical := s.clock.Read()
	local := physical + s.offset

	finish := func(v any) {
		grp, _ := v.(time.Duration)
		done(s.encodeState(), int64(grp))
		// Serve a queued capture, if any.
		if len(s.pendingCaptures) > 0 {
			next := s.pendingCaptures[0]
			s.pendingCaptures = s.pendingCaptures[1:]
			s.captureForCheckpoint(next.done)
		}
	}

	if msg, ok := s.special.buffer[round]; ok {
		// Another replica's special round for this transfer already
		// completed; adopt it.
		delete(s.special.buffer, round)
		s.stats.FromBuffer++
		s.finishRound(&s.special, round, physical, msg, true, finish)
		return
	}
	s.special.waiting = &pendingRead{round: round, physical: physical,
		op: wire.OpGettimeofday, complete: finish}
	// Special rounds are never batched: they synchronize with a GET_STATE
	// checkpoint and must stand alone in the total order.
	if s.competes() {
		s.sendSingleCCS(specialThreadID, round, local, wire.OpGettimeofday, true)
	}
}

// consumeSpecial advances the special round counter past rounds this
// replica merely observed, so that the next locally initiated special round
// uses a fresh number.
func (s *TimeService) consumeSpecial() {
	for {
		if _, ok := s.special.buffer[s.special.round+1]; !ok {
			return
		}
		s.special.round++
		delete(s.special.buffer, s.special.round)
	}
}

// restoreFromCheckpoint is installed as the manager's checkpoint-restore
// hook. It aligns the round counters with the checkpoint (so a recovering
// replica's replayed clock operations match the CCS messages it buffers)
// and prunes buffers the counters have passed. The donor's offset is
// deliberately not restored: the offset relates the group clock to the
// local physical clock, so the recovering replica re-derives its own from
// the special round's group value anchored at its own clock (end of this
// function), and from every delivered CCS message thereafter.
func (s *TimeService) restoreFromCheckpoint(extra []byte) {
	st, err := decodeState(extra)
	if err != nil {
		return
	}
	if st.specialRound > s.special.round {
		s.special.round = st.specialRound
	}
	for r := range s.special.buffer {
		if r <= s.special.round {
			delete(s.special.buffer, r)
		}
	}
	// The federated round counter is restored like the refresh counter: a
	// joiner that starts at zero would treat an old federated round as new
	// and re-adopt its stale value (clamped by the monotone guard, but
	// counted as a defensive fix a healthy run must not need).
	if st.fedRound > s.fed.handler.round {
		s.fed.handler.round = st.fedRound
	}
	// The donor's federation slack is adopted too, anchored conservatively
	// at the start of recovery (at or before the donor captured it), so the
	// joiner's published bound stays honest about inter-group skew from its
	// very first lease instead of waiting one exchange interval blind.
	if st.fedSlack > 0 {
		anchor := s.clock.Read()
		if s.joinLagDue && s.recoveryStart < anchor {
			anchor = s.recoveryStart
		}
		if s.fed.enabled {
			aged := st.fedSlack + s.fedAgingOver(s.clock.Read()-anchor)
			// Real information replaces a blind InitialSlack pad outright;
			// against an informed anchor, keep the wider projection.
			if !s.fed.anchored || aged > s.fedSlackAt(s.clock.Read()) {
				s.fed.slack = st.fedSlack
				s.fed.anchor = anchor
				s.fed.anchored = true
			}
		} else {
			s.fed.restored = st.fedSlack
			s.fed.restoredAnchor = anchor
			s.fed.haveRestored = true
		}
	}
	for tid, round := range st.threadRounds {
		if tid == RefreshThreadID {
			if round > s.lease.refresh.round {
				s.lease.refresh.round = round
			}
			continue
		}
		if h, ok := s.handlers[tid]; ok {
			if round > h.round {
				h.round = round
			}
			for r := range h.buffer {
				if r <= h.round {
					delete(h.buffer, r)
				}
			}
			continue
		}
		if round > s.pendingRnd[tid] {
			s.pendingRnd[tid] = round
		}
	}
	// Prune the common input buffer of rounds covered by the checkpoint.
	rest := s.common[:0]
	for _, e := range s.common {
		if e.round <= s.pendingRnd[e.threadID] {
			continue
		}
		rest = append(rest, e)
	}
	s.common = rest
	// §3.2 adoption: the checkpoint carries the group clock decided by the
	// special round immediately preceding it, and the counters restored
	// above mark that round as covered — its CCS message will be dropped
	// as a duplicate if it arrives after this restore. Adopt the value
	// here, deriving the offset from our own physical clock now, unless a
	// newer round already reached us through the ordinary delivery path.
	if st.groupClock > s.lastGroup {
		s.lastGroup = st.groupClock
		grp := s.adoptGroupValue(roundMsg{proposed: st.groupClock, op: wire.OpGettimeofday}, s.clock.Read())
		s.obs.Trace(obs.ScopeCore, obs.EvAdopted, specialThreadID, st.specialRound, int64(grp), "restore")
	}
	// A joiner's adopted group value was decided some time after its
	// recovery began, so the elapsed recovery time upper-bounds how stale
	// the adoption anchor is. Seed the lease lag estimate with it: the
	// joiner's early proposals can run behind the group by up to this much,
	// and its serving bound must say so until measured ordering lags decay
	// the estimate to the steady-state value.
	if s.joinLagDue {
		s.joinLagDue = false
		s.noteOrderingLag(s.clock.Read() - s.recoveryStart)
	}
}

// ccsState is the time service's contribution to a checkpoint. fedRound and
// fedSlack carry the federation handler's counter and the projected
// federation slack at capture time (federation.go); both are zero when
// federation is off.
type ccsState struct {
	specialRound uint64
	groupClock   time.Duration
	fedRound     uint64
	fedSlack     time.Duration
	threadRounds map[uint64]uint64
}

func (s *TimeService) encodeState() []byte {
	tids := make([]uint64, 0, len(s.handlers)+len(s.pendingRnd))
	rounds := make(map[uint64]uint64, len(s.handlers)+len(s.pendingRnd))
	for tid, h := range s.handlers {
		rounds[tid] = h.round
		tids = append(tids, tid)
	}
	for tid, r := range s.pendingRnd {
		if _, ok := rounds[tid]; !ok {
			tids = append(tids, tid)
		}
		if r > rounds[tid] {
			rounds[tid] = r
		}
	}
	// The lease refresh round rides the thread-round table under its
	// reserved identifier, so a recovering replica skips refresh rounds
	// the checkpoint already covers.
	if r := s.lease.refresh.round; r > 0 {
		if _, ok := rounds[RefreshThreadID]; !ok {
			tids = append(tids, RefreshThreadID)
		}
		if r > rounds[RefreshThreadID] {
			rounds[RefreshThreadID] = r
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	var fedSlack time.Duration
	if s.fed.enabled {
		fedSlack = s.fedSlackAt(s.clock.Read())
	}
	buf := make([]byte, 8+8+8+8+4+16*len(tids))
	binary.BigEndian.PutUint64(buf[0:], s.special.round)
	binary.BigEndian.PutUint64(buf[8:], uint64(s.lastGroup))
	binary.BigEndian.PutUint64(buf[16:], s.fed.handler.round)
	binary.BigEndian.PutUint64(buf[24:], uint64(fedSlack))
	binary.BigEndian.PutUint32(buf[32:], uint32(len(tids)))
	off := 36
	for _, tid := range tids {
		binary.BigEndian.PutUint64(buf[off:], tid)
		binary.BigEndian.PutUint64(buf[off+8:], rounds[tid])
		off += 16
	}
	return buf
}

func decodeState(b []byte) (ccsState, error) {
	st := ccsState{threadRounds: make(map[uint64]uint64)}
	if len(b) < 36 {
		return st, wire.ErrShortMessage
	}
	st.specialRound = binary.BigEndian.Uint64(b[0:])
	st.groupClock = time.Duration(binary.BigEndian.Uint64(b[8:]))
	st.fedRound = binary.BigEndian.Uint64(b[16:])
	st.fedSlack = time.Duration(binary.BigEndian.Uint64(b[24:]))
	n := binary.BigEndian.Uint32(b[32:])
	if len(b) != 36+16*int(n) {
		return st, wire.ErrTruncated
	}
	off := 36
	for i := uint32(0); i < n; i++ {
		tid := binary.BigEndian.Uint64(b[off:])
		st.threadRounds[tid] = binary.BigEndian.Uint64(b[off+8:])
		off += 16
	}
	return st, nil
}
