package gcs

import (
	"fmt"
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

const (
	grpServer wire.GroupID = 100
	grpClient wire.GroupID = 200
)

type gcsHarness struct {
	t      *testing.T
	k      *sim.Kernel
	net    *simnet.Network
	stacks map[transport.NodeID]*Stack
	// msgs[node] = payload strings delivered to that node's handlers.
	msgs  map[transport.NodeID][]string
	views map[transport.NodeID][]GroupView
}

func newGCSHarness(t *testing.T, seed int64) *gcsHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	return &gcsHarness{
		t:      t,
		k:      k,
		net:    simnet.NewNetwork(k, nil),
		stacks: make(map[transport.NodeID]*Stack),
		msgs:   make(map[transport.NodeID][]string),
		views:  make(map[transport.NodeID][]GroupView),
	}
}

func (h *gcsHarness) addStack(id transport.NodeID, ring []transport.NodeID, bootstrap bool) *Stack {
	h.t.Helper()
	s, err := New(Config{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   ring,
		Bootstrap: bootstrap,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.stacks[id] = s
	return s
}

func (h *gcsHarness) joinGroup(id transport.NodeID, gid wire.GroupID) *Group {
	h.t.Helper()
	g, err := h.stacks[id].Join(gid,
		func(m wire.Message, meta Meta) {
			h.msgs[id] = append(h.msgs[id], string(m.Payload))
		},
		func(v GroupView) {
			h.views[id] = append(h.views[id], v)
		})
	if err != nil {
		h.t.Fatal(err)
	}
	return g
}

func (h *gcsHarness) runUntil(max time.Duration, cond func() bool) bool {
	deadline := h.k.Now() + max
	for h.k.Now() < deadline {
		if cond() {
			return true
		}
		h.k.RunFor(200 * time.Microsecond)
	}
	return cond()
}

func appMsg(dst wire.GroupID, seq uint64, payload string) wire.Message {
	return wire.Message{
		Header: wire.Header{Type: wire.TypeRequest, SrcGroup: grpClient,
			DstGroup: dst, Conn: 1, Seq: seq},
		Payload: []byte(payload),
	}
}

func TestGroupMulticastDeliversToMembersOnly(t *testing.T) {
	h := newGCSHarness(t, 1)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	// Server group on 1,2,3; node 0 is a non-member client.
	for _, id := range ring[1:] {
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)

	client := h.stacks[0]
	h.k.Post(func() { client.Multicast(appMsg(grpServer, 1, "req-1")) })

	ok := h.runUntil(time.Second, func() bool {
		return len(h.msgs[1]) == 1 && len(h.msgs[2]) == 1 && len(h.msgs[3]) == 1
	})
	if !ok {
		t.Fatalf("members got %d/%d/%d messages",
			len(h.msgs[1]), len(h.msgs[2]), len(h.msgs[3]))
	}
	if len(h.msgs[0]) != 0 {
		t.Fatal("non-member delivered a group message")
	}
	if h.msgs[1][0] != "req-1" {
		t.Fatalf("payload = %q", h.msgs[1][0])
	}
}

func TestGroupViewsConverge(t *testing.T) {
	h := newGCSHarness(t, 2)
	ring := []transport.NodeID{0, 1, 2}
	for _, id := range ring {
		h.addStack(id, ring, true)
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	ok := h.runUntil(time.Second, func() bool {
		for _, id := range ring {
			vs := h.views[id]
			if len(vs) == 0 || len(vs[len(vs)-1].Members) != 3 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("group views did not converge to 3 members")
	}
	for _, id := range ring {
		v := h.views[id][len(h.views[id])-1]
		if !v.Primary {
			t.Fatalf("%v final view not primary: %+v", id, v)
		}
		for i, m := range v.Members {
			if m != transport.NodeID(i) {
				t.Fatalf("%v members = %v", id, v.Members)
			}
		}
	}
}

func TestTotalOrderAcrossSenders(t *testing.T) {
	h := newGCSHarness(t, 3)
	ring := []transport.NodeID{0, 1, 2}
	for _, id := range ring {
		h.addStack(id, ring, true)
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	for i, id := range ring {
		s := h.stacks[id]
		for m := 0; m < 10; m++ {
			payload := fmt.Sprintf("n%d-m%d", i, m)
			seq := uint64(i*100 + m)
			h.k.At(h.k.Now()+time.Duration(m*100+i*7)*time.Microsecond, func() {
				s.Multicast(appMsg(grpServer, seq, payload))
			})
		}
	}
	ok := h.runUntil(2*time.Second, func() bool {
		return len(h.msgs[0]) >= 30 && len(h.msgs[1]) >= 30 && len(h.msgs[2]) >= 30
	})
	if !ok {
		t.Fatal("not all messages delivered")
	}
	for i := range h.msgs[0] {
		if h.msgs[0][i] != h.msgs[1][i] || h.msgs[1][i] != h.msgs[2][i] {
			t.Fatalf("order diverges at %d: %q %q %q",
				i, h.msgs[0][i], h.msgs[1][i], h.msgs[2][i])
		}
	}
}

func TestLeaveRemovesFromViews(t *testing.T) {
	h := newGCSHarness(t, 4)
	ring := []transport.NodeID{0, 1, 2}
	var groups []*Group
	for _, id := range ring {
		h.addStack(id, ring, true)
		groups = append(groups, h.joinGroup(id, grpServer))
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.runUntil(time.Second, func() bool {
		vs := h.views[0]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 3
	})
	groups[2].Leave()
	ok := h.runUntil(time.Second, func() bool {
		vs := h.views[0]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 2
	})
	if !ok {
		t.Fatal("leave not reflected in group view")
	}
	// Messages no longer reach the departed member.
	before := len(h.msgs[2])
	s := h.stacks[0]
	h.k.Post(func() { s.Multicast(appMsg(grpServer, 999, "post-leave")) })
	h.runUntil(time.Second, func() bool { return len(h.msgs[0]) > 0 })
	h.k.RunFor(5 * time.Millisecond)
	if len(h.msgs[2]) != before {
		t.Fatal("departed member still receives group messages")
	}
}

func TestCrashShrinksGroupView(t *testing.T) {
	h := newGCSHarness(t, 5)
	ring := []transport.NodeID{0, 1, 2, 3}
	for _, id := range ring {
		h.addStack(id, ring, true)
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.runUntil(time.Second, func() bool {
		vs := h.views[0]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 4
	})
	h.stacks[3].Stop()
	h.net.Endpoint(3).SetDown(true)
	ok := h.runUntil(2*time.Second, func() bool {
		for _, id := range ring[:3] {
			vs := h.views[id]
			if len(vs) == 0 || len(vs[len(vs)-1].Members) != 3 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("group view did not shrink after crash")
	}
	v := h.views[0][len(h.views[0])-1]
	if !v.Primary {
		t.Fatal("3-of-4 component should be primary")
	}
}

func TestJoinerLearnsExistingGroups(t *testing.T) {
	h := newGCSHarness(t, 6)
	ring := []transport.NodeID{0, 1, 2}
	for _, id := range ring {
		h.addStack(id, ring, true)
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(3 * time.Millisecond)

	// Node 3 joins the ring and the group.
	joiner := h.addStack(3, []transport.NodeID{0, 1, 2, 3}, false)
	h.joinGroup(3, grpServer)
	joiner.Start()

	ok := h.runUntil(2*time.Second, func() bool {
		vs := h.views[3]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 4
	})
	if !ok {
		t.Fatal("joiner never saw the 4-member group view")
	}
	// And existing members see the joiner.
	ok = h.runUntil(time.Second, func() bool {
		vs := h.views[0]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 4
	})
	if !ok {
		t.Fatal("existing members never saw the joiner")
	}
	// New messages reach all four.
	s := h.stacks[1]
	h.k.Post(func() { s.Multicast(appMsg(grpServer, 50, "to-all")) })
	ok = h.runUntil(time.Second, func() bool {
		for _, id := range []transport.NodeID{0, 1, 2, 3} {
			found := false
			for _, p := range h.msgs[id] {
				if p == "to-all" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("post-join multicast did not reach all members")
	}
}

func TestWatchViewsSeesForeignGroup(t *testing.T) {
	h := newGCSHarness(t, 7)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.joinGroup(1, grpServer) // only node 1 is a member
	var watched []GroupView
	h.stacks[0].WatchViews(func(v GroupView) {
		if v.Group == grpServer {
			watched = append(watched, v)
		}
	})
	for _, s := range h.stacks {
		s.Start()
	}
	ok := h.runUntil(time.Second, func() bool {
		return len(watched) > 0 && len(watched[len(watched)-1].Members) == 1
	})
	if !ok {
		t.Fatal("watcher never saw the foreign group's view")
	}
}

func TestMulticastToUnknownGroupIsDropped(t *testing.T) {
	h := newGCSHarness(t, 8)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	s := h.stacks[0]
	h.k.Post(func() { s.Multicast(appMsg(777, 1, "nobody-home")) })
	h.k.RunFor(5 * time.Millisecond) // must not panic, nothing delivered
	if len(h.msgs[0])+len(h.msgs[1]) != 0 {
		t.Fatal("message delivered to a group with no members")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, nil)
	if _, err := New(Config{Runtime: k}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := New(Config{Transport: net.Endpoint(0)}); err == nil {
		t.Fatal("missing runtime accepted")
	}
	s, err := New(Config{Runtime: k, Transport: net.Endpoint(0),
		Members: []transport.NodeID{0}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(1, nil, nil); err == nil {
		t.Fatal("nil message handler accepted")
	}
}

func TestGroupIDCodec(t *testing.T) {
	buf := make([]byte, 4)
	for _, id := range []wire.GroupID{0, 1, 255, 1 << 16, ^wire.GroupID(0)} {
		putGroupID(buf, id)
		if got := getGroupID(buf); got != id {
			t.Fatalf("group id %d round-tripped to %d", id, got)
		}
	}
}

func TestMulticastCancelableSuppression(t *testing.T) {
	h := newGCSHarness(t, 9)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
		h.joinGroup(id, grpServer)
	}
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	s := h.stacks[0]
	h.k.Post(func() {
		cancel, err := s.MulticastCancelable(appMsg(grpServer, 7, "withdrawn"), false)
		if err != nil {
			t.Error(err)
			return
		}
		if !cancel() {
			t.Error("cancel before token visit should succeed")
		}
		if !cancel() {
			t.Error("cancel is idempotent: still guaranteed unsent")
		}
	})
	h.k.RunFor(5 * time.Millisecond)
	for _, id := range ring {
		for _, p := range h.msgs[id] {
			if p == "withdrawn" {
				t.Fatal("cancelled multicast was delivered")
			}
		}
	}
	// A non-cancelled one goes through, and cancel-after-send reports false.
	h.k.Post(func() {
		cancel, err := s.MulticastCancelable(appMsg(grpServer, 8, "kept"), false)
		if err != nil {
			t.Error(err)
			return
		}
		h.k.After(5*time.Millisecond, func() {
			if cancel() {
				t.Error("cancel after send should report false")
			}
		})
	})
	ok := h.runUntil(time.Second, func() bool {
		return len(h.msgs[0]) > 0 && h.msgs[0][len(h.msgs[0])-1] == "kept"
	})
	if !ok {
		t.Fatal("kept multicast not delivered")
	}
}

func TestWatchMessagesSeesAllTraffic(t *testing.T) {
	h := newGCSHarness(t, 10)
	ring := []transport.NodeID{0, 1}
	for _, id := range ring {
		h.addStack(id, ring, true)
	}
	h.joinGroup(1, grpServer) // node 0 is not a member
	var sniffed []string
	h.stacks[0].WatchMessages(func(m wire.Message, meta Meta) {
		sniffed = append(sniffed, string(m.Payload))
	})
	for _, s := range h.stacks {
		s.Start()
	}
	h.k.RunFor(2 * time.Millisecond)
	s := h.stacks[1]
	h.k.Post(func() { s.Multicast(appMsg(grpServer, 1, "observed")) })
	ok := h.runUntil(time.Second, func() bool {
		for _, p := range sniffed {
			if p == "observed" {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatal("watcher did not observe foreign-group traffic")
	}
	if len(h.msgs[0]) != 0 {
		t.Fatal("non-member received group delivery")
	}
}
