// Package gcs is the group-communication layer between the total-order
// multicast substrate (internal/order: Totem single ring, leader sequencer
// or sim-instant) and the replication infrastructure. It multiplexes named
// process groups over the orderer's single total order: every fault-tolerant
// protocol message (wire.Message) is delivered to the local members of its
// destination group in the same order at every processor, and per-group
// membership views track both which processors host group members and
// whether the component is primary (§2 of the paper). The package depends
// only on the order.Orderer contract, never on a concrete protocol.
package gcs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"cts/internal/obs"
	"cts/internal/order"
	"cts/internal/sim"
	"cts/internal/transport"
	"cts/internal/wire"
)

// Meta describes the total-order position of a delivered message.
type Meta struct {
	TotalOrder uint64
	ViewID     order.ViewID
	Seq        uint64
	Sender     transport.NodeID
}

// GroupView is the membership of one group, derived from the orderer's
// membership view and the group-announcement traffic, identical in content
// and order at every processor of the component.
type GroupView struct {
	Group   wire.GroupID
	Members []transport.NodeID // processors hosting members of the group
	ViewID  order.ViewID
	Primary bool
}

// MessageHandler consumes a message delivered to a group in total order.
// Handlers run on the stack's runtime loop and must not block.
type MessageHandler func(wire.Message, Meta)

// ViewHandler consumes group membership changes.
type ViewHandler func(GroupView)

// Config configures a Stack.
type Config struct {
	// Runtime is the event loop the stack (and its orderer) runs on.
	// Required.
	Runtime sim.Runtime
	// Transport carries the processor's datagrams. Required.
	Transport transport.Transport
	// Members is the initial component membership (all processors, whether
	// or not they host members of any particular group).
	Members []transport.NodeID
	// Bootstrap, when true, forms the initial configuration from Members
	// directly; when false the processor joins the component its peers have
	// formed.
	Bootstrap bool
	// Order selects and tunes the total-order protocol underneath the
	// stack. The zero value runs Totem with default tuning; tuning supplied
	// for a non-selected orderer is a validation error, never a silent
	// no-op.
	Order order.Options
	// Obs registers this stack's counters and is handed down to the
	// ordering layer for protocol-level tracing. A nil recorder disables
	// instrumentation at no cost. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg, returning the effective configuration. Ordering-layer
// defaults (protocol timeouts) are filled by the orderer constructor.
func (c Config) Validate() (Config, error) {
	if c.Runtime == nil || c.Transport == nil {
		return c, errors.New("gcs: Runtime and Transport are required")
	}
	var err error
	if c.Order, err = c.Order.Validate(); err != nil {
		return c, fmt.Errorf("gcs: %w", err)
	}
	return c, nil
}

// Stats counts group-communication activity.
type Stats struct {
	Multicasts        uint64 // application messages queued for the total order
	AppDelivered      uint64 // application messages delivered in total order
	AnnounceDelivered uint64 // group-announcement messages delivered
	ViewsEmitted      uint64 // group view changes emitted
}

// envelope tags multiplexed over the total order.
const (
	envApp      = 1 // wire.Message
	envAnnounce = 2 // processor announces its locally joined groups
)

// Stack is one processor's group-communication endpoint.
type Stack struct {
	rt  sim.Runtime
	ord order.Orderer
	me  transport.NodeID

	groups map[wire.GroupID]*Group // locally joined groups

	// membership[g][p] records that processor p hosts a member of group g.
	membership map[wire.GroupID]map[transport.NodeID]bool
	ordView    order.View
	lastViews  map[wire.GroupID]GroupView
	// emitQueued debounces view emission: announce deliveries and ordering
	// view changes mark the tables dirty and post one deferred emission,
	// so a wave of same-instant announces (every member re-announcing after
	// a membership change) yields one view diff instead of one per
	// announce. At campaign scale that is the difference between O(N²) and
	// O(N³) work per membership change.
	emitQueued bool

	// viewWatchers receive every group view change, joined or not (used by
	// clients tracking a server group).
	viewWatchers []ViewHandler
	// msgWatchers observe every application message in total order.
	msgWatchers []MessageHandler

	stats Stats
	obs   *obs.Recorder
}

// New creates a stack. Call Start to begin.
func New(cfg Config) (*Stack, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	s := &Stack{
		rt:         cfg.Runtime,
		me:         cfg.Transport.LocalID(),
		groups:     make(map[wire.GroupID]*Group),
		membership: make(map[wire.GroupID]map[transport.NodeID]bool),
		lastViews:  make(map[wire.GroupID]GroupView),
		obs:        cfg.Obs,
	}
	ord, err := order.New(order.Env{
		Runtime:   cfg.Runtime,
		Transport: cfg.Transport,
		Members:   cfg.Members,
		Bootstrap: cfg.Bootstrap,
		Deliver:   s.onDeliver,
		OnView:    s.onOrderView,
		Obs:       cfg.Obs,
	}, cfg.Order)
	if err != nil {
		return nil, fmt.Errorf("gcs: %w", err)
	}
	s.ord = ord
	cfg.Obs.Register(s)
	return s, nil
}

// Start begins protocol activity.
func (s *Stack) Start() { s.ord.Start() }

// Stop halts the stack.
func (s *Stack) Stop() { s.ord.Stop() }

// Orderer exposes the underlying total-order endpoint.
func (s *Stack) Orderer() order.Orderer { return s.ord }

// LocalID reports the processor identity of this stack.
func (s *Stack) LocalID() transport.NodeID { return s.me }

// ObsNode implements obs.Source.
func (s *Stack) ObsNode() uint32 { return uint32(s.me) }

// ObsSamples implements obs.Source under the canonical gcs.* names.
// Loop-only.
func (s *Stack) ObsSamples() []obs.Sample {
	id := uint32(s.me)
	return []obs.Sample{
		{Node: id, Name: "gcs.multicasts", Value: s.stats.Multicasts},
		{Node: id, Name: "gcs.app_delivered", Value: s.stats.AppDelivered},
		{Node: id, Name: "gcs.announce_delivered", Value: s.stats.AnnounceDelivered},
		{Node: id, Name: "gcs.views_emitted", Value: s.stats.ViewsEmitted},
	}
}

// Group is a local group membership.
type Group struct {
	stack  *Stack
	id     wire.GroupID
	onMsg  MessageHandler
	onView ViewHandler
	left   bool
}

// Join registers the local processor as hosting a member of group id.
// The join is announced through the total order, so every processor updates
// the group's view at the same point in the message stream. Safe to call
// from any goroutine.
func (s *Stack) Join(id wire.GroupID, onMsg MessageHandler, onView ViewHandler) (*Group, error) {
	if onMsg == nil {
		return nil, errors.New("gcs: message handler is required")
	}
	g := &Group{stack: s, id: id, onMsg: onMsg, onView: onView}
	s.rt.Post(func() {
		s.groups[id] = g
		s.announceLocal()
	})
	return g, nil
}

// Leave withdraws the local membership. Safe to call from any goroutine.
func (g *Group) Leave() {
	g.stack.rt.Post(func() {
		if g.left {
			return
		}
		g.left = true
		delete(g.stack.groups, g.id)
		g.stack.announceLocal()
	})
}

// ID reports the group identifier.
func (g *Group) ID() wire.GroupID { return g.id }

// Multicast sends m through the total order to the members of m.DstGroup.
func (g *Group) Multicast(m wire.Message) error { return g.stack.Multicast(m) }

// Multicast sends a fault-tolerant protocol message through the total order.
// The message is delivered, in the same order at every processor, to the
// local members of m.DstGroup. The sender needs no membership in the
// destination group (clients invoke server groups this way).
func (s *Stack) Multicast(m wire.Message) error {
	b, err := wire.Marshal(m)
	if err != nil {
		return fmt.Errorf("gcs: multicast: %w", err)
	}
	env := make([]byte, 1+len(b))
	env[0] = envApp
	copy(env[1:], b)
	s.rt.Post(func() { s.stats.Multicasts++ }) // counter is loop-confined
	return s.ord.Broadcast(env)
}

// MulticastCancelable queues m like Multicast but returns a cancel function
// reporting whether the message is guaranteed not to reach the wire — the
// duplicate-suppression primitive used for CCS messages and replica replies.
// Messages with identical headers (the paper's message identifier: source
// group, destination group, connection, sequence number) share a logical
// identity, and a queued message whose identity has already been received
// from another replica is withdrawn automatically before it is sent.
// When safe is true, delivery waits until every processor of the component
// holds the message. Must be called (and cancelled) on the runtime loop.
func (s *Stack) MulticastCancelable(m wire.Message, safe bool) (func() bool, error) {
	b, err := wire.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("gcs: multicast: %w", err)
	}
	env := make([]byte, 1+len(b))
	env[0] = envApp
	copy(env[1:], b)
	s.stats.Multicasts++
	return s.ord.BroadcastCancelable(env, safe, messageIdentity(m.Header)), nil
}

// messageIdentity hashes the paper's message identifier fields (§3.1).
func messageIdentity(h wire.Header) uint64 {
	f := fnv.New64a()
	var buf [21]byte
	buf[0] = byte(h.Type)
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put32(1, uint32(h.SrcGroup))
	put32(5, uint32(h.DstGroup))
	put32(9, uint32(h.Conn))
	for i := 0; i < 8; i++ {
		buf[13+i] = byte(h.Seq >> (56 - 8*i))
	}
	f.Write(buf[:])
	v := f.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

// WatchMessages registers a handler that observes every application message
// in total order, regardless of destination group. The replication
// infrastructure uses this to suppress duplicate replies: a replica watching
// the stream sees another replica's identical reply and withdraws its own.
// Safe to call from any goroutine.
func (s *Stack) WatchMessages(h MessageHandler) {
	s.rt.Post(func() {
		s.msgWatchers = append(s.msgWatchers, h)
	})
}

// WatchViews registers a handler for every group view change, whether or not
// the local processor is a member. Safe to call from any goroutine.
func (s *Stack) WatchViews(h ViewHandler) {
	s.rt.Post(func() {
		s.viewWatchers = append(s.viewWatchers, h)
	})
}

// GroupMembers reports the processors hosting members of group id. Must be
// called on the runtime loop.
func (s *Stack) GroupMembers(id wire.GroupID) []transport.NodeID {
	return s.groupMembers(id)
}

// announceLocal broadcasts this processor's full local group list. It is
// idempotent: receivers replace their record of this processor's groups.
func (s *Stack) announceLocal() {
	gids := make([]wire.GroupID, 0, len(s.groups))
	for id := range s.groups {
		gids = append(gids, id)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	env := make([]byte, 1+4*len(gids))
	env[0] = envAnnounce
	for i, id := range gids {
		putGroupID(env[1+4*i:], id)
	}
	_ = s.ord.Broadcast(env)
}

func putGroupID(b []byte, id wire.GroupID) {
	b[0] = byte(id >> 24)
	b[1] = byte(id >> 16)
	b[2] = byte(id >> 8)
	b[3] = byte(id)
}

func getGroupID(b []byte) wire.GroupID {
	return wire.GroupID(b[0])<<24 | wire.GroupID(b[1])<<16 |
		wire.GroupID(b[2])<<8 | wire.GroupID(b[3])
}

// onOrderView reacts to an ordering-layer membership change: group tables
// are pruned to the new component, local memberships are re-announced (newly
// merged processors have no record of them), and updated group views are
// emitted.
func (s *Stack) onOrderView(v order.View) {
	s.ordView = v
	in := make(map[transport.NodeID]bool, len(v.Members))
	for _, id := range v.Members {
		in[id] = true
	}
	for _, procs := range s.membership {
		for p := range procs {
			if !in[p] {
				delete(procs, p)
			}
		}
	}
	// Local memberships survive the transition unconditionally.
	for id := range s.groups {
		s.noteMember(id, s.me)
	}
	s.announceLocal()
	s.scheduleEmitViews()
}

// scheduleEmitViews posts one deferred emitChangedViews for the current
// instant. Posts run at the same virtual time, after the event that queued
// them, so by the time a Run call returns the views are always emitted.
func (s *Stack) scheduleEmitViews() {
	if s.emitQueued {
		return
	}
	s.emitQueued = true
	s.rt.Post(func() {
		s.emitQueued = false
		s.emitChangedViews()
	})
}

func (s *Stack) noteMember(g wire.GroupID, p transport.NodeID) {
	procs := s.membership[g]
	if procs == nil {
		procs = make(map[transport.NodeID]bool)
		s.membership[g] = procs
	}
	procs[p] = true
}

// onDeliver handles one totally-ordered delivery.
func (s *Stack) onDeliver(d order.Delivery) {
	if len(d.Payload) == 0 {
		return
	}
	body := d.Payload[1:]
	switch d.Payload[0] {
	case envApp:
		m, err := wire.Unmarshal(body)
		if err != nil {
			return
		}
		s.stats.AppDelivered++
		meta := Meta{TotalOrder: d.TotalOrder, ViewID: d.ViewID,
			Seq: d.Seq, Sender: d.Sender}
		for _, w := range s.msgWatchers {
			w(m, meta)
		}
		g, ok := s.groups[m.DstGroup]
		if !ok {
			return
		}
		g.onMsg(m, meta)
	case envAnnounce:
		if len(body)%4 != 0 {
			return
		}
		s.stats.AnnounceDelivered++
		announced := make(map[wire.GroupID]bool, len(body)/4)
		for off := 0; off+4 <= len(body); off += 4 {
			announced[getGroupID(body[off:])] = true
		}
		// Replace the sender's group set.
		for g, procs := range s.membership {
			if procs[d.Sender] && !announced[g] {
				delete(procs, d.Sender)
			}
		}
		for g := range announced {
			s.noteMember(g, d.Sender)
		}
		s.scheduleEmitViews()
	}
}

// emitChangedViews delivers a GroupView for every group whose view content
// changed since the last emission.
func (s *Stack) emitChangedViews() {
	gids := make([]wire.GroupID, 0, len(s.membership))
	for g := range s.membership {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		members := s.groupMembers(gid)
		view := GroupView{Group: gid, Members: members,
			ViewID: s.ordView.ID, Primary: s.ordView.Primary}
		last, seen := s.lastViews[gid]
		if seen && viewsEqual(last, view) {
			continue
		}
		s.lastViews[gid] = view
		s.stats.ViewsEmitted++
		if g, ok := s.groups[gid]; ok && g.onView != nil {
			g.onView(view)
		}
		for _, w := range s.viewWatchers {
			w(view)
		}
	}
}

func (s *Stack) groupMembers(gid wire.GroupID) []transport.NodeID {
	procs := s.membership[gid]
	members := make([]transport.NodeID, 0, len(procs))
	for p := range procs {
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

func viewsEqual(a, b GroupView) bool {
	if a.Group != b.Group || a.ViewID != b.ViewID || a.Primary != b.Primary ||
		len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}
