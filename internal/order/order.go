// Package order defines the total-order multicast contract the consistent
// time service is built on, decoupling the layers above (gcs, core,
// replication) from any particular ordering protocol. The paper's CCS
// protocol (§2, §3) needs exactly three properties from its group
// communication substrate, and the Orderer interface captures them and
// nothing more:
//
//   - Total order: every member of a view delivers the same messages in the
//     same order; Delivery.TotalOrder increases by exactly 1 per delivery at
//     a node, and equal TotalOrder values at different nodes hold equal
//     messages.
//   - View synchrony: membership changes (View) are delivered at the same
//     point in the message stream at every member, before any message of the
//     new configuration, and views carry a primary-component flag so that
//     only a quorum keeps deciding rounds across a partition.
//   - Gap-freedom per sender: messages broadcast by one member are delivered
//     in broadcast order with no gaps, as long as the sender stays in the
//     component.
//
// Three implementations live in this package: an adapter over the Totem
// single ring (internal/totem, the paper's protocol), a leader-sequencer for
// low-latency LAN groups, and a sim-instant orderer that totally orders in
// one simulated step for large simulation campaigns. A table-driven
// conformance suite exercises all three under crash, partition and reorder
// faults.
package order

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/transport"
)

// ViewID identifies one membership configuration: a monotonically increasing
// epoch plus the representative (lowest-id member) that formed it. For the
// Totem orderer the epoch is the ring sequence number; for the leader
// sequencer it is the election epoch.
type ViewID struct {
	Epoch uint64
	Rep   transport.NodeID
}

// String implements fmt.Stringer.
func (v ViewID) String() string { return fmt.Sprintf("view(%d,%v)", v.Epoch, v.Rep) }

// Less orders view identifiers.
func (v ViewID) Less(o ViewID) bool {
	if v.Epoch != o.Epoch {
		return v.Epoch < o.Epoch
	}
	return v.Rep < o.Rep
}

// Delivery is a message handed to the application in total order.
type Delivery struct {
	// TotalOrder increases by exactly 1 for every delivery at this node,
	// across view changes; equal TotalOrder values at different nodes of a
	// component hold equal messages.
	TotalOrder uint64
	// ViewID identifies the configuration the message was ordered in.
	ViewID ViewID
	// Seq is the message's protocol-level sequence number within ViewID
	// (implementation-specific; monotone but not necessarily dense).
	Seq    uint64
	Sender transport.NodeID
	// Payload is owned by the receiver once delivered.
	Payload []byte
}

// View is a membership change handed to the application before any message
// of the new configuration is delivered.
type View struct {
	ID      ViewID
	Members []transport.NodeID
	// Primary reports whether this component satisfies the quorum rule; only
	// primary components may decide new CCS rounds (§2 of the paper).
	Primary bool
}

// Orderer is one processor's endpoint of a total-order multicast protocol.
// All callbacks (Deliver, OnView) run on the configured runtime loop; state
// above the orderer may rely on that serialization.
type Orderer interface {
	// Start begins protocol activity. Safe from any goroutine.
	Start()
	// Stop halts the node: no further callbacks run after the posted stop
	// takes effect, and no timers remain armed. Safe from any goroutine.
	Stop()
	// Broadcast submits payload for totally-ordered delivery to every member
	// of the component (including the sender). Safe from any goroutine.
	Broadcast(payload []byte) error
	// BroadcastCancelable submits payload like Broadcast but returns a cancel
	// function reporting whether the message is guaranteed not to reach the
	// wire — the duplicate-suppression primitive behind CCS messages and
	// replica replies. A queued message whose dupKey (logical identity,
	// 0 = none) has already been seen is withdrawn automatically. When safe
	// is true, delivery additionally waits until every member of the view
	// holds the message. Must be called (and cancelled) on the runtime loop.
	BroadcastCancelable(payload []byte, safe bool, dupKey uint64) func() bool
	// LocalID reports the processor identity of this endpoint.
	LocalID() transport.NodeID
}

// Kind names an orderer implementation.
type Kind string

// Supported orderers.
const (
	// KindTotem is the Totem single-ring protocol (the paper's substrate).
	KindTotem Kind = "totem"
	// KindSeq is the leader-sequencer: the lowest member of the view
	// sequences proposals; an election epoch advances on leader timeout.
	KindSeq Kind = "seq"
	// KindInstant is the sim-instant orderer: a shared in-process hub totally
	// orders every broadcast in one simulated step. Simulation only.
	KindInstant Kind = "instant"
)

// ParseKind parses a user-supplied orderer name.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindTotem, KindSeq, KindInstant:
		return Kind(s), nil
	case "":
		return KindTotem, nil
	default:
		return "", fmt.Errorf("order: unknown orderer %q (want totem, seq or instant)", s)
	}
}

// Env is the wiring an orderer runs in, supplied by the layer above (gcs).
// It is deliberately separate from Options: Env fields are owned by the
// stack and never user-tunable, closing the old config hole where embedded
// protocol configs carried documented-as-ignored wiring fields.
type Env struct {
	// Runtime is the event loop the node runs on. Required.
	Runtime sim.Runtime
	// Transport carries the node's datagrams and supplies its identity.
	// Required. (The instant orderer moves messages through its in-process
	// hub and uses the transport only for LocalID.)
	Transport transport.Transport
	// Members is the initial membership, including the local node.
	Members []transport.NodeID
	// Bootstrap, when true, forms the initial configuration from Members
	// directly; when false the node joins whatever configuration its peers
	// have formed.
	Bootstrap bool
	// Deliver receives totally-ordered messages. Required.
	Deliver func(Delivery)
	// OnView receives membership changes. Optional.
	OnView func(View)
	// Obs receives per-orderer trace events and registers the node's
	// counters. Optional.
	Obs *obs.Recorder
}

func (e Env) validate(Kind) error {
	if e.Runtime == nil {
		return errors.New("order: Env.Runtime is required")
	}
	if e.Deliver == nil {
		return errors.New("order: Env.Deliver is required")
	}
	if e.Transport == nil {
		return errors.New("order: Env.Transport is required")
	}
	return nil
}

// TotemTuning is the protocol tuning of the Totem orderer. Zero values take
// the totem package defaults (calibrated for the simulated 100 Mb/s testbed).
type TotemTuning struct {
	TokenLossTimeout    time.Duration `json:"token_loss_timeout_ns,omitempty"`
	TokenRetransTimeout time.Duration `json:"token_retrans_timeout_ns,omitempty"`
	JoinTimeout         time.Duration `json:"join_timeout_ns,omitempty"`
	CommitTimeout       time.Duration `json:"commit_timeout_ns,omitempty"`
	// AnnounceInterval is how often a ring's representative broadcasts a
	// remerge beacon.
	AnnounceInterval time.Duration `json:"announce_interval_ns,omitempty"`
	// MaxMessagesPerToken bounds broadcasts per token visit (flow control).
	MaxMessagesPerToken int `json:"max_messages_per_token,omitempty"`
}

func (t TotemTuning) isZero() bool { return t == TotemTuning{} }

// SeqTuning is the protocol tuning of the leader-sequencer orderer. Zero
// values take defaults calibrated like the totem ones.
type SeqTuning struct {
	// HeartbeatInterval is how often the leader broadcasts a heartbeat
	// carrying the high and safe sequence numbers.
	HeartbeatInterval time.Duration `json:"heartbeat_interval_ns,omitempty"`
	// LeaderTimeout is how long a follower waits without leader traffic
	// before suspecting the leader and starting an election; the leader
	// applies the same bound to unresponsive followers before reforming the
	// view without them.
	LeaderTimeout time.Duration `json:"leader_timeout_ns,omitempty"`
	// ResendInterval paces proposal retransmission and gap nacks.
	ResendInterval time.Duration `json:"resend_interval_ns,omitempty"`
	// ElectionTimeout is how long a candidate collects election acks before
	// installing the new view.
	ElectionTimeout time.Duration `json:"election_timeout_ns,omitempty"`
}

func (t SeqTuning) isZero() bool { return t == SeqTuning{} }

// InstantTuning configures the sim-instant orderer.
type InstantTuning struct {
	// Hub is the shared in-process ordering point. Every node of the
	// simulated component must be constructed against the same hub and the
	// same runtime. Required for KindInstant.
	Hub *InstantHub
}

func (t InstantTuning) isZero() bool { return t.Hub == nil }

// Options is the public ordering-policy surface: which orderer to run and
// its tuning. The zero value selects Totem with default tuning. Tuning for
// an orderer other than the selected one is a validation error — not a
// silent no-op.
type Options struct {
	// Kind selects the implementation; empty means KindTotem.
	Kind Kind
	// Quorum is the minimum component size that counts as primary.
	// Default: a strict majority of the initial members.
	Quorum int

	// Per-orderer tuning. Only the struct matching Kind may be non-zero.
	Totem   TotemTuning
	Seq     SeqTuning
	Instant InstantTuning
}

// Validate checks o and fills defaults, returning the effective options.
func (o Options) Validate() (Options, error) {
	if o.Kind == "" {
		o.Kind = KindTotem
	}
	switch o.Kind {
	case KindTotem, KindSeq, KindInstant:
	default:
		return o, fmt.Errorf("order: unknown orderer %q (want totem, seq or instant)", o.Kind)
	}
	if o.Quorum < 0 {
		return o, fmt.Errorf("order: Options.Quorum must not be negative (got %d)", o.Quorum)
	}
	if o.Kind != KindTotem && !o.Totem.isZero() {
		return o, fmt.Errorf("order: Totem tuning set but Kind is %q", o.Kind)
	}
	if o.Kind != KindSeq && !o.Seq.isZero() {
		return o, fmt.Errorf("order: Seq tuning set but Kind is %q", o.Kind)
	}
	if o.Kind != KindInstant && !o.Instant.isZero() {
		return o, fmt.Errorf("order: Instant tuning set but Kind is %q", o.Kind)
	}
	if o.Kind == KindInstant && o.Instant.Hub == nil {
		return o, errors.New("order: the instant orderer requires Options.Instant.Hub")
	}
	return o, nil
}

// New creates an orderer of the selected kind. The node is passive until
// Start is called.
func New(env Env, opts Options) (Orderer, error) {
	opts, err := opts.Validate()
	if err != nil {
		return nil, err
	}
	if err := env.validate(opts.Kind); err != nil {
		return nil, err
	}
	switch opts.Kind {
	case KindTotem:
		return newTotemOrderer(env, opts)
	case KindSeq:
		return newSeqOrderer(env, opts)
	case KindInstant:
		return newInstantOrderer(env, opts)
	default:
		return nil, fmt.Errorf("order: unknown orderer %q", opts.Kind)
	}
}

// quorumOrDefault resolves the primary-component threshold.
func quorumOrDefault(q, members int) int {
	if q > 0 {
		return q
	}
	return members/2 + 1
}
