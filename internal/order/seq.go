package order

import (
	"sort"
	"time"

	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/transport"
)

// Leader-sequencer defaults, calibrated like the totem ones for the
// simulated 100 Mb/s testbed. Real networks should raise them via SeqTuning.
const (
	defaultSeqHeartbeat = 2 * time.Millisecond
	defaultSeqLeaderTO  = 10 * time.Millisecond
	defaultSeqResend    = 2 * time.Millisecond
	defaultSeqElection  = 4 * time.Millisecond
	seqMaxNack          = 64
	seqMaxSeenKeys      = 1 << 17
)

// seqState is the coarse protocol state of a sequencer node.
type seqState int

const (
	seqIdle seqState = iota
	seqOperational
	seqElecting
	seqStopped
)

// seqStats are cumulative counters, exported through obs.
type seqStats struct {
	Proposals  uint64 // proposals submitted locally
	Suppressed uint64 // proposals withdrawn by duplicate suppression
	Ordered    uint64 // entries this node sequenced as leader
	Delivered  uint64
	Resends    uint64 // proposal retransmissions
	Retrans    uint64 // entry retransmissions served as leader
	Nacks      uint64 // gap nacks sent
	Heartbeats uint64 // heartbeats broadcast as leader
	Elections  uint64 // elections this node initiated or joined
	Views      uint64 // views installed
}

// seqPending is one locally-submitted proposal awaiting ordering.
type seqPending struct {
	local     uint64 // current per-epoch local id; relabelled at view change
	safe      bool
	dupKey    uint64
	payload   []byte
	sent      bool // reached the wire (or the local ordering path)
	cancelled bool
}

// seqNode implements the leader-sequencer orderer: the lowest-id member of
// the current view sequences all proposals and broadcasts them as ordered
// entries; followers deliver entries in contiguous sequence order. The
// leader's periodic heartbeat carries the safe point (the prefix every
// member holds) and doubles as the failure-detection and discovery beacon.
// Leader failure, member failure and partition heal all funnel through one
// election protocol: a candidate collects the members' retained entries,
// merges them, and installs a new view under a higher epoch; the view is
// primary iff it meets the quorum, and only primary views order new
// proposals, so any two primary views intersect and the ordered history
// stays consistent.
//
// All state is confined to the runtime loop (the transport invokes the
// receiver there, and public methods post).
type seqNode struct {
	env Env
	tun SeqTuning
	rt  sim.Runtime
	tr  transport.Transport
	me  transport.NodeID

	universe []transport.NodeID // initial membership (quorum base)
	quorum   int

	state    seqState
	view     View // current view (ID, Members, Primary)
	epoch    uint64
	leader   transport.NodeID
	maxEpoch uint64 // highest epoch seen anywhere

	// Ordered-entry state. received retains entries with seq in
	// (prunedTo, ...]; entries at or below the safe point are pruned (every
	// member holds them, so no retransmission or election merge needs them).
	received    map[uint64]*seqEntry
	myAru       uint64 // contiguous prefix received
	delivered   uint64
	highSeq     uint64 // highest seq seen (== last sequenced when leader)
	safePoint   uint64
	prunedTo    uint64
	totalOrder  uint64
	safeWaitSeq uint64
	seenKeys    map[uint64]bool // dupKeys of entries seen, for suppression

	// Leader state.
	nextLocal map[transport.NodeID]uint64                 // next expected Local per sender (this epoch)
	heldProps map[transport.NodeID]map[uint64]*seqPropose // out-of-order proposals
	arus      map[transport.NodeID]uint64
	lastHeard map[transport.NodeID]time.Duration

	// Proposer state.
	localSeq       uint64 // last local id assigned (this epoch)
	pend           []*seqPending
	flushQueued    bool
	lastLeaderSeen time.Duration

	// Election state (valid while state == seqElecting).
	elEpoch uint64
	elCand  transport.NodeID
	elAcks  map[transport.NodeID]*seqElectAck

	hbTimer     sim.Canceler
	lossTimer   sim.Canceler
	resendTimer sim.Canceler
	electTimer  sim.Canceler
	retryTimer  sim.Canceler
	rejoinTimer sim.Canceler
	// timerEpoch is bumped when all timers are cancelled; a callback armed
	// under an older epoch drops itself when it fires, so no timer can act
	// or re-arm after Stop (same discipline as the totem node).
	timerEpoch uint64

	stats seqStats
	obs   *obs.Recorder
}

func newSeqOrderer(env Env, opts Options) (Orderer, error) {
	t := opts.Seq
	t.HeartbeatInterval = defaultDur(t.HeartbeatInterval, defaultSeqHeartbeat)
	t.LeaderTimeout = defaultDur(t.LeaderTimeout, defaultSeqLeaderTO)
	t.ResendInterval = defaultDur(t.ResendInterval, defaultSeqResend)
	t.ElectionTimeout = defaultDur(t.ElectionTimeout, defaultSeqElection)
	me := env.Transport.LocalID()
	universe := append([]transport.NodeID(nil), env.Members...)
	sort.Slice(universe, func(i, j int) bool { return universe[i] < universe[j] })
	if len(universe) == 0 {
		universe = []transport.NodeID{me}
	}
	n := &seqNode{
		env:      env,
		tun:      t,
		rt:       env.Runtime,
		tr:       env.Transport,
		me:       me,
		universe: universe,
		quorum:   quorumOrDefault(opts.Quorum, len(universe)),
		received: make(map[uint64]*seqEntry),
		seenKeys: make(map[uint64]bool),
		obs:      env.Obs,
	}
	env.Transport.SetReceiver(n.receive)
	env.Obs.Register(n)
	return n, nil
}

func defaultDur(v, def time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return def
}

// Start begins protocol activity. With Bootstrap the initial view is formed
// from the configured members directly; otherwise the node elects its way
// into whatever component its peers have formed.
func (n *seqNode) Start() {
	n.rt.Post(func() {
		if n.state != seqIdle {
			return
		}
		if n.env.Bootstrap {
			n.installView(View{
				ID:      ViewID{Epoch: 1, Rep: n.universe[0]},
				Members: append([]transport.NodeID(nil), n.universe...),
			})
			return
		}
		n.startElection(n.maxEpoch + 1)
	})
}

// Stop halts the node.
func (n *seqNode) Stop() {
	n.rt.Post(func() {
		n.state = seqStopped
		n.cancelAllTimers()
	})
}

// LocalID implements Orderer.
func (n *seqNode) LocalID() transport.NodeID { return n.me }

// Broadcast implements Orderer. Safe from any goroutine.
func (n *seqNode) Broadcast(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.rt.Post(func() {
		if n.state == seqStopped {
			return
		}
		n.submit(&seqPending{payload: cp})
		n.flushPending()
	})
	return nil
}

// BroadcastCancelable implements Orderer. Loop-only. The proposal is flushed
// to the wire by a posted step, so a cancellation arriving within the same
// loop instant (the duplicate-suppression window) withdraws it before it is
// sent; after that the leader's dupKey check suppresses redundant ordering.
func (n *seqNode) BroadcastCancelable(payload []byte, safe bool, dupKey uint64) func() bool {
	if n.state == seqStopped {
		return func() bool { return false }
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	p := &seqPending{payload: cp, safe: safe, dupKey: dupKey}
	n.submit(p)
	if !n.flushQueued {
		n.flushQueued = true
		n.rt.Post(func() {
			n.flushQueued = false
			n.flushPending()
		})
	}
	return func() bool {
		if p.sent {
			return false
		}
		p.cancelled = true
		return true
	}
}

func (n *seqNode) submit(p *seqPending) {
	n.localSeq++
	p.local = n.localSeq
	n.pend = append(n.pend, p)
	n.stats.Proposals++
}

// flushPending pushes queued proposals toward the current leader. Proposals
// stay queued (still cancellable) while the node has no primary view.
func (n *seqNode) flushPending() {
	if n.state != seqOperational || !n.view.Primary {
		n.sweepPending()
		return
	}
	n.suppressSeenPending()
	for _, p := range n.pend {
		if !p.sent {
			n.sendPropose(p, false)
		}
	}
}

// sendPropose transmits one proposal to the leader (or orders it directly
// when this node is the leader).
func (n *seqNode) sendPropose(p *seqPending, resend bool) {
	m := &seqPropose{
		View:    n.view.ID,
		Sender:  n.me,
		Local:   p.local,
		Safe:    p.safe,
		DupKey:  p.dupKey,
		Payload: p.payload,
	}
	p.sent = true
	if resend {
		n.stats.Resends++
	}
	if n.leader == n.me {
		n.onPropose(m)
		return
	}
	_ = n.tr.Send(n.leader, encodePropose(m))
}

// suppressSeenPending retires queued proposals whose dupKey has already been
// ordered somewhere: the leader's duplicate check guarantees they can never
// be ordered, so resending them is pure waste — and after a view change a
// stale one would occupy a dense local number and wedge the per-sender
// gap-freedom chain at the new leader.
func (n *seqNode) suppressSeenPending() {
	for _, p := range n.pend {
		if !p.cancelled && p.dupKey != 0 && n.seenKeys[p.dupKey] {
			p.cancelled = true
			n.stats.Suppressed++
		}
	}
	n.sweepPending()
}

// sweepPending drops cancelled proposals.
func (n *seqNode) sweepPending() {
	out := n.pend[:0]
	for _, p := range n.pend {
		if !p.cancelled {
			out = append(out, p)
		}
	}
	for i := len(out); i < len(n.pend); i++ {
		n.pend[i] = nil
	}
	n.pend = out
}

// receive dispatches one inbound datagram. The transport invokes it on the
// runtime loop.
func (n *seqNode) receive(from transport.NodeID, payload []byte) {
	if n.state == seqStopped || n.state == seqIdle || len(payload) == 0 {
		return
	}
	body := payload[1:]
	switch payload[0] {
	case seqTagPropose:
		if m, err := decodePropose(body); err == nil {
			n.noteHeard(from)
			n.onPropose(m)
		}
	case seqTagOrdered:
		if m, err := decodeOrdered(body); err == nil {
			n.onOrdered(m)
		}
	case seqTagHeart:
		if m, err := decodeHeartbeat(body); err == nil {
			n.onHeartbeat(m)
		}
	case seqTagAck:
		if m, err := decodeAck(body); err == nil {
			n.noteHeard(from)
			n.onAck(m)
		}
	case seqTagNack:
		if m, err := decodeNack(body); err == nil {
			n.noteHeard(from)
			n.onNack(m)
		}
	case seqTagElect:
		if m, err := decodeElect(body); err == nil {
			n.onElect(m)
		}
	case seqTagElectAck:
		if m, err := decodeElectAck(body); err == nil {
			n.onElectAck(m)
		}
	case seqTagInstall:
		if m, err := decodeInstall(body); err == nil {
			n.onInstall(m)
		}
	}
}

func (n *seqNode) noteHeard(from transport.NodeID) {
	if n.lastHeard != nil {
		if _, ok := n.lastHeard[from]; ok {
			n.lastHeard[from] = n.rt.Now()
		}
	}
}

// ---- leader: ordering ----

// onPropose sequences a proposal. Only the leader of a primary view orders;
// everyone else drops (the proposer's resend loop retries against the view
// that eventually forms).
func (n *seqNode) onPropose(p *seqPropose) {
	if n.state != seqOperational || n.leader != n.me || !n.view.Primary {
		return
	}
	if p.View != n.view.ID {
		return // stale proposal from a previous configuration
	}
	next := n.nextLocal[p.Sender]
	if next == 0 {
		next = 1
	}
	if p.Local < next {
		return // duplicate of an already-ordered proposal
	}
	if p.Local > next {
		held := n.heldProps[p.Sender]
		if held == nil {
			held = make(map[uint64]*seqPropose)
			n.heldProps[p.Sender] = held
		}
		held[p.Local] = p
		return
	}
	n.orderProposal(p)
	// Drain any held successors that are now in order.
	for {
		held := n.heldProps[p.Sender]
		q := held[n.nextLocal[p.Sender]]
		if q == nil {
			return
		}
		delete(held, q.Local)
		n.orderProposal(q)
	}
}

func (n *seqNode) orderProposal(p *seqPropose) {
	n.nextLocal[p.Sender] = p.Local + 1
	if p.DupKey != 0 && n.seenKeys[p.DupKey] {
		n.stats.Suppressed++
		return
	}
	n.highSeq++
	e := &seqEntry{
		View:    n.view.ID,
		Seq:     n.highSeq,
		Sender:  p.Sender,
		Local:   p.Local,
		Safe:    p.Safe,
		DupKey:  p.DupKey,
		Payload: p.Payload,
	}
	n.stats.Ordered++
	n.noteSeen(e.DupKey)
	n.received[e.Seq] = e
	n.clearPendingFor(e)
	_ = n.tr.Broadcast(encodeOrdered(e))
	n.recomputeSafe()
}

// recomputeSafe advances the leader's safe point — the prefix every view
// member holds (its own aru and every follower's acked aru) — then runs
// delivery and pruning against it.
func (n *seqNode) recomputeSafe() {
	n.updateAru()
	sp := n.myAru
	for _, m := range n.view.Members {
		if m == n.me {
			continue
		}
		if a := n.arus[m]; a < sp {
			sp = a
		}
	}
	if sp > n.safePoint {
		n.safePoint = sp
		// Push the new safe point immediately; safe-mode latency tracks
		// this broadcast rather than the next periodic heartbeat.
		n.broadcastHeartbeat()
	}
	n.tryDeliver()
	n.prune()
}

func (n *seqNode) broadcastHeartbeat() {
	n.stats.Heartbeats++
	_ = n.tr.Broadcast(encodeHeartbeat(&seqHeartbeat{
		View: n.view.ID, HighSeq: n.highSeq, SafePoint: n.safePoint,
	}))
}

// ---- follower: entries, heartbeats ----

func (n *seqNode) onOrdered(e *seqEntry) {
	if n.state != seqOperational {
		return
	}
	if e.View != n.view.ID {
		n.noteEpoch(e.View.Epoch)
		if n.view.ID.Less(e.View) {
			n.scheduleRejoin(e.View)
		}
		return
	}
	n.lastLeaderSeen = n.rt.Now()
	if e.Seq <= n.prunedTo || n.received[e.Seq] != nil {
		return
	}
	n.received[e.Seq] = e
	if e.Seq > n.highSeq {
		n.highSeq = e.Seq
	}
	n.noteSeen(e.DupKey)
	n.clearPendingFor(e)
	prev := n.myAru
	n.tryDeliver()
	// Ack eagerly when the contiguous prefix grows, rather than waiting for
	// the next heartbeat: the leader's safe point — and with it safe-mode
	// delivery latency — tracks these acks.
	if n.leader != n.me && n.myAru > prev {
		_ = n.tr.Send(n.leader, encodeAck(&seqAck{View: n.view.ID, From: n.me, Aru: n.myAru}))
	}
}

func (n *seqNode) onHeartbeat(hb *seqHeartbeat) {
	if n.state != seqOperational {
		if n.state == seqElecting {
			n.noteEpoch(hb.View.Epoch)
		}
		return
	}
	if hb.View != n.view.ID {
		n.noteEpoch(hb.View.Epoch)
		if n.view.ID.Less(hb.View) {
			n.scheduleRejoin(hb.View)
		}
		return
	}
	n.lastLeaderSeen = n.rt.Now()
	if hb.HighSeq > n.highSeq {
		n.highSeq = hb.HighSeq
	}
	if hb.SafePoint > n.safePoint {
		n.safePoint = hb.SafePoint
		n.tryDeliver()
		n.prune()
	}
	if n.leader != n.me {
		_ = n.tr.Send(n.leader, encodeAck(&seqAck{View: n.view.ID, From: n.me, Aru: n.myAru}))
		n.sendGapNack()
	}
}

// sendGapNack requests the missing sequence numbers below the known high
// water mark, bounded per datagram.
func (n *seqNode) sendGapNack() {
	if n.myAru >= n.highSeq {
		return
	}
	missing := make([]uint64, 0, seqMaxNack)
	for s := n.myAru + 1; s <= n.highSeq && len(missing) < seqMaxNack; s++ {
		if n.received[s] == nil {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return
	}
	n.stats.Nacks++
	_ = n.tr.Send(n.leader, encodeNack(&seqNack{View: n.view.ID, From: n.me, Missing: missing}))
}

func (n *seqNode) onAck(a *seqAck) {
	if n.state != seqOperational || n.leader != n.me || a.View != n.view.ID {
		return
	}
	if a.Aru > n.arus[a.From] {
		n.arus[a.From] = a.Aru
		n.recomputeSafe()
	}
}

func (n *seqNode) onNack(m *seqNack) {
	if n.state != seqOperational || n.leader != n.me || m.View != n.view.ID {
		return
	}
	for _, s := range m.Missing {
		if e := n.received[s]; e != nil {
			n.stats.Retrans++
			_ = n.tr.Send(m.From, encodeOrdered(e))
		}
	}
}

// ---- delivery ----

func (n *seqNode) updateAru() {
	for n.received[n.myAru+1] != nil {
		n.myAru++
	}
}

// tryDeliver delivers the contiguous prefix, holding safe entries until the
// safe point covers them. Delivered entries are retained until pruned at the
// safe point, so the leader can serve retransmissions and elections can
// merge complete histories.
func (n *seqNode) tryDeliver() {
	n.updateAru()
	for n.delivered < n.myAru {
		s := n.delivered + 1
		e := n.received[s]
		if e.Safe && s > n.safePoint {
			if n.safeWaitSeq != s {
				n.safeWaitSeq = s
				n.obs.Trace(obs.ScopeSeq, obs.EvSafeWait, 0, s, 0, "")
			}
			return
		}
		if e.Safe && n.safeWaitSeq == s {
			n.obs.Trace(obs.ScopeSeq, obs.EvSafeDelivered, 0, s, 0, "")
			n.safeWaitSeq = 0
		}
		n.delivered = s
		n.deliverEntry(e)
	}
}

func (n *seqNode) deliverEntry(e *seqEntry) {
	n.totalOrder++
	n.stats.Delivered++
	n.env.Deliver(Delivery{
		TotalOrder: n.totalOrder,
		ViewID:     e.View,
		Seq:        e.Seq,
		Sender:     e.Sender,
		Payload:    e.Payload,
	})
}

// prune discards retained entries the whole view holds.
func (n *seqNode) prune() {
	limit := n.safePoint
	if limit > n.delivered {
		limit = n.delivered
	}
	for n.prunedTo < limit {
		n.prunedTo++
		delete(n.received, n.prunedTo)
	}
}

func (n *seqNode) noteSeen(dupKey uint64) {
	if dupKey == 0 {
		return
	}
	if len(n.seenKeys) > seqMaxSeenKeys {
		n.seenKeys = make(map[uint64]bool)
	}
	n.seenKeys[dupKey] = true
}

// clearPendingFor retires the local proposal matched by an ordered entry.
func (n *seqNode) clearPendingFor(e *seqEntry) {
	if e.Sender != n.me {
		return
	}
	for _, p := range n.pend {
		if p.local == e.Local && !p.cancelled {
			p.cancelled = true // retired; swept lazily
			return
		}
	}
}

// ---- elections ----

// startElection makes this node the candidate for a fresh epoch.
func (n *seqNode) startElection(epoch uint64) {
	if n.state == seqStopped {
		return
	}
	if epoch <= n.epoch {
		epoch = n.epoch + 1
	}
	if epoch <= n.maxEpoch {
		epoch = n.maxEpoch + 1
	}
	n.maxEpoch = epoch
	n.state = seqElecting
	n.elEpoch = epoch
	n.elCand = n.me
	n.elAcks = map[transport.NodeID]*seqElectAck{n.me: n.myElectAck(epoch)}
	n.stats.Elections++
	_ = n.tr.Broadcast(encodeElect(&seqElect{Epoch: epoch, Cand: n.me}))
	n.armElectTimer(n.tun.ElectionTimeout, func() {
		if n.state == seqElecting && n.elCand == n.me && n.elEpoch == epoch {
			n.installFromAcks()
		}
	})
}

// myElectAck snapshots this node's retained history for a candidate.
func (n *seqNode) myElectAck(epoch uint64) *seqElectAck {
	seqs := make([]uint64, 0, len(n.received))
	for s := range n.received {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	entries := make([]seqEntry, 0, len(seqs))
	for _, s := range seqs {
		entries = append(entries, *n.received[s])
	}
	return &seqElectAck{
		Epoch:     epoch,
		From:      n.me,
		View:      n.view.ID,
		Delivered: n.delivered,
		Entries:   entries,
	}
}

func (n *seqNode) noteEpoch(e uint64) {
	if e > n.maxEpoch {
		n.maxEpoch = e
	}
}

func (n *seqNode) onElect(m *seqElect) {
	n.noteEpoch(m.Epoch)
	if m.Epoch <= n.epoch {
		return // stale: the sender will learn our epoch from heartbeats
	}
	if n.state == seqElecting {
		if m.Epoch < n.elEpoch {
			return
		}
		if m.Epoch == n.elEpoch {
			if m.Cand == n.elCand && n.elCand != n.me {
				// Duplicate elect: the candidate may have lost our ack.
				_ = n.tr.Send(m.Cand, encodeElectAck(n.myElectAck(m.Epoch)))
				return
			}
			if m.Cand >= n.elCand {
				return // our candidate wins the tie (lower id)
			}
		}
	}
	// Join the election.
	n.state = seqElecting
	n.elEpoch = m.Epoch
	n.elCand = m.Cand
	n.elAcks = nil
	n.stats.Elections++
	_ = n.tr.Send(m.Cand, encodeElectAck(n.myElectAck(m.Epoch)))
	epoch := m.Epoch
	n.armElectTimer(2*n.tun.ElectionTimeout, func() {
		// The candidate died or its install was lost; elect for ourselves.
		if n.state == seqElecting && n.elEpoch == epoch {
			n.startElection(n.maxEpoch + 1)
		}
	})
}

func (n *seqNode) onElectAck(a *seqElectAck) {
	n.noteEpoch(a.Epoch)
	if n.state != seqElecting || n.elCand != n.me || a.Epoch != n.elEpoch {
		return
	}
	n.elAcks[a.From] = a
	// No early install on an ack count: the static universe undercounts the
	// live set after a join (existing members don't know the newcomer), and
	// installing at "universe acks collected" would cut whichever live node
	// acked last — each cut node then rejoins with a fresh election, cutting
	// someone else, and the views churn forever. The full ElectionTimeout
	// window collects every reachable node.
}

// installFromAcks merges the responders' histories and installs the new
// view. The merged suffix starts above the least delivered prefix among the
// responders; conflicting entries (same seq ordered in different old views)
// resolve toward the higher view, which extends the longer primary chain.
func (n *seqNode) installFromAcks() {
	members := make([]transport.NodeID, 0, len(n.elAcks))
	for id := range n.elAcks {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	base := n.elAcks[members[0]].Delivered
	high := uint64(0)
	for _, id := range members {
		a := n.elAcks[id]
		if a.Delivered < base {
			base = a.Delivered
		}
		if a.Delivered > high {
			high = a.Delivered
		}
	}
	merged := make(map[uint64]*seqEntry)
	for _, id := range members {
		a := n.elAcks[id]
		for i := range a.Entries {
			e := &a.Entries[i]
			if e.Seq <= base {
				continue
			}
			if prev := merged[e.Seq]; prev == nil || prev.View.Less(e.View) {
				merged[e.Seq] = e
			}
			if e.Seq > high {
				high = e.Seq
			}
		}
	}
	seqs := make([]uint64, 0, len(merged))
	for s := range merged {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	entries := make([]seqEntry, 0, len(seqs))
	for _, s := range seqs {
		entries = append(entries, *merged[s])
	}

	inst := &seqInstall{
		Epoch:   n.elEpoch,
		View:    ViewID{Epoch: n.elEpoch, Rep: members[0]},
		Members: members,
		HighSeq: high,
		Entries: entries,
	}
	_ = n.tr.Broadcast(encodeInstall(inst))
	n.applyInstall(inst)
}

func (n *seqNode) onInstall(m *seqInstall) {
	n.noteEpoch(m.Epoch)
	n.applyInstall(m)
}

// applyInstall adopts an installed view: delivers the merged suffix of the
// old configurations, then switches to the new membership. Entries absent
// from the merge (held only by processors outside the new view) are skipped,
// exactly the agreed-delivery guarantee: recovery extends only to what the
// surviving members hold.
func (n *seqNode) applyInstall(m *seqInstall) {
	if n.state == seqStopped || !n.view.ID.Less(m.View) {
		return
	}
	member := false
	for _, id := range m.Members {
		if id == n.me {
			member = true
			break
		}
	}
	if !member {
		// A view formed without us (we were unreachable); rejoin it.
		n.scheduleRejoin(m.View)
		return
	}
	// Deliver the merged history before emitting the new view.
	for i := range m.Entries {
		e := m.Entries[i]
		if e.Seq <= n.delivered {
			continue
		}
		if n.safeWaitSeq != 0 {
			n.obs.Trace(obs.ScopeSeq, obs.EvSafeDelivered, 0, n.safeWaitSeq, 0, "install")
			n.safeWaitSeq = 0
		}
		n.delivered = e.Seq // skips seqs lost by every surviving member
		n.deliverEntry(&e)
		n.clearPendingFor(&e)
	}
	if m.HighSeq > n.delivered {
		n.delivered = m.HighSeq
	}
	n.myAru = n.delivered
	n.highSeq = n.delivered
	n.safePoint = n.delivered
	n.prunedTo = n.delivered
	n.received = make(map[uint64]*seqEntry)
	n.installView(View{ID: m.View, Members: m.Members})
}

// installView switches to a new configuration and restarts the per-view
// machinery: local proposal numbering, leader tables, timers.
func (n *seqNode) installView(v View) {
	v.Primary = len(v.Members) >= n.quorum
	n.view = v
	n.epoch = v.ID.Epoch
	n.noteEpoch(v.ID.Epoch)
	n.leader = v.Members[0]
	n.state = seqOperational
	n.stats.Views++

	now := n.rt.Now()
	n.lastLeaderSeen = now
	n.arus = make(map[transport.NodeID]uint64)
	n.lastHeard = make(map[transport.NodeID]time.Duration, len(v.Members))
	for _, m := range v.Members {
		if m != n.me {
			n.lastHeard[m] = now
		}
	}
	n.nextLocal = make(map[transport.NodeID]uint64)
	n.heldProps = make(map[transport.NodeID]map[uint64]*seqPropose)

	// Relabel surviving proposals densely under the new epoch and resend.
	// Proposals whose dupKey has been seen are retired first — a hole in the
	// dense numbering would wedge the new leader's per-sender chain.
	n.suppressSeenPending()
	n.localSeq = 0
	for _, p := range n.pend {
		n.localSeq++
		p.local = n.localSeq
		p.sent = false
	}

	n.cancelAllTimers()
	if n.env.OnView != nil {
		n.env.OnView(View{
			ID:      v.ID,
			Members: append([]transport.NodeID(nil), v.Members...),
			Primary: v.Primary,
		})
	}
	if n.leader == n.me {
		n.armHeartbeat()
	} else {
		n.armLossTimer()
	}
	n.armResendTimer()
	if !v.Primary {
		// A non-primary component keeps retrying elections; the retry
		// broadcast doubles as the remerge beacon after a partition heals.
		n.armRetryTimer()
	}
	n.flushPending()
}

// scheduleRejoin elects into a component whose view is ahead of ours, after
// a short delay that lets an in-flight install win the race.
func (n *seqNode) scheduleRejoin(target ViewID) {
	if n.rejoinTimer != nil {
		return
	}
	n.rejoinTimer = n.afterGuarded(n.tun.ResendInterval, func() {
		n.rejoinTimer = nil
		if n.view.ID.Less(target) && n.state != seqStopped {
			n.startElection(n.maxEpoch + 1)
		}
	})
}

// ---- timers ----

func (n *seqNode) armHeartbeat() {
	n.cancelTimer(&n.hbTimer)
	n.hbTimer = n.afterGuarded(n.tun.HeartbeatInterval, func() {
		if n.state != seqOperational || n.leader != n.me {
			return
		}
		n.broadcastHeartbeat()
		// Reform the view without followers that stopped acking; a wedged
		// follower would otherwise stall the safe point forever.
		now := n.rt.Now()
		stale := false
		for _, m := range n.view.Members {
			if m != n.me && now-n.lastHeard[m] > n.tun.LeaderTimeout {
				stale = true
				break
			}
		}
		if stale {
			n.startElection(n.maxEpoch + 1)
			return
		}
		n.armHeartbeat()
	})
}

func (n *seqNode) armLossTimer() {
	n.cancelTimer(&n.lossTimer)
	n.lossTimer = n.afterGuarded(n.tun.LeaderTimeout/2, func() {
		if n.state != seqOperational || n.leader == n.me {
			return
		}
		if n.rt.Now()-n.lastLeaderSeen > n.tun.LeaderTimeout {
			n.startElection(n.maxEpoch + 1)
			return
		}
		n.armLossTimer()
	})
}

func (n *seqNode) armResendTimer() {
	n.cancelTimer(&n.resendTimer)
	n.resendTimer = n.afterGuarded(n.tun.ResendInterval, func() {
		if n.state != seqOperational {
			return
		}
		if n.view.Primary {
			n.suppressSeenPending()
			for _, p := range n.pend {
				n.sendPropose(p, p.sent)
			}
		}
		if n.leader != n.me {
			n.sendGapNack()
		}
		n.armResendTimer()
	})
}

func (n *seqNode) armRetryTimer() {
	n.cancelTimer(&n.retryTimer)
	n.retryTimer = n.afterGuarded(n.tun.LeaderTimeout, func() {
		if n.state == seqOperational && !n.view.Primary {
			n.startElection(n.maxEpoch + 1)
		}
	})
}

func (n *seqNode) armElectTimer(d time.Duration, fn func()) {
	n.cancelTimer(&n.electTimer)
	n.electTimer = n.afterGuarded(d, fn)
}

func (n *seqNode) cancelTimer(t *sim.Canceler) {
	if *t != nil {
		(*t).Cancel()
		*t = nil
	}
}

func (n *seqNode) cancelAllTimers() {
	n.timerEpoch++
	n.cancelTimer(&n.hbTimer)
	n.cancelTimer(&n.lossTimer)
	n.cancelTimer(&n.resendTimer)
	n.cancelTimer(&n.electTimer)
	n.cancelTimer(&n.retryTimer)
	n.cancelTimer(&n.rejoinTimer)
}

func (n *seqNode) afterGuarded(d time.Duration, fn func()) sim.Canceler {
	epoch := n.timerEpoch
	return n.rt.After(d, func() {
		if n.state == seqStopped || n.timerEpoch != epoch {
			return
		}
		fn()
	})
}

// ---- obs ----

// ObsNode implements obs.Source.
func (n *seqNode) ObsNode() uint32 { return uint32(n.me) }

// ObsSamples implements obs.Source under the canonical seq.* names.
// Loop-only.
func (n *seqNode) ObsSamples() []obs.Sample {
	id := uint32(n.me)
	return []obs.Sample{
		{Node: id, Name: "seq.proposals", Value: n.stats.Proposals},
		{Node: id, Name: "seq.suppressed", Value: n.stats.Suppressed},
		{Node: id, Name: "seq.ordered", Value: n.stats.Ordered},
		{Node: id, Name: "seq.delivered", Value: n.stats.Delivered},
		{Node: id, Name: "seq.resends", Value: n.stats.Resends},
		{Node: id, Name: "seq.retransmissions", Value: n.stats.Retrans},
		{Node: id, Name: "seq.nacks", Value: n.stats.Nacks},
		{Node: id, Name: "seq.heartbeats", Value: n.stats.Heartbeats},
		{Node: id, Name: "seq.elections", Value: n.stats.Elections},
		{Node: id, Name: "seq.views_installed", Value: n.stats.Views},
	}
}
