package order

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

// The conformance suite runs every orderer implementation through the same
// table of scenarios and asserts the contract properties the layers above
// rely on: total-order agreement, gap-freedom per sender, primary-component
// view agreement, duplicate suppression and determinism, under crash,
// partition and reorder faults. The sim-instant orderer has no network
// underneath, so the partition and loss scenarios skip it.

// confKinds are the implementations under test.
var confKinds = []Kind{KindTotem, KindSeq, KindInstant}

// confHarness drives one cluster of orderers of a single kind on a simulated
// network (totem, seq) or a shared hub (instant).
type confHarness struct {
	t    *testing.T
	kind Kind
	k    *sim.Kernel
	net  *simnet.Network
	hub  *InstantHub

	nodes      map[transport.NodeID]Orderer
	deliveries map[transport.NodeID][]Delivery
	views      map[transport.NodeID][]View
}

func newConfHarness(t *testing.T, kind Kind, seed int64, latency simnet.LatencyModel) *confHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	h := &confHarness{
		t:          t,
		kind:       kind,
		k:          k,
		net:        simnet.NewNetwork(k, latency),
		nodes:      make(map[transport.NodeID]Orderer),
		deliveries: make(map[transport.NodeID][]Delivery),
		views:      make(map[transport.NodeID][]View),
	}
	if kind == KindInstant {
		h.hub = NewInstantHub()
	}
	return h
}

func (h *confHarness) addNode(id transport.NodeID, members []transport.NodeID, bootstrap bool) Orderer {
	h.t.Helper()
	opts := Options{Kind: h.kind}
	if h.kind == KindInstant {
		opts.Instant = InstantTuning{Hub: h.hub}
	}
	o, err := New(Env{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   members,
		Bootstrap: bootstrap,
		Deliver: func(d Delivery) {
			h.deliveries[id] = append(h.deliveries[id], d)
		},
		OnView: func(v View) {
			h.views[id] = append(h.views[id], v)
		},
	}, opts)
	if err != nil {
		h.t.Fatalf("New(%v, %v): %v", h.kind, id, err)
	}
	h.nodes[id] = o
	return o
}

// ids returns the node identities in sorted order, so that start/stop
// sequences are deterministic across runs (map iteration order is not).
func (h *confHarness) ids() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(h.nodes))
	for id := range h.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h *confHarness) startAll() {
	for _, id := range h.ids() {
		h.nodes[id].Start()
	}
	h.k.RunFor(0)
}

func (h *confHarness) stopAll() {
	for _, id := range h.ids() {
		h.nodes[id].Stop()
	}
	h.k.RunFor(time.Millisecond)
}

// crash takes a node off the air: its endpoint goes down and the node stops.
func (h *confHarness) crash(id transport.NodeID) {
	h.net.Endpoint(id).SetDown(true)
	h.nodes[id].Stop()
}

// runUntil advances simulation until cond holds or maxVirtual elapses.
func (h *confHarness) runUntil(maxVirtual time.Duration, cond func() bool) bool {
	h.t.Helper()
	deadline := h.k.Now() + maxVirtual
	for h.k.Now() < deadline {
		if cond() {
			return true
		}
		h.k.RunFor(200 * time.Microsecond)
	}
	return cond()
}

func (h *confHarness) payloads(id transport.NodeID) []string {
	out := make([]string, len(h.deliveries[id]))
	for i, d := range h.deliveries[id] {
		out[i] = string(d.Payload)
	}
	return out
}

// checkAgreement verifies pairwise prefix consistency of the delivery
// sequences (payload and sender) and per-node TotalOrder contiguity.
func (h *confHarness) checkAgreement(ids ...transport.NodeID) {
	h.t.Helper()
	for _, id := range ids {
		for i, d := range h.deliveries[id] {
			if want := uint64(i + 1); d.TotalOrder != want {
				h.t.Fatalf("%v node %v: delivery %d has TotalOrder %d, want %d",
					h.kind, id, i, d.TotalOrder, want)
			}
		}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := h.deliveries[ids[i]], h.deliveries[ids[j]]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for x := 0; x < n; x++ {
				if string(a[x].Payload) != string(b[x].Payload) || a[x].Sender != b[x].Sender {
					h.t.Fatalf("%v: order diverges at %d: node %v got %q from %v, node %v got %q from %v",
						h.kind, x, ids[i], a[x].Payload, a[x].Sender, ids[j], b[x].Payload, b[x].Sender)
				}
			}
		}
	}
}

// checkSenderFIFO verifies gap-freedom per sender: each node delivers the
// messages of each sender in broadcast order with no gaps, against the known
// per-sender broadcast log.
func (h *confHarness) checkSenderFIFO(sent map[transport.NodeID][]string, ids ...transport.NodeID) {
	h.t.Helper()
	for _, id := range ids {
		got := make(map[transport.NodeID][]string)
		for _, d := range h.deliveries[id] {
			got[d.Sender] = append(got[d.Sender], string(d.Payload))
		}
		for sender, want := range sent {
			g := got[sender]
			if len(g) != len(want) {
				h.t.Fatalf("%v node %v: delivered %d of %d messages from %v",
					h.kind, id, len(g), len(want), sender)
			}
			for i := range want {
				if g[i] != want[i] {
					h.t.Fatalf("%v node %v: sender %v message %d is %q, want %q (gap or reorder)",
						h.kind, id, sender, i, g[i], want[i])
				}
			}
		}
	}
}

func (h *confHarness) lastView(id transport.NodeID) View {
	h.t.Helper()
	vs := h.views[id]
	if len(vs) == 0 {
		h.t.Fatalf("%v node %v: no view installed", h.kind, id)
	}
	return vs[len(vs)-1]
}

func confIDs(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(i)
	}
	return out
}

func sameMembers(a, b []transport.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConformanceTotalOrderAndFIFO: every node broadcasts a burst; all nodes
// deliver all messages in one agreed order with per-sender FIFO and
// contiguous TotalOrder.
func TestConformanceTotalOrderAndFIFO(t *testing.T) {
	for _, kind := range confKinds {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 1, nil)
			ids := confIDs(4)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()

			const perNode = 10
			sent := make(map[transport.NodeID][]string)
			for round := 0; round < perNode; round++ {
				for _, id := range ids {
					p := fmt.Sprintf("n%d-m%d", id, round)
					sent[id] = append(sent[id], p)
					if err := h.nodes[id].Broadcast([]byte(p)); err != nil {
						t.Fatalf("Broadcast: %v", err)
					}
				}
				h.k.RunFor(500 * time.Microsecond)
			}

			total := perNode * len(ids)
			ok := h.runUntil(2*time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < total {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("not all messages delivered: %d/%d/%d/%d of %d",
					len(h.deliveries[0]), len(h.deliveries[1]),
					len(h.deliveries[2]), len(h.deliveries[3]), total)
			}
			h.checkAgreement(ids...)
			h.checkSenderFIFO(sent, ids...)
			h.stopAll()
		})
	}
}

// TestConformanceSafeDelivery: safe broadcasts (the CCS mode) are delivered
// at every node, in agreement.
func TestConformanceSafeDelivery(t *testing.T) {
	for _, kind := range confKinds {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 2, nil)
			ids := confIDs(4)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()

			const rounds = 5
			for i := 0; i < rounds; i++ {
				p := fmt.Sprintf("safe-%d", i)
				h.k.Post(func() {
					h.nodes[ids[i%len(ids)]].BroadcastCancelable([]byte(p), true, 0)
				})
				h.k.RunFor(2 * time.Millisecond)
			}
			ok := h.runUntil(time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < rounds {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("safe deliveries incomplete: %d/%d/%d/%d of %d",
					len(h.deliveries[0]), len(h.deliveries[1]),
					len(h.deliveries[2]), len(h.deliveries[3]), rounds)
			}
			h.checkAgreement(ids...)
			h.stopAll()
		})
	}
}

// TestConformanceDupKeySuppression: once a message with a dupKey has been
// delivered, a later cancelable broadcast with the same key is suppressed —
// no second delivery. A cancel inside the submission instant withdraws the
// message entirely.
func TestConformanceDupKeySuppression(t *testing.T) {
	for _, kind := range confKinds {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 3, nil)
			ids := confIDs(3)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()

			const key = 77
			h.k.Post(func() { h.nodes[0].BroadcastCancelable([]byte("first"), false, key) })
			if !h.runUntil(time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < 1 {
						return false
					}
				}
				return true
			}) {
				t.Fatalf("first broadcast not delivered")
			}

			// Same key from another node, after delivery: must be suppressed.
			h.k.Post(func() { h.nodes[1].BroadcastCancelable([]byte("dup"), false, key) })
			// Cancel within the submission instant: must never reach the wire.
			h.k.Post(func() {
				cancel := h.nodes[2].BroadcastCancelable([]byte("withdrawn"), false, 0)
				if !cancel() {
					t.Errorf("cancel in submission instant reported message already sent")
				}
			})
			h.k.RunFor(100 * time.Millisecond)

			for _, id := range ids {
				for _, p := range h.payloads(id) {
					if p == "dup" || p == "withdrawn" {
						t.Fatalf("%v node %v delivered %q", kind, id, p)
					}
				}
			}
			h.stopAll()
		})
	}
}

// TestConformanceCrash: the lowest member (ring representative / sequencer
// leader) crashes; the survivors agree on a primary view without it and keep
// delivering in total order.
func TestConformanceCrash(t *testing.T) {
	for _, kind := range confKinds {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 4, nil)
			ids := confIDs(4)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()

			if err := h.nodes[1].Broadcast([]byte("before")); err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
			h.runUntil(time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < 1 {
						return false
					}
				}
				return true
			})

			h.crash(0)
			survivors := ids[1:]
			ok := h.runUntil(2*time.Second, func() bool {
				for _, id := range survivors {
					v := h.views[id]
					if len(v) == 0 {
						return false
					}
					last := v[len(v)-1]
					if !sameMembers(last.Members, survivors) || !last.Primary {
						return false
					}
				}
				return true
			})
			if !ok {
				for _, id := range survivors {
					t.Logf("node %v views: %+v", id, h.views[id])
				}
				t.Fatalf("survivors did not agree on a primary view without node 0")
			}
			want := h.lastView(survivors[0]).ID
			for _, id := range survivors[1:] {
				if got := h.lastView(id).ID; got != want {
					t.Fatalf("view disagreement: node %v has %v, node %v has %v",
						survivors[0], want, id, got)
				}
			}

			base := len(h.deliveries[1])
			for i, id := range survivors {
				if err := h.nodes[id].Broadcast([]byte(fmt.Sprintf("after-%d", i))); err != nil {
					t.Fatalf("Broadcast: %v", err)
				}
			}
			ok = h.runUntil(2*time.Second, func() bool {
				for _, id := range survivors {
					if len(h.deliveries[id]) < base+len(survivors) {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("post-crash broadcasts not delivered")
			}
			h.checkAgreement(survivors...)
			h.stopAll()
		})
	}
}

// TestConformancePartition: a 3/2 split of five nodes. The majority side
// installs a primary view and keeps ordering; the minority goes non-primary
// and orders nothing; after the heal, all five converge on one primary view
// and agree on subsequent deliveries. The instant orderer has no network to
// partition, so it is excluded.
func TestConformancePartition(t *testing.T) {
	for _, kind := range []Kind{KindTotem, KindSeq} {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 5, nil)
			ids := confIDs(5)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()
			h.runUntil(time.Second, func() bool {
				for _, id := range ids {
					if len(h.views[id]) == 0 {
						return false
					}
				}
				return true
			})

			maj, min := ids[:3], ids[3:]
			h.net.Partition(maj, min)

			ok := h.runUntil(3*time.Second, func() bool {
				for _, id := range maj {
					last := h.lastView(id)
					if !sameMembers(last.Members, maj) || !last.Primary {
						return false
					}
				}
				for _, id := range min {
					if h.lastView(id).Primary {
						return false
					}
				}
				return true
			})
			if !ok {
				for _, id := range ids {
					t.Logf("node %v last view: %+v", id, h.lastView(id))
				}
				t.Fatalf("partitioned components did not settle (majority primary, minority not)")
			}

			// The primary component keeps ordering through the partition. (A
			// non-primary component may still deliver locally — totem does,
			// seq holds proposals — the contract only requires the Primary
			// flag to be false there so the app gates decisions on it.)
			if err := h.nodes[0].Broadcast([]byte("majority-only")); err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
			ok = h.runUntil(2*time.Second, func() bool {
				for _, id := range maj {
					found := false
					for _, p := range h.payloads(id) {
						if p == "majority-only" {
							found = true
						}
					}
					if !found {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("majority did not deliver during the partition")
			}

			h.net.Heal()
			ok = h.runUntil(5*time.Second, func() bool {
				want := h.lastView(0)
				if !sameMembers(want.Members, ids) || !want.Primary {
					return false
				}
				for _, id := range ids {
					last := h.lastView(id)
					if last.ID != want.ID || !sameMembers(last.Members, ids) || !last.Primary {
						return false
					}
				}
				return true
			})
			if !ok {
				for _, id := range ids {
					t.Logf("node %v last view: %+v", id, h.lastView(id))
				}
				t.Fatalf("cluster did not remerge into one primary view of all five")
			}

			// Post-heal broadcasts reach everyone, in one order.
			marks := make(map[transport.NodeID]int)
			for _, id := range ids {
				marks[id] = len(h.deliveries[id])
			}
			const healed = 5
			for i := 0; i < healed; i++ {
				if err := h.nodes[ids[i]].Broadcast([]byte(fmt.Sprintf("healed-%d", i))); err != nil {
					t.Fatalf("Broadcast: %v", err)
				}
			}
			ok = h.runUntil(3*time.Second, func() bool {
				for _, id := range ids {
					n := 0
					for _, p := range h.payloads(id)[marks[id]:] {
						if len(p) > 6 && p[:6] == "healed" {
							n++
						}
					}
					if n < healed {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("post-heal broadcasts not delivered everywhere")
			}
			var want []string
			for _, p := range h.payloads(0)[marks[0]:] {
				if len(p) > 6 && p[:6] == "healed" {
					want = append(want, p)
				}
			}
			for _, id := range ids[1:] {
				var got []string
				for _, p := range h.payloads(id)[marks[id]:] {
					if len(p) > 6 && p[:6] == "healed" {
						got = append(got, p)
					}
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("post-heal order diverges at %d: node %v got %q, node 0 got %q",
							i, id, got[i], want[i])
					}
				}
			}
			h.stopAll()
		})
	}
}

// TestConformanceLossReorder: 5% datagram loss under the jittery Ethernet
// model (which reorders across links); the protocols recover every message
// and keep total order. Instant has no network, so it is excluded.
func TestConformanceLossReorder(t *testing.T) {
	for _, kind := range []Kind{KindTotem, KindSeq} {
		t.Run(string(kind), func(t *testing.T) {
			h := newConfHarness(t, kind, 6, simnet.Ethernet())
			ids := confIDs(4)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.startAll()
			h.net.SetLoss(0.05)

			const perNode = 8
			sent := make(map[transport.NodeID][]string)
			for round := 0; round < perNode; round++ {
				for _, id := range ids {
					p := fmt.Sprintf("n%d-m%d", id, round)
					sent[id] = append(sent[id], p)
					if err := h.nodes[id].Broadcast([]byte(p)); err != nil {
						t.Fatalf("Broadcast: %v", err)
					}
				}
				h.k.RunFor(time.Millisecond)
			}
			h.net.SetLoss(0)

			total := perNode * len(ids)
			ok := h.runUntil(5*time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < total {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("lossy run incomplete: %d/%d/%d/%d of %d",
					len(h.deliveries[0]), len(h.deliveries[1]),
					len(h.deliveries[2]), len(h.deliveries[3]), total)
			}
			h.checkAgreement(ids...)
			h.checkSenderFIFO(sent, ids...)
			h.stopAll()
		})
	}
}

// TestConformanceDeterminism: the same seed replays the same scenario —
// including a mid-run crash — to byte-identical delivery and view sequences.
func TestConformanceDeterminism(t *testing.T) {
	type trace struct {
		deliveries map[transport.NodeID][]Delivery
		views      map[transport.NodeID][]View
	}
	scenario := func(t *testing.T, kind Kind) trace {
		h := newConfHarness(t, kind, 7, nil)
		ids := confIDs(4)
		for _, id := range ids {
			h.addNode(id, ids, true)
		}
		h.startAll()
		for round := 0; round < 6; round++ {
			for _, id := range ids {
				_ = h.nodes[id].Broadcast([]byte(fmt.Sprintf("n%d-m%d", id, round)))
			}
			h.k.RunFor(2 * time.Millisecond)
			if round == 3 {
				h.crash(0)
			}
		}
		h.k.RunFor(200 * time.Millisecond)
		h.stopAll()
		return trace{deliveries: h.deliveries, views: h.views}
	}
	for _, kind := range confKinds {
		t.Run(string(kind), func(t *testing.T) {
			a := scenario(t, kind)
			b := scenario(t, kind)
			for _, id := range confIDs(4) {
				da, db := a.deliveries[id], b.deliveries[id]
				if len(da) != len(db) {
					t.Fatalf("node %v: run A delivered %d, run B %d", id, len(da), len(db))
				}
				for i := range da {
					x, y := da[i], db[i]
					if x.TotalOrder != y.TotalOrder || x.ViewID != y.ViewID ||
						x.Seq != y.Seq || x.Sender != y.Sender ||
						string(x.Payload) != string(y.Payload) {
						t.Fatalf("node %v delivery %d differs: %+v vs %+v", id, i, x, y)
					}
				}
				va, vb := a.views[id], b.views[id]
				if len(va) != len(vb) {
					t.Fatalf("node %v: run A installed %d views, run B %d", id, len(va), len(vb))
				}
				for i := range va {
					if va[i].ID != vb[i].ID || va[i].Primary != vb[i].Primary ||
						!sameMembers(va[i].Members, vb[i].Members) {
						t.Fatalf("node %v view %d differs: %+v vs %+v", id, i, va[i], vb[i])
					}
				}
			}
		})
	}
}
