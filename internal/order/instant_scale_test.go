package order

import (
	"fmt"
	"testing"
	"time"

	"cts/internal/transport"
)

// The scale suite exercises the instant orderer at campaign population sizes
// (internal/campaign deploys it at 100–1000 nodes). The conformance suite
// proves the contract at 4–5 nodes; these tests prove the hub's coalesced
// view emission and O(N) delivery fan-out keep the same guarantees when the
// membership is two orders of magnitude larger.

// TestInstantScaleAgreement: 150 nodes all broadcasting; every node delivers
// every message in one agreed order with per-sender FIFO and contiguous
// per-node TotalOrder.
func TestInstantScaleAgreement(t *testing.T) {
	h := newConfHarness(t, KindInstant, 11, nil)
	ids := confIDs(150)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()

	const perNode = 3
	sent := make(map[transport.NodeID][]string)
	for round := 0; round < perNode; round++ {
		for _, id := range ids {
			p := fmt.Sprintf("n%d-m%d", id, round)
			sent[id] = append(sent[id], p)
			if err := h.nodes[id].Broadcast([]byte(p)); err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
		}
		h.k.RunFor(500 * time.Microsecond)
	}

	total := perNode * len(ids)
	ok := h.runUntil(2*time.Second, func() bool {
		for _, id := range ids {
			if len(h.deliveries[id]) < total {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("not all messages delivered: node 0 has %d of %d", len(h.deliveries[0]), total)
	}
	h.checkAgreement(ids...)
	h.checkSenderFIFO(sent, ids...)
	h.stopAll()
}

// TestInstantScaleChurn: 120 nodes with a churn tail — victims from the top
// of the id range cycle through stop/restart while the stable majority keeps
// broadcasting. Stable nodes must agree on the full order with per-sender
// gap-freedom; churned nodes may miss messages while down, but what they do
// deliver must be a gap-free (strictly Seq-increasing) subsequence that
// agrees with the stable order at every shared Seq.
func TestInstantScaleChurn(t *testing.T) {
	h := newConfHarness(t, KindInstant, 12, nil)
	ids := confIDs(120)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()

	stable := ids[:100]
	victims := ids[100:]
	sent := make(map[transport.NodeID][]string)
	const waves = 10
	for w := 0; w < waves; w++ {
		// One victim down per wave; the previous wave's victim comes back.
		h.nodes[victims[w%len(victims)]].Stop()
		if w > 0 {
			h.nodes[victims[(w-1)%len(victims)]].Start()
		}
		h.k.RunFor(100 * time.Microsecond)
		for i := 0; i < 10; i++ {
			sender := stable[(w*10+i)%len(stable)]
			p := fmt.Sprintf("w%d-s%d", w, sender)
			sent[sender] = append(sent[sender], p)
			if err := h.nodes[sender].Broadcast([]byte(p)); err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
		}
		h.k.RunFor(time.Millisecond)
	}
	h.nodes[victims[(waves-1)%len(victims)]].Start()
	h.k.RunFor(time.Millisecond)

	total := 0
	for _, msgs := range sent {
		total += len(msgs)
	}
	ok := h.runUntil(2*time.Second, func() bool {
		for _, id := range stable {
			if len(h.deliveries[id]) < total {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("stable nodes missed messages: node 0 has %d of %d", len(h.deliveries[0]), total)
	}
	h.checkAgreement(stable...)
	h.checkSenderFIFO(sent, stable...)

	// Churned nodes: gap-free subsequences of the agreed order.
	ref := make(map[uint64]Delivery, total)
	for _, d := range h.deliveries[stable[0]] {
		ref[d.Seq] = d
	}
	for _, id := range victims {
		var lastSeq uint64
		for i, d := range h.deliveries[id] {
			if d.Seq <= lastSeq {
				t.Fatalf("node %v: delivery %d has Seq %d after %d (reorder or duplicate)",
					id, i, d.Seq, lastSeq)
			}
			lastSeq = d.Seq
			want, seen := ref[d.Seq]
			if !seen {
				t.Fatalf("node %v: delivered Seq %d the stable nodes never saw", id, d.Seq)
			}
			if string(d.Payload) != string(want.Payload) || d.Sender != want.Sender {
				t.Fatalf("node %v: Seq %d is %q from %v, stable order has %q from %v",
					id, d.Seq, d.Payload, d.Sender, want.Payload, want.Sender)
			}
		}
	}

	// After the last restart everyone converges on one full primary view.
	ok = h.runUntil(time.Second, func() bool {
		for _, id := range ids {
			vs := h.views[id]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1]
			if !last.Primary || !sameMembers(last.Members, ids) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("nodes did not reconverge on the full membership: node 0 last view %+v",
			h.lastView(ids[0]))
	}
	want := h.lastView(ids[0]).ID
	for _, id := range ids[1:] {
		if got := h.lastView(id).ID; got != want {
			t.Fatalf("view disagreement after churn: node %v has %v, want %v", id, got, want)
		}
	}
	h.stopAll()
}
