package order

import (
	"strings"
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", KindTotem, false},
		{"totem", KindTotem, false},
		{"seq", KindSeq, false},
		{"instant", KindInstant, false},
		{"ring", "", true},
		{"TOTEM", "", true},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseKind(%q): want error, got %q", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	hub := NewInstantHub()
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"zero selects totem", Options{}, ""},
		{"totem tuning on totem", Options{Kind: KindTotem, Totem: TotemTuning{JoinTimeout: time.Millisecond}}, ""},
		{"seq tuning on seq", Options{Kind: KindSeq, Seq: SeqTuning{LeaderTimeout: time.Millisecond}}, ""},
		{"instant with hub", Options{Kind: KindInstant, Instant: InstantTuning{Hub: hub}}, ""},
		{"unknown kind", Options{Kind: "ring"}, "unknown orderer"},
		{"negative quorum", Options{Quorum: -1}, "Quorum"},
		{"totem tuning on seq", Options{Kind: KindSeq, Totem: TotemTuning{JoinTimeout: time.Millisecond}}, "Totem tuning set but Kind"},
		{"seq tuning on totem", Options{Kind: KindTotem, Seq: SeqTuning{LeaderTimeout: time.Millisecond}}, "Seq tuning set but Kind"},
		{"instant tuning on totem", Options{Kind: KindTotem, Instant: InstantTuning{Hub: hub}}, "Instant tuning set but Kind"},
		{"instant without hub", Options{Kind: KindInstant}, "Instant.Hub"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eff, err := c.opts.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				if eff.Kind == "" {
					t.Fatalf("Validate left Kind empty")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestEnvValidate(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, nil)
	deliver := func(Delivery) {}
	cases := []struct {
		name    string
		env     Env
		wantErr string
	}{
		{"missing runtime", Env{Transport: net.Endpoint(0), Deliver: deliver}, "Runtime"},
		{"missing deliver", Env{Runtime: k, Transport: net.Endpoint(0)}, "Deliver"},
		{"missing transport", Env{Runtime: k, Deliver: deliver}, "Transport"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.env, Options{})
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("New = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestViewIDLess(t *testing.T) {
	a := ViewID{Epoch: 1, Rep: 2}
	b := ViewID{Epoch: 1, Rep: 3}
	c := ViewID{Epoch: 2, Rep: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatalf("ViewID ordering broken: %v %v %v", a, b, c)
	}
	if b.Less(a) || c.Less(b) || a.Less(a) {
		t.Fatalf("ViewID ordering not strict")
	}
	if a.String() == "" {
		t.Fatalf("ViewID.String empty")
	}
	_ = []transport.NodeID{a.Rep} // keep the transport import honest
}
