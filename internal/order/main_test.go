package order

import (
	"testing"

	"cts/internal/testutil"
)

// TestMain fails the package if any test leaves goroutines running; every
// orderer started by a test must be stopped by that test.
func TestMain(m *testing.M) { testutil.Main(m) }
