package order

import (
	"fmt"

	"cts/internal/totem"
	"cts/internal/transport"
)

// totemOrderer adapts a totem.Node to the Orderer contract. The ring
// identifier maps onto the neutral ViewID: the ring sequence number is the
// epoch and the ring representative is the view representative.
type totemOrderer struct {
	node *totem.Node
	me   transport.NodeID
}

func newTotemOrderer(env Env, opts Options) (Orderer, error) {
	t := &totemOrderer{me: env.Transport.LocalID()}
	tc := totem.Config{
		Runtime:             env.Runtime,
		Transport:           env.Transport,
		Members:             env.Members,
		Bootstrap:           env.Bootstrap,
		Quorum:              opts.Quorum,
		TokenLossTimeout:    opts.Totem.TokenLossTimeout,
		TokenRetransTimeout: opts.Totem.TokenRetransTimeout,
		JoinTimeout:         opts.Totem.JoinTimeout,
		CommitTimeout:       opts.Totem.CommitTimeout,
		AnnounceInterval:    opts.Totem.AnnounceInterval,
		MaxMessagesPerToken: opts.Totem.MaxMessagesPerToken,
		Obs:                 env.Obs,
		Deliver: func(d totem.Delivery) {
			env.Deliver(Delivery{
				TotalOrder: d.TotalOrder,
				ViewID:     ViewID{Epoch: d.Ring.Seq, Rep: d.Ring.Rep},
				Seq:        d.Seq,
				Sender:     d.Sender,
				Payload:    d.Payload,
			})
		},
	}
	if env.OnView != nil {
		tc.OnView = func(v totem.View) {
			env.OnView(View{
				ID:      ViewID{Epoch: v.Ring.Seq, Rep: v.Ring.Rep},
				Members: v.Members,
				Primary: v.Primary,
			})
		}
	}
	node, err := totem.New(tc)
	if err != nil {
		return nil, fmt.Errorf("order: totem: %w", err)
	}
	t.node = node
	return t, nil
}

func (t *totemOrderer) Start()                    { t.node.Start() }
func (t *totemOrderer) Stop()                     { t.node.Stop() }
func (t *totemOrderer) Broadcast(p []byte) error  { return t.node.Broadcast(p) }
func (t *totemOrderer) LocalID() transport.NodeID { return t.me }

func (t *totemOrderer) BroadcastCancelable(p []byte, safe bool, dupKey uint64) func() bool {
	return t.node.BroadcastCancelable(p, safe, dupKey)
}
