package order

import (
	"testing"
	"time"
)

// Leader crashes while safe cancelable traffic is in flight; survivors must
// keep delivering. Regression test for the dense-relabel wedge: after the
// crash the new leader relabels the survivors' retained proposals with
// dense per-sender numbers, and a dupKey-suppressed proposal cancelled
// after relabelling used to leave a hole that wedged the sender's chain.
func TestSeqLeaderCrashSafeInFlight(t *testing.T) {
	h := newConfHarness(t, KindSeq, 23, nil)
	ids := confIDs(4)[1:] // nodes 1,2,3 like the experiment cluster
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()

	key := uint64(1)
	deliveredKey := func(k uint64) bool {
		for _, id := range ids[1:] {
			found := false
			for _, d := range h.deliveries[id] {
				if len(d.Payload) > 0 && uint64(d.Payload[0]) == k%256 {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	// A few rounds pre-crash: both non-leaders propose with the same dupKey.
	for ; key <= 3; key++ {
		k := key
		h.k.Post(func() {
			h.nodes[2].BroadcastCancelable([]byte{byte(k)}, true, k)
			h.nodes[3].BroadcastCancelable([]byte{byte(k)}, true, k)
		})
		if !h.runUntil(time.Second, func() bool { return deliveredKey(k) }) {
			t.Fatalf("round %d never delivered pre-crash", k)
		}
	}

	// Put a round in flight and crash the leader in the same instant.
	k := key
	h.k.Post(func() {
		h.nodes[2].BroadcastCancelable([]byte{byte(k)}, true, k)
		h.nodes[3].BroadcastCancelable([]byte{byte(k)}, true, k)
	})
	h.crash(1)

	if !h.runUntil(5*time.Second, func() bool { return deliveredKey(k) }) {
		for _, id := range ids[1:] {
			t.Logf("node %v: %d deliveries, views %+v", id, len(h.deliveries[id]), h.views[id])
		}
		t.Fatalf("in-flight round %d never delivered after leader crash", k)
	}
	key++

	// Post-crash rounds.
	for ; key <= k+3; key++ {
		kk := key
		h.k.Post(func() {
			h.nodes[2].BroadcastCancelable([]byte{byte(kk)}, true, kk)
			h.nodes[3].BroadcastCancelable([]byte{byte(kk)}, true, kk)
		})
		if !h.runUntil(5*time.Second, func() bool { return deliveredKey(kk) }) {
			for _, id := range ids[1:] {
				t.Logf("node %v: %d deliveries, last view %+v", id, len(h.deliveries[id]), h.views[id][len(h.views[id])-1])
			}
			t.Fatalf("round %d never delivered post-crash", kk)
		}
	}
}
