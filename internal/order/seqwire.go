package order

import (
	"encoding/binary"
	"errors"

	"cts/internal/transport"
)

// Wire format of the leader-sequencer: one tag byte followed by fixed-width
// big-endian fields. The transport is unreliable, so every decoder
// bounds-checks and returns an error on truncated or corrupt datagrams.
const (
	seqTagPropose  = 1
	seqTagOrdered  = 2
	seqTagHeart    = 3
	seqTagAck      = 4
	seqTagNack     = 5
	seqTagElect    = 6
	seqTagElectAck = 7
	seqTagInstall  = 8
)

// seqPropose is a proposal unicast to the current leader. Local is a
// per-sender sequence number, dense within the view, that gives
// gap-freedom: the leader orders one sender's proposals in Local order,
// buffering any that arrive early.
type seqPropose struct {
	View    ViewID // proposer's view; the leader rejects mismatches
	Sender  transport.NodeID
	Local   uint64
	Safe    bool
	DupKey  uint64
	Payload []byte
}

// seqEntry is one ordered message, broadcast by the leader and merged
// through elections. Seq is globally monotone across views.
type seqEntry struct {
	View    ViewID
	Seq     uint64
	Sender  transport.NodeID
	Local   uint64
	Safe    bool
	DupKey  uint64
	Payload []byte
}

// seqHeartbeat is the leader's periodic beacon. It drives follower liveness
// detection, carries the safe point (every member holds seq ≤ SafePoint),
// and — because it is broadcast — doubles as the discovery beacon that lets
// stragglers and healed partitions find the component.
type seqHeartbeat struct {
	View      ViewID
	HighSeq   uint64
	SafePoint uint64
}

// seqAck is a follower's reply to a heartbeat: its all-received-up-to.
type seqAck struct {
	View ViewID
	From transport.NodeID
	Aru  uint64
}

// seqNack requests retransmission of missing sequence numbers.
type seqNack struct {
	View    ViewID
	From    transport.NodeID
	Missing []uint64
}

// seqElect announces an election: Cand proposes to form epoch Epoch.
// Between concurrent elections the higher epoch wins; on equal epochs the
// lower candidate id wins, so races converge.
type seqElect struct {
	Epoch uint64
	Cand  transport.NodeID
}

// seqElectAck is one member's contribution to an election: its latest view,
// its delivered prefix, and every retained entry, enough for the candidate
// to compute the merged message history.
type seqElectAck struct {
	Epoch     uint64
	From      transport.NodeID
	View      ViewID
	Delivered uint64
	Entries   []seqEntry
}

// seqInstall commits the election: the new view, its members, the merged
// entry suffix and the sequence high-water mark the next view continues
// from.
type seqInstall struct {
	Epoch   uint64
	View    ViewID
	Members []transport.NodeID
	HighSeq uint64
	Entries []seqEntry
}

var errSeqWire = errors.New("order: malformed sequencer datagram")

// seqEnc is an append-only encoder.
type seqEnc struct{ b []byte }

func (e *seqEnc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *seqEnc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *seqEnc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *seqEnc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *seqEnc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// seqDec is a bounds-checked decoder; err latches on the first short read.
type seqDec struct {
	b   []byte
	err bool
}

func (d *seqDec) u8() uint8 {
	if d.err || len(d.b) < 1 {
		d.err = true
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *seqDec) u32() uint32 {
	if d.err || len(d.b) < 4 {
		d.err = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *seqDec) u64() uint64 {
	if d.err || len(d.b) < 8 {
		d.err = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *seqDec) boolean() bool { return d.u8() != 0 }

func (d *seqDec) bytes() []byte {
	n := int(d.u32())
	if d.err || n < 0 || len(d.b) < n {
		d.err = true
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[:n])
	d.b = d.b[n:]
	return v
}

func (e *seqEnc) viewID(v ViewID) {
	e.u64(v.Epoch)
	e.u32(uint32(v.Rep))
}

func (d *seqDec) viewID() ViewID {
	return ViewID{Epoch: d.u64(), Rep: transport.NodeID(d.u32())}
}

func (e *seqEnc) entry(m *seqEntry) {
	e.viewID(m.View)
	e.u64(m.Seq)
	e.u32(uint32(m.Sender))
	e.u64(m.Local)
	e.boolean(m.Safe)
	e.u64(m.DupKey)
	e.bytes(m.Payload)
}

func (d *seqDec) entry() seqEntry {
	return seqEntry{
		View:    d.viewID(),
		Seq:     d.u64(),
		Sender:  transport.NodeID(d.u32()),
		Local:   d.u64(),
		Safe:    d.boolean(),
		DupKey:  d.u64(),
		Payload: d.bytes(),
	}
}

func encodePropose(m *seqPropose) []byte {
	e := &seqEnc{b: make([]byte, 0, 32+len(m.Payload))}
	e.u8(seqTagPropose)
	e.viewID(m.View)
	e.u32(uint32(m.Sender))
	e.u64(m.Local)
	e.boolean(m.Safe)
	e.u64(m.DupKey)
	e.bytes(m.Payload)
	return e.b
}

func decodePropose(b []byte) (*seqPropose, error) {
	d := &seqDec{b: b}
	m := &seqPropose{
		View:    d.viewID(),
		Sender:  transport.NodeID(d.u32()),
		Local:   d.u64(),
		Safe:    d.boolean(),
		DupKey:  d.u64(),
		Payload: d.bytes(),
	}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeOrdered(m *seqEntry) []byte {
	e := &seqEnc{b: make([]byte, 0, 48+len(m.Payload))}
	e.u8(seqTagOrdered)
	e.entry(m)
	return e.b
}

func decodeOrdered(b []byte) (*seqEntry, error) {
	d := &seqDec{b: b}
	m := d.entry()
	if d.err {
		return nil, errSeqWire
	}
	return &m, nil
}

func encodeHeartbeat(m *seqHeartbeat) []byte {
	e := &seqEnc{b: make([]byte, 0, 32)}
	e.u8(seqTagHeart)
	e.viewID(m.View)
	e.u64(m.HighSeq)
	e.u64(m.SafePoint)
	return e.b
}

func decodeHeartbeat(b []byte) (*seqHeartbeat, error) {
	d := &seqDec{b: b}
	m := &seqHeartbeat{View: d.viewID(), HighSeq: d.u64(), SafePoint: d.u64()}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeAck(m *seqAck) []byte {
	e := &seqEnc{b: make([]byte, 0, 32)}
	e.u8(seqTagAck)
	e.viewID(m.View)
	e.u32(uint32(m.From))
	e.u64(m.Aru)
	return e.b
}

func decodeAck(b []byte) (*seqAck, error) {
	d := &seqDec{b: b}
	m := &seqAck{View: d.viewID(), From: transport.NodeID(d.u32()), Aru: d.u64()}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeNack(m *seqNack) []byte {
	e := &seqEnc{b: make([]byte, 0, 32+8*len(m.Missing))}
	e.u8(seqTagNack)
	e.viewID(m.View)
	e.u32(uint32(m.From))
	e.u32(uint32(len(m.Missing)))
	for _, s := range m.Missing {
		e.u64(s)
	}
	return e.b
}

func decodeNack(b []byte) (*seqNack, error) {
	d := &seqDec{b: b}
	m := &seqNack{View: d.viewID(), From: transport.NodeID(d.u32())}
	n := int(d.u32())
	if d.err || n > len(d.b)/8 {
		return nil, errSeqWire
	}
	m.Missing = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		m.Missing = append(m.Missing, d.u64())
	}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeElect(m *seqElect) []byte {
	e := &seqEnc{b: make([]byte, 0, 16)}
	e.u8(seqTagElect)
	e.u64(m.Epoch)
	e.u32(uint32(m.Cand))
	return e.b
}

func decodeElect(b []byte) (*seqElect, error) {
	d := &seqDec{b: b}
	m := &seqElect{Epoch: d.u64(), Cand: transport.NodeID(d.u32())}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeElectAck(m *seqElectAck) []byte {
	e := &seqEnc{b: make([]byte, 0, 64)}
	e.u8(seqTagElectAck)
	e.u64(m.Epoch)
	e.u32(uint32(m.From))
	e.viewID(m.View)
	e.u64(m.Delivered)
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.entry(&m.Entries[i])
	}
	return e.b
}

func decodeElectAck(b []byte) (*seqElectAck, error) {
	d := &seqDec{b: b}
	m := &seqElectAck{
		Epoch:     d.u64(),
		From:      transport.NodeID(d.u32()),
		View:      d.viewID(),
		Delivered: d.u64(),
	}
	n := int(d.u32())
	if d.err || n > len(d.b) {
		return nil, errSeqWire
	}
	m.Entries = make([]seqEntry, 0, n)
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, d.entry())
	}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}

func encodeInstall(m *seqInstall) []byte {
	e := &seqEnc{b: make([]byte, 0, 64)}
	e.u8(seqTagInstall)
	e.u64(m.Epoch)
	e.viewID(m.View)
	e.u32(uint32(len(m.Members)))
	for _, id := range m.Members {
		e.u32(uint32(id))
	}
	e.u64(m.HighSeq)
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.entry(&m.Entries[i])
	}
	return e.b
}

func decodeInstall(b []byte) (*seqInstall, error) {
	d := &seqDec{b: b}
	m := &seqInstall{Epoch: d.u64(), View: d.viewID()}
	nm := int(d.u32())
	if d.err || nm > len(d.b)/4 {
		return nil, errSeqWire
	}
	m.Members = make([]transport.NodeID, 0, nm)
	for i := 0; i < nm; i++ {
		m.Members = append(m.Members, transport.NodeID(d.u32()))
	}
	m.HighSeq = d.u64()
	ne := int(d.u32())
	if d.err || ne > len(d.b) {
		return nil, errSeqWire
	}
	m.Entries = make([]seqEntry, 0, ne)
	for i := 0; i < ne; i++ {
		m.Entries = append(m.Entries, d.entry())
	}
	if d.err {
		return nil, errSeqWire
	}
	return m, nil
}
