package order

import (
	"sort"

	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/transport"
)

// InstantHub is the shared ordering point of the sim-instant orderer: an
// in-process total-order oracle for large simulation campaigns. Every node
// of the simulated component registers against one hub (and therefore one
// runtime); a broadcast is sequenced and delivered to every active node in
// a single simulated step, with zero protocol traffic. This trades fault
// realism for scale — crash and recovery are modelled (Stop/Start change
// the membership and advance the view epoch), but partitions and message
// loss are not, since there is no network underneath.
//
// All hub state is confined to the shared runtime loop.
type InstantHub struct {
	rt          sim.Runtime
	quorum      int
	epoch       uint64
	seq         uint64
	nodes       map[transport.NodeID]*instantNode // registered (Start/Stop toggle active)
	pending     []*instantPending
	flushQueued bool
	seen        map[uint64]bool
	// active caches the sorted active membership. Rebuilding it on every
	// delivery is O(N log N) per message, which dominates thousand-node
	// campaigns; instead the cache is invalidated only when Start/Stop
	// change membership. The slice is replaced, never mutated in place, so
	// previously emitted views keep a consistent snapshot.
	active      []transport.NodeID
	activeDirty bool
	// emitQueued coalesces view emission: a batch of Start/Stop calls
	// landing in one instant (a campaign booting hundreds of nodes, a churn
	// wave) produces one membership view instead of one per call. The
	// activation itself is immediate — deliveries already include (or
	// exclude) the toggled node — only the view callback is deferred to the
	// end of the instant.
	emitQueued bool
}

// NewInstantHub creates an empty hub. Nodes attach via New with
// Options{Kind: KindInstant, Instant: InstantTuning{Hub: hub}}.
func NewInstantHub() *InstantHub {
	return &InstantHub{
		nodes: make(map[transport.NodeID]*instantNode),
		seen:  make(map[uint64]bool),
	}
}

// instantPending is one queued broadcast awaiting the hub's flush step.
type instantPending struct {
	sender    transport.NodeID
	payload   []byte
	safe      bool
	dupKey    uint64
	sent      bool
	cancelled bool
}

// instantNode is one processor's endpoint of the hub.
type instantNode struct {
	hub        *InstantHub
	env        Env
	me         transport.NodeID
	active     bool
	totalOrder uint64
	stats      struct {
		Broadcasts uint64
		Delivered  uint64
		Suppressed uint64
	}
}

func newInstantOrderer(env Env, opts Options) (Orderer, error) {
	hub := opts.Instant.Hub
	me := env.Transport.LocalID()
	n := &instantNode{hub: hub, env: env, me: me}
	if hub.rt == nil {
		hub.rt = env.Runtime
		hub.quorum = quorumOrDefault(opts.Quorum, len(env.Members))
	}
	hub.nodes[me] = n
	env.Obs.Register(n)
	return n, nil
}

// Start activates the node: the hub advances its view epoch and emits the
// new membership to every active node.
func (n *instantNode) Start() {
	n.hub.rt.Post(func() {
		if n.active {
			return
		}
		n.active = true
		n.hub.activeDirty = true
		n.hub.scheduleEmit()
	})
}

// Stop deactivates the node; no further callbacks run after the posted stop
// takes effect.
func (n *instantNode) Stop() {
	n.hub.rt.Post(func() {
		if !n.active {
			return
		}
		n.active = false
		n.hub.activeDirty = true
		n.hub.scheduleEmit()
	})
}

// LocalID implements Orderer.
func (n *instantNode) LocalID() transport.NodeID { return n.me }

// Broadcast implements Orderer. The message is ordered and delivered to
// every active node in one simulated step.
func (n *instantNode) Broadcast(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.hub.rt.Post(func() {
		n.hub.enqueue(&instantPending{sender: n.me, payload: cp})
		n.hub.flush()
	})
	return nil
}

// BroadcastCancelable implements Orderer. Loop-only; the hub's flush runs as
// a separate posted step, so a cancel within the same instant withdraws the
// message before ordering, mirroring the wire orderers' suppression window.
func (n *instantNode) BroadcastCancelable(payload []byte, safe bool, dupKey uint64) func() bool {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	p := &instantPending{sender: n.me, payload: cp, safe: safe, dupKey: dupKey}
	n.hub.enqueue(p)
	hub := n.hub
	if !hub.flushQueued {
		hub.flushQueued = true
		hub.rt.Post(func() {
			hub.flushQueued = false
			hub.flush()
		})
	}
	return func() bool {
		if p.sent {
			return false
		}
		p.cancelled = true
		return true
	}
}

func (h *InstantHub) enqueue(p *instantPending) {
	h.pending = append(h.pending, p)
	if n := h.nodes[p.sender]; n != nil {
		n.stats.Broadcasts++
	}
}

// flush orders every queued broadcast. Loop-only.
func (h *InstantHub) flush() {
	pend := h.pending
	h.pending = nil
	for _, p := range pend {
		if p.cancelled {
			continue
		}
		sender := h.nodes[p.sender]
		if sender == nil || !sender.active {
			continue // sender stopped between queue and flush
		}
		if p.dupKey != 0 && h.seen[p.dupKey] {
			p.cancelled = true
			sender.stats.Suppressed++
			continue
		}
		p.sent = true
		if p.dupKey != 0 {
			h.seen[p.dupKey] = true
		}
		h.seq++
		h.deliverAll(p)
	}
}

// deliverAll hands one ordered message to every active node, in id order.
func (h *InstantHub) deliverAll(p *instantPending) {
	view := h.viewID()
	for _, id := range h.activeIDs() {
		n := h.nodes[id]
		n.totalOrder++
		n.stats.Delivered++
		n.env.Deliver(Delivery{
			TotalOrder: n.totalOrder,
			ViewID:     view,
			Seq:        h.seq,
			Sender:     p.sender,
			Payload:    p.payload,
		})
	}
}

// scheduleEmit posts one deferred emitViews for the current instant.
func (h *InstantHub) scheduleEmit() {
	if h.emitQueued {
		return
	}
	h.emitQueued = true
	h.rt.Post(func() {
		h.emitQueued = false
		h.emitViews()
	})
}

// emitViews advances the epoch and delivers the new view to every active
// node. Any queued-but-unflushed broadcasts are flushed first, under the
// old view, preserving view synchrony.
func (h *InstantHub) emitViews() {
	h.flush()
	h.epoch++
	members := h.activeIDs()
	if len(members) == 0 {
		return
	}
	// One defensive copy shared by every receiver: downstream layers retain
	// the view but never mutate Members, and the hub's own cache is replaced
	// (not appended to) on the next membership change, so a single snapshot
	// is safe and turns view emission from O(N²) into O(N).
	view := View{
		ID:      h.viewID(),
		Members: append([]transport.NodeID(nil), members...),
		Primary: len(members) >= h.quorum,
	}
	for _, id := range members {
		n := h.nodes[id]
		if n.env.OnView != nil {
			n.env.OnView(view)
		}
	}
}

func (h *InstantHub) activeIDs() []transport.NodeID {
	if h.activeDirty {
		ids := make([]transport.NodeID, 0, len(h.nodes))
		for id, n := range h.nodes {
			if n.active {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		h.active = ids
		h.activeDirty = false
	}
	return h.active
}

func (h *InstantHub) viewID() ViewID {
	rep := transport.NodeID(0)
	if ids := h.activeIDs(); len(ids) > 0 {
		rep = ids[0]
	}
	return ViewID{Epoch: h.epoch, Rep: rep}
}

// ObsNode implements obs.Source.
func (n *instantNode) ObsNode() uint32 { return uint32(n.me) }

// ObsSamples implements obs.Source under the canonical instant.* names.
// Loop-only.
func (n *instantNode) ObsSamples() []obs.Sample {
	id := uint32(n.me)
	return []obs.Sample{
		{Node: id, Name: "instant.broadcasts", Value: n.stats.Broadcasts},
		{Node: id, Name: "instant.delivered", Value: n.stats.Delivered},
		{Node: id, Name: "instant.suppressed", Value: n.stats.Suppressed},
	}
}
