package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic recorder clock for tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += time.Microsecond
	return c.t
}

func newTestRecorder(t *testing.T, sink TraceSink) *Recorder {
	t.Helper()
	clk := &fakeClock{}
	r, err := New(Config{Node: 1, Now: clk.Now, Sink: sink})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	// Every method must be callable on a nil recorder.
	r.Trace(ScopeCore, EvReadStart, 1, 1, 42, "")
	r.Observe("x", time.Millisecond)
	r.Register(nil)
	if r.ForNode(7) != nil {
		t.Fatal("ForNode on nil recorder should be nil")
	}
	if r.Node() != 0 {
		t.Fatal("Node on nil recorder should be 0")
	}
	if r.Tracing() {
		t.Fatal("nil recorder must not report tracing")
	}
	if got := r.Samples(); got != nil {
		t.Fatalf("Samples on nil recorder = %v, want nil", got)
	}
	if got := r.Histogram("x"); got != nil {
		t.Fatalf("Histogram on nil recorder = %v, want nil", got)
	}
	var buf bytes.Buffer
	r.DumpMetrics(&buf)
	if buf.Len() != 0 {
		t.Fatalf("DumpMetrics on nil recorder wrote %q", buf.String())
	}
}

func TestNilSinkDropsTraces(t *testing.T) {
	r := newTestRecorder(t, nil)
	if r.Tracing() {
		t.Fatal("recorder without sink must not report tracing")
	}
	r.Trace(ScopeCore, EvReadStart, 1, 1, 0, "")
	// Metrics still work without a sink.
	r.Observe("lat", 3*time.Millisecond)
	if h := r.Histogram("lat"); h == nil || h.N() != 1 {
		t.Fatalf("Histogram without sink = %v", h)
	}
}

func TestTraceEmissionAndForNode(t *testing.T) {
	sink := NewMemorySink(0)
	r := newTestRecorder(t, sink)
	r2 := r.ForNode(2)
	r.Trace(ScopeCore, EvReadStart, 1, 5, 100, "")
	r2.Trace(ScopeTotem, EvTokenRecv, 0, 9, 0, "")
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Node != 1 || evs[0].Name != EvReadStart || evs[0].Round != 5 || evs[0].Value != 100 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Node != 2 || evs[1].Scope != ScopeTotem || evs[1].Round != 9 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if !(evs[0].T < evs[1].T) {
		t.Fatalf("timestamps not increasing: %v then %v", evs[0].T, evs[1].T)
	}
	if r2.Node() != 2 {
		t.Fatalf("ForNode(2).Node() = %d", r2.Node())
	}
}

func TestConcurrentRecording(t *testing.T) {
	sink := NewMemorySink(0)
	r := newTestRecorder(t, sink)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			child := r.ForNode(uint32(id + 1))
			for i := 0; i < perWorker; i++ {
				child.Trace(ScopeTotem, EvTokenRecv, 0, uint64(i), 0, "")
				child.Observe("lat", time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := sink.Len(); got != workers*perWorker {
		t.Fatalf("sink has %d events, want %d", got, workers*perWorker)
	}
	if h := r.Histogram("lat"); h == nil || h.N() != workers*perWorker {
		t.Fatalf("histogram N = %v, want %d", h, workers*perWorker)
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink, err := NewJSONLinesSink(&buf)
	if err != nil {
		t.Fatalf("NewJSONLinesSink: %v", err)
	}
	r := newTestRecorder(t, sink)
	want := []Event{
		{Node: 1, Scope: ScopeCore, Name: EvReadStart, Thread: 1, Round: 3, Value: 42},
		{Node: 1, Scope: ScopeCore, Name: EvFirstOrdered, Thread: 1, Round: 3, Value: 99, Attr: "n2"},
		{Node: 1, Scope: ScopeTotem, Name: EvTokenRecv, Round: 17},
	}
	for _, ev := range want {
		r.Trace(ev.Scope, ev.Name, ev.Thread, ev.Round, ev.Value, ev.Attr)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if sink.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", sink.Count(), len(want))
	}
	got, err := DecodeJSONLines(&buf)
	if err != nil {
		t.Fatalf("DecodeJSONLines: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g := got[i]
		w := want[i]
		if g.T == 0 {
			t.Fatalf("event %d lost timestamp", i)
		}
		g.T = 0
		if g != w {
			t.Fatalf("event %d round-trip = %+v, want %+v", i, g, w)
		}
	}
}

func TestDecodeJSONLinesRejectsGarbage(t *testing.T) {
	in := strings.NewReader("{\"node\":1,\"scope\":\"core\",\"event\":\"read_start\",\"t\":1}\nnot json\n")
	if _, err := DecodeJSONLines(in); err == nil {
		t.Fatal("want error on malformed line")
	}
}

func TestMemorySinkLimit(t *testing.T) {
	sink := NewMemorySink(3)
	for i := 0; i < 10; i++ {
		sink.Emit(Event{Round: uint64(i)})
	}
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Round != want {
			t.Fatalf("event %d round = %d, want %d", i, ev.Round, want)
		}
	}
}

func TestMultiSink(t *testing.T) {
	a := NewMemorySink(0)
	b := NewMemorySink(0)
	if MultiSink(nil, nil) != nil {
		t.Fatal("MultiSink of nils should be nil")
	}
	if MultiSink(a, nil) != TraceSink(a) {
		t.Fatal("MultiSink of one sink should return it directly")
	}
	ms := MultiSink(a, b)
	ms.Emit(Event{Name: "x"})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed: a=%d b=%d", a.Len(), b.Len())
	}
}

type fakeSource struct {
	node    uint32
	samples []Sample
}

func (s fakeSource) ObsNode() uint32      { return s.node }
func (s fakeSource) ObsSamples() []Sample { return s.samples }

func TestRegistryGatherSorted(t *testing.T) {
	r := newTestRecorder(t, nil)
	r.Register(fakeSource{node: 2, samples: []Sample{
		{Node: 2, Name: "totem.tokens_handled", Value: 7},
		{Node: 2, Name: "core.rounds_initiated", Value: 3},
	}})
	r.Register(fakeSource{node: 1, samples: []Sample{
		{Node: 1, Name: "totem.tokens_handled", Value: 5},
	}})
	got := r.Samples()
	if len(got) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(got))
	}
	wantOrder := []Sample{
		{Node: 1, Name: "totem.tokens_handled", Value: 5},
		{Node: 2, Name: "core.rounds_initiated", Value: 3},
		{Node: 2, Name: "totem.tokens_handled", Value: 7},
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], wantOrder[i])
		}
	}
	m := SampleMap(got)
	if m["totem.tokens_handled"] != 12 {
		t.Fatalf("SampleMap sum = %d, want 12", m["totem.tokens_handled"])
	}
}

func TestDumpMetrics(t *testing.T) {
	r := newTestRecorder(t, nil)
	r.Register(fakeSource{node: 1, samples: []Sample{
		{Node: 1, Name: "core.ccs_sent", Value: 4},
	}})
	r.Observe("rpc.invoke_latency", 2*time.Millisecond)
	var buf bytes.Buffer
	r.DumpMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, "core.ccs_sent") || !strings.Contains(out, "4") {
		t.Fatalf("dump missing counter: %q", out)
	}
	if !strings.Contains(out, "rpc.invoke_latency") {
		t.Fatalf("dump missing histogram: %q", out)
	}
}

func TestVerifyRound(t *testing.T) {
	mk := func(name string) Event {
		return Event{Node: 1, Scope: ScopeCore, Name: name, Thread: 1, Round: 4}
	}
	var evs []Event
	// Interleave noise from other nodes, threads, and scopes.
	evs = append(evs, Event{Node: 2, Scope: ScopeCore, Name: EvReadStart, Thread: 1, Round: 4})
	for _, name := range RoundLifecycle {
		evs = append(evs, Event{Node: 1, Scope: ScopeTotem, Name: EvTokenRecv, Round: 99})
		evs = append(evs, mk(name))
	}
	got, err := VerifyRound(evs, 1, 1, 4)
	if err != nil {
		t.Fatalf("VerifyRound: %v", err)
	}
	if len(got) != len(RoundLifecycle) {
		t.Fatalf("matched %d events, want %d", len(got), len(RoundLifecycle))
	}
	for i, name := range RoundLifecycle {
		if got[i].Name != name {
			t.Fatalf("event %d = %q, want %q", i, got[i].Name, name)
		}
	}
	// Wrong round: incomplete.
	if _, err := VerifyRound(evs, 1, 1, 5); err == nil {
		t.Fatal("want error for missing round")
	}
	// Out-of-order lifecycle: incomplete.
	swapped := make([]Event, len(evs))
	copy(swapped, evs)
	// Find adopted and read_done and swap them.
	var ai, di int
	for i, ev := range swapped {
		if ev.Node == 1 && ev.Scope == ScopeCore {
			if ev.Name == EvAdopted {
				ai = i
			}
			if ev.Name == EvReadDone {
				di = i
			}
		}
	}
	swapped[ai], swapped[di] = swapped[di], swapped[ai]
	if _, err := VerifyRound(swapped, 1, 1, 4); err == nil {
		t.Fatal("want error for out-of-order lifecycle")
	}
}

func TestLoggerSink(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf)
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	l.Log("status", F("view", 3), F("msg", "two words"))
	r := newTestRecorder(t, l.Sink())
	r.Trace(ScopeCore, EvAdopted, 1, 2, 555, "")
	out := buf.String()
	if !strings.Contains(out, "event=status view=3 msg=\"two words\"") {
		t.Fatalf("log line missing: %q", out)
	}
	if !strings.Contains(out, "event=adopted") || !strings.Contains(out, "round=2") || !strings.Contains(out, "value=555") {
		t.Fatalf("trace line missing: %q", out)
	}
}

func TestHistogramCopyIsolation(t *testing.T) {
	r := newTestRecorder(t, nil)
	r.Observe("h", time.Second)
	cp := r.Histogram("h")
	cp.Add(2 * time.Second)
	if h := r.Histogram("h"); h.N() != 1 {
		t.Fatalf("internal histogram mutated: N=%d", h.N())
	}
}
