// Package obs is the unified observability layer of the stack: structured
// trace events that follow one CCS round across every protocol layer
// (read_start → proposal_queued → ccs_sent → first_ordered → adopted →
// read_done, with token-circulation and safe-delivery-wait sub-spans from
// the ordering layer), plus a metrics registry that gathers every layer's
// counters under one canonical naming scheme (core.*, gcs.*, repl.*, rpc.*,
// and per-orderer totem.*, seq.*, instant.*).
//
// The central handle is the Recorder. A nil *Recorder is a valid, fully
// disabled recorder: every method is a no-op behind a single nil check, so
// instrumented hot paths (the token loop, the CCS round machinery) pay
// nothing when observability is off — the Figure 5 latency numbers are
// unchanged. The package depends only on the standard library and
// internal/stats.
package obs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cts/internal/stats"
)

// Scope names stamped into trace events and metric samples, one per
// instrumented layer. Each orderer implementation gets its own scope
// (ScopeTotem, ScopeSeq, ScopeInstant), so traces and metric names identify
// which ordering protocol produced them.
const (
	ScopeCore    = "core"
	ScopeTotem   = "totem"
	ScopeSeq     = "seq"
	ScopeInstant = "instant"
	ScopeGCS     = "gcs"
	ScopeRepl    = "repl"
	ScopeRPC     = "rpc"
)

// Round lifecycle events emitted by the consistent time service (ScopeCore).
// A round initiated at a replica emits them in RoundLifecycle order; rounds
// satisfied by an already-delivered CCS message replace the middle of the
// span with EvFromBuffer.
const (
	// EvReadStart marks a logical thread entering get_grp_clock_time; Value
	// carries the local clock value the replica is about to propose.
	EvReadStart = "read_start"
	// EvProposalQueued marks the decision to compete in the round.
	EvProposalQueued = "proposal_queued"
	// EvCCSSent marks the CCS proposal's acceptance into the totally-ordered
	// send path (it reaches the wire at the next token visit).
	EvCCSSent = "ccs_sent"
	// EvCCSSuppressed marks a queued proposal withdrawn before reaching the
	// wire (another replica's message won the round).
	EvCCSSuppressed = "ccs_suppressed"
	// EvFromBuffer marks a round satisfied from the input buffer without
	// sending (the message was delivered before the thread asked).
	EvFromBuffer = "from_buffer"
	// EvFirstOrdered marks the delivery of the round's first CCS message —
	// the moment the group clock value is decided. Value carries the decided
	// value; Attr names the winning sender.
	EvFirstOrdered = "first_ordered"
	// EvAdopted marks this replica re-deriving its offset from the decided
	// value; Value carries the adopted group clock value.
	EvAdopted = "adopted"
	// EvReadDone marks the blocked thread resuming with the group clock.
	EvReadDone = "read_done"
	// EvLeaseInvalidated marks the lease plane discarding its snapshot on a
	// membership change; Round carries the new lease epoch and Value the new
	// view size.
	EvLeaseInvalidated = "lease_invalidated"
	// EvBatchSent marks a CCS-batch message entering the totally-ordered send
	// path, carrying proposals for several coalesced rounds. Round carries the
	// sender-local batch id (the b<id> attr on the member rounds' ccs_sent and
	// first_ordered events) and Value the number of entries.
	EvBatchSent = "ccs_batch_sent"
)

// Sub-span events emitted by the ordering layer (ScopeTotem for the ring,
// ScopeSeq for the leader sequencer). Round carries the token sequence
// number (EvTokenRecv, totem only) or the message sequence number (safe
// wait pair); the time between EvSafeWait and EvSafeDelivered for one
// sequence number is the safe-delivery wait the paper attributes its ≈300µs
// overhead to.
const (
	EvTokenRecv     = "token_recv"
	EvSafeWait      = "safe_wait"
	EvSafeDelivered = "safe_delivered"
)

// RoundLifecycle is the ordered event sequence of a complete competed round
// at the replica that initiated it.
var RoundLifecycle = []string{
	EvReadStart, EvProposalQueued, EvCCSSent, EvFirstOrdered, EvAdopted, EvReadDone,
}

// Event is one structured trace event. Events are self-describing and
// flat — no maps, no nesting — so emission is one struct copy and JSON-lines
// export round-trips losslessly.
type Event struct {
	// T is the recorder clock's reading at emission (virtual time in
	// simulation, time since start for real deployments).
	T time.Duration `json:"t"`
	// Node is the emitting processor's transport identity.
	Node uint32 `json:"node"`
	// Scope names the emitting layer (ScopeCore, ScopeTotem, ...).
	Scope string `json:"scope"`
	// Name is the event name (EvReadStart, EvTokenRecv, ...).
	Name string `json:"event"`
	// Thread is the logical thread of the round, when applicable.
	Thread uint64 `json:"thread,omitempty"`
	// Round is the round number (ScopeCore), token sequence (EvTokenRecv)
	// or message sequence (safe-wait pair).
	Round uint64 `json:"round,omitempty"`
	// Value is an event-specific payload, typically a clock value in
	// nanoseconds.
	Value int64 `json:"value,omitempty"`
	// Attr is an event-specific tag (the winning sender, "special", ...).
	Attr string `json:"attr,omitempty"`
}

// Config configures a Recorder.
type Config struct {
	// Node is the transport identity stamped into emitted events. Child
	// recorders for other nodes are derived with ForNode.
	Node uint32
	// Now supplies event timestamps. Defaults to time since New.
	Now func() time.Duration
	// Sink receives trace events. A nil Sink disables tracing; the metrics
	// registry still works.
	Sink TraceSink
}

// Validate checks cfg and fills defaults, returning the effective config.
func (c Config) Validate() (Config, error) {
	if c.Now == nil {
		start := time.Now()
		c.Now = func() time.Duration { return time.Since(start) }
	}
	return c, nil
}

// recorderCore is the state shared by a Recorder and its ForNode children.
type recorderCore struct {
	now  func() time.Duration
	sink TraceSink
	reg  Registry

	mu    sync.Mutex
	hists map[string]*stats.Durations
}

// Recorder is the observability handle plumbed through the stack. A nil
// *Recorder is valid and fully disabled: every method no-ops. Recorders for
// the other nodes of an in-process deployment share sinks and registry via
// ForNode.
type Recorder struct {
	node uint32
	core *recorderCore
}

// New creates a recorder.
func New(cfg Config) (*Recorder, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Recorder{
		node: cfg.Node,
		core: &recorderCore{
			now:   cfg.Now,
			sink:  cfg.Sink,
			hists: make(map[string]*stats.Durations),
		},
	}, nil
}

// ForNode derives a recorder stamping events and registrations with the
// given node identity, sharing the sink, registry, clock and histograms.
// ForNode of a nil recorder is nil.
func (r *Recorder) ForNode(node uint32) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{node: node, core: r.core}
}

// Node reports the identity stamped into this recorder's events.
func (r *Recorder) Node() uint32 {
	if r == nil {
		return 0
	}
	return r.node
}

// Tracing reports whether trace events are being consumed. Instrumentation
// with non-trivial argument preparation can use it as a cheap guard.
func (r *Recorder) Tracing() bool {
	return r != nil && r.core.sink != nil
}

// Trace emits one trace event. It is safe on a nil recorder and from any
// goroutine; sinks serialize internally.
func (r *Recorder) Trace(scope, event string, thread, round uint64, value int64, attr string) {
	if r == nil {
		return
	}
	sink := r.core.sink
	if sink == nil {
		return
	}
	sink.Emit(Event{
		T:      r.core.now(),
		Node:   r.node,
		Scope:  scope,
		Name:   event,
		Thread: thread,
		Round:  round,
		Value:  value,
		Attr:   attr,
	})
}

// Observe records one duration observation into the named histogram
// (e.g. "rpc.invoke_latency"). Safe on a nil recorder and concurrently.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	c := r.core
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &stats.Durations{}
		c.hists[name] = h
	}
	h.Add(d)
	c.mu.Unlock()
}

// HistogramNames lists the histograms recorded so far, sorted.
func (r *Recorder) HistogramNames() []string {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	names := make([]string, 0, len(c.hists))
	for n := range c.hists {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// Histogram returns a copy of the named duration histogram, or nil if no
// observation has been recorded under that name.
func (r *Recorder) Histogram(name string) *stats.Durations {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hists[name]
	if h == nil {
		return nil
	}
	cp := &stats.Durations{}
	for _, v := range h.Values() {
		cp.Add(v)
	}
	return cp
}

// Register adds a metrics source to the recorder's registry. Safe on a nil
// recorder (the registration is dropped).
func (r *Recorder) Register(s Source) {
	if r == nil || s == nil {
		return
	}
	r.core.reg.Register(s)
}

// Samples gathers every registered source. Sources expose loop-confined
// counters, so Samples must run on (or posted to) the runtime loop the
// sources live on — exactly like the per-package snapshot methods it
// replaces.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.core.reg.Gather()
}

// DumpMetrics writes a text metrics dump — every registered source's
// counters plus histogram summaries — to w. Loop-only, like Samples.
func (r *Recorder) DumpMetrics(w io.Writer) {
	if r == nil {
		return
	}
	for _, s := range r.Samples() {
		fmt.Fprintf(w, "node %-3d %-28s %d\n", s.Node, s.Name, s.Value)
	}
	for _, name := range r.HistogramNames() {
		fmt.Fprintf(w, "hist     %-28s %s\n", name, r.Histogram(name).Summary())
	}
}

// VerifyRound checks that evs contains, in emission order, the complete
// RoundLifecycle for the given (node, thread, round) and returns the
// matching events. Unrelated events interleave freely. It is the assertion
// behind the "complete round span" acceptance test and usable on decoded
// JSON-lines traces.
func VerifyRound(evs []Event, node uint32, thread, round uint64) ([]Event, error) {
	want := RoundLifecycle
	got := make([]Event, 0, len(want))
	i := 0
	for _, ev := range evs {
		if i >= len(want) {
			break
		}
		if ev.Scope != ScopeCore || ev.Node != node ||
			ev.Thread != thread || ev.Round != round {
			continue
		}
		if ev.Name == want[i] {
			got = append(got, ev)
			i++
		}
	}
	if i < len(want) {
		return got, fmt.Errorf(
			"obs: round (node %d, thread %d, round %d) incomplete: missing %q after %d/%d lifecycle events",
			node, thread, round, want[i], i, len(want))
	}
	return got, nil
}

// ErrNoSink is reported by sink constructors given a nil destination.
var ErrNoSink = errors.New("obs: nil destination")
