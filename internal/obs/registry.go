package obs

import (
	"sort"
	"sync"
)

// Sample is one gathered metric value. Names follow the stack's canonical
// scheme — "<scope>.<metric>", e.g. "totem.tokens_handled",
// "core.rounds_initiated", "repl.replies_suppressed" — so counters from
// every layer land in one flat, greppable namespace.
type Sample struct {
	// Node is the transport identity of the processor the sample describes.
	Node uint32
	// Name is the canonical metric name, scope-prefixed.
	Name string
	// Value is the counter or gauge reading.
	Value uint64
}

// Source exposes one component's metrics to the registry. Implementations
// (totem.Node, gcs.Stack, replication.Manager, core.TimeService, rpc.Client)
// read loop-confined counters, so ObsSamples must be called on the
// component's runtime loop — the registry inherits that contract.
type Source interface {
	// ObsNode reports the processor identity the samples belong to.
	ObsNode() uint32
	// ObsSamples returns the component's current counters under canonical
	// scope-prefixed names. Loop-only.
	ObsSamples() []Sample
}

// Registry collects metric sources from every layer of the stack — the
// single stats surface, superseding the divergent per-package snapshot
// accessors the layers used to carry. The zero value is ready to use.
type Registry struct {
	mu      sync.Mutex
	sources []Source
}

// Register adds a source. Safe from any goroutine.
func (g *Registry) Register(s Source) {
	if s == nil {
		return
	}
	g.mu.Lock()
	g.sources = append(g.sources, s)
	g.mu.Unlock()
}

// Gather reads every registered source and returns the samples sorted by
// (node, name). Sources are loop-confined; call Gather on (or posted to)
// their runtime loop.
func (g *Registry) Gather() []Sample {
	g.mu.Lock()
	sources := make([]Source, len(g.sources))
	copy(sources, g.sources)
	g.mu.Unlock()
	var out []Sample
	for _, s := range sources {
		out = append(out, s.ObsSamples()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SampleMap folds samples into a name → summed-value map across nodes,
// convenient for assertions and quick summaries.
func SampleMap(samples []Sample) map[string]uint64 {
	out := make(map[string]uint64, len(samples))
	for _, s := range samples {
		out[s.Name] += s.Value
	}
	return out
}
