package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// TraceSink consumes trace events. Implementations must be safe for
// concurrent Emit calls (recorders are shared across goroutines in real
// deployments).
type TraceSink interface {
	Emit(Event)
}

// MemorySink retains events in emission order, for tests and in-process
// analysis.
type MemorySink struct {
	mu    sync.Mutex
	evs   []Event
	limit int
}

// NewMemorySink creates a memory sink. limit bounds retained events (oldest
// dropped first); limit <= 0 retains everything.
func NewMemorySink(limit int) *MemorySink {
	return &MemorySink{limit: limit}
}

// Emit implements TraceSink.
func (s *MemorySink) Emit(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	if s.limit > 0 && len(s.evs) > s.limit {
		drop := len(s.evs) - s.limit
		s.evs = append(s.evs[:0], s.evs[drop:]...)
	}
	s.mu.Unlock()
}

// Events returns a copy of the retained events in emission order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.evs))
	copy(out, s.evs)
	return out
}

// Len reports the number of retained events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evs)
}

// JSONLinesSink writes one JSON object per event per line — the trace export
// format of ctsnode -trace and ctsbench -trace. Emission never fails the
// caller; the first write error is retained and reported by Err.
type JSONLinesSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int
	err error
}

// NewJSONLinesSink creates a JSON-lines sink writing to w.
func NewJSONLinesSink(w io.Writer) (*JSONLinesSink, error) {
	if w == nil {
		return nil, ErrNoSink
	}
	return &JSONLinesSink{w: bufio.NewWriter(w)}, nil
}

// Emit implements TraceSink.
func (s *JSONLinesSink) Emit(ev Event) {
	b, err := json.Marshal(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Flush drains buffered output to the underlying writer.
func (s *JSONLinesSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Count reports the number of events written so far.
func (s *JSONLinesSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err reports the first emission error, if any.
func (s *JSONLinesSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// DecodeJSONLines parses a JSON-lines trace back into events, in order.
// Blank lines are skipped; the first malformed line aborts with an error.
func DecodeJSONLines(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: trace read: %w", err)
	}
	return out, nil
}

// multiSink fans one event out to several sinks.
type multiSink []TraceSink

// MultiSink combines sinks; nil entries are dropped. It returns nil when no
// sink remains, which disables tracing entirely.
func MultiSink(sinks ...TraceSink) TraceSink {
	var ms multiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	default:
		return ms
	}
}

// Emit implements TraceSink.
func (ms multiSink) Emit(ev Event) {
	for _, s := range ms {
		s.Emit(ev)
	}
}

// Logger writes structured key=value lines — the replacement for the ad-hoc
// prints behind ctsnode -v. It is safe for concurrent use.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger creates a structured logger writing to w.
func NewLogger(w io.Writer) (*Logger, error) {
	if w == nil {
		return nil, ErrNoSink
	}
	return &Logger{w: w}, nil
}

// KV is one structured logging field.
type KV struct {
	K string
	V any
}

// F builds a logging field.
func F(k string, v any) KV { return KV{K: k, V: v} }

// Log writes one structured line: "event=<name> k=v k=v ...". Values render
// with %v; strings containing spaces are quoted.
func (l *Logger) Log(event string, fields ...KV) {
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(event)
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.K)
		b.WriteByte('=')
		s := fmt.Sprintf("%v", f.V)
		if strings.ContainsAny(s, " \t\"") {
			s = fmt.Sprintf("%q", s)
		}
		b.WriteString(s)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// loggerSink adapts a Logger into a TraceSink: each event becomes one
// structured line.
type loggerSink struct{ l *Logger }

// Sink returns a TraceSink that renders every trace event through the
// logger.
func (l *Logger) Sink() TraceSink { return loggerSink{l} }

// Emit implements TraceSink.
func (s loggerSink) Emit(ev Event) {
	fields := []KV{
		F("t", ev.T),
		F("node", ev.Node),
		F("scope", ev.Scope),
	}
	if ev.Thread != 0 {
		fields = append(fields, F("thread", ev.Thread))
	}
	if ev.Round != 0 {
		fields = append(fields, F("round", ev.Round))
	}
	if ev.Value != 0 {
		fields = append(fields, F("value", ev.Value))
	}
	if ev.Attr != "" {
		fields = append(fields, F("attr", ev.Attr))
	}
	s.l.Log(ev.Name, fields...)
}
