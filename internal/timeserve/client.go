package timeserve

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cts/internal/hwclock"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Targets are the replicas' timeserve addresses, in preference order.
	// Required (non-empty).
	Targets []string
	// Timeout is the per-attempt response deadline. Default 250ms.
	Timeout time.Duration
	// Attempts is the total number of query attempts across replicas before
	// giving up. Default 2 × len(Targets).
	Attempts int
	// CacheFor lets Now extrapolate a cached reading for this long before
	// going back to the network. Zero disables caching (every Now queries).
	CacheFor time.Duration
	// DriftPPM is the assumed rate error of the client's local clock, used
	// to widen the bound of extrapolated readings. Default 200 ppm.
	DriftPPM float64
	// Mono measures elapsed time for cache aging. Defaults to the machine's
	// monotonic clock (hwclock.Monotonic); tests inject a manual source.
	Mono hwclock.Source
	// IO selects the I/O path QueryBurst uses: IOAuto (batched syscalls
	// where the build supports them), IOSequential (one datagram per
	// syscall), or IOMmsg (require batching; Validate errors on builds
	// without it).
	IO IOMode
}

// Validate checks cfg and fills defaults.
func (c ClientConfig) Validate() (ClientConfig, error) {
	if len(c.Targets) == 0 {
		return c, errors.New("timeserve: ClientConfig.Targets is required")
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Attempts <= 0 {
		c.Attempts = 2 * len(c.Targets)
	}
	if c.DriftPPM < 0 {
		return c, fmt.Errorf("timeserve: ClientConfig.DriftPPM must not be negative (got %v)", c.DriftPPM)
	}
	if c.DriftPPM == 0 {
		c.DriftPPM = 200
	}
	if c.Mono == nil {
		c.Mono = hwclock.Monotonic()
	}
	if c.IO == IOMmsg && !mmsgSupported {
		return c, errors.New("timeserve: ClientConfig.IO \"mmsg\" is not supported on this platform")
	}
	return c, nil
}

// MaxBurst is the most request datagrams QueryBurst sends in one call.
const MaxBurst = 64

// ErrNoReplica is returned when every attempt timed out or was refused.
var ErrNoReplica = errors.New("timeserve: no replica answered from a valid lease")

// Client queries the replica group's timeserve frontends. It caches the last
// leased reading and extrapolates it locally for up to CacheFor, falling
// back to the network — and across replicas — when the cache is cold, the
// lease epoch changes, or a replica refuses. Readings returned by one Client
// never regress.
//
// A Client is NOT safe for concurrent use; create one per goroutine (they
// are cheap: one UDP socket per contacted target).
type Client struct {
	cfg   ClientConfig
	conns []*net.UDPConn // lazily dialed, index-aligned with cfg.Targets
	cur   int            // preferred target
	nonce uint64

	cached   Response
	cachedAt time.Duration // Mono reading anchoring the cached response
	hasCache bool
	floor    time.Duration // monotone guard over returned readings

	hits, misses uint64

	rbuf []byte
	wbuf []byte

	// Burst state: resps is the reused response slice QueryBurst returns
	// (valid until the next call), bursts the lazily built per-target
	// batched-I/O rings, mmsgFell whether a runtime probe proved the batched
	// syscalls unavailable (seccomp, exotic kernels) so bursts degraded to
	// the sequential path.
	resps      []Response
	bursts     []*clientBurst
	mmsgFell   bool
	mmsgProven bool
}

// NewClient returns a client over the given replica targets.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:    cfg,
		conns:  make([]*net.UDPConn, len(cfg.Targets)),
		bursts: make([]*clientBurst, len(cfg.Targets)),
		rbuf:   make([]byte, MaxDatagram),
		wbuf:   make([]byte, 0, MaxBatch*ReqSize),
	}, nil
}

// Now returns the group clock. It serves from the cached lease when fresh
// (widening the bound by the extrapolation drift), otherwise queries the
// replicas.
func (c *Client) Now() (Reading, error) {
	if c.hasCache && c.cfg.CacheFor > 0 {
		elapsed := c.cfg.Mono() - c.cachedAt
		if elapsed < c.cfg.CacheFor {
			c.hits++
			r := Reading{
				GroupClock: c.cached.Group + elapsed,
				Bound:      c.cached.Bound + time.Duration(float64(elapsed)*c.cfg.DriftPPM/1e6),
				Epoch:      c.cached.Epoch,
				Node:       c.cached.Node,
			}
			return c.monotone(r), nil
		}
	}
	c.misses++
	return c.Query()
}

// Query performs one network query, rotating across replicas on timeout or
// stale refusal, and refreshes the cache.
func (c *Client) Query() (Reading, error) {
	resps, err := c.exchange(1)
	if err != nil {
		return Reading{}, err
	}
	r := resps[0]
	c.cached = r
	c.cachedAt = c.cfg.Mono()
	c.hasCache = true
	return c.monotone(Reading{GroupClock: r.Group, Bound: r.Bound, Epoch: r.Epoch, Node: r.Node}), nil
}

// QueryBatch sends k queries in one datagram and returns the k leased
// responses. Load generators use it to amortize the per-datagram syscall
// cost. k must be in [1, MaxBatch].
func (c *Client) QueryBatch(k int) ([]Response, error) {
	if k < 1 || k > MaxBatch {
		return nil, fmt.Errorf("timeserve: batch size %d outside [1, %d]", k, MaxBatch)
	}
	return c.exchange(k)
}

// QueryBurst sends dgrams request datagrams of k queries each in one burst
// and collects the replies. It mirrors the server's batched receive path:
// on builds with sendmmsg/recvmmsg the whole burst goes to the kernel in one
// syscall (unless ClientConfig.IO forces the sequential path), driving the
// server into multi-datagram drains. The returned slice — valid until the
// next burst — holds every response that arrived before the deadline,
// including refusals (FlagStale); callers inspect Flags themselves. A target
// that returns nothing at all before the deadline rotates the client to the
// next replica, like Query. The cache is not touched.
func (c *Client) QueryBurst(dgrams, k int) ([]Response, error) {
	if dgrams < 1 || dgrams > MaxBurst {
		return nil, fmt.Errorf("timeserve: burst size %d outside [1, %d]", dgrams, MaxBurst)
	}
	if k < 1 || k > MaxBatch {
		return nil, fmt.Errorf("timeserve: batch size %d outside [1, %d]", k, MaxBatch)
	}
	var lastErr error = ErrNoReplica
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		resps, err := c.burstOnce(c.cur, dgrams, k)
		if err == nil {
			return resps, nil
		}
		lastErr = err
		c.cur = (c.cur + 1) % len(c.cfg.Targets)
	}
	return nil, lastErr
}

// IOPath names the I/O path bursts are using: "mmsg" while the batched
// syscalls are in play, "seq" when the build lacks them, the config forbids
// them, or a runtime probe fell back.
func (c *Client) IOPath() string {
	if mmsgSupported && c.cfg.IO != IOSequential && !c.mmsgFell {
		return "mmsg"
	}
	return "seq"
}

// burstOnce runs one burst against one target, preferring the batched path
// and degrading permanently to sequential writes if the syscalls prove
// unavailable.
func (c *Client) burstOnce(target, dgrams, k int) ([]Response, error) {
	conn, err := c.conn(target)
	if err != nil {
		return nil, err
	}
	base := c.nonce
	c.nonce += uint64(dgrams * k)
	_ = conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	if mmsgSupported && c.cfg.IO != IOSequential && !c.mmsgFell {
		b := c.burstState(target, conn)
		if b != nil {
			resps, ok, err := c.mmsgBurst(b, target, base, dgrams, k)
			if ok {
				return resps, err
			}
		}
		c.mmsgFell = true // no batched syscalls here: stay sequential
	}
	return c.seqBurst(conn, target, base, dgrams, k)
}

// seqBurst is the portable burst: dgrams writes, then reads until every
// datagram answered or the deadline fires. Responses outside the burst's
// nonce window (strays from earlier timed-out attempts) are discarded.
func (c *Client) seqBurst(conn *net.UDPConn, target int, base uint64, dgrams, k int) ([]Response, error) {
	for d := 0; d < dgrams; d++ {
		c.wbuf = c.wbuf[:0]
		for i := 0; i < k; i++ {
			c.wbuf = AppendRequest(c.wbuf, Request{Nonce: base + uint64(d*k+i)})
		}
		if _, err := conn.Write(c.wbuf); err != nil {
			return nil, fmt.Errorf("timeserve: send to %s: %w", c.cfg.Targets[target], err)
		}
	}
	c.resps = c.resps[:0]
	span := uint64(dgrams * k)
	got := 0
	for got < dgrams {
		n, err := conn.Read(c.rbuf)
		if err != nil {
			break // deadline: return whatever arrived
		}
		if c.appendWindow(c.rbuf[:n], base, span, k) {
			got++
		}
	}
	if len(c.resps) == 0 {
		return nil, fmt.Errorf("timeserve: burst to %s: %w", c.cfg.Targets[target], ErrNoReplica)
	}
	return c.resps, nil
}

// appendWindow parses one response datagram against the burst's nonce window
// and appends its responses to c.resps. It reports whether the datagram
// belonged to this burst; strays leave c.resps untouched.
func (c *Client) appendWindow(b []byte, base, span uint64, k int) bool {
	if len(b) == 0 || len(b)%RespSize != 0 || len(b) > k*RespSize {
		return false
	}
	mark := len(c.resps)
	for off := 0; off < len(b); off += RespSize {
		r, err := ParseResponse(b[off : off+RespSize])
		if err != nil || r.Nonce < base || r.Nonce >= base+span {
			c.resps = c.resps[:mark]
			return false
		}
		c.resps = append(c.resps, r)
	}
	return true
}

// CacheStats reports Now's cache hits and misses.
func (c *Client) CacheStats() (hits, misses uint64) { return c.hits, c.misses }

// Invalidate drops the cached lease (e.g. after the caller learns of an
// epoch change out of band).
func (c *Client) Invalidate() { c.hasCache = false }

// monotone clamps r so readings never regress, widening the bound by the
// clamp distance (the earlier reading's interval still covers true time).
func (c *Client) monotone(r Reading) Reading {
	if r.GroupClock < c.floor {
		r.Bound += c.floor - r.GroupClock
		r.GroupClock = c.floor
	} else {
		c.floor = r.GroupClock
	}
	return r
}

// exchange runs the retry-across-replicas loop: one request datagram with k
// queries, one response datagram back. A refusal (no valid lease at that
// replica) or timeout rotates to the next target.
func (c *Client) exchange(k int) ([]Response, error) {
	var lastErr error = ErrNoReplica
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		resps, err := c.exchangeOnce(c.cur, k)
		if err == nil {
			return resps, nil
		}
		lastErr = err
		c.cur = (c.cur + 1) % len(c.cfg.Targets)
	}
	return nil, lastErr
}

// errStale reports a replica that answered but holds no valid lease.
var errStale = errors.New("timeserve: replica refused (no valid lease)")

func (c *Client) exchangeOnce(target, k int) ([]Response, error) {
	conn, err := c.conn(target)
	if err != nil {
		return nil, err
	}
	base := c.nonce
	c.nonce += uint64(k)
	c.wbuf = c.wbuf[:0]
	for i := 0; i < k; i++ {
		c.wbuf = AppendRequest(c.wbuf, Request{Nonce: base + uint64(i)})
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(c.wbuf); err != nil {
		return nil, fmt.Errorf("timeserve: send to %s: %w", c.cfg.Targets[target], err)
	}
	for {
		n, err := conn.Read(c.rbuf)
		if err != nil {
			return nil, fmt.Errorf("timeserve: read from %s: %w", c.cfg.Targets[target], err)
		}
		resps, ok := c.parseBatch(c.rbuf[:n], base, k)
		if !ok {
			continue // stray datagram from an earlier timed-out attempt
		}
		for _, r := range resps {
			if !r.OK() {
				return nil, errStale
			}
		}
		return resps, nil
	}
}

// parseBatch validates one response datagram against the attempt's nonce
// window. It returns ok=false for datagrams belonging to other attempts.
func (c *Client) parseBatch(b []byte, base uint64, k int) ([]Response, bool) {
	if len(b) != k*RespSize {
		return nil, false
	}
	resps := make([]Response, 0, k)
	for off := 0; off < len(b); off += RespSize {
		r, err := ParseResponse(b[off : off+RespSize])
		if err != nil || r.Nonce < base || r.Nonce >= base+uint64(k) {
			return nil, false
		}
		resps = append(resps, r)
	}
	return resps, true
}

// conn lazily dials the target's socket.
func (c *Client) conn(i int) (*net.UDPConn, error) {
	if c.conns[i] != nil {
		return c.conns[i], nil
	}
	addr, err := net.ResolveUDPAddr("udp", c.cfg.Targets[i])
	if err != nil {
		return nil, fmt.Errorf("timeserve: resolve %s: %w", c.cfg.Targets[i], err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("timeserve: dial %s: %w", c.cfg.Targets[i], err)
	}
	c.conns[i] = conn
	return conn, nil
}

// Close releases the client's sockets.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
