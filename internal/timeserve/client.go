package timeserve

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cts/internal/hwclock"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Targets are the replicas' timeserve addresses, in preference order.
	// Required (non-empty).
	Targets []string
	// Timeout is the per-attempt response deadline. Default 250ms.
	Timeout time.Duration
	// Attempts is the total number of query attempts across replicas before
	// giving up. Default 2 × len(Targets).
	Attempts int
	// CacheFor lets Now extrapolate a cached reading for this long before
	// going back to the network. Zero disables caching (every Now queries).
	CacheFor time.Duration
	// DriftPPM is the assumed rate error of the client's local clock, used
	// to widen the bound of extrapolated readings. Default 200 ppm.
	DriftPPM float64
	// Mono measures elapsed time for cache aging. Defaults to the machine's
	// monotonic clock (hwclock.Monotonic); tests inject a manual source.
	Mono hwclock.Source
}

// Validate checks cfg and fills defaults.
func (c ClientConfig) Validate() (ClientConfig, error) {
	if len(c.Targets) == 0 {
		return c, errors.New("timeserve: ClientConfig.Targets is required")
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Attempts <= 0 {
		c.Attempts = 2 * len(c.Targets)
	}
	if c.DriftPPM < 0 {
		return c, fmt.Errorf("timeserve: ClientConfig.DriftPPM must not be negative (got %v)", c.DriftPPM)
	}
	if c.DriftPPM == 0 {
		c.DriftPPM = 200
	}
	if c.Mono == nil {
		c.Mono = hwclock.Monotonic()
	}
	return c, nil
}

// ErrNoReplica is returned when every attempt timed out or was refused.
var ErrNoReplica = errors.New("timeserve: no replica answered from a valid lease")

// Client queries the replica group's timeserve frontends. It caches the last
// leased reading and extrapolates it locally for up to CacheFor, falling
// back to the network — and across replicas — when the cache is cold, the
// lease epoch changes, or a replica refuses. Readings returned by one Client
// never regress.
//
// A Client is NOT safe for concurrent use; create one per goroutine (they
// are cheap: one UDP socket per contacted target).
type Client struct {
	cfg   ClientConfig
	conns []*net.UDPConn // lazily dialed, index-aligned with cfg.Targets
	cur   int            // preferred target
	nonce uint64

	cached   Response
	cachedAt time.Duration // Mono reading anchoring the cached response
	hasCache bool
	floor    time.Duration // monotone guard over returned readings

	hits, misses uint64

	rbuf []byte
	wbuf []byte
}

// NewClient returns a client over the given replica targets.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:   cfg,
		conns: make([]*net.UDPConn, len(cfg.Targets)),
		rbuf:  make([]byte, MaxDatagram),
		wbuf:  make([]byte, 0, MaxBatch*ReqSize),
	}, nil
}

// Now returns the group clock. It serves from the cached lease when fresh
// (widening the bound by the extrapolation drift), otherwise queries the
// replicas.
func (c *Client) Now() (Reading, error) {
	if c.hasCache && c.cfg.CacheFor > 0 {
		elapsed := c.cfg.Mono() - c.cachedAt
		if elapsed < c.cfg.CacheFor {
			c.hits++
			r := Reading{
				GroupClock: c.cached.Group + elapsed,
				Bound:      c.cached.Bound + time.Duration(float64(elapsed)*c.cfg.DriftPPM/1e6),
				Epoch:      c.cached.Epoch,
				Node:       c.cached.Node,
			}
			return c.monotone(r), nil
		}
	}
	c.misses++
	return c.Query()
}

// Query performs one network query, rotating across replicas on timeout or
// stale refusal, and refreshes the cache.
func (c *Client) Query() (Reading, error) {
	resps, err := c.exchange(1)
	if err != nil {
		return Reading{}, err
	}
	r := resps[0]
	c.cached = r
	c.cachedAt = c.cfg.Mono()
	c.hasCache = true
	return c.monotone(Reading{GroupClock: r.Group, Bound: r.Bound, Epoch: r.Epoch, Node: r.Node}), nil
}

// QueryBatch sends k queries in one datagram and returns the k leased
// responses. Load generators use it to amortize the per-datagram syscall
// cost. k must be in [1, MaxBatch].
func (c *Client) QueryBatch(k int) ([]Response, error) {
	if k < 1 || k > MaxBatch {
		return nil, fmt.Errorf("timeserve: batch size %d outside [1, %d]", k, MaxBatch)
	}
	return c.exchange(k)
}

// CacheStats reports Now's cache hits and misses.
func (c *Client) CacheStats() (hits, misses uint64) { return c.hits, c.misses }

// Invalidate drops the cached lease (e.g. after the caller learns of an
// epoch change out of band).
func (c *Client) Invalidate() { c.hasCache = false }

// monotone clamps r so readings never regress, widening the bound by the
// clamp distance (the earlier reading's interval still covers true time).
func (c *Client) monotone(r Reading) Reading {
	if r.GroupClock < c.floor {
		r.Bound += c.floor - r.GroupClock
		r.GroupClock = c.floor
	} else {
		c.floor = r.GroupClock
	}
	return r
}

// exchange runs the retry-across-replicas loop: one request datagram with k
// queries, one response datagram back. A refusal (no valid lease at that
// replica) or timeout rotates to the next target.
func (c *Client) exchange(k int) ([]Response, error) {
	var lastErr error = ErrNoReplica
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		resps, err := c.exchangeOnce(c.cur, k)
		if err == nil {
			return resps, nil
		}
		lastErr = err
		c.cur = (c.cur + 1) % len(c.cfg.Targets)
	}
	return nil, lastErr
}

// errStale reports a replica that answered but holds no valid lease.
var errStale = errors.New("timeserve: replica refused (no valid lease)")

func (c *Client) exchangeOnce(target, k int) ([]Response, error) {
	conn, err := c.conn(target)
	if err != nil {
		return nil, err
	}
	base := c.nonce
	c.nonce += uint64(k)
	c.wbuf = c.wbuf[:0]
	for i := 0; i < k; i++ {
		c.wbuf = AppendRequest(c.wbuf, Request{Nonce: base + uint64(i)})
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(c.wbuf); err != nil {
		return nil, fmt.Errorf("timeserve: send to %s: %w", c.cfg.Targets[target], err)
	}
	for {
		n, err := conn.Read(c.rbuf)
		if err != nil {
			return nil, fmt.Errorf("timeserve: read from %s: %w", c.cfg.Targets[target], err)
		}
		resps, ok := c.parseBatch(c.rbuf[:n], base, k)
		if !ok {
			continue // stray datagram from an earlier timed-out attempt
		}
		for _, r := range resps {
			if !r.OK() {
				return nil, errStale
			}
		}
		return resps, nil
	}
}

// parseBatch validates one response datagram against the attempt's nonce
// window. It returns ok=false for datagrams belonging to other attempts.
func (c *Client) parseBatch(b []byte, base uint64, k int) ([]Response, bool) {
	if len(b) != k*RespSize {
		return nil, false
	}
	resps := make([]Response, 0, k)
	for off := 0; off < len(b); off += RespSize {
		r, err := ParseResponse(b[off : off+RespSize])
		if err != nil || r.Nonce < base || r.Nonce >= base+uint64(k) {
			return nil, false
		}
		resps = append(resps, r)
	}
	return resps, true
}

// conn lazily dials the target's socket.
func (c *Client) conn(i int) (*net.UDPConn, error) {
	if c.conns[i] != nil {
		return c.conns[i], nil
	}
	addr, err := net.ResolveUDPAddr("udp", c.cfg.Targets[i])
	if err != nil {
		return nil, fmt.Errorf("timeserve: resolve %s: %w", c.cfg.Targets[i], err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("timeserve: dial %s: %w", c.cfg.Targets[i], err)
	}
	c.conns[i] = conn
	return conn, nil
}

// Close releases the client's sockets.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
