package timeserve

import (
	"testing"

	"cts/internal/testutil"
)

// TestMain fails the package if any test leaves goroutines running; server
// responder loops and client sockets must be closed by the test that opened
// them.
func TestMain(m *testing.M) { testutil.Main(m) }
