//go:build !linux

package timeserve

import "syscall"

// This platform has no portable SO_REUSEPORT path; shards fall back to
// sharing one socket (ReadFrom is safe for concurrent use).
const reusePortAvailable = false

func reusePortControl(network, address string, c syscall.RawConn) error {
	return nil
}
