//go:build linux && amd64

package timeserve

// Syscall numbers for the batched UDP path. SYS_RECVMMSG is in the stdlib
// syscall table for linux/amd64, but the table was frozen before sendmmsg
// landed (kernel 3.0), so its number is spelled out here — stable x86_64 ABI,
// same approach as the soReusePort constant in reuseport_linux.go.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
