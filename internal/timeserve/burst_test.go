package timeserve

import (
	"encoding/hex"
	"net"
	"sort"
	"testing"
	"time"
)

// startIOServer starts a test server with an explicit I/O mode.
func startIOServer(t *testing.T, src LeaseSource, node uint32, io IOMode) *Server {
	t.Helper()
	srv, err := Start(Config{Addr: "127.0.0.1:0", Node: node, Source: src, IO: io})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// sendAndCollect fires the raw datagrams at addr and returns every response
// datagram (hex-encoded, sorted) that arrives before 150ms of silence.
func sendAndCollect(t *testing.T, addr net.Addr, dgrams [][]byte) []string {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, d := range dgrams {
		if _, err := conn.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	buf := make([]byte, MaxDatagram)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			break // silence: the server is done answering
		}
		got = append(got, hex.EncodeToString(buf[:n]))
	}
	sort.Strings(got)
	return got
}

// reqs builds one request datagram holding the given nonces; corrupt nonces
// (flagged via badMagic) get their magic byte smashed.
func reqs(nonces []uint64, badMagic map[int]bool) []byte {
	var b []byte
	for i, n := range nonces {
		off := len(b)
		b = AppendRequest(b, Request{Nonce: n, Echo: n})
		if badMagic[i] {
			b[off] = 0xFF
		}
	}
	return b
}

func seqNonces(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// TestMmsgSeqEquivalence replays the same request streams through the batched
// and the sequential serve paths and asserts byte-identical response sets and
// identical counters. Conforming datagrams (≤ MaxBatch requests) must be
// indistinguishable between the two paths.
func TestMmsgSeqEquivalence(t *testing.T) {
	over := make([]uint64, MaxBatch+5)
	for i := range over {
		over[i] = uint64(1000 + i)
	}
	cases := []struct {
		name   string
		lease  bool
		dgrams [][]byte
	}{
		{"single-query", true, [][]byte{reqs([]uint64{1}, nil)}},
		{"full-batch", true, [][]byte{reqs(seqNonces(10, MaxBatch), nil)}},
		{"multi-datagram", true, [][]byte{
			reqs(seqNonces(100, 4), nil),
			reqs(seqNonces(200, 4), nil),
			reqs(seqNonces(300, 4), nil),
			reqs(seqNonces(400, 4), nil),
			reqs(seqNonces(500, 4), nil),
			reqs(seqNonces(600, 4), nil),
			reqs(seqNonces(700, 4), nil),
			reqs(seqNonces(800, 4), nil),
		}},
		{"runt-then-valid", true, [][]byte{{1, 2, 3}, reqs([]uint64{9}, nil)}},
		{"bad-magic-mid-batch", true, [][]byte{reqs(seqNonces(40, 3), map[int]bool{1: true})}},
		{"over-batch", true, [][]byte{reqs(over, nil)}},
		{"stale-refusal", false, [][]byte{reqs(seqNonces(70, 8), nil)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &fakeSource{}
			if tc.lease {
				src.set(Reading{GroupClock: 9 * time.Second, Bound: 33 * time.Microsecond, Epoch: 5})
			}
			seq := startIOServer(t, src, 3, IOSequential)
			auto := startIOServer(t, src, 3, IOAuto)

			seqResp := sendAndCollect(t, seq.Addr(), tc.dgrams)
			autoResp := sendAndCollect(t, auto.Addr(), tc.dgrams)
			if len(seqResp) != len(autoResp) {
				t.Fatalf("response count: seq=%d mmsg=%d", len(seqResp), len(autoResp))
			}
			for i := range seqResp {
				if seqResp[i] != autoResp[i] {
					t.Fatalf("response %d differs:\nseq  %s\nmmsg %s", i, seqResp[i], autoResp[i])
				}
			}

			// Counters must agree exactly (poll briefly: drops are charged
			// after the reply goes out).
			deadline := time.Now().Add(2 * time.Second)
			for {
				q1, h1, s1, d1 := seq.Totals()
				q2, h2, s2, d2 := auto.Totals()
				if q1 == q2 && h1 == h2 && s1 == s2 && d1 == d2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("totals diverge: seq=%d/%d/%d/%d mmsg=%d/%d/%d/%d",
						q1, h1, s1, d1, q2, h2, s2, d2)
				}
				time.Sleep(2 * time.Millisecond)
			}
			if MmsgSupported() {
				if got := auto.IOPath(); got != "mmsg" {
					t.Fatalf("auto server IOPath = %q, want mmsg", got)
				}
				if auto.mmsgDrains.Load() == 0 && len(autoResp) > 0 {
					t.Fatal("auto server answered without a single mmsg drain")
				}
			}
			if got := seq.IOPath(); got != "seq" {
				t.Fatalf("seq server IOPath = %q, want seq", got)
			}
		})
	}
}

func TestQueryBurst(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 4})
	srv := startTestServer(t, src, 9)

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const dgrams, k = 8, 4
	resps, err := cli.QueryBurst(dgrams, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != dgrams*k {
		t.Fatalf("got %d responses, want %d", len(resps), dgrams*k)
	}
	seen := make(map[uint64]bool)
	for _, r := range resps {
		if !r.OK() || r.Epoch != 4 || r.Node != 9 {
			t.Fatalf("bad burst response %+v", r)
		}
		if seen[r.Nonce] {
			t.Fatalf("duplicate nonce %d", r.Nonce)
		}
		seen[r.Nonce] = true
	}
	if queries, hit, _, _ := srv.Totals(); queries != dgrams*k || hit != dgrams*k {
		t.Fatalf("totals queries=%d hit=%d, want %d", queries, hit, dgrams*k)
	}
	want := "seq"
	if MmsgSupported() {
		want = "mmsg"
	}
	if got := cli.IOPath(); got != want {
		t.Fatalf("client IOPath = %q, want %q", got, want)
	}
}

func TestQueryBurstSequentialForced(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 2})
	srv := startIOServer(t, src, 5, IOSequential)

	cli, err := NewClient(ClientConfig{
		Targets: []string{srv.Addr().String()},
		Timeout: time.Second,
		IO:      IOSequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if got := cli.IOPath(); got != "seq" {
		t.Fatalf("client IOPath = %q, want seq", got)
	}
	resps, err := cli.QueryBurst(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 32 {
		t.Fatalf("got %d responses, want 32", len(resps))
	}
	for _, r := range resps {
		if !r.OK() || r.Epoch != 2 || r.Node != 5 {
			t.Fatalf("bad response %+v", r)
		}
	}
	if srv.mmsgDrains.Load() != 0 {
		t.Fatal("forced-sequential server used the mmsg path")
	}
}

func TestQueryBurstReturnsRefusals(t *testing.T) {
	src := &fakeSource{} // no lease: replies carry FlagStale
	srv := startTestServer(t, src, 1)

	cli, err := NewClient(ClientConfig{
		Targets:  []string{srv.Addr().String()},
		Timeout:  500 * time.Millisecond,
		Attempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resps, err := cli.QueryBurst(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 6 {
		t.Fatalf("got %d responses, want 6", len(resps))
	}
	for _, r := range resps {
		if r.OK() {
			t.Fatalf("expected a refusal, got %+v", r)
		}
	}
}

func TestQueryBurstValidates(t *testing.T) {
	cli, err := NewClient(ClientConfig{Targets: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for _, bad := range [][2]int{{0, 1}, {MaxBurst + 1, 1}, {1, 0}, {1, MaxBatch + 1}} {
		if _, err := cli.QueryBurst(bad[0], bad[1]); err == nil {
			t.Fatalf("QueryBurst(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestParseIOMode(t *testing.T) {
	cases := map[string]IOMode{"": IOAuto, "auto": IOAuto, "seq": IOSequential, "mmsg": IOMmsg}
	for in, want := range cases {
		got, err := ParseIOMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseIOMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseIOMode("zerocopy"); err == nil {
		t.Fatal("ParseIOMode accepted garbage")
	}
	if IOAuto.String() != "auto" || IOSequential.String() != "seq" || IOMmsg.String() != "mmsg" {
		t.Fatal("IOMode.String mismatch")
	}
}

func TestIOMmsgModeRejectedWhereUnsupported(t *testing.T) {
	if MmsgSupported() {
		// The require-mode must start and stay on the batched path.
		src := &fakeSource{}
		src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
		srv := startIOServer(t, src, 1, IOMmsg)
		if srv.IOPath() != "mmsg" {
			t.Fatalf("IOMmsg server path = %q", srv.IOPath())
		}
		return
	}
	if _, err := Start(Config{Addr: "127.0.0.1:0", Node: 1, Source: &fakeSource{}, IO: IOMmsg}); err == nil {
		t.Fatal("Start accepted IOMmsg on a build without the batched path")
	}
	if _, err := NewClient(ClientConfig{Targets: []string{"127.0.0.1:1"}, IO: IOMmsg}); err == nil {
		t.Fatal("NewClient accepted IOMmsg on a build without the batched path")
	}
}

func TestReusePortFallbackObs(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	srv := startTestServer(t, src, 1)
	if srv.ReusePortFallback() {
		t.Fatal("unexpected reuseport fallback on a fresh bind")
	}
	found := false
	for _, s := range srv.ObsSamples() {
		if s.Name == "timeserve.reuseport_fallback" {
			found = true
			if s.Value != 0 {
				t.Fatalf("reuseport_fallback = %v, want 0", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("timeserve.reuseport_fallback sample missing")
	}
}
