package timeserve

import "fmt"

// IOMode selects the kernel I/O path a Server's shards (and a Client's
// bursts) use.
//
// The batched path drains each SO_REUSEPORT socket with recvmmsg into a
// preallocated message ring, answers every datagram in the drain from one
// lease snapshot, and flushes the replies with a single sendmmsg — two
// syscalls for a whole batch instead of one recvfrom + one sendto per
// datagram. It exists on Linux (amd64/arm64); everywhere else, and whenever
// the syscalls are unavailable at runtime, shards fall back to the
// sequential loop.
type IOMode int

const (
	// IOAuto picks the batched path where supported and falls back to the
	// sequential loop otherwise. The default.
	IOAuto IOMode = iota
	// IOSequential forces the one-datagram-per-syscall loop everywhere.
	IOSequential
	// IOMmsg requires the batched recvmmsg/sendmmsg path; Start (and burst
	// clients) fail on platforms without it.
	IOMmsg
)

// ParseIOMode parses the -serve-io flag values "auto", "seq" and "mmsg".
func ParseIOMode(s string) (IOMode, error) {
	switch s {
	case "", "auto":
		return IOAuto, nil
	case "seq":
		return IOSequential, nil
	case "mmsg":
		return IOMmsg, nil
	default:
		return 0, fmt.Errorf("timeserve: unknown I/O mode %q (want auto, seq or mmsg)", s)
	}
}

func (m IOMode) String() string {
	switch m {
	case IOSequential:
		return "seq"
	case IOMmsg:
		return "mmsg"
	default:
		return "auto"
	}
}

// MmsgSupported reports whether this build carries the batched
// recvmmsg/sendmmsg path (Linux on amd64/arm64).
func MmsgSupported() bool { return mmsgSupported }
