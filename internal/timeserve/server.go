package timeserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cts/internal/hwclock"
	"cts/internal/obs"
)

// Reading is one leased group-clock value handed to an external client. The
// true group clock at the moment of the read lies within
// [GroupClock−Bound, GroupClock+Bound].
type Reading struct {
	GroupClock time.Duration
	Bound      time.Duration
	Epoch      uint64
	Node       uint32 // replica that answered (zero for locally served reads)
}

// LeaseSource answers external reads from the replica's current lease.
// core.TimeService.LeaseRead provides this (adapted by the cts facade); the
// call must be safe from any goroutine and lock-free on the fast path, since
// every shard invokes it per query.
type LeaseSource interface {
	LeaseRead() (Reading, bool)
}

// Config configures a Server.
type Config struct {
	// Addr is the UDP listen address (e.g. ":4460", "127.0.0.1:0").
	// Required.
	Addr string
	// Shards is the number of listener shards. On Linux each shard binds its
	// own SO_REUSEPORT socket with a private kernel receive queue; elsewhere
	// the shards share one socket. Default 1.
	Shards int
	// Node identifies this replica in responses.
	Node uint32
	// Source answers the queries. Required.
	Source LeaseSource
	// RecvBuf and SendBuf request socket buffer sizes (SO_RCVBUF/SO_SNDBUF)
	// per shard socket. Default 4 MiB; the kernel may clamp.
	RecvBuf, SendBuf int
	// Obs registers the server's counters. Optional.
	Obs *obs.Recorder
	// Mono measures server uptime for the timeserve.qps sample. Defaults to
	// the machine's monotonic clock (hwclock.Monotonic).
	Mono hwclock.Source
	// IO selects the kernel I/O path. IOAuto (the default) runs the batched
	// recvmmsg/sendmmsg drain-serve-flush cycle where the platform supports
	// it and falls back to the sequential loop otherwise; IOSequential
	// forces the sequential loop everywhere; IOMmsg makes Start fail on
	// platforms without the batched syscalls.
	IO IOMode
	// OnFallback, when set, is called at most once per degradation with a
	// short reason whenever the server cannot take a configured fast path:
	// a refused SO_REUSEPORT bind (shard scaling flatlines on one kernel
	// queue) or batched syscalls unavailable at runtime (seccomp, exotic
	// kernels). The obs counters timeserve.reuseport_fallback and
	// timeserve.mmsg_fallback record the same events unconditionally.
	OnFallback func(reason string)
}

// Validate checks cfg and fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Addr == "" {
		return c, errors.New("timeserve: Config.Addr is required")
	}
	if c.Source == nil {
		return c, errors.New("timeserve: Config.Source is required")
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("timeserve: Config.Shards must not be negative (got %d)", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = 4 << 20
	}
	if c.SendBuf == 0 {
		c.SendBuf = 4 << 20
	}
	if c.Mono == nil {
		c.Mono = hwclock.Monotonic()
	}
	if c.IO == IOMmsg && !mmsgSupported {
		return c, errors.New("timeserve: Config.IO requires the batched recvmmsg/sendmmsg path, which this platform does not support (use auto or seq)")
	}
	return c, nil
}

// shard holds one listener's counters. Each shard writes only its own cache
// lines; the padding keeps concurrent shards from false sharing.
type shard struct {
	queries       atomic.Uint64
	leaseHit      atomic.Uint64
	staleRejected atomic.Uint64
	drops         atomic.Uint64
	datagrams     atomic.Uint64
	// syscalls counts kernel I/O operations this shard issued (recvmmsg/
	// sendmmsg attempts on the batched path, one per ReadFrom/WriteTo on the
	// sequential path). syscalls ÷ queries is the bench gate column.
	syscalls atomic.Uint64
	_        [80]byte
}

// Server serves the timeserve protocol off a replica's lease plane.
type Server struct {
	cfg       Config
	conns     []net.PacketConn // distinct sockets (1 in fallback mode)
	shards    []shard
	dropNames []string // per-shard drop metric names, precomputed at Start
	wg        sync.WaitGroup
	addr      net.Addr
	reuseport bool
	closed    atomic.Bool

	ioMmsg       bool          // resolved at Start: shards attempt the batched path
	mmsgDrains   atomic.Uint64 // successful recvmmsg drains across shards
	mmsgFell     atomic.Uint64 // shards degraded to the sequential loop at runtime
	reuseFell    atomic.Uint64 // 1 when the SO_REUSEPORT bind fallback triggered
	fallbackOnce sync.Once     // OnFallback fires once for the mmsg degradation
}

// Start binds the shards and begins serving. With Shards > 1 on Linux each
// shard gets its own SO_REUSEPORT socket; if per-shard binding is
// unavailable the shards share the first socket.
func Start(cfg Config) (*Server, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, shards: make([]shard, cfg.Shards)}
	// Metric names are formatted once here, not per ObsSamples scrape: the
	// allocfree rule drove the serve path to zero fmt use, and the scrape
	// path should not reintroduce per-call Sprintf garbage either.
	s.dropNames = make([]string, cfg.Shards)
	for i := range s.dropNames {
		s.dropNames[i] = fmt.Sprintf("timeserve.shard%d.drops", i)
	}

	useReuse := reusePortAvailable && cfg.Shards > 1
	lc := net.ListenConfig{}
	if useReuse {
		lc.Control = reusePortControl
	}
	first, err := lc.ListenPacket(context.Background(), "udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("timeserve: listen %s: %w", cfg.Addr, err)
	}
	s.addr = first.LocalAddr()
	s.conns = append(s.conns, first)
	s.setBuffers(first)

	if useReuse {
		// Later shards bind the resolved address, so ":0" works.
		for i := 1; i < cfg.Shards; i++ {
			pc, err := lc.ListenPacket(context.Background(), "udp", s.addr.String())
			if err != nil {
				// SO_REUSEPORT bind refused (e.g. exotic kernel config):
				// fall back to sharing the first socket. Recorded — shard
				// scaling flatlines on one kernel queue, and operators need
				// to see why (timeserve.reuseport_fallback, OnFallback).
				s.reuseport = false
				s.reuseFell.Store(1)
				if cfg.OnFallback != nil {
					cfg.OnFallback("SO_REUSEPORT bind refused; shards share one socket: " + err.Error())
				}
				break
			}
			s.setBuffers(pc)
			s.conns = append(s.conns, pc)
			s.reuseport = true
		}
	}

	s.ioMmsg = mmsgSupported && cfg.IO != IOSequential
	for i := 0; i < cfg.Shards; i++ {
		pc := s.conns[0]
		if i < len(s.conns) {
			pc = s.conns[i]
		}
		s.wg.Add(1)
		go s.serve(pc, &s.shards[i])
	}
	cfg.Obs.Register(s)
	return s, nil
}

// setBuffers applies the configured socket buffer sizes where the connection
// supports them.
func (s *Server) setBuffers(pc net.PacketConn) {
	type bufConn interface {
		SetReadBuffer(int) error
		SetWriteBuffer(int) error
	}
	if bc, ok := pc.(bufConn); ok {
		_ = bc.SetReadBuffer(s.cfg.RecvBuf)
		_ = bc.SetWriteBuffer(s.cfg.SendBuf)
	}
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.addr }

// ReusePort reports whether the shards got private SO_REUSEPORT sockets.
func (s *Server) ReusePort() bool { return s.reuseport }

// Shards reports the number of serving shards.
func (s *Server) Shards() int { return len(s.shards) }

// IOPath reports the kernel I/O path the shards are actually on: "mmsg" when
// every shard runs the batched drain-serve-flush cycle, "seq" otherwise
// (sequential build or mode, or any shard degraded at runtime).
func (s *Server) IOPath() string {
	if s.ioMmsg && s.mmsgFell.Load() == 0 {
		return "mmsg"
	}
	return "seq"
}

// Syscalls reports the kernel I/O operations issued across all shards.
func (s *Server) Syscalls() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].syscalls.Load()
	}
	return n
}

// ReusePortFallback reports whether a refused SO_REUSEPORT bind forced the
// shards onto one shared socket.
func (s *Server) ReusePortFallback() bool { return s.reuseFell.Load() != 0 }

// serve runs one shard: the batched recvmmsg/sendmmsg cycle where the mode
// and platform allow it, the sequential loop otherwise. The fallback ladder
// is per shard — a runtime refusal of the batched syscalls (seccomp, exotic
// kernels) degrades only after being counted and reported once. The split
// keeps the loops — the parts that run per datagram, forever — genuinely
// allocation-free under the static rule: everything they need is handed in
// up front.
func (s *Server) serve(pc net.PacketConn, sh *shard) {
	defer s.wg.Done()
	if s.ioMmsg {
		if s.serveBatched(pc, sh) {
			return
		}
		if s.closed.Load() {
			return
		}
		s.mmsgFell.Add(1)
		s.fallbackOnce.Do(func() {
			if s.cfg.OnFallback != nil {
				s.cfg.OnFallback("batched recvmmsg/sendmmsg unavailable at runtime; serving sequentially")
			}
		})
	}
	buf := make([]byte, MaxDatagram)
	out := make([]byte, 0, MaxBatch*RespSize)
	s.serveLoop(pc, sh, buf, out)
}

// serveLoop is one shard's receive loop: read a datagram, answer every valid
// query in it from the lease, send one response datagram back. Buffers are
// reused across iterations (responses are written in place via PutResponse
// after reslicing within capacity); the loop allocates nothing in steady
// state, and ctslint's allocfree rule proves it for every callee.
//
//cts:allocfree
func (s *Server) serveLoop(pc net.PacketConn, sh *shard, buf, out []byte) {
	for {
		n, from, err := pc.ReadFrom(buf)
		sh.syscalls.Add(1)
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sh.datagrams.Add(1)
		out = out[:0]
		accepted := 0
		for off := 0; off+ReqSize <= n; off += ReqSize {
			if accepted == MaxBatch {
				// Backpressure: excess queries in an oversized batch are
				// dropped, not queued.
				sh.drops.Add(uint64((n - off) / ReqSize))
				break
			}
			q, err := ParseRequest(buf[off : off+ReqSize])
			if err != nil {
				sh.drops.Add(1)
				continue
			}
			accepted++
			sh.queries.Add(1)
			r := Response{Node: s.cfg.Node, Nonce: q.Nonce, Echo: q.Echo}
			if rd, ok := s.cfg.Source.LeaseRead(); ok {
				r.Flags = FlagOK
				r.Group = rd.GroupClock
				r.Bound = rd.Bound
				r.Epoch = rd.Epoch
				sh.leaseHit.Add(1)
			} else {
				r.Flags = FlagStale
				sh.staleRejected.Add(1)
			}
			filled := len(out)
			out = out[:filled+RespSize]
			PutResponse(out[filled:], r)
		}
		if n%ReqSize != 0 {
			sh.drops.Add(1) // runt or trailing garbage
		}
		if len(out) > 0 {
			_, err := pc.WriteTo(out, from)
			sh.syscalls.Add(1)
			if err != nil && !s.closed.Load() {
				sh.drops.Add(uint64(accepted))
			}
		}
	}
}

// Totals sums the shard counters.
func (s *Server) Totals() (queries, leaseHit, staleRejected, drops uint64) {
	for i := range s.shards {
		sh := &s.shards[i]
		queries += sh.queries.Load()
		leaseHit += sh.leaseHit.Load()
		staleRejected += sh.staleRejected.Load()
		drops += sh.drops.Load()
	}
	return
}

// ObsNode implements obs.Source.
func (s *Server) ObsNode() uint32 { return s.cfg.Node }

// ObsSamples implements obs.Source. timeserve.qps is the average query rate
// since the server started; the remaining samples are monotonic counters.
func (s *Server) ObsSamples() []obs.Sample {
	queries, hit, stale, drops := s.Totals()
	var datagrams uint64
	for i := range s.shards {
		datagrams += s.shards[i].datagrams.Load()
	}
	qps := uint64(0)
	if el := s.cfg.Mono(); el > 0 {
		qps = uint64(float64(queries) / el.Seconds())
	}
	id := s.cfg.Node
	samples := []obs.Sample{
		{Node: id, Name: "timeserve.qps", Value: qps},
		{Node: id, Name: "timeserve.queries", Value: queries},
		{Node: id, Name: "timeserve.lease_hit", Value: hit},
		{Node: id, Name: "timeserve.stale_rejected", Value: stale},
		{Node: id, Name: "timeserve.datagrams", Value: datagrams},
		{Node: id, Name: "timeserve.drops", Value: drops},
		{Node: id, Name: "timeserve.syscalls", Value: s.Syscalls()},
		{Node: id, Name: "timeserve.mmsg_drains", Value: s.mmsgDrains.Load()},
		{Node: id, Name: "timeserve.mmsg_fallback", Value: s.mmsgFell.Load()},
		{Node: id, Name: "timeserve.reuseport_fallback", Value: s.reuseFell.Load()},
	}
	for i := range s.shards {
		samples = append(samples, obs.Sample{
			Node:  id,
			Name:  s.dropNames[i],
			Value: s.shards[i].drops.Load(),
		})
	}
	return samples
}

// Close stops the shards and releases the sockets.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	for _, pc := range s.conns {
		if err := pc.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.wg.Wait()
	return first
}
