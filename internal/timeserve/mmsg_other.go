//go:build !linux || !(amd64 || arm64)

package timeserve

import "net"

// This platform has no recvmmsg/sendmmsg shim; shards always run the
// sequential serve loop and burst clients fall back to one datagram per
// syscall. The stubs keep the fallback ladder — and the pinned allocfree
// root — identical across builds.
const mmsgSupported = false

// mmsgRing is the batched-I/O state on builds that have none.
type mmsgRing struct{ nrecv int }

// serveBatched reports that the batched path is unavailable; serve falls
// back to the sequential loop.
func (s *Server) serveBatched(pc net.PacketConn, sh *shard) bool { return false }

// serveBatch is the pinned allocfree root of the batched serve path. On
// builds without the syscalls it has nothing to do — the annotation (and the
// Config.AllocfreeRequire pin) stay in force so the hot-path contract cannot
// silently vanish on any platform.
//
//cts:allocfree
func (s *Server) serveBatch(sh *shard, r *mmsgRing) {}

// ServeAllocsPerOp reports -1: no batched path to measure on this build.
func ServeAllocsPerOp() float64 { return -1 }

// clientBurst is the client-side batched-I/O state on builds that have none.
type clientBurst struct{}

// burstState reports no batched ring; QueryBurst stays on the sequential
// path.
func (c *Client) burstState(i int, conn *net.UDPConn) *clientBurst { return nil }

// mmsgBurst is unreachable on this build (burstState never returns a ring);
// the stub keeps client.go portable.
func (c *Client) mmsgBurst(b *clientBurst, target int, base uint64, dgrams, k int) ([]Response, bool, error) {
	return nil, false, nil
}
