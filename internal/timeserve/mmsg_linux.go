//go:build linux && (amd64 || arm64)

// Batched kernel I/O for the serving hot path: each shard drains its socket
// with recvmmsg into a preallocated ring of mmsghdr/iovec/sockaddr buffers,
// answers every datagram in the drain from ONE lease snapshot (steady-state
// mode: the lease changes far more slowly than a drain lasts, so one
// extrapolation covers the whole batch), and flushes the replies with a
// single sendmmsg — two syscalls for up to mmsgRecvMsgs datagrams instead of
// one recvfrom + one sendto per datagram. Raw Syscall6 over the stdlib
// syscall package, no golang.org/x/sys, mirroring the SO_REUSEPORT shim in
// reuseport_linux.go; the per-arch syscall numbers live in
// mmsg_linux_<arch>.go.
//
// The path integrates with the runtime netpoller through syscall.RawConn:
// the read and write closures are created once per shard (never in the
// loop), attempt one non-blocking syscall each, and return false on EAGAIN
// so the goroutine parks until the fd is ready instead of spinning. Partial
// sendmmsg completions resume from the first unsent reply; EINTR retries;
// ENOSYS/EPERM/EOPNOTSUPP before the first successful drain degrades the
// shard to the sequential serveLoop (seccomp filters and exotic kernels).

package timeserve

import (
	"fmt"
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsgSupported: this build carries the batched path.
const mmsgSupported = true

const (
	// mmsgRecvMsgs is the recvmmsg drain depth: datagrams per syscall.
	mmsgRecvMsgs = 32
	// mmsgRecvSlot is the per-datagram receive buffer. A full conforming
	// request datagram is MaxBatch*ReqSize = 1536 bytes; anything larger is
	// truncated by the kernel (MSG_TRUNC) and the lost tail counted as a
	// drop, matching the sequential path's over-batch backpressure.
	mmsgRecvSlot = 4096
	// mmsgReplySlot is the per-datagram reply buffer: MaxBatch responses.
	mmsgReplySlot = MaxBatch * RespSize
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the number
// of bytes the kernel transferred for that message.
type mmsghdr struct {
	hdr    syscall.Msghdr
	length uint32
	_      [4]byte
}

// Injection points for fault tests: short sendmmsg completions, EAGAIN and
// ENOSYS are simulated by swapping these for wrappers around the raw calls.
var (
	recvmmsgFn = rawRecvmmsg
	sendmmsgFn = rawSendmmsg
)

// rawRecvmmsg receives up to len(hdrs) datagrams in one syscall.
func rawRecvmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	return int(n), errno
}

// rawSendmmsg sends up to len(hdrs) datagrams in one syscall; the return
// counts how many the kernel accepted (short completions are normal).
func rawSendmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(n), errno
}

// mmsgRing is one shard's preallocated batched-I/O state: receive buffers,
// reply buffers, the mmsghdr/iovec/sockaddr arrays the syscalls scatter into,
// and the once-created netpoller closures. Nothing here is allocated after
// newMmsgRing; the drain-serve-flush cycle reuses it forever.
type mmsgRing struct {
	rbuf  []byte // mmsgRecvMsgs × mmsgRecvSlot receive bytes
	wbuf  []byte // mmsgRecvMsgs × mmsgReplySlot reply bytes
	names []syscall.RawSockaddrAny
	riov  []syscall.Iovec
	wiov  []syscall.Iovec
	rhdr  []mmsghdr
	whdr  []mmsghdr
	// waccepted[j] is the query count encoded into staged reply j, so a
	// failed flush can charge the drop counter exactly.
	waccepted []uint32

	nrecv  int           // datagrams in the current drain
	rerr   syscall.Errno // fatal recv errno (EAGAIN/EINTR are absorbed)
	wcount int           // replies staged by serveBatch
	wsent  int           // replies the kernel has accepted (resume point)
	werr   syscall.Errno // fatal send errno

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
}

// newMmsgRing allocates one shard's ring and wires the scatter tables and
// netpoller closures. sh is captured so the closures can count syscalls.
func newMmsgRing(sh *shard) *mmsgRing {
	r := &mmsgRing{
		rbuf:      make([]byte, mmsgRecvMsgs*mmsgRecvSlot),
		wbuf:      make([]byte, mmsgRecvMsgs*mmsgReplySlot),
		names:     make([]syscall.RawSockaddrAny, mmsgRecvMsgs),
		riov:      make([]syscall.Iovec, mmsgRecvMsgs),
		wiov:      make([]syscall.Iovec, mmsgRecvMsgs),
		rhdr:      make([]mmsghdr, mmsgRecvMsgs),
		whdr:      make([]mmsghdr, mmsgRecvMsgs),
		waccepted: make([]uint32, mmsgRecvMsgs),
	}
	for i := 0; i < mmsgRecvMsgs; i++ {
		r.riov[i].Base = &r.rbuf[i*mmsgRecvSlot]
		r.riov[i].Len = mmsgRecvSlot
		r.rhdr[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.rhdr[i].hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
		r.rhdr[i].hdr.Iov = &r.riov[i]
		r.rhdr[i].hdr.Iovlen = 1
		r.whdr[i].hdr.Iov = &r.wiov[i]
		r.whdr[i].hdr.Iovlen = 1
	}
	r.readFn = func(fd uintptr) bool {
		n, errno := recvmmsgFn(fd, r.rhdr)
		sh.syscalls.Add(1)
		switch errno {
		case 0:
			r.nrecv, r.rerr = n, 0
			return true
		case syscall.EAGAIN:
			r.nrecv, r.rerr = 0, 0
			return false // park on the netpoller until readable
		case syscall.EINTR:
			r.nrecv, r.rerr = 0, 0
			return true // outer loop retries
		default:
			r.nrecv, r.rerr = 0, errno
			return true
		}
	}
	r.writeFn = func(fd uintptr) bool {
		n, errno := sendmmsgFn(fd, r.whdr[r.wsent:r.wcount])
		sh.syscalls.Add(1)
		switch {
		case errno == syscall.EAGAIN:
			return false // park until writable, then resume
		case errno == syscall.EINTR:
			return true // outer loop retries
		case errno != 0:
			r.werr = errno
			return true
		case n == 0:
			r.werr = syscall.EIO // kernel made no progress: avoid spinning
			return true
		}
		r.wsent += n
		return true
	}
	return r
}

// resetRecv restores the kernel-written header fields before a drain: the
// kernel reads Namelen as the sockaddr buffer size and overwrites it with
// the actual source address length per message.
func (r *mmsgRing) resetRecv() {
	for i := range r.rhdr {
		r.rhdr[i].hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
	}
}

// dropUnsent charges every reply the flush could not hand to the kernel to
// the shard's drop counter, query by query, and abandons the batch.
func (r *mmsgRing) dropUnsent(sh *shard) {
	for j := r.wsent; j < r.wcount; j++ {
		sh.drops.Add(uint64(r.waccepted[j]))
	}
	r.wsent = r.wcount
}

// serveBatched runs one shard on the batched path. It returns false when the
// connection cannot expose a raw fd or the first drain proves the syscalls
// unavailable — the caller then falls back to the sequential loop.
func (s *Server) serveBatched(pc net.PacketConn, sh *shard) bool {
	sc, ok := pc.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	return s.batchLoop(rc, sh, newMmsgRing(sh))
}

// batchLoop is the batched serve loop: drain the socket with one recvmmsg,
// answer every datagram from one lease snapshot, flush the replies with
// sendmmsg, resuming short completions. Everything it touches was
// preallocated by newMmsgRing; the loop allocates nothing in steady state,
// and ctslint's allocfree rule proves it for every callee it can see (the
// netpoller closures attempt one syscall each and are gated dynamically by
// the 0 allocs/op test instead).
//
//cts:allocfree
func (s *Server) batchLoop(rc syscall.RawConn, sh *shard, r *mmsgRing) bool {
	proven := false // one drain has succeeded: the syscalls exist
	for {
		r.resetRecv()
		if err := rc.Read(r.readFn); err != nil {
			if s.closed.Load() {
				return true
			}
			continue
		}
		if r.rerr != 0 {
			if s.closed.Load() {
				return true
			}
			if !proven && (r.rerr == syscall.ENOSYS || r.rerr == syscall.EPERM || r.rerr == syscall.EOPNOTSUPP) {
				return false // no batched syscalls here: degrade to serveLoop
			}
			continue
		}
		if r.nrecv == 0 {
			continue // EINTR
		}
		proven = true
		s.mmsgDrains.Add(1)
		sh.datagrams.Add(uint64(r.nrecv))
		s.serveBatch(sh, r)
		for r.wsent < r.wcount {
			if err := rc.Write(r.writeFn); err != nil || r.werr != 0 {
				if s.closed.Load() {
					return true
				}
				r.dropUnsent(sh)
				break
			}
		}
	}
}

// serveBatch answers every datagram of the current drain in place: parse the
// queries, serve them from one lease snapshot taken for the whole batch, and
// stage one reply datagram per request datagram for the flush. Semantics
// mirror the sequential loop exactly — MaxBatch backpressure, runt-tail and
// malformed-request drops, no reply for datagrams with zero accepted
// queries — plus one drop per kernel-truncated oversized datagram.
//
//cts:allocfree
func (s *Server) serveBatch(sh *shard, r *mmsgRing) {
	r.wcount, r.wsent, r.werr = 0, 0, 0
	rd, haveLease := s.cfg.Source.LeaseRead()
	for i := 0; i < r.nrecv; i++ {
		n := int(r.rhdr[i].length)
		if n > mmsgRecvSlot {
			n = mmsgRecvSlot
		}
		if r.rhdr[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
			sh.drops.Add(1) // oversized datagram: the kernel cut the tail
		}
		buf := r.rbuf[i*mmsgRecvSlot : i*mmsgRecvSlot+n]
		j := r.wcount
		out := r.wbuf[j*mmsgReplySlot : j*mmsgReplySlot : (j+1)*mmsgReplySlot]
		accepted := 0
		for off := 0; off+ReqSize <= n; off += ReqSize {
			if accepted == MaxBatch {
				// Backpressure: excess queries in an oversized batch are
				// dropped, not queued.
				sh.drops.Add(uint64((n - off) / ReqSize))
				break
			}
			q, err := ParseRequest(buf[off : off+ReqSize])
			if err != nil {
				sh.drops.Add(1)
				continue
			}
			accepted++
			resp := Response{Node: s.cfg.Node, Nonce: q.Nonce, Echo: q.Echo}
			if haveLease {
				resp.Flags = FlagOK
				resp.Group = rd.GroupClock
				resp.Bound = rd.Bound
				resp.Epoch = rd.Epoch
			} else {
				resp.Flags = FlagStale
			}
			filled := len(out)
			out = out[:filled+RespSize]
			PutResponse(out[filled:], resp)
		}
		if n%ReqSize != 0 {
			sh.drops.Add(1) // runt or trailing garbage
		}
		sh.queries.Add(uint64(accepted))
		if haveLease {
			sh.leaseHit.Add(uint64(accepted))
		} else {
			sh.staleRejected.Add(uint64(accepted))
		}
		if accepted == 0 {
			continue
		}
		r.wiov[j].Base = &r.wbuf[j*mmsgReplySlot]
		r.wiov[j].Len = uint64(len(out))
		r.whdr[j].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.whdr[j].hdr.Namelen = r.rhdr[i].hdr.Namelen
		r.waccepted[j] = uint32(accepted)
		r.wcount++
	}
}

const (
	// clientSendSlot is a burst client's per-datagram request buffer.
	clientSendSlot = MaxBatch * ReqSize
	// clientRecvSlot is a burst client's per-datagram response buffer.
	clientRecvSlot = MaxBatch * RespSize
)

// clientBurst is one target's batched-I/O state on the client side: request
// and response rings for up to MaxBurst datagrams over the connected socket
// (no sockaddrs needed — the kernel fills in the peer), plus the once-created
// netpoller closures. Like the server ring, nothing is allocated after
// newClientBurst.
type clientBurst struct {
	rc   syscall.RawConn
	wbuf []byte // MaxBurst × clientSendSlot request bytes
	rbuf []byte // MaxBurst × clientRecvSlot response bytes
	wiov []syscall.Iovec
	riov []syscall.Iovec
	whdr []mmsghdr
	rhdr []mmsghdr

	wcount, wsent int           // staged datagrams / kernel-accepted resume point
	werr          syscall.Errno // fatal send errno
	rwant         int           // datagrams still expected by the current drain
	nrecv         int           // datagrams the last drain delivered
	rerr          syscall.Errno // fatal recv errno

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
}

// newClientBurst builds the burst ring over conn's raw fd, or returns nil if
// the socket cannot expose one (the caller then stays sequential).
func newClientBurst(conn *net.UDPConn) *clientBurst {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	b := &clientBurst{
		rc:   rc,
		wbuf: make([]byte, MaxBurst*clientSendSlot),
		rbuf: make([]byte, MaxBurst*clientRecvSlot),
		wiov: make([]syscall.Iovec, MaxBurst),
		riov: make([]syscall.Iovec, MaxBurst),
		whdr: make([]mmsghdr, MaxBurst),
		rhdr: make([]mmsghdr, MaxBurst),
	}
	for i := 0; i < MaxBurst; i++ {
		b.riov[i].Base = &b.rbuf[i*clientRecvSlot]
		b.riov[i].Len = clientRecvSlot
		b.rhdr[i].hdr.Iov = &b.riov[i]
		b.rhdr[i].hdr.Iovlen = 1
		b.whdr[i].hdr.Iov = &b.wiov[i]
		b.whdr[i].hdr.Iovlen = 1
	}
	b.readFn = func(fd uintptr) bool {
		n, errno := recvmmsgFn(fd, b.rhdr[:b.rwant])
		switch errno {
		case 0:
			b.nrecv, b.rerr = n, 0
			return true
		case syscall.EAGAIN:
			b.nrecv, b.rerr = 0, 0
			return false // park until readable or the deadline fires
		case syscall.EINTR:
			b.nrecv, b.rerr = 0, 0
			return true
		default:
			b.nrecv, b.rerr = 0, errno
			return true
		}
	}
	b.writeFn = func(fd uintptr) bool {
		n, errno := sendmmsgFn(fd, b.whdr[b.wsent:b.wcount])
		switch {
		case errno == syscall.EAGAIN:
			return false // park until writable, then resume
		case errno == syscall.EINTR:
			return true
		case errno != 0:
			b.werr = errno
			return true
		case n == 0:
			b.werr = syscall.EIO
			return true
		}
		b.wsent += n
		return true
	}
	return b
}

// burstState lazily builds the batched ring for target i.
func (c *Client) burstState(i int, conn *net.UDPConn) *clientBurst {
	if c.bursts[i] == nil {
		c.bursts[i] = newClientBurst(conn)
	}
	return c.bursts[i]
}

// mmsgBurst runs one burst over the batched syscalls: stage every request
// datagram into the ring, flush with sendmmsg (resuming short completions),
// then drain replies with recvmmsg until the burst is answered or the
// deadline fires. ok=false means the syscalls are unavailable before they
// ever worked — the caller degrades to the sequential burst.
func (c *Client) mmsgBurst(b *clientBurst, target int, base uint64, dgrams, k int) ([]Response, bool, error) {
	reqLen := k * ReqSize
	for d := 0; d < dgrams; d++ {
		off := d * clientSendSlot
		for i := 0; i < k; i++ {
			PutRequest(b.wbuf[off+i*ReqSize:off+(i+1)*ReqSize], Request{Nonce: base + uint64(d*k+i)})
		}
		b.wiov[d].Base = &b.wbuf[off]
		b.wiov[d].Len = uint64(reqLen)
	}
	b.wcount, b.wsent, b.werr = dgrams, 0, 0
	for b.wsent < b.wcount {
		if err := b.rc.Write(b.writeFn); err != nil {
			return nil, true, fmt.Errorf("timeserve: send to %s: %w", c.cfg.Targets[target], err)
		}
		if b.werr != 0 {
			if !c.mmsgProven && (b.werr == syscall.ENOSYS || b.werr == syscall.EPERM || b.werr == syscall.EOPNOTSUPP) {
				return nil, false, nil
			}
			return nil, true, fmt.Errorf("timeserve: sendmmsg to %s: %w", c.cfg.Targets[target], error(b.werr))
		}
	}
	c.mmsgProven = true
	c.resps = c.resps[:0]
	span := uint64(dgrams * k)
	got := 0
	for got < dgrams {
		b.rwant = dgrams - got
		if err := b.rc.Read(b.readFn); err != nil {
			break // deadline: return whatever arrived
		}
		if b.rerr != 0 {
			break
		}
		for i := 0; i < b.nrecv; i++ {
			ln := int(b.rhdr[i].length)
			if ln > clientRecvSlot {
				ln = clientRecvSlot
			}
			if c.appendWindow(b.rbuf[i*clientRecvSlot:i*clientRecvSlot+ln], base, span, k) {
				got++
			}
		}
	}
	if len(c.resps) == 0 {
		return nil, true, fmt.Errorf("timeserve: burst to %s: %w", c.cfg.Targets[target], ErrNoReplica)
	}
	return c.resps, true, nil
}

// steadySource is the fixed lease the allocation probe serves from.
type steadySource struct{}

func (steadySource) LeaseRead() (Reading, bool) {
	return Reading{GroupClock: 1 << 40, Bound: 1 << 16, Epoch: 3}, true
}

// ServeAllocsPerOp measures heap allocations per drain-serve cycle over a
// synthetic full ring (mmsgRecvMsgs datagrams × MaxBatch queries), the
// dynamic counterpart of the static allocfree proof on batchLoop/serveBatch.
// ctsload records it in the bench row and `make loadtest` gates it at 0.
// Returns -1 on builds without the batched path.
func ServeAllocsPerOp() float64 {
	s := &Server{cfg: Config{Node: 1, Source: steadySource{}}}
	sh := &shard{}
	r := newMmsgRing(sh)
	var req [ReqSize]byte
	for i := 0; i < mmsgRecvMsgs; i++ {
		for q := 0; q < MaxBatch; q++ {
			PutRequest(req[:], Request{Nonce: uint64(i*MaxBatch + q)})
			copy(r.rbuf[i*mmsgRecvSlot+q*ReqSize:], req[:])
		}
		r.rhdr[i].length = MaxBatch * ReqSize
		r.rhdr[i].hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
	}
	r.nrecv = mmsgRecvMsgs
	const iters = 200
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for it := 0; it < iters; it++ {
		s.serveBatch(sh, r)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / iters
}
