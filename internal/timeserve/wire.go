// Package timeserve is the external time-serving frontend: an SNTP-style
// binary UDP query protocol that hands the replica group's consistent clock
// to unreplicated clients at high rates. A query is answered from the
// replica's current lease (core.LeaseRead) without starting a CCS round, so
// serving throughput is decoupled from agreement throughput — the same
// amortize-the-agreement move gradient-clock systems use to bound skew
// without per-read coordination.
//
// Wire format (all integers big-endian):
//
//	request  (24 bytes): magic(2) version(1) flags(1) reserved(4) nonce(8) echo(8)
//	response (48 bytes): magic(2) version(1) flags(1) node(4) nonce(8) echo(8)
//	                     group_ns(8) bound_ns(8) epoch(8)
//
// A datagram carries 1..MaxBatch requests back to back; the response
// datagram carries one 48-byte response per accepted request, in order.
// Batching amortizes the per-datagram syscall cost, which dominates on
// loaded servers. The nonce matches responses to requests; the echo field is
// returned verbatim (clients put their send timestamp there to measure RTT
// without keeping per-request state). Epoch is the replica's lease epoch:
// it changes whenever group membership changes (including synchronizer
// failover), telling clients that cached leases from the old configuration
// are void.
package timeserve

import (
	"encoding/binary"
	"errors"
	"time"
)

// Protocol constants.
const (
	Magic   = 0x4354 // "CT"
	Version = 1

	// ReqSize and RespSize are the fixed encodings of one query and one
	// answer.
	ReqSize  = 24
	RespSize = 48

	// MaxBatch bounds the queries accepted from one datagram; requests
	// beyond it are dropped (and counted). 64 responses fit in 3 KB, inside
	// any sane path MTU budget for a single reassembled datagram.
	MaxBatch = 64

	// MaxDatagram is the largest datagram either side reads.
	MaxDatagram = 64 * 1024
)

// Response flags.
const (
	// FlagOK marks an answer served from a valid lease.
	FlagOK = 1 << 0
	// FlagStale marks a refusal: the replica holds no valid lease (never
	// synchronized, lease expired, or invalidated by a membership change).
	// GroupClock and Bound are zero; clients must try another replica.
	FlagStale = 1 << 1
)

// Request is one time query.
type Request struct {
	Flags byte
	Nonce uint64
	Echo  uint64
}

// Response is one answered (or refused) time query.
type Response struct {
	Flags byte
	Node  uint32
	Nonce uint64
	Echo  uint64
	Group time.Duration // group clock value
	Bound time.Duration // staleness bound: |true group clock − Group| ≤ Bound
	Epoch uint64        // lease epoch the answer was served under
}

// OK reports whether the response carries a leased reading.
func (r Response) OK() bool { return r.Flags&FlagOK != 0 }

// Errors returned by the decoders.
var (
	ErrShort   = errors.New("timeserve: short message")
	ErrMagic   = errors.New("timeserve: bad magic")
	ErrVersion = errors.New("timeserve: unsupported version")
)

// PutRequest encodes q into b, which must hold at least ReqSize bytes.
// It is the zero-allocation encoder the batched client path writes through.
//
//cts:allocfree
func PutRequest(b []byte, q Request) {
	_ = b[ReqSize-1]
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = q.Flags
	binary.BigEndian.PutUint32(b[4:], 0)
	binary.BigEndian.PutUint64(b[8:], q.Nonce)
	binary.BigEndian.PutUint64(b[16:], q.Echo)
}

// AppendRequest appends q's encoding to buf.
func AppendRequest(buf []byte, q Request) []byte {
	var b [ReqSize]byte
	PutRequest(b[:], q)
	return append(buf, b[:]...)
}

// ParseRequest decodes one request from the front of b.
//
//cts:allocfree
func ParseRequest(b []byte) (Request, error) {
	if len(b) < ReqSize {
		return Request{}, ErrShort
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return Request{}, ErrMagic
	}
	if b[2] != Version {
		return Request{}, ErrVersion
	}
	return Request{
		Flags: b[3],
		Nonce: binary.BigEndian.Uint64(b[8:]),
		Echo:  binary.BigEndian.Uint64(b[16:]),
	}, nil
}

// PutResponse encodes r into b, which must hold at least RespSize bytes.
// The serve loop writes responses through this into a pre-grown reply
// buffer, so steady-state serving never touches the allocator.
//
//cts:allocfree
func PutResponse(b []byte, r Response) {
	_ = b[RespSize-1]
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = r.Flags
	binary.BigEndian.PutUint32(b[4:], r.Node)
	binary.BigEndian.PutUint64(b[8:], r.Nonce)
	binary.BigEndian.PutUint64(b[16:], r.Echo)
	binary.BigEndian.PutUint64(b[24:], uint64(r.Group))
	binary.BigEndian.PutUint64(b[32:], uint64(r.Bound))
	binary.BigEndian.PutUint64(b[40:], r.Epoch)
}

// AppendResponse appends r's encoding to buf.
func AppendResponse(buf []byte, r Response) []byte {
	var b [RespSize]byte
	PutResponse(b[:], r)
	return append(buf, b[:]...)
}

// ParseResponse decodes one response from the front of b.
//
//cts:allocfree
func ParseResponse(b []byte) (Response, error) {
	if len(b) < RespSize {
		return Response{}, ErrShort
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return Response{}, ErrMagic
	}
	if b[2] != Version {
		return Response{}, ErrVersion
	}
	return Response{
		Flags: b[3],
		Node:  binary.BigEndian.Uint32(b[4:]),
		Nonce: binary.BigEndian.Uint64(b[8:]),
		Echo:  binary.BigEndian.Uint64(b[16:]),
		Group: time.Duration(binary.BigEndian.Uint64(b[24:])),
		Bound: time.Duration(binary.BigEndian.Uint64(b[32:])),
		Epoch: binary.BigEndian.Uint64(b[40:]),
	}, nil
}
