//go:build linux

package timeserve

import "syscall"

// soReusePort is SO_REUSEPORT, absent from the syscall package's exported
// constants on linux/amd64 but stable in the kernel ABI since 3.9.
const soReusePort = 0xf

// reusePortAvailable reports whether this platform can bind several
// listening sockets to one UDP address, giving each shard its own kernel
// receive queue.
const reusePortAvailable = true

// reusePortControl is a net.ListenConfig.Control hook enabling SO_REUSEPORT
// before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
