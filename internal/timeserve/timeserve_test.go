package timeserve

import (
	"sync/atomic"
	"testing"
	"time"

	"cts/internal/obs"
)

func TestWireRoundTrip(t *testing.T) {
	q := Request{Flags: 0, Nonce: 0xDEADBEEF01234567, Echo: 42}
	b := AppendRequest(nil, q)
	if len(b) != ReqSize {
		t.Fatalf("request size %d, want %d", len(b), ReqSize)
	}
	got, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("request round trip: got %+v want %+v", got, q)
	}

	r := Response{Flags: FlagOK, Node: 3, Nonce: 7, Echo: 42,
		Group: 123456789 * time.Nanosecond, Bound: time.Millisecond, Epoch: 9}
	rb := AppendResponse(nil, r)
	if len(rb) != RespSize {
		t.Fatalf("response size %d, want %d", len(rb), RespSize)
	}
	rgot, err := ParseResponse(rb)
	if err != nil {
		t.Fatal(err)
	}
	if rgot != r {
		t.Fatalf("response round trip: got %+v want %+v", rgot, r)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := ParseRequest(make([]byte, ReqSize-1)); err != ErrShort {
		t.Fatalf("short request: got %v", err)
	}
	b := AppendRequest(nil, Request{})
	b[0] = 0xFF
	if _, err := ParseRequest(b); err != ErrMagic {
		t.Fatalf("bad magic: got %v", err)
	}
	b = AppendRequest(nil, Request{})
	b[2] = 99
	if _, err := ParseRequest(b); err != ErrVersion {
		t.Fatalf("bad version: got %v", err)
	}
}

// fakeSource is a concurrency-safe scriptable lease source.
type fakeSource struct {
	reading atomic.Pointer[Reading]
}

func (f *fakeSource) set(r Reading) { f.reading.Store(&r) }
func (f *fakeSource) invalidate()   { f.reading.Store(nil) }
func (f *fakeSource) LeaseRead() (Reading, bool) {
	if r := f.reading.Load(); r != nil {
		return *r, true
	}
	return Reading{}, false
}

func startTestServer(t *testing.T, src LeaseSource, node uint32) *Server {
	t.Helper()
	srv, err := Start(Config{Addr: "127.0.0.1:0", Node: node, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerAnswersFromLease(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: 5 * time.Second, Bound: 80 * time.Microsecond, Epoch: 2})
	srv := startTestServer(t, src, 7)

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	r, err := cli.Query()
	if err != nil {
		t.Fatal(err)
	}
	if r.GroupClock != 5*time.Second || r.Bound != 80*time.Microsecond || r.Epoch != 2 || r.Node != 7 {
		t.Fatalf("unexpected reading %+v", r)
	}
	queries, hit, stale, drops := srv.Totals()
	if queries != 1 || hit != 1 || stale != 0 || drops != 0 {
		t.Fatalf("totals: q=%d hit=%d stale=%d drops=%d", queries, hit, stale, drops)
	}
}

func TestServerRejectsWithoutLease(t *testing.T) {
	src := &fakeSource{}
	srv := startTestServer(t, src, 1)

	cli, err := NewClient(ClientConfig{
		Targets:  []string{srv.Addr().String()},
		Timeout:  200 * time.Millisecond,
		Attempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Query(); err == nil {
		t.Fatal("expected refusal without a lease")
	}
	_, _, stale, _ := srv.Totals()
	if stale == 0 {
		t.Fatal("stale_rejected not counted")
	}
}

func TestClientRetriesAcrossReplicas(t *testing.T) {
	stale := &fakeSource{} // replica 0: no lease
	good := &fakeSource{}
	good.set(Reading{GroupClock: time.Hour, Bound: time.Microsecond, Epoch: 1})
	srv0 := startTestServer(t, stale, 0)
	srv1 := startTestServer(t, good, 1)

	cli, err := NewClient(ClientConfig{
		Targets: []string{srv0.Addr().String(), srv1.Addr().String()},
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	r, err := cli.Query()
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 1 {
		t.Fatalf("expected answer from replica 1, got node %d", r.Node)
	}
}

func TestClientCachesAndExtrapolates(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Minute, Bound: 50 * time.Microsecond, Epoch: 1})
	srv := startTestServer(t, src, 2)

	cli, err := NewClient(ClientConfig{
		Targets:  []string{srv.Addr().String()},
		Timeout:  time.Second,
		CacheFor: time.Hour, // everything after the first query is a hit
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	first, err := cli.Now()
	if err != nil {
		t.Fatal(err)
	}
	prev := first
	for i := 0; i < 10; i++ {
		r, err := cli.Now()
		if err != nil {
			t.Fatal(err)
		}
		if r.GroupClock < prev.GroupClock {
			t.Fatalf("cached reading regressed: %v < %v", r.GroupClock, prev.GroupClock)
		}
		if r.Bound < first.Bound {
			t.Fatalf("extrapolated bound shrank: %v < %v", r.Bound, first.Bound)
		}
		prev = r
	}
	hits, misses := cli.CacheStats()
	if hits != 10 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 10/1", hits, misses)
	}
	if queries, _, _, _ := srv.Totals(); queries != 1 {
		t.Fatalf("server saw %d queries, want 1 (cache should absorb the rest)", queries)
	}
}

func TestQueryBatch(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 4})
	srv := startTestServer(t, src, 9)

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resps, err := cli.QueryBatch(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 16 {
		t.Fatalf("got %d responses, want 16", len(resps))
	}
	seen := make(map[uint64]bool)
	for _, r := range resps {
		if !r.OK() || r.Epoch != 4 || r.Node != 9 {
			t.Fatalf("bad batched response %+v", r)
		}
		if seen[r.Nonce] {
			t.Fatalf("duplicate nonce %d", r.Nonce)
		}
		seen[r.Nonce] = true
	}
	if queries, hit, _, _ := srv.Totals(); queries != 16 || hit != 16 {
		t.Fatalf("totals queries=%d hit=%d, want 16/16", queries, hit)
	}
}

func TestServerShardsAndObs(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	rec, err := obs.New(obs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Start(Config{Addr: "127.0.0.1:0", Shards: 4, Node: 1, Source: src, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", srv.Shards())
	}

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 20; i++ {
		if _, err := cli.Query(); err != nil {
			t.Fatal(err)
		}
	}

	m := obs.SampleMap(rec.Samples())
	if m["timeserve.queries"] != 20 || m["timeserve.lease_hit"] != 20 {
		t.Fatalf("obs samples: %v", m)
	}
	if _, ok := m["timeserve.qps"]; !ok {
		t.Fatal("missing timeserve.qps")
	}
	if _, ok := m["timeserve.shard0.drops"]; !ok {
		t.Fatal("missing per-shard drop counter")
	}
}

func TestServerDropsMalformedAndOverBatch(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	srv := startTestServer(t, src, 1)

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn, err := cli.conn(0)
	if err != nil {
		t.Fatal(err)
	}

	// A runt datagram and a corrupt-magic request are both dropped.
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	bad := AppendRequest(nil, Request{Nonce: 1})
	bad[0] = 0xFF
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	// Over-batch: MaxBatch+5 queries in one datagram; 5 must be dropped.
	var over []byte
	for i := 0; i < MaxBatch+5; i++ {
		over = AppendRequest(over, Request{Nonce: uint64(i)})
	}
	if _, err := conn.Write(over); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		queries, _, _, drops := srv.Totals()
		if queries == MaxBatch && drops == 2+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals queries=%d drops=%d, want %d/%d", queries, drops, MaxBatch, 7)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
