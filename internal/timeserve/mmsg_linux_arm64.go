//go:build linux && arm64

package timeserve

// Syscall numbers for the batched UDP path on the arm64 (aarch64) ABI.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
