package timeserve

import (
	"testing"

	"cts/internal/testutil"
)

// TestCodecAllocFree is the dynamic counterpart of ctslint's static
// allocfree rule: the fixed-offset codec the serve loop runs per query must
// do zero allocations per operation. The static rule proves no allocating
// construct is reachable; this gates the measured number so the two can
// never drift apart silently.
func TestCodecAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocs/op is perturbed by race-detector instrumentation")
	}
	var reqBuf [ReqSize]byte
	var respBuf [RespSize]byte
	q := Request{Flags: 1, Nonce: 0xdead, Echo: 0xbeef}
	r := Response{Flags: FlagOK, Node: 4, Nonce: 0xdead, Echo: 0xbeef,
		Group: 5, Bound: 6, Epoch: 7}

	var gotQ Request
	var gotR Response
	var errQ, errR error
	allocs := testing.AllocsPerRun(1000, func() {
		PutRequest(reqBuf[:], q)
		gotQ, errQ = ParseRequest(reqBuf[:])
		PutResponse(respBuf[:], r)
		gotR, errR = ParseResponse(respBuf[:])
	})
	if errQ != nil || errR != nil {
		t.Fatalf("roundtrip errors: %v / %v", errQ, errR)
	}
	if gotQ != q || gotR != r {
		t.Fatalf("roundtrip mismatch: %+v != %+v or %+v != %+v", gotQ, q, gotR, r)
	}
	if allocs != 0 {
		t.Fatalf("codec allocates %.1f allocs/op, want 0", allocs)
	}
}
