//go:build linux && (amd64 || arm64)

package timeserve

import (
	"syscall"
	"testing"
	"time"

	"cts/internal/testutil"
)

// startFaultServer starts a server without t.Cleanup so the test controls
// shutdown ordering: the server must be closed BEFORE an injected syscall
// stub is restored, or the serve goroutines race the restore.
func startFaultServer(t *testing.T, src LeaseSource) *Server {
	t.Helper()
	srv, err := Start(Config{Addr: "127.0.0.1:0", Node: 1, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestShortSendmmsgResume injects a sendmmsg that accepts at most one reply
// per call and asserts the flush loop resumes short completions until every
// staged reply is out.
func TestShortSendmmsgResume(t *testing.T) {
	defer func() { sendmmsgFn = rawSendmmsg }()
	sendmmsgFn = func(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
		return rawSendmmsg(fd, hdrs[:1])
	}

	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	srv := startFaultServer(t, src)
	defer srv.Close()

	const dgrams = 8
	var all [][]byte
	for d := 0; d < dgrams; d++ {
		all = append(all, reqs(seqNonces(uint64(d*10), 2), nil))
	}
	got := sendAndCollect(t, srv.Addr(), all)
	if len(got) != dgrams {
		t.Fatalf("got %d response datagrams, want %d (short completions not resumed)", len(got), dgrams)
	}
	if srv.IOPath() != "mmsg" {
		t.Fatalf("IOPath = %q, want mmsg", srv.IOPath())
	}

	srv.Close()
}

// TestRecvmmsgENOSYSDegrades injects ENOSYS before the first drain ever
// succeeds and asserts the shard falls back to the sequential loop — queries
// still answered, fallback counted, OnFallback fired exactly once.
func TestRecvmmsgENOSYSDegrades(t *testing.T) {
	defer func() { recvmmsgFn = rawRecvmmsg }()
	recvmmsgFn = func(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
		return 0, syscall.ENOSYS
	}

	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	fellReasons := make(chan string, 4)
	srv, err := Start(Config{Addr: "127.0.0.1:0", Node: 1, Source: src,
		OnFallback: func(reason string) { fellReasons <- reason }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := NewClient(ClientConfig{
		Targets: []string{srv.Addr().String()},
		Timeout: time.Second,
		IO:      IOSequential, // keep the client off the injected stub
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query(); err != nil {
		t.Fatalf("degraded server did not answer: %v", err)
	}
	if srv.IOPath() != "seq" {
		t.Fatalf("IOPath = %q, want seq after ENOSYS", srv.IOPath())
	}
	if srv.mmsgFell.Load() == 0 {
		t.Fatal("mmsg fallback not counted")
	}
	select {
	case reason := <-fellReasons:
		if reason == "" {
			t.Fatal("empty fallback reason")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnFallback never fired")
	}
	select {
	case r := <-fellReasons:
		t.Fatalf("OnFallback fired more than once (%q)", r)
	default:
	}

	cli.Close()
	srv.Close()
}

// TestClientBurstENOSYSDegrades injects ENOSYS into sendmmsg before the
// client has ever proven the syscalls and asserts QueryBurst silently
// degrades to the sequential burst.
func TestClientBurstENOSYSDegrades(t *testing.T) {
	defer func() { sendmmsgFn = rawSendmmsg }()
	sendmmsgFn = func(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
		return 0, syscall.ENOSYS
	}

	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	// Sequential server: the injected stub must stay client-side only.
	srv, err := Start(Config{Addr: "127.0.0.1:0", Node: 2, Source: src, IO: IOSequential})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := NewClient(ClientConfig{Targets: []string{srv.Addr().String()}, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if got := cli.IOPath(); got != "mmsg" {
		t.Fatalf("fresh client IOPath = %q, want mmsg", got)
	}
	resps, err := cli.QueryBurst(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 16 {
		t.Fatalf("got %d responses, want 16", len(resps))
	}
	if got := cli.IOPath(); got != "seq" {
		t.Fatalf("client IOPath = %q, want seq after ENOSYS", got)
	}

	cli.Close()
	srv.Close()
}

// TestOversizedDatagramTruncated sends a datagram larger than the receive
// slot: the kernel truncates it (MSG_TRUNC), the batch still serves MaxBatch
// queries, and the lost tail is charged to the drop counter.
func TestOversizedDatagramTruncated(t *testing.T) {
	src := &fakeSource{}
	src.set(Reading{GroupClock: time.Second, Bound: time.Microsecond, Epoch: 1})
	srv := startIOServer(t, src, 1, IOMmsg)

	// 173 requests = 4152 bytes > mmsgRecvSlot (4096): the kernel keeps 170
	// full requests plus a 16-byte runt tail.
	oversized := reqs(seqNonces(0, 173), nil)
	if len(oversized) <= mmsgRecvSlot {
		t.Fatalf("test datagram only %d bytes, want > %d", len(oversized), mmsgRecvSlot)
	}
	got := sendAndCollect(t, srv.Addr(), [][]byte{oversized})
	if len(got) != 1 {
		t.Fatalf("got %d response datagrams, want 1", len(got))
	}
	if wantLen := MaxBatch * RespSize * 2; len(got[0]) != wantLen { // hex doubles
		t.Fatalf("response datagram %d hex chars, want %d (MaxBatch responses)", len(got[0]), wantLen)
	}
	// Drops: 1 (MSG_TRUNC) + 106 (over-batch tail of the truncated 4096
	// bytes) + 1 (16-byte runt remainder).
	const wantDrops = 1 + (mmsgRecvSlot-MaxBatch*ReqSize)/ReqSize + 1
	deadline := time.Now().Add(2 * time.Second)
	for {
		queries, _, _, drops := srv.Totals()
		if queries == MaxBatch && drops == wantDrops {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals queries=%d drops=%d, want %d/%d", queries, drops, MaxBatch, wantDrops)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeBatchAllocFree gates the batched drain-serve cycle at zero heap
// allocations per operation, the dynamic counterpart of the static allocfree
// proof on batchLoop/serveBatch.
func TestServeBatchAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocs/op is perturbed by race-detector instrumentation")
	}
	s := &Server{cfg: Config{Node: 1, Source: steadySource{}}}
	sh := &shard{}
	r := newMmsgRing(sh)
	var req [ReqSize]byte
	for i := 0; i < mmsgRecvMsgs; i++ {
		for q := 0; q < MaxBatch; q++ {
			PutRequest(req[:], Request{Nonce: uint64(i*MaxBatch + q)})
			copy(r.rbuf[i*mmsgRecvSlot+q*ReqSize:], req[:])
		}
		r.rhdr[i].length = MaxBatch * ReqSize
		r.rhdr[i].hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
	}
	r.nrecv = mmsgRecvMsgs
	if allocs := testing.AllocsPerRun(200, func() { s.serveBatch(sh, r) }); allocs != 0 {
		t.Fatalf("serveBatch allocates %.1f allocs/op, want 0", allocs)
	}
	if got := ServeAllocsPerOp(); got != 0 {
		t.Fatalf("ServeAllocsPerOp() = %v, want 0", got)
	}
}
