// Package lint is ctslint's analysis engine: a stdlib-only (go/ast,
// go/parser, go/types — no x/tools) static-analysis suite enforcing the
// determinism and concurrency invariants the consistent time service depends
// on. The CCS algorithm of PAPER §3 only yields a consistent group clock if
// every replica's clock reads flow through the synchronized offset and
// replicas process ordered events deterministically; these rules turn that
// from review discipline into a machine-checked CI gate.
//
// Rules (each independently toggleable, see DESIGN.md §8 for rationale):
//
//   - allocfree: functions annotated `//cts:allocfree` (the timeserve serve
//     path, core.LeaseRead) must reach no allocating construct through any
//     call chain — interprocedural, built on the callgraph.go substrate.
//   - lockorder: mutex-acquisition order cycles and blocking-operation/
//     Broadcast-while-locked hazards across the whole call graph.
//   - notime: direct time.Now/Sleep/After/... calls are banned outside the
//     clock abstraction packages (internal/hwclock, internal/timesource,
//     internal/sim, internal/testutil) and _test.go files.
//   - nolockio: no blocking operation (channel send/receive, select without
//     default, Wait, sleeps, net dials) while a sync.Mutex/RWMutex is held.
//   - maporder: map iteration whose results reach wire encoding or multicast
//     send paths unsorted is cross-replica nondeterminism.
//   - atomicmix: a field accessed through sync/atomic functions anywhere must
//     be accessed that way everywhere.
//   - errdrop: error returns on transport/wire encode-decode paths must not
//     be silently discarded by a bare call statement.
//
// Findings carry file:line positions plus the enclosing declaration, so
// intentional exceptions can be pinned in a reviewed lint.allow baseline
// (see Baseline) without being line-number brittle.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"cts/internal/hwclock"
)

// AllRules lists every rule name, in report order.
var AllRules = []string{"allocfree", "atomicmix", "errdrop", "lockorder", "maporder", "nolockio", "notime"}

// Finding is one rule violation.
type Finding struct {
	Rule string
	// Pos locates the offending node.
	Pos token.Position
	// Scope names the enclosing function declaration ("Type.Method" or
	// "Func"), or "-" at package scope. Baseline entries match on it, so
	// exceptions survive unrelated line drift.
	Scope string
	Msg   string
	// Chain is the interprocedural call chain (root first) for findings from
	// graph-based rules; nil for single-function rules.
	Chain []string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg, f.Scope)
}

// Config selects and parameterizes rules. The zero value runs every rule
// with the project defaults.
type Config struct {
	// Rules enables a subset by name; nil or empty enables all.
	Rules map[string]bool

	// NotimeAllowed lists package-path suffixes exempt from notime: the
	// packages that *are* the clock abstraction.
	NotimeAllowed []string

	// OrderedImports and OrderedPkgSuffixes decide which packages maporder
	// watches: any package importing one of OrderedImports, or whose import
	// path ends in one of OrderedPkgSuffixes, can put bytes on the wire and
	// must not let map iteration order reach them.
	OrderedImports     []string
	OrderedPkgSuffixes []string

	// AllocfreeAssume is the reviewed list of unanalyzable (stdlib/dynamic)
	// calls allocfree trusts not to allocate. Entries: exact rendered call
	// ("time.Now"), "pkg.Recv." prefix wildcard ("atomic."), or a bare
	// method name matched against any receiver ("Load").
	AllocfreeAssume []string

	// AllocfreeConvFree lists stdlib value-type conversions that are free
	// ("time.Duration"); with synthetic stdlib types the checker cannot see
	// for itself that they are numeric.
	AllocfreeConvFree []string

	// AllocfreeRequire pins functions that must exist and carry the
	// //cts:allocfree annotation whenever their package is analyzed, so the
	// hot-path contract cannot silently vanish in a refactor.
	AllocfreeRequire []RequiredRoot

	// DispatchBound caps interface-dispatch fan-out in the call graph;
	// beyond it a call is treated as unknown code. 0 means the default (12).
	DispatchBound int
}

// RequiredRoot names one mandatory //cts:allocfree root: the function Func
// ("Type.Method" or "Func") in the package whose import path ends in
// PkgSuffix.
type RequiredRoot struct {
	PkgSuffix string
	Func      string
}

// DefaultConfig returns the project rule parameters.
func DefaultConfig() Config {
	return Config{
		NotimeAllowed: []string{
			"internal/hwclock",
			"internal/timesource",
			"internal/sim",
			"internal/testutil",
		},
		OrderedImports: []string{
			"cts/internal/wire",
			"cts/internal/transport",
			"cts/internal/udptransport",
		},
		OrderedPkgSuffixes: []string{
			"internal/wire",
			"internal/timeserve",
			"internal/transport",
		},
		AllocfreeAssume: []string{
			// Exact stdlib calls the hot path is allowed to make.
			"time.Now",
			"errors.Is",
			// Prefix wildcards: the whole binary.BigEndian/LittleEndian put/
			// get families and every sync/atomic entry point are value-level.
			"binary.BigEndian.",
			"binary.LittleEndian.",
			"atomic.",
			// Bare method names: receivers are synthetic stdlib types
			// (atomic.Pointer fields, net.PacketConn, time.Time) the checker
			// cannot resolve. All reviewed as non-allocating.
			"Load",
			"Store",
			"Add",
			"Swap",
			"CompareAndSwap",
			"ReadFrom",
			"WriteTo",
			"ReadFromUDP",
			"WriteToUDP",
			// syscall.RawConn dispatch in the batched serve loop: Read/Write
			// invoke a pre-built closure over the raw fd and park on the
			// netpoller; neither allocates in steady state. Keyed to the
			// rendered receiver so unrelated Read/Write calls stay flagged.
			"rc.Read",
			"rc.Write",
			"UnixNano",
			"Nanoseconds",
			"Seconds",
			"Milliseconds",
			"Microseconds",
			"Done",
		},
		AllocfreeConvFree: []string{
			"time.Duration",
		},
		AllocfreeRequire: []RequiredRoot{
			{PkgSuffix: "internal/timeserve", Func: "Server.serveLoop"},
			// The batched drain-serve path; every build flavor carries an
			// annotated serveBatch (mmsg_other.go stubs it), so the pin
			// holds on platforms without the syscalls too.
			{PkgSuffix: "internal/timeserve", Func: "Server.serveBatch"},
			{PkgSuffix: "internal/core", Func: "TimeService.LeaseRead"},
		},
	}
}

func (c Config) enabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	return c.Rules[rule]
}

// Run analyzes pkgs under cfg and returns findings sorted by position.
func Run(pkgs []*Package, cfg Config) []Finding {
	out, _ := RunStats(pkgs, cfg)
	return out
}

// RuleStat is one rule's share of a RunStats invocation, for `ctslint -v`.
type RuleStat struct {
	Rule     string
	Duration time.Duration
	Findings int
}

// RunStats is Run plus per-rule wall time. The interprocedural rules
// (allocfree, lockorder) share one lazily built call graph: the graph is
// constructed at most once per invocation, and not at all when neither rule
// is enabled — adding the graph-based passes must not double lint wall time
// over the already-loaded package set.
func RunStats(pkgs []*Package, cfg Config) ([]Finding, []RuleStat) {
	var (
		out   []Finding
		stats []RuleStat
		g     *Graph
	)
	graph := func() *Graph {
		if g == nil {
			g = BuildGraph(pkgs, cfg)
		}
		return g
	}
	mono := hwclock.Monotonic()
	run := func(rule string, fn func() []Finding) {
		if !cfg.enabled(rule) {
			return
		}
		start := mono()
		fs := fn()
		stats = append(stats, RuleStat{Rule: rule, Duration: mono() - start, Findings: len(fs)})
		out = append(out, fs...)
	}
	eachPkg := func(fn func(p *Package) []Finding) func() []Finding {
		return func() []Finding {
			var fs []Finding
			for _, p := range pkgs {
				fs = append(fs, fn(p)...)
			}
			return fs
		}
	}
	run("allocfree", func() []Finding { return checkAllocfree(graph()) })
	run("atomicmix", eachPkg(checkAtomicmix))
	run("errdrop", eachPkg(checkErrdrop))
	run("lockorder", func() []Finding { return checkLockorder(graph()) })
	run("maporder", eachPkg(func(p *Package) []Finding { return checkMaporder(p, cfg) }))
	run("nolockio", eachPkg(checkNolockio))
	run("notime", eachPkg(func(p *Package) []Finding { return checkNotime(p, cfg) }))
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, stats
}

// finding builds a Finding at node, deriving the enclosing scope.
func (p *Package) finding(rule string, node ast.Node, format string, args ...any) Finding {
	return Finding{
		Rule:  rule,
		Pos:   p.Fset.Position(node.Pos()),
		Scope: p.scopeOf(node.Pos()),
		Msg:   fmt.Sprintf(format, args...),
	}
}

// scopeOf names the top-level declaration containing pos.
func (p *Package) scopeOf(pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
					name = t + "." + name
				}
			}
			return name
		}
	}
	return "-"
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// pkgCall reports whether call is pkg.Fn(...) for the package imported in f
// under importPath (or any path with "/"+importPath suffix), returning Fn.
// It refuses identifiers shadowed by local declarations when type
// information resolves them to something other than the package name.
func (p *Package) pkgCall(f *ast.File, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	names := importLocalNames(f, importPath)
	if !names[id.Name] {
		return "", false
	}
	if obj := p.Info.Uses[id]; obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", false // shadowed by a local binding
		}
	}
	return sel.Sel.Name, true
}

// importLocalNames collects the identifiers f binds to importPath (exact
// match, or a path ending in "/"+importPath so corpus packages can stand in
// for real ones).
func importLocalNames(f *ast.File, importPath string) map[string]bool {
	names := make(map[string]bool, 1)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != importPath && !strings.HasSuffix(path, "/"+importPath) {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			names[imp.Name.Name] = true
			continue
		}
		names[path[strings.LastIndex(path, "/")+1:]] = true
	}
	return names
}

// importsAny reports whether any file of p imports one of the given paths.
func (p *Package) importsAny(paths []string) bool {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, want := range paths {
				if path == want {
					return true
				}
			}
		}
	}
	return false
}

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if s == suf || strings.HasSuffix(s, "/"+suf) || strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
