// Package lint is ctslint's analysis engine: a stdlib-only (go/ast,
// go/parser, go/types — no x/tools) static-analysis suite enforcing the
// determinism and concurrency invariants the consistent time service depends
// on. The CCS algorithm of PAPER §3 only yields a consistent group clock if
// every replica's clock reads flow through the synchronized offset and
// replicas process ordered events deterministically; these rules turn that
// from review discipline into a machine-checked CI gate.
//
// Rules (each independently toggleable, see DESIGN.md §8 for rationale):
//
//   - notime: direct time.Now/Sleep/After/... calls are banned outside the
//     clock abstraction packages (internal/hwclock, internal/timesource,
//     internal/sim, internal/testutil) and _test.go files.
//   - nolockio: no blocking operation (channel send/receive, select without
//     default, Wait, sleeps, net dials) while a sync.Mutex/RWMutex is held.
//   - maporder: map iteration whose results reach wire encoding or multicast
//     send paths unsorted is cross-replica nondeterminism.
//   - atomicmix: a field accessed through sync/atomic functions anywhere must
//     be accessed that way everywhere.
//   - errdrop: error returns on transport/wire encode-decode paths must not
//     be silently discarded by a bare call statement.
//
// Findings carry file:line positions plus the enclosing declaration, so
// intentional exceptions can be pinned in a reviewed lint.allow baseline
// (see Baseline) without being line-number brittle.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllRules lists every rule name, in report order.
var AllRules = []string{"atomicmix", "errdrop", "maporder", "nolockio", "notime"}

// Finding is one rule violation.
type Finding struct {
	Rule string
	// Pos locates the offending node.
	Pos token.Position
	// Scope names the enclosing function declaration ("Type.Method" or
	// "Func"), or "-" at package scope. Baseline entries match on it, so
	// exceptions survive unrelated line drift.
	Scope string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg, f.Scope)
}

// Config selects and parameterizes rules. The zero value runs every rule
// with the project defaults.
type Config struct {
	// Rules enables a subset by name; nil or empty enables all.
	Rules map[string]bool

	// NotimeAllowed lists package-path suffixes exempt from notime: the
	// packages that *are* the clock abstraction.
	NotimeAllowed []string

	// OrderedImports and OrderedPkgSuffixes decide which packages maporder
	// watches: any package importing one of OrderedImports, or whose import
	// path ends in one of OrderedPkgSuffixes, can put bytes on the wire and
	// must not let map iteration order reach them.
	OrderedImports     []string
	OrderedPkgSuffixes []string
}

// DefaultConfig returns the project rule parameters.
func DefaultConfig() Config {
	return Config{
		NotimeAllowed: []string{
			"internal/hwclock",
			"internal/timesource",
			"internal/sim",
			"internal/testutil",
		},
		OrderedImports: []string{
			"cts/internal/wire",
			"cts/internal/transport",
			"cts/internal/udptransport",
		},
		OrderedPkgSuffixes: []string{
			"internal/wire",
			"internal/timeserve",
			"internal/transport",
		},
	}
}

func (c Config) enabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	return c.Rules[rule]
}

// Run analyzes pkgs under cfg and returns findings sorted by position.
func Run(pkgs []*Package, cfg Config) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if cfg.enabled("notime") {
			out = append(out, checkNotime(p, cfg)...)
		}
		if cfg.enabled("nolockio") {
			out = append(out, checkNolockio(p)...)
		}
		if cfg.enabled("maporder") {
			out = append(out, checkMaporder(p, cfg)...)
		}
		if cfg.enabled("atomicmix") {
			out = append(out, checkAtomicmix(p)...)
		}
		if cfg.enabled("errdrop") {
			out = append(out, checkErrdrop(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// finding builds a Finding at node, deriving the enclosing scope.
func (p *Package) finding(rule string, node ast.Node, format string, args ...any) Finding {
	return Finding{
		Rule:  rule,
		Pos:   p.Fset.Position(node.Pos()),
		Scope: p.scopeOf(node.Pos()),
		Msg:   fmt.Sprintf(format, args...),
	}
}

// scopeOf names the top-level declaration containing pos.
func (p *Package) scopeOf(pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
					name = t + "." + name
				}
			}
			return name
		}
	}
	return "-"
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// pkgCall reports whether call is pkg.Fn(...) for the package imported in f
// under importPath (or any path with "/"+importPath suffix), returning Fn.
// It refuses identifiers shadowed by local declarations when type
// information resolves them to something other than the package name.
func (p *Package) pkgCall(f *ast.File, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	names := importLocalNames(f, importPath)
	if !names[id.Name] {
		return "", false
	}
	if obj := p.Info.Uses[id]; obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", false // shadowed by a local binding
		}
	}
	return sel.Sel.Name, true
}

// importLocalNames collects the identifiers f binds to importPath (exact
// match, or a path ending in "/"+importPath so corpus packages can stand in
// for real ones).
func importLocalNames(f *ast.File, importPath string) map[string]bool {
	names := make(map[string]bool, 1)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != importPath && !strings.HasSuffix(path, "/"+importPath) {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			names[imp.Name.Name] = true
			continue
		}
		names[path[strings.LastIndex(path, "/")+1:]] = true
	}
	return names
}

// importsAny reports whether any file of p imports one of the given paths.
func (p *Package) importsAny(paths []string) bool {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, want := range paths {
				if path == want {
					return true
				}
			}
		}
	}
	return false
}

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if s == suf || strings.HasSuffix(s, "/"+suf) || strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
