package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonFinding is the machine-readable finding schema, one JSON object per
// line (JSONL). The field set and names are pinned by TestJSONSchema —
// changing them is a breaking change for CI consumers.
type jsonFinding struct {
	Rule  string   `json:"rule"`
	File  string   `json:"file"` // root-relative, forward slashes
	Line  int      `json:"line"`
	Col   int      `json:"col"`
	Scope string   `json:"scope"`
	Msg   string   `json:"msg"`
	Chain []string `json:"chain,omitempty"` // interprocedural call chain, root first
}

// WriteJSON emits findings as JSONL to w. File paths are made relative to
// root (when possible) and slash-normalized so output is stable across
// checkouts and platforms.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		file := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil {
				file = rel
			}
		}
		jf := jsonFinding{
			Rule:  f.Rule,
			File:  filepath.ToSlash(file),
			Line:  f.Pos.Line,
			Col:   f.Pos.Column,
			Scope: f.Scope,
			Msg:   f.Msg,
			Chain: f.Chain,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}
