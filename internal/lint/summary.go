package lint

// summary.go computes per-function summaries for the interprocedural rules:
// a statement-ordered walk of each body tracking the set of held mutexes
// (the same flow-insensitive model rule_nolockio uses: Lock/RLock adds the
// receiver's lock class, Unlock/RUnlock removes it, a deferred unlock holds
// to the end of the function) while recording
//
//   - allocation sites: make/new/append, string concatenation and
//     conversions, slice/map literals, &composite literals, map writes,
//     closures and method values, go statements, defers inside loops,
//     variadic argument slices, and interface boxing at resolved calls;
//   - call sites with their resolved targets and the locks held;
//   - calls into unknown code (reported conservatively by allocfree);
//   - lock acquisitions with the locks already held (order edges);
//   - channel operations and sync.Cond Broadcasts (lockorder hazards).
//
// Function literals are summarized as separate anonymous bodies with an
// empty held set (they run in an unknown context, not at creation time);
// their creation is an allocation site in the enclosing function.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// site is one allocation or unknown-call site.
type site struct {
	pkg  *Package
	pos  token.Pos
	desc string
}

// callEvent is one resolved call with the lock context it runs under.
type callEvent struct {
	pkg      *Package
	pos      token.Pos
	targets  []*types.Func
	held     []string
	deferred bool
}

// acquireEvent is one mutex acquisition and the locks already held.
type acquireEvent struct {
	pkg   *Package
	pos   token.Pos
	class string
	held  []string
}

// blockEvent is one potentially lock-hostile operation: a channel op (send,
// receive, blocking select, range over channel) or a sync.Cond Broadcast.
type blockEvent struct {
	pkg       *Package
	pos       token.Pos
	desc      string
	held      []string
	broadcast bool
}

// summary is everything the interprocedural rules need from one body.
type summary struct {
	name     string
	allocs   []site
	unknowns []site
	calls    []callEvent
	acquires []acquireEvent
	blocks   []blockEvent
}

// summarize walks one declared function.
func summarize(g *Graph, n *FuncNode) *summary {
	w := &bodyWalker{g: g, p: n.pkg, sum: &summary{name: n.name}, held: map[string]token.Pos{}, scope: scopeName(n.decl)}
	w.block(n.decl.Body)
	return w.sum
}

// summarizeLit walks one function literal as an anonymous body.
func summarizeLit(g *Graph, p *Package, parent string, lit *ast.FuncLit) *summary {
	w := &bodyWalker{g: g, p: p, sum: &summary{name: parent + "$lit"}, held: map[string]token.Pos{}, scope: parent}
	w.block(lit.Body)
	return w.sum
}

type bodyWalker struct {
	g        *Graph
	p        *Package
	sum      *summary
	scope    string
	held     map[string]token.Pos
	loopDep  int
	deferred bool // scanning a deferred call's own expression
}

func (w *bodyWalker) heldList() []string {
	if len(w.held) == 0 {
		return nil
	}
	out := make([]string, 0, len(w.held))
	for c := range w.held {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (w *bodyWalker) alloc(n ast.Node, desc string) {
	w.sum.allocs = append(w.sum.allocs, site{w.p, n.Pos(), desc})
}

func (w *bodyWalker) unknown(n ast.Node, desc string) {
	w.sum.unknowns = append(w.sum.unknowns, site{w.p, n.Pos(), desc})
}

// lockOp classifies x.Lock()/x.RLock()/x.Unlock()/x.RUnlock(), returning the
// canonical lock class of the receiver.
func (w *bodyWalker) lockOp(call *ast.CallExpr) (class string, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", false, false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := w.p.Info.Uses[id].(*types.PkgName); isPkg {
			return "", false, false
		}
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return w.lockClass(sel.X), true, false
	case "Unlock", "RUnlock":
		return w.lockClass(sel.X), false, true
	}
	return "", false, false
}

// lockClass canonicalizes a mutex expression to a cross-package identity so
// order edges observed in different functions meet in one graph:
//
//	s.mu         field of a named type        → "core.TimeService.mu"
//	pkgVar       package-level variable       → "core.registryMu"
//	local        function-local variable      → "core.Func$mu" (per function)
//	otherwise    printed expression, package-scoped
//
// Distinct instances of one class are deliberately merged: a lock order
// must hold for the *class*, or two instances taken in both orders by two
// goroutines deadlock just the same.
func (w *bodyWalker) lockClass(x ast.Expr) string {
	x = ast.Unparen(x)
	pkg := w.p.Types.Name()
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if s := w.p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			if named := namedOf(s.Recv()); named != "" {
				return named + "." + sel.Sel.Name
			}
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := w.p.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + sel.Sel.Name
			}
		}
	}
	if id, ok := x.(*ast.Ident); ok {
		if obj := w.p.Info.Uses[id]; obj != nil && obj.Parent() == w.p.Types.Scope() {
			return pkg + "." + id.Name
		}
		return pkg + "." + w.scope + "$" + id.Name
	}
	if tv, ok := w.p.Info.Types[x]; ok && tv.Type != nil {
		if named := namedOf(tv.Type); named != "" {
			return named
		}
	}
	return pkg + ":" + types.ExprString(x)
}

// namedOf renders the named type behind t (through pointers) as "pkg.Type".
func namedOf(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

func (w *bodyWalker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *bodyWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if class, acq, rel := w.lockOp(call); acq || rel {
				if acq {
					w.sum.acquires = append(w.sum.acquires,
						acquireEvent{w.p, call.Pos(), class, w.heldList()})
					w.held[class] = call.Pos()
				} else {
					delete(w.held, class)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		if _, _, rel := w.lockOp(s.Call); rel {
			return // deferred unlock: held to the end of the body
		}
		if w.loopDep > 0 {
			w.alloc(s, "defer inside a loop allocates")
		}
		// The deferred call runs at return, typically after unlocks: record
		// the call edge without the current lock context.
		w.deferredCall(s.Call)
	case *ast.GoStmt:
		w.alloc(s, "go statement allocates a goroutine")
		w.exprs(s.Call.Args)
	case *ast.SendStmt:
		w.sum.blocks = append(w.sum.blocks, blockEvent{w.p, s.Pos(), "channel send", w.heldList(), false})
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && w.isMapIndex(ix) {
				w.alloc(lhs, "map write may allocate")
			}
		}
		w.exprs(s.Rhs)
		w.exprs(s.Lhs)
	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok && w.isMapIndex(ix) {
			w.alloc(s.X, "map write may allocate")
		}
		w.expr(s.X)
	case *ast.ReturnStmt:
		w.exprs(s.Results)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.block(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.loopDep++
		w.stmt(s.Post)
		w.block(s.Body)
		w.loopDep--
	case *ast.RangeStmt:
		if tv, ok := w.p.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.sum.blocks = append(w.sum.blocks, blockEvent{w.p, s.Pos(), "range over channel", w.heldList(), false})
			}
		}
		w.expr(s.X)
		w.loopDep++
		w.block(s.Body)
		w.loopDep--
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.sum.blocks = append(w.sum.blocks, blockEvent{w.p, s.Pos(), "select without default", w.heldList(), false})
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(cc.List)
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values)
				}
			}
		}
	}
}

func (w *bodyWalker) isMapIndex(ix *ast.IndexExpr) bool {
	tv, ok := w.p.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// deferredCall records a deferred (non-unlock) call: its arguments evaluate
// now, the call itself runs at return with no lock context assumed.
func (w *bodyWalker) deferredCall(call *ast.CallExpr) {
	w.exprs(call.Args)
	w.handleCall(call, nil, true)
}

func (w *bodyWalker) exprs(es []ast.Expr) {
	for _, e := range es {
		w.expr(e)
	}
}

// expr scans one expression tree for allocation sites, calls, channel
// receives, closures, and method values.
func (w *bodyWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	funs := map[ast.Expr]bool{} // call Fun nodes: not method values
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.alloc(n, "function literal allocates a closure")
			w.g.anon = append(w.g.anon, summarizeLit(w.g, w.p, w.sum.name, n))
			return false
		case *ast.CallExpr:
			funs[ast.Unparen(n.Fun)] = true
			w.handleCall(n, w.heldList(), false)
			return true
		case *ast.SelectorExpr:
			if !funs[n] {
				if s := w.p.Info.Selections[n]; s != nil && s.Kind() == types.MethodVal {
					w.alloc(n, "method value allocates its bound receiver")
				}
			}
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				w.sum.blocks = append(w.sum.blocks, blockEvent{w.p, n.Pos(), "channel receive", w.heldList(), false})
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.alloc(n, "&composite literal escapes to the heap")
					// Still descend for nested allocs inside the literal.
				}
			}
		case *ast.CompositeLit:
			if tv, ok := w.p.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					w.alloc(n, "slice literal allocates")
				case *types.Map:
					w.alloc(n, "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := w.p.Info.Types[n]; ok && tv.Type != nil && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						w.alloc(n, "string concatenation allocates")
					}
				}
			}
		}
		return true
	})
}

// handleCall classifies one call site. Lock method calls reaching here via
// expression context (rare: lock ops inside larger expressions) are treated
// as ordinary unresolved-but-assumed calls by the classifier.
func (w *bodyWalker) handleCall(call *ast.CallExpr, held []string, deferred bool) {
	if w.isBroadcast(call) {
		w.sum.blocks = append(w.sum.blocks, blockEvent{w.p, call.Pos(), "sync.Cond.Broadcast", held, true})
		return
	}
	c := w.g.classifyCall(w.p, call)
	switch c.class {
	case callResolved:
		w.sum.calls = append(w.sum.calls, callEvent{w.p, call.Pos(), c.targets, held, deferred})
		w.checkArgBoxing(call, c.targets)
	case callAllocates:
		w.alloc(call, c.desc)
	case callUnknown:
		w.unknown(call, c.desc)
	}
}

// isBroadcast matches x.Broadcast() where x is not a package qualifier: the
// sync.Cond wakeup that, issued under the lock, stampedes every waiter into
// a mutex they cannot take.
func (w *bodyWalker) isBroadcast(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Broadcast" || len(call.Args) != 0 {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := w.p.Info.Uses[id].(*types.PkgName); isPkg {
			return false
		}
	}
	// A module method named Broadcast (with a resolvable declaration) is an
	// ordinary call, not a sync.Cond wakeup.
	if s := w.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if fn, ok := s.Obj().(*types.Func); ok && w.g.nodeOf(fn) != nil {
			return false
		}
	}
	return true
}

// checkArgBoxing flags interface boxing and variadic slice construction at
// calls with resolved module signatures.
func (w *bodyWalker) checkArgBoxing(call *ast.CallExpr, targets []*types.Func) {
	if len(targets) == 0 {
		return
	}
	sig, ok := targets[0].Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		if len(call.Args) > np-1 {
			w.alloc(call, "variadic call allocates its argument slice")
		}
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (i < np && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if sl, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := w.p.Info.Types[arg]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) || isNilIdent(arg) {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		w.alloc(arg, "interface boxing of argument")
	}
}
