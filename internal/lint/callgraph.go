package lint

// callgraph.go is the interprocedural analysis substrate: a call graph over
// go/types covering every package Load returned, with per-function summaries
// (allocation sites, lock acquisitions, channel operations, calls into
// unknown code) computed in one pass per function body. The allocfree and
// lockorder rules are whole-path properties — "does anything reachable from
// Server.serveLoop allocate?", "can these two mutexes be taken in both
// orders?" — that the single-function rules structurally cannot answer.
//
// Resolution tiers (DESIGN.md §8 documents the soundness trade-offs):
//
//   - static calls: package-level functions and methods on concrete module
//     types resolve through go/types to their declarations.
//   - interface dispatch: a call through a module interface fans out to
//     every module type whose method set implements it (types.Implements),
//     bounded by Config.DispatchBound; beyond the bound the call is treated
//     as unknown.
//   - stdlib calls: Load resolves the standard library to synthetic empty
//     packages, so stdlib calls have no bodies. A small reviewed assume
//     list (Config.AllocfreeAssume) marks the ones the hot path needs
//     (binary.BigEndian puts, atomics, time.Now); everything else is
//     "unknown code", which allocfree reports conservatively.
//   - dynamic calls (func values, method values) are unknown.
//
// Known unsoundness, deliberately accepted: function literals are analyzed
// as their own anonymous bodies for lock discipline but are not linked as
// callees (their invocation context is unknowable without pointer analysis);
// allocfree instead flags closure *creation* on the hot path, which subsumes
// the problem for the alloc-free property.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync/atomic"
)

// graphBuilds counts BuildGraph invocations so tests can assert the graph is
// built once per Run and shared by every interprocedural rule.
var graphBuilds atomic.Int64

// GraphBuilds reports how many times a call graph has been constructed in
// this process. The single-build test asserts the delta across one Run.
func GraphBuilds() int64 { return graphBuilds.Load() }

// FuncNode is one declared function or method in the analyzed module.
type FuncNode struct {
	fn        *types.Func
	pkg       *Package
	decl      *ast.FuncDecl
	name      string // display name: "pkg.Recv.Name" or "pkg.Name"
	allocFree bool   // carries the //cts:allocfree annotation
	sum       *summary

	// Tarjan bookkeeping for the SCC pass.
	index, lowlink int
	onStack        bool
}

// Graph is the module call graph plus everything the interprocedural rules
// share: per-function summaries, anonymous function-literal summaries, and
// bottom-up SCC order.
type Graph struct {
	pkgs  []*Package
	cfg   Config
	nodes map[*types.Func]*FuncNode
	funcs []*FuncNode // deterministic (package, position) order
	anon  []*summary  // function-literal bodies, lock events only
	named []*types.Named
	sccs  [][]*FuncNode // callees before callers

	dispatchCache map[dispatchKey][]*types.Func
}

type dispatchKey struct {
	iface  *types.Interface
	method string
}

// BuildGraph constructs the shared substrate over pkgs. Rules obtain it
// lazily through Run so one build serves every enabled interprocedural rule.
func BuildGraph(pkgs []*Package, cfg Config) *Graph {
	graphBuilds.Add(1)
	g := &Graph{
		pkgs:          pkgs,
		cfg:           cfg,
		nodes:         make(map[*types.Func]*FuncNode),
		dispatchCache: make(map[dispatchKey][]*types.Func),
	}
	if g.cfg.DispatchBound <= 0 {
		g.cfg.DispatchBound = 12
	}

	// Collect named types (for interface dispatch) and function nodes.
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, nm := range scope.Names() {
			if tn, ok := scope.Lookup(nm).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				g.nodes[obj] = &FuncNode{
					fn:        obj,
					pkg:       p,
					decl:      fd,
					name:      displayName(p, fd),
					allocFree: allocFreeAnnotated(fd),
				}
			}
		}
	}
	for _, n := range g.nodes {
		g.funcs = append(g.funcs, n)
	}
	sort.Slice(g.funcs, func(i, j int) bool {
		a, b := g.funcs[i], g.funcs[j]
		if a.pkg.Path != b.pkg.Path {
			return a.pkg.Path < b.pkg.Path
		}
		return a.decl.Pos() < b.decl.Pos()
	})

	// Summarize every body, then order SCCs bottom-up for the rules that
	// need transitive closures.
	for _, n := range g.funcs {
		n.sum = summarize(g, n)
	}
	g.buildSCCs()
	return g
}

// displayName renders a function's cross-package name: the package name
// (last import-path element for main packages), the receiver type if any,
// and the function name — "timeserve.Server.serveLoop".
func displayName(p *Package, fd *ast.FuncDecl) string {
	pkg := p.Types.Name()
	if pkg == "main" {
		pkg = p.Path[strings.LastIndex(p.Path, "/")+1:]
	}
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return pkg + "." + name
}

// scopeName is displayName without the package qualifier, matching
// Finding.Scope ("Server.serveLoop").
func scopeName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return name
}

// allocFreeAnnotated reports whether the declaration carries a
// `//cts:allocfree` directive in its doc comment.
func allocFreeAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "cts:allocfree") {
			return true
		}
	}
	return false
}

// nodeOf maps a resolved callee to its graph node; nil for functions without
// an analyzable body in the module.
func (g *Graph) nodeOf(fn *types.Func) *FuncNode { return g.nodes[fn] }

// callClass is the outcome of resolving one call expression.
type callClass int

const (
	callResolved  callClass = iota // targets hold module declarations
	callAssumed                    // trusted not to allocate (assume list, free conversion, safe builtin)
	callAllocates                  // the construct itself allocates (desc explains)
	callUnknown                    // unanalyzable; allocfree reports it (desc explains)
)

// classified is one resolved call site.
type classified struct {
	class   callClass
	targets []*types.Func
	desc    string
}

// classifyCall resolves one CallExpr against the module, the dispatch
// machinery, and the allocfree assume list.
func (g *Graph) classifyCall(p *Package, call *ast.CallExpr) classified {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) — unwrap to the identifier.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fn].(type) {
		case *types.Builtin:
			return g.classifyBuiltin(fn.Name)
		case *types.Func:
			return classified{class: callResolved, targets: []*types.Func{obj}}
		case *types.TypeName:
			return g.classifyConversion(p, call)
		case *types.Var:
			return classified{class: callUnknown, desc: "dynamic call of " + fn.Name}
		case *types.Nil:
		}
		return classified{class: callUnknown, desc: "unresolved call of " + fn.Name}

	case *ast.SelectorExpr:
		if sel := p.Info.Selections[fn]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m := sel.Obj().(*types.Func)
				if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
					iface, _ := recv.Underlying().(*types.Interface)
					if iface != nil {
						if targets, ok := g.dispatch(iface, m.Name()); ok {
							return classified{class: callResolved, targets: targets}
						}
						return classified{class: callUnknown,
							desc: "interface call " + types.ExprString(fn) + " exceeds dispatch bound"}
					}
				}
				return classified{class: callResolved, targets: []*types.Func{m}}
			case types.FieldVal:
				return g.classifyUnresolved(fn, "dynamic call of field "+types.ExprString(fn))
			}
		}
		// Package-qualified selector: module package, stdlib, or a type
		// conversion (time.Duration(x)).
		if id, ok := fn.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return g.classifyQualified(p, call, pn, fn.Sel.Name)
			}
		}
		return g.classifyUnresolved(fn, "")

	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return g.classifyConversion(p, call)

	case *ast.FuncLit:
		// Immediately-invoked literal: creation is flagged separately as a
		// closure site; the invocation itself resolves nowhere.
		return classified{class: callAssumed}
	}
	return classified{class: callUnknown, desc: "unresolved call " + types.ExprString(call.Fun)}
}

// classifyQualified handles pkg.Name(...) for a resolved package qualifier.
func (g *Graph) classifyQualified(p *Package, call *ast.CallExpr, pn *types.PkgName, name string) classified {
	imported := pn.Imported()
	qual := imported.Name() + "." + name
	if obj := imported.Scope().Lookup(name); obj != nil {
		switch obj := obj.(type) {
		case *types.Func:
			return classified{class: callResolved, targets: []*types.Func{obj}}
		case *types.TypeName:
			return g.classifyConversion(p, call)
		case *types.Var:
			return classified{class: callUnknown, desc: "dynamic call of " + qual}
		}
	}
	// Synthetic (stdlib) package: no scope entries. Consult the reviewed
	// lists: value-type conversions first, then the assume list.
	for _, conv := range g.cfg.AllocfreeConvFree {
		if qual == conv {
			return classified{class: callAssumed}
		}
	}
	if g.assumed(qual) {
		return classified{class: callAssumed}
	}
	return classified{class: callUnknown,
		desc: "call into unanalyzed " + qual + " (assumed to allocate)"}
}

// classifyUnresolved handles method calls whose receiver type is unknown
// (stdlib interfaces, atomics, fields of synthetic types). The assume list
// may vouch for the rendered call or the bare method name.
func (g *Graph) classifyUnresolved(sel *ast.SelectorExpr, fallback string) classified {
	rendered := types.ExprString(sel)
	if g.assumed(rendered) || g.assumed(sel.Sel.Name) {
		return classified{class: callAssumed}
	}
	desc := fallback
	if desc == "" {
		desc = "call into unanalyzed " + rendered + " (assumed to allocate)"
	}
	return classified{class: callUnknown, desc: desc}
}

// assumed consults Config.AllocfreeAssume: exact rendered match, "pkg."
// prefix wildcard, or bare method name (entries without a dot).
func (g *Graph) assumed(rendered string) bool {
	last := rendered[strings.LastIndex(rendered, ".")+1:]
	for _, a := range g.cfg.AllocfreeAssume {
		switch {
		case strings.HasSuffix(a, "."):
			if strings.HasPrefix(rendered, a) {
				return true
			}
		case !strings.Contains(a, "."):
			if rendered == a || last == a {
				return true
			}
		default:
			if rendered == a {
				return true
			}
		}
	}
	return false
}

// classifyBuiltin maps builtin calls: make/new allocate, append may grow,
// everything else is value-level.
func (g *Graph) classifyBuiltin(name string) classified {
	switch name {
	case "make":
		return classified{class: callAllocates, desc: "make allocates"}
	case "new":
		return classified{class: callAllocates, desc: "new allocates"}
	case "append":
		return classified{class: callAllocates, desc: "append may grow its backing array"}
	}
	return classified{class: callAssumed}
}

// classifyConversion decides whether a type conversion allocates: string ↔
// byte/rune slices do, interface targets box, numeric and struct-value
// conversions are free. Invalid types (synthetic stdlib) default to free —
// stdlib value types the hot path converts through are reviewed via
// Config.AllocfreeConvFree.
func (g *Graph) classifyConversion(p *Package, call *ast.CallExpr) classified {
	if len(call.Args) != 1 {
		return classified{class: callAssumed}
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return classified{class: callAssumed}
	}
	target := tv.Type
	arg := call.Args[0]
	argT := types.Type(nil)
	argConst := false
	if atv, ok := p.Info.Types[arg]; ok {
		argT = atv.Type
		argConst = atv.Value != nil
	}
	switch under := target.Underlying().(type) {
	case *types.Basic:
		if under.Info()&types.IsString != 0 && !argConst {
			if argT == nil || !isStringish(argT) {
				return classified{class: callAllocates, desc: "conversion to string allocates"}
			}
		}
	case *types.Slice:
		if argConst || (argT != nil && isStringish(argT)) {
			return classified{class: callAllocates, desc: "conversion from string to slice allocates"}
		}
	case *types.Interface:
		if argT != nil && !types.IsInterface(argT) {
			if _, ptr := argT.Underlying().(*types.Pointer); !ptr && !isNilIdent(arg) {
				return classified{class: callAllocates, desc: "conversion to interface boxes its operand"}
			}
		}
	}
	return classified{class: callAssumed}
}

func isStringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsString|types.IsUntyped) != 0
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// dispatch fans an interface method call out to every module implementation,
// bounded by Config.DispatchBound. ok=false means the bound was exceeded (or
// no implementation was found) and the caller must treat the call as unknown.
func (g *Graph) dispatch(iface *types.Interface, method string) ([]*types.Func, bool) {
	key := dispatchKey{iface, method}
	if cached, ok := g.dispatchCache[key]; ok {
		return cached, len(cached) > 0
	}
	var targets []*types.Func
	seen := make(map[*types.Func]bool)
	for _, named := range g.named {
		if types.IsInterface(named) || named.TypeParams().Len() > 0 {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			targets = append(targets, fn)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Pos() < targets[j].Pos() })
	if len(targets) == 0 || len(targets) > g.cfg.DispatchBound {
		g.dispatchCache[key] = nil
		return nil, false
	}
	g.dispatchCache[key] = targets
	return targets, true
}

// buildSCCs runs Tarjan over the resolved call edges. Tarjan emits each
// strongly connected component only after every component it calls into, so
// g.sccs is already in bottom-up (callees-first) order.
func (g *Graph) buildSCCs() {
	index := 1
	var stack []*FuncNode
	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		n.index, n.lowlink = index, index
		index++
		stack = append(stack, n)
		n.onStack = true
		for _, c := range n.sum.calls {
			for _, t := range c.targets {
				m := g.nodes[t]
				if m == nil {
					continue
				}
				if m.index == 0 {
					strongconnect(m)
					if m.lowlink < n.lowlink {
						n.lowlink = m.lowlink
					}
				} else if m.onStack && m.index < n.lowlink {
					n.lowlink = m.index
				}
			}
		}
		if n.lowlink == n.index {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			g.sccs = append(g.sccs, scc)
		}
	}
	for _, n := range g.funcs {
		if n.index == 0 {
			strongconnect(n)
		}
	}
}

// position renders a short file:line for cross-references inside messages.
func (g *Graph) position(p *Package, pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
