package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Baseline is the reviewed exception list (lint.allow). Each entry pins one
// (rule, file, scope) triple with a mandatory justification:
//
//	notime internal/obs/obs.go Config.Validate # wall-clock default for real deployments
//
// Matching by enclosing scope instead of line number keeps entries stable
// across unrelated edits; a stale entry (matching nothing) fails the lint
// run so the file can never rot.
type Baseline struct {
	Entries []AllowEntry
}

// AllowEntry is one parsed lint.allow line.
type AllowEntry struct {
	Rule string
	// File is the slash-separated path relative to the lint root.
	File string
	// Scope is the enclosing declaration a finding must be in; "*" matches
	// any scope within the file.
	Scope  string
	Reason string
	Line   int
	used   bool
}

func (e AllowEntry) String() string {
	return fmt.Sprintf("%s %s %s # %s", e.Rule, e.File, e.Scope, e.Reason)
}

// LoadBaseline reads path; a missing file yields an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{}, nil
		}
		return nil, err
	}
	defer f.Close()
	return ParseBaseline(f, path)
}

// minReasonLen rejects throwaway justifications ("why", "ok"): an exception
// that cannot be explained in ten characters has not been reviewed.
const minReasonLen = 10

// ParseBaseline parses lint.allow content. Blank lines and #-comment lines
// are skipped; every entry must carry a `# justification` of at least
// minReasonLen characters.
func ParseBaseline(r io.Reader, name string) (*Baseline, error) {
	b := &Baseline{}
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, reason, found := strings.Cut(line, "#")
		reason = strings.TrimSpace(reason)
		if !found || reason == "" {
			return nil, fmt.Errorf("%s:%d: allow entry lacks a `# justification`", name, ln)
		}
		fields := strings.Fields(body)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want `rule file scope # reason`, got %d fields", name, ln, len(fields))
		}
		if len(reason) < minReasonLen {
			return nil, fmt.Errorf("%s:%d: justification %q is too short (< %d chars); explain why the exception is safe",
				name, ln, reason, minReasonLen)
		}
		rule := fields[0]
		known := false
		for _, r := range AllRules {
			if r == rule {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("%s:%d: unknown rule %q", name, ln, rule)
		}
		b.Entries = append(b.Entries, AllowEntry{
			Rule: rule, File: fields[1], Scope: fields[2], Reason: reason, Line: ln,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Filter suppresses findings covered by the baseline. root anchors the
// relative paths entries use. It returns the surviving findings and any
// stale entries that matched nothing — both must be empty for a clean run.
func (b *Baseline) Filter(findings []Finding, root string) (kept []Finding, stale []AllowEntry) {
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel = filepath.ToSlash(r)
		}
		matched := false
		for i := range b.Entries {
			e := &b.Entries[i]
			if e.Rule == f.Rule && e.File == rel && (e.Scope == "*" || e.Scope == f.Scope) {
				e.used = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for _, e := range b.Entries {
		if !e.used {
			stale = append(stale, e)
		}
	}
	return kept, stale
}
