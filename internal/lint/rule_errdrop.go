package lint

import (
	"go/ast"
	"go/types"
)

// sendyMethods are method names on the encode/send surface: dropping their
// error means a message silently never reached the wire (or arrived
// corrupt), which active replication turns into divergent replica state
// rather than a visible failure.
var sendyMethods = map[string]bool{
	"Multicast":    true,
	"Broadcast":    true,
	"Send":         true,
	"SendTo":       true,
	"Encode":       true,
	"Decode":       true,
	"WriteMessage": true,
	"ReadMessage":  true,
}

// wireishSuffixes mark packages whose entire API is the encode-decode /
// transport surface; any discarded error from them is flagged.
var wireishSuffixes = []string{"/wire", "/transport", "/udptransport", "/timeserve"}

// checkErrdrop flags bare call statements that discard an error returned by
// a wire/transport-path function. An explicit `_ = f()` is accepted as a
// reviewed decision; a bare `f()` is indistinguishable from an oversight.
// Only callees with resolved types are judged (stdlib calls resolve through
// the real signatures of module packages, not the synthetic stdlib), so the
// rule never guesses.
func checkErrdrop(p *Package) []Finding {
	errType := types.Universe.Lookup("error").Type()
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !types.Identical(last, errType) {
				return true
			}
			onWirePath := fn.Pkg() != nil && hasAnySuffix(fn.Pkg().Path(), wireishSuffixes)
			if !onWirePath && !sendyMethods[fn.Name()] {
				return true
			}
			out = append(out, p.finding("errdrop", es,
				"%s returns an error that is silently discarded on a wire/transport path; handle it or acknowledge with `_ =`", fn.Name()))
			return true
		})
	}
	return out
}

// calleeFunc resolves a call's static callee, or nil for indirect calls,
// builtins, conversions, and unresolved (synthetic-stdlib) callees.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}
