package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked (best effort) package under analysis.
type Package struct {
	// Path is the package's import path under the load root's module prefix.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types is the checked package; stdlib imports resolve to synthetic
	// empty packages, so expressions touching them have invalid types and
	// rules must tolerate missing type info. Module-internal imports resolve
	// fully.
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks every non-test package under root. modPrefix
// is the import-path prefix the root directory maps to ("cts" for the repo,
// "corpus" for rule testdata). Test files, testdata directories, and files
// excluded by build constraints for the current platform are skipped —
// ctslint analyzes exactly what ships in a build.
func Load(root, modPrefix string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	ctx := build.Default

	err = filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var files []*ast.File
		for _, e := range entries {
			fn := e.Name()
			if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
				continue
			}
			if ok, err := ctx.MatchFile(dir, fn); err != nil || !ok {
				continue // other GOOS/GOARCH or build-tag excluded
			}
			af, err := parser.ParseFile(fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, fn), err)
			}
			files = append(files, af)
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		path := modPrefix
		if rel != "." {
			path = modPrefix + "/" + filepath.ToSlash(rel)
		}
		byPath[path] = &Package{Path: path, Dir: dir, Fset: fset, Files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	imp := &moduleImporter{done: make(map[string]*types.Package), fake: make(map[string]*types.Package)}
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(error) {}, // lenient: synthetic stdlib leaves gaps
		DisableUnusedImportCheck: true,
	}

	// Type-check in dependency order so module-internal imports resolve to
	// real packages (import cycles are illegal in Go, so the DFS terminates).
	checked := make(map[string]bool)
	var checkPkg func(path string) error
	checkPkg = func(path string) error {
		if checked[path] {
			return nil
		}
		checked[path] = true
		p := byPath[path]
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if _, ok := byPath[dep]; ok {
					if err := checkPkg(dep); err != nil {
						return err
					}
				}
			}
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, _ := conf.Check(path, fset, p.Files, p.Info) // errors swallowed, best-effort Info
		if tpkg == nil {
			return fmt.Errorf("lint: type-checking %s produced no package", path)
		}
		tpkg.MarkComplete()
		p.Types = tpkg
		imp.done[path] = tpkg
		return nil
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		if err := checkPkg(path); err != nil {
			return nil, err
		}
		pkgs = append(pkgs, byPath[path])
	}
	return pkgs, nil
}

// moduleImporter resolves module-internal imports to the packages Load has
// already checked and everything else (the standard library) to cached
// synthetic empty packages. Rules therefore see real types for module code
// and invalid types for stdlib-touching expressions.
type moduleImporter struct {
	done map[string]*types.Package
	fake map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := m.done[path]; p != nil {
		return p, nil
	}
	if p := m.fake[path]; p != nil {
		return p, nil
	}
	p := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	p.MarkComplete()
	m.fake[path] = p
	return p, nil
}
