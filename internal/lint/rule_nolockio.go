package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkNolockio flags blocking operations performed while a mutex is held:
// channel sends and receives, range-over-channel, select without a default
// clause, Wait() calls, time.Sleep, and net dial/listen calls. Token
// rotation bounds the whole group's clock-read latency (PAPER §4), so one
// replica sleeping or blocking on I/O inside a critical section stretches
// every replica's worst case — and lock-then-receive is the classic shape
// of a distributed deadlock.
//
// The analysis is per function body and flow-insensitive beyond statement
// order: a Lock()/RLock() call puts its receiver expression in the held
// set, Unlock()/RUnlock() removes it, and a deferred unlock holds to the
// end of the function. Function literals are analyzed as their own bodies
// (their blocking runs when they run, not at creation). sync.Cond.Wait,
// which must be called with the lock held, is the intended shape for
// condition variables — baseline it in lint.allow where used.
func checkNolockio(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &lockWalker{p: p, f: f, out: &out, held: map[string]token.Position{}}
					w.block(n.Body)
				}
				return true // recurse for nested FuncLits
			case *ast.FuncLit:
				w := &lockWalker{p: p, f: f, out: &out, held: map[string]token.Position{}}
				w.block(n.Body)
				return true
			}
			return true
		})
	}
	return out
}

type lockWalker struct {
	p    *Package
	f    *ast.File
	out  *[]Finding
	held map[string]token.Position // lock receiver expr → acquisition site
}

// lockOp classifies x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() calls,
// returning the receiver expression's printed form.
func (w *lockWalker) lockOp(call *ast.CallExpr) (recv string, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", false, false
	}
	// A package-qualified call (flock.Lock(...)) is not a mutex method.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := w.p.Info.Uses[id].(*types.PkgName); isPkg {
			return "", false, false
		}
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

func (w *lockWalker) holding() (string, token.Position, bool) {
	for recv, pos := range w.held {
		return recv, pos, true
	}
	return "", token.Position{}, false
}

func (w *lockWalker) flag(n ast.Node, what string) {
	recv, at, ok := w.holding()
	if !ok {
		return
	}
	*w.out = append(*w.out, w.p.finding("nolockio", n,
		"%s while %s is held (locked at line %d)", what, recv, at.Line))
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, acq, rel := w.lockOp(call); acq || rel {
				if acq {
					w.held[recv] = w.p.Fset.Position(call.Pos())
				} else {
					delete(w.held, recv)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		if _, _, rel := w.lockOp(s.Call); rel {
			return // deferred unlock: the lock stays held for the body
		}
		w.exprs(s.Call.Args) // args evaluate now; the call itself runs at return
	case *ast.GoStmt:
		w.exprs(s.Call.Args) // spawning is non-blocking; the lit body is its own walk
	case *ast.SendStmt:
		w.flag(s, "channel send")
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.AssignStmt:
		w.exprs(s.Rhs)
		w.exprs(s.Lhs)
	case *ast.ReturnStmt:
		w.exprs(s.Results)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.block(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.block(s.Body)
	case *ast.RangeStmt:
		if t, ok := w.p.Info.Types[s.X]; ok && t.Type != nil {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.flag(s, "range over channel")
			}
		}
		w.expr(s.X)
		w.block(s.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.flag(s, "select without default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(cc.List)
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(s)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values)
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

func (w *lockWalker) exprs(es []ast.Expr) {
	for _, e := range es {
		w.expr(e)
	}
}

// expr scans one expression for blocking operations, skipping function
// literals (their bodies run later, outside this critical section).
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.flag(n, "channel receive")
			}
		case *ast.CallExpr:
			if fn, ok := w.p.pkgCall(w.f, n, "time"); ok && fn == "Sleep" {
				w.flag(n, "time.Sleep")
			}
			if fn, ok := w.p.pkgCall(w.f, n, "net"); ok {
				w.flag(n, "net."+fn+" call")
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(n.Args) == 0 {
				w.flag(n, types.ExprString(sel)+"() call")
			}
		}
		return true
	})
}
