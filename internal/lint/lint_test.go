package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// want is one `// want: rule substring` expectation from the corpus.
type want struct {
	file string
	line int
	rule string
	sub  string
	used bool
}

// collectWants parses `// want: rule message-substring` comments from every
// corpus file. One comment can expect several findings on its line,
// separated by " ; ".
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					if !strings.HasPrefix(text, "want:") {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "want:"))
					pos := p.Fset.Position(cm.Pos())
					for _, one := range strings.Split(rest, ";") {
						rule, sub, ok := strings.Cut(strings.TrimSpace(one), " ")
						if !ok {
							t.Fatalf("%s: malformed want comment %q (need `want: rule substring`)",
								pos, cm.Text)
						}
						wants = append(wants, &want{
							file: pos.Filename, line: pos.Line,
							rule: rule, sub: strings.TrimSpace(sub),
						})
					}
				}
			}
		}
	}
	return wants
}

func loadCorpus(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("testdata/src", "corpus")
	if err != nil {
		t.Fatalf("Load corpus: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load corpus: no packages")
	}
	return pkgs
}

// absRoot resolves a lint root the way Load does, so Baseline.Filter sees
// the same paths findings carry.
func absRoot(t *testing.T, root string) string {
	t.Helper()
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("abs %s: %v", root, err)
	}
	return abs
}

// TestGoldenCorpus runs every rule over testdata/src and requires an exact
// match between findings and `// want:` comments, modulo the suppressions in
// testdata/corpus.allow (which must all be used — no stale entries).
func TestGoldenCorpus(t *testing.T) {
	pkgs := loadCorpus(t)
	findings := Run(pkgs, DefaultConfig())

	base, err := LoadBaseline("testdata/corpus.allow")
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(base.Entries) == 0 {
		t.Fatal("corpus.allow parsed to zero entries")
	}
	kept, stale := base.Filter(findings, absRoot(t, "testdata/src"))
	for _, e := range stale {
		t.Errorf("stale corpus.allow entry (matched nothing): %s", e)
	}

	wants := collectWants(t, pkgs)
	if len(wants) == 0 {
		t.Fatal("corpus has no want comments")
	}
	for _, f := range kept {
		matched := false
		for _, w := range wants {
			if w.used || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.rule != f.Rule || !strings.Contains(f.Msg, w.sub) {
				continue
			}
			w.used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: want %s %q, got no matching finding", w.file, w.line, w.rule, w.sub)
		}
	}
}

// TestRuleToggle proves rules run independently: enabling a single rule
// yields only that rule's findings, and every rule fires on the corpus.
func TestRuleToggle(t *testing.T) {
	pkgs := loadCorpus(t)
	for _, rule := range AllRules {
		cfg := DefaultConfig()
		cfg.Rules = map[string]bool{rule: true}
		findings := Run(pkgs, cfg)
		if len(findings) == 0 {
			t.Errorf("rule %s alone: no findings on corpus", rule)
		}
		for _, f := range findings {
			if f.Rule != rule {
				t.Errorf("rule %s alone produced a %s finding: %s", rule, f.Rule, f)
			}
		}
	}
}

// TestRepoClean is the self-hosting gate: the repository itself, filtered
// through the reviewed lint.allow, must be free of findings and free of
// stale baseline entries.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load("../..", "cts")
	if err != nil {
		t.Fatalf("Load repo: %v", err)
	}
	findings := Run(pkgs, DefaultConfig())
	base, err := LoadBaseline("../../lint.allow")
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	kept, stale := base.Filter(findings, absRoot(t, "../.."))
	for _, f := range kept {
		t.Errorf("repo finding not fixed or baselined: %s", f)
	}
	for _, e := range stale {
		t.Errorf("stale lint.allow entry (matched nothing): %s", e)
	}
}

func TestParseBaselineErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"missing justification", "notime foo.go Bar\n", "lacks a `# justification`"},
		{"empty justification", "notime foo.go Bar #   \n", "lacks a `# justification`"},
		{"wrong field count", "notime foo.go # why\n", "got 2 fields"},
		{"short justification", "notime foo.go Bar # why\n", "too short"},
		{"unknown rule", "bogus foo.go Bar # a plausible-length reason\n", `unknown rule "bogus"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBaseline(strings.NewReader(tc.in), "test.allow")
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseBaseline(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
		})
	}

	ok := "# comment\n\nnotime foo.go Bar # real reason\nerrdrop foo.go * # wildcard scope\n"
	b, err := ParseBaseline(strings.NewReader(ok), "test.allow")
	if err != nil {
		t.Fatalf("ParseBaseline(valid) err = %v", err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("ParseBaseline(valid) entries = %d, want 2", len(b.Entries))
	}
	if b.Entries[0].Reason != "real reason" || b.Entries[1].Scope != "*" {
		t.Fatalf("ParseBaseline(valid) parsed wrong: %+v", b.Entries)
	}
}

func TestBaselineStaleDetection(t *testing.T) {
	in := "notime gone.go Nobody # obsolete entry\n"
	b, err := ParseBaseline(strings.NewReader(in), "test.allow")
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	kept, stale := b.Filter(nil, ".")
	if len(kept) != 0 {
		t.Fatalf("kept = %v, want none", kept)
	}
	if len(stale) != 1 {
		t.Fatalf("stale = %d entries, want 1", len(stale))
	}
	if got := fmt.Sprint(stale[0]); !strings.Contains(got, "gone.go") {
		t.Fatalf("stale entry = %s, want the gone.go entry", got)
	}
}
