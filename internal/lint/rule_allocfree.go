package lint

// checkAllocfree proves the annotated hot paths allocation-free. A function
// carrying `//cts:allocfree` in its doc comment is a root; every function
// reachable from a root through the call graph must contain no allocating
// construct — make/new/append, string concatenation and conversions,
// composite literals, map writes, closure creation, interface boxing,
// variadic argument slices — and no call into code the analysis cannot see
// (stdlib bodies, dynamic calls) unless the reviewed assume list vouches for
// it. Each finding carries the call chain from the root so the fix site is
// obvious even three frames down.
//
// The serving hot path justifies the strictness: ROADMAP item 2 targets
// 1M+ qps on the timeserve edge, where one allocation per datagram is a GC
// death sentence, and core.LeaseRead is the per-query clock read every
// datagram performs.

import (
	"go/token"
	"strings"
)

// checkAllocfree walks the shared graph from every annotated root.
func checkAllocfree(g *Graph) []Finding {
	var out []Finding
	out = append(out, checkRequiredRoots(g)...)

	type siteKey struct {
		pos  token.Pos
		desc string
	}
	reported := make(map[siteKey]bool)
	report := func(n *FuncNode, chain []string, s site) {
		k := siteKey{s.pos, s.desc}
		if reported[k] {
			return
		}
		reported[k] = true
		f := Finding{
			Rule:  "allocfree",
			Pos:   g.position(s.pkg, s.pos),
			Scope: s.pkg.scopeOf(s.pos),
			Msg:   s.desc + " on allocfree path (chain: " + strings.Join(chain, " → ") + ")",
			Chain: append([]string(nil), chain...),
		}
		out = append(out, f)
	}

	// Per-root BFS. visited is global across roots: a function reachable from
	// two roots reports its sites once, attributed to the first root in
	// declaration order (sites are deduplicated by position anyway).
	visited := make(map[*FuncNode]bool)
	for _, root := range g.funcs {
		if !root.allocFree {
			continue
		}
		type item struct {
			n     *FuncNode
			chain []string
		}
		queue := []item{{root, []string{root.name}}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if visited[it.n] {
				continue
			}
			visited[it.n] = true
			sum := it.n.sum
			for _, s := range sum.allocs {
				report(it.n, it.chain, s)
			}
			for _, s := range sum.unknowns {
				report(it.n, it.chain, s)
			}
			for _, c := range sum.calls {
				for _, t := range c.targets {
					callee := g.nodeOf(t)
					if callee == nil {
						report(it.n, it.chain, site{c.pkg, c.pos,
							"call of " + t.Name() + " without an analyzable body (assumed to allocate)"})
						continue
					}
					if !visited[callee] {
						queue = append(queue, item{callee, append(append([]string(nil), it.chain...), callee.name)})
					}
				}
			}
		}
	}
	return out
}

// checkRequiredRoots enforces Config.AllocfreeRequire: the named functions
// must exist and carry the //cts:allocfree annotation whenever their package
// is part of the analyzed tree. This stops the annotation from silently
// disappearing in a refactor — the rule would then pass vacuously.
func checkRequiredRoots(g *Graph) []Finding {
	var out []Finding
	for _, req := range g.cfg.AllocfreeRequire {
		var pkg *Package
		for _, p := range g.pkgs {
			if hasAnySuffix(p.Path, []string{req.PkgSuffix}) {
				pkg = p
				break
			}
		}
		if pkg == nil {
			continue // package not in this load (corpus runs)
		}
		var node *FuncNode
		for _, n := range g.funcs {
			if n.pkg == pkg && scopeName(n.decl) == req.Func {
				node = n
				break
			}
		}
		switch {
		case node == nil:
			out = append(out, Finding{
				Rule:  "allocfree",
				Pos:   g.position(pkg, pkg.Files[0].Pos()),
				Scope: "-",
				Msg:   "required allocfree root " + req.Func + " not found in " + pkg.Path,
			})
		case !node.allocFree:
			out = append(out, Finding{
				Rule:  "allocfree",
				Pos:   g.position(pkg, node.decl.Pos()),
				Scope: scopeName(node.decl),
				Msg:   "required allocfree root " + req.Func + " is missing its //cts:allocfree annotation",
			})
		}
	}
	return out
}
