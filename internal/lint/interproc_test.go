package lint

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

// TestSharedGraphSingleBuild asserts the interprocedural substrate is built
// once per Run and shared by allocfree and lockorder — and not built at all
// when neither is enabled. The package load is already shared (one Load per
// ctslint invocation); this pins the same property for the graph, so the two
// new passes cannot double lint wall time.
func TestSharedGraphSingleBuild(t *testing.T) {
	pkgs := loadCorpus(t)

	before := GraphBuilds()
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"allocfree": true, "lockorder": true}
	Run(pkgs, cfg)
	if got := GraphBuilds() - before; got != 1 {
		t.Fatalf("GraphBuilds delta = %d running both interprocedural rules, want 1 shared build", got)
	}

	before = GraphBuilds()
	cfg.Rules = map[string]bool{"notime": true, "nolockio": true}
	Run(pkgs, cfg)
	if got := GraphBuilds() - before; got != 0 {
		t.Fatalf("GraphBuilds delta = %d with no interprocedural rule enabled, want 0", got)
	}
}

// TestAllocfreeRequiredRoots covers the contract that pins annotations in
// place: a required root that is missing, or present but unannotated, is
// itself a finding.
func TestAllocfreeRequiredRoots(t *testing.T) {
	pkgs := loadCorpus(t)
	cfg := DefaultConfig()
	cfg.Rules = map[string]bool{"allocfree": true}

	required := func(reqs []RequiredRoot) []Finding {
		c := cfg
		c.AllocfreeRequire = reqs
		var out []Finding
		for _, f := range Run(pkgs, c) {
			if strings.Contains(f.Msg, "required allocfree root") {
				out = append(out, f)
			}
		}
		return out
	}

	if got := required([]RequiredRoot{{PkgSuffix: "corpus/allocfree", Func: "Root"}}); len(got) != 0 {
		t.Fatalf("annotated root reported as missing: %v", got)
	}
	if got := required([]RequiredRoot{{PkgSuffix: "corpus/allocfree", Func: "NotRoot"}}); len(got) != 1 ||
		!strings.Contains(got[0].Msg, "missing its //cts:allocfree annotation") {
		t.Fatalf("unannotated required root: got %v, want one missing-annotation finding", got)
	}
	if got := required([]RequiredRoot{{PkgSuffix: "corpus/allocfree", Func: "Ghost"}}); len(got) != 1 ||
		!strings.Contains(got[0].Msg, "not found") {
		t.Fatalf("absent required root: got %v, want one not-found finding", got)
	}
	if got := required([]RequiredRoot{{PkgSuffix: "corpus/nosuchpkg", Func: "Root"}}); len(got) != 0 {
		t.Fatalf("requirement for a package outside the load should be skipped, got %v", got)
	}
}

// TestJSONSchema pins the -json JSONL schema byte for byte. CI consumes this
// format; changing a field name or ordering is a breaking change and must
// show up here.
func TestJSONSchema(t *testing.T) {
	findings := []Finding{
		{
			Rule:  "allocfree",
			Pos:   token.Position{Filename: "/repo/internal/timeserve/server.go", Line: 7, Column: 3},
			Scope: "Server.serveLoop",
			Msg:   "make allocates on allocfree path (chain: a → b)",
			Chain: []string{"a", "b"},
		},
		{
			Rule:  "notime",
			Pos:   token.Position{Filename: "/repo/x.go", Line: 1, Column: 1},
			Scope: "-",
			Msg:   "time.Now call",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings, "/repo"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"rule":"allocfree","file":"internal/timeserve/server.go","line":7,"col":3,"scope":"Server.serveLoop","msg":"make allocates on allocfree path (chain: a → b)","chain":["a","b"]}
{"rule":"notime","file":"x.go","line":1,"col":1,"scope":"-","msg":"time.Now call"}
`
	if got := buf.String(); got != want {
		t.Fatalf("JSONL output drifted from the pinned schema:\ngot:  %q\nwant: %q", got, want)
	}
}
