// Package notime is ctslint golden corpus: direct real-clock reads outside
// the clock abstraction packages.
package notime

import (
	"time"
	realtime "time"
)

func bad() {
	_ = time.Now()                 // want: notime time.Now
	time.Sleep(time.Millisecond)   // want: notime time.Sleep
	_ = time.After(time.Second)    // want: notime time.After
	_ = time.NewTimer(time.Second) // want: notime time.NewTimer
	_ = time.Since(start)          // want: notime time.Since
	_ = realtime.Now()             // want: notime time.Now
}

var start = time.Now() // want: notime time.Now

func okDurations() time.Duration {
	d := 5 * time.Millisecond // constructing durations is allowed
	var t time.Time           // using the package's types is allowed
	_ = t
	return d
}

func okShadowed() int {
	time := notTime{} // a local binding shadows the package
	return time.Now()
}

type notTime struct{}

func (notTime) Now() int { return 0 }
