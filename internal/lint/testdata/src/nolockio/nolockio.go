// Package nolockio is ctslint golden corpus: blocking operations inside
// mutex critical sections.
package nolockio

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) badSend(v int) {
	g.mu.Lock()
	g.ch <- v // want: nolockio channel send
	g.mu.Unlock()
}

func (g *guarded) badRecvUnderDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want: nolockio channel receive
}

func (g *guarded) badSleep() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want: nolockio time.Sleep ; notime time.Sleep
}

func (g *guarded) badSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want: nolockio select without default
	case v := <-g.ch:
		_ = v
	}
}

func (g *guarded) badDial() {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, _ = net.Dial("udp", "127.0.0.1:1") // want: nolockio net.Dial
}

func (g *guarded) badWait(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want: nolockio Wait
	g.mu.Unlock()
}

func (g *guarded) badRangeChan() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range g.ch { // want: nolockio range over channel
		_ = v
	}
}

func (g *guarded) okAfterUnlock(v int) {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- v // the lock is released: fine
}

func (g *guarded) okFuncLit() func() {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() { g.ch <- 1 } // runs later, outside the critical section
}

func (g *guarded) okSelectWithDefault() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		_ = v
	default: // non-blocking poll is fine under the lock
	}
}

func (g *guarded) okNoLock(v int) {
	g.ch <- v
}
