// Package maporder is ctslint golden corpus: map iteration order reaching
// send and encode paths. The blank wire import marks this package as able
// to put bytes on the wire, which gates the rule.
package maporder

import (
	"sort"

	"corpus/wire"
	_ "cts/internal/wire"
)

type sender struct{}

// Multicast is a stand-in send primitive.
func (sender) Multicast(b []byte) error { return nil }

func badDirectSend(m map[int]string, s sender) {
	for _, v := range m {
		_ = s.Multicast([]byte(v)) // want: maporder Multicast
	}
}

func badWireEncode(m map[int]string) []byte {
	var out []byte
	for _, v := range m {
		out = wire.AppendString(out, v) // want: maporder wire encoding
	}
	return out
}

func badUnsortedCollect(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want: maporder never sorted
	}
	return keys
}

func okCollectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func okCountOnly(m map[int]string) int {
	n := 0
	for range m { // the iteration order is unobservable
		n++
	}
	return n
}

func okSliceRange(xs []string, s sender) {
	for _, v := range xs { // slices iterate deterministically
		_ = s.Multicast([]byte(v))
	}
}
