// Package wire is ctslint corpus support: a stand-in for the repo's wire
// encode-decode surface (its import path ends in /wire, which both the
// maporder and errdrop rules key on).
package wire

import "errors"

var errNegative = errors.New("wire: negative value")

// AppendString encodes s onto b.
func AppendString(b []byte, s string) []byte { return append(b, s...) }

// Marshal encodes v.
func Marshal(v int) ([]byte, error) {
	if v < 0 {
		return nil, errNegative
	}
	return []byte{byte(v)}, nil
}

// Flush pushes buffered encodes to the transport.
func Flush() error { return nil }
