// Package allocfree exercises every reporting shape of the allocfree rule:
// chained findings through the call graph, each direct allocating construct,
// interface dispatch to an allocating implementation, unknown stdlib and
// dynamic calls, and the negatives (unannotated functions, assumed calls).
package allocfree

import (
	"encoding/binary"
	"fmt"
)

// --- chain: the allocation three frames below the root is reported at its
// site with the full call chain from the root.

//cts:allocfree
func Root() {
	mid()
}

func mid() {
	helper()
}

func helper() {
	_ = make([]byte, 8) // want: allocfree make allocates on allocfree path (chain: allocfree.Root → allocfree.mid → allocfree.helper)
}

// --- direct constructs inside an annotated function.

//cts:allocfree
func Direct(m map[string]int, s string, bs []byte) string {
	p := new(int) // want: allocfree new allocates
	_ = p
	bs = append(bs, 1) // want: allocfree append may grow its backing array
	m["k"] = 1         // want: allocfree map write may allocate
	s2 := s + "!"      // want: allocfree string concatenation allocates
	_ = []byte(s)      // want: allocfree conversion from string to slice allocates
	_ = string(bs)     // want: allocfree conversion to string allocates
	f := func() {}     // want: allocfree function literal allocates a closure
	_ = f
	return s2
}

//cts:allocfree
func Lits() {
	_ = []int{1, 2} // want: allocfree slice literal allocates
}

type box struct{ a, b int }

//cts:allocfree
func Escape() *box {
	return &box{} // want: allocfree &composite literal escapes to the heap
}

//cts:allocfree
func Spawn() {
	go idle() // want: allocfree go statement allocates a goroutine
}

func idle() {}

type val struct{ v int }

func (x val) value() int { return x.v }

//cts:allocfree
func Bind(x val) func() int {
	return x.value // want: allocfree method value allocates its bound receiver
}

// --- variadic call: one finding for the argument slice, one for boxing the
// concrete argument into the `any` parameter.

func sink(vals ...any) int { return len(vals) }

//cts:allocfree
func Variadic() int {
	return sink(7) // want: allocfree variadic call allocates its argument slice ; allocfree interface boxing of argument
}

// --- unknown code: stdlib bodies are invisible, dynamic calls unresolvable.

//cts:allocfree
func Stdlib() {
	_ = fmt.Sprintln("x") // want: allocfree call into unanalyzed fmt.Sprintln (assumed to allocate)
}

//cts:allocfree
func Dyn(f func() int) int {
	return f() // want: allocfree dynamic call of f
}

// --- interface dispatch: the call fans out to every module implementation;
// the allocating one is reported with the dispatch step in the chain, the
// clean one stays silent.

type source interface{ value() int }

type fixed struct{ v int }

func (f fixed) value() int { return f.v }

type fresh struct{}

func (fresh) value() int {
	return len(make([]byte, 4)) // want: allocfree make allocates on allocfree path (chain: allocfree.Dispatch → allocfree.fresh.value)
}

//cts:allocfree
func Dispatch(s source) int {
	return s.value()
}

// --- negatives: allocations outside any root are not this rule's business,
// and reviewed stdlib calls (assume list, value conversions) pass.

func NotRoot() []byte {
	return make([]byte, 1)
}

//cts:allocfree
func Clean(b []byte) uint64 {
	return binary.BigEndian.Uint64(b)
}
