// Package lockorder exercises the lockorder rule's reporting shapes: an
// order cycle between two mutex classes, a self-cycle (re-acquiring a held
// mutex), a blocking hazard reached through a call while locked, a
// Broadcast-under-lock wakeup, and the negative — nested ordered acquisition
// through a call chain without any inversion.
package lockorder

import "sync"

type pair struct {
	a, b sync.Mutex
	ch   chan int
	cond *sync.Cond
}

// lockAB and lockBA take the same two mutex classes in opposite orders: the
// classic inversion. One finding per cycle, at the earliest witness edge.

func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want: lockorder lock order cycle: lockorder.pair.a → lockorder.pair.b → lockorder.pair.a
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// hazard blocks on a channel through a call made while holding p.a —
// invisible to the single-function nolockio rule.

func (p *pair) push() {
	p.ch <- 1
}

func (p *pair) hazard() {
	p.a.Lock()
	p.push() // want: lockorder channel send while lockorder.pair.a is held (chain: lockorder.pair.hazard → lockorder.pair.push)
	p.a.Unlock()
}

// wake stampedes every cond waiter into a mutex the caller still holds.

func (p *pair) wake() {
	p.a.Lock()
	p.cond.Broadcast() // want: lockorder sync.Cond.Broadcast while lockorder.pair.a is held
	p.a.Unlock()
}

// selfish re-acquires a mutex class it already holds: a self-cycle.

type selfish struct{ mu sync.Mutex }

func (s *selfish) relock() {
	s.mu.Lock()
	s.mu.Lock() // want: lockorder lock order cycle: lockorder.selfish.mu → lockorder.selfish.mu
	s.mu.Unlock()
	s.mu.Unlock()
}

// nested is the negative: outer is always taken before inner, including
// through the call chain, so the order graph has an edge but no cycle.

type nested struct {
	outer, inner sync.Mutex
}

func (n *nested) takeInner() {
	n.inner.Lock()
	n.inner.Unlock()
}

func (n *nested) outerThenInner() {
	n.outer.Lock()
	n.takeInner()
	n.outer.Unlock()
}
