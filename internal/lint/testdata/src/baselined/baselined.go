// Package baselined is ctslint golden corpus: one violation per rule, every
// one covered by testdata/corpus.allow. The corpus test asserts that all of
// them are suppressed and that no allow entry is stale — the negative half
// of the baseline contract.
package baselined

import (
	"sync"
	"sync/atomic"
	"time"

	_ "cts/internal/wire"
)

type thing struct {
	mu sync.Mutex
	ch chan int
	n  uint64
}

// Multicast is a stand-in send primitive.
func (t *thing) Multicast(b []byte) error { return nil }

func sleepy() {
	time.Sleep(time.Millisecond) // suppressed by corpus.allow
}

func (t *thing) lockSend() {
	t.mu.Lock()
	t.ch <- 1 // suppressed by corpus.allow
	t.mu.Unlock()
}

func collect(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // suppressed by corpus.allow
	}
	return out
}

func (t *thing) mixed() uint64 {
	atomic.AddUint64(&t.n, 1)
	return t.n // suppressed by corpus.allow
}

func (t *thing) drop() {
	t.Multicast(nil) // suppressed by corpus.allow
}

//cts:allocfree
func hot() []byte {
	return make([]byte, 8) // suppressed by corpus.allow
}

type duo struct{ x, y sync.Mutex }

func (d *duo) xy() {
	d.x.Lock()
	d.y.Lock() // suppressed by corpus.allow (cycle witness with yx)
	d.y.Unlock()
	d.x.Unlock()
}

func (d *duo) yx() {
	d.y.Lock()
	d.x.Lock()
	d.x.Unlock()
	d.y.Unlock()
}
