// Package hwclock proves the notime exemption: packages whose import path
// ends in internal/hwclock (or timesource, sim, testutil) ARE the clock
// abstraction and may read real time. No finding is expected in this file.
package hwclock

import "time"

// Real reads the machine clock; allowed here, banned everywhere else.
func Real() int64 { return time.Now().UnixNano() }
