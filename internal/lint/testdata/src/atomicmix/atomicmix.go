// Package atomicmix is ctslint golden corpus: fields accessed both through
// sync/atomic functions and plainly.
package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64
	safe uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) badPlainRead() uint64 {
	return c.n // want: atomicmix plain access
}

func (c *counter) badPlainWrite() {
	c.n = 0 // want: atomicmix plain access
}

func (c *counter) okOtherField() uint64 {
	c.safe++ // never accessed atomically; plain access is fine
	return c.safe
}
