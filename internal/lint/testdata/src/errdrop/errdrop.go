// Package errdrop is ctslint golden corpus: silently discarded errors on
// the wire/transport surface.
package errdrop

import "corpus/wire"

type conn struct{}

// Multicast is a stand-in send primitive.
func (conn) Multicast(b []byte) error { return nil }

// helper is off the wire surface; its dropped error is vet's business, not
// this rule's.
func (conn) helper() error { return nil }

func bad(c conn) {
	c.Multicast(nil) // want: errdrop Multicast
	wire.Flush()     // want: errdrop Flush
	wire.Marshal(1)  // want: errdrop Marshal
}

func ok(c conn) error {
	_ = c.Multicast(nil) // explicit acknowledgment is a reviewed decision
	if err := c.Multicast(nil); err != nil {
		return err
	}
	c.helper() // not a wire-path callee
	return nil
}
