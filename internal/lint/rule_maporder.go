package lint

import (
	"go/ast"
	"go/types"
)

// checkMaporder flags map iterations whose visitation order can reach other
// replicas. Go randomizes map iteration per run, so bytes or call sequences
// derived from an unsorted map range differ across replicas processing the
// same ordered event — exactly the "small nondeterministic divergence" that
// breaks active replication (PAPER §2: replicas must be deterministic state
// machines; WALDEN shows clock-sync protocols failing through such drift).
//
// Two shapes are flagged, only in packages that can put bytes on the wire
// (they import the wire/transport layers or are one, per Config):
//
//  1. a map-range body that directly calls a send primitive
//     (Multicast/Broadcast/Send/SendTo) or a wire-package function — the
//     send order itself becomes nondeterministic;
//  2. a map-range body that appends range variables to a slice that is
//     never sorted later in the same function — the collected order leaks
//     to whatever consumes the slice (the sanctioned pattern is
//     collect-then-sort, as in gcs.announceLocal).
func checkMaporder(p *Package, cfg Config) []Finding {
	if !p.importsAny(cfg.OrderedImports) && !hasAnySuffix(p.Path, cfg.OrderedPkgSuffixes) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t, ok := p.Info.Types[rs.X]
				if !ok || t.Type == nil {
					return true
				}
				if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				out = append(out, p.mapRangeFindings(f, fd, rs)...)
				return true
			})
		}
	}
	return out
}

var sendMethods = map[string]bool{
	"Multicast": true,
	"Broadcast": true,
	"Send":      true,
	"SendTo":    true,
}

// mapRangeFindings analyzes one map-range statement inside fn.
func (p *Package) mapRangeFindings(f *ast.File, fn *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	iterVars := map[string]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			iterVars[id.Name] = true
		}
	}
	if len(iterVars) == 0 {
		return nil // order unobservable without the key/value
	}

	var out []Finding
	appendDests := map[string]ast.Node{} // slice expr → first offending append
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sendMethods[sel.Sel.Name] {
				out = append(out, p.finding("maporder", n,
					"map iteration order reaches a %s call; collect, sort, then send", sel.Sel.Name))
			}
			if fname, ok := p.pkgCall(f, n, "wire"); ok {
				out = append(out, p.finding("maporder", n,
					"map iteration order reaches wire encoding (wire.%s); collect, sort, then encode", fname))
			}
		case *ast.AssignStmt:
			// dest = append(dest, ...iterVar...) collects in map order.
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				return true
			}
			usesIter := false
			for _, arg := range call.Args[1:] {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && iterVars[id.Name] {
						usesIter = true
					}
					return true
				})
			}
			if usesIter {
				dest := types.ExprString(n.Lhs[0])
				if _, seen := appendDests[dest]; !seen {
					appendDests[dest] = n
				}
			}
		}
		return true
	})

	for dest, node := range appendDests {
		if !sortedAfter(p, fn, rs, dest) {
			out = append(out, p.finding("maporder", node,
				"map iteration order collected into %s, which is never sorted in %s; sort before it is encoded or sent", dest, fn.Name.Name))
		}
	}
	return out
}

// sortedAfter reports whether fn sorts dest (sort.Slice/sort.Sort/... or a
// slices.Sort* call with dest as first argument) after the range statement.
func sortedAfter(p *Package, fn *ast.FuncDecl, rs *ast.RangeStmt, dest string) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" || pkg.Name == "slices"
		if !isSort {
			return true
		}
		if types.ExprString(call.Args[0]) == dest {
			sorted = true
		}
		return true
	})
	return sorted
}
