package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkAtomicmix flags variables and struct fields accessed both through
// sync/atomic functions and through plain reads/writes in the same package.
// A plain access concurrent with atomic ones is a data race the race
// detector only catches when the interleaving actually happens; the lease
// plane's CAS monotone floor (DESIGN §7) is correct only if *every* access
// to the floor goes through atomics. go vet's "atomic" check only catches
// self-assignment misuse (x = atomic.AddUint64(&x, 1)); it does not catch
// mixed plain access, which is this rule's job. The typed atomics
// (atomic.Uint64, atomic.Pointer) are immune by construction — prefer them.
//
// The check is package-local and intentionally strict: initialization
// before the value is shared is still flagged, because "not yet shared" is
// an invariant reviewers cannot see locally. Baseline such sites in
// lint.allow with the publication argument spelled out.
func checkAtomicmix(p *Package) []Finding {
	// Pass 1: objects accessed through atomic functions, and the AST nodes
	// making those accesses (excluded from pass 2).
	atomicFuncs := map[string]bool{}
	for _, fn := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFuncs[fn+ty] = true
		}
	}
	atomicObjs := map[types.Object]string{} // object → one atomic call site (for the message)
	inAtomic := map[ast.Node]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := p.pkgCall(f, call, "sync/atomic")
			if !ok || !atomicFuncs[fn] || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			obj := p.referencedVar(un.X)
			if obj == nil {
				return true
			}
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = p.Fset.Position(call.Pos()).String()
			}
			// Exclude every identifier inside this atomic argument from the
			// plain-access pass.
			ast.Inspect(un, func(an ast.Node) bool {
				inAtomic[an] = true
				return true
			})
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other reference to those objects is a plain access. A
	// selector's Sel ident is judged once, through its SelectorExpr.
	selIdents := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(*ast.SelectorExpr); ok {
				selIdents[s.Sel] = true
			}
			return true
		})
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if inAtomic[n] {
				return true
			}
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if inAtomic[n.Sel] {
					return true
				}
				obj = p.Info.Uses[n.Sel]
			case *ast.Ident:
				if selIdents[n] {
					return true
				}
				obj = p.Info.Uses[n]
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if site, hot := atomicObjs[obj]; hot {
				out = append(out, p.finding("atomicmix", n,
					"plain access to %s, which is accessed via sync/atomic at %s; every access must be atomic (or use the typed atomics)",
					obj.Name(), shortPos(site)))
			}
			return true
		})
	}
	// Deduplicate multiple findings at the same position (Ident nested in
	// SelectorExpr resolves twice).
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	dedup := out[:0]
	for i, fnd := range out {
		if i > 0 && fnd.Pos == out[i-1].Pos {
			continue
		}
		dedup = append(dedup, fnd)
	}
	return dedup
}

// referencedVar resolves &x or &s.f to the variable/field object, if typed.
func (p *Package) referencedVar(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return p.referencedVar(e.X)
	}
	return nil
}

// shortPos trims the directory from a file:line:col position string.
func shortPos(s string) string {
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}
