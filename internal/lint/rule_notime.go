package lint

import (
	"go/ast"
)

// notimeBanned are the package time functions that read or schedule against
// the machine's real clock. Every one of them smuggles wall time past the
// hwclock/timesource abstraction, which is the only place real time is
// allowed to enter the stack (PAPER §3: replicas must read clocks through
// the synchronized offset, or the group clock is not consistent).
var notimeBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// checkNotime bans direct real-clock reads and timers outside the clock
// abstraction packages. Construction of time.Duration values and use of the
// time package's types remain free everywhere.
func checkNotime(p *Package, cfg Config) []Finding {
	if hasAnySuffix(p.Path, cfg.NotimeAllowed) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := p.pkgCall(f, call, "time"); ok && notimeBanned[fn] {
				out = append(out, p.finding("notime", call,
					"direct time.%s call outside the clock abstraction; inject a hwclock.Clock/Source (or baseline pure wall-clock measurement in lint.allow)", fn))
			}
			return true
		})
	}
	return out
}
