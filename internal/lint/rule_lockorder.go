package lint

// checkLockorder builds the repo-wide mutex-acquisition order graph and
// reports the two shapes that turn into distributed-system outages:
//
//   - cycles: lock class A is taken while B is held somewhere and B while A
//     is held somewhere else — two goroutines interleaving those paths
//     deadlock, and in this system a deadlocked replica holds the token (or
//     the lease plane) hostage for the whole group;
//   - blocking hazards across calls: a function that blocks (channel op,
//     blocking select) or calls sync.Cond.Broadcast reached through any call
//     chain while a mutex is held. nolockio catches the direct,
//     single-function shape; this rule catches the interprocedural one the
//     single-function matchers structurally cannot see.
//
// Lock identity is the canonical class from summary.lockClass
// ("core.TimeService.mu"): distinct instances of one class are merged,
// because an order inversion between two instances of the same class
// deadlocks just the same. Edges carry a witness position and call chain so
// the finding names where the inversion is introduced, not just that one
// exists.

import (
	"go/token"
	"sort"
	"strings"
)

// blockWitness is a transitively reachable blocking operation.
type blockWitness struct {
	desc      string
	chain     []string
	broadcast bool
}

// lockEdge is one "to acquired while from is held" observation; the
// smallest-position witness is kept per (from, to) pair.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	chain    []string
}

func checkLockorder(g *Graph) []Finding {
	var out []Finding

	// Pass 1 — transitive summaries, bottom-up over SCCs. For each function:
	// the lock classes any call path below it acquires (with the name chain
	// to the first acquisition) and the first blocking operation it can
	// reach. Within an SCC the members call each other, so iterate to a
	// fixpoint; len(scc)+1 rounds bound the longest propagation chain.
	acqOf := make(map[*FuncNode]map[string][]string)
	blkOf := make(map[*FuncNode]*blockWitness)
	for _, scc := range g.sccs {
		for iter := 0; iter <= len(scc); iter++ {
			for _, n := range scc {
				a := make(map[string][]string)
				var b *blockWitness
				for _, ev := range n.sum.acquires {
					if _, ok := a[ev.class]; !ok {
						a[ev.class] = []string{n.name}
					}
				}
				for _, ev := range n.sum.blocks {
					if b == nil {
						b = &blockWitness{ev.desc, []string{n.name}, ev.broadcast}
					}
				}
				for _, c := range n.sum.calls {
					for _, t := range c.targets {
						m := g.nodeOf(t)
						if m == nil {
							continue
						}
						for cls, chain := range acqOf[m] {
							if _, ok := a[cls]; !ok {
								a[cls] = append([]string{n.name}, chain...)
							}
						}
						if b == nil && blkOf[m] != nil {
							w := blkOf[m]
							b = &blockWitness{w.desc, append([]string{n.name}, w.chain...), w.broadcast}
						}
					}
				}
				acqOf[n] = a
				blkOf[n] = b
			}
		}
	}

	// Pass 2 — order edges and hazards from every body (declared functions
	// and function literals alike).
	edges := make(map[[2]string]lockEdge)
	addEdge := func(e lockEdge) {
		key := [2]string{e.from, e.to}
		old, ok := edges[key]
		if !ok || posLess(g, e.pkg, e.pos, old.pkg, old.pos) {
			edges[key] = e
		}
	}
	type siteKey struct {
		pos  token.Pos
		desc string
	}
	reported := make(map[siteKey]bool)
	hazard := func(pkg *Package, pos token.Pos, desc, held string, chain []string) {
		k := siteKey{pos, desc}
		if reported[k] {
			return
		}
		reported[k] = true
		msg := desc + " while " + held + " is held"
		if len(chain) > 1 {
			msg += " (chain: " + strings.Join(chain, " → ") + ")"
		}
		out = append(out, Finding{
			Rule:  "lockorder",
			Pos:   g.position(pkg, pos),
			Scope: pkg.scopeOf(pos),
			Msg:   msg,
			Chain: append([]string(nil), chain...),
		})
	}

	scan := func(name string, sum *summary) {
		for _, ev := range sum.acquires {
			for _, h := range ev.held {
				addEdge(lockEdge{h, ev.class, ev.pkg, ev.pos, []string{name}})
			}
		}
		for _, ev := range sum.blocks {
			// Direct channel ops under a lock are nolockio's findings; the
			// Broadcast-under-lock thundering herd is ours.
			if ev.broadcast && len(ev.held) > 0 {
				hazard(ev.pkg, ev.pos, ev.desc, strings.Join(ev.held, ", "), []string{name})
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, t := range c.targets {
				m := g.nodeOf(t)
				if m == nil {
					continue
				}
				for cls, chain := range acqOf[m] {
					for _, h := range c.held {
						addEdge(lockEdge{h, cls, c.pkg, c.pos, append([]string{name}, chain...)})
					}
				}
				if w := blkOf[m]; w != nil {
					hazard(c.pkg, c.pos, w.desc, strings.Join(c.held, ", "),
						append([]string{name}, w.chain...))
				}
			}
		}
	}
	for _, n := range g.funcs {
		scan(n.name, n.sum)
	}
	for _, s := range g.anon {
		scan(s.name, s)
	}

	out = append(out, lockCycles(g, edges)...)
	return out
}

// lockCycles finds strongly connected components of the lock-order graph and
// reports one finding per cycle, positioned at the cycle's smallest witness.
func lockCycles(g *Graph, edges map[[2]string]lockEdge) []Finding {
	succ := make(map[string][]string)
	classes := make(map[string]bool)
	for key := range edges {
		succ[key[0]] = append(succ[key[0]], key[1])
		classes[key[0]] = true
		classes[key[1]] = true
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		sort.Strings(succ[c])
	}

	// Tarjan over lock classes.
	index := 1
	idx := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		idx[v], low[v] = index, index
		index++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if idx[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && idx[w] < low[v] {
				low[v] = idx[w]
			}
		}
		if low[v] == idx[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, c := range names {
		if idx[c] == 0 {
			strongconnect(c)
		}
	}

	var out []Finding
	for _, scc := range sccs {
		if len(scc) == 1 {
			if _, self := edges[[2]string{scc[0], scc[0]}]; !self {
				continue
			}
		}
		sort.Strings(scc)
		in := make(map[string]bool, len(scc))
		for _, c := range scc {
			in[c] = true
		}
		// Witness: the smallest-position edge inside the component.
		var wit *lockEdge
		for _, c := range scc {
			for _, w := range succ[c] {
				if !in[w] {
					continue
				}
				e := edges[[2]string{c, w}]
				if wit == nil || posLess(g, e.pkg, e.pos, wit.pkg, wit.pos) {
					cp := e
					wit = &cp
				}
			}
		}
		cycle := cyclePath(scc[0], in, succ, edges)
		out = append(out, Finding{
			Rule:  "lockorder",
			Pos:   g.position(wit.pkg, wit.pos),
			Scope: wit.pkg.scopeOf(wit.pos),
			Msg:   "lock order cycle: " + strings.Join(cycle, " → "),
			Chain: cycle,
		})
	}
	return out
}

// cyclePath walks edges inside the component from start back to start,
// preferring lexicographically smaller successors, and renders the cycle.
func cyclePath(start string, in map[string]bool, succ map[string][]string, edges map[[2]string]lockEdge) []string {
	path := []string{start}
	seen := map[string]bool{start: true}
	cur := start
	for {
		next := ""
		for _, w := range succ[cur] {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				return append(path, start)
			}
			if !seen[w] && next == "" {
				next = w
			}
		}
		if _, self := edges[[2]string{cur, cur}]; self && cur == start && len(path) == 1 {
			return []string{start, start}
		}
		if next == "" {
			// No unvisited successor: close on start if possible (shouldn't
			// be unreachable inside one SCC, but stay total).
			return append(path, start)
		}
		seen[next] = true
		path = append(path, next)
		cur = next
	}
}

// posLess orders two positions across the shared FileSet.
func posLess(g *Graph, pa *Package, a token.Pos, pb *Package, b token.Pos) bool {
	qa, qb := g.position(pa, a), g.position(pb, b)
	if qa.Filename != qb.Filename {
		return qa.Filename < qb.Filename
	}
	return qa.Offset < qb.Offset
}
