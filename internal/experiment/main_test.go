package experiment

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"cts/internal/order"
)

// -orderer reruns the whole experiment suite over a different total-order
// protocol, e.g.
//
//	go test ./internal/experiment -orderer=seq
//
// CI runs the suite under both totem and seq. The instant orderer needs a
// shared hub per cluster and models no network faults, so it is exercised by
// the order conformance suite instead.
var ordererFlag = flag.String("orderer", "", "total-order protocol for every cluster in the suite (totem|seq)")

func TestMain(m *testing.M) {
	flag.Parse()
	kind, err := order.ParseKind(*ordererFlag)
	if err != nil || kind == order.KindInstant {
		fmt.Fprintf(os.Stderr, "experiment: -orderer must be totem or seq (got %q)\n", *ordererFlag)
		os.Exit(2)
	}
	DefaultOrderer = kind
	os.Exit(m.Run())
}

// totemOnly skips tests that pin Totem-specific wire behavior — token
// timing, per-token suppression counts, token_recv trace spans — when the
// suite runs under another orderer.
func totemOnly(t *testing.T) {
	t.Helper()
	if DefaultOrderer != order.KindTotem {
		t.Skipf("pins totem wire behavior; suite is running -orderer=%s", DefaultOrderer)
	}
}
