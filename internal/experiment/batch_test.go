package experiment

import (
	"testing"
	"time"

	"cts/internal/replication"
	"cts/internal/transport"
)

// This file exercises the batched-CCS plane on the simulated testbed: many
// concurrent reader threads per replica must coalesce rounds into shared
// batch messages while every replica still decides identical per-thread
// read sequences, with and without batching, and across a fault-injected
// replica crash landing while batches are in flight.

// spawnReaders spawns reader threads on every replica of c in identical
// order (so thread identifiers agree across replicas); the thread in slot r
// on node id performs opsFor(id) consecutive reads. It returns the recorded
// per-node, per-slot value sequences and per-node finished counts, both
// mutated from the reader threads and safe to inspect between RunUntil
// steps (strict thread/loop alternation).
func spawnReaders(c *Cluster, ids []transport.NodeID, readers int,
	opsFor func(transport.NodeID) int) (map[transport.NodeID][][]time.Duration, map[transport.NodeID]*int) {
	values := make(map[transport.NodeID][][]time.Duration)
	finished := make(map[transport.NodeID]*int)
	for _, id := range ids {
		node := id
		values[node] = make([][]time.Duration, readers)
		finished[node] = new(int)
		ops := opsFor(node)
		app := c.Apps[node]
		for r := 0; r < readers; r++ {
			slot := r
			c.Mgrs[node].SpawnThread(func(ctx *replication.Ctx) {
				for j := 0; j < ops; j++ {
					values[node][slot] = append(values[node][slot], app.read(ctx))
				}
				*finished[node]++
			})
		}
	}
	return values, finished
}

// assertSamePrefixes checks that two replicas decided identical per-thread
// sequences on the common prefix of every reader slot.
func assertSamePrefixes(t *testing.T, a, b transport.NodeID, va, vb [][]time.Duration) {
	t.Helper()
	for slot := range va {
		sa, sb := va[slot], vb[slot]
		n := len(sa)
		if len(sb) < n {
			n = len(sb)
		}
		for j := 0; j < n; j++ {
			if sa[j] != sb[j] {
				t.Fatalf("reader %d read %d: node %v got %v, node %v got %v",
					slot, j, a, sa[j], b, sb[j])
			}
		}
	}
}

// TestConcurrentReadersDeterminism runs the concurrent-reader workload on
// the full testbed twice — batching on and batching off — and checks that
// in both configurations every replica decides identical per-thread
// sequences, that coalescing engages only when enabled, and that the
// sequences each replica returns are monotone.
func TestConcurrentReadersDeterminism(t *testing.T) {
	for _, disable := range []bool{false, true} {
		c, err := NewCluster(ClusterConfig{
			Seed:            11,
			Topology:        testbedTopology(),
			Style:           replication.Active,
			Mode:            ModeCTS,
			DisableBatching: disable,
			Observe:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids := []transport.NodeID{1, 2, 3}
		const readers, ops = 4, 6
		values, finished := spawnReaders(c, ids, readers,
			func(transport.NodeID) int { return ops })
		if !c.RunUntil(10*time.Second, func() bool {
			for _, id := range ids {
				if *finished[id] != readers {
					return false
				}
			}
			return true
		}) {
			t.Fatalf("disable=%v: readers never finished", disable)
		}
		assertSamePrefixes(t, 1, 2, values[1], values[2])
		assertSamePrefixes(t, 1, 3, values[1], values[3])
		for _, id := range ids {
			for slot, seq := range values[id] {
				if len(seq) != ops {
					t.Fatalf("disable=%v: node %v reader %d completed %d/%d reads",
						disable, id, slot, len(seq), ops)
				}
				for j := 1; j < len(seq); j++ {
					if seq[j] < seq[j-1] {
						t.Fatalf("disable=%v: node %v reader %d regressed %v -> %v",
							disable, id, slot, seq[j-1], seq[j])
					}
				}
			}
		}
		var batches uint64
		for _, id := range ids {
			batches += clusterCounter(c, id, "core.batches_sent")
		}
		if disable && batches != 0 {
			t.Fatalf("batching disabled but %d batch messages were sent", batches)
		}
		if !disable && batches == 0 {
			t.Fatal("batching enabled but no batch messages were sent")
		}
	}
}

// TestCrashDuringBatchedReads fail-stops a replica through the fault
// injector while the survivors' batched proposals are in flight. Node 1's
// readers finish a short sequence first (so the crash interrupts no local
// thread); the injector then crashes it mid-stream of the others. The
// survivors must complete identical full sequences, still coalescing, and
// the crashed replica's completed reads must be a prefix of theirs (safe
// delivery: nothing was delivered only to the crashed node).
func TestCrashDuringBatchedReads(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Seed:     23,
		Topology: testbedTopology(),
		Style:    replication.Active,
		Mode:     ModeCTS,
		Observe:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := []transport.NodeID{1, 2, 3}
	const readers, shortOps, ops = 4, 3, 12
	values, finished := spawnReaders(c, ids, readers, func(id transport.NodeID) int {
		if id == 1 {
			return shortOps
		}
		return ops
	})
	if !c.RunUntil(10*time.Second, func() bool { return *finished[1] == readers }) {
		t.Fatal("node 1's readers never finished their short sequences")
	}
	// The survivors must still be mid-stream, or the crash interrupts nothing.
	midStream := false
	for _, id := range []transport.NodeID{2, 3} {
		for _, seq := range values[id] {
			if len(seq) < ops {
				midStream = true
			}
		}
	}
	if !midStream {
		t.Fatal("survivors already done before the crash point; nothing in flight")
	}
	c.Inject.CrashAt(c.K.Now()+500*time.Microsecond, 1)

	survivors := []transport.NodeID{2, 3}
	if !c.RunUntil(10*time.Second, func() bool {
		return *finished[2] == readers && *finished[3] == readers
	}) {
		t.Fatalf("survivors never finished after the crash: %d/%d of %d",
			*finished[2], *finished[3], readers)
	}
	for _, id := range survivors {
		for slot, seq := range values[id] {
			if len(seq) != ops {
				t.Fatalf("survivor %v reader %d completed %d/%d reads", id, slot, len(seq), ops)
			}
		}
	}
	assertSamePrefixes(t, 2, 3, values[2], values[3])
	assertSamePrefixes(t, 1, 2, values[1], values[2])

	var coalesced uint64
	for _, id := range survivors {
		coalesced += clusterCounter(c, id, "core.rounds_coalesced")
	}
	if coalesced == 0 {
		t.Fatal("survivors never coalesced rounds")
	}
}

// TestRunFigure5Concurrent sanity-checks the E12 harness: with several
// readers the workload must coalesce rounds, and the amortized per-read
// overhead must undercut the single-reader configuration.
func TestRunFigure5Concurrent(t *testing.T) {
	multi, err := RunFigure5Concurrent(7, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if multi.RoundsCoalesced == 0 || multi.BatchesSent == 0 {
		t.Fatalf("concurrent run never coalesced: %+v", multi)
	}
	single, err := RunFigure5Concurrent(7, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if single.PerReadOverhead() <= 0 {
		t.Fatalf("single-reader run has no measurable overhead: %+v", single)
	}
	if got, limit := multi.PerReadOverhead(), single.PerReadOverhead()/2; got > limit {
		t.Fatalf("per-read overhead %v with 8 readers exceeds half the single-reader overhead %v",
			got, single.PerReadOverhead())
	}
}
