// Package experiment reconstructs the paper's testbed and evaluation (§4):
// a client on node P0 invoking a replicated server on nodes P1..Pn over a
// Totem ring on simulated 100 Mb/s Ethernet, plus the measurement harnesses
// that regenerate every figure and table. See DESIGN.md for the experiment
// index (E1–E11) and EXPERIMENTS.md for paper-vs-measured results.
package experiment

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"cts/internal/baseline"
	"cts/internal/campaign"
	"cts/internal/core"
	"cts/internal/faultinject"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/order"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/timesource"
	"cts/internal/transport"
	"cts/internal/wire"
)

// Group identifiers used by the experiment deployments.
const (
	ServerGroup wire.GroupID = 100
	ClientGroup wire.GroupID = 900
)

// TimeMode selects which time service the replicas run.
type TimeMode int

// Time service modes.
const (
	// ModeCTS is the paper's consistent time service.
	ModeCTS TimeMode = iota
	// ModeLocal reads raw physical clocks (no coordination) — the
	// "without consistent time service" configuration.
	ModeLocal
	// ModePrimaryBackup is the primary/backup conveyance baseline.
	ModePrimaryBackup
)

// ClockSpec describes one replica's physical hardware clock. It is the
// campaign vocabulary: experiment clusters and simulation campaigns share
// one topology description.
type ClockSpec = campaign.ClockSpec

// ClusterConfig configures a simulated deployment.
type ClusterConfig struct {
	Seed int64
	// Topology declares the deployment: replica clocks (explicit specs or a
	// generated plan), link fabric, and ordering protocol. Replicas run on
	// nodes 1..n; the client rides node 0. An empty Topology.Orderer takes
	// DefaultOrderer (totem unless the package test flag -orderer overrides
	// it), and the default LAN link profile is the calibrated Ethernet model.
	Topology campaign.Topology
	Style    replication.Style
	Mode     TimeMode
	// AgreedCCS selects agreed instead of safe delivery for CCS messages
	// (ModeCTS only; ablation of the paper's safe-delivery requirement).
	AgreedCCS bool
	// DisableBatching turns off CCS round coalescing (ModeCTS only; used by
	// determinism A/B tests and the concurrent-reader experiment).
	DisableBatching bool
	// Compensation options (ModeCTS only).
	Compensation core.Compensation
	MeanDelay    time.Duration
	ExternalGain float64
	ExternalSkew time.Duration // max transient skew of the reference
	// CheckpointEvery for passive replication; default 10.
	CheckpointEvery int
	// ClientTimeout bounds each invocation; zero = none.
	ClientTimeout time.Duration
	// Observe enables the observability layer: a cluster-wide obs.Recorder
	// (virtual-time clock) is plumbed through every stack layer and exposed
	// as Cluster.Obs. Off by default so measurement runs pay nothing.
	Observe bool
	// TraceSink, when set, receives the round trace events (implies Observe).
	TraceSink obs.TraceSink
}

// DefaultOrderer is the ordering protocol clusters run when the topology's
// Orderer is empty. The experiment package's -orderer test flag overrides
// it, so the whole experiment suite can be exercised against a different
// orderer (`go test ./internal/experiment -orderer=seq`).
var DefaultOrderer = order.KindTotem

// Cluster is a running simulated deployment: client on node 0, replicas on
// nodes 1..n.
type Cluster struct {
	K      *sim.Kernel
	Net    *simnet.Network
	Inject *faultinject.Injector
	Client *rpc.Client

	Stacks map[transport.NodeID]*gcs.Stack
	Mgrs   map[transport.NodeID]*replication.Manager
	Svcs   map[transport.NodeID]*core.TimeService
	PBs    map[transport.NodeID]*baseline.PrimaryBackup
	Apps   map[transport.NodeID]*ReaderApp

	// Reports collects core round reports per replica (ModeCTS).
	Reports map[transport.NodeID][]core.RoundReport
	// PBReports collects baseline read reports per replica.
	PBReports map[transport.NodeID][]baseline.Report

	// Obs is the cluster-wide recorder (nil unless ClusterConfig.Observe or
	// TraceSink is set). Gather its Samples between RunUntil steps — sources
	// are loop-confined and the kernel only runs inside Run calls.
	Obs *obs.Recorder

	cfg   ClusterConfig
	nodes []transport.NodeID
}

// NewCluster builds and starts the deployment, then lets the ring settle.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := cfg.Topology.NodeCount()
	if n == 0 {
		return nil, fmt.Errorf("experiment: at least one replica required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Style == 0 {
		cfg.Style = replication.Active
	}
	if cfg.Topology.Orderer == "" {
		cfg.Topology.Orderer = DefaultOrderer
	}
	model, err := cfg.Topology.Links.Model()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel(cfg.Seed)
	c := &Cluster{
		K:         k,
		Net:       simnet.NewNetwork(k, model),
		Stacks:    make(map[transport.NodeID]*gcs.Stack),
		Mgrs:      make(map[transport.NodeID]*replication.Manager),
		Svcs:      make(map[transport.NodeID]*core.TimeService),
		PBs:       make(map[transport.NodeID]*baseline.PrimaryBackup),
		Apps:      make(map[transport.NodeID]*ReaderApp),
		Reports:   make(map[transport.NodeID][]core.RoundReport),
		PBReports: make(map[transport.NodeID][]baseline.Report),
		cfg:       cfg,
	}
	c.Inject = faultinject.New(k, c.Net)
	if cfg.Observe || cfg.TraceSink != nil {
		rec, err := obs.New(obs.Config{Now: k.Now, Sink: cfg.TraceSink})
		if err != nil {
			return nil, err
		}
		c.Obs = rec
	}
	for i := 0; i <= n; i++ {
		c.nodes = append(c.nodes, transport.NodeID(i))
	}
	// Client stack on node 0.
	if err := c.addStack(0, true); err != nil {
		return nil, err
	}
	cl, err := rpc.NewClient(rpc.ClientConfig{
		Runtime: k, Stack: c.Stacks[0],
		ClientGroup: ClientGroup, ServerGroup: ServerGroup,
		Timeout: cfg.ClientTimeout,
		Obs:     c.Obs.ForNode(0),
	})
	if err != nil {
		return nil, err
	}
	c.Client = cl
	// Replicas on nodes 1..n.
	for i := 0; i < n; i++ {
		id := transport.NodeID(i + 1)
		if err := c.addStack(id, true); err != nil {
			return nil, err
		}
		if err := c.addReplica(id, cfg.Topology.Clocks.Spec(cfg.Seed, i, n), false); err != nil {
			return nil, err
		}
	}
	for _, s := range c.Stacks {
		s.Start()
	}
	c.K.RunFor(3 * time.Millisecond) // ring + group views settle
	return c, nil
}

func (c *Cluster) addStack(id transport.NodeID, bootstrap bool) error {
	s, err := gcs.New(gcs.Config{
		Runtime:   c.K,
		Transport: c.Net.Endpoint(id),
		Members:   c.nodes,
		Bootstrap: bootstrap,
		Order:     order.Options{Kind: c.cfg.Topology.Orderer},
		Obs:       c.Obs.ForNode(uint32(id)),
	})
	if err != nil {
		return err
	}
	c.Stacks[id] = s
	c.Inject.Register(id, s)
	return nil
}

func (c *Cluster) addReplica(id transport.NodeID, spec ClockSpec, recovering bool) error {
	clock := hwclock.NewSim(c.K.Now,
		hwclock.WithOffset(spec.Offset), hwclock.WithDriftPPM(spec.DriftPPM))
	app := &ReaderApp{
		rng:   rand.New(rand.NewSource(c.cfg.Seed*1000 + int64(id))),
		clock: clock,
	}
	mgr, err := replication.New(replication.Config{
		Runtime:         c.K,
		Stack:           c.Stacks[id],
		Group:           ServerGroup,
		Style:           c.cfg.Style,
		App:             app,
		Recovering:      recovering,
		CheckpointEvery: c.cfg.CheckpointEvery,
		Obs:             c.Obs.ForNode(uint32(id)),
	})
	if err != nil {
		return err
	}
	switch c.cfg.Mode {
	case ModeCTS:
		ccfg := core.Config{
			Manager:         mgr,
			Clock:           clock,
			AgreedCCS:       c.cfg.AgreedCCS,
			DisableBatching: c.cfg.DisableBatching,
			Compensation:    c.cfg.Compensation,
			MeanDelay:       c.cfg.MeanDelay,
			ExternalGain:    c.cfg.ExternalGain,
			OnRound: func(r core.RoundReport) {
				c.Reports[id] = append(c.Reports[id], r)
			},
		}
		if c.cfg.Compensation == core.CompExternal {
			maxSkew := c.cfg.ExternalSkew
			if maxSkew == 0 {
				maxSkew = 500 * time.Microsecond
			}
			ccfg.External = timesource.New(c.K.Now, c.cfg.Seed+int64(id),
				timesource.WithMaxSkew(maxSkew))
		}
		svc, err := core.New(ccfg)
		if err != nil {
			return err
		}
		c.Svcs[id] = svc
		app.read = func(ctx *replication.Ctx) time.Duration { return svc.Gettimeofday(ctx) }
	case ModePrimaryBackup:
		pb, err := baseline.NewPrimaryBackup(mgr, clock, func(r baseline.Report) {
			c.PBReports[id] = append(c.PBReports[id], r)
		})
		if err != nil {
			return err
		}
		c.PBs[id] = pb
		app.read = pb.Gettimeofday
	case ModeLocal:
		lc := baseline.NewLocalClock(clock)
		app.read = lc.Gettimeofday
	}
	if err := mgr.Start(); err != nil {
		return err
	}
	c.Mgrs[id] = mgr
	c.Apps[id] = app
	return nil
}

// AddRecoveringReplica joins a fresh replica (new clock) on the next node id
// and returns its id. It recovers state through GET_STATE (§3.2).
func (c *Cluster) AddRecoveringReplica(spec ClockSpec) (transport.NodeID, error) {
	id := transport.NodeID(len(c.nodes))
	c.nodes = append(c.nodes, id)
	s, err := gcs.New(gcs.Config{
		Runtime:   c.K,
		Transport: c.Net.Endpoint(id),
		Members:   c.nodes,
		Bootstrap: false,
		Order:     order.Options{Kind: c.cfg.Topology.Orderer},
		Obs:       c.Obs.ForNode(uint32(id)),
	})
	if err != nil {
		return 0, err
	}
	c.Stacks[id] = s
	c.Inject.Register(id, s)
	if err := c.addReplica(id, spec, true); err != nil {
		return 0, err
	}
	s.Start()
	return id, nil
}

// Crash fail-stops a replica immediately.
func (c *Cluster) Crash(id transport.NodeID) {
	c.Stacks[id].Stop()
	c.Net.Endpoint(id).SetDown(true)
}

// RunUntil advances the simulation until cond holds or max virtual time
// passes, reporting whether cond held.
func (c *Cluster) RunUntil(max time.Duration, cond func() bool) bool {
	deadline := c.K.Now() + max
	for c.K.Now() < deadline {
		if cond() {
			return true
		}
		c.K.RunFor(200 * time.Microsecond)
	}
	return cond()
}

// ReaderApp is the replicated server of §4.2: "the server simply calls
// gettimeofday()" for the latency application, and performs a sequence of
// clock operations separated by random busy-wait delays for the skew/drift
// application.
type ReaderApp struct {
	rng   *rand.Rand
	clock hwclock.Clock
	read  func(*replication.Ctx) time.Duration

	// Readings are the group clock values returned, in order.
	Readings []time.Duration
	// ReadAt records the virtual time of each reading's completion.
	ReadAt []time.Duration
	// PhysBefore records the replica's raw physical clock just before each
	// operation (used by Figure 6's physical-interval series).
	PhysBefore []time.Duration
}

// Methods understood by ReaderApp.
const (
	// MethodCurrentTime returns the current time in two CORBA longs
	// (seconds and microseconds), exactly the paper's first application.
	MethodCurrentTime = "CurrentTime"
	// MethodReadSequence performs N clock operations separated by random
	// busy-wait delays (the paper's second application); the body carries N
	// as a big-endian uint32. The reply is the last reading.
	MethodReadSequence = "ReadSequence"
)

// Invoke implements replication.Application.
func (a *ReaderApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	switch method {
	case MethodCurrentTime:
		v := a.record(ctx)
		return encodeTimeval(v)
	case MethodReadSequence:
		n := 1
		if len(body) >= 4 {
			n = int(binary.BigEndian.Uint32(body))
		}
		var v time.Duration
		for i := 0; i < n; i++ {
			// The paper inserts an empty iteration loop of 30k/60k/90k
			// iterations, yielding delays of roughly 60–400µs depending on
			// scheduling; sleep system calls are too coarse (10ms ticks).
			// The random choice is per replica, so the synchronizer
			// rotates randomly among the server replicas.
			iters := 30000 * (1 + a.rng.Intn(3))
			delay := time.Duration(float64(iters) * 2 * float64(time.Nanosecond) *
				(1 + 1.2*a.rng.Float64()))
			ctx.Sleep(delay)
			v = a.record(ctx)
		}
		return encodeTimeval(v)
	}
	return nil
}

func (a *ReaderApp) record(ctx *replication.Ctx) time.Duration {
	a.PhysBefore = append(a.PhysBefore, a.clock.Read())
	v := a.read(ctx)
	a.Readings = append(a.Readings, v)
	a.ReadAt = append(a.ReadAt, a.clock.Read())
	return v
}

// Snapshot implements replication.Application. The readings are
// measurement state, not replicated state; the replicated state is empty.
func (a *ReaderApp) Snapshot() []byte { return nil }

// Restore implements replication.Application.
func (a *ReaderApp) Restore([]byte) {}

// encodeTimeval packs a duration as the paper's "two CORBA longs":
// seconds and microseconds.
func encodeTimeval(v time.Duration) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint32(out[0:], uint32(v/time.Second))
	binary.BigEndian.PutUint32(out[4:], uint32((v%time.Second)/time.Microsecond))
	return out
}

// DecodeTimeval unpacks a CurrentTime reply.
func DecodeTimeval(b []byte) (time.Duration, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("experiment: timeval reply %d bytes, want 8", len(b))
	}
	sec := time.Duration(binary.BigEndian.Uint32(b[0:])) * time.Second
	usec := time.Duration(binary.BigEndian.Uint32(b[4:])) * time.Microsecond
	return sec + usec, nil
}
