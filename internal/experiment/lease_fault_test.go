package experiment

import (
	"testing"
	"time"

	"cts/internal/campaign"
	"cts/internal/core"
	"cts/internal/replication"
	"cts/internal/transport"
)

// This file exercises the lease plane under the paper's fault model on the
// simulated testbed: a synchronizer crash and a membership change, both
// landing mid-lease, must invalidate every outstanding lease (epoch bump),
// and across the reconfiguration no sampled timestamp may fall outside its
// staleness bound or regress the group clock.

// leaseSampler accumulates sequential lease reads and checks the two
// client-visible invariants. Samples are taken between kernel steps, so
// each one happened-before the next and the floor comparison is exact.
type leaseSampler struct {
	t     *testing.T
	floor time.Duration
	last  map[transport.NodeID]time.Duration
}

func newLeaseSampler(t *testing.T) *leaseSampler {
	return &leaseSampler{t: t, last: make(map[transport.NodeID]time.Duration)}
}

func (p *leaseSampler) sample(c *Cluster, id transport.NodeID) (core.LeaseReading, bool) {
	p.t.Helper()
	r, ok := c.Svcs[id].LeaseRead()
	if !ok {
		return r, false
	}
	if r.GroupClock+r.Bound < p.floor {
		p.t.Fatalf("replica %v: timestamp outside staleness bound: interval [%v, %v] below floor %v",
			id, r.GroupClock-r.Bound, r.GroupClock+r.Bound, p.floor)
	}
	if last, seen := p.last[id]; seen && r.GroupClock < last {
		p.t.Fatalf("replica %v: group clock regressed %v -> %v", id, last, r.GroupClock)
	}
	p.last[id] = r.GroupClock
	if f := r.GroupClock - r.Bound; f > p.floor {
		p.floor = f
	}
	return r, true
}

// counter reads one per-node registry counter between kernel steps.
func clusterCounter(c *Cluster, id transport.NodeID, name string) uint64 {
	var v uint64
	for _, s := range c.Obs.Samples() {
		if s.Node == uint32(id) && s.Name == name {
			v += s.Value
		}
	}
	return v
}

// leaseCluster builds an observed ModeCTS cluster with the lease plane
// enabled and refreshed on every replica.
func leaseCluster(t *testing.T, seed int64, style replication.Style, specs []ClockSpec) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Seed:     seed,
		Topology: campaign.Explicit(specs...),
		Style:    style,
		Mode:     ModeCTS,
		Observe:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range c.Svcs {
		if err := svc.EnableLease(core.LeaseConfig{Window: 30 * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	c.K.RunFor(time.Millisecond)
	for _, svc := range c.Svcs {
		svc.RefreshLease()
	}
	held := func() bool {
		for _, svc := range c.Svcs {
			if _, ok := svc.LeaseRead(); !ok {
				return false
			}
		}
		return true
	}
	if !c.RunUntil(5*time.Second, held) {
		t.Fatal("replicas never established leases")
	}
	return c
}

// TestLeaseSynchronizerCrashInvalidates crashes the synchronizer mid-lease.
// Under passive replication the primary is the only replica sending CCS
// proposals, i.e. the synchronizer of every round; its fail-stop (scripted
// through the fault injector) forces both a synchronizer failover and a
// membership change. Survivors must drop their leases, re-arm under a
// higher epoch once the new synchronizer runs a round, and never serve a
// timestamp outside its bound or behind the pre-crash group clock.
func TestLeaseSynchronizerCrashInvalidates(t *testing.T) {
	specs := []ClockSpec{{Offset: 0}, {Offset: 3 * time.Second}, {Offset: 9 * time.Second}}
	c := leaseCluster(t, 31, replication.Passive, specs)
	sampler := newLeaseSampler(t)

	before := make(map[transport.NodeID]core.LeaseReading)
	for _, id := range []transport.NodeID{1, 2, 3} {
		r, ok := sampler.sample(c, id)
		if !ok {
			t.Fatalf("replica %v holds no lease before the crash", id)
		}
		before[id] = r
	}

	// Script the synchronizer's fail-stop just ahead of now, mid-lease.
	c.Inject.Register(1, c.Stacks[1])
	c.Inject.CrashAt(c.K.Now()+10*time.Millisecond, 1)
	survivors := []transport.NodeID{2, 3}
	if !c.RunUntil(10*time.Second, func() bool {
		for _, id := range survivors {
			if clusterCounter(c, id, "core.lease_invalidations") == 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("synchronizer crash never invalidated the survivors' leases")
	}
	for _, id := range survivors {
		if _, ok := c.Svcs[id].LeaseRead(); ok {
			t.Fatalf("replica %v still serving a lease from the crashed synchronizer's view", id)
		}
	}

	// Failover: the next primary refreshes and serving resumes under a new
	// epoch. RefreshLease is posted on every survivor; only the new primary
	// competes, the rest adopt its round.
	if !c.RunUntil(10*time.Second, func() bool {
		for _, id := range survivors {
			c.Svcs[id].RefreshLease()
		}
		for _, id := range survivors {
			if _, ok := c.Svcs[id].LeaseRead(); !ok {
				return false
			}
		}
		return true
	}) {
		t.Fatal("survivors never re-established leases after failover")
	}
	for _, id := range survivors {
		r, ok := sampler.sample(c, id)
		if !ok {
			t.Fatalf("replica %v lost its lease again", id)
		}
		if r.Epoch <= before[id].Epoch {
			t.Fatalf("replica %v epoch %d not past pre-crash epoch %d",
				id, r.Epoch, before[id].Epoch)
		}
	}
}

// TestLeaseMembershipChangeInvalidates grows the group mid-lease: a
// recovering replica joins via state transfer, which installs a new view.
// Incumbents must invalidate, the newcomer must integrate without ever
// causing a group clock regression, and post-join leases carry a higher
// epoch.
func TestLeaseMembershipChangeInvalidates(t *testing.T) {
	specs := []ClockSpec{{Offset: 0}, {Offset: 2 * time.Second}}
	c := leaseCluster(t, 32, replication.Active, specs)
	sampler := newLeaseSampler(t)

	incumbents := []transport.NodeID{1, 2}
	before := make(map[transport.NodeID]core.LeaseReading)
	for _, id := range incumbents {
		r, ok := sampler.sample(c, id)
		if !ok {
			t.Fatalf("replica %v holds no lease before the join", id)
		}
		before[id] = r
	}

	// A new replica with a wildly wrong clock joins mid-lease.
	joined, err := c.AddRecoveringReplica(ClockSpec{Offset: 100 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	live := false
	if !c.RunUntil(10*time.Second, func() bool {
		c.K.Post(func() { live = c.Mgrs[joined].Live() })
		c.K.RunFor(50 * time.Microsecond)
		return live
	}) {
		t.Fatal("joining replica never went live")
	}
	for _, id := range incumbents {
		if clusterCounter(c, id, "core.lease_invalidations") == 0 {
			t.Fatalf("replica %v saw no lease invalidation on the join view", id)
		}
	}

	// Refresh under the grown group: everyone serves again, epoch advanced,
	// and the newcomer's 100s-fast clock never leaks into the group clock.
	if err := c.Svcs[joined].EnableLease(core.LeaseConfig{Window: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	c.K.RunFor(time.Millisecond)
	all := append(incumbents, joined)
	if !c.RunUntil(10*time.Second, func() bool {
		for _, id := range all {
			c.Svcs[id].RefreshLease()
		}
		for _, id := range all {
			if _, ok := c.Svcs[id].LeaseRead(); !ok {
				return false
			}
		}
		return true
	}) {
		t.Fatal("group never re-established leases after the join")
	}
	for _, id := range all {
		r, ok := sampler.sample(c, id)
		if !ok {
			t.Fatalf("replica %v lost its lease again", id)
		}
		if pre, had := before[id]; had && r.Epoch <= pre.Epoch {
			t.Fatalf("replica %v epoch %d not past pre-join epoch %d", id, r.Epoch, pre.Epoch)
		}
		// Far below the newcomer's raw +100s clock: integration, not leakage.
		if r.GroupClock > before[1].GroupClock+30*time.Second {
			t.Fatalf("replica %v group clock %v jumped toward the newcomer's clock", id, r.GroupClock)
		}
	}
}
