package experiment

import (
	"testing"

	"cts/internal/obs"
)

// TestFigure5RoundTrace drives the Figure 5 workload (three-way actively
// replicated server) with the observability layer on and asserts that every
// replica emits the complete, ordered CCS round lifecycle —
// read_start → proposal_queued → ccs_sent → first_ordered → adopted →
// read_done — for the invocation thread's early rounds.
func TestFigure5RoundTrace(t *testing.T) {
	totemOnly(t)
	const invocations = 5
	sink := obs.NewMemorySink(0)
	res, err := RunFigure5Traced(1, invocations, sink)
	if err != nil {
		t.Fatalf("RunFigure5Traced: %v", err)
	}
	evs := sink.Events()
	if len(evs) == 0 {
		t.Fatal("trace sink received no events")
	}

	// Under active replication every replica (nodes 1..3) runs the
	// invocation thread (id 1) and competes in every round.
	const invThread = 1
	for node := uint32(1); node <= 3; node++ {
		for round := uint64(1); round <= invocations; round++ {
			span, err := obs.VerifyRound(evs, node, invThread, round)
			if err != nil {
				t.Errorf("node %d round %d: %v", node, round, err)
				continue
			}
			for i := 1; i < len(span); i++ {
				if span[i].T < span[i-1].T {
					t.Errorf("node %d round %d: %s at %v precedes %s at %v",
						node, round, span[i].Name, span[i].T, span[i-1].Name, span[i-1].T)
				}
			}
		}
	}

	// The totem sub-spans of the safe-delivery path must be present: CCS
	// messages use safe delivery, which blocks on the safe point for about
	// one extra token circulation (§4.3).
	var tokens, safeWaits, safeDelivered int
	for _, ev := range evs {
		if ev.Scope != obs.ScopeTotem {
			continue
		}
		switch ev.Name {
		case obs.EvTokenRecv:
			tokens++
		case obs.EvSafeWait:
			safeWaits++
		case obs.EvSafeDelivered:
			safeDelivered++
		}
	}
	if tokens == 0 {
		t.Error("no token_recv events recorded")
	}
	if safeWaits == 0 || safeDelivered == 0 {
		t.Errorf("safe-delivery sub-spans missing: %d safe_wait, %d safe_delivered",
			safeWaits, safeDelivered)
	}

	// The gathered metrics must cover every instrumented layer under the
	// canonical names.
	m := obs.SampleMap(res.Metrics)
	for _, name := range []string{
		"core.rounds_initiated", "core.ccs_sent",
		"totem.tokens_handled", "totem.delivered",
		"gcs.multicasts", "gcs.app_delivered",
		"repl.executed", "repl.replies_sent",
		"rpc.invocations", "rpc.replies",
	} {
		if m[name] == 0 {
			t.Errorf("metric %s is zero or missing", name)
		}
	}
	if m["rpc.replies"] != invocations {
		t.Errorf("rpc.replies = %d, want %d", m["rpc.replies"], invocations)
	}
}

// TestClusterObserveDisabledByDefault pins the nil fast path: a cluster
// without Observe has no recorder, so instrumentation stays off.
func TestClusterObserveDisabledByDefault(t *testing.T) {
	res, err := RunFigure5(1, 2)
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if len(res.Metrics) != 0 {
		t.Fatalf("untraced run gathered %d metric samples, want 0", len(res.Metrics))
	}
}
