package experiment

import (
	"strings"
	"testing"
	"time"

	"cts/internal/core"
	"cts/internal/transport"
)

// The experiment tests run scaled-down versions of each figure/table and
// assert the paper's qualitative shape. Full-size runs (10,000 invocations)
// are exercised by the benchmark harness and cmd/ctsbench.

func TestFigure5ShapeOverheadPositive(t *testing.T) {
	r, err := RunFigure5(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r.With.N() != 300 || r.Without.N() != 300 {
		t.Fatalf("sample sizes: %d/%d", r.With.N(), r.Without.N())
	}
	// The service adds latency (the paper: ≈300µs, one extra token
	// circulation on the 4-node ring ≈ 4 hops ≈ 220µs in our calibration).
	over := r.Overhead()
	if over < 100*time.Microsecond {
		t.Fatalf("overhead = %v, want ≥ 100µs (one extra token circulation)", over)
	}
	if over > 2*time.Millisecond {
		t.Fatalf("overhead = %v, implausibly large", over)
	}
	// Baseline latency is itself nontrivial (request ordering + reply).
	if r.Without.Mean() < 100*time.Microsecond {
		t.Fatalf("baseline mean %v too small to be a real round trip", r.Without.Mean())
	}
	if !strings.Contains(r.Render(), "overhead") {
		t.Fatal("render missing overhead line")
	}
}

func TestMessageCountsSuppression(t *testing.T) {
	totemOnly(t)
	const ops = 400
	r, err := RunMessageCounts(2, ops)
	if err != nil {
		t.Fatal(err)
	}
	if int(r.TotalSent) < ops {
		t.Fatalf("total CCS on wire %d < rounds %d", r.TotalSent, ops)
	}
	// Without suppression there would be 3×ops; require the large majority
	// of duplicates gone (paper: 10,000 rounds → 10,000 messages total).
	if int(r.TotalSent) > ops+ops/2 {
		t.Fatalf("total CCS on wire %d for %d rounds; suppression ineffective", r.TotalSent, ops)
	}
	// The paper's counts are heavily skewed (1 / 9,977 / 22): one ring
	// position wins nearly every round of the Figure 5 workload.
	var max uint64
	for _, n := range r.PerNode {
		if n > max {
			max = n
		}
	}
	if int(max) < ops*6/10 {
		t.Fatalf("no dominant synchronizer: per-node %v for %d rounds", r.PerNode, ops)
	}
	var sum uint64
	for _, n := range r.PerNode {
		sum += n
	}
	if sum != r.TotalSent {
		t.Fatalf("per-node sum %d != total %d", sum, r.TotalSent)
	}
	if !strings.Contains(r.Render(), "CCS message counts") {
		t.Fatal("render malformed")
	}
}

func TestFigure6Shape(t *testing.T) {
	// Synchronizer rotation is a token-ring property: the replica closest
	// behind the token wins the round. Under the leader-sequencer the
	// sender co-located with the leader wins every round, so there is no
	// rotation to assert.
	totemOnly(t)
	r, err := RunFigure6(3, 400, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds != 20 || len(r.IntervalGroup) != 20 {
		t.Fatalf("rounds = %d, intervals = %d", r.Rounds, len(r.IntervalGroup))
	}
	// (a) Intervals are in the paper's regime (inserted delay 60–400µs plus
	// the round's ordering latency: a few hundred µs up to ~2ms).
	for i, iv := range r.IntervalGroup {
		if iv <= 0 {
			t.Fatalf("group interval %d = %v, not positive", i, iv)
		}
		if iv > 5*time.Millisecond {
			t.Fatalf("group interval %d = %v, out of regime", i, iv)
		}
	}
	// The synchronizer rotates: at least two distinct winners in 20 rounds.
	winners := make(map[transport.NodeID]bool)
	for _, w := range r.Winner {
		winners[w] = true
	}
	if len(winners) < 2 {
		t.Fatalf("synchronizer never rotated: %v", r.Winner)
	}
	// (b) The winner's offset trends downward (occasional increases allowed).
	if len(r.WinnerOffset) < 10 {
		t.Fatalf("winner offsets: %d", len(r.WinnerOffset))
	}
	first, last := r.WinnerOffset[0], r.WinnerOffset[len(r.WinnerOffset)-1]
	if last >= first {
		t.Fatalf("winner offset did not decrease: %v -> %v", first, last)
	}
	// (c) The group clock runs slower than every physical clock.
	lastIdx := r.Rounds - 1
	for _, id := range []transport.NodeID{1, 2, 3} {
		if r.NormGroup[lastIdx] >= r.NormPhys[id][lastIdx] {
			t.Fatalf("group clock (%v) not slower than %v's physical clock (%v)",
				r.NormGroup[lastIdx], id, r.NormPhys[id][lastIdx])
		}
	}
	out := r.Render()
	for _, want := range []string{"Figure 6(a)", "Figure 6(b)", "Figure 6(c)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFigure1InconsistencyEliminated(t *testing.T) {
	r, err := RunFigure1(4, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Raw local clocks disagree even though the hardware is synchronized
	// (operations execute at different real times).
	if r.SpreadRaw.Max() == 0 {
		t.Fatal("raw clock readings never diverged; Figure 1 premise not reproduced")
	}
	// The consistent time service removes the inconsistency entirely.
	if r.SpreadCTS.Max() != 0 {
		t.Fatalf("CTS readings diverged by up to %v", r.SpreadCTS.Max())
	}
	if !strings.Contains(r.Render(), "spread") {
		t.Fatal("render malformed")
	}
}

func TestRollbackBaselineVsCTS(t *testing.T) {
	// Backup clock 2s BEHIND the primary: the baseline rolls back.
	r, err := RunRollback(5, -2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineJump() >= 0 {
		t.Fatalf("baseline should roll back; jump = %v", r.BaselineJump())
	}
	if r.CTSJump() < 0 {
		t.Fatalf("consistent time service rolled back by %v", r.CTSJump())
	}
	if !strings.Contains(r.Render(), "Roll-back") {
		t.Fatal("render malformed")
	}
}

func TestFastForwardBaselineVsCTS(t *testing.T) {
	// Backup clock 2s AHEAD: the baseline jumps forward by ≈2s; the service
	// advances only by the failover duration.
	r, err := RunRollback(6, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineJump() < time.Second {
		t.Fatalf("baseline should fast-forward ≈2s; jump = %v", r.BaselineJump())
	}
	if r.CTSJump() < 0 || r.CTSJump() > time.Second {
		t.Fatalf("CTS jump = %v, want small and non-negative", r.CTSJump())
	}
}

func TestRecoveryIntegration(t *testing.T) {
	r, err := RunRecovery(7, 200*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.After < r.Before {
		t.Fatalf("group clock regressed across recovery: %v -> %v", r.Before, r.After)
	}
	if r.After > r.Before+time.Minute {
		t.Fatalf("group clock jumped toward the new clock: %v -> %v", r.Before, r.After)
	}
	if r.SpecialRounds == 0 {
		t.Fatal("no special round taken")
	}
	if !r.NewcomerMatch {
		t.Fatal("newcomer readings inconsistent with existing replicas")
	}
}

func TestDriftCompensationOrdering(t *testing.T) {
	// MeanDelay=40µs is the paper's measured Totem CCS ordering delay.
	// The leader-sequencer loses ~1µs per round (the winner anchors at its
	// send time and keeps winning), so the testbed constant overshoots by
	// design; compensation calibration is protocol-specific (§3.3).
	totemOnly(t)
	r, err := RunDrift(8, 400)
	if err != nil {
		t.Fatal(err)
	}
	lagNone := r.LagPerMode[core.CompNone]
	lagMean := r.LagPerMode[core.CompMeanDelay]
	lagExt := r.LagPerMode[core.CompExternal]
	if lagNone <= 0 {
		t.Fatalf("uncompensated lag = %v, want positive (group clock slow)", lagNone)
	}
	if absDur(lagMean) >= absDur(lagNone) {
		t.Fatalf("mean-delay compensation did not reduce |lag|: %v vs %v", lagMean, lagNone)
	}
	if absDur(lagExt) >= absDur(lagNone) {
		t.Fatalf("external compensation did not reduce |lag|: %v vs %v", lagExt, lagNone)
	}
	if !strings.Contains(r.Render(), "Drift compensation") {
		t.Fatal("render malformed")
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestTokenTimingPeakNearPaper(t *testing.T) {
	totemOnly(t)
	r, err := RunTokenTiming(9, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops.N() < 4000 {
		t.Fatalf("only %d hop samples", r.Hops.N())
	}
	// Paper: peak probability density ≈51µs. Our calibrated model must put
	// the mode bin within [40µs, 70µs).
	if r.Mode < 40*time.Microsecond || r.Mode >= 70*time.Microsecond {
		t.Fatalf("token-passing mode bin at %v, want near 51µs", r.Mode)
	}
	if !strings.Contains(r.Render(), "Token-passing") {
		t.Fatal("render malformed")
	}
}

func TestScalingMonotoneCost(t *testing.T) {
	totemOnly(t)
	r, err := RunScaling(10, []int{2, 4, 8}, 60)
	if err != nil {
		t.Fatal(err)
	}
	// A bigger ring means a longer token rotation, so latency grows.
	if r.MeanLat[8] <= r.MeanLat[2] {
		t.Fatalf("latency did not grow with group size: 2->%v 8->%v",
			r.MeanLat[2], r.MeanLat[8])
	}
	for _, size := range r.Sizes {
		if r.RoundsSec[size] <= 0 {
			t.Fatalf("size %d: no throughput recorded", size)
		}
	}
	if !strings.Contains(r.Render(), "scaling") {
		t.Fatal("render malformed")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Seed: 1}); err == nil {
		t.Fatal("cluster with no replicas accepted")
	}
}

func TestDecodeTimeval(t *testing.T) {
	v := 8*time.Hour + 123456*time.Microsecond
	got, err := DecodeTimeval(encodeTimeval(v))
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip: %v -> %v", v, got)
	}
	if _, err := DecodeTimeval([]byte{1}); err == nil {
		t.Fatal("short timeval accepted")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := RunMessageCounts(42, 120)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMessageCounts(42, 120)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range a.PerNode {
		if b.PerNode[id] != n {
			t.Fatalf("nondeterministic counts at %v: %d vs %d", id, n, b.PerNode[id])
		}
	}
}
