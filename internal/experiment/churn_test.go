package experiment

import (
	"math/rand"
	"testing"
	"time"

	"cts/internal/campaign"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/transport"
)

// TestChurnStress drives continuous clock reads through a five-replica
// active group while the fault injector repeatedly crashes and revives
// replicas and partitions and heals the network. Throughout, the paper's
// guarantees must hold at the clients and survivors:
//
//   - every returned group clock value is monotonically non-decreasing;
//   - replicas that executed the same reads recorded the same values;
//   - the service makes progress whenever a primary component exists.
func TestChurnStress(t *testing.T) {
	const (
		seed     = 99
		replicas = 5
		duration = 8 * time.Second // virtual
	)
	specs := make([]ClockSpec, replicas)
	for i := range specs {
		specs[i] = ClockSpec{
			Offset:   time.Duration(i*13) * time.Second,
			DriftPPM: float64(i*11%60) - 30,
		}
	}
	c, err := NewCluster(ClusterConfig{
		Seed:          seed,
		Topology:      campaign.Explicit(specs...),
		Style:         replication.Active,
		Mode:          ModeCTS,
		Observe:       true,
		ClientTimeout: 2 * time.Second, // reads during total outage must not hang
	})
	if err != nil {
		t.Fatal(err)
	}

	// Schedule the churn: every ~600ms one fault event. Replica 1 is left
	// alone so at least one replica holds the full history, and at most one
	// replica is down at a time so a quorum (3 of 6 nodes incl. client ≥
	// majority of ring) usually exists.
	rng := rand.New(rand.NewSource(seed))
	down := transport.NodeID(0)
	at := 500 * time.Millisecond
	revive := func(id transport.NodeID) {
		c.Inject.ReviveAt(at, id, nil)
		// The revived processor rejoins the ring automatically (its stack
		// was only isolated, not stopped: we use partitions for crashes so
		// protocol state survives — a full restart is exercised by the
		// recovery tests).
	}
	for at < duration-time.Second {
		switch rng.Intn(3) {
		case 0: // isolate a random replica (not node 1), later reconnect
			id := transport.NodeID(2 + rng.Intn(replicas-1))
			if down == 0 {
				down = id
				cur := at
				c.K.At(cur, func() { c.Net.Endpoint(id).SetDown(true) })
				at += 400 * time.Millisecond
				revive(id)
				down = 0
			}
		case 1: // partition client+majority vs the rest, then heal
			cur := at
			c.Inject.PartitionAt(cur, []transport.NodeID{0, 1, 2, 3},
				[]transport.NodeID{4, 5})
			at += 300 * time.Millisecond
			c.Inject.HealAt(at)
		case 2: // loss window
			c.Inject.LossWindow(at, at+200*time.Millisecond, 0.1)
			at += 200 * time.Millisecond
		}
		at += 600 * time.Millisecond
	}

	// Continuous sequential reads with a short think time.
	var values []time.Duration
	errors := 0
	stop := false
	var invoke func()
	invoke = func() {
		if stop {
			return
		}
		c.Client.Invoke(MethodCurrentTime, nil, func(r rpc.Reply) {
			if r.Err != nil {
				errors++
			} else if v, err := DecodeTimeval(r.Body); err == nil {
				values = append(values, v)
			}
			c.K.After(20*time.Millisecond, invoke)
		})
	}
	invoke()
	c.K.RunUntil(duration)
	stop = true
	c.K.RunFor(100 * time.Millisecond)

	if len(values) < 50 {
		t.Fatalf("only %d successful reads under churn (errors=%d)", len(values), errors)
	}
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			t.Fatalf("group clock rolled back under churn at %d: %v -> %v",
				i, values[i-1], values[i])
		}
	}
	// Replica 1 (never disturbed) and any replica with the same number of
	// recorded readings agree on every common suffix value.
	base := c.Apps[1].Readings
	if len(base) == 0 {
		t.Fatal("replica 1 recorded nothing")
	}
	for i := 1; i < len(base); i++ {
		if base[i] < base[i-1] {
			t.Fatalf("replica 1 recorded a regression at %d: %v -> %v",
				i, base[i-1], base[i])
		}
	}
	for id := transport.NodeID(2); id <= transport.NodeID(replicas); id++ {
		other := c.Apps[id].Readings
		n := len(other)
		if n > len(base) {
			n = len(base)
		}
		// Compare the tails: both replicas executed the most recent reads.
		for i := 1; i <= n; i++ {
			if base[len(base)-i] != other[len(other)-i] {
				// A replica that was isolated may have skipped reads; its
				// recorded values then interleave differently. Only require
				// that every value it recorded appears in replica 1's
				// history (no invented values).
				found := false
				for _, v := range base {
					if v == other[len(other)-i] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("replica %v recorded %v, unknown to replica 1",
						id, other[len(other)-i])
				}
			}
		}
	}
	// No defensive monotonicity clamps were needed anywhere.
	c.K.Post(func() {
		for _, s := range c.Obs.Samples() {
			if s.Name == "core.monotonicity_fixes" && s.Value != 0 {
				t.Errorf("replica %d needed %d monotonicity fixes", s.Node, s.Value)
			}
		}
	})
	c.K.RunFor(time.Millisecond)
	t.Logf("churn survived: %d reads, %d timeouts, final clock %v",
		len(values), errors, values[len(values)-1])
}
