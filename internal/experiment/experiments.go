package experiment

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cts/internal/campaign"
	"cts/internal/core"
	"cts/internal/obs"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/stats"
	"cts/internal/totem"
	"cts/internal/transport"
)

// testbedClocks reproduces the testbed's slightly disagreeing hardware
// clocks: phase offsets of a few ms and drifts of tens of ppm, typical of
// commodity PC oscillators.
func testbedClocks() []ClockSpec {
	return []ClockSpec{
		{Offset: 0, DriftPPM: 12},
		{Offset: 3 * time.Millisecond, DriftPPM: -9},
		{Offset: -2 * time.Millisecond, DriftPPM: 21},
	}
}

// testbedTopology is the paper testbed as a campaign topology: the explicit
// clocks above on calibrated LAN links, under the default orderer.
func testbedTopology() campaign.Topology {
	return campaign.Explicit(testbedClocks()...)
}

// ---------------------------------------------------------------------------
// E1 — Figure 5: PDF of end-to-end latency, with and without the service.
// ---------------------------------------------------------------------------

// Figure5Result holds the two latency samples of Figure 5.
type Figure5Result struct {
	With    stats.Durations // consistent time service active
	Without stats.Durations // raw local clocks
	// Metrics carries the stack-wide counters of the traced (ModeCTS) run,
	// gathered through the obs.Source registry. Empty unless the run was
	// started with RunFigure5Traced.
	Metrics []obs.Sample
}

// Overhead reports the added mean latency (the paper measures ≈300µs, one
// extra token circulation).
func (r *Figure5Result) Overhead() time.Duration {
	return r.With.Mean() - r.Without.Mean()
}

// RunFigure5 measures the end-to-end latency of a CurrentTime invocation on
// a three-way actively replicated server, over `invocations` sequential
// calls, with and without the consistent time service (§4.2 application 1).
// A small random client think time between invocations de-phases the client
// from the token rotation, so the latency sample covers all rotation phases
// (back-to-back invocations lock onto the rotation and hide stage costs in
// the wait for the client node's token visit).
func RunFigure5(seed int64, invocations int) (*Figure5Result, error) {
	return runFigure5(seed, invocations, nil, false)
}

// RunFigure5Traced is RunFigure5 with the observability layer enabled on the
// ModeCTS cluster: round trace events go to sink (which may be nil for
// metrics only) and Figure5Result.Metrics carries the gathered stack-wide
// counters. The measurement (ModeLocal) cluster stays uninstrumented.
func RunFigure5Traced(seed int64, invocations int, sink obs.TraceSink) (*Figure5Result, error) {
	return runFigure5(seed, invocations, sink, true)
}

func runFigure5(seed int64, invocations int, sink obs.TraceSink, observe bool) (*Figure5Result, error) {
	res := &Figure5Result{}
	for _, mode := range []TimeMode{ModeCTS, ModeLocal} {
		cc := ClusterConfig{
			Seed:     seed,
			Topology: testbedTopology(),
			Style:    replication.Active,
			Mode:     mode,
		}
		if mode == ModeCTS && observe {
			cc.Observe = true
			cc.TraceSink = sink
		}
		c, err := NewCluster(cc)
		if err != nil {
			return nil, err
		}
		sample := &res.Without
		if mode == ModeCTS {
			sample = &res.With
		}
		think := rand.New(rand.NewSource(seed + 77))
		done := 0
		var start time.Duration
		var invoke func()
		invoke = func() {
			start = c.K.Now()
			c.Client.Invoke(MethodCurrentTime, nil, func(rep rpc.Reply) {
				if rep.Err == nil {
					sample.Add(c.K.Now() - start)
				}
				done++
				if done < invocations {
					c.K.After(time.Duration(think.Intn(1000))*time.Microsecond, invoke)
				}
			})
		}
		invoke()
		if !c.RunUntil(time.Duration(invocations)*10*time.Millisecond+time.Second,
			func() bool { return done >= invocations }) {
			return nil, fmt.Errorf("figure5: %d/%d invocations completed (mode %d)",
				done, invocations, mode)
		}
		if c.Obs != nil {
			res.Metrics = c.Obs.Samples()
		}
	}
	return res, nil
}

// Render formats the two PDFs side by side, 50µs bins, as the paper plots.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — end-to-end latency at the client (n=%d per mode)\n", r.With.N())
	fmt.Fprintf(&b, "  with CTS:    %s\n", r.With.Summary())
	fmt.Fprintf(&b, "  without CTS: %s\n", r.Without.Summary())
	fmt.Fprintf(&b, "  overhead (mean): %v\n", r.Overhead())
	bin := 50 * time.Microsecond
	hw := r.With.Histogram(0, bin)
	ho := r.Without.Histogram(0, bin)
	bw, bo := hw.Bins(), ho.Bins()
	n := len(bw)
	if len(bo) > n {
		n = len(bo)
	}
	fmt.Fprintf(&b, "  %-16s %-22s %-22s\n", "latency bin", "P(with) density/ms", "P(without) density/ms")
	for i := 0; i < n; i++ {
		lo := time.Duration(i) * bin
		var dw, do float64
		if i < len(bw) {
			dw = bw[i].Density / 1000 // per ms for readability
		}
		if i < len(bo) {
			do = bo[i].Density / 1000
		}
		if dw == 0 && do == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%6v,%6v) %-22.4f %-22.4f\n", lo, lo+bin, dw, do)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E2 — §4.3 CCS message counts: duplicate suppression on the wire.
// ---------------------------------------------------------------------------

// MsgCountsResult reports, per replica node, how many CCS messages reached
// the network during a run of the skew/drift application.
type MsgCountsResult struct {
	Rounds    int
	PerNode   map[transport.NodeID]uint64
	TotalSent uint64
}

// RunMessageCounts drives `ops` sequential CurrentTime invocations on a
// three-way active server — the Figure 5 workload, whose run the paper's
// CCS counts are reported for — and counts the CCS messages each node put
// on the wire (paper: 1 / 9,977 / 22 for 10,000 rounds — about one message
// per round in total, thanks to duplicate suppression, and heavily skewed
// toward the replica whose token visit follows the request delivery).
func RunMessageCounts(seed int64, ops int) (*MsgCountsResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:     seed,
		Topology: testbedTopology(),
		Style:    replication.Active,
		Mode:     ModeCTS,
		Observe:  true,
	})
	if err != nil {
		return nil, err
	}
	done := 0
	var invoke func()
	invoke = func() {
		c.Client.Invoke(MethodCurrentTime, nil, func(rep rpc.Reply) {
			done++
			if done < ops {
				invoke()
			}
		})
	}
	invoke()
	if !c.RunUntil(time.Duration(ops)*10*time.Millisecond+time.Second,
		func() bool { return done >= ops }) {
		return nil, fmt.Errorf("msgcounts: %d/%d invocations completed", done, ops)
	}
	c.K.RunFor(10 * time.Millisecond) // let straggler suppression settle
	res := &MsgCountsResult{Rounds: ops, PerNode: make(map[transport.NodeID]uint64)}
	c.K.Post(func() {
		for _, s := range c.Obs.Samples() {
			if s.Name == "core.ccs_sent" {
				res.PerNode[transport.NodeID(s.Node)] += s.Value
				res.TotalSent += s.Value
			}
		}
	})
	c.K.RunFor(time.Millisecond)
	return res, nil
}

// driveReadSequence invokes MethodReadSequence once with the given count
// and runs the simulation to completion.
func driveReadSequence(c *Cluster, ops int) error {
	before := make(map[transport.NodeID]int, len(c.Apps))
	for id, app := range c.Apps {
		before[id] = len(app.Readings)
	}
	body := make([]byte, 4)
	binary.BigEndian.PutUint32(body, uint32(ops))
	done := false
	c.Client.Invoke(MethodReadSequence, body, func(rep rpc.Reply) { done = true })
	// Each round costs a few hundred µs of delay plus the ordering latency.
	budget := time.Duration(ops)*2*time.Millisecond + time.Second
	if !c.RunUntil(budget, func() bool { return done }) {
		return fmt.Errorf("read sequence of %d ops did not complete", ops)
	}
	// The reply comes from the fastest replica; give stragglers (which may
	// not block on rounds, e.g. raw local clocks) time to finish their
	// sequences. Best-effort: crashed or passive replicas never will.
	c.RunUntil(2*time.Second, func() bool {
		for id, app := range c.Apps {
			if len(app.Readings)-before[id] < ops {
				return false
			}
		}
		return true
	})
	return nil
}

// Render formats the per-node counts.
func (r *MsgCountsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CCS message counts (§4.3) — %d rounds\n", r.Rounds)
	ids := make([]transport.NodeID, 0, len(r.PerNode))
	for id := range r.PerNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "  %v sent %d CCS messages\n", id, r.PerNode[id])
	}
	fmt.Fprintf(&b, "  total on wire: %d (vs %d without suppression)\n",
		r.TotalSent, 3*r.Rounds)
	return b.String()
}

// ---------------------------------------------------------------------------
// E3/E4/E5 — Figure 6: read intervals, winner offset, group clock drift.
// ---------------------------------------------------------------------------

// Figure6Result holds the three series of Figure 6.
type Figure6Result struct {
	Rounds int
	// IntervalGroup[r] is the group-clock interval between reads r and r+1
	// (identical at every replica).
	IntervalGroup []time.Duration
	// IntervalPhys[id][r] is the physical-clock interval at replica id.
	IntervalPhys map[transport.NodeID][]time.Duration
	// Winner[r] is the synchronizer of round r+1.
	Winner []transport.NodeID
	// FirstWinner is the synchronizer of round 1.
	FirstWinner transport.NodeID
	// WinnerOffset[r] is the first-round winner's clock offset after round r+1.
	WinnerOffset []time.Duration
	// NormPhys[id][r] is replica id's physical clock at round r+1, normalized
	// by subtracting its value in the initial round; NormGroup likewise for
	// the group clock.
	NormPhys  map[transport.NodeID][]time.Duration
	NormGroup []time.Duration
}

// RunFigure6 runs the skew/drift application (§4.2 application 2): each
// replica performs `ops` clock operations separated by random busy-wait
// delays, and the first `rounds` rounds are reported as in Figure 6.
func RunFigure6(seed int64, ops, rounds int) (*Figure6Result, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:     seed,
		Topology: testbedTopology(),
		Style:    replication.Active,
		Mode:     ModeCTS,
	})
	if err != nil {
		return nil, err
	}
	if err := driveReadSequence(c, ops); err != nil {
		return nil, err
	}
	if rounds > ops-1 {
		rounds = ops - 1
	}
	res := &Figure6Result{
		Rounds:       rounds,
		IntervalPhys: make(map[transport.NodeID][]time.Duration),
		NormPhys:     make(map[transport.NodeID][]time.Duration),
	}
	ids := []transport.NodeID{1, 2, 3}
	app1 := c.Apps[1]
	for r := 0; r < rounds; r++ {
		res.IntervalGroup = append(res.IntervalGroup, app1.Readings[r+1]-app1.Readings[r])
	}
	for _, id := range ids {
		app := c.Apps[id]
		for r := 0; r < rounds; r++ {
			res.IntervalPhys[id] = append(res.IntervalPhys[id],
				app.PhysBefore[r+1]-app.PhysBefore[r])
			res.NormPhys[id] = append(res.NormPhys[id],
				app.PhysBefore[r+1]-app.PhysBefore[0])
		}
	}
	for r := 0; r < rounds; r++ {
		res.NormGroup = append(res.NormGroup, app1.Readings[r+1]-app1.Readings[0])
	}
	// Winners and the first-round winner's offset trajectory.
	reps := c.Reports[1] // all replicas agree on the winner sequence
	if len(reps) == 0 {
		return nil, fmt.Errorf("figure6: no round reports")
	}
	res.FirstWinner = reps[0].Winner
	for r := 0; r < rounds && r < len(reps); r++ {
		res.Winner = append(res.Winner, reps[r].Winner)
	}
	winnerReps := c.Reports[res.FirstWinner]
	for r := 0; r < rounds && r < len(winnerReps); r++ {
		res.WinnerOffset = append(res.WinnerOffset, winnerReps[r].Offset)
	}
	return res, nil
}

// Render formats the three panels of Figure 6.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6(a) — clock-read intervals, first %d rounds\n", r.Rounds)
	fmt.Fprintf(&b, "  %-6s %-12s %-12s %-12s %-12s %-8s\n",
		"round", "group", "phys P1", "phys P2", "phys P3", "winner")
	for i := 0; i < r.Rounds; i++ {
		fmt.Fprintf(&b, "  %-6d %-12v %-12v %-12v %-12v %-8v\n",
			i+1, r.IntervalGroup[i],
			r.IntervalPhys[1][i], r.IntervalPhys[2][i], r.IntervalPhys[3][i],
			r.Winner[i])
	}
	fmt.Fprintf(&b, "Figure 6(b) — offset of the first-round winner (%v)\n", r.FirstWinner)
	for i, off := range r.WinnerOffset {
		fmt.Fprintf(&b, "  round %-4d offset %v\n", i+1, off)
	}
	fmt.Fprintf(&b, "Figure 6(c) — normalized clocks (group runs slow)\n")
	fmt.Fprintf(&b, "  %-6s %-12s %-12s %-12s %-12s\n",
		"round", "group", "phys P1", "phys P2", "phys P3")
	for i := 0; i < r.Rounds; i++ {
		fmt.Fprintf(&b, "  %-6d %-12v %-12v %-12v %-12v\n",
			i+1, r.NormGroup[i],
			r.NormPhys[1][i], r.NormPhys[2][i], r.NormPhys[3][i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6 — Figure 1: raw clock reads are inconsistent across replicas.
// ---------------------------------------------------------------------------

// Figure1Result quantifies replica clock inconsistency per operation.
type Figure1Result struct {
	Ops       int
	SpreadRaw stats.Durations // max−min across replicas, raw local clocks
	SpreadCTS stats.Durations // same with the consistent time service
}

// RunFigure1 performs the same clock-operation sequence on three replicas
// whose physical clocks are perfectly synchronized, first with raw local
// clocks and then with the consistent time service. Even with synchronized
// clocks, the raw readings differ across replicas because the operations
// execute at different real times (Figure 1); the group clock removes the
// inconsistency entirely.
func RunFigure1(seed int64, ops int) (*Figure1Result, error) {
	res := &Figure1Result{Ops: ops}
	replicaIDs := []transport.NodeID{1, 2, 3}
	for _, mode := range []TimeMode{ModeLocal, ModeCTS} {
		c, err := NewCluster(ClusterConfig{
			Seed:     seed,
			Topology: campaign.Explicit(ClockSpec{}, ClockSpec{}, ClockSpec{}), // perfectly synchronized clocks
			Style:    replication.Active,
			Mode:     mode,
		})
		if err != nil {
			return nil, err
		}
		if err := driveReadSequence(c, ops); err != nil {
			return nil, err
		}
		sample := &res.SpreadRaw
		if mode == ModeCTS {
			sample = &res.SpreadCTS
		}
		n := ops
		for _, id := range replicaIDs {
			if got := len(c.Apps[id].Readings); got < n {
				n = got
			}
		}
		for i := 0; i < n; i++ {
			lo, hi := time.Duration(1<<62), time.Duration(-1<<62)
			for _, id := range replicaIDs {
				v := c.Apps[id].Readings[i]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			sample.Add(hi - lo)
		}
	}
	return res, nil
}

// Render formats the inconsistency comparison.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — per-operation clock-reading spread across replicas (n=%d)\n", r.Ops)
	fmt.Fprintf(&b, "  raw local clocks (synchronized hardware): %s\n", r.SpreadRaw.Summary())
	fmt.Fprintf(&b, "  consistent time service:                  %s\n", r.SpreadCTS.Summary())
	return b.String()
}

// ---------------------------------------------------------------------------
// E7 — §1 motivation: roll-back / fast-forward on primary failure.
// ---------------------------------------------------------------------------

// RollbackResult compares the clock across a primary failure for the
// primary/backup baseline vs the consistent time service.
type RollbackResult struct {
	BackupSkew     time.Duration // backup clock − primary clock
	BaselineBefore time.Duration // last reading before the failure (baseline)
	BaselineAfter  time.Duration // first reading after (baseline)
	CTSBefore      time.Duration
	CTSAfter       time.Duration
}

// BaselineJump reports the baseline's discontinuity (negative = roll-back).
func (r *RollbackResult) BaselineJump() time.Duration {
	return r.BaselineAfter - r.BaselineBefore
}

// CTSJump reports the consistent time service's discontinuity.
func (r *RollbackResult) CTSJump() time.Duration {
	return r.CTSAfter - r.CTSBefore
}

// RunRollback reads the clock through a passive-replicated server, crashes
// the primary, and reads again. backupSkew is the backup's physical clock
// offset relative to the primary's: negative reproduces roll-back, positive
// fast-forward (§1).
func RunRollback(seed int64, backupSkew time.Duration) (*RollbackResult, error) {
	res := &RollbackResult{BackupSkew: backupSkew}
	for _, mode := range []TimeMode{ModePrimaryBackup, ModeCTS} {
		c, err := NewCluster(ClusterConfig{
			Seed: seed,
			Topology: campaign.Explicit(
				ClockSpec{Offset: 10 * time.Second},              // primary (node 1)
				ClockSpec{Offset: 10*time.Second + backupSkew},   // backup (node 2)
				ClockSpec{Offset: 10*time.Second + backupSkew/2}, // backup (node 3)
			),
			Style:           replication.Passive,
			Mode:            mode,
			CheckpointEvery: 2,
		})
		if err != nil {
			return nil, err
		}
		read := func() (time.Duration, error) {
			var v time.Duration
			var rerr error
			got := false
			c.Client.Invoke(MethodCurrentTime, nil, func(rep rpc.Reply) {
				got = true
				if rep.Err != nil {
					rerr = rep.Err
					return
				}
				v, rerr = DecodeTimeval(rep.Body)
			})
			if !c.RunUntil(10*time.Second, func() bool { return got }) {
				return 0, fmt.Errorf("rollback read timed out")
			}
			return v, rerr
		}
		var last time.Duration
		for i := 0; i < 5; i++ {
			v, err := read()
			if err != nil {
				return nil, err
			}
			last = v
		}
		c.Crash(1)
		after, err := read()
		if err != nil {
			return nil, err
		}
		if mode == ModePrimaryBackup {
			res.BaselineBefore, res.BaselineAfter = last, after
		} else {
			res.CTSBefore, res.CTSAfter = last, after
		}
	}
	return res, nil
}

// Render formats the failover comparison.
func (r *RollbackResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Roll-back on failover (backup clock skew %v)\n", r.BackupSkew)
	fmt.Fprintf(&b, "  primary/backup baseline: %v -> %v  (jump %v)\n",
		r.BaselineBefore, r.BaselineAfter, r.BaselineJump())
	fmt.Fprintf(&b, "  consistent time service: %v -> %v  (jump %v)\n",
		r.CTSBefore, r.CTSAfter, r.CTSJump())
	return b.String()
}

// ---------------------------------------------------------------------------
// E8 — §3.2: integration of a new clock via the special round.
// ---------------------------------------------------------------------------

// RecoveryResult reports the group clock around a replica recovery.
type RecoveryResult struct {
	NewClockOffset time.Duration // the newcomer's physical clock offset
	Before         time.Duration // last group clock before the join
	After          time.Duration // first group clock after the newcomer is live
	SpecialRounds  uint64
	NewcomerMatch  bool // newcomer's readings equal the others' post-join
}

// RunRecovery starts two replicas, reads, joins a third replica whose clock
// is far off, and reads again; monotonicity and consistency must hold.
func RunRecovery(seed int64, newClockOffset time.Duration) (*RecoveryResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:     seed,
		Topology: campaign.Explicit(ClockSpec{Offset: 0}, ClockSpec{Offset: 2 * time.Second}),
		Style:    replication.Active,
		Mode:     ModeCTS,
		Observe:  true,
	})
	if err != nil {
		return nil, err
	}
	if err := driveReadSequence(c, 6); err != nil {
		return nil, err
	}
	res := &RecoveryResult{NewClockOffset: newClockOffset}
	res.Before = c.Apps[1].Readings[len(c.Apps[1].Readings)-1]

	id, err := c.AddRecoveringReplica(ClockSpec{Offset: newClockOffset})
	if err != nil {
		return nil, err
	}
	live := false
	ok := c.RunUntil(10*time.Second, func() bool {
		c.K.Post(func() { live = c.Mgrs[id].Live() })
		c.K.RunFor(50 * time.Microsecond)
		return live
	})
	if !ok {
		return nil, fmt.Errorf("recovery: replica never went live")
	}
	if err := driveReadSequence(c, 6); err != nil {
		return nil, err
	}
	res.After = c.Apps[id].Readings[0]
	c.K.Post(func() {
		for _, s := range c.Obs.Samples() {
			if s.Name == "core.special_rounds" && (s.Node == 1 || s.Node == 2) {
				res.SpecialRounds += s.Value
			}
		}
	})
	c.K.RunFor(time.Millisecond)
	// The newcomer's readings must equal the tail of an existing replica's.
	aN := c.Apps[id].Readings
	aE := c.Apps[1].Readings
	res.NewcomerMatch = len(aN) > 0 && len(aE) >= len(aN)
	if res.NewcomerMatch {
		tail := aE[len(aE)-len(aN):]
		for i := range aN {
			if aN[i] != tail[i] {
				res.NewcomerMatch = false
				break
			}
		}
	}
	return res, nil
}

// Render formats the recovery report.
func (r *RecoveryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery with new clock (offset %v from group)\n", r.NewClockOffset)
	fmt.Fprintf(&b, "  group clock before join: %v\n", r.Before)
	fmt.Fprintf(&b, "  first reading after:     %v (monotone: %v)\n", r.After, r.After >= r.Before)
	fmt.Fprintf(&b, "  special rounds taken:    %d\n", r.SpecialRounds)
	fmt.Fprintf(&b, "  newcomer consistent:     %v\n", r.NewcomerMatch)
	return b.String()
}

// ---------------------------------------------------------------------------
// E9 — §3.3: drift-compensation strategies.
// ---------------------------------------------------------------------------

// DriftResult compares the group clock's lag behind real time for each
// compensation strategy.
type DriftResult struct {
	Ops      int
	RealSpan time.Duration
	// LagPerMode[c] = realSpan − groupSpan at the end of the run.
	LagPerMode map[core.Compensation]time.Duration
}

// RunDrift measures group-clock drift for CompNone, CompMeanDelay and
// CompExternal over `ops` rounds.
func RunDrift(seed int64, ops int) (*DriftResult, error) {
	res := &DriftResult{Ops: ops, LagPerMode: make(map[core.Compensation]time.Duration)}
	for _, comp := range []core.Compensation{core.CompNone, core.CompMeanDelay, core.CompExternal} {
		c, err := NewCluster(ClusterConfig{
			Seed:         seed,
			Topology:     testbedTopology(),
			Style:        replication.Active,
			Mode:         ModeCTS,
			Compensation: comp,
			MeanDelay:    40 * time.Microsecond,
			ExternalGain: 0.2,
		})
		if err != nil {
			return nil, err
		}
		realStart := c.K.Now()
		if err := driveReadSequence(c, ops); err != nil {
			return nil, err
		}
		app := c.Apps[1]
		groupSpan := app.Readings[len(app.Readings)-1] - app.Readings[0]
		realSpan := c.K.Now() - realStart
		res.RealSpan = realSpan
		res.LagPerMode[comp] = realSpan - groupSpan
	}
	return res, nil
}

// Render formats the drift comparison.
func (r *DriftResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift compensation (§3.3) — %d rounds over %v of real time\n",
		r.Ops, r.RealSpan)
	for _, comp := range []core.Compensation{core.CompNone, core.CompMeanDelay, core.CompExternal} {
		fmt.Fprintf(&b, "  %-12s group clock lag: %v\n", comp, r.LagPerMode[comp])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E10 — [20] calibration: token-passing time distribution.
// ---------------------------------------------------------------------------

// TokenTimingResult is the distribution of per-hop token-passing times.
type TokenTimingResult struct {
	Hops     stats.Durations
	Mode     time.Duration // lower edge of the peak-density bin
	BinWidth time.Duration
}

// RunTokenTiming runs an idle four-node Totem ring and measures the time
// between consecutive token receipts across the ring (one hop each). The
// paper's testbed measured a peak probability density near 51µs.
func RunTokenTiming(seed int64, circulations int) (*TokenTimingResult, error) {
	k := sim.NewKernel(seed)
	net := simnet.NewNetwork(k, nil)
	type receipt struct {
		seq uint64
		at  time.Duration
	}
	var receipts []receipt
	ids := []transport.NodeID{0, 1, 2, 3}
	var nodes []*totem.Node
	for _, id := range ids {
		n, err := totem.New(totem.Config{
			Runtime:   k,
			Transport: net.Endpoint(id),
			Members:   ids,
			Bootstrap: true,
			Deliver:   func(totem.Delivery) {},
			OnToken: func(tk totem.Token) {
				receipts = append(receipts, receipt{seq: tk.TokenSeq, at: k.Now()})
			},
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	target := circulations * len(ids)
	deadline := k.Now() + time.Duration(target)*time.Millisecond + time.Second
	for k.Now() < deadline && len(receipts) < target {
		k.RunFor(time.Millisecond)
	}
	if len(receipts) < target {
		return nil, fmt.Errorf("token timing: only %d/%d receipts", len(receipts), target)
	}
	sort.Slice(receipts, func(i, j int) bool { return receipts[i].seq < receipts[j].seq })
	res := &TokenTimingResult{BinWidth: 10 * time.Microsecond}
	for i := 1; i < len(receipts); i++ {
		if receipts[i].seq == receipts[i-1].seq+1 {
			res.Hops.Add(receipts[i].at - receipts[i-1].at)
		}
	}
	res.Mode = res.Hops.Histogram(0, res.BinWidth).Mode().Lo
	return res, nil
}

// Render formats the token-passing distribution.
func (r *TokenTimingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Token-passing time (calibration vs paper's ≈51µs peak)\n")
	fmt.Fprintf(&b, "  %s\n", r.Hops.Summary())
	fmt.Fprintf(&b, "  peak density bin: [%v, %v)\n", r.Mode, r.Mode+r.BinWidth)
	h := r.Hops.Histogram(0, r.BinWidth)
	for _, bin := range h.Bins() {
		if bin.Mass < 0.005 {
			continue
		}
		fmt.Fprintf(&b, "  [%6v,%6v) %6.2f%%\n", bin.Lo, bin.Hi, bin.Mass*100)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E11 — extension: CCS round latency vs group size.
// ---------------------------------------------------------------------------

// ScalingResult reports clock-read invocation latency per group size.
type ScalingResult struct {
	Sizes     []int
	MeanLat   map[int]time.Duration
	P99Lat    map[int]time.Duration
	RoundsSec map[int]float64
}

// RunScaling measures CurrentTime latency on actively replicated servers of
// increasing size.
func RunScaling(seed int64, sizes []int, invocations int) (*ScalingResult, error) {
	res := &ScalingResult{
		Sizes:     sizes,
		MeanLat:   make(map[int]time.Duration),
		P99Lat:    make(map[int]time.Duration),
		RoundsSec: make(map[int]float64),
	}
	for _, size := range sizes {
		specs := make([]ClockSpec, size)
		for i := range specs {
			specs[i] = ClockSpec{Offset: time.Duration(i) * time.Millisecond,
				DriftPPM: float64(i*7%40) - 20}
		}
		c, err := NewCluster(ClusterConfig{
			Seed:     seed,
			Topology: campaign.Explicit(specs...),
			Style:    replication.Active,
			Mode:     ModeCTS,
		})
		if err != nil {
			return nil, err
		}
		var lat stats.Durations
		done := 0
		start := c.K.Now()
		var t0 time.Duration
		var invoke func()
		invoke = func() {
			t0 = c.K.Now()
			c.Client.Invoke(MethodCurrentTime, nil, func(rep rpc.Reply) {
				if rep.Err == nil {
					lat.Add(c.K.Now() - t0)
				}
				done++
				if done < invocations {
					invoke()
				}
			})
		}
		invoke()
		if !c.RunUntil(time.Duration(invocations)*20*time.Millisecond+time.Second,
			func() bool { return done >= invocations }) {
			return nil, fmt.Errorf("scaling size %d: %d/%d done", size, done, invocations)
		}
		res.MeanLat[size] = lat.Mean()
		res.P99Lat[size] = lat.Percentile(99)
		elapsed := (c.K.Now() - start).Seconds()
		if elapsed > 0 {
			res.RoundsSec[size] = float64(done) / elapsed
		}
	}
	return res, nil
}

// Render formats the scaling table.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Group-size scaling — CurrentTime invocation latency\n")
	fmt.Fprintf(&b, "  %-8s %-12s %-12s %-12s\n", "replicas", "mean", "p99", "rounds/s")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "  %-8d %-12v %-12v %-12.0f\n",
			size, r.MeanLat[size], r.P99Lat[size], r.RoundsSec[size])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E12 — concurrent readers: batched CCS rounds amortize the per-read cost.
// ---------------------------------------------------------------------------

// Figure5ConcurrentResult reports the concurrent-reader variant of Figure 5:
// `Readers` logical threads per replica each perform `OpsPerReader` clock
// reads back to back, with and without the consistent time service. With
// round coalescing, concurrent rounds share CCS-batch messages, so the wall
// time for the whole workload stays close to a single reader's and the mean
// per-read overhead drops roughly by the reader count.
type Figure5ConcurrentResult struct {
	Readers      int
	OpsPerReader int
	// WallWith/WallWithout are the virtual times from spawning the readers to
	// the last thread's completion, with the time service and with raw local
	// clocks respectively.
	WallWith    time.Duration
	WallWithout time.Duration
	// Coalescing counters of the ModeCTS run, summed over the replicas.
	RoundsCoalesced uint64
	BatchesSent     uint64
	BatchEntries    uint64
	CCSSent         uint64
}

// PerReadOverhead reports the mean time the service adds per logical read
// (the workload is Readers×OpsPerReader logical reads, each executed by
// every replica).
func (r *Figure5ConcurrentResult) PerReadOverhead() time.Duration {
	total := r.Readers * r.OpsPerReader
	if total == 0 {
		return 0
	}
	d := r.WallWith - r.WallWithout
	if d < 0 {
		d = 0
	}
	return d / time.Duration(total)
}

// RunFigure5Concurrent measures the amortized per-read cost of the time
// service under `readers` concurrent reader threads per replica, each
// performing `opsPerReader` consecutive reads. Compare against a readers=1
// run to see the coalescing gain.
func RunFigure5Concurrent(seed int64, readers, opsPerReader int) (*Figure5ConcurrentResult, error) {
	if readers < 1 || opsPerReader < 1 {
		return nil, fmt.Errorf("figure5-concurrent: readers (%d) and ops per reader (%d) must be positive",
			readers, opsPerReader)
	}
	res := &Figure5ConcurrentResult{Readers: readers, OpsPerReader: opsPerReader}
	for _, mode := range []TimeMode{ModeCTS, ModeLocal} {
		cc := ClusterConfig{
			Seed:     seed,
			Topology: testbedTopology(),
			Style:    replication.Active,
			Mode:     mode,
		}
		if mode == ModeCTS {
			cc.Observe = true
		}
		c, err := NewCluster(cc)
		if err != nil {
			return nil, err
		}
		wall, err := runConcurrentReaders(c, readers, opsPerReader)
		if err != nil {
			return nil, err
		}
		if mode == ModeCTS {
			res.WallWith = wall
			for _, s := range c.Obs.Samples() {
				switch s.Name {
				case "core.rounds_coalesced":
					res.RoundsCoalesced += s.Value
				case "core.batches_sent":
					res.BatchesSent += s.Value
				case "core.batch_entries":
					res.BatchEntries += s.Value
				case "core.ccs_sent":
					res.CCSSent += s.Value
				}
			}
		} else {
			res.WallWithout = wall
		}
	}
	return res, nil
}

// runConcurrentReaders spawns `readers` logical threads on every replica of
// c — in identical order, so thread identifiers agree across replicas — each
// performing `ops` consecutive clock reads. It reports the virtual time from
// the spawn to the last thread's completion. The per-thread completion
// bookkeeping is mutated from the reader threads and read between RunUntil
// steps, which the strict thread/loop alternation makes race-free.
func runConcurrentReaders(c *Cluster, readers, ops int) (time.Duration, error) {
	replicas := make([]transport.NodeID, 0, len(c.Mgrs))
	for id := range c.Mgrs {
		replicas = append(replicas, id)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	remaining := len(replicas) * readers
	var finish time.Duration
	start := c.K.Now()
	for _, id := range replicas {
		app := c.Apps[id]
		for r := 0; r < readers; r++ {
			c.Mgrs[id].SpawnThread(func(ctx *replication.Ctx) {
				for j := 0; j < ops; j++ {
					app.read(ctx)
				}
				remaining--
				if now := c.K.Now(); now > finish {
					finish = now
				}
			})
		}
	}
	budget := time.Duration(readers*ops)*10*time.Millisecond + 5*time.Second
	if !c.RunUntil(budget, func() bool { return remaining == 0 }) {
		return 0, fmt.Errorf("concurrent readers: %d thread(s) unfinished", remaining)
	}
	return finish - start, nil
}

// Render formats the concurrent-reader measurement.
func (r *Figure5ConcurrentResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (concurrent) — %d readers × %d reads per replica\n",
		r.Readers, r.OpsPerReader)
	fmt.Fprintf(&b, "  with CTS:    %v wall\n", r.WallWith)
	fmt.Fprintf(&b, "  without CTS: %v wall\n", r.WallWithout)
	fmt.Fprintf(&b, "  mean per-read overhead: %v\n", r.PerReadOverhead())
	fmt.Fprintf(&b, "  rounds coalesced: %d, batches: %d (entries %d), CCS messages sent: %d\n",
		r.RoundsCoalesced, r.BatchesSent, r.BatchEntries, r.CCSSent)
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation — safe vs agreed delivery for CCS messages.
// ---------------------------------------------------------------------------

// AblationResult compares Figure 5's invocation latency when CCS messages
// use the paper's safe delivery versus plain agreed delivery.
type AblationResult struct {
	Baseline   time.Duration // mean latency without the time service
	SafeMean   time.Duration // mean latency, safe CCS delivery (the paper)
	AgreedMean time.Duration // mean latency, agreed CCS delivery
}

// RunCCSAblation quantifies the design choice behind the paper's ≈300µs
// overhead: the safe-delivery property of CCS messages ("if the message is
// delivered to any non-faulty replica, it will be delivered to all") costs
// roughly one extra token circulation; agreed delivery is cheaper but gives
// up that guarantee under partitions.
func RunCCSAblation(seed int64, invocations int) (*AblationResult, error) {
	measure := func(mode TimeMode, agreed bool) (time.Duration, error) {
		c, err := NewCluster(ClusterConfig{
			Seed:      seed,
			Topology:  testbedTopology(),
			Style:     replication.Active,
			Mode:      mode,
			AgreedCCS: agreed,
		})
		if err != nil {
			return 0, err
		}
		var lat stats.Durations
		think := rand.New(rand.NewSource(seed + 99))
		done := 0
		var start time.Duration
		var invoke func()
		invoke = func() {
			start = c.K.Now()
			c.Client.Invoke(MethodCurrentTime, nil, func(rep rpc.Reply) {
				if rep.Err == nil {
					lat.Add(c.K.Now() - start)
				}
				done++
				if done < invocations {
					c.K.After(time.Duration(think.Intn(1000))*time.Microsecond, invoke)
				}
			})
		}
		invoke()
		if !c.RunUntil(time.Duration(invocations)*10*time.Millisecond+time.Second,
			func() bool { return done >= invocations }) {
			return 0, fmt.Errorf("ablation: %d/%d invocations", done, invocations)
		}
		return lat.Mean(), nil
	}
	res := &AblationResult{}
	var err error
	if res.Baseline, err = measure(ModeLocal, false); err != nil {
		return nil, err
	}
	if res.SafeMean, err = measure(ModeCTS, false); err != nil {
		return nil, err
	}
	if res.AgreedMean, err = measure(ModeCTS, true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation comparison.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CCS delivery ablation — mean CurrentTime latency\n")
	fmt.Fprintf(&b, "  no time service:       %v\n", r.Baseline)
	fmt.Fprintf(&b, "  CTS, agreed delivery:  %v  (overhead %v)\n",
		r.AgreedMean, r.AgreedMean-r.Baseline)
	fmt.Fprintf(&b, "  CTS, safe delivery:    %v  (overhead %v — the paper's configuration)\n",
		r.SafeMean, r.SafeMean-r.Baseline)
	return b.String()
}
