package experiment

import (
	"fmt"
	"strings"

	"cts/internal/campaign"
)

// ---------------------------------------------------------------------------
// E17 — federation: inter-group seam skew vs group count, plus sever/heal.
// ---------------------------------------------------------------------------

// FederationSweepResult holds the federated campaign cells of E17: the
// builtin line topologies at 2, 4 and 8 groups (the skew-vs-group-count
// series) and the all-edges sever/heal cell. Every cell self-gates — zero
// regressions, zero cross-group staleness violations, zero monotonicity
// fixes, seams consistent and converged under the skew ceiling.
type FederationSweepResult struct {
	Seed  int64
	Cells []campaign.FedResult
}

// RunFederationSweep runs every builtin federated spec at the given seed.
func RunFederationSweep(seed int64) (*FederationSweepResult, error) {
	res := &FederationSweepResult{Seed: seed}
	for _, spec := range campaign.BuiltinFederation() {
		cell, err := campaign.RunFederated(spec, seed)
		if err != nil {
			return nil, fmt.Errorf("federation %s: %w", spec.Name, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Gate reports an error when any federated cell missed its gates.
func (r *FederationSweepResult) Gate() error {
	var fails []string
	for _, c := range r.Cells {
		if !c.Pass {
			fails = append(fails, fmt.Sprintf("%s: %s", c.Name, strings.Join(c.Failures, "; ")))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("%d federated cell(s) failed: %s", len(fails), strings.Join(fails, " | "))
	}
	return nil
}

// Render formats the sweep as the E17 table.
func (r *FederationSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17 — multi-group federation: seam skew vs group count (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "  %-14s %-7s %-6s %-14s %-14s %-12s %-10s %s\n",
		"cell", "groups", "pass", "final skew µs", "max bound µs", "reconv ms", "nudges", "violations(st/reg/mono/seam)")
	for _, c := range r.Cells {
		m := c.Metrics
		fmt.Fprintf(&b, "  %-14s %-7d %-6t %-14.0f %-14.0f %-12.1f %-10d %d/%d/%d/%d\n",
			c.Name, c.Groups, c.Pass, m.FinalSeamSkewUS, m.MaxBoundUS, m.ReconvergeMS,
			m.Nudges, m.StalenessViolations, m.Regressions, m.MonotonicityFixes, m.SeamViolations)
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "      gate: %s\n", f)
		}
	}
	return b.String()
}
