package federation

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/core"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/replication"
	"cts/internal/sim"
	"cts/internal/wire"
)

// Link transmits encoded summary frames toward every member of a neighbor
// group. Sends are best effort and unordered; the merge rule tolerates loss,
// reordering and replay (frames are authenticated and sequence-checked).
type Link interface {
	Send(dst wire.GroupID, frame []byte)
}

// Config configures an Agent. One agent runs on every group member; the
// member whose turn it is (duty rotates through the current view, like the
// lease-refresh duty) reads the group's lease, sends summaries to each
// neighbor group, and evaluates the merge rule.
type Config struct {
	// Runtime is the replica's event loop. Required.
	Runtime sim.Runtime
	// Service is the replica's time service. Required; the agent enables its
	// federation half.
	Service *core.TimeService
	// Manager is the replica's replication manager. Required.
	Manager *replication.Manager
	// Clock is the replica's physical hardware clock, used for summary aging
	// — never the wall clock, so simulated campaigns stay deterministic.
	// Required.
	Clock hwclock.Clock
	// Link transmits summary frames. Required.
	Link Link
	// Group is the local group's wire identifier. Required.
	Group wire.GroupID
	// Neighbors lists the adjacent groups' wire identifiers.
	Neighbors []wire.GroupID
	// Key authenticates summary frames. Default "cts-federation".
	Key []byte
	// ExchangeEvery is the cadence the caller drives ExchangeTick at; the
	// agent uses it to derive the honest slack aging rate. Required
	// (positive).
	ExchangeEvery time.Duration
	// MaxStep bounds the forward nudge of one federated round
	// (bounded influence). Default 500µs.
	MaxStep time.Duration
	// Precision is the inter-group transit uncertainty: how stale a summary
	// already is when it arrives. Added to every merge computation and slack
	// term. Default 1ms.
	Precision time.Duration
	// InitialSlack pads published bounds until the first exchange reaches a
	// neighbor; it must cover the worst plausible initial inter-group
	// offset. Default 10ms.
	InitialSlack time.Duration
	// AgingPPM is the slack growth rate between federated rounds. Default
	// MaxStep/ExchangeEvery (the neighbors' bounded nudge rate) plus 200 ppm
	// of mutual drift.
	AgingPPM float64
	// Obs registers the agent's counters. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg and fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Runtime == nil {
		return c, errors.New("federation: Config.Runtime is required")
	}
	if c.Service == nil {
		return c, errors.New("federation: Config.Service is required")
	}
	if c.Manager == nil {
		return c, errors.New("federation: Config.Manager is required")
	}
	if c.Clock == nil {
		return c, errors.New("federation: Config.Clock is required")
	}
	if c.Link == nil {
		return c, errors.New("federation: Config.Link is required")
	}
	if c.Group == 0 {
		return c, errors.New("federation: Config.Group is required")
	}
	for _, nb := range c.Neighbors {
		if nb == c.Group {
			return c, fmt.Errorf("federation: group %d lists itself as a neighbor", c.Group)
		}
	}
	if c.ExchangeEvery <= 0 {
		return c, errors.New("federation: Config.ExchangeEvery must be positive")
	}
	if len(c.Key) == 0 {
		c.Key = []byte("cts-federation")
	}
	if c.MaxStep == 0 {
		c.MaxStep = 500 * time.Microsecond
	}
	if c.MaxStep < 0 {
		return c, fmt.Errorf("federation: Config.MaxStep must not be negative (got %v)", c.MaxStep)
	}
	if c.Precision == 0 {
		c.Precision = time.Millisecond
	}
	if c.Precision < 0 {
		return c, fmt.Errorf("federation: Config.Precision must not be negative (got %v)", c.Precision)
	}
	if c.InitialSlack == 0 {
		c.InitialSlack = 10 * time.Millisecond
	}
	if c.InitialSlack < 0 {
		return c, fmt.Errorf("federation: Config.InitialSlack must not be negative (got %v)", c.InitialSlack)
	}
	if c.AgingPPM == 0 {
		c.AgingPPM = float64(c.MaxStep)/float64(c.ExchangeEvery)*1e6 + 200
	}
	if c.AgingPPM < 0 {
		return c, fmt.Errorf("federation: Config.AgingPPM must not be negative (got %v)", c.AgingPPM)
	}
	return c, nil
}

// neighborState is the latest authenticated summary from one neighbor group.
type neighborState struct {
	sum    wire.GroupSummary
	recvAt time.Duration // local physical clock at receipt
}

// senderKey identifies a summary sender for replay rejection.
type senderKey struct {
	group  wire.GroupID
	sender uint32
}

// Stats counts agent activity.
type Stats struct {
	SummariesSent uint64
	SummariesRecv uint64
	Rejected      uint64 // bad MAC, unknown group, or replayed sequence
	Proposals     uint64 // federated rounds proposed (nudging or re-anchoring)
	Nudges        uint64 // proposals with a positive nudge
}

// Agent is one group member's federation endpoint. All state is confined to
// the replica's runtime loop; Deliver and ExchangeTick are safe from any
// goroutine.
type Agent struct {
	cfg     Config
	peers   map[wire.GroupID]*neighborState
	lastSeq map[senderKey]uint64
	tick    uint64
	seq     uint64
	started time.Duration // physical clock at Start, for unheard-neighbor aging
	running bool
	stats   Stats
}

// New creates an agent and enables the time service's federation half.
func New(cfg Config) (*Agent, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if err := cfg.Service.EnableFederation(core.FedConfig{
		InitialSlack: cfg.InitialSlack,
		AgingPPM:     cfg.AgingPPM,
	}); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		peers:   make(map[wire.GroupID]*neighborState, len(cfg.Neighbors)),
		lastSeq: make(map[senderKey]uint64),
	}
	cfg.Obs.Register(a)
	return a, nil
}

// Start arms the agent. Safe from any goroutine.
func (a *Agent) Start() {
	a.cfg.Runtime.Post(func() {
		if a.running {
			return
		}
		a.running = true
		a.started = a.cfg.Clock.Read()
	})
}

// Stop disarms the agent; subsequent ticks and deliveries are ignored. Safe
// from any goroutine.
func (a *Agent) Stop() {
	a.cfg.Runtime.Post(func() { a.running = false })
}

// ExchangeTick drives one exchange round. The caller invokes it every
// ExchangeEvery (cts wires it next to the lease refresh ticker; campaigns
// drive it from virtual time). Safe from any goroutine.
func (a *Agent) ExchangeTick() {
	a.cfg.Runtime.Post(a.tickLoop)
}

// Deliver hands the agent a received summary frame. The frame is copied, so
// the caller may reuse its buffer. Safe from any goroutine.
func (a *Agent) Deliver(frame []byte) {
	buf := make([]byte, len(frame))
	copy(buf, frame)
	a.cfg.Runtime.Post(func() { a.deliverLoop(buf) })
}

// tickLoop is the loop half of ExchangeTick: rotate duty through the current
// view; the duty member reads the group lease, summarizes it to every
// neighbor, and evaluates the merge rule.
func (a *Agent) tickLoop() {
	if !a.running {
		return
	}
	a.tick++
	if len(a.cfg.Neighbors) == 0 || !a.cfg.Manager.Live() {
		return
	}
	members := a.cfg.Manager.Stack().GroupMembers(a.cfg.Group)
	if len(members) == 0 {
		return
	}
	if members[int(a.tick%uint64(len(members)))] != a.cfg.Manager.LocalNode() {
		return
	}
	// Summaries carry the intra-group reading: the group clock and the
	// uncertainty of that clock alone. Quoting the full client-facing bound
	// (which folds this group's own inter-group slack) would inflate every
	// neighbor's view of us and the merge rule could never act.
	reading, ok := a.cfg.Service.LeaseReadIntra()
	if !ok {
		return // no valid lease to summarize; next duty member will retry
	}
	a.seq++
	frame := wire.MarshalGroupSummary(wire.GroupSummary{
		Group:      a.cfg.Group,
		Sender:     uint32(a.cfg.Manager.LocalNode()),
		Epoch:      reading.Epoch,
		Seq:        a.seq,
		GroupClock: reading.GroupClock,
		Bound:      reading.Bound,
	}, a.cfg.Key)
	for _, nb := range a.cfg.Neighbors {
		a.cfg.Link.Send(nb, frame)
		a.stats.SummariesSent++
	}
	a.evaluate(reading)
}

// evaluate applies the bounded-influence merge rule against the latest
// neighbor summaries and proposes one federated round: a forward nudge of at
// most MaxStep when some neighbor is confidently ahead, and a slack term
// covering how far ahead ANY neighbor may plausibly be — including unheard
// ones, which are assumed up to InitialSlack ahead and aging ever since.
func (a *Agent) evaluate(own core.LeaseReading) {
	now := a.cfg.Clock.Read()
	var nudge, slack time.Duration
	for _, nb := range a.cfg.Neighbors {
		ns, heard := a.peers[nb]
		if !heard {
			// Never heard from this neighbor: all we know is the initial
			// envelope, aged since the agent started.
			if high := a.cfg.InitialSlack + a.aging(now-a.started); high > slack {
				slack = high
			}
			continue
		}
		age := now - ns.recvAt
		if age < 0 {
			age = 0
		}
		// The neighbor's group clock advanced roughly in real time since the
		// summary was read; on top of its own bound and the transit
		// uncertainty, it may have pulled ahead by the aging rate (bounded
		// nudges plus drift).
		est := ns.sum.GroupClock + age
		if high := est + ns.sum.Bound + a.cfg.Precision + a.aging(age) - own.GroupClock; high > slack {
			slack = high
		}
		// Nudge only toward a neighbor that is ahead even under the most
		// pessimistic reading of its summary — bounded influence means never
		// overshooting, so convergence cannot oscillate.
		if low := est - ns.sum.Bound - a.cfg.Precision - own.GroupClock; low > nudge {
			nudge = low
		}
	}
	if nudge > a.cfg.MaxStep {
		nudge = a.cfg.MaxStep
	}
	if slack < 0 {
		slack = 0
	}
	if nudge > 0 {
		a.stats.Nudges++
	}
	a.stats.Proposals++
	a.cfg.Service.ProposeFederated(nudge, slack)
}

// aging converts an elapsed local duration into slack growth.
func (a *Agent) aging(elapsed time.Duration) time.Duration {
	if elapsed <= 0 {
		return 0
	}
	return time.Duration(float64(elapsed) * a.cfg.AgingPPM / 1e6)
}

// deliverLoop is the loop half of Deliver: authenticate, filter, and retain
// the summary.
func (a *Agent) deliverLoop(frame []byte) {
	if !a.running {
		return
	}
	sum, err := wire.UnmarshalGroupSummary(frame, a.cfg.Key)
	if err != nil {
		a.stats.Rejected++
		return
	}
	if !a.isNeighbor(sum.Group) {
		a.stats.Rejected++
		return
	}
	key := senderKey{group: sum.Group, sender: sum.Sender}
	if last, ok := a.lastSeq[key]; ok && sum.Seq <= last {
		a.stats.Rejected++ // replayed or reordered duplicate
		return
	}
	a.lastSeq[key] = sum.Seq
	ns, ok := a.peers[sum.Group]
	if !ok {
		ns = &neighborState{}
		a.peers[sum.Group] = ns
	}
	ns.sum = sum
	ns.recvAt = a.cfg.Clock.Read()
	a.stats.SummariesRecv++
}

func (a *Agent) isNeighbor(g wire.GroupID) bool {
	for _, nb := range a.cfg.Neighbors {
		if nb == g {
			return true
		}
	}
	return false
}

// ObsNode implements obs.Source.
func (a *Agent) ObsNode() uint32 { return uint32(a.cfg.Manager.LocalNode()) }

// ObsSamples implements obs.Source under the canonical fed.* names.
// Loop-only.
func (a *Agent) ObsSamples() []obs.Sample {
	id := uint32(a.cfg.Manager.LocalNode())
	return []obs.Sample{
		{Node: id, Name: "fed.summaries_sent", Value: a.stats.SummariesSent},
		{Node: id, Name: "fed.summaries_recv", Value: a.stats.SummariesRecv},
		{Node: id, Name: "fed.rejected", Value: a.stats.Rejected},
		{Node: id, Name: "fed.proposals", Value: a.stats.Proposals},
		{Node: id, Name: "fed.nudges", Value: a.stats.Nudges},
	}
}
