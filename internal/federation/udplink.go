package federation

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"cts/internal/wire"
)

// UDPLink is the deployment exchange plane: one small UDP socket per node
// carrying authenticated summary frames between groups. Frames for a
// neighbor group are sent to every member address listed for it, so duty
// rotation on the receiving side never depends on which member is up.
type UDPLink struct {
	conn *net.UDPConn

	mu     sync.Mutex
	routes map[wire.GroupID][]*net.UDPAddr // group id → member summary addresses
	agent  *Agent
	closed bool

	readErrors atomic.Uint64
	sendErrors atomic.Uint64

	done chan struct{}
}

// summary frames are tiny (58 bytes today); the buffer leaves headroom for
// future wire versions without reallocation.
const maxSummaryDatagram = 512

// NewUDPLink binds the federation socket on bindAddr (e.g. ":4470",
// "127.0.0.1:0") and starts the receive loop. Received frames are discarded
// until SetAgent attaches a consumer.
func NewUDPLink(bindAddr string) (*UDPLink, error) {
	laddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("federation: resolve %q: %w", bindAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("federation: listen %q: %w", bindAddr, err)
	}
	l := &UDPLink{
		conn:   conn,
		routes: make(map[wire.GroupID][]*net.UDPAddr),
		done:   make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// LocalAddr reports the bound socket address (useful when binding port 0).
func (l *UDPLink) LocalAddr() string { return l.conn.LocalAddr().String() }

// SetAgent attaches the consumer of received frames.
func (l *UDPLink) SetAgent(a *Agent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.agent = a
}

// AddRoute registers the summary addresses of a neighbor group's members.
func (l *UDPLink) AddRoute(group wire.GroupID, addrs []string) error {
	resolved := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("federation: resolve route %q for group %d: %w", a, group, err)
		}
		resolved = append(resolved, ua)
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].String() < resolved[j].String() })
	l.mu.Lock()
	defer l.mu.Unlock()
	l.routes[group] = resolved
	return nil
}

// Send implements Link: best-effort transmission of frame to every member
// address registered for dst. Unroutable groups and socket errors only bump
// the error counter — the exchange plane is loss-tolerant by design.
func (l *UDPLink) Send(dst wire.GroupID, frame []byte) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	addrs := l.routes[dst]
	l.mu.Unlock()
	if len(addrs) == 0 {
		l.sendErrors.Add(1)
		return
	}
	for _, a := range addrs {
		if _, err := l.conn.WriteToUDP(frame, a); err != nil {
			l.sendErrors.Add(1)
		}
	}
}

// Errors reports the transient receive and send failure counts.
func (l *UDPLink) Errors() (read, send uint64) {
	return l.readErrors.Load(), l.sendErrors.Load()
}

// Close stops the read loop and waits for it to exit.
func (l *UDPLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.conn.Close()
	<-l.done
	return err
}

func (l *UDPLink) readLoop() {
	defer close(l.done)
	buf := make([]byte, maxSummaryDatagram)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // Close tore down the socket; end the loop
			}
			// Transient receive failure: count it and keep serving — one bad
			// datagram must not silence the exchange plane for good.
			l.readErrors.Add(1)
			continue
		}
		l.mu.Lock()
		agent := l.agent
		l.mu.Unlock()
		if agent != nil {
			agent.Deliver(buf[:n]) // Deliver copies the frame
		}
	}
}
