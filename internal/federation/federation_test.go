package federation

import (
	"testing"
	"time"

	"cts/internal/core"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/replication"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

// nopApp: federation tests drive the lease plane directly.
type nopApp struct{}

func (nopApp) Invoke(*replication.Ctx, string, []byte) []byte { return nil }
func (nopApp) Snapshot() []byte                               { return nil }
func (nopApp) Restore([]byte)                                 {}

type fedNode struct {
	id    transport.NodeID
	stack *gcs.Stack
	mgr   *replication.Manager
	svc   *core.TimeService
	agent *Agent
}

type fedGroup struct {
	id    wire.GroupID
	nodes []*fedNode
}

// fedHarness runs several CCS groups on one kernel: each group has its own
// intra-group simnet fabric; groups touch only through the SimFabric
// exchange plane. Node ids are disjoint across groups (group g uses
// 100g+1..100g+n) so the shared obs registry never conflates counters.
type fedHarness struct {
	t      *testing.T
	k      *sim.Kernel
	fabric *SimFabric
	rec    *obs.Recorder
	groups []*fedGroup
	tune   fedTuning
}

type fedTuning struct {
	exchangeEvery time.Duration
	maxStep       time.Duration
	precision     time.Duration
	initialSlack  time.Duration
	transit       time.Duration
	// groupOffset is each group's member clock offset; groupDrift the
	// members' drift ppm.
	groupOffset []time.Duration
	groupDrift  []float64
	// line topology: group i federates with i-1 and i+1.
}

func defaultTuning(groups int) fedTuning {
	return fedTuning{
		exchangeEvery: 50 * time.Millisecond,
		maxStep:       time.Millisecond,
		precision:     time.Millisecond,
		initialSlack:  20 * time.Millisecond,
		transit:       200 * time.Microsecond,
		groupOffset:   make([]time.Duration, groups),
		groupDrift:    make([]float64, groups),
	}
}

func newFedHarness(t *testing.T, seed int64, groups, nodesPer int, tune fedTuning) *fedHarness {
	t.Helper()
	k := sim.NewKernel(seed)
	rec, err := obs.New(obs.Config{Now: k.Now})
	if err != nil {
		t.Fatal(err)
	}
	h := &fedHarness{t: t, k: k, fabric: NewSimFabric(k, tune.transit), rec: rec, tune: tune}

	gid := func(i int) wire.GroupID { return wire.GroupID(i + 1) }
	for gi := 0; gi < groups; gi++ {
		g := &fedGroup{id: gid(gi)}
		net := simnet.NewNetwork(k, nil)
		base := transport.NodeID(100 * (gi + 1))
		members := make([]transport.NodeID, nodesPer)
		for i := range members {
			members[i] = base + transport.NodeID(i+1)
		}
		var neighbors []wire.GroupID
		if gi > 0 {
			neighbors = append(neighbors, gid(gi-1))
		}
		if gi < groups-1 {
			neighbors = append(neighbors, gid(gi+1))
		}
		for _, id := range members {
			stack, err := gcs.New(gcs.Config{
				Runtime:   k,
				Transport: net.Endpoint(id),
				Members:   members,
				Bootstrap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			clock := hwclock.NewSim(k.Now,
				hwclock.WithOffset(tune.groupOffset[gi]),
				hwclock.WithDriftPPM(tune.groupDrift[gi]))
			mgr, err := replication.New(replication.Config{
				Runtime: k,
				Stack:   stack,
				Group:   g.id,
				Style:   replication.Active,
				App:     nopApp{},
				Obs:     rec.ForNode(uint32(id)),
			})
			if err != nil {
				t.Fatal(err)
			}
			svc, err := core.New(core.Config{Manager: mgr, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.EnableLease(core.LeaseConfig{Window: time.Minute}); err != nil {
				t.Fatal(err)
			}
			if err := mgr.Start(); err != nil {
				t.Fatal(err)
			}
			agent, err := New(Config{
				Runtime:       k,
				Service:       svc,
				Manager:       mgr,
				Clock:         clock,
				Link:          h.fabric.Link(g.id),
				Group:         g.id,
				Neighbors:     neighbors,
				ExchangeEvery: tune.exchangeEvery,
				MaxStep:       tune.maxStep,
				Precision:     tune.precision,
				InitialSlack:  tune.initialSlack,
				Obs:           rec.ForNode(uint32(id)),
			})
			if err != nil {
				t.Fatal(err)
			}
			h.fabric.Register(g.id, agent)
			agent.Start()
			g.nodes = append(g.nodes, &fedNode{id: id, stack: stack, mgr: mgr, svc: svc, agent: agent})
		}
		h.groups = append(h.groups, g)
	}
	for _, g := range h.groups {
		for _, n := range g.nodes {
			n.stack.Start()
		}
	}
	k.RunFor(5 * time.Millisecond)
	t.Cleanup(func() {
		h.k.RunFor(5 * time.Millisecond)
		for _, g := range h.groups {
			for _, n := range g.nodes {
				n.stack.Stop()
				n.mgr.Stop()
			}
		}
		h.k.RunFor(5 * time.Millisecond)
	})
	return h
}

// step drives one exchange interval: a refresh round per group (rotating
// proposer), then every agent's exchange tick, then the rest of the interval.
func (h *fedHarness) step(i int) {
	for _, g := range h.groups {
		g.nodes[i%len(g.nodes)].svc.RefreshLease()
	}
	h.k.RunFor(5 * time.Millisecond)
	for _, g := range h.groups {
		for _, n := range g.nodes {
			n.agent.ExchangeTick()
		}
	}
	rest := h.tune.exchangeEvery - 5*time.Millisecond
	if rest > 0 {
		h.k.RunFor(rest)
	}
}

// checkSeams asserts inter-group interval consistency at this instant: for
// every federated edge the two groups' served intervals must overlap — a
// client migrating across the seam sees no staleness violation. Returns the
// worst neighbor skew observed.
func (h *fedHarness) checkSeams() time.Duration {
	h.t.Helper()
	var worst time.Duration
	for gi := 1; gi < len(h.groups); gi++ {
		a, aok := h.groups[gi-1].nodes[0].svc.LeaseRead()
		b, bok := h.groups[gi].nodes[0].svc.LeaseRead()
		if !aok || !bok {
			continue
		}
		skew := a.GroupClock - b.GroupClock
		if skew < 0 {
			skew = -skew
		}
		if skew > worst {
			worst = skew
		}
		if a.GroupClock-a.Bound > b.GroupClock+b.Bound {
			h.t.Fatalf("seam %d-%d: group %d serves floor %v above group %d ceiling %v",
				gi-1, gi, gi-1, a.GroupClock-a.Bound, gi, b.GroupClock+b.Bound)
		}
		if b.GroupClock-b.Bound > a.GroupClock+a.Bound {
			h.t.Fatalf("seam %d-%d: group %d serves floor %v above group %d ceiling %v",
				gi-1, gi, gi, b.GroupClock-b.Bound, gi-1, a.GroupClock+a.Bound)
		}
	}
	return worst
}

// counter sums one metric name across the given node's sources.
func (h *fedHarness) counter(id transport.NodeID, name string) uint64 {
	var v uint64
	for _, s := range h.rec.Samples() {
		if s.Node == uint32(id) && s.Name == name {
			v += s.Value
		}
	}
	return v
}

// groupCounter sums a metric across one group's members.
func (h *fedHarness) groupCounter(g *fedGroup, name string) uint64 {
	var v uint64
	for _, n := range g.nodes {
		v += h.counter(n.id, name)
	}
	return v
}

func TestAgentConfigValidate(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := (Config{}).Validate(); err == nil {
		t.Fatal("empty config accepted")
	}
	// A structurally complete config gets defaults.
	net := simnet.NewNetwork(k, nil)
	stack, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(1),
		Members: []transport.NodeID{1}, Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := replication.New(replication.Config{Runtime: k, Stack: stack,
		Group: 1, Style: replication.Active, App: nopApp{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		mgr.Stop()
		k.RunFor(5 * time.Millisecond)
	})
	clock := hwclock.NewSim(k.Now)
	svc, err := core.New(core.Config{Manager: mgr, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Runtime: k, Service: svc, Manager: mgr, Clock: clock,
		Link: NewSimFabric(k, 0).Link(1), Group: 1, ExchangeEvery: 50 * time.Millisecond}
	got, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxStep != 500*time.Microsecond || got.Precision != time.Millisecond ||
		got.InitialSlack != 10*time.Millisecond {
		t.Fatalf("defaults not applied: %+v", got)
	}
	// Default aging covers the neighbors' nudge rate plus drift margin.
	wantPPM := float64(got.MaxStep)/float64(got.ExchangeEvery)*1e6 + 200
	if got.AgingPPM != wantPPM {
		t.Fatalf("AgingPPM = %v, want %v", got.AgingPPM, wantPPM)
	}
	cfg.Neighbors = []wire.GroupID{1}
	if _, err := cfg.Validate(); err == nil {
		t.Fatal("self-neighbor accepted")
	}
}

// TestTwoGroupsConverge: two groups start 5ms apart; the lagging group walks
// forward in bounded MaxStep nudges until the seam skew falls under the
// merge rule's residual (neighbor bound + precision + one interval of
// advance), and inter-group interval consistency holds at every exchange.
func TestTwoGroupsConverge(t *testing.T) {
	tune := defaultTuning(2)
	tune.groupOffset[1] = 5 * time.Millisecond
	h := newFedHarness(t, 41, 2, 3, tune)

	var last time.Duration
	for i := 0; i < 40; i++ {
		h.step(i)
		last = h.checkSeams()
	}
	// Residual: bound (~sub-ms) + precision 1ms + up to one exchange interval
	// of nudge-rate advance (1ms). 3ms gives deterministic headroom.
	if last > 3*time.Millisecond {
		t.Fatalf("seam skew %v after 40 exchanges, want under 3ms", last)
	}
	if n := h.groupCounter(h.groups[0], "fed.nudges"); n == 0 {
		t.Fatal("lagging group never nudged forward")
	}
	for _, g := range h.groups {
		for _, n := range g.nodes {
			if f := h.counter(n.id, "core.monotonicity_fixes"); f != 0 {
				t.Fatalf("node %v needed %d monotonicity fixes", n.id, f)
			}
		}
	}
	// Convergence is by max: the ahead group must not have been dragged back.
	if n := h.groupCounter(h.groups[1], "fed.nudges"); n != 0 {
		t.Fatalf("ahead group nudged %d times; forward-only merge must leave it alone", n)
	}
}

// TestUnheardNeighborCoveredByInitialSlack: with the exchange link down from
// birth, groups 5ms apart stay mutually consistent because every bound
// carries the aged InitialSlack for the neighbor nobody has heard from.
func TestUnheardNeighborCoveredByInitialSlack(t *testing.T) {
	tune := defaultTuning(2)
	tune.groupOffset[1] = 5 * time.Millisecond
	h := newFedHarness(t, 42, 2, 2, tune)
	h.fabric.SetDown(1, 2, true)

	for i := 0; i < 20; i++ {
		h.step(i)
		h.checkSeams() // fails the test on any seam violation
	}
	if h.fabric.Delivered != 0 {
		t.Fatalf("severed fabric delivered %d frames", h.fabric.Delivered)
	}
	r, ok := h.groups[0].nodes[0].svc.LeaseRead()
	if !ok {
		t.Fatal("no lease")
	}
	if r.Bound < tune.initialSlack {
		t.Fatalf("bound %v under InitialSlack %v with the link dead from birth", r.Bound, tune.initialSlack)
	}
}

// TestPartitionGrowsBoundsAndHealReconverges: sever the seam mid-run while
// the ahead group drifts further ahead; bounds must grow honestly (no seam
// violation at any sample), and after heal the skew reconverges within a
// bounded number of exchanges.
func TestPartitionGrowsBoundsAndHealReconverges(t *testing.T) {
	tune := defaultTuning(2)
	tune.groupOffset[1] = 2 * time.Millisecond
	tune.groupDrift[1] = 300 // group 2 pulls ahead during the partition
	h := newFedHarness(t, 43, 2, 3, tune)

	for i := 0; i < 20; i++ {
		h.step(i)
		h.checkSeams()
	}
	preBound, ok := h.groups[0].nodes[0].svc.LeaseRead()
	if !ok {
		t.Fatal("no lease before partition")
	}

	h.fabric.SetDown(1, 2, true)
	for i := 20; i < 60; i++ {
		h.step(i)
		h.checkSeams() // honesty under partition: aged slack covers the drift
	}
	midBound, ok := h.groups[0].nodes[0].svc.LeaseRead()
	if !ok {
		t.Fatal("no lease during partition")
	}
	if midBound.Bound <= preBound.Bound {
		t.Fatalf("bound did not grow across a 2s partition: %v -> %v", preBound.Bound, midBound.Bound)
	}

	h.fabric.SetDown(1, 2, false)
	var last time.Duration
	for i := 60; i < 100; i++ {
		h.step(i)
		last = h.checkSeams()
	}
	if last > 3*time.Millisecond {
		t.Fatalf("seam skew %v after heal, want reconverged under 3ms", last)
	}
	postBound, ok := h.groups[0].nodes[0].svc.LeaseRead()
	if !ok {
		t.Fatal("no lease after heal")
	}
	if postBound.Bound >= midBound.Bound {
		t.Fatalf("bound did not re-tighten after heal: %v -> %v", midBound.Bound, postBound.Bound)
	}
}

// TestThreeGroupLineConverges: a line of three groups with the middle one
// ahead; both ends converge toward it and every seam stays consistent.
func TestThreeGroupLineConverges(t *testing.T) {
	tune := defaultTuning(3)
	tune.groupOffset[1] = 4 * time.Millisecond
	h := newFedHarness(t, 44, 3, 2, tune)

	var last time.Duration
	for i := 0; i < 40; i++ {
		h.step(i)
		last = h.checkSeams()
	}
	if last > 3*time.Millisecond {
		t.Fatalf("worst seam skew %v after 40 exchanges, want under 3ms", last)
	}
}

// TestDutyRotates: summary duty follows the view rotation, so over enough
// ticks more than one member of a group sends summaries.
func TestDutyRotates(t *testing.T) {
	tune := defaultTuning(2)
	h := newFedHarness(t, 45, 2, 3, tune)
	for i := 0; i < 12; i++ {
		h.step(i)
	}
	senders := 0
	for _, n := range h.groups[0].nodes {
		if h.counter(n.id, "fed.summaries_sent") > 0 {
			senders++
		}
	}
	if senders < 2 {
		t.Fatalf("%d members ever sent summaries, want rotation across at least 2", senders)
	}
}

// TestReplayAndForgeryRejected: a replayed frame and a frame signed with the
// wrong key are both dropped and counted.
func TestReplayAndForgeryRejected(t *testing.T) {
	tune := defaultTuning(2)
	h := newFedHarness(t, 46, 2, 2, tune)
	target := h.groups[0].nodes[0]

	frame := wire.MarshalGroupSummary(wire.GroupSummary{
		Group: 2, Sender: 201, Epoch: 1, Seq: 9,
		GroupClock: time.Second, Bound: time.Millisecond,
	}, []byte("cts-federation"))
	target.agent.Deliver(frame)
	target.agent.Deliver(frame) // replay: same (group, sender, seq)
	forged := wire.MarshalGroupSummary(wire.GroupSummary{
		Group: 2, Sender: 201, Epoch: 1, Seq: 10,
		GroupClock: time.Second, Bound: time.Millisecond,
	}, []byte("wrong-key"))
	target.agent.Deliver(forged)
	stranger := wire.MarshalGroupSummary(wire.GroupSummary{
		Group: 77, Sender: 1, Epoch: 1, Seq: 1,
		GroupClock: time.Second, Bound: time.Millisecond,
	}, []byte("cts-federation"))
	target.agent.Deliver(stranger) // authentic but not a configured neighbor
	h.k.RunFor(time.Millisecond)

	if got := h.counter(target.id, "fed.summaries_recv"); got != 1 {
		t.Fatalf("accepted %d summaries, want exactly the first", got)
	}
	if got := h.counter(target.id, "fed.rejected"); got != 3 {
		t.Fatalf("rejected %d frames, want 3 (replay, forgery, stranger)", got)
	}
}
