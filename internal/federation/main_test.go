package federation

import (
	"testing"

	"cts/internal/testutil"
)

func TestMain(m *testing.M) { testutil.Main(m) }
