// Package federation stitches multiple CCS groups into one coherent clock.
//
// Each group runs the paper's consistent clock synchronization internally,
// exactly as before; a thin inter-group plane periodically exchanges
// authenticated (group_clock, bound, epoch) summaries with parent/peer
// groups (wire.GroupSummary) and applies a bounded-influence merge rule:
// when a neighbor group is confidently ahead, the local group proposes a
// federated CCS round (wire.TypeCCSFed) that nudges the whole group forward
// by at most MaxStep, and every round carries a slack term that keeps the
// published staleness bound honest about the residual inter-group skew. This
// follows the gradient clock synchronization line of work: the invariant
// maintained is bounded *neighbor* skew, which is what a tree of timeserve
// shards needs — global skew grows only with topology diameter.
package federation

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cts/internal/wire"
)

// GroupSpec describes one CCS group in a federation topology file.
type GroupSpec struct {
	// Name is the group's human identifier, referenced by Edges and by
	// `ctsnode -group`.
	Name string `json:"name"`
	// ID is the wire group identifier. Must be unique and non-zero.
	ID uint32 `json:"id"`
	// Peers lists the group's members as "id=host:port" entries — the same
	// syntax as `ctsnode -peers` — naming each member's CCS transport
	// address.
	Peers []string `json:"peers"`
	// Fed lists each member's federation UDP address as "id=host:port"
	// entries. Summaries for this group are sent to every listed address.
	Fed []string `json:"fed,omitempty"`
}

// Topology is the JSON schema of a federation topology file: the groups, the
// parent/peer edges between them, and the exchange-plane tuning shared by
// every agent.
type Topology struct {
	Groups []GroupSpec `json:"groups"`
	// Edges connects groups by name; each edge is bidirectional.
	Edges [][2]string `json:"edges"`
	// Key authenticates summary frames. Every group in one federation must
	// share it.
	Key string `json:"key,omitempty"`
	// ExchangeEveryNS is the summary exchange interval. Default 50ms.
	ExchangeEveryNS int64 `json:"exchange_every_ns,omitempty"`
	// MaxStepNS bounds the forward nudge one federated round may apply.
	// Default 500µs.
	MaxStepNS int64 `json:"max_step_ns,omitempty"`
	// PrecisionNS is the inter-group transit uncertainty added to every
	// merge computation and slack term. Default 1ms.
	PrecisionNS int64 `json:"precision_ns,omitempty"`
	// InitialSlackNS pads published bounds until the first exchange; it must
	// cover the worst plausible initial inter-group offset. Default 10ms.
	InitialSlackNS int64 `json:"initial_slack_ns,omitempty"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(b []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("federation: parse topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the topology for structural errors.
func (t *Topology) Validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("federation: topology has no groups")
	}
	names := make(map[string]bool, len(t.Groups))
	ids := make(map[uint32]bool, len(t.Groups))
	for i, g := range t.Groups {
		if g.Name == "" {
			return fmt.Errorf("federation: group %d has no name", i)
		}
		if names[g.Name] {
			return fmt.Errorf("federation: duplicate group name %q", g.Name)
		}
		names[g.Name] = true
		if g.ID == 0 {
			return fmt.Errorf("federation: group %q has no id", g.Name)
		}
		if ids[g.ID] {
			return fmt.Errorf("federation: duplicate group id %d", g.ID)
		}
		ids[g.ID] = true
		if len(g.Peers) == 0 {
			return fmt.Errorf("federation: group %q lists no peers", g.Name)
		}
		if _, err := ParseMembers(g.Peers); err != nil {
			return fmt.Errorf("federation: group %q peers: %w", g.Name, err)
		}
		if len(g.Fed) > 0 {
			if _, err := ParseMembers(g.Fed); err != nil {
				return fmt.Errorf("federation: group %q fed: %w", g.Name, err)
			}
		}
	}
	seen := make(map[[2]string]bool, len(t.Edges))
	for _, e := range t.Edges {
		if e[0] == e[1] {
			return fmt.Errorf("federation: self edge on group %q", e[0])
		}
		for _, n := range []string{e[0], e[1]} {
			if !names[n] {
				return fmt.Errorf("federation: edge references unknown group %q", n)
			}
		}
		k := normalizeEdge(e[0], e[1])
		if seen[k] {
			return fmt.Errorf("federation: duplicate edge %v", e)
		}
		seen[k] = true
	}
	for _, d := range []struct {
		name string
		v    int64
	}{
		{"exchange_every_ns", t.ExchangeEveryNS},
		{"max_step_ns", t.MaxStepNS},
		{"precision_ns", t.PrecisionNS},
		{"initial_slack_ns", t.InitialSlackNS},
	} {
		if d.v < 0 {
			return fmt.Errorf("federation: %s must not be negative (got %d)", d.name, d.v)
		}
	}
	return nil
}

func normalizeEdge(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Group returns the spec for the named group.
func (t *Topology) Group(name string) (GroupSpec, bool) {
	for _, g := range t.Groups {
		if g.Name == name {
			return g, true
		}
	}
	return GroupSpec{}, false
}

// Neighbors returns the groups adjacent to name, sorted by name.
func (t *Topology) Neighbors(name string) []GroupSpec {
	var out []GroupSpec
	for _, e := range t.Edges {
		var other string
		switch name {
		case e[0]:
			other = e[1]
		case e[1]:
			other = e[0]
		default:
			continue
		}
		if g, ok := t.Group(other); ok {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExchangeEvery returns the exchange interval with its default applied.
func (t *Topology) ExchangeEvery() time.Duration {
	if t.ExchangeEveryNS > 0 {
		return time.Duration(t.ExchangeEveryNS)
	}
	return 50 * time.Millisecond
}

// MaxStep returns the per-round nudge bound with its default applied.
func (t *Topology) MaxStep() time.Duration {
	if t.MaxStepNS > 0 {
		return time.Duration(t.MaxStepNS)
	}
	return 500 * time.Microsecond
}

// Precision returns the inter-group transit uncertainty with its default
// applied.
func (t *Topology) Precision() time.Duration {
	if t.PrecisionNS > 0 {
		return time.Duration(t.PrecisionNS)
	}
	return time.Millisecond
}

// InitialSlack returns the pre-exchange bound padding with its default
// applied.
func (t *Topology) InitialSlack() time.Duration {
	if t.InitialSlackNS > 0 {
		return time.Duration(t.InitialSlackNS)
	}
	return 10 * time.Millisecond
}

// ParseMembers parses "id=host:port" entries (the `ctsnode -peers` syntax)
// into an id-to-address map.
func ParseMembers(entries []string) (map[uint32]string, error) {
	out := make(map[uint32]string, len(entries))
	for _, e := range entries {
		id, addr, ok := strings.Cut(e, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=host:port", e)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(id), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("entry %q: bad node id: %v", e, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("entry %q: node id must be positive", e)
		}
		if _, dup := out[uint32(n)]; dup {
			return nil, fmt.Errorf("entry %q: duplicate node id", e)
		}
		out[uint32(n)] = strings.TrimSpace(addr)
	}
	return out, nil
}

// GroupIDOf is a convenience for callers holding a name.
func (t *Topology) GroupIDOf(name string) (wire.GroupID, bool) {
	g, ok := t.Group(name)
	return wire.GroupID(g.ID), ok
}
