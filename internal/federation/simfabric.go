package federation

import (
	"time"

	"cts/internal/sim"
	"cts/internal/wire"
)

// SimFabric is the simulated inter-group exchange plane: a mesh of severable
// links over a discrete-event kernel. Campaigns and tests register every
// group's agents, hand each group's agent a Link view of the fabric, and
// sever/heal edges to model WAN partitions.
//
// All methods are loop-only: every registered agent must run on the fabric's
// kernel, so sends, deliveries and SetDown calls all execute on the one
// event loop and need no locking — the same confinement discipline as the
// rest of the simulation stack.
type SimFabric struct {
	k      *sim.Kernel
	delay  time.Duration
	agents map[wire.GroupID][]*Agent
	groups []wire.GroupID // registration order, for deterministic iteration
	down   map[[2]wire.GroupID]bool

	// Delivered and Dropped count frames forwarded and frames discarded on a
	// severed link.
	Delivered uint64
	Dropped   uint64
}

// NewSimFabric creates a fabric with the given one-way summary transit delay.
func NewSimFabric(k *sim.Kernel, delay time.Duration) *SimFabric {
	return &SimFabric{
		k:      k,
		delay:  delay,
		agents: make(map[wire.GroupID][]*Agent),
		down:   make(map[[2]wire.GroupID]bool),
	}
}

// Register adds one group member's agent as a delivery target for frames
// addressed to group.
func (f *SimFabric) Register(group wire.GroupID, a *Agent) {
	if _, ok := f.agents[group]; !ok {
		f.groups = append(f.groups, group)
	}
	f.agents[group] = append(f.agents[group], a)
}

// Link returns the fabric as seen from src: a Link whose sends traverse the
// src→dst edge (and are dropped while it is severed).
func (f *SimFabric) Link(src wire.GroupID) Link {
	return fabricPort{f: f, src: src}
}

// SetDown severs (or heals) the edge between groups a and b, both directions.
func (f *SimFabric) SetDown(a, b wire.GroupID, down bool) {
	f.down[edgeKey(a, b)] = down
}

func edgeKey(a, b wire.GroupID) [2]wire.GroupID {
	if a > b {
		a, b = b, a
	}
	return [2]wire.GroupID{a, b}
}

type fabricPort struct {
	f   *SimFabric
	src wire.GroupID
}

func (p fabricPort) Send(dst wire.GroupID, frame []byte) {
	f := p.f
	if f.down[edgeKey(p.src, dst)] {
		f.Dropped++
		return
	}
	targets := f.agents[dst]
	if len(targets) == 0 {
		f.Dropped++
		return
	}
	f.Delivered++
	// Copy once: Deliver copies again per agent, but the sender may reuse its
	// buffer before the delayed delivery fires.
	buf := make([]byte, len(frame))
	copy(buf, frame)
	f.k.After(f.delay, func() {
		for _, a := range targets {
			a.Deliver(buf)
		}
	})
}
