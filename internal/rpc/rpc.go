// Package rpc provides the remote-method-invocation layer of the paper's
// testbed (its e*ORB equivalent): a client multicasts a request to a
// replicated server group through the group-communication layer and accepts
// the first reply, deduplicating the redundant replies that replication can
// produce. The client participates in the Totem ring (as on the paper's node
// P0) but is not itself replicated.
package rpc

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/wire"
)

// ErrTimeout is reported when a call's deadline elapses before any reply.
var ErrTimeout = errors.New("rpc: invocation timed out")

// ErrClosed is reported for calls made after Close.
var ErrClosed = errors.New("rpc: client closed")

// ClientConfig configures a Client.
type ClientConfig struct {
	// Runtime is the client's event loop. Required.
	Runtime sim.Runtime
	// Stack is the client's group-communication endpoint. Required.
	Stack *gcs.Stack
	// ClientGroup is the group replies are addressed to; it must be unique
	// to this client. Required (non-zero).
	ClientGroup wire.GroupID
	// ServerGroup is the replicated server group to invoke. Required.
	ServerGroup wire.GroupID
	// Conn identifies the connection between the two groups. Default 1.
	Conn wire.ConnID
	// Timeout bounds each invocation; zero means no timeout.
	Timeout time.Duration
	// Retry is the retransmission interval for unanswered requests. A
	// request sent while the client is cut off in a non-primary network
	// component dies with that component; retransmission (with the same
	// message identifier — the server suppresses duplicate executions)
	// delivers it after the partition heals. Default Timeout/4 when a
	// timeout is set, otherwise no retransmission.
	Retry time.Duration
	// Obs registers this client's counters and records per-invocation
	// latency into the "rpc.invoke_latency" histogram. A nil recorder
	// disables instrumentation at no cost. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg and fills defaults, returning the effective
// configuration.
func (c ClientConfig) Validate() (ClientConfig, error) {
	if c.Runtime == nil || c.Stack == nil {
		return c, errors.New("rpc: Runtime and Stack are required")
	}
	if c.ClientGroup == 0 || c.ServerGroup == 0 {
		return c, errors.New("rpc: ClientGroup and ServerGroup are required")
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("rpc: ClientConfig.Timeout must not be negative (got %v)", c.Timeout)
	}
	if c.Retry < 0 {
		return c, fmt.Errorf("rpc: ClientConfig.Retry must not be negative (got %v)", c.Retry)
	}
	if c.Conn == 0 {
		c.Conn = 1
	}
	if c.Retry == 0 && c.Timeout > 0 {
		c.Retry = c.Timeout / 4
	}
	return c, nil
}

// Stats counts client activity.
type Stats struct {
	Invocations uint64 // requests sent
	Replies     uint64 // invocations completed by a first reply
	Timeouts    uint64 // invocations failed by deadline
	Retries     uint64 // request retransmissions
	DupReplies  uint64 // redundant replies dropped
}

// Reply is a completed invocation's result.
type Reply struct {
	Body      []byte
	Replica   uint32        // transport identity of the replica whose reply arrived first
	Timestamp time.Duration // serving group's consistent group clock (§5)
	Err       error
}

type call struct {
	done  func(Reply)
	msg   wire.Message // retained for retransmission
	timer sim.Canceler
	retry sim.Canceler
	start time.Duration // loop clock at send, for the latency histogram
}

// Client invokes methods on a replicated server group.
type Client struct {
	rt     sim.Runtime
	stack  *gcs.Stack
	cfg    ClientConfig
	group  *gcs.Group
	seq    uint64
	nextID uint64
	calls  map[uint64]*call
	closed bool
	stats  Stats
	obs    *obs.Recorder
}

// NewClient creates a client and joins its reply group.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	c := &Client{
		rt:    cfg.Runtime,
		stack: cfg.Stack,
		cfg:   cfg,
		calls: make(map[uint64]*call),
		obs:   cfg.Obs,
	}
	g, err := cfg.Stack.Join(cfg.ClientGroup, c.onReply, nil)
	if err != nil {
		return nil, fmt.Errorf("rpc: %w", err)
	}
	c.group = g
	cfg.Obs.Register(c)
	return c, nil
}

// ObsNode implements obs.Source.
func (c *Client) ObsNode() uint32 { return uint32(c.stack.LocalID()) }

// ObsSamples implements obs.Source under the canonical rpc.* names.
// Loop-only.
func (c *Client) ObsSamples() []obs.Sample {
	id := uint32(c.stack.LocalID())
	return []obs.Sample{
		{Node: id, Name: "rpc.invocations", Value: c.stats.Invocations},
		{Node: id, Name: "rpc.replies", Value: c.stats.Replies},
		{Node: id, Name: "rpc.timeouts", Value: c.stats.Timeouts},
		{Node: id, Name: "rpc.retries", Value: c.stats.Retries},
		{Node: id, Name: "rpc.dup_replies", Value: c.stats.DupReplies},
	}
}

// Invoke sends a request and calls done with the first reply (or an error).
// done runs on the client's runtime loop. Safe to call from any goroutine.
func (c *Client) Invoke(method string, body []byte, done func(Reply)) {
	c.InvokeStamped(method, body, 0, done)
}

// InvokeStamped is Invoke with a causal group clock timestamp attached: the
// serving group's clock is advanced past ts before the request executes, so
// readings produced downstream causally follow readings obtained from
// another group (§5 of the paper). Pass the Timestamp of an earlier Reply.
func (c *Client) InvokeStamped(method string, body []byte, ts time.Duration, done func(Reply)) {
	bodyCopy := make([]byte, len(body))
	copy(bodyCopy, body)
	c.rt.Post(func() {
		if c.closed {
			done(Reply{Err: ErrClosed})
			return
		}
		c.nextID++
		c.seq++
		id := c.nextID
		payload, err := wire.MarshalRequest(wire.RequestPayload{
			InvocationID: id,
			ClientNode:   uint32(c.stack.LocalID()),
			Timestamp:    ts,
			Method:       method,
			Body:         bodyCopy,
		})
		if err != nil {
			done(Reply{Err: fmt.Errorf("rpc: %w", err)})
			return
		}
		msg := wire.Message{
			Header: wire.Header{Type: wire.TypeRequest,
				SrcGroup: c.cfg.ClientGroup, DstGroup: c.cfg.ServerGroup,
				Conn: c.cfg.Conn, Seq: c.seq},
			Payload: payload,
		}
		cl := &call{done: done, msg: msg, start: c.rt.Now()}
		c.calls[id] = cl
		c.stats.Invocations++
		if c.cfg.Timeout > 0 {
			cl.timer = c.rt.After(c.cfg.Timeout, func() {
				if _, ok := c.calls[id]; !ok {
					return
				}
				c.drop(id)
				c.stats.Timeouts++
				done(Reply{Err: ErrTimeout})
			})
		}
		if c.cfg.Retry > 0 {
			c.armRetry(id, cl)
		}
		if err := c.stack.Multicast(msg); err != nil {
			c.drop(id)
			done(Reply{Err: fmt.Errorf("rpc: %w", err)})
		}
	})
}

// drop removes a call and cancels its timers.
func (c *Client) drop(id uint64) {
	cl, ok := c.calls[id]
	if !ok {
		return
	}
	delete(c.calls, id)
	if cl.timer != nil {
		cl.timer.Cancel()
	}
	if cl.retry != nil {
		cl.retry.Cancel()
	}
}

// armRetry schedules periodic retransmission of an unanswered request.
func (c *Client) armRetry(id uint64, cl *call) {
	cl.retry = c.rt.After(c.cfg.Retry, func() {
		if _, ok := c.calls[id]; !ok {
			return
		}
		c.stats.Retries++
		_ = c.stack.Multicast(cl.msg)
		c.armRetry(id, cl)
	})
}

// InvokeSync is a blocking convenience for real-time deployments. It must
// not be called from the runtime loop (it would deadlock a simulation).
func (c *Client) InvokeSync(method string, body []byte) ([]byte, error) {
	ch := make(chan Reply, 1)
	c.Invoke(method, body, func(r Reply) { ch <- r })
	r := <-ch
	return r.Body, r.Err
}

// Close fails all outstanding calls and leaves the reply group.
func (c *Client) Close() {
	c.rt.Post(func() {
		if c.closed {
			return
		}
		c.closed = true
		for id, cl := range c.calls {
			c.drop(id)
			cl.done(Reply{Err: ErrClosed})
		}
		c.group.Leave()
	})
}

// onReply handles a delivered reply: the first reply per invocation wins and
// duplicates (from redundant replicas) are dropped.
func (c *Client) onReply(m wire.Message, _ gcs.Meta) {
	if m.Type != wire.TypeReply {
		return
	}
	p, err := wire.UnmarshalReply(m.Payload)
	if err != nil {
		return
	}
	cl, ok := c.calls[p.InvocationID]
	if !ok {
		c.stats.DupReplies++
		return // duplicate or stale reply
	}
	c.drop(p.InvocationID)
	c.stats.Replies++
	c.obs.Observe("rpc.invoke_latency", c.rt.Now()-cl.start)
	body := make([]byte, len(p.Body))
	copy(body, p.Body)
	cl.done(Reply{Body: body, Replica: p.ReplicaNode, Timestamp: p.Timestamp})
}
