// Package rpc provides the remote-method-invocation layer of the paper's
// testbed (its e*ORB equivalent): a client multicasts a request to a
// replicated server group through the group-communication layer and accepts
// the first reply, deduplicating the redundant replies that replication can
// produce. The client participates in the Totem ring (as on the paper's node
// P0) but is not itself replicated.
package rpc

import (
	"errors"
	"fmt"
	"time"

	"cts/internal/gcs"
	"cts/internal/sim"
	"cts/internal/wire"
)

// ErrTimeout is reported when a call's deadline elapses before any reply.
var ErrTimeout = errors.New("rpc: invocation timed out")

// ErrClosed is reported for calls made after Close.
var ErrClosed = errors.New("rpc: client closed")

// ClientConfig configures a Client.
type ClientConfig struct {
	// Runtime is the client's event loop. Required.
	Runtime sim.Runtime
	// Stack is the client's group-communication endpoint. Required.
	Stack *gcs.Stack
	// ClientGroup is the group replies are addressed to; it must be unique
	// to this client. Required (non-zero).
	ClientGroup wire.GroupID
	// ServerGroup is the replicated server group to invoke. Required.
	ServerGroup wire.GroupID
	// Conn identifies the connection between the two groups. Default 1.
	Conn wire.ConnID
	// Timeout bounds each invocation; zero means no timeout.
	Timeout time.Duration
	// Retry is the retransmission interval for unanswered requests. A
	// request sent while the client is cut off in a non-primary network
	// component dies with that component; retransmission (with the same
	// message identifier — the server suppresses duplicate executions)
	// delivers it after the partition heals. Default Timeout/4 when a
	// timeout is set, otherwise no retransmission.
	Retry time.Duration
}

// Reply is a completed invocation's result.
type Reply struct {
	Body      []byte
	Replica   uint32        // transport identity of the replica whose reply arrived first
	Timestamp time.Duration // serving group's consistent group clock (§5)
	Err       error
}

type call struct {
	done  func(Reply)
	msg   wire.Message // retained for retransmission
	timer sim.Canceler
	retry sim.Canceler
}

// Client invokes methods on a replicated server group.
type Client struct {
	rt     sim.Runtime
	stack  *gcs.Stack
	cfg    ClientConfig
	group  *gcs.Group
	seq    uint64
	nextID uint64
	calls  map[uint64]*call
	closed bool
}

// NewClient creates a client and joins its reply group.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Runtime == nil || cfg.Stack == nil {
		return nil, errors.New("rpc: Runtime and Stack are required")
	}
	if cfg.ClientGroup == 0 || cfg.ServerGroup == 0 {
		return nil, errors.New("rpc: ClientGroup and ServerGroup are required")
	}
	if cfg.Conn == 0 {
		cfg.Conn = 1
	}
	if cfg.Retry == 0 && cfg.Timeout > 0 {
		cfg.Retry = cfg.Timeout / 4
	}
	c := &Client{
		rt:    cfg.Runtime,
		stack: cfg.Stack,
		cfg:   cfg,
		calls: make(map[uint64]*call),
	}
	g, err := cfg.Stack.Join(cfg.ClientGroup, c.onReply, nil)
	if err != nil {
		return nil, fmt.Errorf("rpc: %w", err)
	}
	c.group = g
	return c, nil
}

// Invoke sends a request and calls done with the first reply (or an error).
// done runs on the client's runtime loop. Safe to call from any goroutine.
func (c *Client) Invoke(method string, body []byte, done func(Reply)) {
	c.InvokeStamped(method, body, 0, done)
}

// InvokeStamped is Invoke with a causal group clock timestamp attached: the
// serving group's clock is advanced past ts before the request executes, so
// readings produced downstream causally follow readings obtained from
// another group (§5 of the paper). Pass the Timestamp of an earlier Reply.
func (c *Client) InvokeStamped(method string, body []byte, ts time.Duration, done func(Reply)) {
	bodyCopy := make([]byte, len(body))
	copy(bodyCopy, body)
	c.rt.Post(func() {
		if c.closed {
			done(Reply{Err: ErrClosed})
			return
		}
		c.nextID++
		c.seq++
		id := c.nextID
		payload, err := wire.MarshalRequest(wire.RequestPayload{
			InvocationID: id,
			ClientNode:   uint32(c.stack.LocalID()),
			Timestamp:    ts,
			Method:       method,
			Body:         bodyCopy,
		})
		if err != nil {
			done(Reply{Err: fmt.Errorf("rpc: %w", err)})
			return
		}
		msg := wire.Message{
			Header: wire.Header{Type: wire.TypeRequest,
				SrcGroup: c.cfg.ClientGroup, DstGroup: c.cfg.ServerGroup,
				Conn: c.cfg.Conn, Seq: c.seq},
			Payload: payload,
		}
		cl := &call{done: done, msg: msg}
		c.calls[id] = cl
		if c.cfg.Timeout > 0 {
			cl.timer = c.rt.After(c.cfg.Timeout, func() {
				if _, ok := c.calls[id]; !ok {
					return
				}
				c.drop(id)
				done(Reply{Err: ErrTimeout})
			})
		}
		if c.cfg.Retry > 0 {
			c.armRetry(id, cl)
		}
		if err := c.stack.Multicast(msg); err != nil {
			c.drop(id)
			done(Reply{Err: fmt.Errorf("rpc: %w", err)})
		}
	})
}

// drop removes a call and cancels its timers.
func (c *Client) drop(id uint64) {
	cl, ok := c.calls[id]
	if !ok {
		return
	}
	delete(c.calls, id)
	if cl.timer != nil {
		cl.timer.Cancel()
	}
	if cl.retry != nil {
		cl.retry.Cancel()
	}
}

// armRetry schedules periodic retransmission of an unanswered request.
func (c *Client) armRetry(id uint64, cl *call) {
	cl.retry = c.rt.After(c.cfg.Retry, func() {
		if _, ok := c.calls[id]; !ok {
			return
		}
		_ = c.stack.Multicast(cl.msg)
		c.armRetry(id, cl)
	})
}

// InvokeSync is a blocking convenience for real-time deployments. It must
// not be called from the runtime loop (it would deadlock a simulation).
func (c *Client) InvokeSync(method string, body []byte) ([]byte, error) {
	ch := make(chan Reply, 1)
	c.Invoke(method, body, func(r Reply) { ch <- r })
	r := <-ch
	return r.Body, r.Err
}

// Close fails all outstanding calls and leaves the reply group.
func (c *Client) Close() {
	c.rt.Post(func() {
		if c.closed {
			return
		}
		c.closed = true
		for id, cl := range c.calls {
			c.drop(id)
			cl.done(Reply{Err: ErrClosed})
		}
		c.group.Leave()
	})
}

// onReply handles a delivered reply: the first reply per invocation wins and
// duplicates (from redundant replicas) are dropped.
func (c *Client) onReply(m wire.Message, _ gcs.Meta) {
	if m.Type != wire.TypeReply {
		return
	}
	p, err := wire.UnmarshalReply(m.Payload)
	if err != nil {
		return
	}
	cl, ok := c.calls[p.InvocationID]
	if !ok {
		return // duplicate or stale reply
	}
	c.drop(p.InvocationID)
	body := make([]byte, len(p.Body))
	copy(body, p.Body)
	cl.done(Reply{Body: body, Replica: p.ReplicaNode, Timestamp: p.Timestamp})
}
