package rpc_test

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"cts/internal/core"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/udptransport"
	"cts/internal/wire"
)

const (
	serverGroup wire.GroupID = 100
	clientGroup wire.GroupID = 900
)

// timeApp answers CurrentTime through the consistent time service.
type timeApp struct {
	mu  sync.Mutex
	svc *core.TimeService
}

func (a *timeApp) service() *core.TimeService {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.svc
}

func (a *timeApp) setService(s *core.TimeService) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.svc = s
}

func (a *timeApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	v := a.service().Gettimeofday(ctx)
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(v))
	return out
}
func (a *timeApp) Snapshot() []byte     { return nil }
func (a *timeApp) Restore(state []byte) {}

// TestRealtimeUDPStack runs the full production path: real-time event loops,
// UDP transports on loopback, the Totem ring, the group layer, an actively
// replicated three-way server with the consistent time service, and a
// blocking client — the deployment cmd/ctsnode and cmd/ctsclient implement.
func TestRealtimeUDPStack(t *testing.T) {
	const n = 4 // client P0 + replicas P1..P3
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}

	// Transports first, to learn the bound addresses.
	trs := make([]*udptransport.Transport, n)
	for i := range trs {
		tr, err := udptransport.New(ids[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		trs[i] = tr
	}
	for i, a := range trs {
		for j, b := range trs {
			if i != j {
				if err := a.SetPeer(ids[j], b.LocalAddr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	loops := make([]*sim.Loop, n)
	stacks := make([]*gcs.Stack, n)
	for i := range loops {
		loops[i] = sim.NewLoop()
		t.Cleanup(loops[i].Close)
		s, err := gcs.New(gcs.Config{
			Runtime:   loops[i],
			Transport: trs[i],
			Members:   ids,
			Bootstrap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		stacks[i] = s
		t.Cleanup(s.Stop)
	}

	apps := make([]*timeApp, n)
	for i := 1; i < n; i++ {
		app := &timeApp{}
		mgr, err := replication.New(replication.Config{
			Runtime: loops[i],
			Stack:   stacks[i],
			Group:   serverGroup,
			Style:   replication.Active,
			App:     app,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := core.New(core.Config{Manager: mgr, Clock: hwclock.SystemClock{}})
		if err != nil {
			t.Fatal(err)
		}
		app.setService(svc)
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		apps[i] = app
	}

	client, err := rpc.NewClient(rpc.ClientConfig{
		Runtime:     loops[0],
		Stack:       stacks[0],
		ClientGroup: clientGroup,
		ServerGroup: serverGroup,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range stacks {
		s.Start()
	}
	time.Sleep(200 * time.Millisecond) // ring + group views settle

	var prev uint64
	for i := 0; i < 5; i++ {
		body, err := client.InvokeSync("CurrentTime", nil)
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		v := binary.BigEndian.Uint64(body)
		if v < prev {
			t.Fatalf("group clock rolled back over UDP: %d -> %d", prev, v)
		}
		prev = v
	}
	if prev == 0 {
		t.Fatal("no clock value returned")
	}
}

// TestClientRetransmission drives the retry path deterministically: requests
// are dropped (total datagram loss) until a heal; the client's
// retransmissions then deliver the invocation exactly once.
func TestClientRetransmission(t *testing.T) {
	k := sim.NewKernel(31)
	net := simnet.NewNetwork(k, nil)
	ids := []transport.NodeID{0, 1, 2}
	stacks := make([]*gcs.Stack, len(ids))
	for i, id := range ids {
		s, err := gcs.New(gcs.Config{Runtime: k, Transport: net.Endpoint(id),
			Members: ids, Bootstrap: true})
		if err != nil {
			t.Fatal(err)
		}
		stacks[i] = s
	}
	invoked := 0
	app := &countApp{onInvoke: func() { invoked++ }}
	mgr, err := replication.New(replication.Config{Runtime: k, Stack: stacks[1],
		Group: serverGroup, Style: replication.Active, App: app})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	mgr2, err := replication.New(replication.Config{Runtime: k, Stack: stacks[2],
		Group: serverGroup, Style: replication.Active, App: &countApp{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Start(); err != nil {
		t.Fatal(err)
	}
	client, err := rpc.NewClient(rpc.ClientConfig{Runtime: k, Stack: stacks[0],
		ClientGroup: clientGroup, ServerGroup: serverGroup,
		Timeout: 5 * time.Second, Retry: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stacks {
		s.Start()
	}
	k.RunFor(3 * time.Millisecond)

	// Cut the client off from the replicas; its first send dies there.
	net.Partition([]transport.NodeID{0}, []transport.NodeID{1, 2})
	var got rpc.Reply
	done := false
	client.Invoke("ping", nil, func(r rpc.Reply) { done = true; got = r })
	k.RunFor(200 * time.Millisecond)
	if done {
		t.Fatal("invocation completed while partitioned")
	}
	net.Heal()
	deadline := k.Now() + 5*time.Second
	for k.Now() < deadline && !done {
		k.RunFor(time.Millisecond)
	}
	if !done || got.Err != nil {
		t.Fatalf("invocation after heal: done=%v err=%v", done, got.Err)
	}
	k.RunFor(time.Second) // let any straggling retransmissions land
	if invoked != 1 {
		t.Fatalf("request executed %d times, want exactly 1", invoked)
	}
}

type countApp struct{ onInvoke func() }

func (a *countApp) Invoke(ctx *replication.Ctx, method string, body []byte) []byte {
	if a.onInvoke != nil {
		a.onInvoke()
	}
	return []byte("pong")
}
func (a *countApp) Snapshot() []byte { return nil }
func (a *countApp) Restore([]byte)   {}
