package timesource

import (
	"testing"
	"testing/quick"
	"time"
)

func fixedSource(t time.Duration) func() time.Duration {
	return func() time.Duration { return t }
}

func TestSkewBounded(t *testing.T) {
	r := New(fixedSource(time.Hour), 1,
		WithMaxSkew(200*time.Microsecond), WithStep(80*time.Microsecond))
	for i := 0; i < 10000; i++ {
		v := r.Read()
		skew := v - time.Hour
		if skew > 200*time.Microsecond || skew < -200*time.Microsecond {
			t.Fatalf("skew %v exceeds bound at read %d", skew, i)
		}
	}
}

func TestSkewIsTransientNotDrift(t *testing.T) {
	// Over many reads of an advancing source, the average error stays near
	// zero relative to the elapsed span: no accumulation.
	var now time.Duration
	r := New(func() time.Duration { return now }, 2, WithMaxSkew(500*time.Microsecond))
	const n = 5000
	var sumErr time.Duration
	for i := 0; i < n; i++ {
		now += time.Millisecond
		sumErr += r.Read() - now
	}
	meanErr := sumErr / n
	if meanErr > 500*time.Microsecond || meanErr < -500*time.Microsecond {
		t.Fatalf("mean error %v exceeds the skew bound: looks like drift", meanErr)
	}
}

func TestSkewActuallyWanders(t *testing.T) {
	r := New(fixedSource(0), 3)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		seen[r.Read()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("skew produced only %d distinct values; not a random walk", len(seen))
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	read := func(seed int64) []time.Duration {
		r := New(fixedSource(0), seed)
		out := make([]time.Duration, 50)
		for i := range out {
			out[i] = r.Read()
		}
		return out
	}
	a, b := read(7), read(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d", i)
		}
	}
}

func TestSkewAccessor(t *testing.T) {
	r := New(fixedSource(time.Second), 4)
	v := r.Read()
	if got := time.Second + r.Skew(); got != v {
		t.Fatalf("Skew() inconsistent: reading %v, source+skew %v", v, got)
	}
}

func TestOptionsIgnoreNonPositive(t *testing.T) {
	r := New(fixedSource(0), 5, WithMaxSkew(-1), WithStep(0))
	if r.maxSkew != 500*time.Microsecond || r.step != 50*time.Microsecond {
		t.Fatalf("defaults overridden by non-positive options: %v %v", r.maxSkew, r.step)
	}
}

func TestSkewBoundProperty(t *testing.T) {
	f := func(seed int64, reads uint8) bool {
		r := New(fixedSource(0), seed, WithMaxSkew(time.Millisecond))
		for i := 0; i < int(reads); i++ {
			if v := r.Read(); v > time.Millisecond || v < -time.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
