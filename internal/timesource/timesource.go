// Package timesource models the external time references of §3.3: NTP or
// GPS-disciplined clocks "that might have a transient skew from real time
// but that ha[ve] no drift". A Reference reads the underlying true time plus
// a bounded random-walk skew — each reading wanders a little, but the error
// never accumulates, which is exactly the property the aggressive
// drift-compensation strategy relies on.
package timesource

import (
	"math/rand"
	"sync"
	"time"

	"cts/internal/hwclock"
)

// Reference is an external time source: transient bounded skew, zero drift.
// It implements hwclock.Clock and is safe for concurrent use if its source
// is.
type Reference struct {
	mu      sync.Mutex
	source  hwclock.Source
	rng     *rand.Rand
	maxSkew time.Duration
	step    time.Duration
	skew    time.Duration
}

// Option configures a Reference.
type Option func(*Reference)

// WithMaxSkew bounds the transient skew (default ±500µs, a typical NTP
// error over a LAN).
func WithMaxSkew(d time.Duration) Option {
	return func(r *Reference) {
		if d > 0 {
			r.maxSkew = d
		}
	}
}

// WithStep sets the per-reading random-walk step bound (default 50µs).
func WithStep(d time.Duration) Option {
	return func(r *Reference) {
		if d > 0 {
			r.step = d
		}
	}
}

// New creates a reference over the true time source, seeded deterministically.
func New(source hwclock.Source, seed int64, opts ...Option) *Reference {
	r := &Reference{
		source:  source,
		rng:     rand.New(rand.NewSource(seed)),
		maxSkew: 500 * time.Microsecond,
		step:    50 * time.Microsecond,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

var _ hwclock.Clock = (*Reference)(nil)

// Read implements hwclock.Clock: truth plus the current transient skew.
// Each reading advances the bounded random walk.
func (r *Reference) Read() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Symmetric step in [-step, +step].
	delta := time.Duration(r.rng.Int63n(int64(2*r.step)+1)) - r.step
	r.skew += delta
	if r.skew > r.maxSkew {
		r.skew = r.maxSkew
	}
	if r.skew < -r.maxSkew {
		r.skew = -r.maxSkew
	}
	return r.source() + r.skew
}

// Skew reports the current transient skew (for tests).
func (r *Reference) Skew() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.skew
}
