package faultinject

import (
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

func sendCounter(net *simnet.Network, id transport.NodeID) *int {
	got := new(int)
	net.Endpoint(id).SetReceiver(func(transport.NodeID, []byte) { *got++ })
	return got
}

func TestAsymmetricPartitionWindow(t *testing.T) {
	k := sim.NewKernel(6)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	at0 := sendCounter(net, 0)
	at1 := sendCounter(net, 1)

	inj.AsymmetricPartitionAt(time.Millisecond, 10*time.Millisecond,
		[]transport.NodeID{0}, []transport.NodeID{1})
	k.At(5*time.Millisecond, func() {
		net.Endpoint(0).Send(1, []byte("cut"))
		net.Endpoint(1).Send(0, []byte("open"))
	})
	k.At(12*time.Millisecond, func() { net.Endpoint(0).Send(1, []byte("healed")) })
	k.RunUntil(15 * time.Millisecond)

	if *at1 != 1 {
		t.Fatalf("0→1 delivered %d, want 1 (post-heal only)", *at1)
	}
	if *at0 != 1 {
		t.Fatalf("1→0 delivered %d, want 1 (reverse direction open)", *at0)
	}
}

func TestPartialPartitionWindowKeepsThirdParty(t *testing.T) {
	k := sim.NewKernel(7)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	at1 := sendCounter(net, 1)
	at2 := sendCounter(net, 2)

	inj.PartialPartitionAt(time.Millisecond, 10*time.Millisecond,
		[]transport.NodeID{0}, []transport.NodeID{1})
	k.At(5*time.Millisecond, func() {
		net.Endpoint(0).Send(1, []byte("cut"))
		net.Endpoint(0).Send(2, []byte("side"))
	})
	k.RunUntil(15 * time.Millisecond)

	if *at1 != 0 {
		t.Fatalf("cut pair delivered %d, want 0", *at1)
	}
	if *at2 != 1 {
		t.Fatalf("third party delivered %d, want 1", *at2)
	}
}

func TestShapeWindowLatency(t *testing.T) {
	k := sim.NewKernel(8)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	var times []time.Duration
	net.Endpoint(1).SetReceiver(func(transport.NodeID, []byte) {
		times = append(times, k.Now())
	})

	inj.ShapeWindow(time.Millisecond, 10*time.Millisecond,
		[]transport.NodeID{0}, []transport.NodeID{1},
		simnet.LinkShape{Latency: simnet.Fixed(2 * time.Millisecond)})
	k.At(5*time.Millisecond, func() { net.Endpoint(0).Send(1, []byte("slow")) })
	k.At(12*time.Millisecond, func() { net.Endpoint(0).Send(1, []byte("fast")) })
	k.RunUntil(20 * time.Millisecond)

	if len(times) != 2 {
		t.Fatalf("delivered %d datagrams, want 2", len(times))
	}
	if times[0] != 7*time.Millisecond {
		t.Fatalf("shaped delivery at %v, want 7ms", times[0])
	}
	if times[1] != 12*time.Millisecond+time.Microsecond {
		t.Fatalf("post-window delivery at %v, want 12.001ms", times[1])
	}
}

func TestLossBursts(t *testing.T) {
	k := sim.NewKernel(9)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	got := sendCounter(net, 1)

	// Bursts at [1,2)ms and [3,4)ms with total loss.
	inj.LossBursts(time.Millisecond, 2, time.Millisecond, time.Millisecond, 1.0)
	for _, at := range []time.Duration{1500 * time.Microsecond, 2500 * time.Microsecond,
		3500 * time.Microsecond, 4500 * time.Microsecond} {
		at := at
		k.At(at, func() { net.Endpoint(0).Send(1, []byte("x")) })
	}
	k.RunUntil(10 * time.Millisecond)

	if *got != 2 {
		t.Fatalf("delivered %d datagrams, want 2 (gaps only)", *got)
	}
}

func TestIsolateWindowKeepsEntitiesRunning(t *testing.T) {
	k := sim.NewKernel(10)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	rec := &stopRecorder{}
	inj.Register(1, rec)
	got := sendCounter(net, 1)

	inj.IsolateWindow(time.Millisecond, 10*time.Millisecond, 1)
	k.At(5*time.Millisecond, func() { net.Endpoint(0).Send(1, []byte("iso")) })
	k.At(12*time.Millisecond, func() { net.Endpoint(0).Send(1, []byte("back")) })
	k.RunUntil(15 * time.Millisecond)

	if rec.stopped {
		t.Fatal("isolation stopped protocol entities; it must not")
	}
	if *got != 1 {
		t.Fatalf("delivered %d datagrams, want 1 (post-isolation only)", *got)
	}
}

func TestStopAtAndStartAt(t *testing.T) {
	k := sim.NewKernel(11)
	net := simnet.NewNetwork(k, nil)
	inj := New(k, net)
	rec := &stopRecorder{}
	inj.Register(0, rec)
	started := false
	inj.StopAt(time.Millisecond, 0)
	inj.StartAt(2*time.Millisecond, func() { started = true })
	k.RunUntil(3 * time.Millisecond)
	if !rec.stopped || !started {
		t.Fatalf("stopped=%v started=%v, want both", rec.stopped, started)
	}
}
