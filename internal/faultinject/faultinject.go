// Package faultinject scripts failures against a simulated deployment:
// crash and revival of processors, network partitions and heals, and loss
// windows — the scenarios behind the paper's fault-tolerance claims
// ("the consistent time service guarantees the consistency of the group
// clock even when faults occur, when new replicas are added into the group
// and when failed replicas recover").
package faultinject

import (
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

// Stoppable is anything that can be halted when its processor crashes
// (totem nodes, gcs stacks).
type Stoppable interface{ Stop() }

// Injector schedules faults on a simulated network.
type Injector struct {
	k   *sim.Kernel
	net *simnet.Network
	// procs maps a node to the protocol entities to halt on crash.
	procs map[transport.NodeID][]Stoppable
}

// New creates an injector.
func New(k *sim.Kernel, net *simnet.Network) *Injector {
	return &Injector{k: k, net: net, procs: make(map[transport.NodeID][]Stoppable)}
}

// Register associates protocol entities with a processor so CrashAt can
// halt them along with the endpoint.
func (i *Injector) Register(id transport.NodeID, s ...Stoppable) {
	i.procs[id] = append(i.procs[id], s...)
}

// CrashAt schedules a crash of processor id at virtual time t: its endpoint
// stops sending and receiving and its registered protocol entities halt
// (fail-stop, per the paper's fault model).
func (i *Injector) CrashAt(t time.Duration, id transport.NodeID) {
	i.k.At(t, func() {
		for _, s := range i.procs[id] {
			s.Stop()
		}
		i.net.Endpoint(id).SetDown(true)
	})
}

// ReviveAt schedules the endpoint's revival at virtual time t. The caller
// is responsible for starting fresh protocol entities (a revived processor
// has lost its volatile state).
func (i *Injector) ReviveAt(t time.Duration, id transport.NodeID, start func()) {
	i.k.At(t, func() {
		i.net.Endpoint(id).SetDown(false)
		if start != nil {
			start()
		}
	})
}

// PartitionAt schedules a network partition into the given components.
func (i *Injector) PartitionAt(t time.Duration, components ...[]transport.NodeID) {
	i.k.At(t, func() { i.net.Partition(components...) })
}

// HealAt schedules removal of any partition.
func (i *Injector) HealAt(t time.Duration) {
	i.k.At(t, func() { i.net.Heal() })
}

// LossWindow applies datagram loss probability p during [from, to).
func (i *Injector) LossWindow(from, to time.Duration, p float64) {
	i.k.At(from, func() { i.net.SetLoss(p) })
	i.k.At(to, func() { i.net.SetLoss(0) })
}
