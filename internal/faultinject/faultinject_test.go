package faultinject

import (
	"testing"
	"time"

	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

type stopRecorder struct{ stopped bool }

func (s *stopRecorder) Stop() { s.stopped = true }

func TestCrashAtStopsEntitiesAndEndpoint(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	got := 0
	b.SetReceiver(func(transport.NodeID, []byte) { got++ })

	rec := &stopRecorder{}
	inj.Register(1, rec)
	inj.CrashAt(10*time.Millisecond, 1)

	// Before the crash, traffic flows.
	k.At(5*time.Millisecond, func() { a.Send(1, []byte("x")) })
	// After the crash, it does not.
	k.At(15*time.Millisecond, func() { a.Send(1, []byte("y")) })
	k.RunUntil(20 * time.Millisecond)

	if got != 1 {
		t.Fatalf("delivered %d datagrams, want 1 (pre-crash only)", got)
	}
	if !rec.stopped {
		t.Fatal("registered entity not stopped")
	}
}

func TestReviveAtRestoresDeliveryAndRunsStart(t *testing.T) {
	k := sim.NewKernel(2)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	got := 0
	b.SetReceiver(func(transport.NodeID, []byte) { got++ })

	inj.CrashAt(time.Millisecond, 1)
	started := false
	inj.ReviveAt(5*time.Millisecond, 1, func() { started = true })
	k.At(7*time.Millisecond, func() { a.Send(1, []byte("z")) })
	k.RunUntil(10 * time.Millisecond)

	if !started {
		t.Fatal("start callback did not run")
	}
	if got != 1 {
		t.Fatalf("delivered %d datagrams after revival, want 1", got)
	}
}

func TestPartitionAndHealSchedule(t *testing.T) {
	k := sim.NewKernel(3)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	got := 0
	b.SetReceiver(func(transport.NodeID, []byte) { got++ })

	inj.PartitionAt(time.Millisecond, []transport.NodeID{0}, []transport.NodeID{1})
	inj.HealAt(10 * time.Millisecond)
	k.At(5*time.Millisecond, func() { a.Send(1, []byte("during")) })
	k.At(12*time.Millisecond, func() { a.Send(1, []byte("after")) })
	k.RunUntil(15 * time.Millisecond)

	if got != 1 {
		t.Fatalf("delivered %d datagrams, want 1 (post-heal only)", got)
	}
}

func TestLossWindow(t *testing.T) {
	k := sim.NewKernel(4)
	net := simnet.NewNetwork(k, simnet.Fixed(time.Microsecond))
	inj := New(k, net)
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	got := 0
	b.SetReceiver(func(transport.NodeID, []byte) { got++ })

	inj.LossWindow(time.Millisecond, 10*time.Millisecond, 1.0)
	k.At(5*time.Millisecond, func() { a.Send(1, []byte("lost")) })
	k.At(12*time.Millisecond, func() { a.Send(1, []byte("kept")) })
	k.RunUntil(15 * time.Millisecond)

	if got != 1 {
		t.Fatalf("delivered %d datagrams, want 1 (outside the loss window)", got)
	}
}

func TestRegisterMultipleEntities(t *testing.T) {
	k := sim.NewKernel(5)
	net := simnet.NewNetwork(k, nil)
	inj := New(k, net)
	r1, r2 := &stopRecorder{}, &stopRecorder{}
	inj.Register(0, r1)
	inj.Register(0, r2)
	inj.CrashAt(time.Millisecond, 0)
	k.RunUntil(2 * time.Millisecond)
	if !r1.stopped || !r2.stopped {
		t.Fatal("not all registered entities stopped")
	}
}
