package faultinject

import (
	"time"

	"cts/internal/simnet"
	"cts/internal/transport"
)

// This file adds the scheduled fault families the campaign subsystem drives
// on top of the point primitives in faultinject.go: link-shaping windows,
// asymmetric and partial partitions, correlated loss bursts, and endpoint
// isolation windows (a churn mechanism that keeps protocol state alive, used
// where a full crash/restart is not the point of the scenario).

// ShapeWindow installs a directed link-shaping rule on src→dst during
// [from, to). Nil src or dst means "every node" (see simnet.ShapeLinks).
func (i *Injector) ShapeWindow(from, to time.Duration, src, dst []transport.NodeID, shape simnet.LinkShape) {
	i.k.At(from, func() {
		remove := i.net.ShapeLinks(src, dst, shape)
		i.k.At(to, remove)
	})
}

// AsymmetricPartitionAt blocks the directed links a→b during [from, to);
// traffic from b to a keeps flowing. The one-way cut exercises exactly the
// failure mode component partitions cannot express.
func (i *Injector) AsymmetricPartitionAt(from, to time.Duration, a, b []transport.NodeID) {
	i.k.At(from, func() {
		heal := i.net.BlockLinks(a, b)
		i.k.At(to, heal)
	})
}

// PartialPartitionAt cuts a↔b in both directions during [from, to) while
// third parties stay connected to both sides.
func (i *Injector) PartialPartitionAt(from, to time.Duration, a, b []transport.NodeID) {
	i.k.At(from, func() {
		heal := i.net.PartialPartition(a, b)
		i.k.At(to, heal)
	})
}

// LossBursts schedules count correlated loss bursts: starting at from, each
// burst raises the network-wide loss probability to p for burst long, then
// clears it for gap before the next burst. This is the campaign's
// "correlated loss" and "token-loss cascade" weather: repeated bursts long
// enough to swallow a token several times in a row.
func (i *Injector) LossBursts(from time.Duration, count int, burst, gap time.Duration, p float64) {
	at := from
	for n := 0; n < count; n++ {
		i.LossWindow(at, at+burst, p)
		at += burst + gap
	}
}

// IsolateWindow takes processor id off the air during [from, to) by downing
// its endpoint only: protocol entities keep running and keep their volatile
// state, as in a power-isolated-but-alive node. On wire orderers the
// membership protocol expels the silent node and re-admits it after the
// window.
func (i *Injector) IsolateWindow(from, to time.Duration, id transport.NodeID) {
	i.k.At(from, func() { i.net.Endpoint(id).SetDown(true) })
	i.k.At(to, func() { i.net.Endpoint(id).SetDown(false) })
}

// StopAt schedules a protocol-level stop of id's registered entities at t,
// leaving the endpoint up. Instant-orderer deployments use it for churn: the
// hub models crash/recovery via Stop/Start, not via the (nonexistent)
// network.
func (i *Injector) StopAt(t time.Duration, id transport.NodeID) {
	i.k.At(t, func() {
		for _, s := range i.procs[id] {
			s.Stop()
		}
	})
}

// StartAt schedules start at t; the campaign passes the deployment's restart
// hook for id.
func (i *Injector) StartAt(t time.Duration, start func()) {
	if start == nil {
		return
	}
	i.k.At(t, start)
}
