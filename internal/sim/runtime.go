// Package sim provides the event-driven runtimes on which every protocol
// node in this repository executes: a deterministic discrete-event kernel
// with virtual time (used by tests, benchmarks and the experiment harness)
// and a real-time loop backed by wall-clock timers (used by the UDP
// deployment in cmd/ctsnode).
//
// Protocol code is written against the Runtime interface only, so the same
// state machines run unmodified in simulation and in production.
package sim

import "time"

// Runtime abstracts the single-threaded event loop a protocol node runs on.
// All callbacks scheduled on one Runtime execute serially; protocol state
// guarded by that discipline needs no further locking.
type Runtime interface {
	// Now reports the elapsed time on this runtime's clock. For the
	// discrete-event kernel this is virtual time; for the real-time loop it
	// is wall-clock time since the loop started.
	Now() time.Duration

	// After schedules fn to run on this runtime's loop after delay d.
	// It returns a handle that can cancel the pending call.
	After(d time.Duration, fn func()) Canceler

	// Post schedules fn to run on this runtime's loop as soon as possible.
	// Post is safe to call from any goroutine.
	Post(fn func())
}

// Canceler cancels a pending scheduled call.
type Canceler interface {
	// Cancel stops the pending call. It reports whether the call was
	// prevented from running (false if it already ran or was cancelled).
	Cancel() bool
}
