package sim

import (
	"sync"
	"time"
)

var (
	_ Runtime = (*Kernel)(nil)
	_ Runtime = (*Loop)(nil)
)

// Loop is a real-time Runtime: a single goroutine drains a mailbox of
// callbacks, and After is backed by wall-clock timers. It is the production
// counterpart of Kernel, used when nodes run over real transports.
type Loop struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool

	start time.Time
	done  chan struct{}
}

// NewLoop returns a started loop. The caller must Close it when finished.
func NewLoop() *Loop {
	l := &Loop{
		start: time.Now(),
		done:  make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Now reports wall-clock time elapsed since the loop started.
func (l *Loop) Now() time.Duration { return time.Since(l.start) }

// Post schedules fn on the loop. It is safe from any goroutine. Posting to a
// closed loop drops fn.
func (l *Loop) Post(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.queue = append(l.queue, fn)
	l.cond.Signal()
}

// After schedules fn on the loop after wall-clock delay d.
func (l *Loop) After(d time.Duration, fn func()) Canceler {
	lt := &loopTimer{}
	lt.t = time.AfterFunc(d, func() {
		lt.mu.Lock()
		if lt.cancelled {
			lt.mu.Unlock()
			return
		}
		lt.fired = true
		lt.mu.Unlock()
		l.Post(fn)
	})
	return lt
}

// Close stops the loop after pending callbacks drain and waits for the loop
// goroutine to exit. Close is idempotent.
func (l *Loop) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		fn := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		fn()
	}
}

// loopTimer adapts time.Timer to Canceler with exact "prevented it" reporting.
type loopTimer struct {
	mu        sync.Mutex
	t         *time.Timer
	fired     bool
	cancelled bool
}

func (lt *loopTimer) Cancel() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.fired || lt.cancelled {
		return false
	}
	lt.cancelled = true
	lt.t.Stop()
	return true
}
