package sim

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"
)

// Kernel is a deterministic discrete-event simulation kernel. Events execute
// in (time, insertion-order) sequence on the goroutine that calls Run,
// RunUntil or Step. Given the same seed and the same sequence of scheduling
// calls, a simulation replays identically.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	mu   sync.Mutex
	now  time.Duration
	q    eventQueue
	seq  uint64
	rng  *rand.Rand
	halt bool
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// RNG returns the kernel's deterministic random source. It must only be used
// from event callbacks (they run serially), never concurrently.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// After schedules fn at Now()+d. A negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) Canceler {
	if d < 0 {
		d = 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.scheduleLocked(k.now+d, fn)
}

// At schedules fn at absolute virtual time t. Times in the past run at the
// current time.
func (k *Kernel) At(t time.Duration, fn func()) Canceler {
	k.mu.Lock()
	defer k.mu.Unlock()
	if t < k.now {
		t = k.now
	}
	return k.scheduleLocked(t, fn)
}

// Post schedules fn at the current virtual time, after events already
// scheduled for that time.
func (k *Kernel) Post(fn func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.scheduleLocked(k.now, fn)
}

func (k *Kernel) scheduleLocked(t time.Duration, fn func()) *event {
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.q, ev)
	return ev
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	k.mu.Lock()
	for k.q.Len() > 0 {
		ev := heap.Pop(&k.q).(*event)
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		ev.done = true
		fn := ev.fn
		ev.fn = nil
		k.mu.Unlock()
		fn()
		return true
	}
	k.mu.Unlock()
	return false
}

// Run executes events until the queue drains or Halt is called.
func (k *Kernel) Run() {
	for !k.halted() && k.Step() {
	}
	k.setHalt(false)
}

// RunUntil executes events with timestamps <= t, then advances virtual time
// to exactly t.
func (k *Kernel) RunUntil(t time.Duration) {
	for {
		k.mu.Lock()
		if k.halt || k.q.Len() == 0 || k.q[0].at > t {
			if k.now < t && !k.halt {
				k.now = t
			}
			k.halt = false
			k.mu.Unlock()
			return
		}
		k.mu.Unlock()
		k.Step()
	}
}

// RunFor executes events for virtual duration d from the current time.
func (k *Kernel) RunFor(d time.Duration) {
	k.RunUntil(k.Now() + d)
}

// Halt stops a Run/RunUntil in progress after the current event completes.
// It is intended to be called from within an event callback.
func (k *Kernel) Halt() { k.setHalt(true) }

func (k *Kernel) setHalt(v bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.halt = v
}

func (k *Kernel) halted() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.halt
}

// Pending reports the number of events still queued (including cancelled
// events not yet discarded).
func (k *Kernel) Pending() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.q.Len()
}

// event is a scheduled callback; it implements Canceler.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	done      bool
}

// Cancel implements Canceler. It is not safe for concurrent use with the
// kernel loop from other goroutines; call it from event callbacks.
func (e *event) Cancel() bool {
	if e.done || e.cancelled {
		return false
	}
	e.cancelled = true
	e.fn = nil
	return true
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
