package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(30*time.Millisecond, func() { got = append(got, 3) })
	k.After(10*time.Millisecond, func() { got = append(got, 1) })
	k.After(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestKernelTieBreaksByInsertionOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time ran out of insertion order: %v", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var fired []time.Duration
	k.After(time.Millisecond, func() {
		fired = append(fired, k.Now())
		k.After(2*time.Millisecond, func() {
			fired = append(fired, k.Now())
		})
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Fatalf("fired = %v, want [1ms 3ms]", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	c := k.After(time.Millisecond, func() { ran = true })
	if !c.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if c.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelCancelAfterRun(t *testing.T) {
	k := NewKernel(1)
	c := k.After(0, func() {})
	k.Run()
	if c.Cancel() {
		t.Fatal("Cancel after the event ran should report false")
	}
}

func TestKernelRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var ran []int
	k.After(5*time.Millisecond, func() { ran = append(ran, 1) })
	k.After(15*time.Millisecond, func() { ran = append(ran, 2) })
	k.RunUntil(10 * time.Millisecond)
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want [1]", ran)
	}
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", k.Now())
	}
	k.Run()
	if len(ran) != 2 {
		t.Fatalf("ran = %v, want [1 2]", ran)
	}
}

func TestKernelRunForIsRelative(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(4 * time.Millisecond)
	hit := false
	k.After(2*time.Millisecond, func() { hit = true })
	k.RunFor(time.Millisecond)
	if hit {
		t.Fatal("event 2ms away fired within a 1ms RunFor")
	}
	k.RunFor(time.Millisecond)
	if !hit {
		t.Fatal("event did not fire after cumulative 2ms")
	}
}

func TestKernelHaltStopsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				k.Halt()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (halted)", count)
	}
	// A subsequent Run resumes.
	k.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestKernelPostRunsAtCurrentTime(t *testing.T) {
	k := NewKernel(1)
	var at time.Duration = -1
	k.After(7*time.Millisecond, func() {
		k.Post(func() { at = k.Now() })
	})
	k.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("posted event ran at %v, want 7ms", at)
	}
}

func TestKernelPastAtClampsToNow(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(10 * time.Millisecond)
	var at time.Duration = -1
	k.At(2*time.Millisecond, func() { at = k.Now() })
	k.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past event ran at %v, want clamped to 10ms", at)
	}
}

func TestKernelNegativeAfterClampsToZero(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.After(-time.Second, func() { ran = true })
	k.Run()
	if !ran || k.Now() != 0 {
		t.Fatalf("ran=%v now=%v, want true, 0", ran, k.Now())
	}
}

func TestKernelDeterministicReplay(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		k := NewKernel(seed)
		rng := k.RNG()
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, k.Now())
			if len(out) < 50 {
				k.After(time.Duration(rng.Intn(1000))*time.Microsecond, step)
			}
		}
		k.Post(step)
		k.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: however events are inserted, execution order is sorted by time
// with stable insertion order among equals.
func TestKernelOrderingProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		k := NewKernel(3)
		type rec struct {
			at  time.Duration
			seq int
		}
		var got []rec
		for i, d := range delaysRaw {
			i, at := i, time.Duration(d)*time.Microsecond
			k.After(at, func() { got = append(got, rec{at, i}) })
		}
		k.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelPendingCount(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Millisecond, func() {})
	k.After(time.Millisecond, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", k.Pending())
	}
}

func TestLoopRunsPostedCallbacksInOrder(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	for i := 0; i < 100; i++ {
		i := i
		l.Post(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			if i == 99 {
				close(done)
			}
		})
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i := range got {
		if got[i] != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestLoopAfterFires(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	done := make(chan time.Duration, 1)
	start := l.Now()
	l.After(10*time.Millisecond, func() { done <- l.Now() - start })
	select {
	case d := <-done:
		if d < 5*time.Millisecond {
			t.Fatalf("fired too early: %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestLoopAfterCancel(t *testing.T) {
	l := NewLoop()
	defer l.Close()
	fired := make(chan struct{}, 1)
	c := l.After(50*time.Millisecond, func() { fired <- struct{}{} })
	if !c.Cancel() {
		t.Fatal("Cancel should report true")
	}
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestLoopCloseDrainsQueue(t *testing.T) {
	l := NewLoop()
	var mu sync.Mutex
	n := 0
	for i := 0; i < 50; i++ {
		l.Post(func() {
			mu.Lock()
			n++
			mu.Unlock()
		})
	}
	l.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 50 {
		t.Fatalf("drained %d callbacks, want 50", n)
	}
}

func TestLoopCloseIdempotent(t *testing.T) {
	l := NewLoop()
	l.Close()
	l.Close() // must not panic or hang
	l.Post(func() { t.Error("posted callback ran after Close") })
	time.Sleep(10 * time.Millisecond)
}

func TestLoopConcurrentPosters(t *testing.T) {
	l := NewLoop()
	var wg sync.WaitGroup
	var mu sync.Mutex
	n := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Post(func() {
					mu.Lock()
					n++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	l.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 8*200 {
		t.Fatalf("ran %d callbacks, want %d", n, 8*200)
	}
}

func TestKernelRNGStableAcrossConstruction(t *testing.T) {
	a := NewKernel(7).RNG()
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("kernel RNG not seeded from the provided seed")
		}
	}
}
