package totem

import (
	"sort"

	"cts/internal/transport"
)

// startGather begins (or restarts) the membership protocol, optionally
// suspecting the given processors. The node's old-ring state is snapshotted
// once so that a gather restarted from commit/recover still recovers the
// original ring's messages.
func (n *Node) startGather(suspect []transport.NodeID) {
	n.startGatherInclude(nil, suspect)
}

// startGatherInclude is startGather with an extra set of processors to seed
// into the candidate proposal (used when a foreign ring's announce names
// members we have never heard joins from, so that consensus waits for them).
func (n *Node) startGatherInclude(include, suspect []transport.NodeID) {
	if n.state == stateStopped {
		return
	}
	if n.state == stateOperational || n.state == stateIdle {
		n.snapshotOldRing()
	} else if n.state == stateRecover {
		// A failed recovery. Nothing broadcast on the aborted ring ever
		// reached the application (regular messages are held until recovery
		// completes), so the aborted ring's traffic can be salvaged without
		// creating application-level duplicates:
		//  - recovered old-ring messages (delivered or merely received) are
		//    folded back into the old-ring holdings;
		//  - this node's own regular messages are re-queued for the next
		//    ring, in their original order, ahead of anything newer.
		for s, m := range n.recOld {
			if _, ok := n.oldHold[s]; !ok {
				n.oldHold[s] = &DataMsg{
					Ring:    n.oldRing,
					Seq:     s,
					Sender:  m.OldSndr,
					Kind:    KindRegular,
					DupKey:  m.DupKey,
					Payload: m.Payload,
				}
			}
		}
		var mine []*DataMsg
		for _, m := range n.received {
			switch m.Kind {
			case KindRecovery:
				if m.OldRing == n.oldRing {
					if _, ok := n.oldHold[m.OldSeq]; !ok {
						n.oldHold[m.OldSeq] = &DataMsg{
							Ring:    n.oldRing,
							Seq:     m.OldSeq,
							Sender:  m.OldSndr,
							Kind:    KindRegular,
							DupKey:  m.DupKey,
							Payload: m.Payload,
						}
					}
				}
			case KindRegular:
				if m.Sender == n.me {
					mine = append(mine, m)
				}
			}
		}
		sort.Slice(mine, func(i, j int) bool { return mine[i].Seq < mine[j].Seq })
		requeued := make([]*queuedMsg, 0, len(mine)+len(n.sendq))
		for _, m := range mine {
			requeued = append(requeued, &queuedMsg{
				payload: m.Payload, safe: m.Safe, dupKey: m.DupKey})
		}
		n.sendq = append(requeued, n.sendq...)
	}
	n.state = stateGather
	n.cancelAllTimers()
	n.retained = nil

	n.procSet = make(map[transport.NodeID]bool)
	n.failSet = make(map[transport.NodeID]bool)
	n.joins = make(map[transport.NodeID]*JoinMsg)
	n.procSet[n.me] = true
	for _, id := range n.members {
		n.procSet[id] = true
	}
	for _, id := range include {
		n.procSet[id] = true
	}
	for _, id := range suspect {
		if id != n.me {
			n.failSet[id] = true
		}
	}
	n.sendJoin()
	n.armConsensusTimer()
	n.checkConsensus()
}

// snapshotOldRing captures what this node holds of the current ring, for the
// recovery phase of the next membership change.
func (n *Node) snapshotOldRing() {
	n.tryDeliver()
	n.oldRing = n.ring
	n.oldDelivered = n.delivered
	n.oldHold = n.received
}

func (n *Node) sendJoin() {
	j := &JoinMsg{
		Sender:     n.me,
		ProcSet:    setToSorted(n.procSet),
		FailSet:    setToSorted(n.failSet),
		MaxRingSeq: n.maxRingSeq,
	}
	pkt := encodeJoin(j)
	_ = n.tr.Broadcast(pkt)
	// Process the local node's own join directly.
	n.joins[n.me] = j
}

func (n *Node) armConsensusTimer() {
	n.cancelTimer(&n.consensusTimer)
	n.consensusTimer = n.afterGuarded(n.cfg.JoinTimeout, func() {
		if n.state != stateGather {
			return
		}
		// Give up on candidates that never answered.
		changed := false
		for _, id := range n.candidates() {
			if _, ok := n.joins[id]; !ok && id != n.me {
				n.failSet[id] = true
				changed = true
			}
		}
		if changed {
			n.sendJoin()
		} else {
			// Re-broadcast in case our join was lost.
			n.sendJoin()
		}
		n.armConsensusTimer()
		n.checkConsensus()
	})
}

// onJoin handles a join message.
func (n *Node) onJoin(j *JoinMsg) {
	if n.state == stateStopped {
		return
	}
	if j.MaxRingSeq > n.maxRingSeq {
		n.maxRingSeq = j.MaxRingSeq
	}
	switch n.state {
	case stateIdle:
		// Not started yet; the joiner will retry.
	case stateOperational, stateCommit, stateRecover:
		if containsNode(n.members, j.Sender) && j.MaxRingSeq < n.maxRingSeq {
			// A straggler join from the gather that produced the current
			// (or forming) ring: the sender is already with us, or — if it
			// is genuinely stuck — the ring's token-loss timeout will
			// trigger a fresh gather whose joins carry a current ring
			// sequence number. Reacting here would livelock membership.
			return
		}
		// Seed the gather with the join's proposal: otherwise a node whose
		// current membership is only itself reaches instant consensus on a
		// singleton ring before the join is merged.
		include := append([]transport.NodeID{j.Sender}, j.ProcSet...)
		n.startGatherInclude(include, nil)
		n.mergeJoin(j)
	case stateGather:
		n.mergeJoin(j)
	}
}

func (n *Node) mergeJoin(j *JoinMsg) {
	changed := false
	if !n.procSet[j.Sender] {
		n.procSet[j.Sender] = true
		changed = true
	}
	for _, id := range j.ProcSet {
		if !n.procSet[id] {
			n.procSet[id] = true
			changed = true
		}
	}
	for _, id := range j.FailSet {
		if id != n.me && !n.failSet[id] {
			n.failSet[id] = true
			changed = true
		}
	}
	n.joins[j.Sender] = j
	if changed {
		n.sendJoin()
	}
	n.checkConsensus()
}

// candidates returns procSet − failSet, sorted.
func (n *Node) candidates() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(n.procSet))
	for id := range n.procSet {
		if !n.failSet[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkConsensus tests whether every candidate has proposed exactly this
// node's candidate set, and forms the new ring if so.
func (n *Node) checkConsensus() {
	if n.state != stateGather {
		return
	}
	cand := n.candidates()
	if len(cand) == 0 || !containsNode(cand, n.me) {
		return
	}
	for _, id := range cand {
		j, ok := n.joins[id]
		if !ok {
			return
		}
		if !sameCandidates(j, cand, n.failSet) {
			return
		}
	}
	n.formRing(cand)
}

// sameCandidates reports whether join j's proposal (ProcSet − its FailSet,
// further reduced by our fail set) equals cand.
func sameCandidates(j *JoinMsg, cand []transport.NodeID, ourFails map[transport.NodeID]bool) bool {
	fails := make(map[transport.NodeID]bool, len(j.FailSet))
	for _, id := range j.FailSet {
		fails[id] = true
	}
	var c []transport.NodeID
	for _, id := range j.ProcSet {
		if !fails[id] && !ourFails[id] {
			c = append(c, id)
		}
	}
	c = sortedNodes(c)
	if len(c) != len(cand) {
		return false
	}
	for i := range c {
		if c[i] != cand[i] {
			return false
		}
	}
	return true
}

func nodesEqual(a, b []transport.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(sub, super []transport.NodeID) bool {
	for _, id := range sub {
		if !containsNode(super, id) {
			return false
		}
	}
	return true
}

func setToSorted(set map[transport.NodeID]bool) []transport.NodeID {
	out := make([]transport.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// formRing transitions gather → commit. The representative (lowest id)
// creates the commit token and circulates it around the prospective ring.
func (n *Node) formRing(cand []transport.NodeID) {
	newSeq := n.maxRingSeq + 1
	if n.ring.Seq >= newSeq {
		newSeq = n.ring.Seq + 1
	}
	n.maxRingSeq = newSeq
	newRing := RingID{Seq: newSeq, Rep: cand[0]}
	n.state = stateCommit
	n.members = cand
	n.cancelTimer(&n.consensusTimer)
	n.armCommitTimer()

	if n.me == newRing.Rep {
		ct := &CommitToken{Ring: newRing, Members: cand,
			Infos: []MemberInfo{n.myMemberInfo()}}
		n.forwardCommit(ct)
	}
}

func (n *Node) armCommitTimer() {
	n.cancelTimer(&n.commitTimer)
	n.commitTimer = n.afterGuarded(n.cfg.CommitTimeout, func() {
		if n.state != stateCommit {
			return
		}
		// The commit token was lost or a member died; run gather again.
		n.startGather(nil)
	})
}

// myMemberInfo summarizes this node's old-ring holdings for the commit token.
func (n *Node) myMemberInfo() MemberInfo {
	info := MemberInfo{
		ID:      n.me,
		OldRing: n.oldRing,
		Aru:     n.oldDelivered,
		HighSeq: n.oldDelivered,
	}
	for s := range n.oldHold {
		if s > n.oldDelivered {
			info.Received = append(info.Received, s)
			if s > info.HighSeq {
				info.HighSeq = s
			}
		}
	}
	sort.Slice(info.Received, func(i, j int) bool { return info.Received[i] < info.Received[j] })
	return info
}

// forwardCommit sends the commit token to this node's successor among the
// prospective members (or handles it directly on a ring of one).
func (n *Node) forwardCommit(ct *CommitToken) {
	succ := successorIn(ct.Members, n.me)
	if succ == n.me {
		cp := *ct
		n.rt.Post(func() { n.onCommit(&cp) })
		return
	}
	_ = n.tr.Send(succ, encodeCommit(ct))
}

func successorIn(members []transport.NodeID, me transport.NodeID) transport.NodeID {
	for _, id := range members {
		if id > me {
			return id
		}
	}
	return members[0]
}

// onCommit handles a commit token.
func (n *Node) onCommit(ct *CommitToken) {
	if n.state == stateStopped || !containsNode(ct.Members, n.me) {
		return
	}
	switch n.state {
	case stateGather, stateCommit:
		if ct.hasInfo(n.me) {
			if ct.complete() {
				n.cancelTimer(&n.commitTimer)
				forward := *ct // forward before mutating our state
				n.enterRecover(ct)
				// Pass the complete token on: this is the second rotation,
				// which distributes the full member information. The
				// representative, which receives the token again at the end
				// of that rotation while already in the recover state,
				// drops it in the default case below.
				n.forwardCommitComplete(&forward)
				return
			}
			return // partially-filled token looped badly; ignore
		}
		// First rotation: contribute this node's info and forward. Accept
		// the proposed membership if it is compatible with what we know
		// (we are in it, and nobody we have failed is).
		for _, id := range ct.Members {
			if n.failSet[id] {
				return
			}
		}
		ct.Infos = append(ct.Infos, n.myMemberInfo())
		n.state = stateCommit
		n.members = append([]transport.NodeID(nil), ct.Members...)
		n.armCommitTimer()
		if ct.complete() {
			// This node is the last member before the representative and
			// completes the token; handle it as complete immediately and
			// also pass it to the representative.
			n.cancelTimer(&n.commitTimer)
			forward := *ct
			n.enterRecover(ct)
			n.forwardCommitComplete(&forward)
			return
		}
		n.forwardCommit(ct)
	default:
		// Operational or recover: stale commit token, drop.
	}
}

func (n *Node) forwardCommitComplete(ct *CommitToken) {
	succ := successorIn(ct.Members, n.me)
	if succ == n.me {
		return // ring of one: nobody else needs it
	}
	// The representative forwards at the end of rotation one; everyone else
	// forwards the complete token exactly once as it passes.
	_ = n.tr.Send(succ, encodeCommit(ct))
}

func (ct *CommitToken) hasInfo(id transport.NodeID) bool {
	for i := range ct.Infos {
		if ct.Infos[i].ID == id {
			return true
		}
	}
	return false
}

// enterRecover installs the new ring, computes recovery duties from the
// commit token, and (at the representative) launches the new ring's token.
// Old-ring messages are rebroadcast as recovery messages on the new ring,
// each by the lowest-id member that holds it, followed by an end-of-recovery
// marker from every member; once every marker has been delivered, the
// recovered messages are delivered in old-ring order and the new view is
// installed.
func (n *Node) enterRecover(ct *CommitToken) {
	n.state = stateRecover
	n.cancelAllTimers()
	n.ring = ct.Ring
	n.members = append([]transport.NodeID(nil), ct.Members...)
	if n.ring.Seq > n.maxRingSeq {
		n.maxRingSeq = n.ring.Seq
	}

	// Reset per-ring state.
	n.lastTokenSeq = 0
	n.highSeq = 0
	n.myAru = 0
	n.delivered = 0
	n.prevTokenAru = 0
	n.safePoint = 0
	n.received = make(map[uint64]*DataMsg)
	n.retained = nil
	n.recq = nil
	n.recOld = make(map[uint64]*DataMsg)
	n.endMarkers = make(map[transport.NodeID]bool)
	n.heldRegular = nil

	// Compute this node's rebroadcast duty for its old-ring cohort.
	if n.oldRing != (RingID{}) {
		cohort := make([]MemberInfo, 0, len(ct.Infos))
		for _, info := range ct.Infos {
			if info.OldRing == n.oldRing {
				cohort = append(cohort, info)
			}
		}
		low := ^uint64(0)
		for _, info := range cohort {
			if info.Aru < low {
				low = info.Aru
			}
		}
		// holders[s] = lowest-id cohort member that holds old message s>low.
		holders := make(map[uint64]transport.NodeID)
		note := func(s uint64, id transport.NodeID) {
			if cur, ok := holders[s]; !ok || id < cur {
				holders[s] = id
			}
		}
		for _, info := range cohort {
			for s := low + 1; s <= info.Aru; s++ {
				note(s, info.ID)
			}
			for _, s := range info.Received {
				if s > low {
					note(s, info.ID)
				}
			}
		}
		duty := make([]uint64, 0, len(holders))
		for s, id := range holders {
			if id == n.me {
				duty = append(duty, s)
			}
		}
		sort.Slice(duty, func(i, j int) bool { return duty[i] < duty[j] })
		for _, s := range duty {
			orig, ok := n.oldHold[s]
			if !ok {
				continue // should not happen: duty is derived from our info
			}
			n.recq = append(n.recq, &DataMsg{
				Kind:    KindRecovery,
				OldRing: n.oldRing,
				OldSeq:  s,
				OldSndr: orig.Sender,
				DupKey:  orig.DupKey,
				Payload: orig.Payload,
			})
		}
	}
	// Every member announces the end of its rebroadcasts.
	n.recq = append(n.recq, &DataMsg{Kind: KindEndRecovery})

	if n.me == n.ring.Rep {
		tk := &Token{Ring: n.ring, TokenSeq: 1, AruID: aruNone}
		n.rt.Post(func() { n.onToken(tk) })
	} else {
		n.armLossTimer()
	}
}

// completeRecovery delivers the recovered old-ring messages in old order,
// installs the new view, and flushes any regular messages that were
// delivered on the new ring while recovery was in progress.
func (n *Node) completeRecovery() {
	seqs := make([]uint64, 0, len(n.recOld))
	for s := range n.recOld {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		m := n.recOld[s]
		n.deliverToApp(m.OldRing, m.OldSeq, m.OldSndr, m.Payload)
	}
	n.recOld = nil

	// The new ring's messages become this node's future "old ring" data.
	n.oldRing = n.ring
	n.oldDelivered = 0 // will be re-snapshotted on the next gather
	n.oldHold = make(map[uint64]*DataMsg)

	n.stats.Memberships++
	n.primary = len(n.members) >= n.quorum
	n.state = stateOperational
	if n.me == n.ring.Rep {
		n.armAnnounceTimer()
	}
	n.emitView()

	held := n.heldRegular
	n.heldRegular = nil
	for _, m := range held {
		n.deliverToApp(m.Ring, m.Seq, m.Sender, m.Payload)
	}
}
