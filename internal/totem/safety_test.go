package totem

import (
	"fmt"
	"testing"
	"time"

	"cts/internal/transport"
)

// Tests for per-message safe delivery, logical-identity duplicate
// suppression, and message salvage across aborted recoveries.

func TestPerMessageSafeDeliveryPreservesTotalOrder(t *testing.T) {
	h := newHarness(t, 21, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// Interleave safe and agreed messages from one sender; delivery must be
	// in send order at every node (a held safe message blocks later ones).
	n := h.nodes[0]
	h.k.Post(func() {
		for i := 0; i < 12; i++ {
			payload := []byte(fmt.Sprintf("m%02d", i))
			// Queue through the same (loop-direct) path so the send order
			// matches the loop iteration order; every third message is safe.
			n.BroadcastCancelable(payload, i%3 == 0, 0)
		}
	})
	ok := h.runUntil(2*time.Second, func() bool {
		for _, id := range ids {
			if len(h.deliveries[id]) < 12 {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, id := range ids {
			t.Logf("%v delivered %d", id, len(h.deliveries[id]))
		}
		t.Fatal("not all messages delivered")
	}
	for _, id := range ids {
		for i := 0; i < 12; i++ {
			if want := fmt.Sprintf("m%02d", i); h.deliveries[id][i] != want {
				t.Fatalf("%v delivery %d = %q, want %q (order broken by safe gating)",
					id, i, h.deliveries[id][i], want)
			}
		}
	}
}

func TestSafeDeliveryWaitsForAllReceived(t *testing.T) {
	h := newHarness(t, 22, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// A safe message takes strictly longer to deliver at the sender than an
	// agreed one: the aru must cover it first.
	send := func(safe bool) time.Duration {
		start := h.k.Now()
		h.k.Post(func() { h.nodes[0].BroadcastCancelable([]byte("x"), safe, 0) })
		before := len(h.deliveries[0])
		h.runUntil(time.Second, func() bool { return len(h.deliveries[0]) > before })
		return h.k.Now() - start
	}
	agreed := send(false)
	safe := send(true)
	if safe <= agreed {
		t.Fatalf("safe delivery (%v) not slower than agreed (%v)", safe, agreed)
	}
	// One hop ≈ 50µs; safe needs about a full extra circulation.
	if safe-agreed < 100*time.Microsecond {
		t.Fatalf("safe delivery only %v slower than agreed; expected ≈ a circulation", safe-agreed)
	}
}

func TestDupKeySuppressionAtTokenVisit(t *testing.T) {
	h := newHarness(t, 23, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// All three nodes queue a message with the same logical identity;
	// exactly one copy is delivered.
	const key = 0xFEED
	for _, id := range ids {
		n := h.nodes[id]
		h.k.Post(func() { n.BroadcastCancelable([]byte("same"), false, key) })
	}
	h.k.RunFor(20 * time.Millisecond)
	for _, id := range ids {
		count := 0
		for _, p := range h.deliveries[id] {
			if p == "same" {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%v delivered %d copies of the keyed message, want 1", id, count)
		}
	}
}

func TestCancelReportsUnsentGuarantee(t *testing.T) {
	h := newHarness(t, 24, nil)
	n := h.addNode(0, nodeIDs(1), true)
	h.startAll()
	h.k.RunFor(time.Millisecond)

	var cancel func() bool
	h.k.Post(func() { cancel = n.BroadcastCancelable([]byte("y"), false, 0) })
	h.k.RunFor(time.Microsecond) // queue it, before any token visit sends it
	var first, second bool
	h.k.Post(func() { first = cancel(); second = cancel() })
	h.k.RunFor(time.Millisecond)
	if !first || !second {
		t.Fatalf("cancel should be idempotently true before send: %v %v", first, second)
	}
	// After a send, cancel reports false.
	var sent func() bool
	h.k.Post(func() { sent = n.BroadcastCancelable([]byte("z"), false, 0) })
	h.k.RunFor(5 * time.Millisecond) // token visits pass; message sent
	var late bool
	h.k.Post(func() { late = sent() })
	h.k.RunFor(time.Millisecond)
	if late {
		t.Fatal("cancel after the send should report false")
	}
}

// TestAbortedRecoverySalvagesMessages crashes a member exactly while a
// membership change is being recovered, forcing a second membership round,
// and verifies that messages broadcast around the disruption still reach all
// survivors exactly once.
func TestAbortedRecoverySalvagesMessages(t *testing.T) {
	h := newHarness(t, 25, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// Continuous traffic from node 0.
	sent := 0
	n0 := h.nodes[0]
	var pump func()
	pump = func() {
		if sent >= 60 {
			return
		}
		n0.Broadcast([]byte(fmt.Sprintf("p%03d", sent)))
		sent++
		h.k.After(150*time.Microsecond, pump)
	}
	h.k.Post(pump)

	// First disruption: crash node 3; second disruption arrives while the
	// survivors are likely still in the membership change: crash node 2.
	h.k.At(h.k.Now()+2*time.Millisecond, func() {
		h.nodes[3].Stop()
		h.net.Endpoint(3).SetDown(true)
	})
	h.k.At(h.k.Now()+13*time.Millisecond, func() { // ≈ token-loss + gather window
		h.nodes[2].Stop()
		h.net.Endpoint(2).SetDown(true)
	})

	ok := h.runUntil(5*time.Second, func() bool {
		return sent >= 60 && len(h.deliveries[0]) >= 60 && len(h.deliveries[1]) >= 60
	})
	if !ok {
		t.Fatalf("sent=%d delivered0=%d delivered1=%d",
			sent, len(h.deliveries[0]), len(h.deliveries[1]))
	}
	// Survivors delivered every message exactly once, in identical order.
	for _, id := range ids[:2] {
		seen := make(map[string]int)
		for _, p := range h.deliveries[id] {
			seen[p]++
		}
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("p%03d", i)
			if seen[key] != 1 {
				t.Fatalf("%v saw %q %d times", id, key, seen[key])
			}
		}
	}
	h.checkPrefixConsistency(0, 1)
}

// TestTotalOrderUnderLossManySeeds is the multi-seed property check: for
// every seed, lossy delivery still yields gapless identical sequences.
func TestTotalOrderUnderLossManySeeds(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := newHarness(t, seed, nil)
			ids := nodeIDs(3)
			for _, id := range ids {
				h.addNode(id, ids, true)
			}
			h.net.SetLoss(0.08)
			h.startAll()
			for i, id := range ids {
				node := h.nodes[id]
				for m := 0; m < 15; m++ {
					msg := fmt.Sprintf("n%d-m%d", i, m)
					h.k.At(time.Duration(m*300+i*41)*time.Microsecond,
						func() { node.Broadcast([]byte(msg)) })
				}
			}
			ok := h.runUntil(5*time.Second, func() bool {
				for _, id := range ids {
					if len(h.deliveries[id]) < 45 {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("deliveries: %d/%d/%d of 45",
					len(h.deliveries[0]), len(h.deliveries[1]), len(h.deliveries[2]))
			}
			h.checkPrefixConsistency(ids...)
			seen := make(map[string]bool)
			for _, p := range h.deliveries[0] {
				if seen[p] {
					t.Fatalf("duplicate delivery %q", p)
				}
				seen[p] = true
			}
		})
	}
}

// TestSafeModeNodeWide exercises Mode: Safe across a membership change.
func TestSafeModeNodeWideSurvivesCrash(t *testing.T) {
	h := newHarness(t, 26, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true, func(c *Config) { c.Mode = Safe })
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)
	node := h.nodes[0]
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("s%d", i)
		h.k.At(h.k.Now()+time.Duration(i*200)*time.Microsecond,
			func() { node.Broadcast([]byte(msg)) })
	}
	h.k.RunFor(2 * time.Millisecond)
	h.nodes[2].Stop()
	h.net.Endpoint(2).SetDown(true)
	ok := h.runUntil(3*time.Second, func() bool {
		return len(h.deliveries[0]) >= 10 && len(h.deliveries[1]) >= 10
	})
	if !ok {
		t.Fatalf("safe-mode deliveries after crash: %d/%d",
			len(h.deliveries[0]), len(h.deliveries[1]))
	}
	h.checkPrefixConsistency(0, 1)
}

var _ = transport.NodeID(0)
