package totem

import (
	"fmt"
	"testing"
	"time"

	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
)

// harness runs a cluster of totem nodes on a simulated network.
type harness struct {
	t     *testing.T
	k     *sim.Kernel
	net   *simnet.Network
	nodes map[transport.NodeID]*Node
	// deliveries[id] is the sequence of payload strings delivered at id.
	deliveries map[transport.NodeID][]string
	senders    map[transport.NodeID][]transport.NodeID
	views      map[transport.NodeID][]View
}

func newHarness(t *testing.T, seed int64, latency simnet.LatencyModel) *harness {
	t.Helper()
	k := sim.NewKernel(seed)
	return &harness{
		t:          t,
		k:          k,
		net:        simnet.NewNetwork(k, latency),
		nodes:      make(map[transport.NodeID]*Node),
		deliveries: make(map[transport.NodeID][]string),
		senders:    make(map[transport.NodeID][]transport.NodeID),
		views:      make(map[transport.NodeID][]View),
	}
}

func (h *harness) addNode(id transport.NodeID, members []transport.NodeID, bootstrap bool, opts ...func(*Config)) *Node {
	h.t.Helper()
	cfg := Config{
		Runtime:   h.k,
		Transport: h.net.Endpoint(id),
		Members:   members,
		Bootstrap: bootstrap,
		Deliver: func(d Delivery) {
			h.deliveries[id] = append(h.deliveries[id], string(d.Payload))
			h.senders[id] = append(h.senders[id], d.Sender)
		},
		OnView: func(v View) {
			h.views[id] = append(h.views[id], v)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		h.t.Fatalf("New(%v): %v", id, err)
	}
	h.nodes[id] = n
	return n
}

func (h *harness) startAll() {
	for _, n := range h.nodes {
		n.Start()
	}
}

// runUntil advances simulation until cond holds or maxVirtual elapses.
func (h *harness) runUntil(maxVirtual time.Duration, cond func() bool) bool {
	h.t.Helper()
	deadline := h.k.Now() + maxVirtual
	for h.k.Now() < deadline {
		if cond() {
			return true
		}
		h.k.RunFor(200 * time.Microsecond)
	}
	return cond()
}

// checkPrefixConsistency verifies that every pair of delivery sequences is
// prefix-consistent (one is a prefix of the other).
func (h *harness) checkPrefixConsistency(ids ...transport.NodeID) {
	h.t.Helper()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := h.deliveries[ids[i]], h.deliveries[ids[j]]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for x := 0; x < n; x++ {
				if a[x] != b[x] {
					h.t.Fatalf("delivery order diverges at %d: %v=%q %v=%q",
						x, ids[i], a[x], ids[j], b[x])
				}
			}
		}
	}
}

func nodeIDs(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(i)
	}
	return out
}

func TestBootstrapRingDeliversTotalOrder(t *testing.T) {
	h := newHarness(t, 1, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()

	const perNode = 25
	for i, id := range ids {
		id := id
		node := h.nodes[id]
		for m := 0; m < perNode; m++ {
			msg := fmt.Sprintf("n%d-m%d", i, m)
			at := time.Duration(m*100+i*13) * time.Microsecond
			h.k.At(at, func() { node.Broadcast([]byte(msg)) })
		}
	}
	want := perNode * len(ids)
	ok := h.runUntil(time.Second, func() bool {
		for _, id := range ids {
			if len(h.deliveries[id]) < want {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, id := range ids {
			t.Logf("%v delivered %d", id, len(h.deliveries[id]))
		}
		t.Fatal("not all messages delivered")
	}
	h.checkPrefixConsistency(ids...)
	// Exactly want messages, no duplicates.
	for _, id := range ids {
		if len(h.deliveries[id]) != want {
			t.Fatalf("%v delivered %d, want %d", id, len(h.deliveries[id]), want)
		}
		seen := make(map[string]bool)
		for _, p := range h.deliveries[id] {
			if seen[p] {
				t.Fatalf("%v delivered duplicate %q", id, p)
			}
			seen[p] = true
		}
	}
	// Sender FIFO: messages from one node are delivered in send order.
	for _, id := range ids {
		last := make(map[transport.NodeID]int)
		for x := range h.deliveries[id] {
			var ni, mi int
			fmt.Sscanf(h.deliveries[id][x], "n%d-m%d", &ni, &mi)
			sender := transport.NodeID(ni)
			if prev, ok := last[sender]; ok && mi <= prev {
				t.Fatalf("%v: sender %v FIFO violated: m%d after m%d", id, sender, mi, prev)
			}
			last[sender] = mi
		}
	}
}

func TestInitialViewEmitted(t *testing.T) {
	h := newHarness(t, 2, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(time.Millisecond)
	for _, id := range ids {
		if len(h.views[id]) == 0 {
			t.Fatalf("%v got no initial view", id)
		}
		v := h.views[id][0]
		if len(v.Members) != 3 || !v.Primary {
			t.Fatalf("%v initial view = %+v", id, v)
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	h := newHarness(t, 3, nil)
	n := h.addNode(0, []transport.NodeID{0}, true)
	h.startAll()
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("m%d", i)
		h.k.At(time.Duration(i)*50*time.Microsecond, func() { n.Broadcast([]byte(msg)) })
	}
	ok := h.runUntil(100*time.Millisecond, func() bool { return len(h.deliveries[0]) >= 10 })
	if !ok {
		t.Fatalf("single-node ring delivered %d/10", len(h.deliveries[0]))
	}
	for i := 0; i < 10; i++ {
		if h.deliveries[0][i] != fmt.Sprintf("m%d", i) {
			t.Fatalf("order broken at %d: %v", i, h.deliveries[0])
		}
	}
}

func TestDeliveryUnderMessageLoss(t *testing.T) {
	h := newHarness(t, 4, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.net.SetLoss(0.05)
	h.startAll()

	const perNode = 20
	for i, id := range ids {
		node := h.nodes[id]
		for m := 0; m < perNode; m++ {
			msg := fmt.Sprintf("n%d-m%d", i, m)
			h.k.At(time.Duration(m*200+i*17)*time.Microsecond, func() { node.Broadcast([]byte(msg)) })
		}
	}
	want := perNode * len(ids)
	ok := h.runUntil(5*time.Second, func() bool {
		for _, id := range ids {
			if len(h.deliveries[id]) < want {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, id := range ids {
			t.Logf("%v delivered %d/%d", id, len(h.deliveries[id]), want)
		}
		t.Fatal("messages lost despite retransmission")
	}
	h.checkPrefixConsistency(ids...)
}

func TestSafeDeliveryMode(t *testing.T) {
	h := newHarness(t, 5, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true, func(c *Config) { c.Mode = Safe })
	}
	h.startAll()
	node := h.nodes[0]
	for i := 0; i < 15; i++ {
		msg := fmt.Sprintf("m%d", i)
		h.k.At(time.Duration(i*100)*time.Microsecond, func() { node.Broadcast([]byte(msg)) })
	}
	ok := h.runUntil(time.Second, func() bool {
		for _, id := range ids {
			if len(h.deliveries[id]) < 15 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("safe mode did not deliver all messages")
	}
	h.checkPrefixConsistency(ids...)
}

func TestMemberCrashReformsRing(t *testing.T) {
	h := newHarness(t, 6, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// Crash P3 (not the representative).
	h.nodes[3].Stop()
	h.net.Endpoint(3).SetDown(true)

	ok := h.runUntil(time.Second, func() bool {
		for _, id := range ids[:3] {
			vs := h.views[id]
			if len(vs) == 0 || len(vs[len(vs)-1].Members) != 3 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("survivors did not install a 3-member view")
	}
	// The ring still works.
	node := h.nodes[0]
	before := len(h.deliveries[1])
	h.k.Post(func() { node.Broadcast([]byte("after-crash")) })
	ok = h.runUntil(time.Second, func() bool { return len(h.deliveries[1]) > before })
	if !ok {
		t.Fatal("no delivery after crash recovery")
	}
	h.checkPrefixConsistency(0, 1, 2)
}

func TestRepresentativeCrashReformsRing(t *testing.T) {
	h := newHarness(t, 7, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	h.nodes[0].Stop()
	h.net.Endpoint(0).SetDown(true)

	ok := h.runUntil(time.Second, func() bool {
		for _, id := range ids[1:] {
			vs := h.views[id]
			if len(vs) == 0 || len(vs[len(vs)-1].Members) != 3 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("survivors did not reform after representative crash")
	}
	// New ring's representative is P1.
	vs := h.views[1]
	if got := vs[len(vs)-1].Ring.Rep; got != 1 {
		t.Fatalf("new representative = %v, want P1", got)
	}
	node := h.nodes[2]
	before := len(h.deliveries[1])
	h.k.Post(func() { node.Broadcast([]byte("post-rep-crash")) })
	if !h.runUntil(time.Second, func() bool { return len(h.deliveries[1]) > before }) {
		t.Fatal("ring dead after representative crash")
	}
	h.checkPrefixConsistency(1, 2, 3)
}

func TestMessagesInFlightSurviveMembershipChange(t *testing.T) {
	h := newHarness(t, 8, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// Broadcast a burst, crash a node immediately afterwards.
	node := h.nodes[1]
	for i := 0; i < 30; i++ {
		msg := fmt.Sprintf("burst-%d", i)
		h.k.Post(func() { node.Broadcast([]byte(msg)) })
	}
	h.k.RunFor(150 * time.Microsecond) // partially sent
	h.nodes[3].Stop()
	h.net.Endpoint(3).SetDown(true)

	ok := h.runUntil(2*time.Second, func() bool {
		for _, id := range ids[:3] {
			if len(h.deliveries[id]) < 30 {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, id := range ids[:3] {
			t.Logf("%v delivered %d/30", id, len(h.deliveries[id]))
		}
		t.Fatal("burst lost across membership change")
	}
	h.checkPrefixConsistency(0, 1, 2)
	// FIFO per sender preserved across the membership change.
	for _, id := range ids[:3] {
		prev := -1
		for _, p := range h.deliveries[id] {
			var x int
			if _, err := fmt.Sscanf(p, "burst-%d", &x); err == nil {
				if x != prev+1 {
					t.Fatalf("%v: burst order broken: got %d after %d", id, x, prev)
				}
				prev = x
			}
		}
	}
}

func TestNewNodeJoinsExistingRing(t *testing.T) {
	h := newHarness(t, 9, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// P3 joins.
	joiner := h.addNode(3, nodeIDs(4), false)
	joiner.Start()

	ok := h.runUntil(time.Second, func() bool {
		vs := h.views[3]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 4
	})
	if !ok {
		t.Fatal("joiner did not install the 4-member view")
	}
	// All members see 4-member views and subsequent deliveries reach P3.
	node := h.nodes[0]
	h.k.Post(func() { node.Broadcast([]byte("welcome")) })
	ok = h.runUntil(time.Second, func() bool {
		for _, id := range nodeIDs(4) {
			found := false
			for _, p := range h.deliveries[id] {
				if p == "welcome" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("post-join broadcast did not reach everyone")
	}
}

func TestCrashedNodeRejoins(t *testing.T) {
	h := newHarness(t, 10, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	h.nodes[2].Stop()
	h.net.Endpoint(2).SetDown(true)
	ok := h.runUntil(time.Second, func() bool {
		vs := h.views[0]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 2
	})
	if !ok {
		t.Fatal("2-member ring not formed after crash")
	}

	// Restart P2 with a fresh node instance (lost all state).
	h.net.Endpoint(2).SetDown(false)
	h.deliveries[2] = nil
	h.views[2] = nil
	restarted := h.addNode(2, ids, false)
	restarted.Start()

	ok = h.runUntil(2*time.Second, func() bool {
		vs := h.views[2]
		return len(vs) > 0 && len(vs[len(vs)-1].Members) == 3
	})
	if !ok {
		t.Fatal("restarted node did not rejoin")
	}
	node := h.nodes[0]
	h.k.Post(func() { node.Broadcast([]byte("again")) })
	ok = h.runUntil(time.Second, func() bool {
		for _, p := range h.deliveries[2] {
			if p == "again" {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatal("rejoined node does not receive broadcasts")
	}
}

func TestPartitionPrimaryComponent(t *testing.T) {
	h := newHarness(t, 11, nil)
	ids := nodeIDs(4)
	for _, id := range ids {
		h.addNode(id, ids, true)
	}
	h.startAll()
	h.k.RunFor(2 * time.Millisecond)

	// 3/1 partition: {0,1,2} keeps quorum (3 of 4), {3} does not.
	h.net.Partition([]transport.NodeID{0, 1, 2}, []transport.NodeID{3})

	ok := h.runUntil(2*time.Second, func() bool {
		vs0 := h.views[0]
		vs3 := h.views[3]
		return len(vs0) > 0 && len(vs0[len(vs0)-1].Members) == 3 &&
			len(vs3) > 0 && len(vs3[len(vs3)-1].Members) == 1
	})
	if !ok {
		t.Fatal("partition views not installed")
	}
	v0 := h.views[0][len(h.views[0])-1]
	v3 := h.views[3][len(h.views[3])-1]
	if !v0.Primary {
		t.Fatal("majority component should be primary")
	}
	if v3.Primary {
		t.Fatal("minority component must not be primary")
	}

	// Heal; a single 4-member primary ring reforms.
	h.net.Heal()
	ok = h.runUntil(2*time.Second, func() bool {
		for _, id := range ids {
			vs := h.views[id]
			if len(vs) == 0 {
				return false
			}
			last := vs[len(vs)-1]
			if len(last.Members) != 4 || !last.Primary {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("ring did not remerge after heal")
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []string {
		h := newHarness(t, 42, nil)
		ids := nodeIDs(4)
		for _, id := range ids {
			h.addNode(id, ids, true)
		}
		h.startAll()
		for i, id := range ids {
			node := h.nodes[id]
			for m := 0; m < 10; m++ {
				msg := fmt.Sprintf("n%d-m%d", i, m)
				h.k.At(time.Duration(m*150+i*29)*time.Microsecond, func() { node.Broadcast([]byte(msg)) })
			}
		}
		h.runUntil(time.Second, func() bool { return len(h.deliveries[0]) >= 40 })
		return h.deliveries[0]
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestStatsCounters(t *testing.T) {
	rec, err := obs.New(obs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 12, nil)
	ids := nodeIDs(3)
	for _, id := range ids {
		h.addNode(id, ids, true, func(c *Config) { c.Obs = rec.ForNode(uint32(id)) })
	}
	h.startAll()
	node := h.nodes[1]
	h.k.Post(func() { node.Broadcast([]byte("x")) })
	h.runUntil(time.Second, func() bool { return len(h.deliveries[0]) >= 1 })
	counter := func(name string) uint64 {
		var v uint64
		for _, s := range rec.Samples() {
			if s.Node == 1 && s.Name == name {
				v += s.Value
			}
		}
		return v
	}
	if counter("totem.tokens_handled") == 0 {
		t.Fatal("no tokens handled")
	}
	if counter("totem.broadcasts") == 0 {
		t.Fatal("no broadcasts counted")
	}
	if counter("totem.delivered") == 0 {
		t.Fatal("no deliveries counted")
	}
}

func TestBroadcastAfterStop(t *testing.T) {
	h := newHarness(t, 13, nil)
	n := h.addNode(0, nodeIDs(1), true)
	h.startAll()
	h.k.RunFor(time.Millisecond)
	n.Stop()
	// Broadcast after stop is silently dropped (posted to a stopped node).
	n.Broadcast([]byte("late"))
	h.k.RunFor(time.Millisecond)
	for _, p := range h.deliveries[0] {
		if p == "late" {
			t.Fatal("message delivered after Stop")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.NewNetwork(k, nil)
	ep := net.Endpoint(0)
	deliver := func(Delivery) {}
	if _, err := New(Config{Transport: ep, Deliver: deliver}); err == nil {
		t.Fatal("missing Runtime accepted")
	}
	if _, err := New(Config{Runtime: k, Deliver: deliver}); err == nil {
		t.Fatal("missing Transport accepted")
	}
	if _, err := New(Config{Runtime: k, Transport: ep}); err == nil {
		t.Fatal("missing Deliver accepted")
	}
	// Local node is added to Members automatically.
	n, err := New(Config{Runtime: k, Transport: ep, Deliver: deliver,
		Members: []transport.NodeID{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !containsNode(n.members, 0) {
		t.Fatal("local node not added to members")
	}
}

func TestHelperFunctions(t *testing.T) {
	if got := dedupSorted([]uint64{5, 3, 3, 1, 5}); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("dedupSorted = %v", got)
	}
	if got := dedupSorted(nil); got != nil {
		t.Fatalf("dedupSorted(nil) = %v", got)
	}
	s := sortedNodes([]transport.NodeID{3, 1, 3, 2})
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("sortedNodes = %v", s)
	}
	if successorIn([]transport.NodeID{1, 3, 5}, 3) != 5 {
		t.Fatal("successorIn middle")
	}
	if successorIn([]transport.NodeID{1, 3, 5}, 5) != 1 {
		t.Fatal("successorIn wrap")
	}
	if minU64(3, 7) != 3 || minU64(9, 2) != 2 {
		t.Fatal("minU64")
	}
	r1 := RingID{Seq: 1, Rep: 2}
	r2 := RingID{Seq: 1, Rep: 3}
	r3 := RingID{Seq: 2, Rep: 0}
	if !r1.Less(r2) || !r2.Less(r3) || r3.Less(r1) {
		t.Fatal("RingID.Less ordering")
	}
}

// countingTransport wraps a transport and counts outgoing datagrams; the
// counter is only touched on the kernel loop and read between run steps.
type countingTransport struct {
	transport.Transport
	sends int
}

func (c *countingTransport) Send(to transport.NodeID, p []byte) error {
	c.sends++
	return c.Transport.Send(to, p)
}

func (c *countingTransport) Broadcast(p []byte) error {
	c.sends++
	return c.Transport.Broadcast(p)
}

// TestNoTimerActivityAfterStop is the regression test for the protocol
// timers' stop discipline: a node left alone retransmitting the token (its
// successor is partitioned away, the loss timeout is far off) keeps a
// self-re-arming retransmission timer running. After Stop, no timer may act
// or re-arm — the node must fall completely silent, even though timer
// callbacks that already fired can still be delivered after cancellation.
func TestNoTimerActivityAfterStop(t *testing.T) {
	h := newHarness(t, 3, nil)
	ids := nodeIDs(2)
	const retrans = 500 * time.Microsecond
	ctr := &countingTransport{Transport: h.net.Endpoint(ids[0])}
	tune := func(c *Config) {
		c.TokenRetransTimeout = retrans
		c.TokenLossTimeout = 30 * time.Second // keep membership changes out
		c.AnnounceInterval = time.Millisecond
	}
	h.addNode(ids[0], ids, true, tune, func(c *Config) { c.Transport = ctr })
	h.addNode(ids[1], ids, true, tune)
	h.startAll()
	if !h.runUntil(time.Second, func() bool {
		return len(h.views[0]) > 0 && len(h.views[1]) > 0
	}) {
		t.Fatal("ring never formed")
	}

	// Cut off the successor: node 0's forwarded tokens vanish, so its
	// retransmission timer keeps firing and re-arming.
	h.net.Endpoint(ids[1]).SetDown(true)
	before := ctr.sends
	h.k.RunFor(20 * retrans)
	if ctr.sends <= before {
		t.Fatal("partitioned node never retransmitted; the test exercises nothing")
	}

	h.nodes[0].Stop()
	h.k.RunFor(time.Millisecond) // drain the stop post and in-flight callbacks
	quiesced := ctr.sends
	h.k.RunFor(20 * retrans)
	if ctr.sends != quiesced {
		t.Fatalf("node sent %d datagram(s) after Stop", ctr.sends-quiesced)
	}
}
