package totem

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cts/internal/obs"
	"cts/internal/sim"
	"cts/internal/transport"
)

// Defaults, calibrated for the simulated 100 Mb/s testbed (token rotation on
// a 4-node ring is ≈220 µs). Deployments over real networks should raise them
// via Config.
const (
	defaultTokenLoss     = 10 * time.Millisecond
	defaultTokenRetrans  = 2 * time.Millisecond
	defaultJoinTimeout   = 4 * time.Millisecond
	defaultCommitTimeout = 10 * time.Millisecond
	defaultAnnounce      = 25 * time.Millisecond
	defaultMaxPerToken   = 16
	selfHopDelay         = 10 * time.Microsecond // token hop on a ring of one
)

// Config configures a Totem node.
type Config struct {
	// Runtime is the event loop the node runs on (simulation kernel or
	// real-time loop). Required.
	Runtime sim.Runtime
	// Transport carries the node's datagrams. Required.
	Transport transport.Transport
	// Members is the initial membership, including the local node.
	Members []transport.NodeID
	// Bootstrap, when true, forms the initial ring from Members directly
	// (all members are assumed to start together). When false the node
	// starts in the gather state and joins whatever ring its peers form.
	Bootstrap bool
	// Deliver receives totally-ordered messages. Called on the node's
	// runtime loop; it must not block. Required.
	Deliver func(Delivery)
	// OnView receives membership changes, each delivered before any message
	// of the new configuration. Called on the runtime loop. Optional.
	OnView func(View)
	// OnToken observes every regular token this node handles (after
	// deduplication), for instrumentation such as token-passing-time
	// measurements. Called on the runtime loop. Optional.
	OnToken func(Token)
	// Mode selects agreed (default) or safe delivery.
	Mode DeliverMode
	// Quorum is the minimum component size that counts as primary.
	// Default: a strict majority of the initial Members.
	Quorum int

	// Protocol timeouts; zero values take the defaults above.
	TokenLossTimeout    time.Duration
	TokenRetransTimeout time.Duration
	JoinTimeout         time.Duration
	CommitTimeout       time.Duration
	// AnnounceInterval is how often a ring's representative broadcasts a
	// ring beacon, used to detect remergeable foreign rings after a
	// partition heals.
	AnnounceInterval time.Duration
	// MaxMessagesPerToken bounds broadcasts per token visit (flow control).
	MaxMessagesPerToken int
	// Obs receives token-circulation and safe-delivery trace events and
	// registers this node's counters. A nil recorder disables instrumentation
	// at no cost. Optional.
	Obs *obs.Recorder
}

// Validate checks cfg and fills defaults, returning the effective
// configuration. Invalid settings (missing required fields, negative
// timeouts) are reported as errors instead of silently misbehaving.
func (c Config) Validate() (Config, error) {
	if c.Runtime == nil {
		return c, errors.New("totem: Config.Runtime is required")
	}
	if c.Transport == nil {
		return c, errors.New("totem: Config.Transport is required")
	}
	if c.Deliver == nil {
		return c, errors.New("totem: Config.Deliver is required")
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"TokenLossTimeout", c.TokenLossTimeout},
		{"TokenRetransTimeout", c.TokenRetransTimeout},
		{"JoinTimeout", c.JoinTimeout},
		{"CommitTimeout", c.CommitTimeout},
		{"AnnounceInterval", c.AnnounceInterval},
	} {
		if d.v < 0 {
			return c, fmt.Errorf("totem: Config.%s must not be negative (got %v)", d.name, d.v)
		}
	}
	if c.MaxMessagesPerToken < 0 {
		return c, fmt.Errorf("totem: Config.MaxMessagesPerToken must not be negative (got %d)", c.MaxMessagesPerToken)
	}
	if c.Quorum < 0 {
		return c, fmt.Errorf("totem: Config.Quorum must not be negative (got %d)", c.Quorum)
	}
	c.TokenLossTimeout = defaultDuration(c.TokenLossTimeout, defaultTokenLoss)
	c.TokenRetransTimeout = defaultDuration(c.TokenRetransTimeout, defaultTokenRetrans)
	c.JoinTimeout = defaultDuration(c.JoinTimeout, defaultJoinTimeout)
	c.CommitTimeout = defaultDuration(c.CommitTimeout, defaultCommitTimeout)
	c.AnnounceInterval = defaultDuration(c.AnnounceInterval, defaultAnnounce)
	if c.MaxMessagesPerToken == 0 {
		c.MaxMessagesPerToken = defaultMaxPerToken
	}
	return c, nil
}

type nodeState int

const (
	stateIdle nodeState = iota
	stateOperational
	stateGather
	stateCommit
	stateRecover
	stateStopped
)

func (s nodeState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateOperational:
		return "operational"
	case stateGather:
		return "gather"
	case stateCommit:
		return "commit"
	case stateRecover:
		return "recover"
	case stateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Node is one processor running the Totem single-ring protocol. All state is
// confined to the configured Runtime loop; public methods are safe to call
// from any goroutine (they post to the loop), and accessor methods document
// when they must run on the loop.
type Node struct {
	cfg Config
	rt  sim.Runtime
	tr  transport.Transport
	me  transport.NodeID

	state   nodeState
	ring    RingID
	members []transport.NodeID
	primary bool
	quorum  int

	// Operational ring state.
	receivedKeys map[uint64]bool // logical identities seen, for duplicate suppression
	lastTokenSeq uint64
	highSeq      uint64
	myAru        uint64
	received     map[uint64]*DataMsg
	delivered    uint64
	prevTokenAru uint64
	safePoint    uint64
	sendq        []*queuedMsg
	recq         []*DataMsg
	retained     []byte // encoded last-forwarded token, for retransmission

	retransTimer   sim.Canceler
	lossTimer      sim.Canceler
	consensusTimer sim.Canceler
	commitTimer    sim.Canceler
	announceTimer  sim.Canceler
	// timerEpoch is bumped by cancelAllTimers; a timer callback armed under
	// an older epoch is dropped when it fires. This closes the real-time
	// runtime's race where a timer fires concurrently with Cancel and its
	// already-posted callback outlives the cancellation (sim.Loop cannot
	// recall a fired post), so no protocol timer can act — or re-arm —
	// after Stop.
	timerEpoch uint64

	totalOrder uint64

	// Gather state.
	procSet    map[transport.NodeID]bool
	failSet    map[transport.NodeID]bool
	joins      map[transport.NodeID]*JoinMsg
	maxRingSeq uint64

	// Old-ring snapshot carried through membership for recovery.
	oldRing      RingID
	oldDelivered uint64
	oldHold      map[uint64]*DataMsg

	// Recovery state.
	recOld      map[uint64]*DataMsg
	endMarkers  map[transport.NodeID]bool
	heldRegular []*DataMsg

	stats Stats
	obs   *obs.Recorder
	// safeWaitSeq is the message sequence currently blocked on the safe
	// point, for the safe_wait/safe_delivered trace pair.
	safeWaitSeq uint64
}

// New creates a node. It does not start protocol activity; call Start.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	me := cfg.Transport.LocalID()
	members := sortedNodes(cfg.Members)
	if !containsNode(members, me) {
		members = sortedNodes(append(members, me))
	}
	quorum := cfg.Quorum
	if quorum <= 0 {
		quorum = len(members)/2 + 1
	}
	n := &Node{
		cfg:          cfg,
		rt:           cfg.Runtime,
		tr:           cfg.Transport,
		me:           me,
		members:      members,
		quorum:       quorum,
		received:     make(map[uint64]*DataMsg),
		receivedKeys: make(map[uint64]bool),
		oldHold:      make(map[uint64]*DataMsg),
		obs:          cfg.Obs,
	}
	cfg.Obs.Register(n)
	cfg.Transport.SetReceiver(n.receive)
	return n, nil
}

// Start begins protocol activity.
func (n *Node) Start() {
	n.rt.Post(func() {
		if n.state != stateIdle {
			return
		}
		if n.cfg.Bootstrap {
			n.ring = RingID{Seq: 1, Rep: n.members[0]}
			n.maxRingSeq = 1
			n.state = stateOperational
			n.primary = len(n.members) >= n.quorum
			n.emitView()
			if n.me == n.ring.Rep {
				tk := &Token{Ring: n.ring, TokenSeq: 1, AruID: aruNone}
				n.rt.Post(func() { n.onToken(tk) })
				n.armAnnounceTimer()
			} else {
				n.armLossTimer()
			}
			return
		}
		// Joining: provoke a membership round with the known peers.
		n.startGather(nil)
	})
}

// Stop halts the node: timers are cancelled and all further traffic is
// ignored. Stop does not close the transport.
func (n *Node) Stop() {
	n.rt.Post(func() {
		n.state = stateStopped
		n.cancelAllTimers()
	})
}

// queuedMsg is a pending application broadcast awaiting a token visit.
type queuedMsg struct {
	payload   []byte
	safe      bool
	dupKey    uint64
	cancelled bool
	sent      bool
}

// Broadcast queues payload for totally-ordered delivery to the group. The
// payload is copied. Safe to call from any goroutine.
func (n *Node) Broadcast(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.rt.Post(func() {
		if n.state == stateStopped {
			return
		}
		n.sendq = append(n.sendq, &queuedMsg{payload: cp})
	})
	return nil
}

// BroadcastCancelable queues payload like Broadcast but returns a cancel
// function that withdraws the message if it has not yet been put on the
// wire. This is the duplicate-suppression hook the replication
// infrastructure uses (§4.3 of the paper: per CCS round, every replica
// attempts to send one CCS message, yet only one reaches the network).
//
// When safe is true the message is delivered with safe semantics: only once
// the token's all-received-up-to field shows that every processor on the
// ring holds it ("if the message is delivered to any non-faulty replica, it
// will be delivered to all non-faulty replicas", §3 of the paper).
//
// A non-zero dupKey names the message's logical identity: if a message with
// the same key has already been received from another processor, the queued
// message is withdrawn automatically at the token visit — the paper's
// infrastructure-level duplicate detection ([20], §4.3).
//
// Both BroadcastCancelable and the returned cancel function must be called
// on the node's runtime loop; cancel reports whether the message is
// guaranteed not to reach the wire (idempotently).
func (n *Node) BroadcastCancelable(payload []byte, safe bool, dupKey uint64) func() bool {
	if n.state == stateStopped {
		return func() bool { return false }
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	q := &queuedMsg{payload: cp, safe: safe, dupKey: dupKey}
	n.sendq = append(n.sendq, q)
	return func() bool {
		if q.sent {
			return false
		}
		q.cancelled = true
		return true
	}
}

// Ring reports the current ring. Must be called on the runtime loop.
func (n *Node) Ring() RingID { return n.ring }

// Members reports the current membership. Must be called on the runtime loop.
func (n *Node) Members() []transport.NodeID {
	out := make([]transport.NodeID, len(n.members))
	copy(out, n.members)
	return out
}

// InPrimary reports whether the node's component is primary. Must be called
// on the runtime loop.
func (n *Node) InPrimary() bool { return n.primary }

// ObsNode implements obs.Source.
func (n *Node) ObsNode() uint32 { return uint32(n.me) }

// ObsSamples implements obs.Source under the canonical totem.* names.
// Loop-only.
func (n *Node) ObsSamples() []obs.Sample {
	id := uint32(n.me)
	return []obs.Sample{
		{Node: id, Name: "totem.tokens_handled", Value: n.stats.TokensHandled},
		{Node: id, Name: "totem.broadcasts", Value: n.stats.Broadcasts},
		{Node: id, Name: "totem.retransmissions", Value: n.stats.Retransmissions},
		{Node: id, Name: "totem.delivered", Value: n.stats.Delivered},
		{Node: id, Name: "totem.memberships", Value: n.stats.Memberships},
		{Node: id, Name: "totem.token_retrans", Value: n.stats.TokenRetrans},
		{Node: id, Name: "totem.token_losses", Value: n.stats.TokenLosses},
	}
}

// receive is the transport receiver: it copies the datagram and hops onto
// the runtime loop.
func (n *Node) receive(from transport.NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.rt.Post(func() { n.dispatch(from, cp) })
}

func (n *Node) dispatch(_ transport.NodeID, pkt []byte) {
	if n.state == stateStopped || len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case pktData:
		if m, err := decodeData(pkt[1:]); err == nil {
			n.onData(m)
		}
	case pktToken:
		if tk, err := decodeToken(pkt[1:]); err == nil {
			n.onToken(tk)
		}
	case pktJoin:
		if j, err := decodeJoin(pkt[1:]); err == nil {
			n.onJoin(j)
		}
	case pktCommit:
		if ct, err := decodeCommit(pkt[1:]); err == nil {
			n.onCommit(ct)
		}
	case pktAnnounce:
		if a, err := decodeAnnounce(pkt[1:]); err == nil {
			n.onAnnounce(a)
		}
	}
}

// onToken handles a regular token.
func (n *Node) onToken(tk *Token) {
	if tk.Ring != n.ring {
		// A token from a newer ring means we missed a membership change
		// while operational; rejoin. In gather/commit the pending commit
		// token (or its retransmission) will move us forward, so drop it.
		if n.state == stateOperational && n.ring.Less(tk.Ring) {
			n.startGather(nil)
		}
		return
	}
	if n.state != stateOperational && n.state != stateRecover {
		return
	}
	if tk.TokenSeq <= n.lastTokenSeq {
		return // duplicate or stale token
	}
	n.lastTokenSeq = tk.TokenSeq
	n.stats.TokensHandled++
	n.obs.Trace(obs.ScopeTotem, obs.EvTokenRecv, 0, tk.TokenSeq, int64(tk.Aru), "")
	if n.cfg.OnToken != nil {
		n.cfg.OnToken(*tk)
	}
	// Track the safe point from the INCOMING aru, before this node's own
	// updates: an arriving aru of s proves that every processor that
	// handled the token since message s was broadcast had received it — a
	// full rotation of evidence. (Using the outgoing aru would wrongly
	// count this node's own still-in-flight broadcasts as safe.)
	if tk.Aru > n.safePoint {
		n.safePoint = tk.Aru
	}
	n.cancelTimer(&n.retransTimer)
	n.cancelTimer(&n.lossTimer)

	if tk.Seq > n.highSeq {
		n.highSeq = tk.Seq
	}

	// 1. Retransmit requested messages this node holds.
	var rtr []uint64
	for _, s := range tk.Rtr {
		if m, ok := n.received[s]; ok {
			n.sendData(m)
			n.stats.Retransmissions++
		} else if s <= tk.Seq {
			rtr = append(rtr, s)
		}
	}

	// 2. Broadcast pending messages, recovery traffic first.
	budget := n.cfg.MaxMessagesPerToken
	var fcc uint32
	for budget > 0 && len(n.recq) > 0 {
		m := n.recq[0]
		n.recq = n.recq[1:]
		tk.Seq++
		m.Ring, m.Seq, m.Sender = n.ring, tk.Seq, n.me
		n.storeReceived(m)
		n.sendData(m)
		budget--
		fcc++
	}
	for budget > 0 && len(n.sendq) > 0 && n.state == stateOperational {
		q := n.sendq[0]
		n.sendq = n.sendq[1:]
		if q.cancelled {
			continue
		}
		if q.dupKey != 0 && n.receivedKeys[q.dupKey] {
			// Duplicate detection: a message with the same logical identity
			// has already been received from another processor (§4.3).
			q.cancelled = true
			continue
		}
		tk.Seq++
		m := &DataMsg{Ring: n.ring, Seq: tk.Seq, Sender: n.me,
			Kind: KindRegular, Safe: q.safe, DupKey: q.dupKey, Payload: q.payload}
		q.sent = true
		n.storeReceived(m)
		n.sendData(m)
		budget--
		fcc++
	}
	if tk.Seq > n.highSeq {
		n.highSeq = tk.Seq
	}

	// 3. Update the token's all-received-up-to field.
	n.updateAru()
	if n.myAru < tk.Aru || tk.AruID == n.me || tk.AruID == aruNone {
		tk.Aru = n.myAru
		if tk.Aru >= tk.Seq {
			tk.AruID = aruNone
		} else {
			tk.AruID = n.me
		}
	}

	// 4. Request retransmission of messages this node is missing.
	for s := n.myAru + 1; s <= tk.Seq; s++ {
		if _, ok := n.received[s]; !ok {
			rtr = append(rtr, s)
		}
	}
	tk.Rtr = dedupSorted(rtr)
	tk.Fcc = fcc

	n.prevTokenAru = tk.Aru

	// 5. Deliver.
	n.tryDeliver()

	// 6. Forward the token.
	tk.TokenSeq++
	n.forwardToken(tk)
}

// onData handles a broadcast data message.
func (n *Node) onData(m *DataMsg) {
	if m.Ring != n.ring {
		if n.state == stateOperational && n.ring.Less(m.Ring) {
			n.startGather(nil)
		}
		return
	}
	switch n.state {
	case stateOperational, stateRecover:
		if m.Seq > n.highSeq {
			n.highSeq = m.Seq
		}
		n.storeReceived(m)
		n.tryDeliver()
	case stateGather, stateCommit:
		// Still the old ring: retain for recovery.
		n.storeReceived(m)
	}
}

func (n *Node) storeReceived(m *DataMsg) {
	if m.Seq == 0 {
		return
	}
	if _, ok := n.received[m.Seq]; !ok {
		n.received[m.Seq] = m
	}
	if m.DupKey != 0 {
		// Bound the table; losing old entries only costs a redundant send.
		if len(n.receivedKeys) > 1<<17 {
			n.receivedKeys = make(map[uint64]bool)
		}
		n.receivedKeys[m.DupKey] = true
	}
}

func (n *Node) updateAru() {
	for {
		if _, ok := n.received[n.myAru+1]; !ok {
			return
		}
		n.myAru++
	}
}

// tryDeliver delivers received messages in sequence order. Agreed messages
// deliver as soon as the prefix is complete; safe messages (per-message flag
// or node-wide Safe mode) additionally wait for the safe point, holding
// later messages so that the total order is preserved.
func (n *Node) tryDeliver() {
	n.updateAru()
	for n.delivered < n.myAru {
		s := n.delivered + 1
		m, ok := n.received[s]
		if !ok {
			return
		}
		safe := m.Safe || n.cfg.Mode == Safe
		if safe && s > n.safePoint {
			if n.safeWaitSeq != s {
				// First time this sequence blocks on the safe point: open the
				// safe-delivery wait sub-span (the paper's ≈300µs extra token
				// circulation, §4.3).
				n.safeWaitSeq = s
				n.obs.Trace(obs.ScopeTotem, obs.EvSafeWait, 0, s, int64(n.safePoint), "")
			}
			return
		}
		if safe && n.safeWaitSeq == s {
			n.obs.Trace(obs.ScopeTotem, obs.EvSafeDelivered, 0, s, int64(n.safePoint), "")
		}
		n.delivered = s
		n.handleDelivered(m)
	}
}

// handleDelivered routes one totally-ordered message by kind and state.
func (n *Node) handleDelivered(m *DataMsg) {
	switch n.state {
	case stateOperational:
		if m.Kind == KindRegular {
			n.deliverToApp(m.Ring, m.Seq, m.Sender, m.Payload)
		}
	case stateRecover:
		switch m.Kind {
		case KindRecovery:
			if m.OldRing == n.oldRing && m.OldSeq > n.oldDelivered {
				if _, ok := n.recOld[m.OldSeq]; !ok {
					n.recOld[m.OldSeq] = m
				}
			}
		case KindEndRecovery:
			n.endMarkers[m.Sender] = true
			if len(n.endMarkers) == len(n.members) {
				n.completeRecovery()
			}
		case KindRegular:
			n.heldRegular = append(n.heldRegular, m)
		}
	}
}

func (n *Node) deliverToApp(ring RingID, seq uint64, sender transport.NodeID, payload []byte) {
	n.totalOrder++
	n.stats.Delivered++
	n.cfg.Deliver(Delivery{
		TotalOrder: n.totalOrder,
		Ring:       ring,
		Seq:        seq,
		Sender:     sender,
		Payload:    payload,
	})
}

func (n *Node) sendData(m *DataMsg) {
	n.stats.Broadcasts++
	_ = n.tr.Broadcast(encodeData(m))
}

// successor returns the next member after this node in ring order.
func (n *Node) successor() transport.NodeID {
	for _, id := range n.members {
		if id > n.me {
			return id
		}
	}
	return n.members[0]
}

func (n *Node) forwardToken(tk *Token) {
	pkt, err := encodeToken(tk)
	if err != nil {
		// An unencodable token (absurd rtr list) would wedge the ring;
		// drop rtr and carry on — retransmission requests regenerate.
		tk.Rtr = nil
		pkt, _ = encodeToken(tk)
	}
	n.retained = pkt
	succ := n.successor()
	if succ == n.me {
		// Ring of one: loop the token back through the runtime.
		n.rt.After(selfHopDelay, func() {
			if tk2, err := decodeToken(pkt[1:]); err == nil {
				n.onToken(tk2)
			}
		})
	} else {
		_ = n.tr.Send(succ, pkt)
	}
	n.armRetransTimer()
	n.armLossTimer()
}

func (n *Node) armRetransTimer() {
	n.cancelTimer(&n.retransTimer)
	n.retransTimer = n.afterGuarded(n.cfg.TokenRetransTimeout, n.retransmitToken)
}

func (n *Node) retransmitToken() {
	if n.state != stateOperational && n.state != stateRecover {
		return
	}
	if n.retained == nil {
		return
	}
	n.stats.TokenRetrans++
	succ := n.successor()
	if succ != n.me {
		_ = n.tr.Send(succ, n.retained)
	}
	n.retransTimer = n.afterGuarded(n.cfg.TokenRetransTimeout, n.retransmitToken)
}

func (n *Node) armLossTimer() {
	n.cancelTimer(&n.lossTimer)
	n.lossTimer = n.afterGuarded(n.cfg.TokenLossTimeout, func() {
		if n.state != stateOperational && n.state != stateRecover {
			return
		}
		n.stats.TokenLosses++
		n.startGather(nil)
	})
}

func (n *Node) emitView() {
	if n.cfg.OnView == nil {
		return
	}
	members := make([]transport.NodeID, len(n.members))
	copy(members, n.members)
	n.cfg.OnView(View{Ring: n.ring, Members: members, Primary: n.primary})
}

func (n *Node) cancelTimer(t *sim.Canceler) {
	if *t != nil {
		(*t).Cancel()
		*t = nil
	}
}

func (n *Node) cancelAllTimers() {
	n.timerEpoch++
	n.cancelTimer(&n.retransTimer)
	n.cancelTimer(&n.lossTimer)
	n.cancelTimer(&n.consensusTimer)
	n.cancelTimer(&n.commitTimer)
	n.cancelTimer(&n.announceTimer)
}

// afterGuarded arms a protocol timer: the callback is dropped if the node
// stopped or cancelAllTimers ran (epoch bump) between arming and firing.
// Every timer callback still checks the specific state it needs; the epoch
// guard is the structural backstop for already-fired timers whose posted
// callbacks Cancel cannot recall.
func (n *Node) afterGuarded(d time.Duration, fn func()) sim.Canceler {
	epoch := n.timerEpoch
	return n.rt.After(d, func() {
		if n.state == stateStopped || n.timerEpoch != epoch {
			return
		}
		fn()
	})
}

// armAnnounceTimer schedules the periodic ring beacon; only the
// representative of an operational ring announces.
func (n *Node) armAnnounceTimer() {
	n.cancelTimer(&n.announceTimer)
	n.announceTimer = n.afterGuarded(n.cfg.AnnounceInterval, func() {
		if n.state != stateOperational || n.me != n.ring.Rep {
			return
		}
		_ = n.tr.Broadcast(encodeAnnounce(&announceMsg{Ring: n.ring, Members: n.members}))
		n.armAnnounceTimer()
	})
}

// onAnnounce reacts to a foreign ring's beacon: an operational node that
// sees a ring ordered above its own starts a membership round to merge (the
// joins it broadcasts pull the other ring into the gather); a gathering node
// refreshes its ring-sequence knowledge so that its joins are not discarded
// as stale by operational peers.
func (n *Node) onAnnounce(a *announceMsg) {
	if a.Ring.Seq > n.maxRingSeq {
		n.maxRingSeq = a.Ring.Seq
	}
	switch n.state {
	case stateOperational:
		if n.ring.Less(a.Ring) {
			n.startGatherInclude(a.Members, nil)
		}
	case stateGather:
		// Make sure the foreign ring's members are part of our proposal,
		// then re-broadcast so they hear from us.
		changed := false
		for _, id := range a.Members {
			if !n.procSet[id] {
				n.procSet[id] = true
				changed = true
			}
		}
		n.sendJoin()
		if changed {
			n.checkConsensus()
		}
	}
}

func sortedNodes(in []transport.NodeID) []transport.NodeID {
	out := make([]transport.NodeID, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate.
	uniq := out[:0]
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			uniq = append(uniq, id)
		}
	}
	return uniq
}

func containsNode(set []transport.NodeID, id transport.NodeID) bool {
	for _, m := range set {
		if m == id {
			return true
		}
	}
	return false
}

func dedupSorted(in []uint64) []uint64 {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
