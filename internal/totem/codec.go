package totem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cts/internal/transport"
)

// Packet type tags on the wire.
const (
	pktData     = 1
	pktToken    = 2
	pktJoin     = 3
	pktCommit   = 4
	pktAnnounce = 5
)

// Codec errors.
var (
	ErrBadPacket = errors.New("totem: malformed packet")
	ErrOversize  = errors.New("totem: list too long")
)

const maxListLen = 1 << 20

// writer appends big-endian fields to a buffer.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)              { w.b = append(w.b, v) }
func (w *writer) u32(v uint32)            { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64)            { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) node(v transport.NodeID) { w.u32(uint32(v)) }
func (w *writer) ring(r RingID)           { w.u64(r.Seq); w.node(r.Rep) }

func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

func (w *writer) u64s(vs []uint64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

func (w *writer) nodes(vs []transport.NodeID) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.node(v)
	}
}

// reader consumes big-endian fields from a buffer.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrBadPacket
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) node() transport.NodeID { return transport.NodeID(r.u32()) }

func (r *reader) ring() RingID {
	return RingID{Seq: r.u64(), Rep: r.node()}
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || n > maxListLen || len(r.b) < int(n) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

func (r *reader) u64s() []uint64 {
	n := r.u32()
	if r.err != nil || n > maxListLen || len(r.b) < int(n)*8 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func (r *reader) nodes() []transport.NodeID {
	n := r.u32()
	if r.err != nil || n > maxListLen || len(r.b) < int(n)*4 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = r.node()
	}
	return out
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(r.b))
	}
	return nil
}

func encodeData(m *DataMsg) []byte {
	w := writer{b: make([]byte, 0, 64+len(m.Payload))}
	w.u8(pktData)
	w.ring(m.Ring)
	w.u64(m.Seq)
	w.node(m.Sender)
	w.u8(uint8(m.Kind))
	var flags uint8
	if m.Safe {
		flags |= 1
	}
	w.u8(flags)
	w.u64(m.DupKey)
	w.ring(m.OldRing)
	w.u64(m.OldSeq)
	w.node(m.OldSndr)
	w.bytes(m.Payload)
	return w.b
}

func decodeData(b []byte) (*DataMsg, error) {
	r := reader{b: b}
	m := &DataMsg{
		Ring:   r.ring(),
		Seq:    r.u64(),
		Sender: r.node(),
		Kind:   MsgKind(r.u8()),
	}
	m.Safe = r.u8()&1 != 0
	m.DupKey = r.u64()
	m.OldRing = r.ring()
	m.OldSeq = r.u64()
	m.OldSndr = r.node()
	m.Payload = r.bytes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("data message: %w", err)
	}
	return m, nil
}

func encodeToken(t *Token) ([]byte, error) {
	if len(t.Rtr) > maxListLen {
		return nil, fmt.Errorf("%w: %d rtr entries", ErrOversize, len(t.Rtr))
	}
	w := writer{b: make([]byte, 0, 64+8*len(t.Rtr))}
	w.u8(pktToken)
	w.ring(t.Ring)
	w.u64(t.TokenSeq)
	w.u64(t.Seq)
	w.u64(t.Aru)
	w.node(t.AruID)
	w.u64s(t.Rtr)
	w.u32(t.Fcc)
	return w.b, nil
}

func decodeToken(b []byte) (*Token, error) {
	r := reader{b: b}
	t := &Token{
		Ring:     r.ring(),
		TokenSeq: r.u64(),
		Seq:      r.u64(),
		Aru:      r.u64(),
		AruID:    r.node(),
	}
	t.Rtr = r.u64s()
	t.Fcc = r.u32()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("token: %w", err)
	}
	return t, nil
}

func encodeJoin(j *JoinMsg) []byte {
	w := writer{b: make([]byte, 0, 32+4*(len(j.ProcSet)+len(j.FailSet)))}
	w.u8(pktJoin)
	w.node(j.Sender)
	w.nodes(j.ProcSet)
	w.nodes(j.FailSet)
	w.u64(j.MaxRingSeq)
	return w.b
}

func decodeJoin(b []byte) (*JoinMsg, error) {
	r := reader{b: b}
	j := &JoinMsg{Sender: r.node()}
	j.ProcSet = r.nodes()
	j.FailSet = r.nodes()
	j.MaxRingSeq = r.u64()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("join message: %w", err)
	}
	return j, nil
}

func encodeCommit(ct *CommitToken) []byte {
	w := writer{b: make([]byte, 0, 64)}
	w.u8(pktCommit)
	w.ring(ct.Ring)
	w.nodes(ct.Members)
	w.u32(uint32(len(ct.Infos)))
	for i := range ct.Infos {
		in := &ct.Infos[i]
		w.node(in.ID)
		w.ring(in.OldRing)
		w.u64(in.Aru)
		w.u64(in.HighSeq)
		w.u64s(in.Received)
	}
	return w.b
}

func decodeCommit(b []byte) (*CommitToken, error) {
	r := reader{b: b}
	ct := &CommitToken{Ring: r.ring()}
	ct.Members = r.nodes()
	n := r.u32()
	if r.err == nil && n > maxListLen {
		r.fail()
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		in := MemberInfo{ID: r.node(), OldRing: r.ring(), Aru: r.u64(), HighSeq: r.u64()}
		in.Received = r.u64s()
		ct.Infos = append(ct.Infos, in)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("commit token: %w", err)
	}
	return ct, nil
}

func encodeAnnounce(a *announceMsg) []byte {
	w := writer{b: make([]byte, 0, 24+4*len(a.Members))}
	w.u8(pktAnnounce)
	w.ring(a.Ring)
	w.nodes(a.Members)
	return w.b
}

func decodeAnnounce(b []byte) (*announceMsg, error) {
	r := reader{b: b}
	a := &announceMsg{Ring: r.ring()}
	a.Members = r.nodes()
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("announce: %w", err)
	}
	return a, nil
}
