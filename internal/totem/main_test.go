package totem

import (
	"testing"

	"cts/internal/testutil"
)

// TestMain fails the package if any test leaves goroutines running; the
// totem loop must always be stopped by the test that started it.
func TestMain(m *testing.M) { testutil.Main(m) }
