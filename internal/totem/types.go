// Package totem implements the Totem single-ring ordering and membership
// protocol (Amir, Moser, Melliar-Smith, Agarwal, Ciarfella, ACM TOCS 1995),
// the group-communication substrate of the paper's consistent time service.
//
// Processors are arranged on a logical ring in NodeID order. A token rotates
// around the ring; only the token holder broadcasts messages, stamping each
// with the next global sequence number, which yields reliable totally-ordered
// delivery. The token carries an all-received-up-to (aru) field and a
// retransmission-request list, giving loss recovery. Token loss or a foreign
// join message triggers the membership protocol (gather → commit → recover):
// processors reach consensus on a new ring, exchange the messages of their
// old rings on the new ring, deliver them in the old order, and install the
// new configuration. A primary-component rule masks network partitions: only
// the component holding a quorum keeps delivering new messages (§2 of the
// paper: "only the primary component survives a network partition").
package totem

import (
	"fmt"
	"time"

	"cts/internal/transport"
)

// RingID identifies one ring configuration: a monotonically increasing
// sequence number plus the representative (lowest-id member) that formed it.
type RingID struct {
	Seq uint64
	Rep transport.NodeID
}

// String implements fmt.Stringer.
func (r RingID) String() string { return fmt.Sprintf("ring(%d,%v)", r.Seq, r.Rep) }

// Less orders ring identifiers.
func (r RingID) Less(o RingID) bool {
	if r.Seq != o.Seq {
		return r.Seq < o.Seq
	}
	return r.Rep < o.Rep
}

// MsgKind distinguishes the payload classes carried by data messages.
type MsgKind uint8

// Data message kinds.
const (
	KindRegular     MsgKind = iota + 1 // application payload
	KindRecovery                       // rebroadcast of an old-ring message during recovery
	KindEndRecovery                    // sender has rebroadcast all its old-ring messages
)

// DataMsg is a broadcast message stamped with a ring-global sequence number.
// Recovery rebroadcasts additionally carry the old ring, old sequence number
// and original sender of the message being recovered.
type DataMsg struct {
	Ring    RingID
	Seq     uint64
	Sender  transport.NodeID
	Kind    MsgKind
	Safe    bool   // deliver only once every processor on the ring holds it
	DupKey  uint64 // logical message identity for duplicate suppression (0 = none)
	OldRing RingID // KindRecovery only
	OldSeq  uint64 // KindRecovery only
	OldSndr transport.NodeID
	Payload []byte
}

// aruNone marks a token whose aru has not been lowered by any processor on
// the current rotation.
const aruNone = transport.NodeID(^uint32(0))

// Token is the regular token circulating on the ring.
type Token struct {
	Ring     RingID
	TokenSeq uint64           // increments each hop; receivers discard stale tokens
	Seq      uint64           // highest message sequence number broadcast on the ring
	Aru      uint64           // all-received-up-to
	AruID    transport.NodeID // processor that last lowered Aru, or aruNone
	Rtr      []uint64         // retransmission requests
	Fcc      uint32           // messages broadcast during the last rotation (flow control)
}

// JoinMsg is broadcast during the gather phase of the membership protocol.
type JoinMsg struct {
	Sender     transport.NodeID
	ProcSet    []transport.NodeID // processors the sender proposes for the new ring
	FailSet    []transport.NodeID // processors the sender has given up on
	MaxRingSeq uint64             // highest ring sequence number the sender has seen
}

// MemberInfo is one member's contribution to the commit token: a summary of
// what it holds from its old ring, enough for the others to compute the
// recoverable message set.
type MemberInfo struct {
	ID       transport.NodeID
	OldRing  RingID
	Aru      uint64   // contiguous prefix of old-ring messages held
	HighSeq  uint64   // highest old-ring sequence number seen
	Received []uint64 // old-ring sequence numbers held in (Aru, HighSeq]
}

// CommitToken is circulated (twice) around the prospective new ring: the
// first rotation collects every member's MemberInfo, the second distributes
// the complete set so that all members enter recovery with the same data.
type CommitToken struct {
	Ring    RingID
	Members []transport.NodeID
	Infos   []MemberInfo
}

// complete reports whether every member has contributed its info.
func (ct *CommitToken) complete() bool { return len(ct.Infos) == len(ct.Members) }

// Delivery is a message handed to the application in total order.
type Delivery struct {
	// TotalOrder increases by exactly 1 for every delivery at this node,
	// across ring changes; together with the protocol's guarantees, equal
	// TotalOrder values at different nodes hold equal messages.
	TotalOrder uint64
	Ring       RingID
	Seq        uint64 // sequence number on Ring (old ring for recovered messages)
	Sender     transport.NodeID
	Payload    []byte
}

// View is a membership change handed to the application before any message
// of the new configuration is delivered.
type View struct {
	Ring    RingID
	Members []transport.NodeID
	Primary bool // whether this component satisfies the quorum rule
}

// DeliverMode selects the delivery guarantee.
type DeliverMode int

// Delivery guarantees. Agreed delivers a message once all messages with
// lower sequence numbers have been received (total order); Safe additionally
// waits until the token's all-received-up-to field shows that every
// processor on the ring holds the message. (Individual messages may also
// request safe delivery via BroadcastCancelable regardless of the node
// mode; total order is preserved — a held safe message blocks subsequent
// deliveries.)
const (
	Agreed DeliverMode = iota
	Safe
)

// Stats are cumulative protocol counters, for experiments and debugging.
type Stats struct {
	TokensHandled   uint64
	Broadcasts      uint64 // data messages this node put on the wire (incl. retransmissions)
	Retransmissions uint64
	Delivered       uint64
	Memberships     uint64 // rings this node has installed
	TokenRetrans    uint64 // token retransmissions by this node
	TokenLosses     uint64 // token-loss timeouts at this node
}

func defaultDuration(v, def time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return def
}

// announceMsg is broadcast periodically by a ring's representative so that
// rings separated by a healed partition (or processors stuck in gather with
// stale ring knowledge) discover each other. Idle rings produce no other
// network traffic — the token of a singleton ring never touches the wire —
// so remerge needs an explicit beacon.
type announceMsg struct {
	Ring    RingID
	Members []transport.NodeID
}
