// Package baseline implements the comparison approaches the paper argues
// against (§1):
//
//   - PrimaryBackup: the clock-determinism scheme of Mullender (ed.) and of
//     hypervisor-based fault tolerance (Bressoud & Schneider): the primary
//     returns its raw physical hardware clock value and conveys it to the
//     backups, which use the conveyed value instead of their own clocks.
//     Individual readings are consistent, but no offset is maintained, so
//     when the primary fails the new primary answers from its own physical
//     clock — the reading can roll back in time or jump far forward,
//     exactly the failure modes the consistent time service eliminates.
//
//   - LocalClock: no coordination at all; each replica reads its own
//     physical clock. Replicas processing the same request at different
//     real times (or with different clocks) return different values —
//     the replica non-determinism of Figure 1.
package baseline

import (
	"encoding/binary"
	"errors"
	"sort"
	"time"

	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/replication"
	"cts/internal/transport"
	"cts/internal/wire"
)

// Report describes one completed baseline clock read at this replica.
type Report struct {
	ThreadID uint64
	Round    uint64
	Value    time.Duration
	Sender   transport.NodeID
	FromOwn  bool // this replica answered from its own physical clock
}

// PrimaryBackup is the primary/backup clock determinism baseline.
type PrimaryBackup struct {
	mgr   *replication.Manager
	clock hwclock.Clock

	handlers map[uint64]*pbHandler
	onRead   func(Report)

	// Sent counts clock messages this replica put on the wire.
	Sent uint64
	// FromBuffer counts reads satisfied by a conveyed value.
	FromBuffer uint64
}

type pbHandler struct {
	round   uint64
	buffer  map[uint64]pbMsg
	waiting *pbWaiter
}

type pbMsg struct {
	value  time.Duration
	sender transport.NodeID
}

type pbWaiter struct {
	round    uint64
	complete func(any)
}

// NewPrimaryBackup creates the baseline service and installs its CCS-message
// hook on the manager (it reuses the CCS message type as its conveyance
// channel; a deployment would never run both services on one group).
func NewPrimaryBackup(mgr *replication.Manager, clock hwclock.Clock,
	onRead func(Report)) (*PrimaryBackup, error) {
	if mgr == nil || clock == nil {
		return nil, errors.New("baseline: manager and clock are required")
	}
	s := &PrimaryBackup{
		mgr:      mgr,
		clock:    clock,
		handlers: make(map[uint64]*pbHandler),
		onRead:   onRead,
	}
	mgr.Runtime().Post(func() {
		mgr.SetCCSHandler(s.onMsg)
		mgr.SetCheckpointHooks(s.capture, s.restore)
	})
	return s, nil
}

// capture contributes the per-thread round counters to a checkpoint so that
// a backup's replay after failover lines its reads up with the conveyed
// values it buffered. (The baseline conveys values like [9] and [3]; what
// it lacks is the offset — fresh reads after failover come from the new
// primary's raw clock.)
func (s *PrimaryBackup) capture(done func(extra []byte, groupClock int64)) {
	tids := make([]uint64, 0, len(s.handlers))
	for tid := range s.handlers {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	buf := make([]byte, 4+16*len(tids))
	binary.BigEndian.PutUint32(buf, uint32(len(tids)))
	off := 4
	for _, tid := range tids {
		binary.BigEndian.PutUint64(buf[off:], tid)
		binary.BigEndian.PutUint64(buf[off+8:], s.handlers[tid].round)
		off += 16
	}
	done(buf, 0)
}

// restore aligns round counters with an applied checkpoint and prunes
// conveyed values the counters have passed.
func (s *PrimaryBackup) restore(extra []byte) {
	if len(extra) < 4 {
		return
	}
	n := binary.BigEndian.Uint32(extra)
	if len(extra) != 4+16*int(n) {
		return
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		tid := binary.BigEndian.Uint64(extra[off:])
		round := binary.BigEndian.Uint64(extra[off+8:])
		off += 16
		h := s.handlers[tid]
		if h == nil {
			h = &pbHandler{buffer: make(map[uint64]pbMsg)}
			s.handlers[tid] = h
		}
		if round > h.round {
			h.round = round
		}
		for r := range h.buffer {
			if r <= h.round {
				delete(h.buffer, r)
			}
		}
	}
}

// Gettimeofday returns the primary's physical clock value for this round.
// At the primary it reads the local clock and conveys the value; at backups
// (semi-active execution) it blocks until the conveyed value arrives. After
// a failover the new primary answers from its own clock — with no offset to
// bridge the two clocks, roll-back and fast-forward are possible.
func (s *PrimaryBackup) Gettimeofday(ctx *replication.Ctx) time.Duration {
	v := ctx.Call(func(complete func(any)) {
		s.begin(ctx.ThreadID(), complete)
	})
	d, _ := v.(time.Duration)
	return d
}

func (s *PrimaryBackup) begin(threadID uint64, complete func(any)) {
	h := s.handlers[threadID]
	if h == nil {
		h = &pbHandler{buffer: make(map[uint64]pbMsg)}
		s.handlers[threadID] = h
	}
	h.round++
	if m, ok := h.buffer[h.round]; ok {
		delete(h.buffer, h.round)
		s.FromBuffer++
		s.finish(h.round, threadID, m, false, complete)
		return
	}
	if s.mgr.IsPrimary() {
		// The primary answers from its own physical hardware clock and
		// conveys the value to the backups.
		value := s.clock.Read()
		gid := s.mgr.Group()
		payload := wire.MarshalCCS(wire.CCSPayload{
			ThreadID: threadID, Proposed: value, Op: wire.OpGettimeofday})
		_ = s.mgr.Stack().Multicast(wire.Message{
			Header: wire.Header{Type: wire.TypeCCS, SrcGroup: gid,
				DstGroup: gid, Conn: wire.ConnID(threadID), Seq: h.round},
			Payload: payload,
		})
		s.Sent++
		s.finish(h.round, threadID, pbMsg{value: value, sender: s.mgr.LocalNode()}, true, complete)
		return
	}
	h.waiting = &pbWaiter{round: h.round, complete: complete}
}

func (s *PrimaryBackup) finish(round, threadID uint64, m pbMsg, own bool, complete func(any)) {
	if s.onRead != nil {
		s.onRead(Report{ThreadID: threadID, Round: round, Value: m.value,
			Sender: m.sender, FromOwn: own})
	}
	complete(m.value)
}

func (s *PrimaryBackup) onMsg(msg wire.Message, meta gcs.Meta) {
	p, err := wire.UnmarshalCCS(msg.Payload)
	if err != nil {
		return
	}
	h := s.handlers[p.ThreadID]
	if h == nil {
		h = &pbHandler{buffer: make(map[uint64]pbMsg)}
		s.handlers[p.ThreadID] = h
	}
	round := msg.Seq
	m := pbMsg{value: p.Proposed, sender: meta.Sender}
	if w := h.waiting; w != nil && w.round == round {
		h.waiting = nil
		if round > h.round {
			h.round = round
		}
		s.finish(round, p.ThreadID, m, false, w.complete)
		return
	}
	if round <= h.round {
		return // already answered this round (e.g. we were the primary)
	}
	if _, dup := h.buffer[round]; !dup {
		h.buffer[round] = m
	}
}

// LocalClock answers every clock read from the replica's own physical
// hardware clock, with no coordination: the "without consistent time
// service" configuration of the paper's Figure 5 measurement, and the
// source of the inconsistency of Figure 1.
type LocalClock struct {
	clock hwclock.Clock
}

// NewLocalClock wraps a physical clock.
func NewLocalClock(clock hwclock.Clock) *LocalClock {
	return &LocalClock{clock: clock}
}

// Gettimeofday reads the local physical clock. It never blocks and sends no
// messages; replica consistency is NOT guaranteed.
func (l *LocalClock) Gettimeofday(_ *replication.Ctx) time.Duration {
	return l.clock.Read()
}
