package baseline_test

import (
	"testing"
	"time"

	"cts/internal/baseline"
	"cts/internal/campaign"
	"cts/internal/experiment"
	"cts/internal/hwclock"
	"cts/internal/replication"
	"cts/internal/rpc"
	"cts/internal/transport"
)

// The baseline is exercised through the experiment cluster (client on P0,
// replicas on P1..P3), the same way the paper compares approaches.

func readOnce(t *testing.T, c *experiment.Cluster) time.Duration {
	t.Helper()
	var v time.Duration
	got := false
	c.Client.Invoke(experiment.MethodCurrentTime, nil, func(r rpc.Reply) {
		got = true
		if r.Err != nil {
			t.Errorf("invoke: %v", r.Err)
			return
		}
		var err error
		v, err = experiment.DecodeTimeval(r.Body)
		if err != nil {
			t.Error(err)
		}
	})
	if !c.RunUntil(10*time.Second, func() bool { return got }) {
		t.Fatal("read timed out")
	}
	return v
}

func TestPrimaryBackupConsistentWhilePrimaryAlive(t *testing.T) {
	c, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed: 1,
		Topology: campaign.Explicit(
			experiment.ClockSpec{Offset: 20 * time.Second},
			experiment.ClockSpec{Offset: 0},
			experiment.ClockSpec{Offset: 40 * time.Second}),
		Style: replication.Passive,
		Mode:  experiment.ModePrimaryBackup,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i := 0; i < 8; i++ {
		v := readOnce(t, c)
		// Values come from the primary's clock (+20s), monotonically.
		if v < prev {
			t.Fatalf("baseline rolled back with primary alive: %v -> %v", prev, v)
		}
		if v < 19*time.Second || v > 21*time.Second {
			t.Fatalf("value %v not from the primary's clock (+20s)", v)
		}
		prev = v
	}
	// Only the primary put messages on the wire.
	c.K.Post(func() {
		if c.PBs[1].Sent == 0 {
			t.Error("primary sent no conveyance messages")
		}
		if c.PBs[2].Sent != 0 || c.PBs[3].Sent != 0 {
			t.Error("backups sent conveyance messages")
		}
	})
	c.K.RunFor(time.Millisecond)
}

func TestPrimaryBackupRollsBackOnFailover(t *testing.T) {
	// Backup's clock 5s behind the primary's.
	c, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed: 2,
		Topology: campaign.Explicit(
			experiment.ClockSpec{Offset: 20 * time.Second},
			experiment.ClockSpec{Offset: 15 * time.Second},
			experiment.ClockSpec{Offset: 15 * time.Second}),
		Style:           replication.Passive,
		Mode:            experiment.ModePrimaryBackup,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var before time.Duration
	for i := 0; i < 5; i++ {
		before = readOnce(t, c)
	}
	c.Crash(1)
	after := readOnce(t, c)
	if after >= before {
		t.Fatalf("expected roll-back: %v -> %v", before, after)
	}
	if before-after < 4*time.Second {
		t.Fatalf("roll-back magnitude %v, want ≈5s", before-after)
	}
	// The takeover consumed conveyed values for replayed rounds.
	c.K.Post(func() {
		if c.PBs[2].FromBuffer == 0 {
			t.Error("new primary ignored conveyed values during replay")
		}
	})
	c.K.RunFor(time.Millisecond)
}

func TestPrimaryBackupFastForwardOnFailover(t *testing.T) {
	c, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed: 3,
		Topology: campaign.Explicit(
			experiment.ClockSpec{Offset: 20 * time.Second},
			experiment.ClockSpec{Offset: 27 * time.Second},
			experiment.ClockSpec{Offset: 27 * time.Second}),
		Style:           replication.Passive,
		Mode:            experiment.ModePrimaryBackup,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var before time.Duration
	for i := 0; i < 5; i++ {
		before = readOnce(t, c)
	}
	c.Crash(1)
	after := readOnce(t, c)
	if after-before < 6*time.Second {
		t.Fatalf("expected ≈7s fast-forward: %v -> %v (jump %v)",
			before, after, after-before)
	}
}

func TestLocalClockIsUncoordinated(t *testing.T) {
	clock := hwclock.NewManual(time.Hour)
	lc := baseline.NewLocalClock(clock)
	if got := lc.Gettimeofday(nil); got != time.Hour {
		t.Fatalf("LocalClock read %v, want 1h", got)
	}
	clock.Set(time.Minute) // clocks may even go backwards
	if got := lc.Gettimeofday(nil); got != time.Minute {
		t.Fatalf("LocalClock read %v, want 1m", got)
	}
}

func TestNewPrimaryBackupValidation(t *testing.T) {
	if _, err := baseline.NewPrimaryBackup(nil, hwclock.NewManual(0), nil); err == nil {
		t.Fatal("nil manager accepted")
	}
}

func TestPrimaryBackupReportsWinners(t *testing.T) {
	c, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed:     4,
		Topology: campaign.Explicit(experiment.ClockSpec{}, experiment.ClockSpec{}, experiment.ClockSpec{}),
		Style:    replication.Passive,
		Mode:     experiment.ModePrimaryBackup,
	})
	if err != nil {
		t.Fatal(err)
	}
	readOnce(t, c)
	reps := c.PBReports[1]
	if len(reps) == 0 {
		t.Fatal("no baseline reports at the primary")
	}
	if reps[0].Sender != transport.NodeID(1) || !reps[0].FromOwn {
		t.Fatalf("report = %+v, want own-clock read at P1", reps[0])
	}
}
