// Package campaign scales the discrete-event testbed from the paper's
// four-node experiments to orchestrated 100–1000-node simulation campaigns.
// A campaign is a matrix of cells — scenario × node count × seed — where a
// scenario declares the deployment topology (clock population, link
// profile, orderer) and a timed fault schedule (churn storms, partitions of
// every flavor, loss bursts, slow-clock outliers), and every cell self-gates
// on the service's core invariants: no group-clock regression, no
// staleness-bound violation, and bounded reconvergence after the last
// fault. The descriptions are plain Go structs, JSON-loadable for matrix
// files, and are also the vocabulary the experiment package uses to build
// its paper-scale clusters.
package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"cts/internal/order"
	"cts/internal/simnet"
)

// ClockSpec describes one node's physical hardware clock: its initial
// offset from true time and its rate error.
type ClockSpec struct {
	Offset   time.Duration `json:"offset_ns"`
	DriftPPM float64       `json:"drift_ppm"`
}

// ClockPlan generates the clock population of a deployment. With Explicit
// set, it is the literal per-node list (the paper's measured testbed
// clocks); otherwise per-node specs are drawn deterministically from the
// cell seed, so the same cell always deploys the same clocks regardless of
// construction order. The tail OutlierFrac of the population are slow-clock
// outliers running at OutlierDriftPPM.
type ClockPlan struct {
	// MaxOffset bounds the uniform initial offset in [-MaxOffset, MaxOffset].
	MaxOffset time.Duration `json:"max_offset_ns,omitempty"`
	// MaxDriftPPM bounds the uniform drift in [-MaxDriftPPM, MaxDriftPPM].
	MaxDriftPPM float64 `json:"max_drift_ppm,omitempty"`
	// OutlierFrac is the fraction of nodes (taken from the top of the id
	// range) whose drift is OutlierDriftPPM instead of a uniform draw.
	OutlierFrac     float64 `json:"outlier_frac,omitempty"`
	OutlierDriftPPM float64 `json:"outlier_drift_ppm,omitempty"`
	// Explicit overrides generation with a literal per-node list.
	Explicit []ClockSpec `json:"explicit,omitempty"`
}

// Spec returns the clock of node index (0-based) in a population of n.
func (p ClockPlan) Spec(seed int64, index, n int) ClockSpec {
	if len(p.Explicit) > 0 {
		return p.Explicit[index]
	}
	if outliers := int(p.OutlierFrac * float64(n)); outliers > 0 && index >= n-outliers {
		return ClockSpec{DriftPPM: p.OutlierDriftPPM}
	}
	// One generator per (seed, index): specs are order-independent, so a
	// campaign can build node 512 without drawing 511 predecessors.
	rng := rand.New(rand.NewSource(seed + int64(index+1)*0x5851F42D4C957F2D))
	var spec ClockSpec
	if p.MaxOffset > 0 {
		spec.Offset = time.Duration(rng.Int63n(int64(2*p.MaxOffset))) - p.MaxOffset
	}
	if p.MaxDriftPPM > 0 {
		spec.DriftPPM = (2*rng.Float64() - 1) * p.MaxDriftPPM
	}
	return spec
}

// DefaultClocks is the campaign default population: offsets within ±2 ms and
// drifts within ±50 ppm, the magnitude of commodity crystal oscillators.
func DefaultClocks() ClockPlan {
	return ClockPlan{MaxOffset: 2 * time.Millisecond, MaxDriftPPM: 50}
}

// LinkProfile names a latency/loss regime for the simulated fabric.
type LinkProfile string

// Link profiles.
const (
	// ProfileLAN is the paper's calibrated 100 Mb/s switched Ethernet
	// (simnet.Ethernet); also the default for an empty profile.
	ProfileLAN LinkProfile = "lan"
	// ProfileWAN is an inter-region link: WANBase propagation delay with an
	// exponential jitter tail and rare congestion spikes (simnet.WAN).
	ProfileWAN LinkProfile = "wan"
	// ProfileFixed is a constant-delay link, for calibration cells.
	ProfileFixed LinkProfile = "fixed"
)

// Links declares the fabric of a deployment.
type Links struct {
	Profile LinkProfile   `json:"profile,omitempty"`
	WANBase time.Duration `json:"wan_base_ns,omitempty"`
	Fixed   time.Duration `json:"fixed_ns,omitempty"`
	// Loss is a steady network-wide datagram loss probability.
	Loss float64 `json:"loss,omitempty"`
	// Custom overrides the profile with an arbitrary model (Go callers
	// only; not expressible in JSON).
	Custom simnet.LatencyModel `json:"-"`
}

// Model returns the latency model for the declared profile. A nil return
// selects the network default (the calibrated Ethernet model) — returning
// nil rather than simnet.Ethernet() keeps LAN deployments bit-identical
// with the pre-campaign harness, whose RNG draws flow through the same
// closure instance.
func (l Links) Model() (simnet.LatencyModel, error) {
	if l.Custom != nil {
		return l.Custom, nil
	}
	switch l.Profile {
	case "", ProfileLAN:
		return nil, nil
	case ProfileWAN:
		return simnet.WAN(l.WANBase), nil
	case ProfileFixed:
		if l.Fixed <= 0 {
			return nil, fmt.Errorf("campaign: fixed link profile needs fixed_ns > 0")
		}
		return simnet.Fixed(l.Fixed), nil
	}
	return nil, fmt.Errorf("campaign: unknown link profile %q", l.Profile)
}

// Topology is the declarative deployment description: how many nodes, their
// clocks, the fabric between them, and the ordering protocol underneath.
type Topology struct {
	// Nodes is the replica count. Zero with a non-empty Clocks.Explicit
	// means len(Explicit).
	Nodes  int       `json:"nodes,omitempty"`
	Clocks ClockPlan `json:"clocks"`
	Links  Links     `json:"links"`
	// Orderer selects the total-order protocol (empty = consumer default:
	// totem for the experiment harness, instant for campaign cells).
	Orderer order.Kind `json:"orderer,omitempty"`
}

// Explicit is the compact literal topology used by the paper experiments:
// one node per spec, LAN links, consumer-default orderer.
func Explicit(specs ...ClockSpec) Topology {
	return Topology{Clocks: ClockPlan{Explicit: specs}}
}

// NodeCount resolves the effective node count.
func (t Topology) NodeCount() int {
	if t.Nodes == 0 {
		return len(t.Clocks.Explicit)
	}
	return t.Nodes
}

// Validate checks the topology for internal consistency.
func (t Topology) Validate() error {
	n := t.NodeCount()
	if n <= 0 {
		return fmt.Errorf("campaign: topology has no nodes")
	}
	if len(t.Clocks.Explicit) > 0 && len(t.Clocks.Explicit) != n {
		return fmt.Errorf("campaign: %d explicit clocks for %d nodes", len(t.Clocks.Explicit), n)
	}
	if f := t.Clocks.OutlierFrac; f < 0 || f > 1 {
		return fmt.Errorf("campaign: outlier_frac %v outside [0,1]", f)
	}
	if _, err := t.Links.Model(); err != nil {
		return err
	}
	return nil
}
