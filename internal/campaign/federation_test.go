package campaign

import (
	"testing"
	"time"
)

func TestFedSpecValidate(t *testing.T) {
	good := FedSpec{Name: "x", Groups: 2, NodesPerGroup: 2, Duration: time.Second,
		Gates: FedGates{MaxSeamSkew: time.Millisecond, ReconvergeWithin: time.Second}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got := good.initialSlack(); got != good.groupSkew()+6*time.Millisecond {
		t.Fatalf("default initial slack = %v", got)
	}
	cases := []func(*FedSpec){
		func(s *FedSpec) { s.Name = "" },
		func(s *FedSpec) { s.Groups = 1 },
		func(s *FedSpec) { s.NodesPerGroup = 1 },
		func(s *FedSpec) { s.Duration = 0 },
		func(s *FedSpec) { s.Gates.MaxSeamSkew = 0 },
		func(s *FedSpec) { s.SeverFor = time.Second },                                                // no SeverAt
		func(s *FedSpec) { s.SeverAt = 900 * time.Millisecond; s.SeverFor = 100 * time.Millisecond }, // no heal room
	}
	for i, mut := range cases {
		bad := good
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted: %+v", i, bad)
		}
	}
}

// TestRunFederatedTwoGroups runs the smallest federated cell end to end: two
// groups whose clock planes start 2 ms apart must converge under the seam
// gate with zero cross-group staleness violations — the migrating-client
// floor (keyed by group AND node) holds across the seam.
func TestRunFederatedTwoGroups(t *testing.T) {
	spec, ok := FederationSpecByName("fed-2-line")
	if !ok {
		t.Fatal("fed-2-line missing from builtin federation specs")
	}
	res, err := RunFederated(spec, 2003)
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	if !res.Pass {
		t.Fatalf("federated cell failed its gates: %v\nmetrics: %+v", res.Failures, res.Metrics)
	}
	if res.Metrics.Nudges == 0 {
		t.Fatal("no nudges: the lagging group never moved toward its neighbor")
	}
	if res.Metrics.SummariesRecv == 0 {
		t.Fatal("no summaries received")
	}
}

// TestRunFederatedSeverHeal cuts every inter-group edge mid-run: the seams
// must stay honest throughout (bounds grow instead of lying) and reconverge
// after the heal.
func TestRunFederatedSeverHeal(t *testing.T) {
	spec, ok := FederationSpecByName("fed-partition")
	if !ok {
		t.Fatal("fed-partition missing from builtin federation specs")
	}
	res, err := RunFederated(spec, 2003)
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	if !res.Pass {
		t.Fatalf("sever/heal cell failed its gates: %v\nmetrics: %+v", res.Failures, res.Metrics)
	}
	if res.Metrics.FabricDropped == 0 {
		t.Fatal("sever window dropped no frames: the partition never took effect")
	}
}

func TestRunFederatedDeterministic(t *testing.T) {
	spec := FedSpec{Name: "det", Groups: 2, NodesPerGroup: 2,
		Duration: 400 * time.Millisecond,
		Gates:    FedGates{MaxSeamSkew: 4 * time.Millisecond, ReconvergeWithin: 400 * time.Millisecond}}
	a, err := RunFederated(spec, 7)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunFederated(spec, 7)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("same spec and seed diverged:\nA: %+v\nB: %+v", a.Metrics, b.Metrics)
	}
}
