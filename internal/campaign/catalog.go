package campaign

import (
	"time"

	"cts/internal/order"
)

// Builtin returns the stock scenario catalog. Instant-orderer scenarios
// (churn-storm, slow-clocks) scale to 1000 nodes; wire-orderer scenarios
// model real network weather and cap their node counts (MaxNodes with an
// explicit clamp), since a message-passing orderer at 1000 nodes is not what
// those cells measure. Axis counts under the cap run as requested; counts
// above it are clamped and the requested size is recorded in the cell, so
// the reduced coverage is visible in the campaign artifacts rather than
// silently pinned.
func Builtin() []Scenario {
	return []Scenario{
		{
			Name:        "churn-storm",
			Description: "waves of crash/recovery churn under the instant orderer; gates bounded reconvergence after the last wave",
			Orderer:     order.KindInstant,
			Clocks:      DefaultClocks(),
			Duration:    2 * time.Second,
			Faults: []FaultEvent{
				{Kind: FaultChurn, At: 300 * time.Millisecond, For: 900 * time.Millisecond, Count: 8},
			},
			Gates: Gates{ReconvergeWithin: 400 * time.Millisecond},
		},
		{
			Name:        "slow-clocks",
			Description: "5% of the population drifts at +400 ppm; gates honest staleness bounds with no faults at all",
			Orderer:     order.KindInstant,
			Clocks: ClockPlan{
				MaxOffset:       2 * time.Millisecond,
				MaxDriftPPM:     50,
				OutlierFrac:     0.05,
				OutlierDriftPPM: 400,
			},
			Duration: 1500 * time.Millisecond,
			Gates:    Gates{ReconvergeWithin: 200 * time.Millisecond},
		},
		{
			Name:        "partition-heal",
			Description: "a 30% minority island partitions away and re-merges; the majority keeps serving throughout",
			Orderer:     order.KindSeq,
			Clocks:      DefaultClocks(),
			Duration:    1500 * time.Millisecond,
			Faults: []FaultEvent{
				{Kind: FaultPartition, At: 300 * time.Millisecond, For: 300 * time.Millisecond, Fraction: 0.3},
			},
			Gates:      Gates{ReconvergeWithin: 600 * time.Millisecond},
			MaxNodes:   100,
			ClampNodes: true,
			MeanDelay:  5 * time.Millisecond,
		},
		{
			Name:        "asym-partition",
			Description: "one-way silence toward 20% of the nodes: they hear nobody's datagrams arriving but still transmit",
			Orderer:     order.KindSeq,
			Clocks:      DefaultClocks(),
			Duration:    1500 * time.Millisecond,
			Faults: []FaultEvent{
				{Kind: FaultAsymmetric, At: 300 * time.Millisecond, For: 250 * time.Millisecond, Fraction: 0.2},
			},
			Gates:      Gates{ReconvergeWithin: 700 * time.Millisecond},
			MaxNodes:   100,
			ClampNodes: true,
			MeanDelay:  5 * time.Millisecond,
		},
		{
			Name:        "partial-partition",
			Description: "two islands lose sight of each other while third parties bridge both; no component ever loses quorum",
			Orderer:     order.KindSeq,
			Clocks:      DefaultClocks(),
			Duration:    1500 * time.Millisecond,
			Faults: []FaultEvent{
				{Kind: FaultPartial, At: 300 * time.Millisecond, For: 300 * time.Millisecond, Fraction: 0.15},
			},
			Gates:      Gates{ReconvergeWithin: 600 * time.Millisecond},
			MaxNodes:   100,
			ClampNodes: true,
			MeanDelay:  5 * time.Millisecond,
		},
		{
			Name:         "wan-bursts",
			Description:  "20 ms WAN links with correlated loss bursts; orderer timers stretched to match the fabric",
			Orderer:      order.KindSeq,
			Links:        Links{Profile: ProfileWAN, WANBase: 20 * time.Millisecond},
			Clocks:       DefaultClocks(),
			Duration:     20 * time.Second,
			RefreshEvery: 250 * time.Millisecond,
			Faults: []FaultEvent{
				{Kind: FaultLossBursts, At: 5 * time.Second, Count: 3,
					For: 300 * time.Millisecond, Gap: time.Second, Loss: 0.6},
			},
			Gates:      Gates{ReconvergeWithin: 8 * time.Second},
			MaxNodes:   50,
			ClampNodes: true,
			// 20 ms one-way plus a couple of resend cycles when a burst eats
			// the first delivery.
			MeanDelay: 60 * time.Millisecond,
			Seq: order.SeqTuning{
				HeartbeatInterval: 100 * time.Millisecond,
				LeaderTimeout:     time.Second,
				// Resend aggressively: every missed sequenced message adds
				// unmeasured delivery lag at its adopters, and the lag
				// estimator only learns about it on the node's next own
				// proposal.
				ResendInterval:  100 * time.Millisecond,
				ElectionTimeout: 400 * time.Millisecond,
			},
		},
		{
			Name:         "token-cascade",
			Description:  "repeated total-loss bursts swallow the totem token several times in a row; gates recovery of the ring",
			Orderer:      order.KindTotem,
			Clocks:       DefaultClocks(),
			Duration:     2 * time.Second,
			RefreshEvery: 5 * time.Millisecond,
			Faults: []FaultEvent{
				{Kind: FaultLossBursts, At: 300 * time.Millisecond, Count: 3,
					For: 5 * time.Millisecond, Gap: 150 * time.Millisecond, Loss: 1.0},
			},
			Gates:      Gates{ReconvergeWithin: 1200 * time.Millisecond},
			MaxNodes:   8,
			ClampNodes: true,
		},
	}
}

// BuiltinMatrix is the stock sweep ctscampaign runs by default: every
// builtin scenario over the matrix axis, clamped per scenario to its
// MaxNodes cap (wire scenarios) with the clamp recorded in each cell.
func BuiltinMatrix(nodeCounts []int, seeds []int64) Matrix {
	return Matrix{Scenarios: Builtin(), NodeCounts: nodeCounts, Seeds: seeds}
}
