package campaign

import (
	"fmt"
	"time"

	"cts/internal/core"
	"cts/internal/faultinject"
	"cts/internal/gcs"
	"cts/internal/hwclock"
	"cts/internal/obs"
	"cts/internal/order"
	"cts/internal/replication"
	"cts/internal/sim"
	"cts/internal/simnet"
	"cts/internal/transport"
	"cts/internal/wire"
)

// ServerGroup is the replicated time-service group of campaign deployments.
const ServerGroup wire.GroupID = 100

// maxRefreshers is how many (lowest-id, currently-up) nodes drive lease
// refresh rounds each tick. More than one for fault tolerance; few, because
// concurrent refreshes coalesce into one round anyway and a thousand
// redundant proposals per tick would be pure overhead.
const maxRefreshers = 3

// node is one deployed replica.
type node struct {
	id    transport.NodeID
	stack *gcs.Stack
	mgr   *replication.Manager
	svc   *core.TimeService
	clock hwclock.Clock
	// up tracks the fault schedule's intent: false while the node is
	// crashed or isolated, so the monitor knows not to demand service
	// from it.
	up bool
}

// nopApp is the replicated application of campaign nodes: the campaign
// drives the lease plane directly, so no invocations ever arrive.
type nopApp struct{}

func (nopApp) Invoke(*replication.Ctx, string, []byte) []byte { return nil }
func (nopApp) Snapshot() []byte                               { return nil }
func (nopApp) Restore([]byte)                                 {}

// deployment is one running cell: n replicas on nodes idBase+1..idBase+n.
type deployment struct {
	k       *sim.Kernel
	net     *simnet.Network
	inj     *faultinject.Injector
	rec     *obs.Recorder
	hub     *order.InstantHub // nil for wire orderers
	sc      Scenario
	seed    int64
	group   wire.GroupID
	idBase  transport.NodeID
	skew    time.Duration // added to every clock's phase offset
	nodes   []*node
	orderer order.Kind
	// refreshOff rotates lease-refresh proposal duty across the population.
	refreshOff int
}

// build constructs and starts a cell's deployment on a fresh kernel and
// waits for the group to settle into a primary component.
func build(sc Scenario, nodes int, seed int64) (*deployment, error) {
	k := sim.NewKernel(seed)
	rec, err := obs.New(obs.Config{Now: k.Now})
	if err != nil {
		return nil, err
	}
	return buildOn(k, rec, sc, nodes, seed, ServerGroup, 0, 0)
}

// buildOn constructs a deployment on an existing kernel and recorder — the
// substrate of federated cells, where several groups share one simulation.
// Each group gets its own intra-group network; idBase keeps node ids (and
// thus obs streams) disjoint across groups, and skew shifts the whole
// group's hardware clocks, modelling federated sites whose clock planes
// start apart.
func buildOn(k *sim.Kernel, rec *obs.Recorder, sc Scenario, nodes int, seed int64,
	group wire.GroupID, idBase transport.NodeID, skew time.Duration) (*deployment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if nodes < 2 {
		return nil, fmt.Errorf("campaign: cell needs at least 2 nodes, got %d", nodes)
	}
	if len(sc.Clocks.Explicit) > 0 && len(sc.Clocks.Explicit) != nodes {
		return nil, fmt.Errorf("campaign: scenario %q pins %d explicit clocks, cell has %d nodes",
			sc.Name, len(sc.Clocks.Explicit), nodes)
	}
	model, err := sc.Links.Model()
	if err != nil {
		return nil, err
	}
	d := &deployment{
		k:       k,
		net:     simnet.NewNetwork(k, model),
		rec:     rec,
		sc:      sc,
		seed:    seed,
		group:   group,
		idBase:  idBase,
		skew:    skew,
		orderer: sc.orderer(),
	}
	d.inj = faultinject.New(k, d.net)
	if d.orderer == order.KindInstant {
		d.hub = order.NewInstantHub()
	}
	if l := sc.Links.Loss; l > 0 {
		d.net.SetLoss(l)
	}

	members := make([]transport.NodeID, nodes)
	for i := range members {
		members[i] = idBase + transport.NodeID(i+1)
	}
	for i := 0; i < nodes; i++ {
		if err := d.addNode(members[i], sc.Clocks.Spec(seed, i, nodes), members); err != nil {
			return nil, err
		}
	}
	for _, nd := range d.nodes {
		nd.stack.Start()
	}
	if err := d.settle(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *deployment) addNode(id transport.NodeID, spec ClockSpec, members []transport.NodeID) error {
	opts := order.Options{Kind: d.orderer}
	switch d.orderer {
	case order.KindInstant:
		opts.Instant = order.InstantTuning{Hub: d.hub}
	case order.KindSeq:
		opts.Seq = d.sc.Seq
	case order.KindTotem:
		opts.Totem = d.sc.Totem
	}
	stack, err := gcs.New(gcs.Config{
		Runtime:   d.k,
		Transport: d.net.Endpoint(id),
		Members:   members,
		Bootstrap: true,
		Order:     opts,
		Obs:       d.rec.ForNode(uint32(id)),
	})
	if err != nil {
		return err
	}
	d.inj.Register(id, stack)
	clock := hwclock.NewSim(d.k.Now,
		hwclock.WithOffset(spec.Offset+d.skew), hwclock.WithDriftPPM(spec.DriftPPM))
	mgr, err := replication.New(replication.Config{
		Runtime: d.k,
		Stack:   stack,
		Group:   d.group,
		Style:   replication.Active,
		App:     nopApp{},
		Obs:     d.rec.ForNode(uint32(id)),
	})
	if err != nil {
		return err
	}
	svc, err := core.New(core.Config{Manager: mgr, Clock: clock, MeanDelay: d.sc.MeanDelay})
	if err != nil {
		return err
	}
	if err := svc.EnableLease(core.LeaseConfig{
		// Leases stay valid for the whole cell: expiry is not under test,
		// honest bound growth and epoch invalidation are.
		Window: d.sc.Duration + 10*time.Second,
	}); err != nil {
		return err
	}
	if err := mgr.Start(); err != nil {
		return err
	}
	d.nodes = append(d.nodes, &node{id: id, stack: stack, mgr: mgr, svc: svc, clock: clock, up: true})
	return nil
}

// settle advances the simulation until every node reports a primary
// component, with a budget scaled to the fabric.
func (d *deployment) settle() error {
	budget := 500 * time.Millisecond
	if d.sc.Links.Profile == ProfileWAN {
		base := d.sc.Links.WANBase
		if base <= 0 {
			base = 30 * time.Millisecond
		}
		budget += 100 * base
	}
	deadline := d.k.Now() + budget
	for d.k.Now() < deadline {
		if d.allPrimary() {
			return nil
		}
		d.k.RunFor(time.Millisecond)
	}
	if !d.allPrimary() {
		return fmt.Errorf("campaign: %q/%d did not settle within %v", d.sc.Name, len(d.nodes), budget)
	}
	return nil
}

func (d *deployment) allPrimary() bool {
	for _, nd := range d.nodes {
		if !nd.mgr.InPrimaryComponent() {
			return false
		}
	}
	return true
}

// refreshTick drives one wave of lease-refresh rounds from a rotating set
// of up nodes; concurrent proposals coalesce into one CCS round, and every
// node adopts the decided value from the total order. Rotation matters for
// bound honesty: a replica's ordering-lag estimate is fed only by rounds it
// proposes itself, so cycling proposal duty through the population keeps
// every node's estimator warm instead of only the first few ids'.
func (d *deployment) refreshTick() {
	n := len(d.nodes)
	sent := 0
	for i := 0; i < n && sent < maxRefreshers; i++ {
		nd := d.nodes[(d.refreshOff+i)%n]
		if !nd.up {
			continue
		}
		nd.svc.RefreshLease()
		sent++
	}
	d.refreshOff = (d.refreshOff + maxRefreshers) % n
}

// installSchedule arms the scenario's fault events relative to start.
func (d *deployment) installSchedule(start time.Duration) {
	n := len(d.nodes)
	for _, ev := range d.sc.Faults {
		from, to := start+ev.At, start+ev.end()
		switch ev.Kind {
		case FaultChurn:
			d.installChurn(start, ev)
		case FaultPartition:
			far := d.topIDs(ev.Fraction)
			near := d.lowIDs(n - len(far))
			d.inj.PartitionAt(from, near, far)
			d.inj.HealAt(to)
			d.markDownWindow(far, from, to)
		case FaultAsymmetric:
			far := d.topIDs(ev.Fraction)
			near := d.lowIDs(n - len(far))
			d.inj.AsymmetricPartitionAt(from, to, near, far)
		case FaultPartial:
			k := len(d.topIDs(ev.Fraction))
			ids := d.ids()
			a := ids[n-k:]
			b := ids[n-2*k : n-k]
			d.inj.PartialPartitionAt(from, to, a, b)
		case FaultLossBursts:
			d.inj.LossBursts(from, ev.Count, ev.For, ev.Gap, ev.Loss)
		case FaultShape:
			shape := simnet.LinkShape{Loss: ev.Loss}
			if ev.Latency > 0 {
				shape.Latency = simnet.Fixed(ev.Latency)
			}
			d.inj.ShapeWindow(from, to, nil, nil, shape)
		}
	}
}

// installChurn schedules the crash/recovery waves of one churn event.
// Victims come off the top of the id range and each stays down for 1.5
// inter-crash steps, so at most two victims are down at once and quorum
// survives. Under the instant orderer a victim's stack stops and restarts
// (the hub's crash model); under wire orderers the victim is isolated at
// the endpoint, and the membership protocol expels and re-admits it.
func (d *deployment) installChurn(start time.Duration, ev FaultEvent) {
	n := len(d.nodes)
	vmax := n / 3
	if vmax > ev.Count {
		vmax = ev.Count
	}
	if vmax < 1 {
		vmax = 1
	}
	step := ev.For / time.Duration(ev.Count)
	for i := 0; i < ev.Count; i++ {
		nd := d.nodes[n-1-i%vmax]
		from := start + ev.At + time.Duration(i)*step
		to := from + step*3/2
		if d.orderer == order.KindInstant {
			d.inj.StopAt(from, nd.id)
			d.inj.StartAt(to, nd.stack.Start)
		} else {
			d.inj.IsolateWindow(from, to, nd.id)
		}
		d.markDownWindow([]transport.NodeID{nd.id}, from, to)
	}
}

// markDownWindow records schedule intent for the monitor.
func (d *deployment) markDownWindow(ids []transport.NodeID, from, to time.Duration) {
	byID := make(map[transport.NodeID]*node, len(ids))
	for _, nd := range d.nodes {
		byID[nd.id] = nd
	}
	for _, id := range ids {
		nd := byID[id]
		if nd == nil {
			continue
		}
		d.k.At(from, func() { nd.up = false })
		d.k.At(to, func() { nd.up = true })
	}
}

func (d *deployment) ids() []transport.NodeID {
	out := make([]transport.NodeID, len(d.nodes))
	for i, nd := range d.nodes {
		out[i] = nd.id
	}
	return out
}

// topIDs returns the highest ⌈frac·n⌉ node ids (at least 1).
func (d *deployment) topIDs(frac float64) []transport.NodeID {
	n := len(d.nodes)
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	return d.ids()[n-k:]
}

func (d *deployment) lowIDs(k int) []transport.NodeID {
	return d.ids()[:k]
}

// close stops every replica and drains the loop, so campaign tests hold the
// goroutine-leak gate.
func (d *deployment) close() {
	for _, nd := range d.nodes {
		nd.stack.Stop()
		nd.mgr.Stop()
	}
	d.k.RunFor(5 * time.Millisecond)
}
