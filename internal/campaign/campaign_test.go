package campaign

import (
	"reflect"
	"testing"
	"time"

	"cts/internal/order"
)

// TestClockPlanDeterministic checks that per-node clock specs depend only on
// (seed, index, n) — the order-independence the deployment relies on.
func TestClockPlanDeterministic(t *testing.T) {
	p := DefaultClocks()
	a := p.Spec(42, 7, 100)
	b := p.Spec(42, 7, 100)
	if a != b {
		t.Fatalf("same (seed,index,n) gave %+v vs %+v", a, b)
	}
	if c := p.Spec(43, 7, 100); c == a {
		t.Fatalf("different seed gave identical spec %+v", a)
	}
	if c := p.Spec(42, 8, 100); c == a {
		t.Fatalf("different index gave identical spec %+v", a)
	}
	if a.Offset < -p.MaxOffset || a.Offset > p.MaxOffset {
		t.Fatalf("offset %v outside ±%v", a.Offset, p.MaxOffset)
	}
	if a.DriftPPM < -p.MaxDriftPPM || a.DriftPPM > p.MaxDriftPPM {
		t.Fatalf("drift %v outside ±%v ppm", a.DriftPPM, p.MaxDriftPPM)
	}
}

func TestClockPlanOutliers(t *testing.T) {
	p := ClockPlan{MaxOffset: time.Millisecond, MaxDriftPPM: 10, OutlierFrac: 0.1, OutlierDriftPPM: 400}
	n := 50
	outliers := 0
	for i := 0; i < n; i++ {
		if p.Spec(1, i, n).DriftPPM == 400 {
			outliers++
			if i < n-5 {
				t.Fatalf("outlier at index %d, want only the top 5 ids", i)
			}
		}
	}
	if outliers != 5 {
		t.Fatalf("got %d outliers, want 5 (10%% of %d)", outliers, n)
	}
}

func TestClockPlanExplicit(t *testing.T) {
	p := ClockPlan{Explicit: []ClockSpec{{Offset: time.Millisecond}, {DriftPPM: 7}}}
	if got := p.Spec(99, 1, 2); got.DriftPPM != 7 {
		t.Fatalf("explicit spec ignored: %+v", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	base := Scenario{
		Name:     "ok",
		Duration: time.Second,
		Gates:    Gates{ReconvergeWithin: 100 * time.Millisecond},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"no duration", func(s *Scenario) { s.Duration = 0 }},
		{"no gate", func(s *Scenario) { s.Gates = Gates{} }},
		{"bad orderer", func(s *Scenario) { s.Orderer = "gossip" }},
		{"bad link profile", func(s *Scenario) { s.Links.Profile = "carrier-pigeon" }},
		{"partition under instant", func(s *Scenario) {
			s.Faults = []FaultEvent{{Kind: FaultPartition, At: 100 * time.Millisecond,
				For: 100 * time.Millisecond, Fraction: 0.3}}
		}},
		{"majority-killing fraction", func(s *Scenario) {
			s.Orderer = order.KindSeq
			s.Faults = []FaultEvent{{Kind: FaultPartition, At: 100 * time.Millisecond,
				For: 100 * time.Millisecond, Fraction: 0.6}}
		}},
		{"fault past duration", func(s *Scenario) {
			s.Faults = []FaultEvent{{Kind: FaultChurn, At: 900 * time.Millisecond,
				For: 200 * time.Millisecond, Count: 2}}
		}},
		{"no room for gate", func(s *Scenario) {
			s.Gates.ReconvergeWithin = time.Second
			s.Faults = []FaultEvent{{Kind: FaultChurn, At: 100 * time.Millisecond,
				For: 100 * time.Millisecond, Count: 2}}
		}},
		{"unknown fault kind", func(s *Scenario) {
			s.Faults = []FaultEvent{{Kind: "meteor", At: 100 * time.Millisecond}}
		}},
	}
	for _, tc := range cases {
		sc := base
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestBuiltinScenariosValidate(t *testing.T) {
	for _, sc := range Builtin() {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %q: %v", sc.Name, err)
		}
	}
}

func TestMatrixCells(t *testing.T) {
	m := Matrix{
		Scenarios: []Scenario{
			{Name: "a", Duration: time.Second, Gates: Gates{ReconvergeWithin: time.Millisecond}},
			{Name: "b", Duration: time.Second, Gates: Gates{ReconvergeWithin: time.Millisecond},
				NodeCounts: []int{8}},
		},
		NodeCounts: []int{100, 1000},
		Seeds:      []int64{1, 2},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	want := []Cell{
		{Scenario: "a", Nodes: 100, Seed: 1}, {Scenario: "a", Nodes: 100, Seed: 2},
		{Scenario: "a", Nodes: 1000, Seed: 1}, {Scenario: "a", Nodes: 1000, Seed: 2},
		{Scenario: "b", Nodes: 8, Seed: 1}, {Scenario: "b", Nodes: 8, Seed: 2},
	}
	if got := m.Cells(); !reflect.DeepEqual(got, want) {
		t.Fatalf("cells = %v, want %v", got, want)
	}

	dup := m
	dup.Scenarios = append(dup.Scenarios, Scenario{Name: "a", Duration: time.Second,
		Gates: Gates{ReconvergeWithin: time.Millisecond}})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate scenario name accepted")
	}
	noSeeds := m
	noSeeds.Seeds = nil
	if err := noSeeds.Validate(); err == nil {
		t.Fatal("matrix without seeds accepted")
	}
}

// TestMatrixMaxNodes pins the anti-silent-cap contract: an axis count above
// a scenario's MaxNodes is a validation error unless the scenario opts into
// an explicit clamp, and a clamped cell records the requested size.
func TestMatrixMaxNodes(t *testing.T) {
	base := Scenario{Name: "capped", Duration: time.Second,
		Gates: Gates{ReconvergeWithin: time.Millisecond}, MaxNodes: 50}
	m := Matrix{Scenarios: []Scenario{base}, NodeCounts: []int{100}, Seeds: []int64{1}}
	if err := m.Validate(); err == nil {
		t.Fatal("oversized count accepted without clamp_nodes")
	}

	clamped := m
	clamped.Scenarios = []Scenario{func() Scenario { s := base; s.ClampNodes = true; return s }()}
	clamped.NodeCounts = []int{10, 100, 1000}
	if err := clamped.Validate(); err != nil {
		t.Fatalf("clamping matrix rejected: %v", err)
	}
	want := []Cell{
		{Scenario: "capped", Nodes: 10, Seed: 1},
		// 100 and 1000 both clamp to 50; the duplicate cell is dropped.
		{Scenario: "capped", Nodes: 50, Seed: 1, ClampedFrom: 100},
	}
	if got := clamped.Cells(); !reflect.DeepEqual(got, want) {
		t.Fatalf("cells = %v, want %v", got, want)
	}

	bad := Scenario{Name: "bad", Duration: time.Second,
		Gates: Gates{ReconvergeWithin: time.Millisecond}, ClampNodes: true}
	if err := bad.Validate(); err == nil {
		t.Fatal("clamp_nodes without max_nodes accepted")
	}
}

// TestBuiltinWireScenariosClampVisibly covers the regression this sweep
// fixes: the builtin wire scenarios used to pin NodeCounts, silently running
// 100 (or 8) nodes no matter what axis the user asked for. Now an oversized
// axis clamps with the requested size recorded on the cell.
func TestBuiltinWireScenariosClampVisibly(t *testing.T) {
	m := BuiltinMatrix([]int{1000}, []int64{7})
	if err := m.Validate(); err != nil {
		t.Fatalf("builtin matrix rejected: %v", err)
	}
	byName := make(map[string]Cell)
	for _, c := range m.Cells() {
		byName[c.Scenario] = c
	}
	for name, wantNodes := range map[string]int{
		"partition-heal": 100, "asym-partition": 100, "partial-partition": 100,
		"wan-bursts": 50, "token-cascade": 8,
	} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("builtin scenario %q missing from cells", name)
		}
		if c.Nodes != wantNodes || c.ClampedFrom != 1000 {
			t.Fatalf("%s cell = %+v, want nodes=%d clamped_from=1000", name, c, wantNodes)
		}
	}
	// Instant scenarios follow the axis unclamped.
	if c := byName["churn-storm"]; c.Nodes != 1000 || c.ClampedFrom != 0 {
		t.Fatalf("churn-storm cell = %+v, want nodes=1000 unclamped", c)
	}
	// Under the cap, wire scenarios run at the requested size.
	small := BuiltinMatrix([]int{9}, []int64{7})
	for _, c := range small.Cells() {
		if c.Scenario == "partition-heal" && (c.Nodes != 9 || c.ClampedFrom != 0) {
			t.Fatalf("under-cap cell = %+v, want nodes=9 unclamped", c)
		}
	}
}

func TestParseMatrix(t *testing.T) {
	data := []byte(`{
		"scenarios": [{
			"name": "json-churn",
			"orderer": "instant",
			"duration_ns": 500000000,
			"faults": [{"kind": "churn", "at_ns": 100000000, "for_ns": 100000000, "count": 2}],
			"gates": {"reconverge_within_ns": 200000000}
		}, {
			"name": "json-wan",
			"orderer": "seq",
			"links": {"profile": "wan", "wan_base_ns": 20000000},
			"duration_ns": 1000000000,
			"mean_delay_ns": 60000000,
			"gates": {"reconverge_within_ns": 200000000},
			"node_counts": [9],
			"seq": {"heartbeat_interval_ns": 100000000, "leader_timeout_ns": 1000000000}
		}],
		"node_counts": [10],
		"seeds": [1]
	}`)
	m, err := ParseMatrix(data)
	if err != nil {
		t.Fatalf("ParseMatrix: %v", err)
	}
	sc, ok := m.ScenarioByName("json-churn")
	if !ok || sc.Duration != 500*time.Millisecond || len(sc.Faults) != 1 {
		t.Fatalf("parsed scenario wrong: %+v", sc)
	}
	// The EXPERIMENTS.md schema: fabric declaration and orderer tuning are
	// part of the JSON surface, so their field names are pinned here.
	wan, ok := m.ScenarioByName("json-wan")
	if !ok || wan.MeanDelay != 60*time.Millisecond ||
		wan.Links.WANBase != 20*time.Millisecond ||
		wan.Seq.HeartbeatInterval != 100*time.Millisecond ||
		wan.Seq.LeaderTimeout != time.Second {
		t.Fatalf("parsed WAN scenario wrong: %+v", wan)
	}
	if _, err := ParseMatrix([]byte(`{"scenarios":[]}`)); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := ParseMatrix([]byte(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// mustScenario pulls a builtin by name.
func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	for _, sc := range Builtin() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("no builtin scenario %q", name)
	return Scenario{}
}

// TestRunChurnStormSmoke is the campaign smoke test: the churn-storm cell at
// 100 nodes must complete and pass its gates.
func TestRunChurnStormSmoke(t *testing.T) {
	res, err := Run(mustScenario(t, "churn-storm"), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("churn-storm/100 failed gates: %v\nmetrics: %+v", res.Failures, res.Metrics)
	}
	if res.Metrics.Samples == 0 || res.Metrics.Refreshes == 0 {
		t.Fatalf("empty cell: %+v", res.Metrics)
	}
	if res.Metrics.Invalidations == 0 {
		t.Fatalf("churn never invalidated a lease: %+v", res.Metrics)
	}
}

// TestRunSlowClocksSmoke is the second smoke scenario: drift outliers, no
// faults, staleness bounds must stay honest throughout.
func TestRunSlowClocksSmoke(t *testing.T) {
	res, err := Run(mustScenario(t, "slow-clocks"), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("slow-clocks/100 failed gates: %v\nmetrics: %+v", res.Failures, res.Metrics)
	}
	if res.Metrics.MaxBoundUS <= 0 {
		t.Fatalf("bounds never grew: %+v", res.Metrics)
	}
}

// TestRunWireOrdererCell exercises a seq-orderer cell with a real partition
// at a size small enough for the test suite.
func TestRunWireOrdererCell(t *testing.T) {
	sc := mustScenario(t, "partition-heal")
	res, err := Run(sc, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("partition-heal/9 failed gates: %v\nmetrics: %+v", res.Failures, res.Metrics)
	}
	if res.Orderer != "seq" {
		t.Fatalf("orderer = %q, want seq", res.Orderer)
	}
}

// TestRunDeterministic re-runs the same cell and demands identical metrics —
// the reproducibility contract of the whole campaign subsystem.
func TestRunDeterministic(t *testing.T) {
	sc := mustScenario(t, "churn-storm")
	a, err := Run(sc, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same cell diverged:\n a=%+v\n b=%+v", a, b)
	}
	c, err := Run(sc, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Metrics, c.Metrics) {
		t.Fatalf("different seed gave identical metrics: %+v", a.Metrics)
	}
}
