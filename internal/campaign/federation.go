package campaign

import (
	"fmt"
	"time"

	"cts/internal/federation"
	"cts/internal/obs"
	"cts/internal/order"
	"cts/internal/sim"
	"cts/internal/transport"
	"cts/internal/wire"
)

// fedGroupBase is the first federated group id; group i of a federated cell
// is fedGroupBase+i. Distinct from ServerGroup so single-group and federated
// artifacts never collide.
const fedGroupBase wire.GroupID = 200

// fedIDStride spaces the node-id ranges of federated groups so ids (and
// their obs streams) stay disjoint: group i uses ids i·stride+1 ….
const fedIDStride = 1000

// FedGates are the acceptance thresholds of a federated cell. The zero-
// tolerance invariants (regressions, staleness, monotonicity fixes, seam
// consistency) always gate; these tune the convergence checks.
type FedGates struct {
	// MaxSeamSkew bounds the adjacent-group clock skew once the federation
	// has converged (and again after a heal).
	MaxSeamSkew time.Duration `json:"max_seam_skew_ns"`
	// ReconvergeWithin bounds how long after the inter-group link heals (or
	// after start, with no sever) every seam must be back under MaxSeamSkew.
	ReconvergeWithin time.Duration `json:"reconverge_within_ns"`
}

// FedSpec declares one federated cell: Groups CCS groups in a line topology
// (group i exchanges summaries with i±1), each a full intra-group deployment
// on a shared simulation kernel. Group i's hardware clocks start i·GroupSkew
// ahead, so the federation has real inter-group skew to merge away.
type FedSpec struct {
	Name          string        `json:"name"`
	Groups        int           `json:"groups"`
	NodesPerGroup int           `json:"nodes_per_group"`
	Duration      time.Duration `json:"duration_ns"`
	// RefreshEvery paces intra-group lease refresh (default 2 ms).
	RefreshEvery time.Duration `json:"refresh_every_ns,omitempty"`
	// SampleEvery paces the cross-group monitor (default 10 ms).
	SampleEvery time.Duration `json:"sample_every_ns,omitempty"`
	// ExchangeEvery paces inter-group summary exchange (default 50 ms).
	ExchangeEvery time.Duration `json:"exchange_every_ns,omitempty"`
	// MaxStep bounds one federated nudge (default 1 ms).
	MaxStep time.Duration `json:"max_step_ns,omitempty"`
	// Precision is the inter-group transit uncertainty (default 1 ms).
	Precision time.Duration `json:"precision_ns,omitempty"`
	// InitialSlack pads bounds before the first exchange; it must cover the
	// worst initial inter-group offset (default (Groups−1)·GroupSkew + 6 ms).
	InitialSlack time.Duration `json:"initial_slack_ns,omitempty"`
	// FabricDelay is the one-way summary transit delay (default 200 µs).
	FabricDelay time.Duration `json:"fabric_delay_ns,omitempty"`
	// GroupSkew is the per-group clock-plane offset step (default 2 ms).
	GroupSkew time.Duration `json:"group_skew_ns,omitempty"`
	// SeverAt/SeverFor cut every inter-group edge for the window
	// [SeverAt, SeverAt+SeverFor) — intra-group service continues, bounds
	// grow honestly, and the seams must reconverge after the heal.
	SeverAt  time.Duration `json:"sever_at_ns,omitempty"`
	SeverFor time.Duration `json:"sever_for_ns,omitempty"`
	Gates    FedGates      `json:"gates"`
}

func (s FedSpec) refreshEvery() time.Duration {
	if s.RefreshEvery > 0 {
		return s.RefreshEvery
	}
	return 2 * time.Millisecond
}

func (s FedSpec) sampleEvery() time.Duration {
	if s.SampleEvery > 0 {
		return s.SampleEvery
	}
	return 10 * time.Millisecond
}

func (s FedSpec) exchangeEvery() time.Duration {
	if s.ExchangeEvery > 0 {
		return s.ExchangeEvery
	}
	return 50 * time.Millisecond
}

func (s FedSpec) maxStep() time.Duration {
	if s.MaxStep > 0 {
		return s.MaxStep
	}
	return time.Millisecond
}

func (s FedSpec) precision() time.Duration {
	if s.Precision > 0 {
		return s.Precision
	}
	return time.Millisecond
}

func (s FedSpec) groupSkew() time.Duration {
	if s.GroupSkew > 0 {
		return s.GroupSkew
	}
	return 2 * time.Millisecond
}

func (s FedSpec) initialSlack() time.Duration {
	if s.InitialSlack > 0 {
		return s.InitialSlack
	}
	return time.Duration(s.Groups-1)*s.groupSkew() + 6*time.Millisecond
}

func (s FedSpec) fabricDelay() time.Duration {
	if s.FabricDelay > 0 {
		return s.FabricDelay
	}
	return 200 * time.Microsecond
}

func (s FedSpec) healAt() time.Duration {
	if s.SeverFor <= 0 {
		return 0
	}
	return s.SeverAt + s.SeverFor
}

// Validate checks the spec.
func (s FedSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: federated spec without a name")
	}
	if s.Groups < 2 {
		return fmt.Errorf("campaign: federated spec %q needs at least 2 groups, got %d", s.Name, s.Groups)
	}
	if s.NodesPerGroup < 2 {
		return fmt.Errorf("campaign: federated spec %q needs at least 2 nodes per group, got %d", s.Name, s.NodesPerGroup)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("campaign: federated spec %q needs duration_ns", s.Name)
	}
	if s.Gates.MaxSeamSkew <= 0 || s.Gates.ReconvergeWithin <= 0 {
		return fmt.Errorf("campaign: federated spec %q needs gates.max_seam_skew_ns and gates.reconverge_within_ns", s.Name)
	}
	if s.SeverFor > 0 {
		if s.SeverAt <= 0 {
			return fmt.Errorf("campaign: federated spec %q: sever_for_ns needs sever_at_ns", s.Name)
		}
		if s.healAt()+s.Gates.ReconvergeWithin > s.Duration {
			return fmt.Errorf("campaign: federated spec %q: duration leaves no room for post-heal reconvergence", s.Name)
		}
	}
	return nil
}

// FedMetrics are one federated cell's measurements.
type FedMetrics struct {
	// Zero-tolerance invariant counters, over every read of the migrating
	// cross-group monitor.
	Regressions         uint64 `json:"regressions"`
	StalenessViolations uint64 `json:"staleness_violations"`
	MonotonicityFixes   uint64 `json:"monotonicity_fixes"`
	// SeamViolations counts sample passes where two adjacent groups'
	// published intervals failed to overlap (dishonest seam).
	SeamViolations uint64 `json:"seam_violations"`

	// Convergence quality.
	FinalSeamSkewUS float64 `json:"final_seam_skew_us"`
	MaxSeamSkewUS   float64 `json:"max_seam_skew_us"`
	ReconvergeMS    float64 `json:"reconverge_ms"`
	MaxBoundUS      float64 `json:"max_bound_us"`
	MeanBoundUS     float64 `json:"mean_bound_us"`
	Samples         uint64  `json:"samples"`

	// FedCoalesced counts benign clamps of rounds overtaken in flight by a
	// federated nudge — expected traffic, reported for visibility.
	FedCoalesced uint64 `json:"fed_coalesced"`

	// Federation-plane traffic.
	SummariesSent uint64 `json:"summaries_sent"`
	SummariesRecv uint64 `json:"summaries_recv"`
	Rejected      uint64 `json:"rejected"`
	Nudges        uint64 `json:"nudges"`
	FabricDropped uint64 `json:"fabric_dropped"`
}

// FedResult is one completed federated cell.
type FedResult struct {
	Name          string     `json:"name"`
	Groups        int        `json:"groups"`
	NodesPerGroup int        `json:"nodes_per_group"`
	Seed          int64      `json:"seed"`
	Metrics       FedMetrics `json:"metrics"`
	Pass          bool       `json:"pass"`
	Failures      []string   `json:"failures,omitempty"`
}

// groupNode identifies one replica across the whole federation. Keying
// monitor state by node id alone would collide across groups (the ctsload
// floor bug this sweep fixes); the pair is the only safe key.
type groupNode struct {
	group wire.GroupID
	node  transport.NodeID
}

// fedMonitor is the migrating client: each pass it reads every replica of
// every group and holds all of them to ONE happened-before floor — exactly
// what a client roaming across group boundaries observes. Regression state
// is per (group, node); the staleness floor is global, which is the
// federation's whole promise: a reading served anywhere, plus its bound,
// must cover the most advanced lower bound served anywhere else in an
// earlier pass.
type fedMonitor struct {
	floor    time.Duration
	lastSeen map[groupNode]time.Duration
	m        FedMetrics

	gate          FedGates
	faultEnd      time.Duration // heal instant (or start, with no sever)
	reconvergedAt time.Duration
}

func newFedMonitor(gate FedGates) *fedMonitor {
	return &fedMonitor{lastSeen: make(map[groupNode]time.Duration), gate: gate, reconvergedAt: -1}
}

// sample runs one monitor pass over all groups between kernel steps.
func (mo *fedMonitor) sample(groups []*deployment, now time.Duration) {
	passMax := mo.floor
	type seamPoint struct {
		clock, bound time.Duration
		ok           bool
	}
	seams := make([]seamPoint, len(groups))
	for gi, d := range groups {
		for _, nd := range d.nodes {
			r, ok := nd.svc.LeaseRead()
			if !ok {
				continue
			}
			mo.m.Samples++
			key := groupNode{group: d.group, node: nd.id}
			if last, seen := mo.lastSeen[key]; seen && r.GroupClock < last {
				mo.m.Regressions++
			}
			mo.lastSeen[key] = r.GroupClock
			if r.GroupClock+r.Bound < mo.floor {
				mo.m.StalenessViolations++
			}
			if lo := r.GroupClock - r.Bound; lo > passMax {
				passMax = lo
			}
			bound := float64(r.Bound) / float64(time.Microsecond)
			if bound > mo.m.MaxBoundUS {
				mo.m.MaxBoundUS = bound
			}
			mo.m.MeanBoundUS += bound // normalized in finish
			if !seams[gi].ok {
				seams[gi] = seamPoint{clock: r.GroupClock, bound: r.Bound, ok: true}
			}
		}
	}
	mo.floor = passMax

	// Seam checks: adjacent groups must publish overlapping intervals, and
	// their clock skew is the convergence signal.
	var worst time.Duration
	allSeams := true
	for gi := 0; gi+1 < len(groups); gi++ {
		a, b := seams[gi], seams[gi+1]
		if !a.ok || !b.ok {
			allSeams = false
			continue
		}
		if a.clock+a.bound < b.clock-b.bound || b.clock+b.bound < a.clock-a.bound {
			mo.m.SeamViolations++
		}
		skew := a.clock - b.clock
		if skew < 0 {
			skew = -skew
		}
		if skew > worst {
			worst = skew
		}
	}
	if allSeams {
		skewUS := float64(worst) / float64(time.Microsecond)
		mo.m.FinalSeamSkewUS = skewUS
		if skewUS > mo.m.MaxSeamSkewUS {
			mo.m.MaxSeamSkewUS = skewUS
		}
		if now >= mo.faultEnd && mo.reconvergedAt < 0 && worst <= mo.gate.MaxSeamSkew {
			mo.reconvergedAt = now
		}
	}
}

func (mo *fedMonitor) finish() {
	if mo.m.Samples > 0 {
		mo.m.MeanBoundUS /= float64(mo.m.Samples)
	}
}

// RunFederated executes one federated cell: Groups intra-group deployments
// on one kernel, stitched by a SimFabric exchange plane, driven through the
// spec's duration with the optional all-edges sever window, and gated.
func RunFederated(spec FedSpec, seed int64) (FedResult, error) {
	if err := spec.Validate(); err != nil {
		return FedResult{}, err
	}
	k := sim.NewKernel(seed)
	rec, err := obs.New(obs.Config{Now: k.Now})
	if err != nil {
		return FedResult{}, err
	}

	// Intra-group scenario: instant orderer (the fabric under test is the
	// federation plane, not the intra-group wire), stock clock plan.
	intra := Scenario{
		Name:     spec.Name + "-intra",
		Orderer:  order.KindInstant,
		Clocks:   DefaultClocks(),
		Duration: spec.Duration,
		Gates:    Gates{ReconvergeWithin: spec.Gates.ReconvergeWithin},
	}

	fabric := federation.NewSimFabric(k, spec.fabricDelay())
	groups := make([]*deployment, 0, spec.Groups)
	var agents []*federation.Agent
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
		for _, d := range groups {
			for _, nd := range d.nodes {
				nd.stack.Stop()
				nd.mgr.Stop()
			}
		}
		k.RunFor(5 * time.Millisecond)
	}()

	for gi := 0; gi < spec.Groups; gi++ {
		gid := fedGroupBase + wire.GroupID(gi)
		d, err := buildOn(k, rec, intra, spec.NodesPerGroup, seed+int64(gi),
			gid, transport.NodeID(gi*fedIDStride), time.Duration(gi)*spec.groupSkew())
		if err != nil {
			return FedResult{}, fmt.Errorf("campaign: %q group %d: %w", spec.Name, gi, err)
		}
		groups = append(groups, d)
		var neighbors []wire.GroupID
		if gi > 0 {
			neighbors = append(neighbors, gid-1)
		}
		if gi < spec.Groups-1 {
			neighbors = append(neighbors, gid+1)
		}
		for _, nd := range d.nodes {
			a, err := federation.New(federation.Config{
				Runtime:       k,
				Service:       nd.svc,
				Manager:       nd.mgr,
				Clock:         nd.clock,
				Link:          fabric.Link(gid),
				Group:         gid,
				Neighbors:     neighbors,
				ExchangeEvery: spec.exchangeEvery(),
				MaxStep:       spec.maxStep(),
				Precision:     spec.precision(),
				InitialSlack:  spec.initialSlack(),
				Obs:           rec.ForNode(uint32(nd.id)),
			})
			if err != nil {
				return FedResult{}, err
			}
			fabric.Register(gid, a)
			a.Start()
			agents = append(agents, a)
		}
	}

	// Arm the sever window: every inter-group edge goes dark, both ways.
	start := k.Now()
	healAt := start
	if spec.SeverFor > 0 {
		healAt = start + spec.healAt()
		setAll := func(down bool) {
			for gi := 0; gi+1 < spec.Groups; gi++ {
				fabric.SetDown(fedGroupBase+wire.GroupID(gi), fedGroupBase+wire.GroupID(gi+1), down)
			}
		}
		k.At(start+spec.SeverAt, func() { setAll(true) })
		k.At(healAt, func() { setAll(false) })
	}

	// Prime every group's lease plane before the clock starts.
	refreshAll := func() {
		for _, d := range groups {
			d.refreshTick()
		}
	}
	allPrimed := func() bool {
		for _, d := range groups {
			if !primed(d) {
				return false
			}
		}
		return true
	}
	refreshAll()
	primeDeadline := k.Now() + 200*time.Millisecond + 20*spec.refreshEvery()
	for k.Now() < primeDeadline {
		k.RunFor(spec.refreshEvery())
		refreshAll()
		if allPrimed() {
			break
		}
	}
	if !allPrimed() {
		return FedResult{}, fmt.Errorf("campaign: %q: lease planes did not prime", spec.Name)
	}

	mo := newFedMonitor(spec.Gates)
	mo.faultEnd = healAt
	end := start + spec.Duration

	refreshEvery := spec.refreshEvery()
	var refreshLoop func()
	refreshLoop = func() {
		refreshAll()
		if k.Now()+refreshEvery <= end {
			k.After(refreshEvery, refreshLoop)
		}
	}
	k.After(refreshEvery, refreshLoop)

	exchangeEvery := spec.exchangeEvery()
	var exchangeLoop func()
	exchangeLoop = func() {
		for _, a := range agents {
			a.ExchangeTick()
		}
		if k.Now()+exchangeEvery <= end {
			k.After(exchangeEvery, exchangeLoop)
		}
	}
	k.After(exchangeEvery, exchangeLoop)

	sampleEvery := spec.sampleEvery()
	for k.Now() < end {
		step := sampleEvery
		if left := end - k.Now(); left < step {
			step = left
		}
		k.RunFor(step)
		mo.sample(groups, k.Now())
	}
	mo.finish()

	res := FedResult{
		Name: spec.Name, Groups: spec.Groups, NodesPerGroup: spec.NodesPerGroup,
		Seed: seed, Metrics: mo.m,
	}
	if mo.reconvergedAt >= 0 {
		res.Metrics.ReconvergeMS = float64(mo.reconvergedAt-mo.faultEnd) / float64(time.Millisecond)
	}
	for _, s := range rec.Samples() {
		switch s.Name {
		case "core.monotonicity_fixes":
			res.Metrics.MonotonicityFixes += s.Value
		case "core.fed_coalesced":
			res.Metrics.FedCoalesced += s.Value
		case "fed.summaries_sent":
			res.Metrics.SummariesSent += s.Value
		case "fed.summaries_recv":
			res.Metrics.SummariesRecv += s.Value
		case "fed.rejected":
			res.Metrics.Rejected += s.Value
		case "fed.nudges":
			res.Metrics.Nudges += s.Value
		}
	}
	res.Metrics.FabricDropped = fabric.Dropped
	res.Pass, res.Failures = fedGate(spec, mo, res.Metrics)
	return res, nil
}

// fedGate applies the federated cell's self-gates.
func fedGate(spec FedSpec, mo *fedMonitor, m FedMetrics) (bool, []string) {
	var fails []string
	if m.Regressions > 0 {
		fails = append(fails, fmt.Sprintf("%d group-clock regressions (want 0)", m.Regressions))
	}
	if m.StalenessViolations > 0 {
		fails = append(fails, fmt.Sprintf("%d cross-group staleness violations (want 0)", m.StalenessViolations))
	}
	if m.MonotonicityFixes > 0 {
		fails = append(fails, fmt.Sprintf("%d monotonicity fixes (want 0)", m.MonotonicityFixes))
	}
	if m.SeamViolations > 0 {
		fails = append(fails, fmt.Sprintf("%d seam consistency violations (want 0)", m.SeamViolations))
	}
	gateUS := float64(spec.Gates.MaxSeamSkew) / float64(time.Microsecond)
	if m.FinalSeamSkewUS > gateUS {
		fails = append(fails, fmt.Sprintf("final seam skew %.0fµs, gate %.0fµs", m.FinalSeamSkewUS, gateUS))
	}
	if mo.reconvergedAt < 0 {
		fails = append(fails, "seams never converged under the skew gate")
	} else if rec := time.Duration(m.ReconvergeMS * float64(time.Millisecond)); rec > spec.Gates.ReconvergeWithin {
		fails = append(fails, fmt.Sprintf("reconverged in %.1fms, gate %v", m.ReconvergeMS, spec.Gates.ReconvergeWithin))
	}
	if m.SummariesRecv == 0 {
		fails = append(fails, "no summaries ever received (dead exchange plane)")
	}
	return len(fails) == 0, fails
}

// BuiltinFederation is the stock federated sweep: line topologies at 2, 4
// and 8 groups (the skew-vs-group-count series of EXPERIMENTS.md E17), plus
// a sever/heal cell that cuts every inter-group edge mid-run.
func BuiltinFederation() []FedSpec {
	gates := FedGates{MaxSeamSkew: 3 * time.Millisecond, ReconvergeWithin: 1500 * time.Millisecond}
	return []FedSpec{
		{Name: "fed-2-line", Groups: 2, NodesPerGroup: 3,
			Duration: 1200 * time.Millisecond, Gates: gates},
		{Name: "fed-4-line", Groups: 4, NodesPerGroup: 3,
			Duration: 1800 * time.Millisecond, Gates: gates},
		{Name: "fed-8-line", Groups: 8, NodesPerGroup: 3,
			Duration: 2600 * time.Millisecond,
			Gates:    FedGates{MaxSeamSkew: 3 * time.Millisecond, ReconvergeWithin: 2200 * time.Millisecond}},
		{Name: "fed-partition", Groups: 3, NodesPerGroup: 3,
			Duration: 2400 * time.Millisecond,
			SeverAt:  600 * time.Millisecond, SeverFor: 600 * time.Millisecond,
			Gates: FedGates{MaxSeamSkew: 3 * time.Millisecond, ReconvergeWithin: 1000 * time.Millisecond}},
	}
}

// FederationSpecByName finds a builtin federated spec.
func FederationSpecByName(name string) (FedSpec, bool) {
	for _, sp := range BuiltinFederation() {
		if sp.Name == name {
			return sp, true
		}
	}
	return FedSpec{}, false
}
